package gcore_test

import (
	"fmt"
	"log"

	"gcore"
)

// The first query of the paper's guided tour: every G-CORE query
// returns a graph.
func ExampleEngine_Eval() {
	eng := gcore.NewEngine()
	if err := eng.RegisterGraph(gcore.SampleSocialGraph()); err != nil {
		log.Fatal(err)
	}
	res, err := eng.Eval(`
		CONSTRUCT (n)
		MATCH (n:Person) ON social_graph
		WHERE n.employer = 'Acme'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Graph)
	// Output: graph "" (2 nodes, 0 edges, 0 paths)
}

// Paths are first-class citizens: store the shortest knows-paths from
// John and read their hop counts back.
func ExampleEngine_Eval_storedPaths() {
	eng := gcore.NewEngine()
	if err := eng.RegisterGraph(gcore.SampleSocialGraph()); err != nil {
		log.Fatal(err)
	}
	res, err := eng.Eval(`
		CONSTRUCT (n)-/@p:hop {d := c}/->(m)
		MATCH (n:Person)-/SHORTEST p<:knows*> COST c/->(m:Person)
		WHERE n.firstName = 'John' AND m.firstName = 'Celine'`)
	if err != nil {
		log.Fatal(err)
	}
	for _, pid := range res.Graph.PathIDs() {
		p, _ := res.Graph.Path(pid)
		fmt.Printf("stored path with %d hops, d = %s\n", p.Length(), p.Props.Get("d"))
	}
	// Output: stored path with 2 hops, d = 2
}

// The §5 tabular extension: SELECT projects a binding table, with
// implicit grouping when aggregates appear.
func ExampleEngine_Eval_select() {
	eng := gcore.NewEngine()
	if err := eng.RegisterGraph(gcore.SampleSocialGraph()); err != nil {
		log.Fatal(err)
	}
	res, err := eng.Eval(`
		SELECT n.firstName AS name, COUNT(*) AS friends
		MATCH (n:Person)-[:knows]->(m:Person)
		ORDER BY friends DESC, name
		LIMIT 2`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Table)
	// Output:
	// name     friends
	// -------  -------
	// "Peter"  3
	// "John"   2
}

// Explain shows the evaluation plan without running anything — note
// the filter pushed onto the node scan, before the path search, and
// its [col] mark: the comparison compiles against the snapshot's
// property columns instead of evaluating row at a time.
func ExampleEngine_Explain() {
	eng := gcore.NewEngine()
	if err := eng.RegisterGraph(gcore.SampleSocialGraph()); err != nil {
		log.Fatal(err)
	}
	plan, err := eng.Explain(`
		CONSTRUCT (m)
		MATCH (n:Person)-/<:knows*>/->(m:Person)
		WHERE n.firstName = 'John'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan)
	// Output:
	// MATCH
	//   scan pattern 1 (default graph)
	//     start: left end, forward scan [est 5]
	//     node scan (n :Person)  ⊳ filter: (n.firstName = 'John') [col]
	//     reachability BFS (product automaton) -/<(:knows)*>/->(m :Person)
	// CONSTRUCT (identity-respecting, §A.3)
	//   node (m)  [by identity]
}

// Graph set operations are identity-based (§A.5).
func ExampleGraphMinus() {
	a := gcore.SampleSocialGraph()
	b := gcore.SampleSocialGraph()
	fmt.Println(gcore.GraphMinus("d", a, b).IsEmpty())
	// Output: true
}
