package gcore_test

import (
	"testing"

	"gcore"
	"gcore/internal/parser"
	"gcore/internal/repro"
)

// Fuzz targets. Without -fuzz these run their seed corpus as ordinary
// tests; with `go test -fuzz=FuzzParse .` they explore the grammar.
// Invariants: the parser never panics and accepts its own output; the
// evaluator never panics and every graph it returns satisfies the PPG
// invariants.

func parserSeeds() []string {
	seeds := []string{
		"",
		";",
		"CONSTRUCT",
		"CONSTRUCT (n) MATCH (n)",
		"CONSTRUCT (n)-[e:a|b {k = 1}]->(m) MATCH (n)",
		"CONSTRUCT (n) MATCH (n)-/3 SHORTEST p <(:a|:b-)* !:C _> COST c/->(m) WHERE c > 0",
		"SELECT n.a AS x MATCH (n) ORDER BY x DESC LIMIT 3",
		"PATH w = (a)-[e]->(b) COST 1 / (1 + e.k) CONSTRUCT (n) MATCH (n)-/p<~w*>/->(m)",
		"GRAPH VIEW v AS (CONSTRUCT (n) MATCH (n:A) WHERE EXISTS (CONSTRUCT () MATCH (n)-[:x]->()))",
		"CONSTRUCT (x GROUP e :C {v := COUNT(*)}) WHEN x.v > 0 MATCH (n {employer=e})",
		"CONSTRUCT a, (n) MATCH (n) ON g UNION CONSTRUCT (m) MATCH (m) MINUS h",
		"CONSTRUCT (=n)-[=y]->(m) MATCH (n)-[y]->(m) OPTIONAL (n)-[:z]->(q) WHERE (q:L)",
		"CONSTRUCT (n) MATCH (n) WHERE CASE n.x WHEN 1 THEN TRUE ELSE FALSE END",
		"CONSTRUCT (n) FROM t",
		"CONSTRUCT (n) MATCH (n) WHERE NOT 'a' IN n.b AND n.c SUBSET n.d",
		"/* comment */ CONSTRUCT (n) # more\nMATCH (n)",
		"CONSTRUCT (n) MATCH (n) WHERE n.a = DATE '1/12/2014'",
		"CONSTRUCT (n) MATCH (n)-/@p:l {t = 0.5}/->(m)",
	}
	for _, q := range parser.PaperQueries {
		seeds = append(seeds, q)
	}
	return seeds
}

func FuzzParse(f *testing.F) {
	for _, s := range parserSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := gcore.Parse(src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		printed := stmt.String()
		again, err := gcore.Parse(printed)
		if err != nil {
			t.Fatalf("parser rejects its own output:\ninput: %q\nprinted: %q\nerr: %v", src, printed, err)
		}
		if again.String() != printed {
			t.Fatalf("printing is not a fixpoint:\nfirst: %q\nsecond: %q", printed, again.String())
		}
	})
}

func FuzzEval(f *testing.F) {
	for _, s := range parserSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		eng, err := repro.NewEngine()
		if err != nil {
			t.Fatal(err)
		}
		// Bound adversarial cartesian products: the engine must reject
		// them with an error, not hang.
		eng.SetMaxBindings(200_000)
		res, err := eng.Eval(src)
		if err != nil {
			return // evaluation errors are fine; panics and invalid graphs are not
		}
		if res.Graph != nil {
			if verr := res.Graph.Validate(); verr != nil {
				t.Fatalf("query produced an invalid graph:\nquery: %q\nviolation: %v", src, verr)
			}
		}
	})
}
