package gcore_test

import (
	"testing"

	"gcore"
	"gcore/internal/csr"
	"gcore/internal/parser"
	"gcore/internal/repro"
)

// Fuzz targets. Without -fuzz these run their seed corpus as ordinary
// tests; with `go test -fuzz=FuzzParse .` they explore the grammar.
// Invariants: the parser never panics and accepts its own output; the
// evaluator never panics and every graph it returns satisfies the PPG
// invariants.

func parserSeeds() []string {
	seeds := []string{
		"",
		";",
		"CONSTRUCT",
		"CONSTRUCT (n) MATCH (n)",
		"CONSTRUCT (n)-[e:a|b {k = 1}]->(m) MATCH (n)",
		"CONSTRUCT (n) MATCH (n)-/3 SHORTEST p <(:a|:b-)* !:C _> COST c/->(m) WHERE c > 0",
		"SELECT n.a AS x MATCH (n) ORDER BY x DESC LIMIT 3",
		"PATH w = (a)-[e]->(b) COST 1 / (1 + e.k) CONSTRUCT (n) MATCH (n)-/p<~w*>/->(m)",
		"GRAPH VIEW v AS (CONSTRUCT (n) MATCH (n:A) WHERE EXISTS (CONSTRUCT () MATCH (n)-[:x]->()))",
		"CONSTRUCT (x GROUP e :C {v := COUNT(*)}) WHEN x.v > 0 MATCH (n {employer=e})",
		"CONSTRUCT a, (n) MATCH (n) ON g UNION CONSTRUCT (m) MATCH (m) MINUS h",
		"CONSTRUCT (=n)-[=y]->(m) MATCH (n)-[y]->(m) OPTIONAL (n)-[:z]->(q) WHERE (q:L)",
		"CONSTRUCT (n) MATCH (n) WHERE CASE n.x WHEN 1 THEN TRUE ELSE FALSE END",
		"CONSTRUCT (n) FROM t",
		"CONSTRUCT (n) MATCH (n) WHERE NOT 'a' IN n.b AND n.c SUBSET n.d",
		"/* comment */ CONSTRUCT (n) # more\nMATCH (n)",
		"CONSTRUCT (n) MATCH (n) WHERE n.a = DATE '1/12/2014'",
		"CONSTRUCT (n) MATCH (n)-/@p:l {t = 0.5}/->(m)",
	}
	for _, q := range parser.PaperQueries {
		seeds = append(seeds, q)
	}
	return seeds
}

func FuzzParse(f *testing.F) {
	for _, s := range parserSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := gcore.Parse(src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		printed := stmt.String()
		again, err := gcore.Parse(printed)
		if err != nil {
			t.Fatalf("parser rejects its own output:\ninput: %q\nprinted: %q\nerr: %v", src, printed, err)
		}
		if again.String() != printed {
			t.Fatalf("printing is not a fixpoint:\nfirst: %q\nsecond: %q", printed, again.String())
		}
	})
}

// FuzzSnapshot drives the CSR remap boundary with random graph
// shapes: for any graph, Snapshot() ordinals must round-trip through
// identifiers, adjacency must agree with the ppg maps edge for edge
// (in order), and label membership must agree with the string sets.
func FuzzSnapshot(f *testing.F) {
	f.Add(uint32(1), uint8(8), uint8(12))
	f.Add(uint32(42), uint8(1), uint8(0))
	f.Add(uint32(7), uint8(40), uint8(90))
	f.Fuzz(func(t *testing.T, seed uint32, nNodes, nEdges uint8) {
		g := gcore.NewGraph("fuzz")
		labels := []string{"A", "B", "C", "knows", "likes"}
		rnd := seed
		next := func(mod int) int {
			// xorshift: deterministic, no time dependence
			rnd ^= rnd << 13
			rnd ^= rnd >> 17
			rnd ^= rnd << 5
			return int(rnd % uint32(mod))
		}
		var ids []gcore.NodeID
		for i := 0; i < int(nNodes); i++ {
			id := gcore.NodeID(next(1000))
			ls := gcore.NewLabels()
			if next(2) == 0 {
				ls = gcore.NewLabels(labels[next(len(labels))])
			}
			if g.AddNode(&gcore.Node{ID: id, Labels: ls}) == nil {
				ids = append(ids, id)
			}
		}
		if len(ids) > 0 {
			for i := 0; i < int(nEdges); i++ {
				e := &gcore.Edge{
					ID:  gcore.EdgeID(10_000 + next(10_000)),
					Src: ids[next(len(ids))], Dst: ids[next(len(ids))],
					Labels: gcore.NewLabels(labels[next(len(labels))]),
				}
				_ = g.AddEdge(e)
			}
		}

		s := csr.Of(g)
		if s.NumNodes() != g.NumNodes() || s.NumEdges() != g.NumEdges() {
			t.Fatalf("snapshot size mismatch: %d/%d nodes, %d/%d edges",
				s.NumNodes(), g.NumNodes(), s.NumEdges(), g.NumEdges())
		}
		for u := int32(0); u < int32(s.NumNodes()); u++ {
			id := s.NodeID(u)
			back, ok := s.Ord(id)
			if !ok || back != u {
				t.Fatalf("ordinal %d → id %d → ordinal %d (%v): round trip broken", u, id, back, ok)
			}
			out := g.OutEdges(id)
			if len(out) != len(s.Out(u)) {
				t.Fatalf("out degree of #%d: csr %d, ppg %d", id, len(s.Out(u)), len(out))
			}
			for i, eo := range s.Out(u) {
				if s.EdgeID(eo) != out[i] {
					t.Fatalf("out adjacency of #%d diverges at %d: csr #%d, ppg #%d", id, i, s.EdgeID(eo), out[i])
				}
			}
			in := g.InEdges(id)
			if len(in) != len(s.In(u)) {
				t.Fatalf("in degree of #%d: csr %d, ppg %d", id, len(s.In(u)), len(in))
			}
			for i, eo := range s.In(u) {
				if s.EdgeID(eo) != in[i] {
					t.Fatalf("in adjacency of #%d diverges at %d: csr #%d, ppg #%d", id, i, s.EdgeID(eo), in[i])
				}
			}
			nd, _ := g.Node(id)
			for _, l := range labels {
				if s.NodeHasLabel(u, s.LabelID(l)) != nd.Labels.Has(l) {
					t.Fatalf("label %q membership of #%d diverges", l, id)
				}
			}
		}
		for e := int32(0); e < int32(s.NumEdges()); e++ {
			eo, ok := s.EdgeOrd(s.EdgeID(e))
			if !ok || eo != e {
				t.Fatalf("edge ordinal %d round trip broken", e)
			}
			ed, _ := g.Edge(s.EdgeID(e))
			if s.NodeID(s.Src(e)) != ed.Src || s.NodeID(s.Dst(e)) != ed.Dst {
				t.Fatalf("edge #%d endpoints diverge", ed.ID)
			}
		}
	})
}

func FuzzEval(f *testing.F) {
	for _, s := range parserSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		eng, err := repro.NewEngine()
		if err != nil {
			t.Fatal(err)
		}
		// Bound adversarial cartesian products: the engine must reject
		// them with an error, not hang.
		eng.SetMaxBindings(200_000)
		res, err := eng.Eval(src)
		if err != nil {
			return // evaluation errors are fine; panics and invalid graphs are not
		}
		if res.Graph != nil {
			if verr := res.Graph.Validate(); verr != nil {
				t.Fatalf("query produced an invalid graph:\nquery: %q\nviolation: %v", src, verr)
			}
		}
	})
}

// FuzzParamInline: evaluating a statement with $a/$b parameter
// bindings must be indistinguishable from splicing the literals into
// the source text — the uncached fallback is the oracle for the
// parameterised path.
func FuzzParamInline(f *testing.F) {
	for _, s := range []string{
		`SELECT n.firstName AS x MATCH (n:Person) WHERE n.employer = $b ORDER BY x`,
		`CONSTRUCT (n) MATCH (n:Person) WHERE n.age > $a`,
		`SELECT n.firstName AS x MATCH (n) WHERE n.age = $a OR n.firstName = $b ORDER BY x`,
		`CONSTRUCT (n {score := $a}) MATCH (n:Person)`,
		`CONSTRUCT (n) MATCH (n)-[e]->(m) WHERE e.since >= $a AND m.name <> $b`,
	} {
		f.Add(s, int64(30), "Acme")
	}
	f.Fuzz(func(t *testing.T, src string, iv int64, sv string) {
		params := map[string]gcore.Value{"a": gcore.Int(iv), "b": gcore.Str(sv)}
		inlined, err := parser.InlineParams(src, params)
		if err != nil {
			return // lex errors or parameters beyond $a/$b: nothing to compare
		}
		paramEng, err := repro.NewEngine()
		if err != nil {
			t.Fatal(err)
		}
		paramEng.SetMaxBindings(200_000)
		prep, err := paramEng.Prepare(src)
		if err != nil {
			// The statement itself is invalid; the inlined form must
			// agree that it is.
			inlineEng, ierr := repro.NewEngine()
			if ierr != nil {
				t.Fatal(ierr)
			}
			if _, ierr := inlineEng.Eval(inlined); ierr == nil {
				t.Fatalf("Prepare rejected %q (%v) but the inlined form evaluated", src, err)
			}
			return
		}
		gotRes, gotErr := prep.Eval(params)
		inlineEng, err := repro.NewEngine()
		if err != nil {
			t.Fatal(err)
		}
		inlineEng.SetMaxBindings(200_000)
		wantRes, wantErr := inlineEng.Eval(inlined)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("success diverged for %q:\nparam err:  %v\ninline err: %v", src, gotErr, wantErr)
		}
		if gotErr != nil {
			return // both failed; messages may name the expression differently
		}
		got := renderResult(gotRes, nil)
		want := renderResult(wantRes, nil)
		if got != want {
			t.Fatalf("parameterised result diverged from inlined literals\nquery: %q\nparam:\n%s\ninline:\n%s", src, got, want)
		}
	})
}
