package gcore_test

import (
	"fmt"
	"sort"
	"testing"

	"gcore"
	"gcore/internal/core"
	"gcore/internal/parser"
	"gcore/internal/repro"
	"gcore/internal/rpq"
)

// Differential tests between the CSR evaluation path (the default)
// and the legacy map-based path (core.DisableCSR + rpq.UseLegacy).
// Every paper example and a set of SNB-toy queries must produce
// byte-identical serialized results under both paths, sequentially
// and in parallel — the CSR snapshot layer is a pure performance
// optimisation with no observable behaviour of its own.

// renderResult serializes a query outcome deterministically: the
// table rendering, the graph's canonical JSON, or the error text.
func renderResult(res *gcore.Result, err error) string {
	if err != nil {
		return "ERR: " + err.Error()
	}
	out := ""
	if res.Table != nil {
		out += "TABLE\n" + res.Table.String()
	}
	if res.Graph != nil {
		data, jerr := res.Graph.MarshalJSON()
		if jerr != nil {
			return "MARSHAL-ERR: " + jerr.Error()
		}
		out += "GRAPH\n" + string(data)
	}
	return out
}

// evalConfigured runs one query on a fresh engine built by setup,
// with the CSR path on or off and the given worker count.
func evalConfigured(t *testing.T, setup func(t *testing.T) *gcore.Engine, query string, legacy bool, workers int) string {
	t.Helper()
	core.DisableCSR = legacy
	rpq.UseLegacy = legacy
	defer func() {
		core.DisableCSR = false
		rpq.UseLegacy = false
	}()
	eng := setup(t)
	eng.SetParallelism(workers)
	res, err := eng.Eval(query)
	return renderResult(res, err)
}

// tourEngine builds the guided-tour toy database.
func tourEngine(t *testing.T) *gcore.Engine {
	t.Helper()
	eng, err := repro.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// snbQueries returns an SNB toy engine setup and the query set
// exercising the hot kernels: indexed scans, multi-hop joins,
// reachability, stored shortest paths and weighted view search.
func snbQueries() (func(t *testing.T) *gcore.Engine, []string) {
	setup := func(t *testing.T) *gcore.Engine {
		t.Helper()
		eng := gcore.NewEngine()
		social, _ := eng.GenerateSNB(gcore.SNBConfig{Persons: 60, Seed: 1})
		if err := eng.RegisterGraph(social); err != nil {
			t.Fatal(err)
		}
		if err := eng.SetDefaultGraph(social.Name()); err != nil {
			t.Fatal(err)
		}
		return eng
	}
	queries := []string{
		`SELECT c.name AS name MATCH (c:City) ORDER BY name`,
		`SELECT n.firstName AS a, m.firstName AS b
MATCH (n:Person)-[:knows]->(m:Person)-[:isLocatedIn]->(c:City)
WHERE c.name = 'City0' ORDER BY a, b`,
		`CONSTRUCT (m) MATCH (n:Person)-/<:knows*>/->(m:Person) WHERE n.anchor = TRUE`,
		`CONSTRUCT (n)-/@p:reach/->(m)
MATCH (n:Person)-/p<:knows*>/->(m:Person) WHERE n.anchor = TRUE`,
		`CONSTRUCT (n)-[e]->(m) SET e.nr_messages := COUNT(*)
MATCH (n)-[e:knows]->(m) WHERE (n:Person) AND (m:Person)`,
		`SELECT n.firstName AS a, m.firstName AS b
MATCH (n:Person)<-[:has_creator]-(msg:Post|Comment)-[:has_creator]->(m:Person)
ORDER BY a, b`,
	}
	return setup, queries
}

// TestCSRDifferentialPaper: every paper example query renders
// byte-identically with and without the CSR kernels, sequentially and
// in parallel.
func TestCSRDifferentialPaper(t *testing.T) {
	keys := make([]string, 0, len(parser.PaperQueries))
	for k := range parser.PaperQueries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		query := parser.PaperQueries[key]
		t.Run(key, func(t *testing.T) {
			for _, workers := range []int{1, 0} {
				want := evalConfigured(t, tourEngine, query, true, workers)
				got := evalConfigured(t, tourEngine, query, false, workers)
				if got != want {
					t.Fatalf("workers=%d: CSR result diverged from legacy\ncsr:\n%s\nlegacy:\n%s", workers, got, want)
				}
			}
		})
	}
}

// evalPropCols runs one query with the columnar property store on or
// off (the CSR path itself stays on) and the given worker count.
func evalPropCols(t *testing.T, setup func(t *testing.T) *gcore.Engine, query string, disable bool, workers int) string {
	t.Helper()
	core.DisablePropColumns = disable
	defer func() { core.DisablePropColumns = false }()
	eng := setup(t)
	eng.SetParallelism(workers)
	res, err := eng.Eval(query)
	return renderResult(res, err)
}

// TestPropColumnsDifferential: predicates over FSET(V) properties —
// multi-valued employer sets, absent properties, typed range scans —
// render byte-identically with the columnar property store on and
// off, sequentially and in parallel. The SNB generator leaves ~10% of
// persons without an employer and gives ~10% a two-element set, so
// the employer column overflows and every absent/multi-valued branch
// of the predicate compiler runs.
func TestPropColumnsDifferential(t *testing.T) {
	setup, _ := snbQueries()
	queries := []string{
		// Eq on the overflow employer column: multi-valued rows
		// scalarize to NULL (drop), absent rows to the empty set.
		`SELECT p.firstName AS f, p.lastName AS l MATCH (p:Person)
WHERE p.employer = 'Company0' ORDER BY f, l`,
		// Neq keeps multi-valued and absent behaviour aligned too.
		`SELECT p.firstName AS f MATCH (p:Person)
WHERE p.employer <> 'Company1' ORDER BY f`,
		// IN reaches inside multi-valued sets; absent gives FALSE.
		`SELECT p.firstName AS f, p.lastName AS l MATCH (p:Person)
WHERE 'Company2' IN p.employer ORDER BY f, l`,
		// SUBSET: the empty set is a subset of everything, so rows
		// with no employer are KEPT — the absent-keep branch.
		`SELECT p.firstName AS f, p.lastName AS l MATCH (p:Person)
WHERE p.employer SUBSET 'Company0' ORDER BY f, l`,
		// Range over the typed string column (interner id order).
		`SELECT p.lastName AS l MATCH (p:Person)
WHERE p.lastName >= 'Mayer' AND p.lastName < 'Reyes' ORDER BY l`,
		// Absent property under a typed column: anchor is only set on
		// the anchor person; everyone else must fall out via the
		// presence bitmap, not a zero value.
		`SELECT p.firstName AS f MATCH (p:Person)
WHERE p.anchor = TRUE ORDER BY f`,
		// Equality against a property that no node defines at all
		// (no column exists; absent-keep semantics decide alone).
		`SELECT p.firstName AS f MATCH (p:Person)
WHERE p.nickname = 'none' ORDER BY f`,
	}
	for i, query := range queries {
		t.Run(fmt.Sprintf("q%d", i), func(t *testing.T) {
			for _, workers := range []int{1, 0} {
				want := evalPropCols(t, setup, query, true, workers)
				got := evalPropCols(t, setup, query, false, workers)
				if got != want {
					t.Fatalf("workers=%d: columnar result diverged from row-at-a-time\ncolumns:\n%s\nmaps:\n%s", workers, got, want)
				}
			}
		})
	}
}

// TestPropColumnsDifferentialTour: the same knob identity over every
// paper example on the guided-tour database (employer there is also
// multi-valued for some people and absent for Peter).
func TestPropColumnsDifferentialTour(t *testing.T) {
	keys := make([]string, 0, len(parser.PaperQueries))
	for k := range parser.PaperQueries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		query := parser.PaperQueries[key]
		t.Run(key, func(t *testing.T) {
			for _, workers := range []int{1, 0} {
				want := evalPropCols(t, tourEngine, query, true, workers)
				got := evalPropCols(t, tourEngine, query, false, workers)
				if got != want {
					t.Fatalf("workers=%d: columnar result diverged from row-at-a-time\ncolumns:\n%s\nmaps:\n%s", workers, got, want)
				}
			}
		})
	}
}

// TestCSRDifferentialSNB: the same byte-identity on the synthetic SNB
// toy graph.
func TestCSRDifferentialSNB(t *testing.T) {
	setup, queries := snbQueries()
	for i, query := range queries {
		t.Run(fmt.Sprintf("q%d", i), func(t *testing.T) {
			for _, workers := range []int{1, 0} {
				want := evalConfigured(t, setup, query, true, workers)
				got := evalConfigured(t, setup, query, false, workers)
				if got != want {
					t.Fatalf("workers=%d: CSR result diverged from legacy\ncsr:\n%s\nlegacy:\n%s", workers, got, want)
				}
			}
		})
	}
}
