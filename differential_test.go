package gcore_test

import (
	"fmt"
	"sort"
	"testing"

	"gcore"
	"gcore/internal/core"
	"gcore/internal/parser"
	"gcore/internal/repro"
	"gcore/internal/rpq"
)

// Differential tests between the CSR evaluation path (the default)
// and the legacy map-based path (core.DisableCSR + rpq.UseLegacy).
// Every paper example and a set of SNB-toy queries must produce
// byte-identical serialized results under both paths, sequentially
// and in parallel — the CSR snapshot layer is a pure performance
// optimisation with no observable behaviour of its own.

// renderResult serializes a query outcome deterministically: the
// table rendering, the graph's canonical JSON, or the error text.
func renderResult(res *gcore.Result, err error) string {
	if err != nil {
		return "ERR: " + err.Error()
	}
	out := ""
	if res.Table != nil {
		out += "TABLE\n" + res.Table.String()
	}
	if res.Graph != nil {
		data, jerr := res.Graph.MarshalJSON()
		if jerr != nil {
			return "MARSHAL-ERR: " + jerr.Error()
		}
		out += "GRAPH\n" + string(data)
	}
	return out
}

// evalConfigured runs one query on a fresh engine built by setup,
// with the CSR path on or off and the given worker count.
func evalConfigured(t *testing.T, setup func(t *testing.T) *gcore.Engine, query string, legacy bool, workers int) string {
	t.Helper()
	core.DisableCSR = legacy
	rpq.UseLegacy = legacy
	defer func() {
		core.DisableCSR = false
		rpq.UseLegacy = false
	}()
	eng := setup(t)
	eng.SetParallelism(workers)
	res, err := eng.Eval(query)
	return renderResult(res, err)
}

// tourEngine builds the guided-tour toy database.
func tourEngine(t *testing.T) *gcore.Engine {
	t.Helper()
	eng, err := repro.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// snbQueries returns an SNB toy engine setup and the query set
// exercising the hot kernels: indexed scans, multi-hop joins,
// reachability, stored shortest paths and weighted view search.
func snbQueries() (func(t *testing.T) *gcore.Engine, []string) {
	setup := func(t *testing.T) *gcore.Engine {
		t.Helper()
		eng := gcore.NewEngine()
		social, _ := eng.GenerateSNB(gcore.SNBConfig{Persons: 60, Seed: 1})
		if err := eng.RegisterGraph(social); err != nil {
			t.Fatal(err)
		}
		if err := eng.SetDefaultGraph(social.Name()); err != nil {
			t.Fatal(err)
		}
		return eng
	}
	queries := []string{
		`SELECT c.name AS name MATCH (c:City) ORDER BY name`,
		`SELECT n.firstName AS a, m.firstName AS b
MATCH (n:Person)-[:knows]->(m:Person)-[:isLocatedIn]->(c:City)
WHERE c.name = 'City0' ORDER BY a, b`,
		`CONSTRUCT (m) MATCH (n:Person)-/<:knows*>/->(m:Person) WHERE n.anchor = TRUE`,
		`CONSTRUCT (n)-/@p:reach/->(m)
MATCH (n:Person)-/p<:knows*>/->(m:Person) WHERE n.anchor = TRUE`,
		`CONSTRUCT (n)-[e]->(m) SET e.nr_messages := COUNT(*)
MATCH (n)-[e:knows]->(m) WHERE (n:Person) AND (m:Person)`,
		`SELECT n.firstName AS a, m.firstName AS b
MATCH (n:Person)<-[:has_creator]-(msg:Post|Comment)-[:has_creator]->(m:Person)
ORDER BY a, b`,
	}
	return setup, queries
}

// TestCSRDifferentialPaper: every paper example query renders
// byte-identically with and without the CSR kernels, sequentially and
// in parallel.
func TestCSRDifferentialPaper(t *testing.T) {
	keys := make([]string, 0, len(parser.PaperQueries))
	for k := range parser.PaperQueries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		query := parser.PaperQueries[key]
		t.Run(key, func(t *testing.T) {
			for _, workers := range []int{1, 0} {
				want := evalConfigured(t, tourEngine, query, true, workers)
				got := evalConfigured(t, tourEngine, query, false, workers)
				if got != want {
					t.Fatalf("workers=%d: CSR result diverged from legacy\ncsr:\n%s\nlegacy:\n%s", workers, got, want)
				}
			}
		})
	}
}

// TestCSRDifferentialSNB: the same byte-identity on the synthetic SNB
// toy graph.
func TestCSRDifferentialSNB(t *testing.T) {
	setup, queries := snbQueries()
	for i, query := range queries {
		t.Run(fmt.Sprintf("q%d", i), func(t *testing.T) {
			for _, workers := range []int{1, 0} {
				want := evalConfigured(t, setup, query, true, workers)
				got := evalConfigured(t, setup, query, false, workers)
				if got != want {
					t.Fatalf("workers=%d: CSR result diverged from legacy\ncsr:\n%s\nlegacy:\n%s", workers, got, want)
				}
			}
		})
	}
}
