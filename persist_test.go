package gcore_test

import (
	"os"
	"path/filepath"
	"testing"

	"gcore"
	"gcore/internal/repro"
)

func TestSaveLoadCatalog(t *testing.T) {
	eng, err := repro.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	// Materialise the Fig. 5 views so stored paths are persisted too.
	if _, err := eng.Eval(`GRAPH VIEW sg1 AS (
CONSTRUCT social_graph, (n)-[e]->(m) SET e.nr_messages := COUNT(*)
MATCH (n)-[e:knows]->(m) WHERE (n:Person) AND (m:Person)
OPTIONAL (n)<-[c1]-(msg1:Post|Comment), (msg1)-[:reply_of]-(msg2),
         (msg2:Post|Comment)-[c2]->(m)
WHERE (c1:has_creator) AND (c2:has_creator))`); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Eval(`GRAPH VIEW wagner AS (
PATH wKnows = (x)-[e:knows]->(y) WHERE NOT 'Acme' IN y.employer
     COST 1 / (1 + e.nr_messages)
CONSTRUCT sg1, (n)-/@p:toWagner/->(m)
MATCH (n:Person)-/p<~wKnows*>/->(m:Person) ON sg1
WHERE (m)-[:hasInterest]->(:Tag {name='Wagner'})
AND n.firstName = 'John')`); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	if err := eng.SaveCatalog(dir); err != nil {
		t.Fatal(err)
	}
	// Files exist.
	for _, f := range []string{"catalog.json", "graph_social_graph.json", "graph_wagner.json", "table_orders.json"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing %s: %v", f, err)
		}
	}

	// Load into a fresh engine; everything must still work.
	eng2 := gcore.NewEngine()
	if err := eng2.LoadCatalog(dir); err != nil {
		t.Fatal(err)
	}
	g, ok := eng2.Graph("wagner")
	if !ok || g.NumPaths() != 2 {
		t.Fatalf("wagner view after reload: %v (paths=%d)", ok, g.NumPaths())
	}
	// The default graph is restored: this MATCH has no ON.
	res, err := eng2.Eval(`SELECT n.firstName AS name MATCH (n:Person) ORDER BY name LIMIT 1`)
	if err != nil || res.Table.Len() != 1 {
		t.Fatalf("query after reload: %v, %v", res, err)
	}
	// Stored paths survive and are queryable.
	res, err = eng2.Eval(`SELECT id(p) AS pid MATCH ()-/@p:toWagner/->() ON wagner`)
	if err != nil || res.Table.Len() != 2 {
		t.Fatalf("stored paths after reload: %v, %v", res, err)
	}
	// The orders table works.
	res, err = eng2.Eval(`SELECT custName AS c FROM orders`)
	if err != nil || res.Table.Len() != 5 {
		t.Fatalf("table after reload: %v, %v", res, err)
	}
	// Fresh identifiers do not collide with loaded ones.
	res2, err := eng2.Eval(`CONSTRUCT (x :New) MATCH (n:Person) WHERE n.firstName = 'John'`)
	if err != nil {
		t.Fatal(err)
	}
	newID := res2.Graph.NodeIDs()[0]
	for _, name := range eng2.GraphNames() {
		old, _ := eng2.Graph(name)
		if _, clash := old.Node(newID); clash {
			t.Fatalf("fresh id %d collides with graph %s", newID, name)
		}
	}
}

func TestLoadCatalogErrors(t *testing.T) {
	eng := gcore.NewEngine()
	if err := eng.LoadCatalog("/nonexistent-dir"); err == nil {
		t.Error("missing directory must fail")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "catalog.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := eng.LoadCatalog(dir); err == nil {
		t.Error("corrupt manifest must fail")
	}
	// Manifest referencing a missing graph file.
	if err := os.WriteFile(filepath.Join(dir, "catalog.json"),
		[]byte(`{"graphs":["ghost"],"tables":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := eng.LoadCatalog(dir); err == nil {
		t.Error("missing graph file must fail")
	}
	// Path-escaping names are rejected.
	if err := os.WriteFile(filepath.Join(dir, "catalog.json"),
		[]byte(`{"graphs":["../evil"],"tables":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := eng.LoadCatalog(dir); err == nil {
		t.Error("path-escaping name must fail")
	}
}

func TestSaveCatalogRejectsUnsafeNames(t *testing.T) {
	eng := gcore.NewEngine()
	g := gcore.NewGraph("weird/name")
	if err := g.AddNode(&gcore.Node{ID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterGraph(g); err != nil {
		t.Fatal(err)
	}
	if err := eng.SaveCatalog(t.TempDir()); err == nil {
		t.Error("unsafe graph name must fail to save")
	}
}
