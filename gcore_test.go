package gcore_test

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"gcore"
)

func newEngine(t *testing.T) *gcore.Engine {
	t.Helper()
	eng := gcore.NewEngine()
	if err := eng.RegisterGraph(gcore.SampleSocialGraph()); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterGraph(gcore.SampleCompanyGraph()); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterTable(gcore.SampleOrdersTable()); err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestEngineQuickstart(t *testing.T) {
	eng := newEngine(t)
	res, err := eng.Eval(`
		CONSTRUCT (n)
		MATCH (n:Person) ON social_graph
		WHERE n.employer = 'Acme'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph == nil || res.Graph.NumNodes() != 2 {
		t.Fatalf("result = %v", res.Graph)
	}
}

func TestEngineViewsPersist(t *testing.T) {
	eng := newEngine(t)
	if _, err := eng.Eval(`GRAPH VIEW acme AS (
		CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme')`); err != nil {
		t.Fatal(err)
	}
	g, ok := eng.Graph("acme")
	if !ok || g.NumNodes() != 2 {
		t.Fatalf("view = %v, %v", g, ok)
	}
	names := eng.GraphNames()
	if !contains(names, "acme") || !contains(names, "social_graph") {
		t.Errorf("names = %v", names)
	}
	// The view is queryable.
	res, err := eng.Eval(`CONSTRUCT (n) MATCH (n) ON acme WHERE n.firstName = 'John'`)
	if err != nil || res.Graph.NumNodes() != 1 {
		t.Fatalf("query over view: %v, %v", res, err)
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

func TestEngineEvalScript(t *testing.T) {
	eng := newEngine(t)
	results, err := eng.EvalScript(`
		GRAPH VIEW acme AS (CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme');
		SELECT n.firstName AS name MATCH (n) ON acme ORDER BY name;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	tbl := results[1].Table
	if tbl == nil || tbl.Len() != 2 {
		t.Fatalf("table = %v", tbl)
	}
	if v, _ := tbl.Rows[0][0].Scalarize().AsString(); v != "Alice" {
		t.Errorf("first = %q", v)
	}
	// Errors carry the statement number.
	_, err = eng.EvalScript(`CONSTRUCT (n) MATCH (n); CONSTRUCT (n) MATCH (n) ON nope;`)
	if err == nil || !strings.Contains(err.Error(), "statement 2") {
		t.Errorf("err = %v", err)
	}
}

func TestEngineRejectsInvalidGraph(t *testing.T) {
	eng := gcore.NewEngine()
	g := gcore.NewGraph("bad")
	// A path with a missing node cannot even be built via AddPath, so
	// build a valid graph and corrupt nothing — instead check the
	// nameless-graph rejection path.
	if err := eng.RegisterGraph(gcore.NewGraph("")); err == nil {
		t.Error("nameless graph must be rejected")
	}
	_ = g
}

func TestEngineJSONRoundTrip(t *testing.T) {
	eng := newEngine(t)
	g, _ := eng.Graph("social_graph")
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	eng2 := gcore.NewEngine()
	loaded, err := eng2.LoadGraphJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumNodes() != g.NumNodes() || loaded.NumEdges() != g.NumEdges() {
		t.Error("JSON round trip changed the graph")
	}
	// Loaded graph is queryable and is the default.
	res, err := eng2.Eval(`CONSTRUCT (n) MATCH (n:Person)`)
	if err != nil || res.Graph.NumNodes() != 5 {
		t.Fatalf("query on loaded graph: %v, %v", res, err)
	}
}

func TestValueConstructors(t *testing.T) {
	if gcore.Int(3).IsNull() || !gcore.Null.IsNull() {
		t.Error("constructors misbehave")
	}
	d, err := gcore.Date("1/12/2014")
	if err != nil || d.IsNull() {
		t.Error("date constructor failed")
	}
	if _, err := gcore.Date("bogus"); err == nil {
		t.Error("bad date must fail")
	}
	s := gcore.SetOf(gcore.Str("a"), gcore.Str("a"))
	if s.Len() != 1 {
		t.Error("SetOf must deduplicate")
	}
	l := gcore.ListOf(gcore.Int(1), gcore.Int(1))
	if l.Len() != 2 {
		t.Error("ListOf must preserve duplicates")
	}
	if b, ok := gcore.Bool(true).AsBool(); !ok || !b {
		t.Error("booleans misbehave")
	}
	if gcore.Float(0.5).IsNull() {
		t.Error("float constructor failed")
	}
}

func TestGraphSetOpsPublic(t *testing.T) {
	a := gcore.SampleSocialGraph()
	b := gcore.SampleSocialGraph()
	u := gcore.GraphUnion("u", a, b)
	if u.NumNodes() != a.NumNodes() {
		t.Error("union of identical graphs must be idempotent")
	}
	i := gcore.GraphIntersect("i", a, b)
	if i.NumNodes() != a.NumNodes() {
		t.Error("intersection of identical graphs must be identity")
	}
	m := gcore.GraphMinus("m", a, b)
	if !m.IsEmpty() {
		t.Error("difference with itself must be empty")
	}
}

func TestIDAllocation(t *testing.T) {
	eng := newEngine(t)
	n1 := eng.NextNodeID()
	e1 := eng.NextEdgeID()
	p1 := eng.NextPathID()
	if uint64(n1) == uint64(e1) || uint64(e1) == uint64(p1) {
		t.Error("identifier collision")
	}
	// Fresh ids never collide with dataset ids.
	g, _ := eng.Graph("social_graph")
	if _, ok := g.Node(n1); ok {
		t.Error("fresh id collides with dataset")
	}
}

func TestGenerateSNB(t *testing.T) {
	social, companies := gcore.GenerateSNB(gcore.SNBConfig{Persons: 40, Seed: 1})
	if social.NumNodes() == 0 || companies.NumNodes() == 0 {
		t.Fatal("generator produced empty graphs")
	}
	eng := gcore.NewEngine()
	s2, _ := eng.GenerateSNB(gcore.SNBConfig{Persons: 40, Seed: 1})
	if err := eng.RegisterGraph(s2); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Eval(`CONSTRUCT (n) MATCH (n:Person)`)
	if err != nil || res.Graph.NumNodes() != 40 {
		t.Fatalf("generated persons = %v, %v", res, err)
	}
}

func TestParsePublic(t *testing.T) {
	stmt, err := gcore.Parse(`CONSTRUCT (n) MATCH (n:Person)`)
	if err != nil {
		t.Fatal(err)
	}
	eng := newEngine(t)
	res, err := eng.EvalStatement(stmt)
	if err != nil || res.Graph.NumNodes() != 5 {
		t.Fatalf("EvalStatement: %v, %v", res, err)
	}
	if _, err := gcore.Parse(`MATCH`); err == nil {
		t.Error("parse error expected")
	}
}

func TestEngineConcurrentEval(t *testing.T) {
	eng := newEngine(t)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := eng.Eval(`CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme'`)
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestPublicHelpers(t *testing.T) {
	ls := gcore.NewLabels("B", "A", "B")
	if len(ls) != 2 || !ls.Has("A") {
		t.Errorf("NewLabels = %v", ls)
	}
	props := gcore.NewProperties(map[string]gcore.Value{"k": gcore.Int(1)})
	if props.Get("k").Len() != 1 {
		t.Errorf("NewProperties = %v", props)
	}
	tbl, err := gcore.ReadTableCSV("t", strings.NewReader("a,b\n1,x\n"))
	if err != nil || tbl.Len() != 1 {
		t.Fatalf("ReadTableCSV: %v, %v", tbl, err)
	}
	eng := newEngine(t)
	names := eng.TableNames()
	if len(names) != 1 || names[0] != "orders" {
		t.Errorf("TableNames = %v", names)
	}
}

func TestExplainPublic(t *testing.T) {
	eng := newEngine(t)
	plan, err := eng.Explain(`CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme'`)
	if err != nil || !strings.Contains(plan, "node scan") {
		t.Errorf("plan = %q, %v", plan, err)
	}
	if _, err := eng.Explain(`MATCH`); err == nil {
		t.Error("bad query must fail to explain")
	}
}

func TestMaxBindingsBudget(t *testing.T) {
	eng := newEngine(t)
	eng.SetMaxBindings(100)
	// Five disconnected unlabeled patterns: a cartesian monster.
	_, err := eng.Eval(`CONSTRUCT (a) MATCH (a), (b), (c), (d), (e)`)
	if err == nil || !strings.Contains(err.Error(), "binding limit") {
		t.Fatalf("budget not enforced: %v", err)
	}
	// Normal queries still fit.
	res, err := eng.Eval(`CONSTRUCT (n) MATCH (n:Person)`)
	if err != nil || res.Graph.NumNodes() != 5 {
		t.Fatalf("normal query under budget: %v, %v", res, err)
	}
	// Unlimited again.
	eng.SetMaxBindings(0)
	if _, err := eng.Eval(`CONSTRUCT (a) MATCH (a:Tag), (b:Tag), (c:Tag), (d:Tag), (e:Tag)`); err != nil {
		t.Fatalf("unlimited: %v", err)
	}
}
