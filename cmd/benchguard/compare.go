package main

import (
	"bufio"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// metric is the averaged measurements of one benchmark across the
// repeated -count runs of a file.
type metric struct {
	ns     float64
	allocs float64
	hasMem bool
	n      int
}

// stripProcSuffix removes the trailing "-<GOMAXPROCS>" go test
// appends to benchmark names, so files from machines with different
// core counts compare by the logical benchmark name.
func stripProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// parseBenchLine decodes one `BenchmarkX-8 N 12.3 ns/op 4 B/op
// 2 allocs/op` line; ok is false for headers, PASS, ok … lines.
func parseBenchLine(line string) (name string, m metric, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", metric{}, false
	}
	if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
		return "", metric{}, false
	}
	m.n = 1
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", metric{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			m.ns = v
			seen = true
		case "allocs/op":
			m.allocs = v
			m.hasMem = true
		}
	}
	return stripProcSuffix(fields[0]), m, seen
}

// parseBench averages the repeated runs of each benchmark in one
// `go test -bench` output stream.
func parseBench(lines []string) map[string]metric {
	out := map[string]metric{}
	for _, line := range lines {
		name, m, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		acc := out[name]
		acc.ns += m.ns
		acc.allocs += m.allocs
		acc.hasMem = acc.hasMem || m.hasMem
		acc.n += m.n
		out[name] = acc
	}
	for name, acc := range out {
		acc.ns /= float64(acc.n)
		acc.allocs /= float64(acc.n)
		out[name] = acc
	}
	return out
}

func loadBench(path string) (map[string]metric, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var lines []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	recs := parseBench(lines)
	if len(recs) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines", path)
	}
	return recs, nil
}

// result is the outcome of one guard comparison.
type result struct {
	lines    []string
	failures []string
	checked  int
}

func guarded(name string, prefixes []string) bool {
	for _, p := range prefixes {
		p = strings.TrimSpace(p)
		if p != "" && strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// compare checks every guarded head benchmark against the baseline:
// allocs/op beyond the threshold is a failure, ns/op beyond it a
// warning, and guarded baseline benchmarks missing from the head run
// warn as lost coverage.
func compare(base, head map[string]metric, prefixes []string, threshold float64) result {
	var res result
	names := make([]string, 0, len(head))
	for name := range head {
		if guarded(name, prefixes) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		h := head[name]
		b, ok := base[name]
		if !ok {
			res.lines = append(res.lines, fmt.Sprintf("WARN  %s: no baseline entry", name))
			continue
		}
		res.checked++
		if b.hasMem && h.hasMem && b.allocs > 0 {
			ratio := h.allocs / b.allocs
			verdict := "ok  "
			if ratio > 1+threshold {
				verdict = "FAIL"
				res.failures = append(res.failures, name)
			}
			res.lines = append(res.lines, fmt.Sprintf("%s  %s: allocs/op %.1f → %.1f (%+.1f%%)",
				verdict, name, b.allocs, h.allocs, (ratio-1)*100))
		}
		if b.ns > 0 {
			ratio := h.ns / b.ns
			if ratio > 1+threshold {
				res.lines = append(res.lines, fmt.Sprintf("WARN  %s: ns/op %.0f → %.0f (%+.1f%%) — timing only, not fatal",
					name, b.ns, h.ns, (ratio-1)*100))
			}
		}
	}
	for name := range base {
		if guarded(name, prefixes) {
			if _, ok := head[name]; !ok {
				res.lines = append(res.lines, fmt.Sprintf("WARN  %s: guarded baseline benchmark missing from head run", name))
			}
		}
	}
	sort.Strings(res.lines)
	return res
}
