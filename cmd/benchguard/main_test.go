package main

import (
	"strings"
	"testing"
)

func TestStripProcSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkJoin/rows=100-8": "BenchmarkJoin/rows=100",
		"BenchmarkJoin/rows=100":   "BenchmarkJoin/rows=100",
		"BenchmarkX-foo":           "BenchmarkX-foo",
		"BenchmarkParse-16":        "BenchmarkParse",
	}
	for in, want := range cases {
		if got := stripProcSuffix(in); got != want {
			t.Errorf("stripProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseBenchAverages(t *testing.T) {
	recs := parseBench([]string{
		"goos: linux",
		"BenchmarkJoin/rows=100-8   100   1000 ns/op   512 B/op   10 allocs/op",
		"BenchmarkJoin/rows=100-8   100   3000 ns/op   512 B/op   20 allocs/op",
		"PASS",
	})
	m, ok := recs["BenchmarkJoin/rows=100"]
	if !ok || m.n != 2 {
		t.Fatalf("records = %v", recs)
	}
	if m.ns != 2000 || m.allocs != 15 || !m.hasMem {
		t.Errorf("averaged metric = %+v", m)
	}
}

func TestCompareVerdicts(t *testing.T) {
	base := parseBench([]string{
		"BenchmarkJoin/rows=100-8      100  1000 ns/op  512 B/op  100 allocs/op",
		"BenchmarkParallelMatch-8      100  1000 ns/op  512 B/op  100 allocs/op",
		"BenchmarkGroupBy-8            100  1000 ns/op  512 B/op  100 allocs/op",
		"BenchmarkDropped-8            100  1000 ns/op  512 B/op  100 allocs/op",
	})
	head := parseBench([]string{
		// 50% more allocations: fails.
		"BenchmarkJoin/rows=100-4      100  1000 ns/op  512 B/op  150 allocs/op",
		// Allocs fine, 2x slower: warns only.
		"BenchmarkParallelMatch-4      100  2000 ns/op  512 B/op  105 allocs/op",
		// Unguarded: ignored even though it regressed.
		"BenchmarkGroupBy-4            100  9000 ns/op  512 B/op  900 allocs/op",
	})
	guard := []string{"BenchmarkJoin", "BenchmarkParallelMatch", "BenchmarkDropped"}
	res := compare(base, head, guard, 0.20)
	if len(res.failures) != 1 || res.failures[0] != "BenchmarkJoin/rows=100" {
		t.Fatalf("failures = %v", res.failures)
	}
	if res.checked != 2 {
		t.Errorf("checked = %d, want 2", res.checked)
	}
	report := strings.Join(res.lines, "\n")
	if !strings.Contains(report, "FAIL  BenchmarkJoin/rows=100") {
		t.Errorf("missing FAIL line:\n%s", report)
	}
	if !strings.Contains(report, "WARN  BenchmarkParallelMatch: ns/op") {
		t.Errorf("missing timing warning:\n%s", report)
	}
	if !strings.Contains(report, "WARN  BenchmarkDropped: guarded baseline benchmark missing") {
		t.Errorf("missing lost-coverage warning:\n%s", report)
	}
	if strings.Contains(report, "BenchmarkGroupBy") {
		t.Errorf("unguarded benchmark leaked into report:\n%s", report)
	}
	// Within budget: no failures.
	res = compare(base, head, []string{"BenchmarkParallelMatch"}, 0.20)
	if len(res.failures) != 0 || res.checked != 1 {
		t.Fatalf("clean guard: failures=%v checked=%d", res.failures, res.checked)
	}
}
