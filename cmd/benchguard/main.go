// Command benchguard compares two `go test -bench` output files and
// guards the hot-path benchmarks against regressions. Allocation
// counts are deterministic across machines, so an allocs/op increase
// beyond the threshold on a guarded benchmark fails the run (exit 1);
// ns/op is timing- and machine-dependent, so a time regression only
// warns. Benchmarks present in the baseline but missing from the head
// run also warn, so silently dropping a guarded benchmark is visible.
//
// Usage:
//
//	go test -bench 'BenchmarkJoin|BenchmarkParallelMatch|BenchmarkFilteredScan|BenchmarkRepeatedEval|BenchmarkPreparedEval' \
//	    -benchmem -run '^$' . ./internal/bindings | tee bench.head.txt
//	go run ./cmd/benchguard -base bench.base.txt -head bench.head.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

func main() {
	base := flag.String("base", "bench.base.txt", "baseline `go test -bench` output")
	head := flag.String("head", "bench.head.txt", "head `go test -bench` output")
	// BenchmarkParallelMatch runs with the observability span
	// instrumentation live (spans open at every operator boundary),
	// so the guard doubles as the proof that instrumentation stays
	// within the allocation budget.
	// BenchmarkRepeatedEval covers both plan-cache modes (the /cache
	// sub-benchmark is the hit path, /nocache the ablated fallback),
	// and BenchmarkPreparedEval the parameterised prepared-statement
	// path, so a plan-cache regression shows up as an allocation jump.
	// BenchmarkWALAppend guards the per-record durability overhead:
	// every graph mutation pays one append, so an allocation creep
	// here taxes every write; BenchmarkWALGroupCommit the contended
	// SyncAlways path with shared fsyncs.
	// BenchmarkSnapshotDelta and BenchmarkMutateThenRead guard
	// incremental snapshot maintenance: the delta apply must stay
	// O(delta)-allocating, not O(graph), or mixed read/write
	// workloads silently fall back to rebuild-per-read costs.
	// BenchmarkConcurrentRead guards the reader path under the
	// engine's read/write lock split: an allocation jump there means
	// concurrent readers stopped sharing snapshots.
	guard := flag.String("guard", "BenchmarkJoin,BenchmarkParallelMatch,BenchmarkFilteredScan,BenchmarkRepeatedEval,BenchmarkPreparedEval,BenchmarkMutateThenRead,BenchmarkConcurrentRead,BenchmarkSnapshotDelta,BenchmarkWALAppend,BenchmarkWALGroupCommit", "comma-separated benchmark name prefixes to guard")
	threshold := flag.Float64("threshold", 0.20, "allowed fractional regression (0.20 = 20%)")
	flag.Parse()

	baseRecs, err := loadBench(*base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	headRecs, err := loadBench(*head)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	report := compare(baseRecs, headRecs, strings.Split(*guard, ","), *threshold)
	for _, line := range report.lines {
		fmt.Println(line)
	}
	if len(report.failures) > 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %d allocation regression(s) beyond %.0f%%\n",
			len(report.failures), *threshold*100)
		os.Exit(1)
	}
	fmt.Printf("benchguard: %d guarded benchmark(s) within the %.0f%% budget\n",
		report.checked, *threshold*100)
}
