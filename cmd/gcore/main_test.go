package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gcore"
)

func TestRunSingleQuery(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-sample", `CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme'`},
		strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "2 nodes") {
		t.Errorf("output = %q", got)
	}
	if !strings.Contains(got, `firstName: "John"`) {
		t.Errorf("node rendering missing: %q", got)
	}
}

func TestRunSelectQuery(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-sample", `SELECT n.firstName AS name MATCH (n:Person) ORDER BY name LIMIT 2`},
		strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "name") || !strings.Contains(out.String(), `"Alice"`) {
		t.Errorf("table output = %q", out.String())
	}
}

func TestRunJSONAndOut(t *testing.T) {
	dir := t.TempDir()
	outFile := filepath.Join(dir, "result.json")
	var out bytes.Buffer
	err := run([]string{"-sample", "-json", "-out", outFile,
		`CONSTRUCT (n) MATCH (n:Person) WHERE n.firstName = 'John'`},
		strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"nodes"`) {
		t.Errorf("json output = %q", out.String())
	}
	data, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	g := gcore.NewGraph("")
	if err := g.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 1 {
		t.Errorf("saved graph has %d nodes", g.NumNodes())
	}
}

func TestRunLoadGraphAndTable(t *testing.T) {
	dir := t.TempDir()
	gFile := filepath.Join(dir, "g.json")
	fh, err := os.Create(gFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := gcore.SampleSocialGraph().WriteJSON(fh); err != nil {
		t.Fatal(err)
	}
	fh.Close()
	tFile := filepath.Join(dir, "orders.csv")
	if err := os.WriteFile(tFile, []byte("custName,prodCode\nAda,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err = run([]string{"-graph", gFile, "-table", "orders=" + tFile, "-default", "social_graph",
		`SELECT o.custName AS c MATCH (o) ON orders`},
		strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"Ada"`) {
		t.Errorf("output = %q", out.String())
	}
}

func TestRunScriptFile(t *testing.T) {
	dir := t.TempDir()
	sFile := filepath.Join(dir, "s.gcore")
	script := `GRAPH VIEW acme AS (CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme');
SELECT n.firstName AS name MATCH (n) ON acme ORDER BY name;`
	if err := os.WriteFile(sFile, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-sample", "-script", sFile}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"Alice"`) {
		t.Errorf("output = %q", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-table", "bad"}, strings.NewReader(""), &out); err == nil {
		t.Error("bad table spec must fail")
	}
	if err := run([]string{"-graph", "/nonexistent.json"}, strings.NewReader(""), &out); err == nil {
		t.Error("missing graph file must fail")
	}
	if err := run([]string{"-default", "nope"}, strings.NewReader(""), &out); err == nil {
		t.Error("unknown default graph must fail")
	}
	if err := run([]string{"-sample", "-out", "/nonexistent/x.json", `SELECT 1 AS one MATCH (n:Tag)`}, strings.NewReader(""), &out); err == nil {
		t.Error("-out with no graph result must fail")
	}
	if err := run([]string{"-sample", `CONSTRUCT (n) MATCH (n) ON nope`}, strings.NewReader(""), &out); err == nil {
		t.Error("eval error must propagate")
	}
}

func TestREPL(t *testing.T) {
	input := strings.Join([]string{
		`\help`,
		`\graphs`,
		`\tables`,
		`\ast CONSTRUCT (n) MATCH (n:Person)`,
		`\explain CONSTRUCT (n) MATCH (n:Person) WHERE n.firstName = 'John'`,
		`\explain MATCH oops`,
		`CONSTRUCT (n) MATCH (n:Person) WHERE n.firstName = 'John';`,
		`\bogus`,
		`CONSTRUCT (n) MATCH (n) ON nope;`,
		`\quit`,
	}, "\n")
	var out bytes.Buffer
	if err := run([]string{"-sample"}, strings.NewReader(input), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"social_graph", "orders", "CONSTRUCT (n)", "node scan", "⊳ filter", "1 nodes", "unknown command", "error:"} {
		if !strings.Contains(got, want) {
			t.Errorf("REPL output missing %q:\n%s", want, got)
		}
	}
}

func TestREPLSave(t *testing.T) {
	dir := t.TempDir()
	f := filepath.Join(dir, "g.json")
	input := "\\save social_graph " + f + "\n\\save nope x\n\\save onlytwo\n\\quit\n"
	var out bytes.Buffer
	if err := run([]string{"-sample"}, strings.NewReader(input), &out); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(f); err != nil {
		t.Errorf("saved file missing: %v", err)
	}
	if !strings.Contains(out.String(), "unknown graph") || !strings.Contains(out.String(), "usage:") {
		t.Errorf("save error handling missing: %q", out.String())
	}
}

func TestRunGuidedTourScript(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-sample", "-script", "../../testdata/guided_tour.gcore"},
		strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"wagnerFriend", `"Doe, John"`, "path #", "bought"} {
		if !strings.Contains(got, want) {
			t.Errorf("tour output missing %q", want)
		}
	}
}

func TestRunSaveAndLoadCatalog(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cat")
	var out bytes.Buffer
	// Define a view, save everything.
	err := run([]string{"-sample", "-save", dir,
		`GRAPH VIEW acme AS (CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme')`},
		strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "saved catalog") {
		t.Errorf("output = %q", out.String())
	}
	// Reload in a fresh process run and query the view.
	out.Reset()
	err = run([]string{"-load", dir, `SELECT n.firstName AS name MATCH (n) ON acme ORDER BY name`},
		strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"Alice"`) {
		t.Errorf("output = %q", out.String())
	}
	// Loading a bogus dir fails.
	if err := run([]string{"-load", "/nonexistent-dir"}, strings.NewReader(""), &out); err == nil {
		t.Error("bad -load must fail")
	}
}

func TestRunDurableDataDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	var out bytes.Buffer
	// First run: register the sample datasets and a view durably.
	err := run([]string{"-data", dir, "-sample",
		`GRAPH VIEW acme AS (CONSTRUCT (n) MATCH (n:Person) ON social_graph WHERE n.employer = 'Acme')`},
		strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	// Second run: recovery restores the catalog; the view answers.
	out.Reset()
	err = run([]string{"-data", dir,
		`SELECT n.firstName AS name MATCH (n) ON acme ORDER BY name`},
		strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"Alice"`) {
		t.Errorf("recovered catalog output = %q", out.String())
	}
	if !strings.Contains(out.String(), "durable catalog at") {
		t.Errorf("banner missing: %q", out.String())
	}
	// REPL \checkpoint works against the same directory.
	out.Reset()
	err = run([]string{"-data", dir}, strings.NewReader("\\checkpoint\n\\quit\n"), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "checkpoint written") {
		t.Errorf("checkpoint output = %q", out.String())
	}
	// \checkpoint without -data reports an error instead of panicking.
	out.Reset()
	if err := run([]string{}, strings.NewReader("\\checkpoint\n\\quit\n"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "not durable") {
		t.Errorf("non-durable checkpoint output = %q", out.String())
	}
}
