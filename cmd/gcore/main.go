// Command gcore is a command-line shell for the G-CORE engine: load
// Path Property Graphs from JSON and tables from CSV, evaluate
// queries, and print or save the resulting graphs and tables.
//
// Usage:
//
//	gcore [flags] [query]
//
//	-graph file.json     load and register a graph (repeatable)
//	-table name=file.csv load and register a table (repeatable)
//	-sample              register the paper's sample datasets
//	                     (social_graph, company_graph, example_graph,
//	                     orders)
//	-default name        select the default graph for MATCH without ON
//	-data dir            open a durable data directory: every mutation
//	                     is logged to a write-ahead log before it
//	                     applies, and startup recovers the last
//	                     checkpoint plus the log tail (crash-safe)
//	-script file         evaluate a ;-separated script and exit
//	-json                print result graphs/tables as JSON
//	-out file            write the last result graph as JSON
//	-timeout duration    per-statement evaluation timeout (0 disables)
//	-slowlog duration    log statements slower than this to stderr
//	-metrics             print engine metrics as JSON on exit
//	-nocache             disable the plan cache
//
// With a query argument the command evaluates it and exits; otherwise
// it starts a read-eval-print loop. In the REPL, statements end with
// ';' and the commands \graphs, \tables, \ast, \save, \metrics,
// \cache, \checkpoint, \help and \quit are available. Prefixing a statement with EXPLAIN
// prints its plan instead of running it; EXPLAIN ANALYZE runs it and
// prints the plan annotated with observed rows and timings.
//
// The engine-lifetime metrics are also published as the expvar
// variable "gcore" for programs that embed this command's run loop
// next to an HTTP server.
//
// SIGINT (Ctrl-C) or SIGTERM during an evaluation cancels the running
// query: the REPL prints the typed error and keeps running; one-shot
// and script invocations exit non-zero.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"gcore"
)

type repeated []string

func (r *repeated) String() string { return strings.Join(*r, ",") }

func (r *repeated) Set(v string) error {
	*r = append(*r, v)
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gcore:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("gcore", flag.ContinueOnError)
	var graphFiles, tableSpecs repeated
	fs.Var(&graphFiles, "graph", "graph JSON file to load (repeatable)")
	fs.Var(&tableSpecs, "table", "table to load as name=file.csv (repeatable)")
	sample := fs.Bool("sample", false, "register the paper's sample datasets")
	defGraph := fs.String("default", "", "default graph name")
	dataDir := fs.String("data", "", "durable data directory (write-ahead log + checkpoints)")
	script := fs.String("script", "", "script file to evaluate")
	asJSON := fs.Bool("json", false, "print results as JSON")
	outFile := fs.String("out", "", "write the last result graph as JSON")
	loadDir := fs.String("load", "", "load a saved catalog directory before evaluating")
	saveDir := fs.String("save", "", "save the catalog directory after evaluating")
	timeout := fs.Duration("timeout", 0, "per-statement evaluation timeout (e.g. 30s); 0 disables")
	slowlog := fs.Duration("slowlog", 0, "log statements slower than this to stderr; 0 disables")
	metrics := fs.Bool("metrics", false, "print engine metrics as JSON on exit")
	nocache := fs.Bool("nocache", false, "disable the plan cache (every statement compiles from source)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var opts []gcore.Option
	if *timeout > 0 {
		opts = append(opts, gcore.WithLimits(gcore.Limits{Timeout: *timeout}))
	}
	if *slowlog > 0 {
		opts = append(opts, gcore.WithTraceHandler(&slowLogger{w: os.Stderr, threshold: *slowlog}))
	}
	if *nocache {
		opts = append(opts, gcore.WithPlanCacheSize(-1))
	}
	var eng *gcore.Engine
	var dur *gcore.DurableEngine
	var sess *gcore.Session
	if *dataDir != "" {
		var err error
		dur, err = gcore.OpenDurable(*dataDir, gcore.WithEngineOptions(opts...))
		if err != nil {
			return err
		}
		defer dur.Close()
		eng = dur.Engine
		sess = dur.NewSession()
		fmt.Fprintf(stdout, "durable catalog at %s (%d graphs)\n", *dataDir, len(eng.GraphNames()))
	} else {
		eng = gcore.NewEngine(opts...)
		sess = eng.NewSession()
	}
	publishMetrics(eng)
	if *loadDir != "" {
		if err := eng.LoadCatalog(*loadDir); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "loaded catalog from %s (%d graphs)\n", *loadDir, len(eng.GraphNames()))
	}
	if *sample {
		for _, g := range []*gcore.Graph{
			gcore.SampleSocialGraph(), gcore.SampleCompanyGraph(), gcore.SampleExampleGraph(),
		} {
			if err := eng.RegisterGraph(g); err != nil {
				return err
			}
		}
		if err := eng.RegisterTable(gcore.SampleOrdersTable()); err != nil {
			return err
		}
	}
	for _, f := range graphFiles {
		file, err := os.Open(f)
		if err != nil {
			return err
		}
		g, err := eng.LoadGraphJSON(file)
		file.Close()
		if err != nil {
			return fmt.Errorf("loading %s: %w", f, err)
		}
		fmt.Fprintf(stdout, "loaded %s\n", g)
	}
	for _, spec := range tableSpecs {
		name, file, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("table spec %q must be name=file.csv", spec)
		}
		fh, err := os.Open(file)
		if err != nil {
			return err
		}
		tbl, err := gcore.ReadTableCSV(name, fh)
		fh.Close()
		if err != nil {
			return err
		}
		if err := eng.RegisterTable(tbl); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "loaded table %s (%d rows)\n", name, tbl.Len())
	}
	if *defGraph != "" {
		if err := sess.SetDefaultGraph(*defGraph); err != nil {
			return err
		}
	}

	var lastGraph *gcore.Graph
	show := func(res *gcore.Result) error {
		switch {
		case res.Plan != "":
			fmt.Fprint(stdout, res.Plan)
		case res.Table != nil:
			if *asJSON {
				data, err := res.Table.MarshalJSON()
				if err != nil {
					return err
				}
				fmt.Fprintln(stdout, string(data))
			} else {
				fmt.Fprint(stdout, res.Table.String())
			}
		case res.Graph != nil:
			lastGraph = res.Graph
			if *asJSON {
				data, err := res.Graph.MarshalJSON()
				if err != nil {
					return err
				}
				fmt.Fprintln(stdout, string(data))
			} else {
				printGraph(stdout, res.Graph)
			}
		}
		return nil
	}

	// evalScript runs one script under a signal-aware context: SIGINT
	// or SIGTERM mid-evaluation cancels the in-flight statement, which
	// surfaces as a typed KindCanceled error. The handler is released
	// after each batch, so a second Ctrl-C at an idle prompt behaves
	// normally.
	evalScript := func(src string) ([]*gcore.Result, error) {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		return sess.EvalScriptContext(ctx, src)
	}

	evalAll := func(src string) error {
		results, err := evalScript(src)
		if err != nil {
			return err
		}
		for _, res := range results {
			if err := show(res); err != nil {
				return err
			}
		}
		return nil
	}

	switch {
	case *script != "":
		data, err := os.ReadFile(*script)
		if err != nil {
			return err
		}
		if err := evalAll(string(data)); err != nil {
			return err
		}
	case fs.NArg() > 0:
		if err := evalAll(strings.Join(fs.Args(), " ")); err != nil {
			return err
		}
	default:
		if err := repl(eng, dur, sess, stdin, stdout, show, evalScript); err != nil {
			return err
		}
	}

	if *outFile != "" {
		if lastGraph == nil {
			return fmt.Errorf("-out: no result graph to write")
		}
		fh, err := os.Create(*outFile)
		if err != nil {
			return err
		}
		defer fh.Close()
		if err := lastGraph.WriteJSON(fh); err != nil {
			return err
		}
	}
	if *saveDir != "" {
		if err := eng.SaveCatalog(*saveDir); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "saved catalog to %s\n", *saveDir)
	}
	if *metrics {
		if err := printMetrics(stdout, sess); err != nil {
			return err
		}
	}
	// A clean exit compacts the log so the next start recovers from
	// the checkpoint instead of replaying the whole tail.
	if dur != nil {
		if err := dur.Checkpoint(); err != nil {
			return err
		}
	}
	return nil
}

// slowLogger is a TraceHandler that logs statements whose wall time
// meets a threshold. Statement span labels carry the statement text
// whenever a trace handler is installed, so the log line names the
// offending query.
type slowLogger struct {
	w         io.Writer
	threshold time.Duration
}

func (s *slowLogger) SpanStart(op gcore.Op, depth int) {}

func (s *slowLogger) SpanEnd(sp gcore.Span) {
	if sp.Op != gcore.OpStatement || sp.Elapsed < s.threshold {
		return
	}
	text := strings.Join(strings.Fields(sp.Label), " ")
	if text == "" {
		text = "<statement>"
	}
	fmt.Fprintf(s.w, "slow query (%s): %s\n", sp.Elapsed.Round(time.Microsecond), text)
}

// printMetrics dumps the engine-lifetime metrics as indented JSON;
// a durable engine's session reports WAL counters too.
func printMetrics(w io.Writer, sess *gcore.Session) error {
	data, err := json.MarshalIndent(sess.Metrics(), "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, string(data))
	return err
}

// The expvar variable is process-global and can be published only
// once, while run() may be entered repeatedly (tests); the published
// func reads whichever engine ran last.
var (
	expvarOnce   sync.Once
	expvarEngine atomic.Pointer[gcore.Engine]
)

func publishMetrics(eng *gcore.Engine) {
	expvarEngine.Store(eng)
	expvarOnce.Do(func() {
		expvar.Publish("gcore", expvar.Func(func() any {
			if e := expvarEngine.Load(); e != nil {
				return e.Metrics()
			}
			return nil
		}))
	})
}

func repl(eng *gcore.Engine, dur *gcore.DurableEngine, sess *gcore.Session, stdin io.Reader, stdout io.Writer, show func(*gcore.Result) error, evalScript func(string) ([]*gcore.Result, error)) error {
	fmt.Fprintln(stdout, "G-CORE shell — statements end with ';', \\help for commands")
	scanner := bufio.NewScanner(stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Fprint(stdout, "gcore> ")
		} else {
			fmt.Fprint(stdout, "  ...> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if done := replCommand(eng, dur, sess, stdout, trimmed); done {
				return nil
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.Contains(line, ";") {
			src := buf.String()
			buf.Reset()
			results, err := evalScript(src)
			if err != nil {
				fmt.Fprintln(stdout, "error:", err)
			}
			for _, res := range results {
				if err := show(res); err != nil {
					fmt.Fprintln(stdout, "error:", err)
				}
			}
		}
		prompt()
	}
	fmt.Fprintln(stdout)
	return scanner.Err()
}

// replCommand handles backslash commands; it reports whether the REPL
// should exit.
func replCommand(eng *gcore.Engine, dur *gcore.DurableEngine, sess *gcore.Session, stdout io.Writer, cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\quit", "\\q":
		return true
	case "\\help":
		fmt.Fprintln(stdout, `commands:
  \graphs            list registered graphs and views
  \tables            list registered tables
  \ast <query>       print the parsed form of a query
  \explain <query>   print the evaluation plan of a query
                     (EXPLAIN ANALYZE <query>; runs it and annotates
                     the plan with observed rows and timings)
  \default [graph]   set (or clear) this session's default graph
  \metrics           print engine metrics as JSON
  \cache             print plan-cache counters and live entries
  \checkpoint        write a durable checkpoint (requires -data)
  \save <graph> <f>  write a graph as JSON to file f
  \quit              exit`)
	case "\\graphs":
		for _, name := range eng.GraphNames() {
			g, _ := eng.Graph(name)
			fmt.Fprintf(stdout, "  %s\n", g)
		}
	case "\\tables":
		for _, name := range eng.TableNames() {
			fmt.Fprintf(stdout, "  %s\n", name)
		}
	case "\\ast":
		src := strings.TrimSpace(strings.TrimPrefix(cmd, "\\ast"))
		stmt, err := gcore.Parse(src)
		if err != nil {
			fmt.Fprintln(stdout, "error:", err)
			break
		}
		fmt.Fprintln(stdout, stmt.String())
	case "\\explain":
		src := strings.TrimSpace(strings.TrimPrefix(cmd, "\\explain"))
		plan, err := sess.ExplainContext(context.Background(), src)
		if err != nil {
			fmt.Fprintln(stdout, "error:", err)
			break
		}
		fmt.Fprint(stdout, plan)
	case "\\default":
		if len(fields) > 2 {
			fmt.Fprintln(stdout, "usage: \\default [graph]")
			break
		}
		name := ""
		if len(fields) == 2 {
			name = fields[1]
		}
		if err := sess.SetDefaultGraph(name); err != nil {
			fmt.Fprintln(stdout, "error:", err)
			break
		}
		if name == "" {
			fmt.Fprintln(stdout, "default graph cleared")
		} else {
			fmt.Fprintf(stdout, "default graph set to %s\n", name)
		}
	case "\\metrics":
		if err := printMetrics(stdout, sess); err != nil {
			fmt.Fprintln(stdout, "error:", err)
		}
	case "\\cache":
		printPlanCache(stdout, eng)
	case "\\checkpoint":
		if dur == nil {
			fmt.Fprintln(stdout, "error: not durable (start with -data <dir>)")
			break
		}
		if err := dur.Checkpoint(); err != nil {
			fmt.Fprintln(stdout, "error:", err)
			break
		}
		wm := dur.WALStats()
		fmt.Fprintf(stdout, "checkpoint written (%d records logged, %d checkpoints)\n", wm.Appends, wm.Checkpoints)
	case "\\save":
		if len(fields) != 3 {
			fmt.Fprintln(stdout, "usage: \\save <graph> <file>")
			break
		}
		g, ok := eng.Graph(fields[1])
		if !ok {
			fmt.Fprintf(stdout, "error: unknown graph %q\n", fields[1])
			break
		}
		fh, err := os.Create(fields[2])
		if err != nil {
			fmt.Fprintln(stdout, "error:", err)
			break
		}
		if err := g.WriteJSON(fh); err != nil {
			fmt.Fprintln(stdout, "error:", err)
		}
		fh.Close()
	default:
		fmt.Fprintf(stdout, "unknown command %s (try \\help)\n", fields[0])
	}
	return false
}

// printPlanCache renders the plan-cache counters and live entries.
func printPlanCache(w io.Writer, eng *gcore.Engine) {
	st := eng.PlanCacheStats()
	if st.Capacity == 0 {
		fmt.Fprintln(w, "plan cache disabled")
		return
	}
	fmt.Fprintf(w, "plan cache: %d/%d entries, %d hits, %d misses, %d evictions, compile %s\n",
		st.Entries, st.Capacity, st.Hits, st.Misses, st.Evictions,
		st.CompileTime.Round(time.Microsecond))
	for _, en := range eng.PlanCacheEntries() {
		text := en.Text
		if len(text) > 60 {
			text = text[:57] + "..."
		}
		fmt.Fprintf(w, "  %4d× %s  %s\n", en.Hits, en.Compile.Round(time.Microsecond), text)
	}
}

// printGraph renders a graph in a compact human-readable form.
func printGraph(w io.Writer, g *gcore.Graph) {
	fmt.Fprintf(w, "%s\n", g)
	for _, id := range g.NodeIDs() {
		n, _ := g.Node(id)
		fmt.Fprintf(w, "  (#%d%s%s)\n", id, labelsStr(n.Labels), propsStr(n.Props))
	}
	for _, id := range g.EdgeIDs() {
		e, _ := g.Edge(id)
		fmt.Fprintf(w, "  (#%d)-[#%d%s%s]->(#%d)\n", e.Src, id, labelsStr(e.Labels), propsStr(e.Props), e.Dst)
	}
	for _, id := range g.PathIDs() {
		p, _ := g.Path(id)
		parts := make([]string, 0, len(p.Nodes))
		for _, n := range p.Nodes {
			parts = append(parts, fmt.Sprintf("#%d", n))
		}
		fmt.Fprintf(w, "  path #%d%s%s: %s\n", id, labelsStr(p.Labels), propsStr(p.Props), strings.Join(parts, "→"))
	}
}

func labelsStr(ls gcore.Labels) string {
	if len(ls) == 0 {
		return ""
	}
	return ":" + strings.Join(ls, ":")
}

func propsStr(ps gcore.Properties) string {
	if len(ps) == 0 {
		return ""
	}
	keys := ps.Keys()
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s: %s", k, ps.Get(k)))
	}
	sort.Strings(parts)
	return " {" + strings.Join(parts, ", ") + "}"
}
