package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestSmoke boots the full daemon on a random port with a durable
// data directory, runs a query, scrapes metrics, and shuts it down
// gracefully with SIGINT — the whole lifecycle a deployment sees.
func TestSmoke(t *testing.T) {
	dataDir := t.TempDir()
	addrCh := make(chan string, 1)
	onListen = func(addr string) { addrCh <- addr }
	defer func() { onListen = nil }()

	errCh := make(chan error, 1)
	go func() {
		errCh <- run([]string{
			"-addr", "127.0.0.1:0",
			"-sample",
			"-data", dataDir,
			"-slowlog", "0",
			"-drain", "5s",
		})
	}()

	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case err := <-errCh:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never started listening")
	}

	body, _ := json.Marshal(map[string]any{
		"query": "CONSTRUCT (n) MATCH (n:Person) ON social_graph",
	})
	resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d: %v", resp.StatusCode, out)
	}
	if results := out["results"].([]any); len(results) != 1 {
		t.Fatalf("results = %d, want 1", len(results))
	}

	// A view mutation must reach the write-ahead log on disk.
	body, _ = json.Marshal(map[string]any{
		"query": "GRAPH VIEW smoke_view AS (CONSTRUCT (n) MATCH (n:Person) ON social_graph)",
	})
	resp, err = http.Post(base+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("view status = %d", resp.StatusCode)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rs := m["read_statements"].(float64); rs < 1 {
		t.Fatalf("read_statements = %v, want >= 1", rs)
	}
	if ws := m["write_statements"].(float64); ws < 1 {
		t.Fatalf("write_statements = %v, want >= 1", ws)
	}

	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("shutdown error: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}

	// After shutdown the port must be closed and the WAL present.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server still answering after shutdown")
	}
	entries, err := os.ReadDir(dataDir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if len(names) == 0 {
		t.Fatal("durable data directory is empty after mutations")
	}
	found := false
	for _, n := range names {
		if strings.Contains(n, "wal") || strings.Contains(n, "log") ||
			fileNonEmpty(filepath.Join(dataDir, n)) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no durable state in %s: %v", dataDir, names)
	}
}

func fileNonEmpty(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && !fi.IsDir() && fi.Size() > 0
}

// TestBadFlags keeps the flag surface honest: unknown flags must fail
// fast rather than being swallowed.
func TestBadFlags(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("expected error for unknown flag")
	}
}

// TestBadGraphFile exercises the -graph load error path.
func TestBadGraphFile(t *testing.T) {
	if err := run([]string{"-graph", filepath.Join(t.TempDir(), "missing.json")}); err == nil {
		t.Fatal("expected error for missing graph file")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-graph", bad})
	if err == nil || !strings.Contains(err.Error(), "bad.json") {
		t.Fatalf("err = %v, want mention of bad.json", err)
	}
}
