// Command gcored serves a G-CORE engine over HTTP/JSON: the
// concurrent, multi-client front door to the library. Start it on a
// dataset and point clients at POST /query:
//
//	gcored -sample -addr :8399
//	curl -s localhost:8399/query -d '{"query":"CONSTRUCT (n) MATCH (n:Person) ON social_graph"}'
//
// Endpoints: POST /query, POST /prepare + /exec, POST /session and
// DELETE /session/{id}, GET /healthz, GET /metrics, GET /debug/vars.
// See docs/HTTP.md for the full reference.
//
// With -data the catalog is durable: every mutation is write-ahead
// logged in the data directory and survives restarts. Read-only
// statements from concurrent clients run in parallel against pinned
// snapshots; mutating statements serialise. -limit-* flags install
// engine-wide admission control, -max-timeout caps per-request
// deadlines, -slowlog logs slow statements, and SIGINT/SIGTERM shuts
// down gracefully, draining in-flight queries until -drain expires
// and cancelling the stragglers.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"gcore"
	"gcore/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gcored:", err)
		os.Exit(1)
	}
}

// onListen, when set, is told the bound address once the listener is
// up. The e2e smoke test uses it to find the :0-assigned port.
var onListen func(addr string)

type repeated []string

func (r *repeated) String() string     { return fmt.Sprint(*r) }
func (r *repeated) Set(v string) error { *r = append(*r, v); return nil }

func run(args []string) error {
	fs := flag.NewFlagSet("gcored", flag.ContinueOnError)
	var graphFiles repeated
	fs.Var(&graphFiles, "graph", "graph JSON file to load (repeatable)")
	addr := fs.String("addr", ":8399", "listen address")
	dataDir := fs.String("data", "", "durable data directory (write-ahead log + checkpoints)")
	loadDir := fs.String("load", "", "load a saved catalog directory at startup")
	sample := fs.Bool("sample", false, "register the paper's sample datasets")
	defGraph := fs.String("default", "", "engine-wide default graph name")
	workers := fs.Int("workers", 0, "intra-query parallelism (0 = GOMAXPROCS)")
	maxTimeout := fs.Duration("max-timeout", 30*time.Second, "cap on per-request timeouts; 0 uncaps")
	idle := fs.Duration("session-idle", 5*time.Minute, "idle session expiry; negative disables")
	slowlog := fs.Duration("slowlog", time.Second, "log queries slower than this; 0 disables")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain budget before cancelling in-flight queries")
	ckptEvery := fs.Int64("checkpoint-every", 4096, "auto-checkpoint after this many WAL records (with -data)")
	limitBindings := fs.Int("limit-bindings", 0, "admission control: max intermediate binding rows per statement")
	limitFrontier := fs.Int("limit-frontier", 0, "admission control: max path-search frontier states per statement")
	limitResults := fs.Int("limit-results", 0, "admission control: max constructed result elements per statement")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var engOpts []gcore.Option
	if *workers > 0 {
		engOpts = append(engOpts, gcore.WithParallelism(*workers))
	}
	if *defGraph != "" {
		engOpts = append(engOpts, gcore.WithDefaultGraph(*defGraph))
	}

	var backend server.Backend
	var eng *gcore.Engine
	logger := log.New(os.Stderr, "gcored: ", log.LstdFlags)
	if *dataDir != "" {
		dur, err := gcore.OpenDurable(*dataDir,
			gcore.WithEngineOptions(engOpts...),
			gcore.WithCheckpointEvery(*ckptEvery))
		if err != nil {
			return err
		}
		defer dur.Close()
		backend, eng = dur, dur.Engine
		logger.Printf("durable catalog at %s (%d graphs)", *dataDir, len(eng.GraphNames()))
	} else {
		eng = gcore.NewEngine(engOpts...)
		backend = eng
	}
	publishMetrics(backend)

	if *loadDir != "" {
		if err := eng.LoadCatalog(*loadDir); err != nil {
			return err
		}
		logger.Printf("loaded catalog from %s (%d graphs)", *loadDir, len(eng.GraphNames()))
	}
	if *sample {
		for _, g := range []*gcore.Graph{
			gcore.SampleSocialGraph(), gcore.SampleCompanyGraph(), gcore.SampleExampleGraph(),
		} {
			if err := eng.RegisterGraph(g); err != nil {
				return err
			}
		}
		if err := eng.RegisterTable(gcore.SampleOrdersTable()); err != nil {
			return err
		}
	}
	for _, f := range graphFiles {
		file, err := os.Open(f)
		if err != nil {
			return err
		}
		_, err = eng.LoadGraphJSON(file)
		file.Close()
		if err != nil {
			return fmt.Errorf("loading %s: %w", f, err)
		}
	}

	srv := server.New(backend, server.Config{
		Limits: gcore.Limits{
			MaxBindings:       *limitBindings,
			MaxPathFrontier:   *limitFrontier,
			MaxResultElements: *limitResults,
		},
		MaxTimeout:  *maxTimeout,
		SessionIdle: *idle,
		SlowQuery:   *slowlog,
		Log:         logger,
	})

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logger.Printf("serving on %s (%d graphs)", ln.Addr(), len(eng.GraphNames()))
	if onListen != nil {
		onListen(ln.Addr().String())
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		srv.Close()
		return err
	case sig := <-sigCh:
		logger.Printf("received %v, draining (budget %s)", sig, *drain)
	}

	// Graceful shutdown: stop accepting, drain in-flight requests for
	// the drain budget, then cancel the stragglers' contexts — their
	// evaluations abort at the next governance checkpoint.
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	err = httpSrv.Shutdown(ctx)
	srv.Close()
	if errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("drain budget spent, cancelled in-flight queries")
		err = httpSrv.Close()
	}
	logger.Printf("shut down")
	return err
}

// The expvar variable is process-global and can be published only
// once; the pointer indirection keeps tests and restarts safe.
var (
	expvarOnce    atomic.Bool
	expvarBackend atomic.Pointer[server.Backend]
)

func publishMetrics(b server.Backend) {
	expvarBackend.Store(&b)
	if expvarOnce.CompareAndSwap(false, true) {
		expvar.Publish("gcore", expvar.Func(func() any {
			if p := expvarBackend.Load(); p != nil {
				return (*p).Metrics()
			}
			return nil
		}))
	}
}
