// Command gcore-repro regenerates the figures and tables of the
// G-CORE paper (SIGMOD 2018) and prints paper-vs-measured reports.
//
// Usage:
//
//	gcore-repro [-checks] [-fig1] [-table1] [-tables] [-complexity] [-scales 20,40,80]
//
// Without flags everything except the (slower) complexity sweeps
// runs. The outputs of this command are the source of EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"gcore/internal/repro"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gcore-repro:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("gcore-repro", flag.ContinueOnError)
	checks := fs.Bool("checks", false, "run the figure/table reproduction checks")
	tables := fs.Bool("tables", false, "print the binding tables of §3 in the paper's layout")
	fig1 := fs.Bool("fig1", false, "print the Figure 1 usage statistics with module mapping")
	table1 := fs.Bool("table1", false, "print the Table 1 feature matrix")
	complexity := fs.Bool("complexity", false, "run the complexity sweeps (CPLX1–CPLX4)")
	scalesFlag := fs.String("scales", "20,40,80,160", "comma-separated person counts for the sweeps")
	if err := fs.Parse(args); err != nil {
		return err
	}
	all := !*checks && !*fig1 && !*table1 && !*complexity

	if all || *fig1 {
		printFig1(w)
	}
	if all || *checks {
		if err := printChecks(w); err != nil {
			return err
		}
	}
	if all || *table1 {
		printTable1(w)
	}
	if all || *tables {
		if err := printBindingTables(w); err != nil {
			return err
		}
	}
	if *complexity {
		scales, err := parseScales(*scalesFlag)
		if err != nil {
			return err
		}
		if err := printComplexity(w, scales); err != nil {
			return err
		}
	}
	return nil
}

func parseScales(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("invalid scale %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func printFig1(w io.Writer) {
	fmt.Fprintln(w, "== Figure 1: LDBC TUC usage statistics (survey data, reprinted) ==")
	fmt.Fprintln(w, "Application fields:")
	for _, r := range repro.Fig1Rows() {
		if r.Kind == "field" {
			fmt.Fprintf(w, "  %-24s %3d\n", r.Name, r.Count)
		}
	}
	fmt.Fprintln(w, "Used features → serving module in this implementation:")
	for _, r := range repro.Fig1Rows() {
		if r.Kind == "feature" {
			fmt.Fprintf(w, "  %-24s %3d   %s\n", r.Name, r.Count, r.Module)
		}
	}
	fmt.Fprintln(w)
}

func printChecks(w io.Writer) error {
	fmt.Fprintln(w, "== Paper-vs-measured checks (Figures 2–5, guided tour, Appendix A) ==")
	failures := 0
	for _, c := range repro.RunAll() {
		status := "PASS"
		if !c.OK() {
			status = "FAIL"
			failures++
		}
		fmt.Fprintf(w, "[%s] %-10s %s\n", status, c.ID, c.Name)
		if c.Paper != "" {
			fmt.Fprintf(w, "       paper:    %s\n", c.Paper)
		}
		if c.Measured != "" {
			fmt.Fprintf(w, "       measured: %s\n", c.Measured)
		}
		if c.Err != nil {
			fmt.Fprintf(w, "       error:    %v\n", c.Err)
		}
	}
	fmt.Fprintln(w)
	if failures > 0 {
		return fmt.Errorf("%d check(s) failed", failures)
	}
	return nil
}

func printTable1(w io.Writer) {
	fmt.Fprintln(w, "== Table 1: feature overview (layout of the paper, executed end-to-end) ==")
	section := ""
	rows := repro.Table1Rows()
	results := repro.Table1()
	for i, r := range rows {
		if r.Section != section {
			section = r.Section
			fmt.Fprintf(w, "%s\n", section)
		}
		status := "PASS"
		if i < len(results) && !results[i].OK() {
			status = "FAIL: " + results[i].Err.Error()
		}
		fmt.Fprintf(w, "  %-42s %-28s %s\n", r.Feature, r.Lines, status)
	}
	fmt.Fprintln(w)
}

func printComplexity(w io.Writer, scales []int) error {
	fmt.Fprintln(w, "== CPLX1: fixed-query evaluation vs data size (polynomial data complexity) ==")
	match, err := repro.ComplexityMatch(scales)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "MATCH 2-hop join:")
	for _, p := range match {
		fmt.Fprintf(w, "  persons=%-6d nodes=%-7d edges=%-7d rows=%-6d %12v\n", p.Scale, p.Nodes, p.Edges, p.Result, p.Duration)
	}
	short, err := repro.ComplexityShortest(scales)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Single-source shortest paths over <:knows*>:")
	for _, p := range short {
		fmt.Fprintf(w, "  persons=%-6d nodes=%-7d edges=%-7d paths=%-5d %12v\n", p.Scale, p.Nodes, p.Edges, p.Result, p.Duration)
	}
	cons, err := repro.ComplexityConstruct(scales)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Grouped CONSTRUCT (nr_messages view):")
	for _, p := range cons {
		fmt.Fprintf(w, "  persons=%-6d nodes=%-7d edges=%-7d out-edges=%-6d %12v\n", p.Scale, p.Nodes, p.Edges, p.Result, p.Duration)
	}

	fmt.Fprintln(w, "\n== CPLX2/CPLX3: walk semantics vs trail/simple-path semantics (grids, §6 comparison) ==")
	ab, err := repro.AblationSimplePath([]int{3, 4, 5, 6, 7, 8}, 5_000_000)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "  width   walk-search   simple-visits  simple-paths  trail-visits  trails  projection(nodes/edges)   proj-time")
	for _, p := range ab {
		budget := ""
		if p.SimpleBudget {
			budget = " (budget hit)"
		}
		fmt.Fprintf(w, "  %-6d  %-12v  %-13d  %-12d  %-12d  %-6d  %d/%d  %12v%s\n",
			p.Size, p.WalkDuration, p.SimpleVisits, p.SimplePaths, p.TrailVisits, p.TrailPaths,
			p.ProjNodes, p.ProjEdges, p.ProjDuration, budget)
	}
	fmt.Fprintln(w, "  (the grid is acyclic, so trails coincide with simple paths; both enumerate, walks do not)")

	fmt.Fprintln(w, "\n== CPLX4: weighted shortest paths over PATH views (Dijkstra) ==")
	wp, err := repro.WeightedShortest(scales)
	if err != nil {
		return err
	}
	for _, p := range wp {
		fmt.Fprintf(w, "  persons=%-6d stored-paths=%-5d %12v\n", p.Persons, p.Paths, p.Duration)
	}
	return nil
}

func printBindingTables(w io.Writer) error {
	fmt.Fprintln(w, "== Binding tables of §3 (recomputed on the toy database) ==")
	eng, err := repro.NewEngine()
	if err != nil {
		return err
	}
	tbls, err := repro.BindingTables(eng)
	if err != nil {
		return err
	}
	for _, t := range tbls {
		fmt.Fprintf(w, "%s (%d bindings):\n%s\n", t.Name, t.Len(), t.String())
	}
	return nil
}
