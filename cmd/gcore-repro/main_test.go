package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestDefaultReport(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"Figure 1", "graph reachability",
		"Paper-vs-measured checks", "[PASS] FIG2",
		"Table 1", "Matching k shortest paths",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(got, "FAIL") {
		t.Errorf("report contains failures:\n%s", got)
	}
}

func TestComplexityReport(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var out bytes.Buffer
	if err := run([]string{"-complexity", "-scales", "20,30"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"CPLX1", "CPLX2", "CPLX4", "simple-visits"} {
		if !strings.Contains(got, want) {
			t.Errorf("complexity report missing %q", want)
		}
	}
}

func TestScaleParsing(t *testing.T) {
	if _, err := parseScales("10,20"); err != nil {
		t.Error(err)
	}
	for _, bad := range []string{"", "x", "0", "10,-1"} {
		if _, err := parseScales(bad); err == nil {
			t.Errorf("parseScales(%q) should fail", bad)
		}
	}
	var out bytes.Buffer
	if err := run([]string{"-complexity", "-scales", "bogus"}, &out); err == nil {
		t.Error("bad scales must fail")
	}
}

func TestSelectiveFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig1"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "Paper-vs-measured") {
		t.Error("-fig1 should not run the checks")
	}
	out.Reset()
	if err := run([]string{"-table1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Graph views") {
		t.Error("-table1 output incomplete")
	}
}

func TestBindingTablesReport(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-tables"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"equi-join", "20 bindings", `{"CWI", "MIT"}`, `"HAL"   "Celine"`} {
		if !strings.Contains(got, want) {
			t.Errorf("tables report missing %q", want)
		}
	}
}
