package main

import "testing"

func TestParseLine(t *testing.T) {
	rec, ok := parseLine("BenchmarkCSRShortest/csr-4  \t  48\t  24038435 ns/op\t18760346 B/op\t  143654 allocs/op")
	if !ok {
		t.Fatal("benchmark line rejected")
	}
	if rec.Name != "BenchmarkCSRShortest/csr-4" || rec.Iterations != 48 {
		t.Fatalf("bad header fields: %+v", rec)
	}
	if rec.NsPerOp != 24038435 {
		t.Fatalf("ns/op = %v", rec.NsPerOp)
	}
	if rec.BytesPerOp == nil || *rec.BytesPerOp != 18760346 {
		t.Fatalf("B/op = %v", rec.BytesPerOp)
	}
	if rec.AllocsPerOp == nil || *rec.AllocsPerOp != 143654 {
		t.Fatalf("allocs/op = %v", rec.AllocsPerOp)
	}

	if rec, ok := parseLine("BenchmarkParse-4  1000  523 ns/op"); !ok || rec.BytesPerOp != nil {
		t.Fatalf("plain ns/op line: ok=%v rec=%+v", ok, rec)
	}
	for _, line := range []string{
		"", "PASS", "ok  \tgcore\t8.2s",
		"goos: linux", "cpu: Intel",
		"Benchmark", "BenchmarkX notanumber 5 ns/op",
		"BenchmarkX 5 bad ns/op",
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("non-benchmark line accepted: %q", line)
		}
	}
}
