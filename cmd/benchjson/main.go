// Command benchjson converts `go test -bench` output into a JSON
// snapshot for dashboards and regression tracking. It reads benchmark
// text from stdin and writes BENCH_<date>.json (or -o <path>) holding
// one record per benchmark line: name, iterations, ns/op, B/op,
// allocs/op.
//
// Usage:
//
//	go test -bench . -benchmem -run '^$' ./... | go run ./cmd/benchjson
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Record is one benchmark measurement. Memory fields are pointers so
// runs without -benchmem serialize as null rather than a false zero.
type Record struct {
	Name        string   `json:"name"`
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op"`
}

// parseLine decodes one `BenchmarkX-8  N  12.3 ns/op  4 B/op  2 allocs/op`
// line; ok is false for non-benchmark lines (headers, PASS, ok …).
func parseLine(line string) (Record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Record{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Record{}, false
	}
	rec := Record{Name: fields[0], Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Record{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			rec.NsPerOp = v
			seen = true
		case "B/op":
			b := v
			rec.BytesPerOp = &b
		case "allocs/op":
			a := v
			rec.AllocsPerOp = &a
		}
	}
	return rec, seen
}

func run(out string) error {
	var records []Record
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		if rec, ok := parseLine(sc.Text()); ok {
			records = append(records, rec)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(records) == 0 {
		return fmt.Errorf("no benchmark lines on stdin (pipe `go test -bench . -benchmem` output in)")
	}
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d benchmarks to %s\n", len(records), out)
	return nil
}

func main() {
	out := flag.String("o", "", "output path (default BENCH_<date>.json)")
	flag.Parse()
	path := *out
	if path == "" {
		path = "BENCH_" + time.Now().Format("2006-01-02") + ".json"
	}
	if err := run(path); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
