package gcore_test

import (
	"fmt"
	"strings"
	"testing"

	"gcore"
	"gcore/internal/core"
	"gcore/internal/csr"
	"gcore/internal/ppg"
)

// Tests for incremental CSR snapshot maintenance: after any mutation
// sequence, the delta-applied snapshot must be semantically identical
// to a from-scratch rebuild, old snapshots must stay frozen despite
// structural sharing, and query results must be byte-identical with
// the optimisation on or off.

// FuzzIncrementalSnapshot drives random mutation streams against a
// primed snapshot chain. Invariants: csr.Of after any mutation round
// is equivalent to csr.Build of the same graph; a snapshot captured
// earlier never changes afterwards (copy-on-write discipline), no
// matter how the chain continues.
func FuzzIncrementalSnapshot(f *testing.F) {
	f.Add(uint32(1), uint8(4), uint8(6))
	f.Add(uint32(42), uint8(1), uint8(1))
	f.Add(uint32(7), uint8(10), uint8(20))
	f.Add(uint32(99), uint8(3), uint8(0))
	f.Fuzz(func(t *testing.T, seed uint32, rounds, ops uint8) {
		rnd := seed | 1
		next := func(mod int) int {
			rnd ^= rnd << 13
			rnd ^= rnd >> 17
			rnd ^= rnd << 5
			return int(rnd % uint32(mod))
		}
		labels := []string{"A", "B", "C", "knows", "likes"}
		randVal := func() gcore.Value {
			switch next(5) {
			case 0:
				return gcore.Int(int64(next(100)))
			case 1:
				return gcore.Float(float64(next(100)) / 4)
			case 2:
				return gcore.Bool(next(2) == 0)
			case 3:
				return gcore.Str(labels[next(len(labels))])
			default:
				return gcore.Str(fmt.Sprintf("s%d", next(40)))
			}
		}
		keys := []string{"k0", "k1", "k2", "name"}
		randProps := func() gcore.Properties {
			kv := map[string]gcore.Value{}
			for i, n := 0, 1+next(3); i < n; i++ {
				kv[keys[next(len(keys))]] = randVal()
			}
			return gcore.NewProperties(kv)
		}

		g := gcore.NewGraph("fuzz")
		var nodes []gcore.NodeID
		var edges []gcore.EdgeID
		for i := 0; i < 8+next(8); i++ {
			id := gcore.NodeID(100 + i)
			ls := gcore.NewLabels(labels[next(3)])
			if g.AddNode(&gcore.Node{ID: id, Labels: ls, Props: randProps()}) == nil {
				nodes = append(nodes, id)
			}
		}
		for i := 0; i < 2*len(nodes); i++ {
			id := gcore.EdgeID(10_000 + i)
			e := &gcore.Edge{ID: id, Src: nodes[next(len(nodes))], Dst: nodes[next(len(nodes))],
				Labels: gcore.NewLabels(labels[3+next(2)]), Props: randProps()}
			if g.AddEdge(e) == nil {
				edges = append(edges, id)
			}
		}
		csr.Of(g) // prime the chain: later Of calls may delta-apply

		// Frozen capture: this snapshot and its independent rebuild
		// must still agree after every later round.
		frozen := csr.Of(g)
		frozenImage := csr.Build(g)

		nextNode := gcore.NodeID(1_000_000)
		nextEdge := gcore.EdgeID(2_000_000)
		for r := 0; r < int(rounds%16); r++ {
			for o := 0; o < int(ops%32); o++ {
				switch next(8) {
				case 0: // append-friendly monotonic node
					id := nextNode
					nextNode++
					if g.AddNode(&gcore.Node{ID: id, Labels: gcore.NewLabels(labels[next(3)]), Props: randProps()}) == nil {
						nodes = append(nodes, id)
					}
				case 1: // non-monotonic node: must fall back, still correct
					id := gcore.NodeID(next(90))
					if g.AddNode(&gcore.Node{ID: id, Labels: gcore.NewLabels(labels[next(3)])}) == nil {
						nodes = append(nodes, id)
					}
				case 2:
					id := nextEdge
					nextEdge++
					e := &gcore.Edge{ID: id, Src: nodes[next(len(nodes))], Dst: nodes[next(len(nodes))],
						Labels: gcore.NewLabels(labels[3+next(2)]), Props: randProps()}
					if g.AddEdge(e) == nil {
						edges = append(edges, id)
					}
				case 3: // fresh label: unknown to the base snapshot
					id := nextNode
					nextNode++
					if g.AddNode(&gcore.Node{ID: id, Labels: gcore.NewLabels(fmt.Sprintf("L%d", next(6)))}) == nil {
						nodes = append(nodes, id)
					}
				case 4:
					ls := gcore.NewLabels()
					if next(3) > 0 {
						ls = gcore.NewLabels(labels[next(3)], labels[next(3)])
					}
					_ = g.SetNodeLabels(nodes[next(len(nodes))], ls)
				case 5:
					if len(edges) > 0 {
						_ = g.SetEdgeLabels(edges[next(len(edges))], gcore.NewLabels(labels[3+next(2)]))
					}
				case 6:
					_ = g.SetNodeProps(nodes[next(len(nodes))], randProps())
				default:
					if len(edges) > 0 {
						_ = g.SetEdgeProps(edges[next(len(edges))], randProps())
					}
				}
			}
			snap, info := csr.OfCounted(g)
			full := csr.Build(g)
			if err := csr.Equivalent(snap, full); err != nil {
				t.Fatalf("round %d (%v): incremental snapshot diverged from rebuild: %v", r, info.Kind, err)
			}
		}
		if err := csr.Equivalent(frozen, frozenImage); err != nil {
			t.Fatalf("frozen snapshot mutated by later delta applies: %v", err)
		}
	})
}

// mutableSNB builds the SNB toy engine and returns the registered
// social graph for direct mutation.
func mutableSNB(t *testing.T) (*gcore.Engine, *gcore.Graph) {
	t.Helper()
	eng := gcore.NewEngine()
	social, _ := eng.GenerateSNB(gcore.SNBConfig{Persons: 60, Seed: 1})
	if err := eng.RegisterGraph(social); err != nil {
		t.Fatal(err)
	}
	if err := eng.SetDefaultGraph(social.Name()); err != nil {
		t.Fatal(err)
	}
	g, ok := eng.Graph(social.Name())
	if !ok {
		t.Fatalf("registered graph %q not found", social.Name())
	}
	return eng, g
}

// snbMutationScript is a deterministic interleaving payload: each
// step mutates the social graph between query evaluations, exercising
// appends, relabels and property rewrites on a warm snapshot chain.
func snbMutationScript(t *testing.T, g *gcore.Graph, step int) {
	t.Helper()
	base := gcore.NodeID(5_000_000 + 10*step)
	person := func(id gcore.NodeID, name string) *gcore.Node {
		return &gcore.Node{ID: id, Labels: gcore.NewLabels("Person"),
			Props: gcore.NewProperties(map[string]gcore.Value{"firstName": gcore.Str(name)})}
	}
	if err := g.AddNode(person(base, fmt.Sprintf("Zed%02d", step))); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(person(base+1, fmt.Sprintf("Yara%02d", step))); err != nil {
		t.Fatal(err)
	}
	knows := func(id gcore.EdgeID, src, dst gcore.NodeID) error {
		return g.AddEdge(&gcore.Edge{ID: id, Src: src, Dst: dst, Labels: gcore.NewLabels("knows")})
	}
	eid := gcore.EdgeID(6_000_000 + 10*step)
	if err := knows(eid, base, base+1); err != nil {
		t.Fatal(err)
	}
	// Tie the new pair into the existing graph so reachability changes.
	persons := g.NodesWithLabel("Person")
	if err := knows(eid+1, persons[step%len(persons)], base); err != nil {
		t.Fatal(err)
	}
	// Rewrite an existing person's labels and properties in place.
	victim := persons[(step*7)%len(persons)]
	if err := g.SetNodeLabels(victim, gcore.NewLabels("Person", "Tag")); err != nil {
		t.Fatal(err)
	}
	if err := g.SetNodeProps(base, gcore.NewProperties(map[string]gcore.Value{
		"firstName": gcore.Str(fmt.Sprintf("Zed%02d-renamed", step)),
		"karma":     gcore.Int(int64(step)),
	})); err != nil {
		t.Fatal(err)
	}
}

// runInterleaved evaluates the SNB query set interleaved with
// mutations, with incremental snapshots enabled or disabled, and
// returns the concatenated transcript plus the engine's final
// metrics.
func runInterleaved(t *testing.T, disableInc bool, workers int) (string, gcore.Metrics) {
	t.Helper()
	prev := core.DisableIncrementalSnapshot
	core.DisableIncrementalSnapshot = disableInc
	defer func() { core.DisableIncrementalSnapshot = prev }()
	eng, g := mutableSNB(t)
	eng.SetParallelism(workers)
	_, queries := snbQueries()
	out := ""
	for step := 0; step < 4; step++ {
		snbMutationScript(t, g, step)
		for qi, q := range queries {
			out += fmt.Sprintf("-- step %d query %d\n", step, qi)
			out += renderResult(eng.Eval(q)) + "\n"
		}
	}
	return out, eng.Metrics()
}

// TestIncrementalDifferentialSNB: interleaved mutate/query workloads
// render byte-identically with incremental snapshot maintenance on
// and off, sequentially and in parallel — and the incremental run
// actually takes the delta path.
func TestIncrementalDifferentialSNB(t *testing.T) {
	for _, workers := range []int{1, 0} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			want, off := runInterleaved(t, true, workers)
			got, on := runInterleaved(t, false, workers)
			if got != want {
				t.Fatalf("incremental snapshots changed results\nincremental:\n%s\nfull rebuild:\n%s", got, want)
			}
			if off.SnapshotDeltaApplies != 0 {
				t.Fatalf("knob off but %d delta applies recorded", off.SnapshotDeltaApplies)
			}
			if on.SnapshotDeltaApplies == 0 {
				t.Fatalf("knob on but no delta applies recorded (full=%d fallback=%d)",
					on.SnapshotFullBuilds, on.SnapshotFallbacks)
			}
		})
	}
}

// TestIncrementalCloneIsolation: cloning a graph mid-chain starts a
// fresh snapshot lineage; mutations to the original afterwards must
// not bleed into the clone's snapshot through shared structure.
func TestIncrementalCloneIsolation(t *testing.T) {
	_, g := mutableSNB(t)
	csr.Of(g)
	snbMutationScript(t, g, 0) // dirty the chain so the next Of delta-applies
	if _, info := csr.OfCounted(g); info.Kind != csr.BuildDelta {
		t.Fatalf("priming mutation produced %v, want BuildDelta", info.Kind)
	}
	clone := g.Clone()
	cloneSnap := csr.Of(clone)
	cloneImage := csr.Build(clone)
	for step := 1; step < 4; step++ {
		snbMutationScript(t, g, step)
		csr.Of(g)
	}
	if err := csr.Equivalent(cloneSnap, cloneImage); err != nil {
		t.Fatalf("clone snapshot changed after mutating the original: %v", err)
	}
	if clone.NumNodes() == g.NumNodes() {
		t.Fatal("mutations did not diverge original from clone; test is vacuous")
	}
}

// TestExplainAnalyzeSnapshotFooter: after a mutation, the EXPLAIN
// ANALYZE footer reports the snapshot as delta-applied (and as a full
// build when the knob disables the incremental path).
func TestExplainAnalyzeSnapshotFooter(t *testing.T) {
	eng, g := mutableSNB(t)
	q := `SELECT c.name AS name MATCH (c:City) ORDER BY name`
	if _, err := eng.Eval(q); err != nil {
		t.Fatal(err)
	}
	snbMutationScript(t, g, 0)
	out, err := eng.ExplainAnalyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "snapshots: ") || !strings.Contains(out, "delta-applied") {
		t.Fatalf("no delta-applied snapshot line in footer:\n%s", out)
	}

	prev := core.DisableIncrementalSnapshot
	core.DisableIncrementalSnapshot = true
	defer func() { core.DisableIncrementalSnapshot = prev }()
	snbMutationScript(t, g, 1)
	out, err = eng.ExplainAnalyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "snapshots: 1 full") {
		t.Fatalf("knob off: footer should report a full build:\n%s", out)
	}
}

// TestIncrementalOverflowFallback: a mutation burst past the delta
// buffer cap must transparently fall back to a full rebuild — same
// results, counted as a full build, and the chain recovers afterwards.
func TestIncrementalOverflowFallback(t *testing.T) {
	saved := ppg.MaxDeltaOps
	ppg.MaxDeltaOps = 4
	defer func() { ppg.MaxDeltaOps = saved }()
	_, g := mutableSNB(t)
	csr.Of(g)
	snbMutationScript(t, g, 0) // records more than 4 ops
	snap, info := csr.OfCounted(g)
	if info.Kind != csr.BuildFull {
		t.Fatalf("overflowed delta produced %v, want BuildFull", info.Kind)
	}
	if err := csr.Equivalent(snap, csr.Build(g)); err != nil {
		t.Fatal(err)
	}
	// A small follow-up mutation fits the restarted buffer.
	if err := g.SetNodeProps(g.NodesWithLabel("Person")[0],
		gcore.NewProperties(map[string]gcore.Value{"karma": gcore.Int(1)})); err != nil {
		t.Fatal(err)
	}
	snap, info = csr.OfCounted(g)
	if info.Kind != csr.BuildDelta {
		t.Fatalf("post-overflow mutation produced %v, want BuildDelta", info.Kind)
	}
	if err := csr.Equivalent(snap, csr.Build(g)); err != nil {
		t.Fatal(err)
	}
}
