package gcore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"gcore/internal/ppg"
	"gcore/internal/table"
)

// Catalog persistence: an engine's graphs (including materialised
// views) and tables can be saved to a directory of JSON files and
// loaded back. The layout is
//
//	<dir>/catalog.json              names + default graph
//	<dir>/graph_<name>.json         one per graph
//	<dir>/table_<name>.json         one per table
//
// Identifiers are preserved exactly, so saved stored paths, the
// identity-based set operations, and cross-references keep working
// after a reload.
//
// Every file is written to a temporary name in the same directory and
// renamed into place, the manifest last, so a crash mid-save never
// leaves a half-written file behind under a final name: a directory
// either has no manifest (not a catalog) or a manifest whose files
// were all complete when it was written. The durable engine layers
// its checkpoints on exactly this layout (plus the log watermark).

type catalogManifest struct {
	Default string   `json:"default,omitempty"`
	Graphs  []string `json:"graphs"`
	Tables  []string `json:"tables"`
}

// fileSafe guards against names that would escape the directory.
func fileSafe(name string) error {
	if name == "" || strings.ContainsAny(name, "/\\") || name == "." || name == ".." {
		return fmt.Errorf("gcore: name %q is not usable as a file name", name)
	}
	return nil
}

// atomicWriteFile writes data next to path and renames it into place,
// fsyncing the file first so the rename never publishes a partial
// write.
func atomicWriteFile(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// SaveCatalog writes every registered graph and table to dir,
// creating it if needed. Each file is written atomically and the
// manifest is written last.
func (e *Engine) SaveCatalog(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.saveCatalogLocked(dir)
}

// saveCatalogLocked writes the catalog files into dir. Callers hold
// e.mu; the durable engine calls it to stage checkpoints.
func (e *Engine) saveCatalogLocked(dir string) error {
	man := catalogManifest{Default: e.cat.DefaultName()}
	for _, name := range e.cat.GraphNames() {
		if err := fileSafe(name); err != nil {
			return err
		}
		g, _ := e.cat.Graph(name)
		data, err := g.MarshalJSON()
		if err != nil {
			return fmt.Errorf("gcore: encoding graph %s: %w", name, err)
		}
		if err := atomicWriteFile(filepath.Join(dir, "graph_"+name+".json"), data); err != nil {
			return err
		}
		man.Graphs = append(man.Graphs, name)
	}
	for _, name := range e.cat.TableNames() {
		if err := fileSafe(name); err != nil {
			return err
		}
		t, _ := e.cat.Table(name)
		data, err := t.MarshalJSON()
		if err != nil {
			return fmt.Errorf("gcore: encoding table %s: %w", name, err)
		}
		if err := atomicWriteFile(filepath.Join(dir, "table_"+name+".json"), data); err != nil {
			return err
		}
		man.Tables = append(man.Tables, name)
	}
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	return atomicWriteFile(filepath.Join(dir, "catalog.json"), data)
}

// LoadCatalog reads a directory written by SaveCatalog into the
// engine, registering every graph and table and restoring the default
// graph. Names already present in the engine cause an error. The load
// is staged: every file is decoded and every registration validated
// before anything is registered, so a failed load leaves the engine's
// catalog untouched.
func (e *Engine) LoadCatalog(dir string) error {
	data, err := os.ReadFile(filepath.Join(dir, "catalog.json"))
	if err != nil {
		return err
	}
	var man catalogManifest
	if err := json.Unmarshal(data, &man); err != nil {
		return fmt.Errorf("gcore: decoding catalog manifest: %w", err)
	}
	// Stage: decode every file without touching the catalog.
	graphs := make([]*Graph, 0, len(man.Graphs))
	staged := map[string]bool{}
	for _, name := range man.Graphs {
		if err := fileSafe(name); err != nil {
			return err
		}
		raw, err := os.ReadFile(filepath.Join(dir, "graph_"+name+".json"))
		if err != nil {
			return err
		}
		g := ppg.New("")
		if err := g.UnmarshalJSON(raw); err != nil {
			return fmt.Errorf("gcore: loading graph %s: %w", name, err)
		}
		if g.Name() != name {
			return fmt.Errorf("gcore: graph file for %s contains graph %q", name, g.Name())
		}
		if err := g.Validate(); err != nil {
			return fmt.Errorf("gcore: loading graph %s: %w", name, err)
		}
		if staged[name] {
			return fmt.Errorf("gcore: manifest lists %s twice", name)
		}
		staged[name] = true
		graphs = append(graphs, g)
	}
	tables := make([]*Table, 0, len(man.Tables))
	for _, name := range man.Tables {
		if err := fileSafe(name); err != nil {
			return err
		}
		raw, err := os.ReadFile(filepath.Join(dir, "table_"+name+".json"))
		if err != nil {
			return err
		}
		t := table.New(name)
		if err := t.UnmarshalJSON(raw); err != nil {
			return fmt.Errorf("gcore: loading table %s: %w", name, err)
		}
		if staged[name] {
			return fmt.Errorf("gcore: manifest lists %s twice", name)
		}
		staged[name] = true
		tables = append(tables, t)
	}
	if man.Default != "" && !staged[man.Default] {
		return fmt.Errorf("gcore: manifest default %q is not in the catalog", man.Default)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	// Validate against the live catalog before registering anything.
	for name := range staged {
		if _, ok := e.cat.Graph(name); ok {
			return fmt.Errorf("gcore: catalog already has a graph named %q", name)
		}
		if _, ok := e.cat.Table(name); ok {
			return fmt.Errorf("gcore: catalog already has a table named %q", name)
		}
	}
	// Commit. Registration failures are impossible for pre-validated
	// names unless a change hook rejects — in which case the partial
	// registration is reported, never silently swallowed.
	for _, g := range graphs {
		if err := e.cat.RegisterGraph(g); err != nil {
			return err
		}
		e.applyPendingDefault(g.Name())
	}
	for _, t := range tables {
		if err := e.cat.RegisterTable(t); err != nil {
			return err
		}
	}
	if man.Default != "" {
		if err := e.cat.SetDefault(man.Default); err != nil {
			return err
		}
		e.pendingDefault = ""
	}
	return nil
}
