package gcore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Catalog persistence: an engine's graphs (including materialised
// views) and tables can be saved to a directory of JSON files and
// loaded back. The layout is
//
//	<dir>/catalog.json              names + default graph
//	<dir>/graph_<name>.json         one per graph
//	<dir>/table_<name>.json         one per table
//
// Identifiers are preserved exactly, so saved stored paths, the
// identity-based set operations, and cross-references keep working
// after a reload.

type catalogManifest struct {
	Default string   `json:"default,omitempty"`
	Graphs  []string `json:"graphs"`
	Tables  []string `json:"tables"`
}

// fileSafe guards against names that would escape the directory.
func fileSafe(name string) error {
	if name == "" || strings.ContainsAny(name, "/\\") || name == "." || name == ".." {
		return fmt.Errorf("gcore: name %q is not usable as a file name", name)
	}
	return nil
}

// SaveCatalog writes every registered graph and table to dir,
// creating it if needed.
func (e *Engine) SaveCatalog(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	man := catalogManifest{Default: e.cat.DefaultName()}
	for _, name := range e.cat.GraphNames() {
		if err := fileSafe(name); err != nil {
			return err
		}
		g, _ := e.cat.Graph(name)
		data, err := g.MarshalJSON()
		if err != nil {
			return fmt.Errorf("gcore: encoding graph %s: %w", name, err)
		}
		if err := os.WriteFile(filepath.Join(dir, "graph_"+name+".json"), data, 0o644); err != nil {
			return err
		}
		man.Graphs = append(man.Graphs, name)
	}
	for _, name := range e.cat.TableNames() {
		if err := fileSafe(name); err != nil {
			return err
		}
		t, _ := e.cat.Table(name)
		data, err := t.MarshalJSON()
		if err != nil {
			return fmt.Errorf("gcore: encoding table %s: %w", name, err)
		}
		if err := os.WriteFile(filepath.Join(dir, "table_"+name+".json"), data, 0o644); err != nil {
			return err
		}
		man.Tables = append(man.Tables, name)
	}
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "catalog.json"), data, 0o644)
}

// LoadCatalog reads a directory written by SaveCatalog into the
// engine, registering every graph and table and restoring the default
// graph. Names already present in the engine cause an error.
func (e *Engine) LoadCatalog(dir string) error {
	data, err := os.ReadFile(filepath.Join(dir, "catalog.json"))
	if err != nil {
		return err
	}
	var man catalogManifest
	if err := json.Unmarshal(data, &man); err != nil {
		return fmt.Errorf("gcore: decoding catalog manifest: %w", err)
	}
	for _, name := range man.Graphs {
		if err := fileSafe(name); err != nil {
			return err
		}
		fh, err := os.Open(filepath.Join(dir, "graph_"+name+".json"))
		if err != nil {
			return err
		}
		g, err := e.LoadGraphJSON(fh)
		fh.Close()
		if err != nil {
			return fmt.Errorf("gcore: loading graph %s: %w", name, err)
		}
		if g.Name() != name {
			return fmt.Errorf("gcore: graph file for %s contains graph %q", name, g.Name())
		}
	}
	for _, name := range man.Tables {
		if err := fileSafe(name); err != nil {
			return err
		}
		raw, err := os.ReadFile(filepath.Join(dir, "table_"+name+".json"))
		if err != nil {
			return err
		}
		t := NewTable(name)
		if err := t.UnmarshalJSON(raw); err != nil {
			return fmt.Errorf("gcore: loading table %s: %w", name, err)
		}
		if err := e.RegisterTable(t); err != nil {
			return err
		}
	}
	if man.Default != "" {
		return e.SetDefaultGraph(man.Default)
	}
	return nil
}
