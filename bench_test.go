package gcore_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gcore"
	"gcore/internal/ast"
	"gcore/internal/core"
	"gcore/internal/csr"
	"gcore/internal/parser"
	"gcore/internal/repro"
	"gcore/internal/rpq"
)

// Benchmark harness: one benchmark per reproduced figure/table (the
// experiment ids of DESIGN.md §3). Run with
//
//	go test -bench=. -benchmem
//
// FIG2   BenchmarkFig2Build
// FIG3   BenchmarkFig3Generator
// FIG4   BenchmarkGuidedTour/<line>
// FIG5   BenchmarkFig5Views
// TAB1   BenchmarkTable1Features
// CPLX1  BenchmarkComplexityScalingMatch / Shortest / Construct
// CPLX2  BenchmarkAblationSimplePath (walk vs simple-path baseline)
// CPLX3  BenchmarkAllPathsProjection
// CPLX4  BenchmarkWeightedShortest

func benchEngine(b *testing.B) *gcore.Engine {
	b.Helper()
	eng, err := repro.NewEngine()
	if err != nil {
		b.Fatal(err)
	}
	return eng
}

// BenchmarkFig2Build measures constructing the Example 2.2 PPG.
func BenchmarkFig2Build(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := gcore.SampleExampleGraph()
		if g.NumPaths() != 1 {
			b.Fatal("bad graph")
		}
	}
}

// BenchmarkFig3Generator measures SNB-schema data generation.
func BenchmarkFig3Generator(b *testing.B) {
	for _, persons := range []int{100, 400} {
		b.Run(fmt.Sprintf("persons=%d", persons), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				social, _ := gcore.GenerateSNB(gcore.SNBConfig{Persons: persons, Seed: 1})
				if social.NumNodes() == 0 {
					b.Fatal("empty graph")
				}
			}
		})
	}
}

// BenchmarkGuidedTour runs every guided-tour query of §3 (Figure 4)
// on the toy database.
func BenchmarkGuidedTour(b *testing.B) {
	keys := []string{"L01", "L05", "L10", "L15", "L20", "L23", "L28", "L32", "L48", "L72", "L76", "L81"}
	for _, key := range keys {
		src := parser.PaperQueries[key]
		b.Run(key, func(b *testing.B) {
			eng := benchEngine(b)
			stmt, err := gcore.Parse(src)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.EvalStatement(stmt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig5Views measures the full view pipeline of Figure 5:
// social_graph1 (OPTIONAL + aggregation) and social_graph2 (weighted
// shortest paths, stored paths), then the stored-path analytics query.
func BenchmarkFig5Views(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := benchEngine(b)
		if _, err := eng.Eval(parser.PaperQueries["L39"]); err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Eval(parser.PaperQueries["L57"]); err != nil {
			b.Fatal(err)
		}
		res, err := eng.Eval(repro.TourL67)
		if err != nil {
			b.Fatal(err)
		}
		if res.Graph.NumEdges() != 1 {
			b.Fatal("wrong analytics result")
		}
	}
}

// BenchmarkTable1Features runs the whole Table 1 conformance matrix.
func BenchmarkTable1Features(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, c := range repro.Table1() {
			if !c.OK() {
				b.Fatal(c.Err)
			}
		}
	}
}

// CPLX1: fixed queries across growing graphs. The shape to read off:
// time grows roughly with |V|+|E| (polynomial data complexity), not
// exponentially.
func BenchmarkComplexityScalingMatch(b *testing.B) {
	for _, persons := range []int{50, 100, 200, 400} {
		b.Run(fmt.Sprintf("persons=%d", persons), func(b *testing.B) {
			eng := gcore.NewEngine()
			social, _ := eng.GenerateSNB(gcore.SNBConfig{Persons: persons, Seed: 1})
			if err := eng.RegisterGraph(social); err != nil {
				b.Fatal(err)
			}
			stmt, err := gcore.Parse(repro.MatchQueryAt(social))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.EvalStatement(stmt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// CPLX1: single-source regular-path search across scales.
func BenchmarkComplexityScalingShortest(b *testing.B) {
	for _, persons := range []int{50, 100, 200} {
		b.Run(fmt.Sprintf("persons=%d", persons), func(b *testing.B) {
			eng := gcore.NewEngine()
			social, _ := eng.GenerateSNB(gcore.SNBConfig{Persons: persons, Seed: 1})
			if err := eng.RegisterGraph(social); err != nil {
				b.Fatal(err)
			}
			q := fmt.Sprintf(`CONSTRUCT (m)
MATCH (n:Person)-/<:knows*>/->(m:Person) ON %s
WHERE n.anchor = TRUE`, social.Name())
			stmt, err := gcore.Parse(q)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.EvalStatement(stmt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// CPLX1: grouped construction (the nr_messages view) across scales.
func BenchmarkComplexityScalingConstruct(b *testing.B) {
	for _, persons := range []int{50, 100, 200} {
		b.Run(fmt.Sprintf("persons=%d", persons), func(b *testing.B) {
			eng := gcore.NewEngine()
			social, _ := eng.GenerateSNB(gcore.SNBConfig{Persons: persons, Seed: 1})
			if err := eng.RegisterGraph(social); err != nil {
				b.Fatal(err)
			}
			q := fmt.Sprintf(`CONSTRUCT (n)-[e]->(m) SET e.nr_messages := COUNT(*)
MATCH (n)-[e:knows]->(m) ON %s
WHERE (n:Person) AND (m:Person)
OPTIONAL (n)<-[c1]-(msg1:Post|Comment),
         (msg1)-[:reply_of]-(msg2),
         (msg2:Post|Comment)-[c2]->(m)
WHERE (c1:has_creator) AND (c2:has_creator)`, social.Name())
			stmt, err := gcore.Parse(q)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.EvalStatement(stmt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// CPLX2: the ablation — G-CORE's walk semantics vs the NP-hard
// simple-path baseline on grids. Read: Walk grows polynomially with
// the grid, Simple explodes with the central binomial coefficient.
func BenchmarkAblationSimplePath(b *testing.B) {
	for _, w := range []int{4, 6, 8} {
		b.Run(fmt.Sprintf("Walk/width=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pts, err := repro.AblationWalkOnly(w)
				if err != nil || !pts {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Simple/width=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := repro.AblationSimpleOnly(w, 10_000_000); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Trail/width=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := repro.AblationTrailOnly(w, 10_000_000); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// CPLX3: ALL-paths answered as a graph projection — polynomial even
// when the number of conforming paths is astronomical.
func BenchmarkAllPathsProjection(b *testing.B) {
	for _, w := range []int{4, 8, 12} {
		b.Run(fmt.Sprintf("width=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := repro.AblationProjectionOnly(w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// CPLX4: weighted shortest paths over PATH views (Dijkstra over the
// view-segment product).
func BenchmarkWeightedShortest(b *testing.B) {
	for _, persons := range []int{50, 100} {
		b.Run(fmt.Sprintf("persons=%d", persons), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := repro.WeightedShortest([]int{persons}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIndexedScan measures label-selective node scans backed by
// the secondary label indexes: the query touches only the City nodes
// (a small fraction of the graph), so time should track the bucket
// size, not |V|.
func BenchmarkIndexedScan(b *testing.B) {
	eng := gcore.NewEngine()
	social, _ := eng.GenerateSNB(gcore.SNBConfig{Persons: 400, Seed: 1})
	if err := eng.RegisterGraph(social); err != nil {
		b.Fatal(err)
	}
	q := fmt.Sprintf(`SELECT c.name AS name MATCH (c:City) ON %s`, social.Name())
	stmt, err := gcore.Parse(q)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.EvalStatement(stmt)
		if err != nil {
			b.Fatal(err)
		}
		if res.Table.Len() == 0 {
			b.Fatal("empty scan")
		}
	}
}

// BenchmarkFilteredScan measures a label-indexed node scan with
// property predicates pushed onto it — the hot loop every WHERE clause
// pays. The "columns" run uses the typed property columns of the CSR
// snapshot (interned-string equality and range tests over dense
// arrays); "maps" disables them (core.DisablePropColumns) and chases
// the per-node property maps row at a time. The two runs must return
// identical tables; the gap is what the columnar storage buys.
func BenchmarkFilteredScan(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"columns", false}, {"maps", true}} {
		b.Run(mode.name, func(b *testing.B) {
			eng := gcore.NewEngine()
			social, _ := eng.GenerateSNB(gcore.SNBConfig{Persons: 2000, Seed: 1})
			if err := eng.RegisterGraph(social); err != nil {
				b.Fatal(err)
			}
			q := fmt.Sprintf(`SELECT p.lastName AS l
MATCH (p:Person) ON %s
WHERE p.firstName = 'John' AND p.lastName >= 'K'`, social.Name())
			stmt, err := gcore.Parse(q)
			if err != nil {
				b.Fatal(err)
			}
			core.DisablePropColumns = mode.disable
			defer func() { core.DisablePropColumns = false }()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := eng.EvalStatement(stmt)
				if err != nil {
					b.Fatal(err)
				}
				if res.Table.Len() == 0 {
					b.Fatal("empty scan")
				}
			}
		})
	}
}

// BenchmarkParallelMatch compares sequential and parallel evaluation
// of the CPLX1 match query on one graph. On a multi-core machine the
// parallel sub-benchmark should win; results are identical either way
// (the in-order merge guarantee, tested in internal/core).
func BenchmarkParallelMatch(b *testing.B) {
	for _, cfg := range []struct {
		name    string
		workers int
	}{{"sequential", 1}, {"parallel", 0}} {
		b.Run(cfg.name, func(b *testing.B) {
			eng := gcore.NewEngine()
			social, _ := eng.GenerateSNB(gcore.SNBConfig{Persons: 400, Seed: 1})
			if err := eng.RegisterGraph(social); err != nil {
				b.Fatal(err)
			}
			eng.SetParallelism(cfg.workers)
			stmt, err := gcore.Parse(repro.MatchQueryAt(social))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.EvalStatement(stmt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCSRShortest measures the k-shortest regular-path kernel
// itself — multi-source <:knows*> product search over the SNB graph —
// under the CSR snapshot and under the legacy map-based expansion.
// The csr/legacy gap is what the snapshot layer buys in the search
// inner loop, free of parse/bind/materialize overhead.
func BenchmarkCSRShortest(b *testing.B) {
	social, _ := gcore.GenerateSNB(gcore.SNBConfig{Persons: 400, Seed: 1})
	nfa, err := rpq.Compile(&ast.Regex{Op: ast.RxStar, Subs: []*ast.Regex{{Op: ast.RxLabel, Label: "knows"}}})
	if err != nil {
		b.Fatal(err)
	}
	persons := social.NodesWithLabel("Person")
	// Every 16th person is a source: enough sweeps to dominate setup.
	var srcs []gcore.NodeID
	for i := 0; i < len(persons); i += 16 {
		srcs = append(srcs, persons[i])
	}
	for _, mode := range []struct {
		name   string
		legacy bool
	}{{"csr", false}, {"legacy", true}} {
		b.Run(mode.name, func(b *testing.B) {
			rpq.UseLegacy = mode.legacy
			defer func() { rpq.UseLegacy = false }()
			eng := rpq.NewEngine(social, nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				total := 0
				for _, src := range srcs {
					res, err := eng.ShortestPaths(src, nfa, 1)
					if err != nil {
						b.Fatal(err)
					}
					total += len(res)
				}
				if total == 0 {
					b.Fatal("no paths found")
				}
			}
		})
	}
}

// BenchmarkCSRBuild measures constructing the CSR snapshot itself —
// the one-off cost a mutation generation pays before queries run at
// snapshot speed again.
func BenchmarkCSRBuild(b *testing.B) {
	social, _ := gcore.GenerateSNB(gcore.SNBConfig{Persons: 400, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := csr.Build(social)
		if s.NumNodes() != social.NumNodes() {
			b.Fatal("bad snapshot")
		}
	}
}

// BenchmarkParse measures parser throughput over all paper queries.
func BenchmarkParse(b *testing.B) {
	srcs := make([]string, 0, len(parser.PaperQueries))
	for _, src := range parser.PaperQueries {
		srcs = append(srcs, src)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, src := range srcs {
			if _, err := gcore.Parse(src); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkRepeatedEval measures the repeated-traffic shape the plan
// cache serves: one statement evaluated from source again and again.
// The cache sub-benchmark hits after the first compile; nocache
// ablates the cache (core.DisablePlanCache), so every iteration pays
// lex/parse/analyze and planning again.
func BenchmarkRepeatedEval(b *testing.B) {
	const q = `SELECT n.firstName AS name, n.lastName AS last, n.employer AS emp, n.age AS age,
       CASE WHEN n.age > 40 THEN 'senior' ELSE 'junior' END AS band,
       n.age * 365 AS days, n.firstName + ' ' + n.lastName AS full
MATCH (n:Person) ON social_graph
WHERE n.employer = 'Acme' AND n.age >= 18 AND n.age < 95
  AND n.firstName <> 'nobody' AND (n.lastName <> 'X' OR n.age > 20)
  AND n.age * 2 + 1 > 36 AND n.employer IN 'Acme'
  AND n.age + 1 > 18 AND n.age - 1 < 95 AND n.age / 1 >= 18
  AND (n.employer = 'Acme' OR n.employer = 'HAL' OR n.employer = '[MV] Clean Code')
  AND NOT (n.firstName = '' AND n.lastName = '')
  AND CASE WHEN n.age > 40 THEN TRUE ELSE n.age < 100 END
ORDER BY name, last, age`
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"cache", false}, {"nocache", true}} {
		b.Run(mode.name, func(b *testing.B) {
			core.DisablePlanCache = mode.disable
			defer func() { core.DisablePlanCache = false }()
			eng := benchEngine(b)
			if _, err := eng.Eval(q); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Eval(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPreparedEval measures executing a prepared statement with
// per-execution parameter bindings — the statement compiles once at
// Prepare, every Eval is a cache hit.
func BenchmarkPreparedEval(b *testing.B) {
	eng := benchEngine(b)
	p, err := eng.Prepare(`SELECT n.firstName AS name
MATCH (n:Person) ON social_graph
WHERE n.employer = $emp AND n.age >= $min
ORDER BY name`)
	if err != nil {
		b.Fatal(err)
	}
	params := map[string]gcore.Value{"emp": gcore.Str("Acme"), "min": gcore.Int(18)}
	if _, err := p.Eval(params); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Eval(params); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMutateThenRead measures the mixed read/write workload the
// incremental snapshot maintenance targets: every iteration appends a
// node and an edge to SNB-2000 and immediately runs a filtered scan,
// so each read pays for bringing the CSR snapshot up to date. The
// incremental mode delta-applies the two-op delta; the full-rebuild
// mode (core.DisableIncrementalSnapshot) reconstructs the snapshot
// from scratch each time.
func BenchmarkMutateThenRead(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"incremental", false}, {"full-rebuild", true}} {
		b.Run(mode.name, func(b *testing.B) {
			eng := gcore.NewEngine()
			social, _ := eng.GenerateSNB(gcore.SNBConfig{Persons: 2000, Seed: 1})
			if err := eng.RegisterGraph(social); err != nil {
				b.Fatal(err)
			}
			q := fmt.Sprintf(`SELECT p.lastName AS l
MATCH (p:Person) ON %s
WHERE p.firstName = 'John' AND p.lastName >= 'K'`, social.Name())
			stmt, err := gcore.Parse(q)
			if err != nil {
				b.Fatal(err)
			}
			core.DisableIncrementalSnapshot = mode.disable
			defer func() { core.DisableIncrementalSnapshot = false }()
			g, _ := eng.Graph(social.Name())
			persons := g.NodesWithLabel("Person")
			if _, err := eng.EvalStatement(stmt); err != nil {
				b.Fatal(err) // prime the snapshot chain
			}
			nextNode := gcore.NodeID(7_000_000)
			nextEdge := gcore.EdgeID(8_000_000)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := &gcore.Node{ID: nextNode, Labels: gcore.NewLabels("Person"),
					Props: gcore.NewProperties(map[string]gcore.Value{"firstName": gcore.Str("Zed")})}
				if err := g.AddNode(n); err != nil {
					b.Fatal(err)
				}
				if err := g.AddEdge(&gcore.Edge{ID: nextEdge, Src: persons[i%len(persons)],
					Dst: nextNode, Labels: gcore.NewLabels("knows")}); err != nil {
					b.Fatal(err)
				}
				nextNode++
				nextEdge++
				res, err := eng.EvalStatement(stmt)
				if err != nil {
					b.Fatal(err)
				}
				if res.Table.Len() == 0 {
					b.Fatal("empty scan")
				}
			}
		})
	}
}

// BenchmarkConcurrentRead measures reader scaling under the engine's
// read/write lock split: 1→8 reader goroutines run a filtered scan
// concurrently while a background writer appends nodes at a fixed
// rate (serialised by the writer lock). Intra-query parallelism is
// pinned to 1 so all concurrency comes from the readers: with
// snapshot-isolated reads, per-op wall time should drop with reader
// count on multi-core hosts until the writer's exclusive sections
// dominate. On a single-core host the expectation is flat per-op
// time — the split still must not make concurrent readers slower
// than time-sliced ones.
func BenchmarkConcurrentRead(b *testing.B) {
	for _, readers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("readers-%d", readers), func(b *testing.B) {
			eng := gcore.NewEngine(gcore.WithParallelism(1))
			social, _ := eng.GenerateSNB(gcore.SNBConfig{Persons: 2000, Seed: 1})
			if err := eng.RegisterGraph(social); err != nil {
				b.Fatal(err)
			}
			q := fmt.Sprintf(`SELECT p.lastName AS l
MATCH (p:Person) ON %s
WHERE p.firstName = 'John' AND p.lastName >= 'K'`, social.Name())
			if _, err := eng.Eval(q); err != nil {
				b.Fatal(err) // prime the plan cache and snapshot chain
			}

			// Background writer at a fixed rate — a steady mutation
			// load rather than a writer-lock spin (an unthrottled
			// writer measures lock starvation, not reader scaling).
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				nextNode := gcore.NodeID(7_000_000)
				tick := time.NewTicker(500 * time.Microsecond)
				defer tick.Stop()
				for {
					select {
					case <-stop:
						return
					case <-tick.C:
					}
					err := eng.MutateGraph(social.Name(), func(g *gcore.Graph) error {
						n := &gcore.Node{ID: nextNode, Labels: gcore.NewLabels("Person"),
							Props: gcore.NewProperties(map[string]gcore.Value{"firstName": gcore.Str("Zed")})}
						nextNode++
						return g.AddNode(n)
					})
					if err != nil {
						b.Error(err)
						return
					}
				}
			}()

			// Exactly `readers` goroutines share the b.N iterations
			// (RunParallel would multiply by GOMAXPROCS).
			b.ReportAllocs()
			b.ResetTimer()
			var idx atomic.Int64
			var rwg sync.WaitGroup
			for r := 0; r < readers; r++ {
				rwg.Add(1)
				go func() {
					defer rwg.Done()
					for idx.Add(1) <= int64(b.N) {
						res, err := eng.Eval(q)
						if err != nil {
							b.Error(err)
							return
						}
						if res.Table.Len() == 0 {
							b.Error("empty scan")
							return
						}
					}
				}()
			}
			rwg.Wait()
			b.StopTimer()
			close(stop)
			wg.Wait()
		})
	}
}
