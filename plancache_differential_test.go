package gcore_test

import (
	"sort"
	"testing"

	"gcore"
	"gcore/internal/core"
	"gcore/internal/parser"
)

// Differential tests between the plan-cached evaluation path (the
// default) and the uncached fallback (core.DisablePlanCache): every
// paper example and the SNB query set must render byte-identically
// with the cache on and off, sequentially and in parallel, on both
// the compile (first) and hit (second) execution. The plan cache is a
// pure performance optimisation with no observable behaviour.

// evalPlanCacheConfigured runs one query twice on a fresh engine and
// returns both renders: the first exercises the compile path, the
// second the cache-hit path (or, with the cache disabled, a second
// full compile).
func evalPlanCacheConfigured(t *testing.T, setup func(t *testing.T) *gcore.Engine, query string, disable bool, workers int) (string, string) {
	t.Helper()
	core.DisablePlanCache = disable
	defer func() { core.DisablePlanCache = false }()
	eng := setup(t)
	eng.SetParallelism(workers)
	res, err := eng.Eval(query)
	first := renderResult(res, err)
	res, err = eng.Eval(query)
	return first, renderResult(res, err)
}

func TestPlanCacheDifferentialPaper(t *testing.T) {
	keys := make([]string, 0, len(parser.PaperQueries))
	for k := range parser.PaperQueries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		query := parser.PaperQueries[key]
		t.Run(key, func(t *testing.T) {
			for _, workers := range []int{1, 0} {
				w1, w2 := evalPlanCacheConfigured(t, tourEngine, query, true, workers)
				g1, g2 := evalPlanCacheConfigured(t, tourEngine, query, false, workers)
				if g1 != w1 {
					t.Fatalf("workers=%d: compile-path result diverged from uncached\ncached:\n%s\nuncached:\n%s", workers, g1, w1)
				}
				if g2 != w2 {
					t.Fatalf("workers=%d: hit-path result diverged from uncached\ncached:\n%s\nuncached:\n%s", workers, g2, w2)
				}
			}
		})
	}
}

func TestPlanCacheDifferentialSNB(t *testing.T) {
	setup, queries := snbQueries()
	for i, query := range queries {
		for _, workers := range []int{1, 0} {
			w1, w2 := evalPlanCacheConfigured(t, setup, query, true, workers)
			g1, g2 := evalPlanCacheConfigured(t, setup, query, false, workers)
			if g1 != w1 {
				t.Fatalf("query %d workers=%d: compile-path result diverged from uncached\ncached:\n%s\nuncached:\n%s", i, workers, g1, w1)
			}
			if g2 != w2 {
				t.Fatalf("query %d workers=%d: hit-path result diverged from uncached\ncached:\n%s\nuncached:\n%s", i, workers, g2, w2)
			}
		}
	}
}

// TestPlanCacheDifferentialMutation: a query / mutate / query sequence
// renders identically with the cache on and off — the generation bump
// retires the stale entry, so the cached engine sees the mutation.
func TestPlanCacheDifferentialMutation(t *testing.T) {
	const q = `SELECT n.firstName AS name MATCH (n:Person) ORDER BY name`
	runSeq := func(disable bool) []string {
		core.DisablePlanCache = disable
		defer func() { core.DisablePlanCache = false }()
		eng := newEngine(t)
		var out []string
		res, err := eng.Eval(q)
		out = append(out, renderResult(res, err))
		g, _ := eng.Graph("social_graph")
		if err := g.AddNode(&gcore.Node{
			ID:     eng.NextNodeID(),
			Labels: gcore.NewLabels("Person"),
			Props:  gcore.NewProperties(map[string]gcore.Value{"firstName": gcore.Str("Zed")}),
		}); err != nil {
			t.Fatal(err)
		}
		res, err = eng.Eval(q)
		out = append(out, renderResult(res, err))
		return out
	}
	want := runSeq(true)
	got := runSeq(false)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d diverged\ncached:\n%s\nuncached:\n%s", i, got[i], want[i])
		}
	}
	if want[0] == want[1] {
		t.Fatal("mutation had no observable effect; the sequence proves nothing")
	}
}
