package gcore

import "context"

// Compatibility surface.
//
// The canonical engine API is context-first — EvalContext,
// EvalScriptContext, EvalStatementContext, ExplainContext,
// ExplainAnalyzeContext, Prepare — as captured by the Querier
// interface, with construction-time Options (WithLimits,
// WithParallelism, WithDefaultGraph, ...) for configuration and
// Session for per-caller state. Everything in this file predates that
// surface and remains only for source compatibility: the context-free
// wrappers simply supply context.Background(), and the deprecated
// setters reconfigure a live engine under the writer lock. New code
// should not use them; per-session defaults and limits belong on a
// Session, which overrides them per execution without touching the
// engine-wide configuration.

// Eval is EvalContext with context.Background().
func (e *Engine) Eval(src string) (*Result, error) {
	return e.EvalContext(context.Background(), src)
}

// EvalScript is EvalScriptContext with context.Background().
func (e *Engine) EvalScript(src string) ([]*Result, error) {
	return e.EvalScriptContext(context.Background(), src)
}

// EvalStatement is EvalStatementContext with context.Background().
func (e *Engine) EvalStatement(stmt *Statement) (*Result, error) {
	return e.EvalStatementContext(context.Background(), stmt)
}

// Explain is ExplainContext with context.Background().
func (e *Engine) Explain(src string) (string, error) {
	return e.ExplainContext(context.Background(), src)
}

// ExplainAnalyze is ExplainAnalyzeContext with context.Background().
func (e *Engine) ExplainAnalyze(src string) (string, error) {
	return e.ExplainAnalyzeContext(context.Background(), src)
}

// SetMaxBindings bounds the size of intermediate binding tables per
// statement; zero (the default) means unlimited.
//
// Deprecated: the bound is the MaxBindings field of Limits; set it
// with WithLimits at construction (or SetLimits). This wrapper only
// rewrites that one field, preserving the other limits.
func (e *Engine) SetMaxBindings(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.ev.SetMaxBindings(n)
}

// SetLimits installs per-statement resource limits: intermediate
// binding rows (MaxBindings), explored path-search product states
// (MaxPathFrontier), constructed result elements (MaxResultElements)
// and wall-clock time (Timeout). A zero field means unlimited for that
// resource. Exceeding a limit fails the statement with a *QueryError
// of KindBudget (KindTimeout for the deadline) naming the limit and
// the progress when it tripped; the engine and its graphs are
// untouched.
//
// Deprecated: prefer WithLimits at construction, or Session.SetLimits
// for per-caller overrides; SetLimits remains for reconfiguring a live
// engine.
func (e *Engine) SetLimits(l Limits) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.ev.SetLimits(l)
}

// SetParallelism sets the worker count used for intra-query
// parallelism (node scans, edge expansion, per-source path searches).
// Zero (the default) uses runtime.GOMAXPROCS; one forces fully
// sequential evaluation. Partition results are merged in input order,
// so query results are identical for every setting — parallelism
// never changes query semantics.
//
// Deprecated: prefer WithParallelism at construction; SetParallelism
// remains for reconfiguring a live engine.
func (e *Engine) SetParallelism(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.ev.SetParallelism(n)
}

// SetDefaultGraph selects the graph used when MATCH omits ON. The
// graph must already be registered.
//
// Deprecated: prefer WithDefaultGraph at construction (which also
// accepts a name registered later) or Session.SetDefaultGraph for a
// per-session default; SetDefaultGraph remains for switching the
// engine-wide default on a live engine.
func (e *Engine) SetDefaultGraph(name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.cat.SetDefault(name); err != nil {
		return err
	}
	e.pendingDefault = ""
	return nil
}
