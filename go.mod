module gcore

go 1.22
