package gcore_test

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gcore"
)

// counters snapshots the engine's read/write dispatch counters.
func counters(t *testing.T, q gcore.Querier) (reads, writes int64) {
	t.Helper()
	m := q.Metrics()
	return m.ReadStatements, m.WriteStatements
}

// TestReadWriteClassification pins the statement classification the
// concurrency split depends on. Every hazard from the audit gets a
// regression assertion: plain EXPLAIN never executes (read), EXPLAIN
// ANALYZE really executes (classified by body), prepared statements
// classify like their source, and a script with any mutating piece
// takes the write path for all its pieces.
func TestReadWriteClassification(t *testing.T) {
	ctx := context.Background()
	eng := gcore.NewEngine()
	if err := eng.RegisterGraph(gcore.SampleSocialGraph()); err != nil {
		t.Fatal(err)
	}

	const read = "CONSTRUCT (n) MATCH (n:Person) ON social_graph"
	view := func(name string) string {
		return fmt.Sprintf("GRAPH VIEW %s AS (CONSTRUCT (n) MATCH (n:Person) ON social_graph)", name)
	}

	assertDelta := func(name string, dr, dw int64, run func() error) {
		t.Helper()
		r0, w0 := counters(t, eng)
		if err := run(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		r1, w1 := counters(t, eng)
		if r1-r0 != dr || w1-w0 != dw {
			t.Fatalf("%s: reads +%d writes +%d, want +%d/+%d", name, r1-r0, w1-w0, dr, dw)
		}
	}

	assertDelta("plain read", 1, 0, func() error {
		_, err := eng.EvalContext(ctx, read)
		return err
	})
	assertDelta("view definition", 0, 1, func() error {
		_, err := eng.EvalContext(ctx, view("v_def"))
		return err
	})
	assertDelta("EXPLAIN of view is read-only", 1, 0, func() error {
		res, err := eng.EvalContext(ctx, "EXPLAIN "+view("v_explained"))
		if err != nil {
			return err
		}
		if res.Plan == "" {
			return fmt.Errorf("no plan")
		}
		return nil
	})
	if _, ok := eng.Graph("v_explained"); ok {
		t.Fatal("plain EXPLAIN registered its view — it must never execute")
	}
	assertDelta("EXPLAIN ANALYZE of view takes write path", 0, 1, func() error {
		_, err := eng.EvalContext(ctx, "EXPLAIN ANALYZE "+view("v_analyzed"))
		return err
	})
	if _, ok := eng.Graph("v_analyzed"); !ok {
		t.Fatal("EXPLAIN ANALYZE did not commit its view — it must really execute")
	}
	assertDelta("ExplainAnalyzeContext of view takes write path", 0, 1, func() error {
		_, err := eng.ExplainAnalyzeContext(ctx, view("v_analyzed2"))
		return err
	})

	assertDelta("prepared read with params", 1, 0, func() error {
		p, err := eng.Prepare("SELECT n.firstName MATCH (n:Person) ON social_graph WHERE n.employer = $emp")
		if err != nil {
			return err
		}
		_, err = p.EvalContext(ctx, map[string]gcore.Value{"emp": gcore.Str("Acme")})
		return err
	})
	assertDelta("prepared view statement takes write path", 0, 1, func() error {
		p, err := eng.Prepare(view("v_prepared"))
		if err != nil {
			return err
		}
		_, err = p.EvalContext(ctx, nil)
		return err
	})

	assertDelta("all-read script stays on read path", 2, 0, func() error {
		_, err := eng.EvalScriptContext(ctx, read+";\n"+read)
		return err
	})
	assertDelta("mixed script takes write path for every piece", 0, 3, func() error {
		_, err := eng.EvalScriptContext(ctx, read+";\n"+view("v_script")+";\n"+read)
		return err
	})

	// The syntactic classifier agrees with the dispatch behaviour.
	for _, tc := range []struct {
		src  string
		read bool
	}{
		{read, true},
		{"EXPLAIN " + read, true},
		{"EXPLAIN ANALYZE " + read, true},
		{view("v_x"), false},
		{"EXPLAIN " + view("v_x"), true},
		{"EXPLAIN ANALYZE " + view("v_x"), false},
		{"PATH knows_chain = (:Person)-[:knows]->(:Person) " + read, true},
	} {
		stmt, err := gcore.Parse(tc.src)
		if err != nil {
			t.Fatalf("parse %q: %v", tc.src, err)
		}
		if got := gcore.ReadOnly(stmt); got != tc.read {
			t.Errorf("ReadOnly(%q) = %v, want %v", tc.src, got, tc.read)
		}
	}
}

// TestSessionIsolation: per-session defaults and limits must not leak
// across sessions or into the engine.
func TestSessionIsolation(t *testing.T) {
	ctx := context.Background()
	eng := gcore.NewEngine()
	if err := eng.RegisterGraph(gcore.SampleSocialGraph()); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterGraph(gcore.SampleCompanyGraph()); err != nil {
		t.Fatal(err)
	}

	s1, s2 := eng.NewSession(), eng.NewSession()
	if err := s1.SetDefaultGraph("social_graph"); err != nil {
		t.Fatal(err)
	}
	if err := s2.SetDefaultGraph("company_graph"); err != nil {
		t.Fatal(err)
	}
	r1, err := s1.EvalContext(ctx, "CONSTRUCT (n) MATCH (n:Person)")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s2.EvalContext(ctx, "CONSTRUCT (n) MATCH (n:Company)")
	if err != nil {
		t.Fatal(err)
	}
	if r1.Graph.NumNodes() == 0 || r2.Graph.NumNodes() == 0 {
		t.Fatalf("session defaults not applied: %d, %d nodes", r1.Graph.NumNodes(), r2.Graph.NumNodes())
	}
	// Session defaults must not leak into the engine: the catalog
	// default is still social_graph (first registered), even though
	// s2 points at company_graph.
	re, err := eng.EvalContext(ctx, "CONSTRUCT (c) MATCH (c:Company)")
	if err != nil {
		t.Fatal(err)
	}
	if re.Graph.NumNodes() != 0 {
		t.Fatalf("engine default leaked: found %d Company nodes in social_graph", re.Graph.NumNodes())
	}

	// Session limits are admission control for that session only.
	s1.SetLimits(gcore.Limits{MaxBindings: 1})
	if _, err := s1.EvalContext(ctx, "CONSTRUCT (n) MATCH (n:Person)-[:knows]->(m:Person)"); err == nil {
		t.Fatal("session limit not enforced")
	}
	if _, err := s2.EvalContext(ctx, "CONSTRUCT (n) MATCH (n:Person)-[:knows]->(m:Person) ON social_graph"); err != nil {
		t.Fatalf("limit leaked across sessions: %v", err)
	}
	s1.ClearLimits()
	if _, err := s1.EvalContext(ctx, "CONSTRUCT (n) MATCH (n:Person)-[:knows]->(m:Person)"); err != nil {
		t.Fatalf("ClearLimits did not restore engine limits: %v", err)
	}
}

// TestConcurrentReadWriteTorture races N readers against a writer
// mutating the graph in atomic batches. Every reader result must be
// a consistent snapshot: the Batch-node count is always a multiple of
// the batch size (a torn read would expose a partial batch), and any
// two results observing the same generation are byte-identical.
func TestConcurrentReadWriteTorture(t *testing.T) {
	const (
		batch   = 8
		batches = 40
		readers = 8
	)
	ctx := context.Background()
	before := runtime.NumGoroutine()

	eng := gcore.NewEngine()
	g := gcore.NewGraph("torture")
	if err := eng.RegisterGraph(g); err != nil {
		t.Fatal(err)
	}
	const q = "CONSTRUCT (n) MATCH (n:Batch) ON torture"

	// oracle maps observed node count -> the first marshalled result
	// at that count; later observers at the same count must match
	// byte for byte.
	var oracle sync.Map
	check := func(res *gcore.Result) error {
		n := res.Graph.NumNodes()
		if n%batch != 0 {
			return fmt.Errorf("torn read: %d nodes is not a multiple of %d", n, batch)
		}
		data, err := res.Graph.MarshalJSON()
		if err != nil {
			return err
		}
		if prev, loaded := oracle.LoadOrStore(n, data); loaded && !bytes.Equal(prev.([]byte), data) {
			return fmt.Errorf("generation %d not byte-identical across readers", n/batch)
		}
		return nil
	}

	var done atomic.Bool
	errCh := make(chan error, readers+1)
	var wg sync.WaitGroup

	// Writer: apply batches, then read back its own writes — the
	// read-back also seeds the oracle for each generation.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		for b := 0; b < batches; b++ {
			err := eng.MutateGraph("torture", func(g *gcore.Graph) error {
				for i := 0; i < batch; i++ {
					id := gcore.NodeID(1 + b*batch + i)
					n := &gcore.Node{ID: id, Labels: gcore.NewLabels("Batch")}
					n.Props = gcore.Properties{}
					n.Props.Set("gen", gcore.Int(int64(b)))
					if err := g.AddNode(n); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				errCh <- fmt.Errorf("writer batch %d: %w", b, err)
				return
			}
			res, err := eng.EvalContext(ctx, q)
			if err != nil {
				errCh <- fmt.Errorf("writer read-back %d: %w", b, err)
				return
			}
			if got := res.Graph.NumNodes(); got != (b+1)*batch {
				errCh <- fmt.Errorf("writer read-back %d: %d nodes, want %d", b, got, (b+1)*batch)
				return
			}
			if err := check(res); err != nil {
				errCh <- err
				return
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			sess := eng.NewSession()
			if err := sess.SetDefaultGraph("torture"); err != nil {
				errCh <- err
				return
			}
			for !done.Load() {
				// Alternate entry points so the torture covers the
				// engine gateway and the session layer.
				var res *gcore.Result
				var err error
				if r%2 == 0 {
					res, err = eng.EvalContext(ctx, q)
				} else {
					res, err = sess.EvalContext(ctx, "CONSTRUCT (n) MATCH (n:Batch)")
				}
				if err != nil {
					errCh <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
				if err := check(res); err != nil {
					errCh <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
			}
		}(r)
	}

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// Final state: all batches applied exactly once.
	res, err := eng.EvalContext(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Graph.NumNodes(); got != batch*batches {
		t.Fatalf("final count = %d, want %d", got, batch*batches)
	}

	waitForGoroutines(t, before)
}

// TestConcurrentDurableTorture is the durable variant: the writer
// also checkpoints mid-stream, which must not disturb concurrent
// readers or tear their snapshots.
func TestConcurrentDurableTorture(t *testing.T) {
	const (
		batch   = 4
		batches = 12
		readers = 4
	)
	ctx := context.Background()
	before := runtime.NumGoroutine()

	dir := t.TempDir()
	dur, err := gcore.OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := dur.RegisterGraph(gcore.NewGraph("torture")); err != nil {
		t.Fatal(err)
	}
	const q = "CONSTRUCT (n) MATCH (n:Batch) ON torture"

	var done atomic.Bool
	errCh := make(chan error, readers+1)
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		for b := 0; b < batches; b++ {
			err := dur.MutateGraph("torture", func(g *gcore.Graph) error {
				for i := 0; i < batch; i++ {
					id := gcore.NodeID(1 + b*batch + i)
					if err := g.AddNode(&gcore.Node{ID: id, Labels: gcore.NewLabels("Batch")}); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				errCh <- fmt.Errorf("writer batch %d: %w", b, err)
				return
			}
			if b%3 == 2 {
				if err := dur.Checkpoint(); err != nil {
					errCh <- fmt.Errorf("checkpoint after batch %d: %w", b, err)
					return
				}
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			sess := dur.NewSession()
			for !done.Load() {
				res, err := sess.EvalContext(ctx, q)
				if err != nil {
					errCh <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
				if n := res.Graph.NumNodes(); n%batch != 0 {
					errCh <- fmt.Errorf("reader %d: torn read, %d nodes", r, n)
					return
				}
			}
		}(r)
	}

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if err := dur.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery sees everything the writer applied.
	dur2, err := gcore.OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer dur2.Close()
	res, err := dur2.EvalContext(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Graph.NumNodes(); got != batch*batches {
		t.Fatalf("recovered count = %d, want %d", got, batch*batches)
	}

	waitForGoroutines(t, before)
}

// TestScriptAtomicity: a mixed script defining two views commits
// under one writer-lock acquisition, so no concurrent reader may ever
// observe one view without the other.
func TestScriptAtomicity(t *testing.T) {
	ctx := context.Background()
	eng := gcore.NewEngine()
	if err := eng.RegisterGraph(gcore.SampleSocialGraph()); err != nil {
		t.Fatal(err)
	}

	var done atomic.Bool
	errCh := make(chan error, 5)
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				names := eng.GraphNames()
				hasA, hasB := false, false
				for _, n := range names {
					if n == "pair_a" {
						hasA = true
					}
					if n == "pair_b" {
						hasB = true
					}
				}
				if hasA != hasB {
					errCh <- fmt.Errorf("partial script visible: pair_a=%v pair_b=%v", hasA, hasB)
					return
				}
			}
		}()
	}

	script := `GRAPH VIEW pair_a AS (CONSTRUCT (n) MATCH (n:Person) ON social_graph);
GRAPH VIEW pair_b AS (CONSTRUCT (n) MATCH (n) ON pair_a)`
	if _, err := eng.EvalScriptContext(ctx, script); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	done.Store(true)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if _, ok := eng.Graph("pair_b"); !ok {
		t.Fatal("pair_b missing after script")
	}
}
