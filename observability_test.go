package gcore_test

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"gcore"
	"gcore/internal/parser"
)

// Observability tests. Attaching a collector or a trace handler must
// never change what a query returns — at any parallelism — and the
// row/frontier totals the collector reports must themselves be
// deterministic across worker counts (spans may arrive in any order,
// but partitioned operators merge in input order, so the totals are a
// function of the query alone). EXPLAIN ANALYZE is checked on every
// paper example, and the options-based construction API is held to
// exact parity with the deprecated setters.

// evalObserved runs one query on a fresh engine built by setup with a
// collector attached and the given worker count; it returns the
// rendered result and the collector's aggregate totals.
func evalObserved(t *testing.T, setup func(t *testing.T) *gcore.Engine, query string, workers int) (string, gcore.Stats) {
	t.Helper()
	eng := setup(t)
	eng.SetParallelism(workers)
	col := gcore.NewCollector()
	eng.SetCollector(col)
	res, err := eng.Eval(query)
	return renderResult(res, err), col.Stats()
}

// statsKey renders the parallelism-invariant part of collected stats:
// operator counts and row/frontier totals, never timings.
func statsKey(st gcore.Stats) string {
	var sb strings.Builder
	for op := gcore.OpStatement; op <= gcore.OpAllPaths; op++ {
		os := st.Op(op)
		if os.Count == 0 {
			continue
		}
		fmt.Fprintf(&sb, "%s: count=%d rows=%d→%d frontier=%d/%d\n",
			op, os.Count, os.RowsIn, os.RowsOut, os.Pops, os.Arrivals)
	}
	fmt.Fprintf(&sb, "caches: nfa=%d/%d csr=%d/%d\n",
		st.NFAHits, st.NFAMisses, st.CSRReuses, st.CSRBuilds)
	return sb.String()
}

// TestObservabilityDifferentialPaper: on every paper example,
// observed runs render byte-identically to plain runs, and the
// collected totals agree between sequential and parallel evaluation.
func TestObservabilityDifferentialPaper(t *testing.T) {
	keys := make([]string, 0, len(parser.PaperQueries))
	for k := range parser.PaperQueries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		query := parser.PaperQueries[key]
		t.Run(key, func(t *testing.T) {
			plain := evalConfigured(t, tourEngine, query, false, 1)
			seq, seqStats := evalObserved(t, tourEngine, query, 1)
			par, parStats := evalObserved(t, tourEngine, query, 0)
			if seq != plain {
				t.Fatalf("observed sequential run diverged from plain run\nobserved:\n%s\nplain:\n%s", seq, plain)
			}
			if par != plain {
				t.Fatalf("observed parallel run diverged from plain run\nobserved:\n%s\nplain:\n%s", par, plain)
			}
			if !strings.HasPrefix(plain, "ERR:") {
				if sk, pk := statsKey(seqStats), statsKey(parStats); sk != pk {
					t.Fatalf("collected totals depend on parallelism\nworkers=1:\n%s\nworkers=N:\n%s", sk, pk)
				}
			}
		})
	}
}

// TestObservabilityDifferentialSNB: the same invariants on the SNB
// toy graph's kernel-heavy query set.
func TestObservabilityDifferentialSNB(t *testing.T) {
	setup, queries := snbQueries()
	for i, query := range queries {
		t.Run(fmt.Sprintf("q%d", i), func(t *testing.T) {
			plain := evalConfigured(t, setup, query, false, 1)
			seq, seqStats := evalObserved(t, setup, query, 1)
			par, parStats := evalObserved(t, setup, query, 0)
			if seq != plain {
				t.Fatalf("observed sequential run diverged from plain run\nobserved:\n%s\nplain:\n%s", seq, plain)
			}
			if par != plain {
				t.Fatalf("observed parallel run diverged from plain run\nobserved:\n%s\nplain:\n%s", par, plain)
			}
			if sk, pk := statsKey(seqStats), statsKey(parStats); sk != pk {
				t.Fatalf("collected totals depend on parallelism\nworkers=1:\n%s\nworkers=N:\n%s", sk, pk)
			}
		})
	}
}

// TestOptionsSettersParity: an engine assembled with construction
// options behaves exactly like one configured through the deprecated
// setters.
func TestOptionsSettersParity(t *testing.T) {
	limits := gcore.Limits{MaxBindings: 10_000, Timeout: time.Minute}
	byOptions := gcore.NewEngine(
		gcore.WithParallelism(1),
		gcore.WithLimits(limits),
		gcore.WithDefaultGraph("social_graph"),
	)
	// The default graph is named before it exists; registration
	// promotes it.
	if err := byOptions.RegisterGraph(gcore.SampleSocialGraph()); err != nil {
		t.Fatal(err)
	}

	bySetters := gcore.NewEngine()
	bySetters.SetParallelism(1)
	bySetters.SetLimits(limits)
	if err := bySetters.RegisterGraph(gcore.SampleSocialGraph()); err != nil {
		t.Fatal(err)
	}
	if err := bySetters.SetDefaultGraph("social_graph"); err != nil {
		t.Fatal(err)
	}

	if a, b := byOptions.Limits(), bySetters.Limits(); a != b {
		t.Fatalf("limits differ: options=%+v setters=%+v", a, b)
	}
	const query = `SELECT n.firstName AS name MATCH (n:Person) ORDER BY name`
	a := renderResult(byOptions.Eval(query))
	b := renderResult(bySetters.Eval(query))
	if a != b {
		t.Fatalf("results differ\noptions:\n%s\nsetters:\n%s", a, b)
	}
}

// TestSetMaxBindingsEquivalence: the deprecated SetMaxBindings is the
// MaxBindings field of Limits — both forms trip the same budget error.
func TestSetMaxBindingsEquivalence(t *testing.T) {
	const query = `CONSTRUCT (n) MATCH (n) ON social_graph`
	run := func(eng *gcore.Engine) string {
		if err := eng.RegisterGraph(gcore.SampleSocialGraph()); err != nil {
			t.Fatal(err)
		}
		_, err := eng.Eval(query)
		if err == nil {
			t.Fatal("expected a budget error")
		}
		qe, ok := gcore.AsQueryError(err)
		if !ok || qe.Kind != gcore.KindBudget {
			t.Fatalf("expected KindBudget, got %v", err)
		}
		return err.Error()
	}
	old := gcore.NewEngine()
	old.SetMaxBindings(2)
	viaLimits := gcore.NewEngine(gcore.WithLimits(gcore.Limits{MaxBindings: 2}))
	if a, b := run(old), run(viaLimits); a != b {
		t.Fatalf("budget errors differ:\nSetMaxBindings: %s\nWithLimits:     %s", a, b)
	}
}

// TestExplainAnalyzePaperQueries: EXPLAIN ANALYZE renders every paper
// example's plan with actual row counts and an execution footer.
func TestExplainAnalyzePaperQueries(t *testing.T) {
	keys := make([]string, 0, len(parser.PaperQueries))
	for k := range parser.PaperQueries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		query := parser.PaperQueries[key]
		t.Run(key, func(t *testing.T) {
			eng := tourEngine(t)
			out, err := eng.ExplainAnalyze(query)
			if err != nil {
				// A few tour queries reference views defined by other
				// statements; EXPLAIN ANALYZE must fail exactly like a
				// plain run, not invent a plan.
				if plain := evalConfigured(t, tourEngine, query, false, 1); plain == "ERR: "+err.Error() {
					return
				}
				t.Fatal(err)
			}
			if !strings.Contains(out, "[actual rows=") {
				t.Fatalf("no actual-rows annotation in:\n%s", out)
			}
			if !strings.Contains(out, "executed: total time ") {
				t.Fatalf("no execution footer in:\n%s", out)
			}
		})
	}
}

// TestExplainStatementForms: EXPLAIN and EXPLAIN ANALYZE work as
// statement prefixes through the ordinary Eval path, returning the
// plan in Result.Plan.
func TestExplainStatementForms(t *testing.T) {
	const query = `CONSTRUCT (n) MATCH (n:Person) ON social_graph WHERE n.employer = 'Acme'`
	eng := gcore.NewEngine()
	if err := eng.RegisterGraph(gcore.SampleSocialGraph()); err != nil {
		t.Fatal(err)
	}

	res, err := eng.Eval("EXPLAIN " + query)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == "" || res.Graph != nil || res.Table != nil {
		t.Fatalf("EXPLAIN result should carry only a plan, got %+v", res)
	}
	direct, err := eng.Explain(query)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan != direct {
		t.Fatalf("EXPLAIN statement and Engine.Explain disagree:\n%s\nvs:\n%s", res.Plan, direct)
	}

	res, err = eng.Eval("EXPLAIN ANALYZE " + query)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "[actual rows=") {
		t.Fatalf("EXPLAIN ANALYZE plan lacks annotations:\n%s", res.Plan)
	}
}

// TestExplainContextCancellation: both EXPLAIN entry points run under
// the caller's context and fail with the typed cancellation error.
func TestExplainContextCancellation(t *testing.T) {
	eng := gcore.NewEngine()
	if err := eng.RegisterGraph(gcore.SampleSocialGraph()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	const query = `CONSTRUCT (n) MATCH (n:Person) ON social_graph`
	if _, err := eng.ExplainContext(ctx, query); err == nil {
		t.Fatal("ExplainContext ignored a cancelled context")
	} else if qe, ok := gcore.AsQueryError(err); !ok || qe.Kind != gcore.KindCanceled {
		t.Fatalf("expected KindCanceled from ExplainContext, got %v", err)
	}
	if _, err := eng.ExplainAnalyzeContext(ctx, query); err == nil {
		t.Fatal("ExplainAnalyzeContext ignored a cancelled context")
	} else if qe, ok := gcore.AsQueryError(err); !ok || qe.Kind != gcore.KindCanceled {
		t.Fatalf("expected KindCanceled from ExplainAnalyzeContext, got %v", err)
	}
}

// traceRecorder is a concurrency-safe TraceHandler for tests.
type traceRecorder struct {
	mu     sync.Mutex
	starts int
	ends   []gcore.Span
}

func (r *traceRecorder) SpanStart(op gcore.Op, depth int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.starts++
}

func (r *traceRecorder) SpanEnd(sp gcore.Span) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ends = append(r.ends, sp)
}

// TestTraceHandlerEvents: an installed handler sees balanced span
// events, including a statement span carrying the statement text.
func TestTraceHandlerEvents(t *testing.T) {
	rec := &traceRecorder{}
	eng := gcore.NewEngine(gcore.WithTraceHandler(rec))
	if err := eng.RegisterGraph(gcore.SampleSocialGraph()); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Eval(`CONSTRUCT (n) MATCH (n:Person) ON social_graph`); err != nil {
		t.Fatal(err)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.starts == 0 || rec.starts != len(rec.ends) {
		t.Fatalf("unbalanced span events: %d starts, %d ends", rec.starts, len(rec.ends))
	}
	var stmt *gcore.Span
	for i := range rec.ends {
		if rec.ends[i].Op == gcore.OpStatement {
			stmt = &rec.ends[i]
		}
	}
	if stmt == nil {
		t.Fatal("no statement span observed")
	}
	if !strings.Contains(stmt.Label, "MATCH") {
		t.Fatalf("statement span label %q does not carry the statement text", stmt.Label)
	}
	if stmt.Elapsed <= 0 {
		t.Fatal("statement span has no elapsed time")
	}
}

// TestMetricsAccumulate: the engine-lifetime registry counts
// statements, errors and operator work across queries.
func TestMetricsAccumulate(t *testing.T) {
	eng := gcore.NewEngine()
	if err := eng.RegisterGraph(gcore.SampleSocialGraph()); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Eval(`CONSTRUCT (n) MATCH (n:Person) ON social_graph`); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Eval(`CONSTRUCT (n) MATCH (n) ON no_such_graph`); err == nil {
		t.Fatal("expected an error for a missing graph")
	}
	m := eng.Metrics()
	if m.Queries != 2 {
		t.Fatalf("Queries = %d, want 2", m.Queries)
	}
	if m.Errors != 1 {
		t.Fatalf("Errors = %d, want 1", m.Errors)
	}
	scan, ok := m.Operators["scan"]
	if !ok || scan.Count == 0 || scan.RowsOut == 0 {
		t.Fatalf("scan operator metrics missing or empty: %+v", m.Operators)
	}
	if m.Operators["statement"].ElapsedNS <= 0 {
		t.Fatal("statement elapsed time not recorded")
	}
}
