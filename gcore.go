// Package gcore is a Go implementation of G-CORE, the graph query
// language designed by the LDBC Graph Query Language Task Force
// ("G-CORE: A Core for Future Graph Query Languages", SIGMOD 2018).
//
// G-CORE is a closed language over Path Property Graphs: every query
// takes graphs as input and returns a graph, and paths are first-class
// citizens with identity, labels and properties. This package exposes
// the engine:
//
//	eng := gcore.NewEngine()
//	g := gcore.NewGraph("social_graph")
//	// … add nodes and edges, or load JSON …
//	_ = eng.RegisterGraph(g)
//	res, err := eng.Eval(`
//	    CONSTRUCT (n)
//	    MATCH (n:Person) ON social_graph
//	    WHERE n.employer = 'Acme'`)
//	// res.Graph is a new Path Property Graph.
//
// The full surface language of the paper is supported: MATCH with
// multi-graph ON, WHERE with implicit and explicit existential
// subqueries, OPTIONAL blocks, regular path expressions with
// reachability / (k-)shortest / ALL semantics, stored paths (@p),
// weighted shortest paths over PATH views, CONSTRUCT with grouping,
// GROUP, SET/REMOVE, WHEN, copy forms, graph UNION/INTERSECT/MINUS,
// GRAPH and GRAPH VIEW, and the §5 tabular extensions (SELECT, FROM,
// tables as graphs).
package gcore

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"gcore/internal/ast"
	"gcore/internal/catalog"
	"gcore/internal/core"
	"gcore/internal/gov"
	"gcore/internal/lexer"
	"gcore/internal/obs"
	"gcore/internal/parser"
	"gcore/internal/plancache"
	"gcore/internal/ppg"
	"gcore/internal/table"
	"gcore/internal/value"
)

// Re-exported data model types. A Graph is a Path Property Graph
// G = (N, E, P, ρ, δ, λ, σ): nodes, edges and *stored paths*, each
// with identity, labels and multi-valued properties.
type (
	// Graph is a Path Property Graph.
	Graph = ppg.Graph
	// Node is an element of N.
	Node = ppg.Node
	// Edge is an element of E with ρ(e) = (Src, Dst).
	Edge = ppg.Edge
	// Path is a stored path: an element of P with δ(p) alternating
	// nodes and adjacent edges.
	Path = ppg.Path
	// NodeID identifies a node.
	NodeID = ppg.NodeID
	// EdgeID identifies an edge.
	EdgeID = ppg.EdgeID
	// PathID identifies a stored path.
	PathID = ppg.PathID
	// Labels is a sorted label set (λ values).
	Labels = ppg.Labels
	// Properties maps property keys to finite value sets (σ values).
	Properties = ppg.Properties
	// Value is a literal, collection or graph-object reference.
	Value = value.Value
	// Table is a tabular result (SELECT) or input (FROM).
	Table = table.Table
	// Statement is a parsed G-CORE statement.
	Statement = ast.Statement
)

// NewGraph creates an empty Path Property Graph with the given name.
func NewGraph(name string) *Graph { return ppg.New(name) }

// NewLabels builds a normalised label set.
func NewLabels(names ...string) Labels { return ppg.NewLabels(names...) }

// NewProperties builds a property map; scalar values become singleton
// sets per the data model.
func NewProperties(kv map[string]Value) Properties { return ppg.NewProperties(kv) }

// NewTable creates an empty table with the given columns.
func NewTable(name string, cols ...string) *Table { return table.New(name, cols...) }

// ReadTableCSV loads a table from CSV (header row required).
func ReadTableCSV(name string, r io.Reader) (*Table, error) { return table.ReadCSV(name, r) }

// Value constructors.
var (
	// Null is the absent value.
	Null = value.Null
	// True and False are the boolean literals.
	True  = value.True
	False = value.False
)

// Int returns an integer literal.
func Int(i int64) Value { return value.Int(i) }

// Float returns a real-number literal.
func Float(f float64) Value { return value.Float(f) }

// Str returns a string literal.
func Str(s string) Value { return value.Str(s) }

// Bool returns a boolean literal.
func Bool(b bool) Value { return value.Bool(b) }

// Date parses a date literal in day/month/year form ("1/12/2014").
func Date(s string) (Value, error) { return value.ParseDate(s) }

// SetOf returns a set value (deduplicated, canonical order).
func SetOf(elems ...Value) Value { return value.Set(elems...) }

// ListOf returns a list value.
func ListOf(elems ...Value) Value { return value.List(elems...) }

// Result is the outcome of evaluating one statement: exactly one of
// Graph and Table is non-nil (Table only for the SELECT extension),
// except for EXPLAIN [ANALYZE] statements, whose rendered plan is in
// Plan with Graph and Table both nil.
type Result = core.Result

// Execution governance. Every evaluation entry point has a *Context
// variant; failures of governed evaluations are *QueryError values
// classified by Kind, so callers can distinguish a user mistake
// (KindEval) from an interrupted query (KindCanceled, KindTimeout), an
// exhausted resource budget (KindBudget) and an engine defect caught
// by panic containment (KindInternal). A failed statement never leaves
// partial state behind: catalog registrations (GRAPH VIEW) are
// committed only when the whole statement succeeds.
type (
	// QueryError is the typed error returned by governed evaluation.
	QueryError = gov.QueryError
	// ErrorKind classifies a QueryError.
	ErrorKind = gov.Kind
	// Limits bounds one statement's resource consumption; the zero
	// value means ungoverned. See Engine.SetLimits.
	Limits = gov.Limits
)

// The error kinds.
const (
	// KindEval is an ordinary evaluation error (bad query, missing
	// graph, type error).
	KindEval = gov.KindEval
	// KindCanceled reports that the evaluation's context was cancelled.
	KindCanceled = gov.KindCanceled
	// KindTimeout reports a deadline hit (Limits.Timeout or a caller
	// deadline on the context).
	KindTimeout = gov.KindTimeout
	// KindBudget reports an exhausted resource budget; the message
	// names the limit and the progress when it tripped.
	KindBudget = gov.KindBudget
	// KindInternal reports a panic contained inside the evaluator.
	KindInternal = gov.KindInternal
)

// AsQueryError unwraps err to the typed query error, if any.
func AsQueryError(err error) (*QueryError, bool) { return gov.AsQueryError(err) }

// Execution observability. Every statement is metered by a cheap span
// collector threaded through the evaluator's operators (scans, edge
// expansion, path kernels, joins, filters, CONSTRUCT/SELECT); the
// per-operator aggregates accumulate in the engine's lifetime Metrics,
// EXPLAIN ANALYZE renders one statement's spans onto its plan, and a
// TraceHandler observes every span as it opens and closes.
type (
	// TraceHandler receives operator span events during evaluation.
	// Implementations must be safe for concurrent use: parallel path
	// kernels emit spans from worker goroutines.
	TraceHandler = obs.TraceHandler
	// Span is one recorded operator execution.
	Span = obs.Span
	// Op identifies an operator kind.
	Op = obs.Op
	// Collector accumulates spans and counters across statements; see
	// WithCollector.
	Collector = obs.Collector
	// Stats is a collector's aggregate view (per-operator totals plus
	// cache and budget counters).
	Stats = obs.Stats
	// OpStat is one operator's aggregate inside Stats.
	OpStat = obs.OpStat
	// Metrics is the engine-lifetime metrics snapshot; it marshals to
	// JSON for export.
	Metrics = obs.Metrics
	// OpMetrics is one operator's totals inside Metrics.
	OpMetrics = obs.OpMetrics
)

// The operator kinds observed by spans.
const (
	// OpStatement spans a whole statement.
	OpStatement = obs.OpStatement
	// OpScan is a node scan.
	OpScan = obs.OpScan
	// OpExpand is an adjacency edge expansion.
	OpExpand = obs.OpExpand
	// OpPath is a chain path-search step (the kernel below emits its
	// own OpShortest/OpReach/OpAllPaths span).
	OpPath = obs.OpPath
	// OpFilter is a pushed-down predicate filter.
	OpFilter = obs.OpFilter
	// OpResidual is the residual WHERE filter.
	OpResidual = obs.OpResidual
	// OpJoin is the conjunct join fold.
	OpJoin = obs.OpJoin
	// OpLeftJoin is an OPTIONAL block's left outer join.
	OpLeftJoin = obs.OpLeftJoin
	// OpConstruct is the CONSTRUCT clause.
	OpConstruct = obs.OpConstruct
	// OpSelect is the SELECT clause.
	OpSelect = obs.OpSelect
	// OpShortest is a (k-)shortest path kernel run.
	OpShortest = obs.OpShortest
	// OpReach is a reachability kernel run.
	OpReach = obs.OpReach
	// OpAllPaths is an ALL-paths kernel run.
	OpAllPaths = obs.OpAllPaths
)

// NewCollector creates a collector for WithCollector: spans and
// counters from every statement accumulate in it until Reset.
func NewCollector() *Collector { return obs.NewCollector() }

// Engine is a G-CORE engine: a catalog of named graphs, views and
// tables plus the evaluator. Safe for concurrent use, with a
// read/write path split: statements are classified syntactically
// (queries, EXPLAIN and prepared reads vs GRAPH VIEW registrations and
// programmatic mutations), read-only statements execute concurrently
// under a shared read lock against the current catalog version and the
// graphs' generation-counted CSR snapshots, and mutating statements
// take the exclusive writer lock. Readers therefore always observe a
// consistent committed state — a write becomes visible atomically,
// between statements, never inside one.
type Engine struct {
	mu  sync.RWMutex
	cat *catalog.Catalog
	ev  *core.Evaluator

	// readStmts / writeStmts count statements dispatched down each
	// path; Metrics reports them (read_statements, write_statements).
	readStmts  atomic.Int64
	writeStmts atomic.Int64

	// pendingDefault is a WithDefaultGraph name not yet registered; it
	// is applied by RegisterGraph / LoadGraphJSON when the graph shows
	// up.
	pendingDefault string
}

// Option configures an Engine at construction; see NewEngine.
type Option func(*Engine)

// WithParallelism sets the worker count for intra-query parallelism.
// Zero (the default) uses runtime.GOMAXPROCS; one forces fully
// sequential evaluation. Results are identical for every setting.
func WithParallelism(n int) Option {
	return func(e *Engine) { e.ev.SetParallelism(n) }
}

// WithLimits installs per-statement resource limits (see Limits); a
// zero field means unlimited for that resource.
func WithLimits(l Limits) Option {
	return func(e *Engine) { e.ev.SetLimits(l) }
}

// WithDefaultGraph selects the graph used when MATCH omits ON. The
// name may refer to a graph registered later (RegisterGraph,
// LoadGraphJSON, a loaded catalog): the default takes effect as soon
// as the graph exists.
func WithDefaultGraph(name string) Option {
	return func(e *Engine) { e.pendingDefault = name }
}

// WithTraceHandler installs a span hook invoked at every operator
// start and end, including statement spans — a poor man's tracer with
// no tracing dependency. See also Engine.SetTraceHandler.
func WithTraceHandler(h TraceHandler) Option {
	return func(e *Engine) { e.ev.SetTraceHandler(h) }
}

// WithCollector attaches a caller-held Collector: every statement's
// spans and cache/budget counters accumulate in it (in addition to the
// engine's lifetime Metrics), so a caller can meter query batches
// without installing a TraceHandler.
func WithCollector(c *Collector) Option {
	return func(e *Engine) { e.ev.SetCollector(c) }
}

// WithPlanCacheSize bounds the engine's plan cache: n > 0 caps it at n
// entries (least-recently-used eviction), n == 0 keeps the default
// capacity, and n < 0 disables plan caching entirely — every statement
// then compiles from source, with parameters inlined as literals.
func WithPlanCacheSize(n int) Option {
	return func(e *Engine) { e.ev.SetPlanCacheCapacity(n) }
}

// NewEngine creates an empty engine, configured by the given options:
//
//	eng := gcore.NewEngine(
//	    gcore.WithParallelism(4),
//	    gcore.WithLimits(gcore.Limits{Timeout: time.Second}),
//	    gcore.WithDefaultGraph("social_graph"),
//	)
func NewEngine(opts ...Option) *Engine {
	cat := catalog.New()
	e := &Engine{cat: cat, ev: core.New(cat)}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// RegisterGraph adds a named graph to the catalog. The first
// registered graph becomes the default graph used when MATCH omits ON.
func (e *Engine) RegisterGraph(g *Graph) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := g.Validate(); err != nil {
		return fmt.Errorf("gcore: invalid graph: %w", err)
	}
	if err := e.cat.RegisterGraph(g); err != nil {
		return err
	}
	e.applyPendingDefault(g.Name())
	return nil
}

// applyPendingDefault promotes a WithDefaultGraph name to the actual
// default once the graph is registered. Callers hold e.mu.
func (e *Engine) applyPendingDefault(name string) {
	if e.pendingDefault != "" && e.pendingDefault == name {
		if err := e.cat.SetDefault(name); err == nil {
			e.pendingDefault = ""
		}
	}
}

// RegisterTable adds a named binding table (usable with FROM and as a
// node-graph via ON).
func (e *Engine) RegisterTable(t *Table) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cat.RegisterTable(t)
}

// Limits returns the currently installed per-statement limits.
func (e *Engine) Limits() Limits {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.ev.Limits()
}

// SetTraceHandler installs (or, with nil, detaches) the span hook on a
// live engine; WithTraceHandler is the construction-time equivalent.
func (e *Engine) SetTraceHandler(h TraceHandler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.ev.SetTraceHandler(h)
}

// SetCollector attaches (or, with nil, detaches) a caller-held
// collector on a live engine; WithCollector is the construction-time
// equivalent.
func (e *Engine) SetCollector(c *Collector) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.ev.SetCollector(c)
}

// Metrics returns a snapshot of the engine-lifetime execution metrics:
// statement and error counts, per-operator row and timing totals, NFA
// and CSR cache effectiveness, and consumed budgets. The snapshot is
// a plain value; it marshals to JSON for export.
func (e *Engine) Metrics() Metrics {
	e.mu.RLock()
	defer e.mu.RUnlock()
	m := e.ev.MetricsSnapshot()
	m.ReadStatements = e.readStmts.Load()
	m.WriteStatements = e.writeStmts.Load()
	return m
}

// PlanCacheStats reports the plan cache's lifetime effectiveness:
// hits, misses, evictions, total compile time spent on misses, and
// current occupancy. The zero value is returned when caching is
// disabled.
type PlanCacheStats = plancache.Stats

// PlanCacheEntry describes one live plan-cache entry.
type PlanCacheEntry = plancache.EntryInfo

// PlanCacheStats returns the plan cache's lifetime counters.
func (e *Engine) PlanCacheStats() PlanCacheStats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.ev.PlanCacheStats()
}

// PlanCacheEntries lists the live plan-cache entries, most recently
// used first.
func (e *Engine) PlanCacheEntries() []PlanCacheEntry {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.ev.PlanCacheEntries()
}

// Graph returns a registered graph (or materialised view) by name.
func (e *Engine) Graph(name string) (*Graph, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.cat.Graph(name)
}

// GraphNames lists the registered graph and view names, sorted.
func (e *Engine) GraphNames() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.cat.GraphNames()
}

// TableNames lists the registered table names, sorted.
func (e *Engine) TableNames() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.cat.TableNames()
}

// Parse parses one statement without evaluating it.
func Parse(src string) (*Statement, error) { return parser.Parse(src) }

// ReadOnly reports how a statement classifies under the engine's
// read/write path split: true means evaluating it cannot change engine
// state (it runs under the shared read lock), false means it registers
// a GRAPH VIEW — the one statement-level mutation — and takes the
// exclusive writer lock. Plain EXPLAIN never executes and is always
// read-only; EXPLAIN ANALYZE really runs and classifies by its body.
func ReadOnly(stmt *Statement) bool { return core.ReadOnly(stmt) }

// evalSrc is the engine's statement gateway: compile under the shared
// read lock, classify, then evaluate. Read-only statements stay under
// the read lock — any number of them run concurrently, each against
// the committed catalog version and graph generations it pinned at
// dispatch. Mutating statements release the read lock, take the writer
// lock and recompile (the catalog may have moved between the locks;
// the plan cache makes the recompile a probe).
func (e *Engine) evalSrc(ctx context.Context, src string, params map[string]Value, opts core.ExecOpts) (*Result, error) {
	e.mu.RLock()
	ex, err := e.ev.PrepareExec(src, params, opts)
	if err == nil && ex.ReadOnly() {
		defer e.mu.RUnlock()
		e.readStmts.Add(1)
		return e.ev.EvalExec(ctx, ex)
	}
	e.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	ex, err = e.ev.PrepareExec(src, params, opts)
	if err != nil {
		return nil, err
	}
	e.writeStmts.Add(1)
	return e.ev.EvalExec(ctx, ex)
}

// explainAnalyzeSrc is evalSrc for the string-returning EXPLAIN
// ANALYZE entry point: the statement really executes, so it is
// classified and locked exactly like evalSrc.
func (e *Engine) explainAnalyzeSrc(ctx context.Context, src string, params map[string]Value, opts core.ExecOpts) (string, error) {
	e.mu.RLock()
	ex, err := e.ev.PrepareExec(src, params, opts)
	if err == nil && ex.ReadOnly() {
		defer e.mu.RUnlock()
		e.readStmts.Add(1)
		return e.ev.ExplainAnalyzeExec(ctx, ex)
	}
	e.mu.RUnlock()
	if err != nil {
		return "", err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	ex, err = e.ev.PrepareExec(src, params, opts)
	if err != nil {
		return "", err
	}
	e.writeStmts.Add(1)
	return e.ev.ExplainAnalyzeExec(ctx, ex)
}

// explainSrc renders the static plan under the read lock (nothing
// ever executes, whatever the statement's body).
func (e *Engine) explainSrc(ctx context.Context, src string, opts core.ExecOpts) (string, error) {
	stmt, err := parser.Parse(src)
	if err != nil {
		return "", err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.ev.ExplainOptsContext(ctx, stmt, opts)
}

// evalScript evaluates a semicolon-separated script. A script whose
// statements are all read-only runs each under the read lock; a script
// containing any mutating statement runs entirely under the writer
// lock — later reads may depend on earlier writes, and no other
// session may observe (or destroy) its intermediate states.
func (e *Engine) evalScript(ctx context.Context, src string, opts core.ExecOpts) ([]*Result, error) {
	pieces, err := parser.SplitStatements(src)
	if err != nil {
		return nil, err
	}
	// Parse-validate every statement before evaluating any, so a
	// script with a syntax error runs nothing; each piece keeps its
	// original source positions. The parse here is throwaway — the
	// evaluation below goes through the plan cache, so repeated
	// scripts compile nothing at all. Classification happens on the
	// same pass.
	poss := make([]lexer.Pos, len(pieces))
	write := false
	for i, piece := range pieces {
		stmt, err := parser.Parse(piece)
		if err != nil {
			return nil, err
		}
		poss[i] = stmt.Pos()
		if !core.ReadOnly(stmt) {
			write = true
		}
	}
	out := make([]*Result, 0, len(pieces))
	if write {
		e.mu.Lock()
		defer e.mu.Unlock()
		for i, piece := range pieces {
			ex, err := e.ev.PrepareExec(piece, nil, opts)
			if err != nil {
				return out, fmt.Errorf("statement %d at %s: %w", i+1, poss[i], err)
			}
			e.writeStmts.Add(1)
			res, err := e.ev.EvalExec(ctx, ex)
			if err != nil {
				return out, fmt.Errorf("statement %d at %s: %w", i+1, poss[i], err)
			}
			out = append(out, res)
		}
		return out, nil
	}
	for i, piece := range pieces {
		res, err := e.evalSrc(ctx, piece, nil, opts)
		if err != nil {
			return out, fmt.Errorf("statement %d at %s: %w", i+1, poss[i], err)
		}
		out = append(out, res)
	}
	return out, nil
}

// EvalContext parses and evaluates one statement under ctx: cancelling
// the context (or hitting its deadline) aborts the evaluation at the
// next checkpoint — including inside parallel workers and path-search
// frontier loops — and returns a *QueryError of KindCanceled or
// KindTimeout. A cancelled statement leaves the engine unmodified.
// GRAPH VIEW definitions register their materialised graph in the
// engine's catalog.
func (e *Engine) EvalContext(ctx context.Context, src string) (*Result, error) {
	return e.evalSrc(ctx, src, nil, core.ExecOpts{})
}

// EvalStatementContext evaluates an already-parsed statement under
// ctx. AST-level evaluation bypasses the plan cache; prefer the
// source-level entry points for repeated traffic.
func (e *Engine) EvalStatementContext(ctx context.Context, stmt *Statement) (*Result, error) {
	if core.ReadOnly(stmt) {
		e.mu.RLock()
		defer e.mu.RUnlock()
		e.readStmts.Add(1)
		return e.ev.EvalStatementContext(ctx, stmt)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.writeStmts.Add(1)
	return e.ev.EvalStatementContext(ctx, stmt)
}

// ExplainContext renders the static evaluation plan of a statement
// under the caller's context: the MATCH join tree with
// predicate-pushdown placement, path-search strategies, OPTIONAL
// left-joins and CONSTRUCT grouping phases. Nothing is evaluated.
// Planning is governed like evaluation: a cancelled or expired context
// fails with a *QueryError of KindCanceled or KindTimeout. The same
// plan is available through EvalContext by prefixing the statement
// with EXPLAIN; the Result carries it in Plan.
func (e *Engine) ExplainContext(ctx context.Context, src string) (string, error) {
	return e.explainSrc(ctx, src, core.ExecOpts{})
}

// ExplainAnalyzeContext executes the statement under the caller's
// context and returns its plan annotated with observed per-operator
// row counts, timings and the index-vs-scan decisions actually taken,
// followed by statement totals (path-kernel frontier work, cache
// effectiveness, consumed budget). Like the EXPLAIN ANALYZE of SQL
// engines the statement really runs — GRAPH VIEW definitions it
// contains are committed on success, and such statements take the
// writer lock. The same output is available through EvalContext by
// prefixing a statement with EXPLAIN ANALYZE.
func (e *Engine) ExplainAnalyzeContext(ctx context.Context, src string) (string, error) {
	return e.explainAnalyzeSrc(ctx, src, nil, core.ExecOpts{})
}

// EvalScriptContext evaluates a script of semicolon-separated
// statements under ctx and returns one result per statement;
// evaluation stops at the first statement that fails (including by
// cancellation). A failing statement's error is prefixed with its
// 1-based index and source position ("statement 2 at 3:1: …"); the
// results of the statements before it are returned. A script
// containing any mutating statement executes atomically under the
// writer lock.
func (e *Engine) EvalScriptContext(ctx context.Context, src string) ([]*Result, error) {
	return e.evalScript(ctx, src, core.ExecOpts{})
}

// MutateGraph runs fn with exclusive writer access to the registered
// graph named name: no read statement runs while fn does, so readers
// never observe its intermediate states — the mutation becomes visible
// atomically when MutateGraph returns. This is the programmatic write
// path of the concurrent engine; on a DurableEngine every tracked
// mutation fn performs is logged as usual.
func (e *Engine) MutateGraph(name string, fn func(*Graph) error) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	g, ok := e.cat.Graph(name)
	if !ok {
		return fmt.Errorf("gcore: unknown graph %q", name)
	}
	e.writeStmts.Add(1)
	return fn(g)
}

// Prepare validates one statement for repeated execution. The source
// may reference $name parameters wherever a literal is allowed; each
// Eval supplies their values. Preparation compiles the statement into
// the plan cache (when enabled), so the first Eval already hits.
func (e *Engine) Prepare(src string) (*Prepared, error) {
	e.mu.RLock()
	err := e.ev.CheckSrc(src, core.ExecOpts{})
	e.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	return &Prepared{eng: e, src: src, names: parser.ParamNames(src)}, nil
}

// Prepared is a statement validated once by Prepare (on an Engine, a
// DurableEngine or a Session) and executed any number of times with
// per-execution parameter bindings. Safe for concurrent use: read-only
// executions run concurrently under the engine's read lock, mutating
// ones — a prepared statement can define a GRAPH VIEW — take the
// writer lock like any other write.
type Prepared struct {
	eng   *Engine
	src   string
	names []string

	// optsFn supplies per-execution overrides (Session.Prepare wires
	// the owning session's current default graph and limits); nil
	// means engine defaults.
	optsFn func() core.ExecOpts
	// after runs at the statement boundary after each execution
	// (durable engines drive automatic checkpoints here).
	after func()
}

// Text returns the prepared source text.
func (p *Prepared) Text() string { return p.src }

// Params lists the distinct $name parameters of the statement in
// first-use order.
func (p *Prepared) Params() []string { return append([]string(nil), p.names...) }

func (p *Prepared) opts() core.ExecOpts {
	if p.optsFn != nil {
		return p.optsFn()
	}
	return core.ExecOpts{}
}

func (p *Prepared) boundary() {
	if p.after != nil {
		p.after()
	}
}

// Eval executes the prepared statement with the given parameter
// bindings (nil for a statement without parameters). An execution
// that reaches an unbound parameter fails; supplying extra bindings
// is allowed.
func (p *Prepared) Eval(params map[string]Value) (*Result, error) {
	return p.EvalContext(context.Background(), params)
}

// EvalContext is Eval under the caller's context.
func (p *Prepared) EvalContext(ctx context.Context, params map[string]Value) (*Result, error) {
	res, err := p.eng.evalSrc(ctx, p.src, params, p.opts())
	p.boundary()
	return res, err
}

// ExplainAnalyzeContext executes the prepared statement with the given
// bindings and renders the annotated plan (see
// Engine.ExplainAnalyzeContext).
func (p *Prepared) ExplainAnalyzeContext(ctx context.Context, params map[string]Value) (string, error) {
	plan, err := p.eng.explainAnalyzeSrc(ctx, p.src, params, p.opts())
	p.boundary()
	return plan, err
}

// LoadGraphJSON reads a graph from its JSON interchange form and
// registers it under the name embedded in the document.
func (e *Engine) LoadGraphJSON(r io.Reader) (*Graph, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	g, err := ppg.ReadJSON(r, e.cat.IDs())
	if err != nil {
		return nil, err
	}
	if err := e.cat.RegisterGraph(g); err != nil {
		return nil, err
	}
	e.applyPendingDefault(g.Name())
	return g, nil
}

// NextNodeID, NextEdgeID and NextPathID hand out engine-unique
// identifiers for programmatic graph building.
func (e *Engine) NextNodeID() NodeID {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cat.IDs().NextNode()
}

// NextEdgeID hands out a fresh edge identifier.
func (e *Engine) NextEdgeID() EdgeID {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cat.IDs().NextEdge()
}

// NextPathID hands out a fresh path identifier.
func (e *Engine) NextPathID() PathID {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cat.IDs().NextPath()
}

// GraphUnion, GraphIntersect and GraphMinus are the §A.5 set
// operations on Path Property Graphs, exposed for programmatic use;
// queries reach them through UNION / INTERSECT / MINUS.
func GraphUnion(name string, a, b *Graph) *Graph { return ppg.Union(name, a, b) }

// GraphIntersect computes a ∩ b.
func GraphIntersect(name string, a, b *Graph) *Graph { return ppg.Intersect(name, a, b) }

// GraphMinus computes a ∖ b (no dangling edges).
func GraphMinus(name string, a, b *Graph) *Graph { return ppg.Minus(name, a, b) }
