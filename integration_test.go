package gcore_test

import (
	"os"
	"testing"

	"gcore"
	"gcore/internal/repro"
	"gcore/internal/snb"
	"gcore/internal/value"
)

// TestGuidedTourScript runs the complete §3 guided tour as one script
// (testdata/guided_tour.gcore) through the public API and spot-checks
// the narrative's key outcomes end-to-end: the views accumulate in
// the catalog and the final analytics lands on John→Peter with
// score 2.
func TestGuidedTourScript(t *testing.T) {
	data, err := os.ReadFile("testdata/guided_tour.gcore")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := repro.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	results, err := eng.EvalScript(string(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 14 {
		t.Fatalf("statements evaluated = %d, want 14", len(results))
	}
	// Every graph result satisfies the model invariants.
	for i, res := range results {
		if res.Graph != nil {
			if err := res.Graph.Validate(); err != nil {
				t.Errorf("statement %d: %v", i+1, err)
			}
		}
	}
	// The views persist in the catalog.
	for _, view := range []string{"social_graph1", "social_graph2"} {
		if _, ok := eng.Graph(view); !ok {
			t.Errorf("view %s not registered", view)
		}
	}
	g2, _ := eng.Graph("social_graph2")
	if g2.NumPaths() != 2 {
		t.Errorf("social_graph2 stored paths = %d, want 2", g2.NumPaths())
	}
	// Statement 11 (index 10) is the wagnerFriend analytics.
	analytics := results[10].Graph
	found := false
	for _, id := range analytics.EdgeIDs() {
		e, _ := analytics.Edge(id)
		if e.Labels.Has("wagnerFriend") {
			found = true
			if e.Src != snb.John || e.Dst != snb.Peter {
				t.Errorf("wagnerFriend edge = %d→%d", e.Src, e.Dst)
			}
			if !value.Equal(e.Props.Get("score").Scalarize(), value.Int(2)) {
				t.Errorf("score = %v", e.Props.Get("score"))
			}
		}
	}
	if !found {
		t.Error("wagnerFriend edge missing")
	}
	// Statement 12 (index 11) is the friendName table.
	tbl := results[11].Table
	if tbl == nil || tbl.Len() != 5 {
		t.Fatalf("friendName table = %v", tbl)
	}
	if v, _ := tbl.Rows[0][0].Scalarize().AsString(); v != "Doe, John" {
		t.Errorf("first friend = %q", v)
	}
}

// TestClosureChain exercises deep composition: the output of each
// query feeds the next via local GRAPH bindings — five levels deep.
func TestClosureChain(t *testing.T) {
	eng, err := repro.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Eval(`
GRAPH g1 AS (CONSTRUCT (n) MATCH (n:Person))
GRAPH g2 AS (CONSTRUCT (n) MATCH (n) ON g1 WHERE size(n.employer) > 0)
GRAPH g3 AS (CONSTRUCT (n) MATCH (n) ON g2 WHERE NOT 'Acme' IN n.employer)
GRAPH g4 AS (CONSTRUCT (=n :Leaf) MATCH (n) ON g3)
SELECT n.firstName AS name MATCH (n:Leaf) ON g4 ORDER BY name`)
	if err != nil {
		t.Fatal(err)
	}
	// Persons with an employer that is not Acme: Celine and Frank.
	if res.Table.Len() != 2 {
		t.Fatalf("rows = %d\n%s", res.Table.Len(), res.Table)
	}
	if v, _ := res.Table.Rows[0][0].Scalarize().AsString(); v != "Celine" {
		t.Errorf("first = %q", v)
	}
}

// TestScaleIntegration runs a representative query mix over a larger
// generated graph end-to-end.
func TestScaleIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	eng := gcore.NewEngine()
	social, companies := eng.GenerateSNB(gcore.SNBConfig{Persons: 300, Seed: 5})
	if err := eng.RegisterGraph(social); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterGraph(companies); err != nil {
		t.Fatal(err)
	}
	// View + weighted search + stored-path analytics on scale.
	if _, err := eng.Eval(`GRAPH VIEW wv AS (
CONSTRUCT (n)-[e]->(m) SET e.w := 1 + COUNT(*)
MATCH (n:Person)-[e:knows]->(m:Person))`); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Eval(`PATH wk = (x)-[e:knows]->(y) COST 1 / e.w
CONSTRUCT (n)-/@p:cheap {c := c}/->(m)
MATCH (n:Person)-/p<~wk*> COST c/->(m:Person) ON wv
WHERE n.anchor = TRUE`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.NumPaths() != 300 {
		t.Fatalf("stored paths = %d, want 300 (one per reachable person)", res.Graph.NumPaths())
	}
	if err := res.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every stored path's cost property is positive (except the empty
	// path to the anchor itself, cost 0).
	zero := 0
	for _, pid := range res.Graph.PathIDs() {
		p, _ := res.Graph.Path(pid)
		c, _ := p.Props.Get("c").Scalarize().AsFloat()
		if c == 0 {
			zero++
		}
		if c < 0 {
			t.Errorf("negative cost %v", c)
		}
	}
	if zero != 1 {
		t.Errorf("zero-cost paths = %d, want 1 (the anchor's empty path)", zero)
	}
}

// TestSoakLargeGraph runs the full pipeline — generation, schema
// check, views, weighted stored paths, stored-path analytics, save and
// reload — on a 1000-person graph.
func TestSoakLargeGraph(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	eng := gcore.NewEngine()
	social, companies := eng.GenerateSNB(gcore.SNBConfig{Persons: 1000, Seed: 99})
	if err := snb.CheckSchema(social); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterGraph(social); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterGraph(companies); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Eval(`GRAPH VIEW weighted AS (
CONSTRUCT (n)-[e]->(m) SET e.w := 1 + COUNT(*)
MATCH (n:Person)-[e:knows]->(m:Person))`); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Eval(`PATH wk = (x)-[e:knows]->(y) COST 1 / e.w
CONSTRUCT (n)-/@p:cheap/->(m)
MATCH (n:Person)-/p<~wk*>/->(m:Person) ON weighted
WHERE n.anchor = TRUE`)
	if err != nil {
		t.Fatal(err)
	}
	g := res.Graph
	if g.NumPaths() != 1000 {
		t.Fatalf("stored paths = %d", g.NumPaths())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	g.SetName("cheap_paths")
	if err := eng.RegisterGraph(g); err != nil {
		t.Fatal(err)
	}
	// Analytics over a thousand stored paths.
	res, err = eng.Eval(`SELECT COUNT(*) AS n, MAX(length(p)) AS longest
MATCH ()-/@p:cheap/->() ON cheap_paths`)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Table.Rows[0][0].AsInt(); v != 1000 {
		t.Fatalf("path count = %d", v)
	}
	// Round-trip the whole catalog.
	dir := t.TempDir()
	if err := eng.SaveCatalog(dir); err != nil {
		t.Fatal(err)
	}
	eng2 := gcore.NewEngine()
	if err := eng2.LoadCatalog(dir); err != nil {
		t.Fatal(err)
	}
	res, err = eng2.Eval(`SELECT COUNT(*) AS n MATCH ()-/@p:cheap/->() ON cheap_paths`)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Table.Rows[0][0].AsInt(); v != 1000 {
		t.Fatalf("paths after reload = %d", v)
	}
}

// TestDeterministicEvaluation: two engines built identically produce
// byte-identical results for the whole guided tour — identifiers,
// iteration orders and path tie-breaking are all deterministic.
func TestDeterministicEvaluation(t *testing.T) {
	data, err := os.ReadFile("testdata/guided_tour.gcore")
	if err != nil {
		t.Fatal(err)
	}
	render := func() string {
		eng, err := repro.NewEngine()
		if err != nil {
			t.Fatal(err)
		}
		results, err := eng.EvalScript(string(data))
		if err != nil {
			t.Fatal(err)
		}
		out := ""
		for _, res := range results {
			if res.Graph != nil {
				j, err := res.Graph.MarshalJSON()
				if err != nil {
					t.Fatal(err)
				}
				out += string(j) + "\n"
			}
			if res.Table != nil {
				out += res.Table.String() + "\n"
			}
		}
		return out
	}
	a, b := render(), render()
	if a != b {
		t.Error("evaluation is not deterministic across identical engines")
	}
	if len(a) == 0 {
		t.Error("empty rendering")
	}
}
