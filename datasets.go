package gcore

import (
	"gcore/internal/ppg"
	"gcore/internal/snb"
)

// Bundled datasets: the paper's worked examples and a scalable
// synthetic generator with the (simplified) LDBC SNB schema of
// Figure 3. See internal/snb for the exact construction and the
// substitution notes in DESIGN.md.

// SampleSocialGraph returns the guided-tour instance of Figure 4
// (social_graph): five persons, their knows/isLocatedIn/hasInterest
// edges, and the Post/Comment message threads that drive the
// nr_messages view of Figure 5.
func SampleSocialGraph() *Graph { return snb.SocialGraph() }

// SampleCompanyGraph returns the company_graph of the data
// integration examples: unconnected Company nodes Acme, HAL, CWI, MIT.
func SampleCompanyGraph() *Graph { return snb.CompanyGraph() }

// SampleExampleGraph returns the Path Property Graph of Figure 2 /
// Example 2.2, including the stored path 301 (:toWagner, trust 0.95).
func SampleExampleGraph() *Graph { return snb.Fig2Graph() }

// SampleOrdersTable returns the orders binding table of the §5
// tabular-extension examples.
func SampleOrdersTable() *Table {
	cols, rows := snb.OrdersRows()
	t := NewTable("orders", cols...)
	for _, r := range rows {
		if err := t.AddRow(r...); err != nil {
			panic("gcore: building orders table: " + err.Error())
		}
	}
	return t
}

// SNBConfig parameterises the synthetic SNB-schema generator.
type SNBConfig = snb.Config

// GenerateSNB builds a deterministic social graph (and companion
// company graph) with the Figure 3 schema at the given scale, using
// the engine's identifier generator so the result can be registered
// alongside other graphs.
func (e *Engine) GenerateSNB(cfg SNBConfig) (social, companies *Graph) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ds := snb.Generate(cfg, e.cat.IDs())
	return ds.Social, ds.Companies
}

// GenerateSNB builds a standalone dataset with a private identifier
// space starting at 1.
func GenerateSNB(cfg SNBConfig) (social, companies *Graph) {
	ds := snb.Generate(cfg, ppg.NewIDGen(1))
	return ds.Social, ds.Companies
}
