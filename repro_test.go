package gcore_test

import (
	"testing"

	"gcore/internal/repro"
)

// TestReproPaper regenerates every figure and table of the paper and
// asserts the engine's output matches what the paper states. The
// per-check paper-vs-measured record lives in EXPERIMENTS.md; the
// same checks drive cmd/gcore-repro.
func TestReproPaper(t *testing.T) {
	checks := repro.RunAll()
	if len(checks) < 25 {
		t.Fatalf("only %d checks ran; the suite must cover Figures 1–5, the guided tour, Appendix A and Table 1", len(checks))
	}
	for _, c := range checks {
		name := c.ID + "/" + c.Name
		t.Run(name, func(t *testing.T) {
			if !c.OK() {
				t.Errorf("paper: %s\nmeasured: %s\nerror: %v", c.Paper, c.Measured, c.Err)
			}
		})
	}
}

// TestReproComplexityShape verifies the qualitative complexity claims
// of §4 on small instances: walk-based evaluation scales smoothly
// while the simple-path baseline explodes combinatorially, and the
// ALL-paths projection stays linear in the graph.
func TestReproComplexityShape(t *testing.T) {
	pts, err := repro.AblationSimplePath([]int{3, 5, 7}, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// Simple-path work explodes: visits(7) / visits(3) must exceed the
	// size ratio (49/9 ≈ 5.4) by a wide margin.
	if pts[2].SimpleVisits < pts[0].SimpleVisits*20 {
		t.Errorf("simple-path visits grew too slowly: %d → %d (not NP-hard-shaped)",
			pts[0].SimpleVisits, pts[2].SimpleVisits)
	}
	// Projection size is linear: exactly the grid's nodes and edges.
	for _, p := range pts {
		w := p.Size
		if p.ProjNodes != w*w || p.ProjEdges != 2*w*(w-1) {
			t.Errorf("width %d: projection %d/%d, want %d/%d (linear in the grid)",
				w, p.ProjNodes, p.ProjEdges, w*w, 2*w*(w-1))
		}
		if !p.WalkOK {
			t.Errorf("width %d: walk search missed the shortest corner path", w)
		}
	}
}
