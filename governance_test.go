package gcore_test

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"gcore"
	"gcore/internal/core"
	"gcore/internal/faultinject"
	"gcore/internal/parser"
	"gcore/internal/rpq"
)

// Governance tests: context cancellation, timeouts, resource budgets
// and panic containment, driven through the public EvalContext API and
// the fault-injection harness. The suite asserts three invariants for
// every governed failure: the error is a typed *QueryError with the
// right Kind, no goroutines leak, and the engine's registered graphs
// are untouched (generation counters unchanged, no partial views).

// The SNB queries exercising each path kernel: k-shortest with a
// stored path, plain reachability, and the ALL-paths projection sweep
// (the heaviest kernel — multi-source product-automaton search).
const (
	snbShortestQuery = `CONSTRUCT (n)-/@p:reach/->(m)
MATCH (n:Person)-/p<:knows*>/->(m:Person) WHERE n.anchor = TRUE`
	snbReachQuery = `CONSTRUCT (m) MATCH (n:Person)-/<:knows*>/->(m:Person) WHERE n.anchor = TRUE`
	snbAllQuery   = `CONSTRUCT (n)-/p/->(m)
MATCH (n:Person)-/ALL p<:knows*>/->(m:Person) WHERE n.anchor = TRUE`
)

// waitForGoroutines waits for the goroutine count to settle back to
// the pre-test level, failing the test if workers are still alive
// after a generous grace period.
func waitForGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// graphGenerations snapshots the generation counter of every
// registered graph, for asserting that failed statements mutate
// nothing.
func graphGenerations(eng *gcore.Engine) map[string]uint64 {
	gens := map[string]uint64{}
	for _, name := range eng.GraphNames() {
		g, _ := eng.Graph(name)
		gens[name] = g.Generation()
	}
	return gens
}

func assertGenerationsUnchanged(t *testing.T, eng *gcore.Engine, want map[string]uint64) {
	t.Helper()
	got := graphGenerations(eng)
	if len(got) != len(want) {
		t.Fatalf("registered graphs changed on a failed statement: %d before, %d after", len(want), len(got))
	}
	for name, gen := range want {
		if got[name] != gen {
			t.Errorf("graph %s mutated by a failed statement: generation %d -> %d", name, gen, got[name])
		}
	}
}

func TestEvalContextCanceledBeforeStart(t *testing.T) {
	eng := newEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := eng.EvalContext(ctx, `CONSTRUCT (n) MATCH (n:Person)`)
	qe, ok := gcore.AsQueryError(err)
	if !ok || qe.Kind != gcore.KindCanceled {
		t.Fatalf("err = %v, want KindCanceled QueryError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false for %v", err)
	}
}

// TestEvalContextCancelMidFlight cancels the context from inside the
// CSR ALL-paths sweep of a multi-source SNB search and checks that
// the cancellation surfaces as KindCanceled and that every worker
// goroutine exits.
func TestEvalContextCancelMidFlight(t *testing.T) {
	setup, _ := snbQueries()
	eng := setup(t)
	eng.SetParallelism(4)
	gens := graphGenerations(eng)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	faultinject.Arm()
	defer faultinject.Disarm()
	faultinject.Set(faultinject.SiteRPQCSRAll, faultinject.Action{Fn: cancel})

	_, err := eng.EvalContext(ctx, snbAllQuery)
	qe, ok := gcore.AsQueryError(err)
	if !ok || qe.Kind != gcore.KindCanceled {
		t.Fatalf("err = %v, want KindCanceled QueryError", err)
	}
	if faultinject.Hits(faultinject.SiteRPQCSRAll) == 0 {
		t.Fatal("the ALL-paths sweep probe was never reached")
	}
	waitForGoroutines(t, before)
	assertGenerationsUnchanged(t, eng, gens)
}

func TestEvalTimeout(t *testing.T) {
	setup, _ := snbQueries()
	eng := setup(t)
	limits := eng.Limits()
	limits.Timeout = time.Nanosecond
	eng.SetLimits(limits)
	_, err := eng.Eval(snbAllQuery)
	qe, ok := gcore.AsQueryError(err)
	if !ok || qe.Kind != gcore.KindTimeout {
		t.Fatalf("err = %v, want KindTimeout QueryError", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("errors.Is(err, context.DeadlineExceeded) = false for %v", err)
	}
	if !strings.Contains(err.Error(), "timeout") {
		t.Errorf("timeout error does not name the timeout: %v", err)
	}
}

func TestMaxPathFrontierBudget(t *testing.T) {
	setup, _ := snbQueries()
	for _, legacy := range []bool{false, true} {
		core.DisableCSR = legacy
		rpq.UseLegacy = legacy
		eng := setup(t)
		eng.SetLimits(gcore.Limits{MaxPathFrontier: 1})
		_, err := eng.Eval(snbAllQuery)
		core.DisableCSR = false
		rpq.UseLegacy = false
		qe, ok := gcore.AsQueryError(err)
		if !ok || qe.Kind != gcore.KindBudget {
			t.Fatalf("legacy=%v: err = %v, want KindBudget QueryError", legacy, err)
		}
		if !strings.Contains(err.Error(), "frontier limit") {
			t.Errorf("legacy=%v: budget error does not name the frontier limit: %v", legacy, err)
		}
	}
}

func TestMaxResultElementsBudget(t *testing.T) {
	setup, _ := snbQueries()
	eng := setup(t)
	eng.SetLimits(gcore.Limits{MaxResultElements: 5})
	_, err := eng.Eval(`CONSTRUCT (n) MATCH (n:Person)`)
	qe, ok := gcore.AsQueryError(err)
	if !ok || qe.Kind != gcore.KindBudget {
		t.Fatalf("err = %v, want KindBudget QueryError", err)
	}
	if !strings.Contains(err.Error(), "result limit") {
		t.Errorf("budget error does not name the result limit: %v", err)
	}
}

// TestMaxBindingsKind: the pre-existing binding budget now surfaces as
// a typed KindBudget error.
func TestMaxBindingsKind(t *testing.T) {
	eng := newEngine(t)
	eng.SetMaxBindings(100)
	_, err := eng.Eval(`CONSTRUCT (a) MATCH (a), (b), (c), (d), (e)`)
	qe, ok := gcore.AsQueryError(err)
	if !ok || qe.Kind != gcore.KindBudget {
		t.Fatalf("err = %v, want KindBudget QueryError", err)
	}
	if !strings.Contains(err.Error(), "binding limit") {
		t.Errorf("budget error does not name the binding limit: %v", err)
	}
}

// TestPanicContainment injects a panic at the node-scan checkpoint
// and checks that it is contained as a KindInternal error carrying
// the statement text, with the engine fully usable afterwards.
func TestPanicContainment(t *testing.T) {
	eng := newEngine(t)
	gens := graphGenerations(eng)

	faultinject.Arm()
	faultinject.Set(faultinject.SiteCoreScan, faultinject.Action{Panic: true})
	_, err := eng.Eval(`CONSTRUCT (n) MATCH (n:Person)`)
	faultinject.Disarm()

	qe, ok := gcore.AsQueryError(err)
	if !ok || qe.Kind != gcore.KindInternal {
		t.Fatalf("err = %v, want KindInternal QueryError", err)
	}
	if !strings.Contains(err.Error(), "panic during evaluation") {
		t.Errorf("contained panic does not identify itself: %v", err)
	}
	if !strings.Contains(qe.Stmt, "MATCH") {
		t.Errorf("contained panic does not carry the statement text: %q", qe.Stmt)
	}
	assertGenerationsUnchanged(t, eng, gens)

	// The engine survives: the same query evaluates normally.
	res, err := eng.Eval(`CONSTRUCT (n) MATCH (n:Person)`)
	if err != nil || res.Graph == nil {
		t.Fatalf("engine unusable after contained panic: %v, %v", res, err)
	}
}

// TestFailedViewNotRegistered: a GRAPH VIEW statement whose body fails
// mid-evaluation must not leave a partially built view in the catalog.
func TestFailedViewNotRegistered(t *testing.T) {
	eng := newEngine(t)
	gens := graphGenerations(eng)

	faultinject.Arm()
	faultinject.Set(faultinject.SiteCoreConstruct, faultinject.Action{Err: errors.New("injected view failure")})
	_, err := eng.Eval(`GRAPH VIEW doomed AS (CONSTRUCT (n) MATCH (n:Person))`)
	faultinject.Disarm()

	if err == nil || !strings.Contains(err.Error(), "injected view failure") {
		t.Fatalf("err = %v, want the injected failure", err)
	}
	if _, ok := eng.Graph("doomed"); ok {
		t.Fatal("failed GRAPH VIEW statement registered a partial view")
	}
	if contains(eng.GraphNames(), "doomed") {
		t.Fatal("failed view appears in GraphNames")
	}
	assertGenerationsUnchanged(t, eng, gens)
}

// TestFaultInjectionAllSites drives every declared probe site with a
// panic, an injected error and a mid-checkpoint cancellation, toggling
// the ablation knobs so both the legacy and the CSR kernels are
// reached. The scenario table is checked against AllSites so a new
// checkpoint cannot be added without fault coverage.
func TestFaultInjectionAllSites(t *testing.T) {
	setup, _ := snbQueries()
	type scenario struct {
		legacy  bool
		workers int
		query   string
	}
	scenarios := map[string]scenario{
		faultinject.SiteEvalStart:     {false, 1, `CONSTRUCT (n) MATCH (n:Person)`},
		faultinject.SiteCoreScan:      {false, 1, `CONSTRUCT (n) MATCH (n:Person)`},
		faultinject.SiteCoreExtend:    {false, 1, `CONSTRUCT (n) MATCH (n:Person)-[e:knows]->(m:Person)`},
		faultinject.SiteCoreFilter:    {false, 1, `SELECT n.firstName AS a MATCH (n:Person)-[e:knows]->(m:Person) WHERE n.firstName < m.firstName`},
		faultinject.SiteCorePath:      {false, 1, snbShortestQuery},
		faultinject.SiteCoreConstruct: {false, 1, `CONSTRUCT (n) MATCH (n:Person)`},
		// par.chunk needs a parallel-eligible fan-out: >1 worker and at
		// least 64 rows (the sequential fast path has no chunk probe).
		faultinject.SiteParChunk:       {false, 4, `CONSTRUCT (n) MATCH (n)`},
		faultinject.SiteRPQShortest:    {true, 1, snbShortestQuery},
		faultinject.SiteRPQReach:       {true, 1, snbReachQuery},
		faultinject.SiteRPQAll:         {true, 1, snbAllQuery},
		faultinject.SiteRPQCSRShortest: {false, 1, snbShortestQuery},
		faultinject.SiteRPQCSRReach:    {false, 1, snbReachQuery},
		faultinject.SiteRPQCSRAll:      {false, 1, snbAllQuery},
	}
	for _, site := range faultinject.AllSites() {
		if _, ok := scenarios[site]; !ok {
			t.Fatalf("no fault scenario for probe site %s — every checkpoint must have fault coverage", site)
		}
	}

	injected := errors.New("injected checkpoint failure")
	for _, site := range faultinject.AllSites() {
		sc := scenarios[site]
		for _, mode := range []string{"panic", "error", "cancel"} {
			t.Run(site+"/"+mode, func(t *testing.T) {
				core.DisableCSR = sc.legacy
				rpq.UseLegacy = sc.legacy
				defer func() {
					core.DisableCSR = false
					rpq.UseLegacy = false
				}()
				eng := setup(t)
				eng.SetParallelism(sc.workers)
				gens := graphGenerations(eng)
				before := runtime.NumGoroutine()

				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				faultinject.Arm()
				defer faultinject.Disarm()
				switch mode {
				case "panic":
					faultinject.Set(site, faultinject.Action{Panic: true})
				case "error":
					faultinject.Set(site, faultinject.Action{Err: injected})
				case "cancel":
					faultinject.Set(site, faultinject.Action{Fn: cancel})
				}

				_, err := eng.EvalContext(ctx, sc.query)
				if err == nil {
					t.Fatalf("site %s %s: evaluation succeeded, want failure", site, mode)
				}
				if faultinject.Hits(site) == 0 {
					t.Fatalf("site %s: probe never reached by %q", site, sc.query)
				}
				switch mode {
				case "panic":
					qe, ok := gcore.AsQueryError(err)
					if !ok || qe.Kind != gcore.KindInternal {
						t.Fatalf("site %s: err = %v, want KindInternal", site, err)
					}
				case "error":
					if !strings.Contains(err.Error(), "injected checkpoint failure") {
						t.Fatalf("site %s: injected error lost: %v", site, err)
					}
				case "cancel":
					qe, ok := gcore.AsQueryError(err)
					if !ok || qe.Kind != gcore.KindCanceled {
						t.Fatalf("site %s: err = %v, want KindCanceled", site, err)
					}
				}
				waitForGoroutines(t, before)
				assertGenerationsUnchanged(t, eng, gens)
			})
		}
	}
}

// TestDifferentialCanceledContext: every differential-suite statement
// evaluated under an already-cancelled context fails with KindCanceled
// and mutates nothing — no new graphs, no generation bumps.
func TestDifferentialCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	setup, queries := snbQueries()
	snbEng := setup(t)
	checkAll := func(t *testing.T, eng *gcore.Engine, queries []string) {
		t.Helper()
		gens := graphGenerations(eng)
		names := eng.GraphNames()
		for i, q := range queries {
			_, err := eng.EvalContext(ctx, q)
			qe, ok := gcore.AsQueryError(err)
			if !ok || qe.Kind != gcore.KindCanceled {
				t.Fatalf("query %d: err = %v, want KindCanceled", i, err)
			}
		}
		after := eng.GraphNames()
		if len(after) != len(names) {
			t.Fatalf("canceled statements changed the catalog: %v -> %v", names, after)
		}
		assertGenerationsUnchanged(t, eng, gens)
	}
	t.Run("snb", func(t *testing.T) { checkAll(t, snbEng, queries) })

	paper := make([]string, 0, len(parser.PaperQueries))
	for _, q := range parser.PaperQueries {
		paper = append(paper, q)
	}
	t.Run("paper", func(t *testing.T) { checkAll(t, tourEngine(t), paper) })
}

// TestDifferentialGenerousLimits: generous-but-finite limits are
// observationally free — every differential query renders
// byte-identically to the ungoverned engine.
func TestDifferentialGenerousLimits(t *testing.T) {
	generous := gcore.Limits{
		MaxBindings:       1 << 30,
		MaxPathFrontier:   1 << 30,
		MaxResultElements: 1 << 30,
		Timeout:           time.Hour,
	}
	setup, queries := snbQueries()
	for i, query := range queries {
		plain := setup(t)
		want := renderResult(plain.Eval(query))

		governed := setup(t)
		governed.SetLimits(generous)
		got := renderResult(governed.Eval(query))
		if got != want {
			t.Errorf("query %d: governed result diverged from ungoverned\ngoverned:\n%s\nungoverned:\n%s", i, got, want)
		}
	}
}

// evalWithLimits renders one query under the given kernel/limits
// configuration, for budget-parity comparisons.
func evalWithLimits(t *testing.T, setup func(t *testing.T) *gcore.Engine, query string, legacy bool, workers int, limits gcore.Limits) string {
	t.Helper()
	core.DisableCSR = legacy
	rpq.UseLegacy = legacy
	defer func() {
		core.DisableCSR = false
		rpq.UseLegacy = false
	}()
	eng := setup(t)
	eng.SetParallelism(workers)
	eng.SetLimits(limits)
	return renderResult(eng.Eval(query))
}

// TestBindingsBudgetParityCSRLegacy: the CSR and legacy scan/extend
// kernels trip the bindings budget at the same logical point — the
// rendered error (including the reached row count) is identical under
// both kernels, sequentially and in parallel.
func TestBindingsBudgetParityCSRLegacy(t *testing.T) {
	setup, _ := snbQueries()
	cases := []struct {
		name  string
		query string
		limit int
	}{
		// Trips inside the node-scan merge (the scan alone overflows).
		{"scan", `CONSTRUCT (n) MATCH (n)`, 10},
		// Trips inside the edge-expansion merge (the Person scan fits,
		// the knows expansion does not).
		{"extend", `CONSTRUCT (n) MATCH (n:Person)-[e:knows]->(m)`, 61},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			limits := gcore.Limits{MaxBindings: tc.limit}
			for _, workers := range []int{1, 0} {
				want := evalWithLimits(t, setup, tc.query, true, workers, limits)
				got := evalWithLimits(t, setup, tc.query, false, workers, limits)
				if !strings.Contains(want, "binding limit") {
					t.Fatalf("workers=%d: legacy run did not trip the budget: %s", workers, want)
				}
				if got != want {
					t.Fatalf("workers=%d: CSR budget error diverged from legacy\ncsr:\n%s\nlegacy:\n%s", workers, got, want)
				}
			}
		})
	}
}

// TestEvalScriptErrorPosition: script errors locate the failing
// statement by 1-based index and source position.
func TestEvalScriptErrorPosition(t *testing.T) {
	eng := newEngine(t)
	_, err := eng.EvalScript(`CONSTRUCT (n) MATCH (n:Person);
CONSTRUCT (x) MATCH (x) ON missing_graph`)
	if err == nil {
		t.Fatal("script with an unknown graph succeeded")
	}
	if !strings.Contains(err.Error(), "statement 2 at ") {
		t.Errorf("script error does not locate the statement: %v", err)
	}
}
