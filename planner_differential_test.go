package gcore_test

import (
	"fmt"
	"sort"
	"testing"

	"gcore"
	"gcore/internal/core"
	"gcore/internal/parser"
)

// Differential tests between the selectivity-driven MATCH planner
// (the default) and the textual evaluation order (core.DisableReorder).
// Chain reversal and conjunct-join reordering restore the forward
// emission order after evaluating in the cheaper direction, so every
// query must render byte-identically with the planner on and off —
// the planner is a pure performance optimisation.

// evalPlanned runs one query on a fresh engine built by setup, with
// the planner on or off and the given worker count.
func evalPlanned(t *testing.T, setup func(t *testing.T) *gcore.Engine, query string, textual bool, workers int) string {
	t.Helper()
	core.DisableReorder = textual
	defer func() { core.DisableReorder = false }()
	eng := setup(t)
	eng.SetParallelism(workers)
	res, err := eng.Eval(query)
	return renderResult(res, err)
}

// TestPlannerDifferentialPaper: every paper example query renders
// byte-identically with and without the planner, sequentially and in
// parallel.
func TestPlannerDifferentialPaper(t *testing.T) {
	keys := make([]string, 0, len(parser.PaperQueries))
	for k := range parser.PaperQueries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		query := parser.PaperQueries[key]
		t.Run(key, func(t *testing.T) {
			for _, workers := range []int{1, 0} {
				want := evalPlanned(t, tourEngine, query, true, workers)
				got := evalPlanned(t, tourEngine, query, false, workers)
				if got != want {
					t.Fatalf("workers=%d: planned result diverged from textual\nplanned:\n%s\ntextual:\n%s", workers, got, want)
				}
			}
		})
	}
}

// TestPlannerDifferentialSNB: the same byte-identity on the synthetic
// SNB toy graph, plus queries specifically shaped to trigger chain
// reversal (rare label on the right end) and conjunct reordering
// (cheap pattern last in textual order).
func TestPlannerDifferentialSNB(t *testing.T) {
	setup, queries := snbQueries()
	queries = append(queries,
		`SELECT n.firstName AS a, c.name AS b
MATCH (n:Person)-[:isLocatedIn]->(c:City)`,
		`SELECT n.firstName AS a
MATCH (n:Person)-[:knows]->(m:Person)-[:isLocatedIn]->(c:City)`,
		`SELECT n.firstName AS a, c.name AS b
MATCH (n:Person), (c:City)`,
		`SELECT n.firstName AS a
MATCH (n:Person)-[:knows]->(m:Person), (m)-[:isLocatedIn]->(c:City)`,
		`SELECT n.firstName AS a, t.name AS b
MATCH (n:Person) OPTIONAL (n)-[:hasInterest]->(t:Tag), (c:City)`,
	)
	for i, query := range queries {
		t.Run(fmt.Sprintf("q%d", i), func(t *testing.T) {
			for _, workers := range []int{1, 0} {
				want := evalPlanned(t, setup, query, true, workers)
				got := evalPlanned(t, setup, query, false, workers)
				if got != want {
					t.Fatalf("workers=%d: planned result diverged from textual\nplanned:\n%s\ntextual:\n%s", workers, got, want)
				}
			}
		})
	}
}
