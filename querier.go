package gcore

import "context"

// Querier is the canonical evaluation surface of this package,
// implemented by *Engine, *DurableEngine and *Session. Code that only
// runs statements — the REPL, the gcored server, tests — programs
// against it and works identically over an in-memory engine, a
// durable one, or a per-client session with its own default graph and
// limits.
//
// All methods are safe for concurrent use. Read-only statements run
// concurrently under the engine's shared read lock against the
// committed catalog version and graph snapshot generations pinned at
// dispatch; mutating statements serialise under the writer lock (see
// ReadOnly for the classification).
type Querier interface {
	// EvalContext parses and evaluates one statement under ctx.
	EvalContext(ctx context.Context, src string) (*Result, error)
	// EvalScriptContext evaluates a semicolon-separated script,
	// returning one result per statement.
	EvalScriptContext(ctx context.Context, src string) ([]*Result, error)
	// Prepare validates one ($name-parameterisable) statement for
	// repeated execution.
	Prepare(src string) (*Prepared, error)
	// ExplainContext renders the static evaluation plan; nothing is
	// evaluated.
	ExplainContext(ctx context.Context, src string) (string, error)
	// ExplainAnalyzeContext executes the statement and renders the
	// plan annotated with observed rows and timings.
	ExplainAnalyzeContext(ctx context.Context, src string) (string, error)
	// Metrics snapshots the engine-lifetime execution metrics.
	Metrics() Metrics
}

var (
	_ Querier = (*Engine)(nil)
	_ Querier = (*DurableEngine)(nil)
	_ Querier = (*Session)(nil)
)
