package gcore_test

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"gcore"
	"gcore/internal/faultinject"
	"gcore/internal/parser"
	"gcore/internal/repro"
	"gcore/internal/wal"
)

// Crash-torture suite for the durability subsystem. The invariant
// under test: for any crash image — the data directory truncated at
// any byte offset, or left behind by any injected I/O fault —
// recovery restores a catalog whose rendered state (canonical graph
// JSON plus differential query results) is byte-identical to an
// in-memory replay of the mutation prefix that survived the crash, at
// 1 and N workers. Torn tails are truncated; replay never runs past a
// bad checksum.

// mutEngine is the mutation surface shared by *gcore.Engine (the
// in-memory oracle) and *gcore.DurableEngine (the system under test):
// the scripted operations below run identically against both.
type mutEngine interface {
	RegisterGraph(*gcore.Graph) error
	RegisterTable(*gcore.Table) error
	SetDefaultGraph(string) error
	SetParallelism(int)
	Graph(string) (*gcore.Graph, bool)
	GraphNames() []string
	Eval(string) (*gcore.Result, error)
}

// scriptOp is one logged mutation: applied to a durable engine it
// appends exactly one WAL record, so record prefixes and operation
// prefixes coincide.
type scriptOp struct {
	name  string
	apply func(e mutEngine) error
}

// durabilityScript is a deterministic mutation script covering every
// record kind: graph/table registration, default changes, element
// inserts, label and property rewrites, stored paths, and a GRAPH
// VIEW (whose materialised graph registers through the catalog hook).
func durabilityScript() []scriptOp {
	props := func(kv map[string]gcore.Value) gcore.Properties { return gcore.NewProperties(kv) }
	node := func(id uint64, label string, kv map[string]gcore.Value) *gcore.Node {
		return &gcore.Node{ID: gcore.NodeID(id), Labels: gcore.NewLabels(label), Props: props(kv)}
	}
	return []scriptOp{
		{"register_base", func(e mutEngine) error {
			g := gcore.NewGraph("base")
			if err := g.AddNode(node(1, "Person", map[string]gcore.Value{"name": gcore.Str("ada")})); err != nil {
				return err
			}
			if err := g.AddNode(node(2, "Person", map[string]gcore.Value{"name": gcore.Str("bob")})); err != nil {
				return err
			}
			if err := g.AddNode(node(3, "City", map[string]gcore.Value{"name": gcore.Str("paris")})); err != nil {
				return err
			}
			if err := g.AddEdge(&gcore.Edge{ID: 10, Src: 1, Dst: 2, Labels: gcore.NewLabels("knows")}); err != nil {
				return err
			}
			if err := g.AddEdge(&gcore.Edge{ID: 11, Src: 2, Dst: 3, Labels: gcore.NewLabels("livesIn")}); err != nil {
				return err
			}
			return e.RegisterGraph(g)
		}},
		{"add_node_4", withGraph("base", func(g *gcore.Graph) error {
			return g.AddNode(node(4, "Person", map[string]gcore.Value{"name": gcore.Str("eve")}))
		})},
		{"add_node_5", withGraph("base", func(g *gcore.Graph) error {
			return g.AddNode(node(5, "City", map[string]gcore.Value{"name": gcore.Str("oslo")}))
		})},
		{"add_edge_12", withGraph("base", func(g *gcore.Graph) error {
			return g.AddEdge(&gcore.Edge{ID: 12, Src: 4, Dst: 5, Labels: gcore.NewLabels("livesIn")})
		})},
		{"add_edge_13", withGraph("base", func(g *gcore.Graph) error {
			return g.AddEdge(&gcore.Edge{ID: 13, Src: 1, Dst: 4, Labels: gcore.NewLabels("knows"),
				Props: props(map[string]gcore.Value{"since": gcore.Int(2020)})})
		})},
		{"set_node_labels", withGraph("base", func(g *gcore.Graph) error {
			return g.SetNodeLabels(4, gcore.NewLabels("Person", "Manager"))
		})},
		{"set_edge_labels", withGraph("base", func(g *gcore.Graph) error {
			return g.SetEdgeLabels(10, gcore.NewLabels("knows", "wellKnows"))
		})},
		{"set_node_props", withGraph("base", func(g *gcore.Graph) error {
			return g.SetNodeProps(2, props(map[string]gcore.Value{"name": gcore.Str("bob"), "age": gcore.Int(44)}))
		})},
		{"set_edge_props", withGraph("base", func(g *gcore.Graph) error {
			return g.SetEdgeProps(12, props(map[string]gcore.Value{"since": gcore.Int(2021)}))
		})},
		{"add_path", withGraph("base", func(g *gcore.Graph) error {
			return g.AddPath(&gcore.Path{ID: 100, Nodes: []gcore.NodeID{1, 2, 3}, Edges: []gcore.EdgeID{10, 11},
				Labels: gcore.NewLabels("toParis")})
		})},
		{"set_path_props", withGraph("base", func(g *gcore.Graph) error {
			return g.SetPathProps(100, props(map[string]gcore.Value{"trust": gcore.Float(0.9)}))
		})},
		{"register_table", func(e mutEngine) error {
			t := gcore.NewTable("towns", "town")
			if err := t.AddRow(gcore.Str("paris")); err != nil {
				return err
			}
			if err := t.AddRow(gcore.Str("oslo")); err != nil {
				return err
			}
			return e.RegisterTable(t)
		}},
		{"set_default", func(e mutEngine) error { return e.SetDefaultGraph("base") }},
		{"graph_view", func(e mutEngine) error {
			_, err := e.Eval(`GRAPH VIEW people AS (CONSTRUCT (n) MATCH (n:Person) ON base)`)
			return err
		}},
		{"add_node_6", withGraph("base", func(g *gcore.Graph) error {
			return g.AddNode(node(6, "Person", map[string]gcore.Value{"name": gcore.Str("kim")}))
		})},
		{"add_edge_14", withGraph("base", func(g *gcore.Graph) error {
			return g.AddEdge(&gcore.Edge{ID: 14, Src: 6, Dst: 3, Labels: gcore.NewLabels("livesIn")})
		})},
	}
}

func withGraph(name string, fn func(*gcore.Graph) error) func(mutEngine) error {
	return func(e mutEngine) error {
		g, ok := e.Graph(name)
		if !ok {
			return fmt.Errorf("graph %q not registered", name)
		}
		return fn(g)
	}
}

// stateQueries probe the recovered catalog through the evaluator;
// prefixes where a graph does not exist yet render deterministic
// errors, which must match too.
var stateQueries = []string{
	`SELECT n.name AS name MATCH (n:Person) ON base ORDER BY name`,
	`SELECT n.name AS a, m.name AS b MATCH (n:Person)-[:knows]->(m:Person) ON base ORDER BY a, b`,
	`CONSTRUCT (n)-[e]->(c) MATCH (n:Person)-[e:livesIn]->(c:City) ON base`,
	`SELECT n.name AS name MATCH (n) ON people ORDER BY name`,
	`CONSTRUCT (n)-/@p/->(m) MATCH (n)-/p<:knows*>/->(m) ON base WHERE n.name = 'ada'`,
}

// renderState serialises everything observable: every registered
// graph's canonical JSON plus every state query's rendered result.
func renderState(e mutEngine, workers int) string {
	e.SetParallelism(workers)
	var sb strings.Builder
	for _, name := range e.GraphNames() {
		g, _ := e.Graph(name)
		data, err := g.MarshalJSON()
		if err != nil {
			return "MARSHAL-ERR: " + err.Error()
		}
		sb.WriteString("== graph " + name + "\n")
		sb.Write(data)
		sb.WriteString("\n")
	}
	for _, q := range stateQueries {
		res, err := e.Eval(q)
		sb.WriteString("== query\n" + renderResult(res, err) + "\n")
	}
	return sb.String()
}

// oracle applies the first n script operations to a fresh in-memory
// engine. Operations whose target does not exist yet in that prefix
// are impossible by construction (the script is linear).
func oracle(t *testing.T, ops []scriptOp, n int) *gcore.Engine {
	t.Helper()
	e := gcore.NewEngine()
	for _, op := range ops[:n] {
		if err := op.apply(e); err != nil {
			t.Fatalf("oracle op %s: %v", op.name, err)
		}
	}
	return e
}

// recordEnds parses the record frame boundaries of an intact segment
// file: the byte offset just past each record.
func recordEnds(t *testing.T, path string) []int64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(8) // segment magic
	var ends []int64
	for off+8 <= int64(len(data)) {
		n := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		if n == 0 || off+8+n > int64(len(data)) {
			break
		}
		off += 8 + n
		ends = append(ends, off)
	}
	return ends
}

func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, info.Mode())
	})
	if err != nil {
		t.Fatal(err)
	}
}

// runScript runs ops[from:to] against a durable engine.
func runScript(t *testing.T, d *gcore.DurableEngine, ops []scriptOp, from, to int) {
	t.Helper()
	for _, op := range ops[from:to] {
		if err := op.apply(d); err != nil {
			t.Fatalf("op %s: %v", op.name, err)
		}
	}
}

func segPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%016d.wal", seq))
}

// TestDurabilityCrashAtEveryByte records the full mutation script
// under SyncAlways, then simulates a power cut at every byte offset
// of the log and asserts recovery equals the in-memory replay of the
// surviving record prefix, at 1 and N workers.
func TestDurabilityCrashAtEveryByte(t *testing.T) {
	ops := durabilityScript()
	dir := t.TempDir()
	d, err := gcore.OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	runScript(t, d, ops, 0, len(ops))
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	ends := recordEnds(t, segPath(dir, 1))
	if len(ends) != len(ops) {
		t.Fatalf("script of %d ops wrote %d records; the op↔record mapping is broken", len(ops), len(ends))
	}
	data, err := os.ReadFile(segPath(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Expected renderings per surviving-prefix length, computed once.
	wantByPrefix := make(map[int]map[int]string, len(ops)+1)
	for k := 0; k <= len(ops); k++ {
		o := oracle(t, ops, k)
		wantByPrefix[k] = map[int]string{1: renderState(o, 1), 0: renderState(o, 0)}
	}
	for cut := int64(0); cut <= int64(len(data)); cut++ {
		k := 0
		for _, end := range ends {
			if end <= cut {
				k++
			}
		}
		cutDir := t.TempDir()
		if err := os.WriteFile(segPath(cutDir, 1), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := gcore.OpenDurable(cutDir)
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		for _, workers := range []int{1, 0} {
			if got, want := renderState(rec, workers), wantByPrefix[k][workers]; got != want {
				rec.Close()
				t.Fatalf("cut at byte %d (%d records survive), workers=%d: recovered state diverged\n--- recovered:\n%s\n--- want:\n%s",
					cut, k, workers, got, want)
			}
		}
		rec.Close()
	}
}

// TestDurabilityCrashAfterCheckpoint: the same power-cut sweep over
// the log tail after a mid-script checkpoint — recovery must compose
// the checkpoint state with the surviving tail records.
func TestDurabilityCrashAfterCheckpoint(t *testing.T) {
	ops := durabilityScript()
	ckptAt := 9 // checkpoint after 9 ops, mid-script
	dir := t.TempDir()
	d, err := gcore.OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	runScript(t, d, ops, 0, ckptAt)
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	runScript(t, d, ops, ckptAt, len(ops))
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Read the committed watermark from the checkpoint files.
	var cur struct {
		Dir string `json:"dir"`
	}
	raw, err := os.ReadFile(filepath.Join(dir, "CURRENT"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &cur); err != nil {
		t.Fatal(err)
	}
	var wm struct {
		Seg uint64 `json:"segment"`
		Off int64  `json:"offset"`
	}
	raw, err = os.ReadFile(filepath.Join(dir, cur.Dir, "watermark.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &wm); err != nil {
		t.Fatal(err)
	}
	ends := recordEnds(t, segPath(dir, wm.Seg))
	var tailEnds []int64
	for _, end := range ends {
		if end > wm.Off {
			tailEnds = append(tailEnds, end)
		}
	}
	if len(tailEnds) != len(ops)-ckptAt {
		t.Fatalf("tail has %d records, want %d", len(tailEnds), len(ops)-ckptAt)
	}
	data, err := os.ReadFile(segPath(dir, wm.Seg))
	if err != nil {
		t.Fatal(err)
	}
	for cut := wm.Off; cut <= int64(len(data)); cut++ {
		k := ckptAt
		for _, end := range tailEnds {
			if end <= cut {
				k++
			}
		}
		cutDir := t.TempDir()
		copyTree(t, dir, cutDir)
		if err := os.Truncate(segPath(cutDir, wm.Seg), cut); err != nil {
			t.Fatal(err)
		}
		rec, err := gcore.OpenDurable(cutDir)
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		want := renderState(oracle(t, ops, k), 1)
		if got := renderState(rec, 1); got != want {
			rec.Close()
			t.Fatalf("cut at byte %d (%d ops survive): recovered state diverged\n--- recovered:\n%s\n--- want:\n%s", cut, k, got, want)
		}
		rec.Close()
	}
}

// TestDurabilityFaultSites drives every declared I/O fault site: the
// faulted operation must fail cleanly (typed error, no partial
// state), the engine must keep working once the fault clears, and
// recovery must restore exactly the successful mutations.
func TestDurabilityFaultSites(t *testing.T) {
	boom := errors.New("injected I/O fault")
	// One scenario per site; the loop below fails if a site has none,
	// so an I/O probe cannot be added without coverage here.
	scenarios := map[string]func(t *testing.T, dir string){
		faultinject.SiteWALAppend: func(t *testing.T, dir string) {
			faultSiteScenario(t, dir, faultinject.SiteWALAppend, boom, nil)
		},
		faultinject.SiteWALShortWrite: func(t *testing.T, dir string) {
			faultSiteScenario(t, dir, faultinject.SiteWALShortWrite, boom, nil)
		},
		faultinject.SiteWALSync: func(t *testing.T, dir string) {
			faultSiteScenario(t, dir, faultinject.SiteWALSync, boom, nil)
		},
		faultinject.SiteWALRoll: func(t *testing.T, dir string) {
			// A tiny segment size forces the faulted append to roll.
			faultSiteScenario(t, dir, faultinject.SiteWALRoll, boom,
				[]gcore.DurOption{gcore.WithSegmentSize(64)})
		},
		faultinject.SiteWALCheckpointWrite: func(t *testing.T, dir string) {
			checkpointFaultScenario(t, dir, faultinject.SiteWALCheckpointWrite, boom)
		},
		faultinject.SiteWALCheckpointRename: func(t *testing.T, dir string) {
			checkpointFaultScenario(t, dir, faultinject.SiteWALCheckpointRename, boom)
		},
	}
	for _, site := range faultinject.IOSites() {
		fn, ok := scenarios[site]
		if !ok {
			t.Fatalf("no crash-torture scenario for I/O fault site %s", site)
		}
		t.Run(site, func(t *testing.T) { fn(t, t.TempDir()) })
	}
}

// faultSiteScenario: run part of the script, arm the site so the next
// mutation fails, disarm, finish the script, and verify both the live
// and the recovered state equal the oracle of the successful ops.
func faultSiteScenario(t *testing.T, dir, site string, boom error, extra []gcore.DurOption) {
	ops := durabilityScript()
	d, err := gcore.OpenDurable(dir, extra...)
	if err != nil {
		t.Fatal(err)
	}
	mid := 6
	runScript(t, d, ops, 0, mid)

	faultinject.Arm()
	faultinject.Set(site, faultinject.Action{Err: boom})
	err = ops[mid].apply(d)
	hits := faultinject.Hits(site)
	faultinject.Disarm()
	if hits == 0 {
		t.Fatalf("fault site %s never reached", site)
	}
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("faulted mutation returned %v, want the injected error", err)
	}

	// The rejected mutation left no trace; the rest of the script runs.
	runScript(t, d, ops, mid, len(ops))
	want := renderState(oracle(t, ops, len(ops)), 1)
	if got := renderState(d, 1); got != want {
		t.Fatalf("live state after cleared fault diverged\n--- live:\n%s\n--- want:\n%s", got, want)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := gcore.OpenDurable(dir, extra...)
	if err != nil {
		t.Fatalf("recovery after fault run: %v", err)
	}
	defer rec.Close()
	// One oracle rendered in the same sequence as rec: CONSTRUCT
	// queries draw from the ID allocator, so render order matters.
	o := oracle(t, ops, len(ops))
	for _, workers := range []int{1, 0} {
		if got, want := renderState(rec, workers), renderState(o, workers); got != want {
			t.Fatalf("recovered state diverged (workers=%d)\n--- recovered:\n%s\n--- want:\n%s", workers, got, want)
		}
	}
}

// checkpointFaultScenario: a failed checkpoint must leave the
// previous recovery root intact and the log usable.
func checkpointFaultScenario(t *testing.T, dir, site string, boom error) {
	ops := durabilityScript()
	d, err := gcore.OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	runScript(t, d, ops, 0, 8)

	faultinject.Arm()
	faultinject.Set(site, faultinject.Action{Err: boom})
	err = d.Checkpoint()
	hits := faultinject.Hits(site)
	faultinject.Disarm()
	if hits == 0 {
		t.Fatalf("fault site %s never reached", site)
	}
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("faulted checkpoint returned %v, want the injected error", err)
	}

	// The log is still the recovery source; mutations and a later
	// checkpoint succeed.
	runScript(t, d, ops, 8, len(ops))
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after cleared fault: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := gcore.OpenDurable(dir)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer rec.Close()
	want := renderState(oracle(t, ops, len(ops)), 1)
	if got := renderState(rec, 1); got != want {
		t.Fatalf("recovered state diverged after checkpoint fault\n--- recovered:\n%s\n--- want:\n%s", got, want)
	}
}

// TestDurabilityPropertyRandom is the randomized recovery invariant:
// for a random mutation script, crash-at-every-record followed by
// recovery yields a catalog byte-identical to replaying the surviving
// prefix in memory, at 1 and N workers.
func TestDurabilityPropertyRandom(t *testing.T) {
	for _, seed := range []int64{1, 7, 23} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			ops := randomScript(rand.New(rand.NewSource(seed)), 24)
			dir := t.TempDir()
			d, err := gcore.OpenDurable(dir)
			if err != nil {
				t.Fatal(err)
			}
			runScript(t, d, ops, 0, len(ops))
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
			ends := recordEnds(t, segPath(dir, 1))
			if len(ends) != len(ops) {
				t.Fatalf("%d ops wrote %d records", len(ops), len(ends))
			}
			data, err := os.ReadFile(segPath(dir, 1))
			if err != nil {
				t.Fatal(err)
			}
			for k := 0; k <= len(ops); k++ {
				cut := int64(8)
				if k > 0 {
					cut = ends[k-1]
				}
				cutDir := t.TempDir()
				if err := os.WriteFile(segPath(cutDir, 1), data[:cut], 0o644); err != nil {
					t.Fatal(err)
				}
				rec, err := gcore.OpenDurable(cutDir)
				if err != nil {
					t.Fatalf("prefix %d: recovery failed: %v", k, err)
				}
				o := oracle(t, ops, k)
				for _, workers := range []int{1, 0} {
					if got, want := renderState(rec, workers), renderState(o, workers); got != want {
						rec.Close()
						t.Fatalf("prefix %d, workers=%d: recovered state diverged\n--- recovered:\n%s\n--- want:\n%s", k, workers, got, want)
					}
				}
				rec.Close()
			}
		})
	}
}

// randomScript generates n deterministic random mutations, each
// appending exactly one record. IDs are dense and tracked so every
// operation is valid on both the durable engine and the oracle.
func randomScript(rng *rand.Rand, n int) []scriptOp {
	ops := []scriptOp{{"register_r", func(e mutEngine) error {
		g := gcore.NewGraph("r")
		if err := g.AddNode(&gcore.Node{ID: 1, Labels: gcore.NewLabels("N")}); err != nil {
			return err
		}
		if err := g.AddNode(&gcore.Node{ID: 2, Labels: gcore.NewLabels("N")}); err != nil {
			return err
		}
		if err := g.AddEdge(&gcore.Edge{ID: 1000, Src: 1, Dst: 2, Labels: gcore.NewLabels("E")}); err != nil {
			return err
		}
		return e.RegisterGraph(g)
	}}}
	nodes := []uint64{1, 2}
	edges := []uint64{1000}
	nextNode, nextEdge := uint64(3), uint64(1001)
	labels := []string{"N", "M", "K"}
	for len(ops) < n {
		switch rng.Intn(6) {
		case 0, 1: // add node (weighted: keeps the graph growing)
			id := nextNode
			nextNode++
			lbl := labels[rng.Intn(len(labels))]
			nodes = append(nodes, id)
			ops = append(ops, scriptOp{fmt.Sprintf("add_node_%d", id), withGraph("r", func(g *gcore.Graph) error {
				return g.AddNode(&gcore.Node{ID: gcore.NodeID(id), Labels: gcore.NewLabels(lbl)})
			})})
		case 2: // add edge between existing nodes
			id := nextEdge
			nextEdge++
			src := nodes[rng.Intn(len(nodes))]
			dst := nodes[rng.Intn(len(nodes))]
			edges = append(edges, id)
			ops = append(ops, scriptOp{fmt.Sprintf("add_edge_%d", id), withGraph("r", func(g *gcore.Graph) error {
				return g.AddEdge(&gcore.Edge{ID: gcore.EdgeID(id), Src: gcore.NodeID(src), Dst: gcore.NodeID(dst),
					Labels: gcore.NewLabels("E")})
			})})
		case 3: // relabel an existing node
			id := nodes[rng.Intn(len(nodes))]
			lbl := labels[rng.Intn(len(labels))]
			ops = append(ops, scriptOp{fmt.Sprintf("relabel_%d", id), withGraph("r", func(g *gcore.Graph) error {
				return g.SetNodeLabels(gcore.NodeID(id), gcore.NewLabels(lbl))
			})})
		case 4: // rewrite an existing node's properties
			id := nodes[rng.Intn(len(nodes))]
			v := rng.Intn(100)
			ops = append(ops, scriptOp{fmt.Sprintf("props_%d", id), withGraph("r", func(g *gcore.Graph) error {
				return g.SetNodeProps(gcore.NodeID(id), gcore.NewProperties(map[string]gcore.Value{"v": gcore.Int(int64(v))}))
			})})
		case 5: // rewrite an existing edge's properties
			id := edges[rng.Intn(len(edges))]
			v := rng.Intn(100)
			ops = append(ops, scriptOp{fmt.Sprintf("eprops_%d", id), withGraph("r", func(g *gcore.Graph) error {
				return g.SetEdgeProps(gcore.EdgeID(id), gcore.NewProperties(map[string]gcore.Value{"w": gcore.Int(int64(v))}))
			})})
		}
	}
	return ops
}

// TestDurabilityDifferentialPaper: the guided-tour database loaded
// into a durable engine survives a crash image — every paper example
// query renders byte-identically on the recovered engine.
func TestDurabilityDifferentialPaper(t *testing.T) {
	src, err := repro.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	exportDir := t.TempDir()
	if err := src.SaveCatalog(exportDir); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	d, err := gcore.OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.LoadCatalog(exportDir); err != nil {
		t.Fatal(err)
	}
	// Crash image: SyncAlways means the directory is committed as-is;
	// copy it out from under the live engine and recover the copy.
	crashDir := t.TempDir()
	copyTree(t, dir, crashDir)
	rec, err := gcore.OpenDurable(crashDir)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	defer d.Close()

	keys := make([]string, 0, len(parser.PaperQueries))
	for k := range parser.PaperQueries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		query := parser.PaperQueries[key]
		for _, workers := range []int{1, 0} {
			src.SetParallelism(workers)
			rec.SetParallelism(workers)
			want := renderResult(src.Eval(query))
			got := renderResult(rec.Eval(query))
			if got != want {
				t.Fatalf("%s (workers=%d): recovered result diverged\n--- recovered:\n%s\n--- want:\n%s", key, workers, got, want)
			}
		}
	}
}

// TestDurabilityDifferentialSNB: the SNB toy graph registered
// durably, crashed and recovered — the differential query suite
// renders byte-identically.
func TestDurabilityDifferentialSNB(t *testing.T) {
	_, queries := snbQueries()
	live := gcore.NewEngine()
	social, _ := live.GenerateSNB(gcore.SNBConfig{Persons: 60, Seed: 1})
	if err := live.RegisterGraph(social); err != nil {
		t.Fatal(err)
	}
	if err := live.SetDefaultGraph(social.Name()); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	d, err := gcore.OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	dupe := gcore.NewEngine()
	social2, _ := dupe.GenerateSNB(gcore.SNBConfig{Persons: 60, Seed: 1})
	if err := d.RegisterGraph(social2); err != nil {
		t.Fatal(err)
	}
	if err := d.SetDefaultGraph(social2.Name()); err != nil {
		t.Fatal(err)
	}
	crashDir := t.TempDir()
	copyTree(t, dir, crashDir)
	d.Close()
	rec, err := gcore.OpenDurable(crashDir)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	for i, query := range queries {
		for _, workers := range []int{1, 0} {
			live.SetParallelism(workers)
			rec.SetParallelism(workers)
			want := renderResult(live.Eval(query))
			got := renderResult(rec.Eval(query))
			if got != want {
				t.Fatalf("q%d (workers=%d): recovered result diverged\n--- recovered:\n%s\n--- want:\n%s", i, workers, got, want)
			}
		}
	}
}

// TestDurabilityCorruptSegmentRefused: flipped bits in committed
// records must fail recovery with a typed *WALCorruptError and
// quarantine the segment — never a silent partial catalog.
func TestDurabilityCorruptSegmentRefused(t *testing.T) {
	ops := durabilityScript()
	dir := t.TempDir()
	d, err := gcore.OpenDurable(dir, gcore.WithSegmentSize(512))
	if err != nil {
		t.Fatal(err)
	}
	runScript(t, d, ops, 0, len(ops))
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Damage a payload byte in the FIRST segment (committed, not tail).
	path := segPath(dir, 1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[8+8+10] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = gcore.OpenDurable(dir, gcore.WithSegmentSize(512))
	var ce *gcore.WALCorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("recovery of corrupt log returned %v, want *WALCorruptError", err)
	}
	if ce.Quarantined == "" {
		t.Fatal("corrupt segment was not quarantined")
	}
}

// TestDurabilitySyncPolicies: each policy recovers to a consistent
// prefix; SyncAlways recovers everything.
func TestDurabilitySyncPolicies(t *testing.T) {
	ops := durabilityScript()
	for _, pol := range []gcore.SyncPolicy{gcore.SyncAlways, gcore.SyncInterval, gcore.SyncOnCheckpoint} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			d, err := gcore.OpenDurable(dir, gcore.WithSyncPolicy(pol))
			if err != nil {
				t.Fatal(err)
			}
			runScript(t, d, ops, 0, len(ops))
			if err := d.Close(); err != nil { // Close commits the tail under every policy
				t.Fatal(err)
			}
			rec, err := gcore.OpenDurable(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer rec.Close()
			want := renderState(oracle(t, ops, len(ops)), 1)
			if got := renderState(rec, 1); got != want {
				t.Fatalf("policy %v: recovered state diverged\n%s", pol, got)
			}
		})
	}
}

// TestDurabilityAutoCheckpoint: WithCheckpointEvery compacts the log
// at statement boundaries without changing recovered state.
func TestDurabilityAutoCheckpoint(t *testing.T) {
	ops := durabilityScript()
	dir := t.TempDir()
	d, err := gcore.OpenDurable(dir, gcore.WithCheckpointEvery(3))
	if err != nil {
		t.Fatal(err)
	}
	runScript(t, d, ops, 0, len(ops))
	if s := d.WALStats(); s.Checkpoints == 0 {
		t.Fatal("no automatic checkpoint was taken")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := gcore.OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	want := renderState(oracle(t, ops, len(ops)), 1)
	if got := renderState(rec, 1); got != want {
		t.Fatalf("recovered state diverged under auto-checkpointing\n%s", got)
	}
	if rec.Metrics().WALCheckpoints != 0 {
		// The reopened log starts fresh counters; just exercise the field.
		t.Log("fresh log reports prior checkpoints")
	}
}

// TestDurabilityWALMetrics: the WAL counters surface through
// Engine.Metrics and the read-only wal.Replay oracle agrees with the
// engine's own record count.
func TestDurabilityWALMetrics(t *testing.T) {
	ops := durabilityScript()
	dir := t.TempDir()
	d, err := gcore.OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	runScript(t, d, ops, 0, len(ops))
	m := d.Metrics()
	if m.WALAppends != int64(len(ops)) {
		t.Fatalf("WALAppends = %d, want %d", m.WALAppends, len(ops))
	}
	if m.WALSyncs == 0 || m.WALAppendedBytes == 0 {
		t.Fatalf("WAL counters not surfaced: %+v", m)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := wal.Replay(dir, wal.Watermark{}, func(p []byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != len(ops) {
		t.Fatalf("read-only replay found %d records, want %d", n, len(ops))
	}
}

// TestDurabilityTornTailMetric: a torn tail is truncated exactly once
// and surfaces in the metrics of the recovered engine.
func TestDurabilityTornTailMetric(t *testing.T) {
	ops := durabilityScript()
	dir := t.TempDir()
	d, err := gcore.OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	runScript(t, d, ops, 0, len(ops))
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: append garbage to the last segment.
	f, err := os.OpenFile(segPath(dir, 1), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	io.WriteString(f, "\x40\x00\x00\x00\xde\xad\xbe\xefpartial")
	f.Close()
	rec, err := gcore.OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if m := rec.Metrics(); m.WALTornTruncated != 1 {
		t.Fatalf("WALTornTruncated = %d, want 1", m.WALTornTruncated)
	}
	want := renderState(oracle(t, ops, len(ops)), 1)
	if got := renderState(rec, 1); got != want {
		t.Fatalf("state diverged after torn-tail truncation\n%s", got)
	}
}
