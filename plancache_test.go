package gcore_test

import (
	"strings"
	"sync"
	"testing"

	"gcore"
	"gcore/internal/core"
)

// Engine-level plan cache tests: repeated statements hit, hits are
// byte-identical to compiles, and structural changes (graph mutation,
// catalog registration) retire stale entries.

func TestPlanCacheHitMiss(t *testing.T) {
	eng := newEngine(t)
	const q = `SELECT n.firstName AS name MATCH (n:Person) ORDER BY name`
	first, err := eng.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	second, err := eng.Eval("  " + q + "  # same statement, new spelling\n")
	if err != nil {
		t.Fatal(err)
	}
	st := eng.PlanCacheStats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 miss + 1 hit", st)
	}
	if a, b := first.Table.String(), second.Table.String(); a != b {
		t.Fatalf("cached result diverged:\n%s\n%s", a, b)
	}
	m := eng.Metrics()
	if m.PlanCacheHits != 1 || m.PlanCacheMisses != 1 || m.PlanCacheEntries != 1 {
		t.Fatalf("metrics = hits %d misses %d entries %d", m.PlanCacheHits, m.PlanCacheMisses, m.PlanCacheEntries)
	}
}

func TestPlanCacheDisabledEngine(t *testing.T) {
	eng := gcore.NewEngine(gcore.WithPlanCacheSize(-1))
	if err := eng.RegisterGraph(gcore.SampleSocialGraph()); err != nil {
		t.Fatal(err)
	}
	const q = `SELECT n.firstName AS name MATCH (n:Person) ORDER BY name`
	for i := 0; i < 2; i++ {
		if _, err := eng.Eval(q); err != nil {
			t.Fatal(err)
		}
	}
	if st := eng.PlanCacheStats(); st != (gcore.PlanCacheStats{}) {
		t.Fatalf("disabled-cache stats = %+v", st)
	}
	if ens := eng.PlanCacheEntries(); ens != nil {
		t.Fatalf("disabled-cache entries = %v", ens)
	}
}

// TestPlanCacheGenerationInvalidation: mutating the default graph
// bumps its generation, so the next evaluation recompiles and sees
// the new data — a stale plan is never served.
func TestPlanCacheGenerationInvalidation(t *testing.T) {
	eng := newEngine(t)
	const q = `SELECT n.firstName AS name MATCH (n:Person) ORDER BY name`
	before, err := eng.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	rowsBefore := before.Table.Len()

	g, _ := eng.Graph("social_graph")
	err = g.AddNode(&gcore.Node{
		ID:     eng.NextNodeID(),
		Labels: gcore.NewLabels("Person"),
		Props:  gcore.NewProperties(map[string]gcore.Value{"firstName": gcore.Str("Zed")}),
	})
	if err != nil {
		t.Fatal(err)
	}

	after, err := eng.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	if after.Table.Len() != rowsBefore+1 {
		t.Fatalf("rows after mutation = %d, want %d", after.Table.Len(), rowsBefore+1)
	}
	if !strings.Contains(after.Table.String(), "Zed") {
		t.Fatalf("mutation invisible to cached statement:\n%s", after.Table.String())
	}
	if st := eng.PlanCacheStats(); st.Misses != 2 || st.Hits != 0 {
		t.Fatalf("stats = %+v, want 2 misses (generation bump)", st)
	}
}

// TestPlanCacheCatalogInvalidation: registering a graph bumps the
// catalog version, so cached statements recompile rather than reuse
// entries keyed to the old catalog.
func TestPlanCacheCatalogInvalidation(t *testing.T) {
	eng := newEngine(t)
	const q = `SELECT n.firstName AS name MATCH (n:Person) ORDER BY name`
	if _, err := eng.Eval(q); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterGraph(gcore.NewGraph("other")); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Eval(q); err != nil {
		t.Fatal(err)
	}
	if st := eng.PlanCacheStats(); st.Misses != 2 {
		t.Fatalf("stats = %+v, want 2 misses (catalog bump)", st)
	}
}

// TestPlanCacheStampede: concurrent evaluations of one statement on a
// fresh engine compile exactly once and all return the same bytes.
// Run under -race this also proves the cache probe itself is safe.
func TestPlanCacheStampede(t *testing.T) {
	eng := newEngine(t)
	const q = `SELECT n.firstName AS name MATCH (n:Person) ORDER BY name`
	const goroutines = 12
	results := make([]string, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := eng.Eval(q)
			results[i] = renderResult(res, err)
		}(i)
	}
	wg.Wait()
	st := eng.PlanCacheStats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want exactly 1 compilation", st.Misses)
	}
	if st.Hits != goroutines-1 {
		t.Fatalf("hits = %d, want %d", st.Hits, goroutines-1)
	}
	for i := 1; i < goroutines; i++ {
		if results[i] != results[0] {
			t.Fatalf("goroutine %d diverged:\n%s\n%s", i, results[i], results[0])
		}
	}
}

func TestPreparedStatement(t *testing.T) {
	eng := newEngine(t)
	p, err := eng.Prepare(`SELECT n.firstName AS name MATCH (n:Person) WHERE n.employer = $emp ORDER BY name`)
	if err != nil {
		t.Fatal(err)
	}
	if names := p.Params(); len(names) != 1 || names[0] != "emp" {
		t.Fatalf("params = %v", names)
	}

	acme, err := p.Eval(map[string]gcore.Value{"emp": gcore.Str("Acme")})
	if err != nil {
		t.Fatal(err)
	}
	hal, err := p.Eval(map[string]gcore.Value{"emp": gcore.Str("HAL")})
	if err != nil {
		t.Fatal(err)
	}
	if acme.Table.Len() == 0 || hal.Table.Len() == 0 {
		t.Fatalf("acme = %d rows, hal = %d rows", acme.Table.Len(), hal.Table.Len())
	}
	if acme.Table.String() == hal.Table.String() {
		t.Fatal("different bindings returned identical results")
	}

	// One prepared statement is one cache entry: the Prepare compiled
	// it, both executions hit.
	if st := eng.PlanCacheStats(); st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("stats = %+v", st)
	}

	// An unbound parameter fails the execution, naming the parameter.
	if _, err := p.Eval(nil); err == nil || !strings.Contains(err.Error(), "$emp") {
		t.Fatalf("unbound eval error = %v", err)
	}
}

// TestPreparedMatchesInlined: a parameterised execution renders
// byte-identically to the same statement with the literal spliced in
// textually — on both the cached and uncached paths.
func TestPreparedMatchesInlined(t *testing.T) {
	const tmpl = `SELECT n.firstName AS name MATCH (n:Person) WHERE n.employer = $emp ORDER BY name`
	const inlined = `SELECT n.firstName AS name MATCH (n:Person) WHERE n.employer = ('Acme') ORDER BY name`
	for _, disable := range []bool{false, true} {
		core.DisablePlanCache = disable
		func() {
			defer func() { core.DisablePlanCache = false }()
			eng := newEngine(t)
			p, err := eng.Prepare(tmpl)
			if err != nil {
				t.Fatal(err)
			}
			res, err := p.Eval(map[string]gcore.Value{"emp": gcore.Str("Acme")})
			got := renderResult(res, err)
			res2, err2 := newEngine(t).Eval(inlined)
			want := renderResult(res2, err2)
			if got != want {
				t.Fatalf("disable=%v: parameterised result diverged\nparam:\n%s\ninline:\n%s", disable, got, want)
			}
		}()
	}
}

func TestPrepareRejectsBadStatements(t *testing.T) {
	eng := newEngine(t)
	if _, err := eng.Prepare(`SELECT MATCH WHERE`); err == nil {
		t.Fatal("syntax error accepted")
	}
	if _, err := eng.Prepare(`SELECT n.x MATCH (n {y := 1})`); err == nil {
		t.Fatal("semantic error (:= outside CONSTRUCT) accepted")
	}
}

// TestExplainAnalyzeCacheFooter: the first run reports a miss with
// the compile cost, the second a hit with the cost saved.
func TestExplainAnalyzeCacheFooter(t *testing.T) {
	eng := newEngine(t)
	const q = `SELECT n.firstName AS name MATCH (n:Person) ORDER BY name`
	first, err := eng.ExplainAnalyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(first, "plan cache: miss (compile ") {
		t.Fatalf("first run footer:\n%s", first)
	}
	second, err := eng.ExplainAnalyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(second, "plan cache: hit (compile ") || !strings.Contains(second, " saved)") {
		t.Fatalf("second run footer:\n%s", second)
	}
}

// TestPlanCacheEvictionBound: the cache never exceeds its capacity.
func TestPlanCacheEvictionBound(t *testing.T) {
	eng := gcore.NewEngine(gcore.WithPlanCacheSize(2))
	if err := eng.RegisterGraph(gcore.SampleSocialGraph()); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		`SELECT n.firstName AS a MATCH (n:Person) ORDER BY a`,
		`SELECT n.lastName AS a MATCH (n:Person) ORDER BY a`,
		`SELECT n.employer AS a MATCH (n:Person) ORDER BY a`,
	}
	for _, q := range queries {
		if _, err := eng.Eval(q); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.PlanCacheStats()
	if st.Entries != 2 || st.Capacity != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if ens := eng.PlanCacheEntries(); len(ens) != 2 {
		t.Fatalf("entries = %v", ens)
	}
}

// TestScriptsUseCache: a script evaluated twice compiles each
// statement once.
func TestScriptsUseCache(t *testing.T) {
	eng := newEngine(t)
	const script = `
		SELECT n.firstName AS name MATCH (n:Person) ORDER BY name;
		SELECT c.name AS name MATCH (c:Company) ORDER BY name;
	`
	for i := 0; i < 2; i++ {
		if _, err := eng.EvalScript(script); err != nil {
			t.Fatal(err)
		}
	}
	if st := eng.PlanCacheStats(); st.Misses != 2 || st.Hits != 2 {
		t.Fatalf("stats = %+v, want 2 misses + 2 hits", st)
	}
}
