// Expert finding on a social network: the full storyline of the
// paper's guided tour (§3). John Doe wants an introduction to a
// Wagner lover in his city; friends who actually exchange messages
// are better intermediaries.
//
// The example runs the three stages end-to-end:
//
//  1. the view social_graph1 annotates every :knows edge with
//     nr_messages (OPTIONAL matching + COUNT(*));
//  2. the view social_graph2 finds weighted shortest paths over the
//     wKnows PATH view (cost 1/(1+nr_messages), Acme employees
//     excluded) and stores them as :toWagner paths — paths are
//     first-class citizens;
//  3. a final query analyses the stored paths and scores John's
//     direct friends.
package main

import (
	"fmt"
	"log"

	"gcore"
)

func main() {
	eng := gcore.NewEngine()
	if err := eng.RegisterGraph(gcore.SampleSocialGraph()); err != nil {
		log.Fatal(err)
	}

	// Stage 1: message intensity per knows edge (paper lines 39–47).
	_, err := eng.Eval(`
GRAPH VIEW social_graph1 AS (
  CONSTRUCT social_graph,
            (n)-[e]->(m) SET e.nr_messages := COUNT(*)
  MATCH (n)-[e:knows]->(m)
  WHERE (n:Person) AND (m:Person)
  OPTIONAL (n)<-[c1]-(msg1:Post|Comment),
           (msg1)-[:reply_of]-(msg2),
           (msg2:Post|Comment)-[c2]->(m)
  WHERE (c1:has_creator) AND (c2:has_creator) )`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Eval(`
SELECT n.firstName AS from_, m.firstName AS to_, e.nr_messages AS messages
MATCH (n)-[e:knows]->(m) ON social_graph1
ORDER BY from_, to_`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("message intensity per knows edge (social_graph1):")
	fmt.Print(res.Table.String())

	// Stage 2: weighted shortest paths to Wagner lovers, stored as
	// first-class :toWagner paths (paper lines 57–66).
	_, err = eng.Eval(`
GRAPH VIEW social_graph2 AS (
  PATH wKnows = (x)-[e:knows]->(y)
       WHERE NOT 'Acme' IN y.employer
       COST 1 / (1 + e.nr_messages)
  CONSTRUCT social_graph1, (n)-/@p:toWagner/->(m)
  MATCH (n:Person)-/p<~wKnows*>/->(m:Person)
  ON social_graph1
  WHERE (m)-[:hasInterest]->(:Tag {name='Wagner'})
  AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)
  AND n.firstName = 'John' AND n.lastName = 'Doe')`)
	if err != nil {
		log.Fatal(err)
	}
	g2, _ := eng.Graph("social_graph2")
	fmt.Printf("\nstored :toWagner paths in social_graph2 (%d):\n", g2.NumPaths())
	for _, pid := range g2.PathIDs() {
		p, _ := g2.Path(pid)
		fmt.Printf("  path #%d:", pid)
		for i, n := range p.Nodes {
			node, _ := g2.Node(n)
			if i > 0 {
				fmt.Print(" →")
			}
			fmt.Printf(" %s", node.Props.Get("firstName"))
		}
		fmt.Println()
	}

	// Stage 3: who should John ask? Count, per direct friend, how
	// many stored paths pass through them (paper lines 67–71; see
	// EXPERIMENTS.md on the m/n variable in the WHERE clause).
	res, err = eng.Eval(`
CONSTRUCT (n)-[e:wagnerFriend {score:=COUNT(*)}]->(m)
          WHEN e.score > 0
MATCH (n:Person)-/@p:toWagner/->(), (m:Person)
ON social_graph2
WHERE m = nodes(p)[1]`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwagnerFriend scores:")
	for _, id := range res.Graph.EdgeIDs() {
		e, _ := res.Graph.Edge(id)
		src, _ := res.Graph.Node(e.Src)
		dst, _ := res.Graph.Node(e.Dst)
		fmt.Printf("  %s should ask %s (score %s)\n",
			src.Props.Get("firstName"), dst.Props.Get("firstName"), e.Props.Get("score"))
	}
}
