// Friend-of-friend recommendations over a generated SNB-schema graph:
// a larger-scale workload combining the synthetic generator, views,
// aggregated SELECT, and weighted paths.
//
// The pipeline:
//
//  1. generate a social network (Figure 3 schema) at a chosen scale;
//  2. build a view of friend-of-friend candidate edges, scoring each
//     candidate by the number of distinct common friends (grouped
//     CONSTRUCT with COUNT);
//  3. rank candidates for one person with an aggregated SELECT;
//  4. sanity-check with the shortest-path machinery: every candidate
//     is exactly two knows-hops away.
package main

import (
	"fmt"
	"log"

	"gcore"
)

func main() {
	eng := gcore.NewEngine()
	social, _ := eng.GenerateSNB(gcore.SNBConfig{Persons: 120, AvgKnows: 6, Seed: 11})
	if err := eng.RegisterGraph(social); err != nil {
		log.Fatal(err)
	}
	fmt.Println("generated:", social)

	// Candidate edges: a knows b knows c, a ≠ c, a does not know c.
	// The edge construct groups by (a,c), so COUNT(*) is the number
	// of distinct middlemen — the recommendation score.
	if _, err := eng.Eval(fmt.Sprintf(`GRAPH VIEW candidates AS (
  CONSTRUCT (a)-[r:suggest {score := COUNT(*)}]->(c)
  MATCH (a:Person)-[:knows]->(b:Person)-[:knows]->(c:Person) ON %s
  WHERE NOT (a)-[:knows]->(c) AND NOT a = c)`, social.Name())); err != nil {
		log.Fatal(err)
	}
	cands, _ := eng.Graph("candidates")
	fmt.Println("candidate graph:", cands)

	// Rank the strongest suggestions for the anchor person (the
	// generator's deterministic John Doe).
	res, err := eng.Eval(fmt.Sprintf(`
SELECT c.firstName AS first, c.lastName AS last, r.score AS score
MATCH (a:Person)-[r:suggest]->(c) ON candidates, (a2:Person) ON %s
WHERE a2.anchor = TRUE AND a = a2
ORDER BY score DESC, last, first
LIMIT 5`, social.Name()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop suggestions for John Doe:")
	fmt.Print(res.Table.String())

	// Aggregate statistics over the whole candidate graph.
	res, err = eng.Eval(`
SELECT COUNT(*) AS edges_, MAX(r.score) AS best, AVG(r.score) AS mean
MATCH ()-[r:suggest]->() ON candidates`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncandidate statistics:")
	fmt.Print(res.Table.String())

	// Cross-check with path search: every suggested pair is exactly
	// two knows-hops apart in the source graph.
	res, err = eng.Eval(fmt.Sprintf(`
SELECT COUNT(*) AS not_two_hops
MATCH (a)-[r:suggest]->(c) ON candidates,
      (a)-/SHORTEST q<:knows*> COST d/->(c) ON %s
WHERE NOT d = 2`, social.Name()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsuggestions that are not exactly 2 hops away (must be 0):")
	fmt.Print(res.Table.String())
}
