// Tabular interoperability: the §5 extensions. G-CORE is closed over
// graphs, but practical systems need tables at the borders:
//
//   - SELECT projects a binding table out of a graph query;
//   - FROM imports a binding table and CONSTRUCT builds a graph
//     from it;
//   - MATCH … ON <table> treats a table as a graph of isolated
//     nodes whose properties are the columns.
package main

import (
	"fmt"
	"log"
	"strings"

	"gcore"
)

const ordersCSV = `custName,prodCode,qty
Ada,1001,2
Ada,1002,1
Bob,1001,5
Cyd,1003,1
Bob,1001,3
`

func main() {
	eng := gcore.NewEngine()
	if err := eng.RegisterGraph(gcore.SampleSocialGraph()); err != nil {
		log.Fatal(err)
	}
	orders, err := gcore.ReadTableCSV("orders", strings.NewReader(ordersCSV))
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.RegisterTable(orders); err != nil {
		log.Fatal(err)
	}

	// 1. SELECT: graph in, table out (paper lines 72–75).
	res, err := eng.Eval(`
SELECT m.lastName + ', ' + m.firstName AS friendName
MATCH (n:Person) -/<:knows*>/->(m:Person)
WHERE n.firstName = 'John' AND n.lastName = 'Doe'
AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)
ORDER BY friendName`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("friends of John Doe in his city (SELECT):")
	fmt.Print(res.Table.String())

	// 2. FROM: table in, graph out (paper lines 76–80). Repeat
	//    purchases collapse into one edge by construct grouping.
	res, err = eng.Eval(`
CONSTRUCT
  (cust GROUP custName :Customer {name:=custName}),
  (prod GROUP prodCode :Product {code:=prodCode}),
  (cust)-[:bought]->(prod)
FROM orders`)
	if err != nil {
		log.Fatal(err)
	}
	g := res.Graph
	g.SetName("purchases")
	if err := eng.RegisterGraph(g); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npurchase graph from FROM orders: %v\n", g)

	// 3. Tables as graphs (paper lines 81–85): each row is an
	//    isolated node; aggregate quantities per customer.
	res, err = eng.Eval(`
CONSTRUCT (cust GROUP o.custName :Customer {name:=o.custName, total:=SUM(o.qty)})
MATCH (o) ON orders`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nper-customer totals (table matched as a graph):")
	for _, id := range res.Graph.NodeIDs() {
		n, _ := res.Graph.Node(id)
		fmt.Printf("  %s bought %s item(s)\n", n.Props.Get("name"), n.Props.Get("total"))
	}

	// 4. And back out: the constructed purchase graph as a table.
	res, err = eng.Eval(`
SELECT c.name AS customer, p.code AS product
MATCH (c:Customer)-[:bought]->(p:Product) ON purchases
ORDER BY customer, product`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwho bought what (SELECT over the constructed graph):")
	fmt.Print(res.Table.String())
}
