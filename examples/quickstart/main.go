// Quickstart: build a small Path Property Graph programmatically,
// run the first query of the paper's guided tour, and print the
// result. Every G-CORE query returns a graph — the language is
// closed, so results can be registered and queried again.
package main

import (
	"fmt"
	"log"

	"gcore"
)

func main() {
	eng := gcore.NewEngine()

	// Build a three-person graph through the public API.
	g := gcore.NewGraph("team")
	ids := map[string]gcore.NodeID{}
	for _, p := range []struct{ name, employer string }{
		{"Ada", "Acme"}, {"Grace", "Initech"}, {"Alan", "Acme"},
	} {
		id := eng.NextNodeID()
		ids[p.name] = id
		err := g.AddNode(&gcore.Node{
			ID:     id,
			Labels: gcore.NewLabels("Person"),
			Props: gcore.NewProperties(map[string]gcore.Value{
				"name":     gcore.Str(p.name),
				"employer": gcore.Str(p.employer),
			}),
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	if err := g.AddEdge(&gcore.Edge{
		ID: eng.NextEdgeID(), Src: ids["Ada"], Dst: ids["Grace"],
		Labels: gcore.NewLabels("knows"),
	}); err != nil {
		log.Fatal(err)
	}
	if err := eng.RegisterGraph(g); err != nil {
		log.Fatal(err)
	}

	// The paper's first query: a graph of the Acme employees, with
	// all labels and properties preserved.
	res, err := eng.Eval(`
		CONSTRUCT (n)
		MATCH (n:Person)
		ON team
		WHERE n.employer = 'Acme'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("result:", res.Graph)
	for _, id := range res.Graph.NodeIDs() {
		n, _ := res.Graph.Node(id)
		fmt.Printf("  node #%d labels=%v name=%s\n", id, n.Labels, n.Props.Get("name"))
	}

	// Closure: query the previous result by registering it.
	res.Graph.SetName("acme_people")
	if err := eng.RegisterGraph(res.Graph); err != nil {
		log.Fatal(err)
	}
	count, err := eng.Eval(`SELECT n.name AS name MATCH (n) ON acme_people ORDER BY name`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nqueried again as a table:")
	fmt.Print(count.Table.String())
}
