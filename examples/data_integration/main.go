// Data integration across graphs: the multi-graph examples of §3
// (lines 5–22). Company nodes live in one graph, people in another;
// the queries join them into a unified graph, dealing with
// multi-valued and missing employer properties, and finally create
// the company nodes themselves by graph aggregation.
package main

import (
	"fmt"
	"log"

	"gcore"
)

func main() {
	eng := gcore.NewEngine()
	if err := eng.RegisterGraph(gcore.SampleSocialGraph()); err != nil {
		log.Fatal(err)
	}
	if err := eng.RegisterGraph(gcore.SampleCompanyGraph()); err != nil {
		log.Fatal(err)
	}

	count := func(g *gcore.Graph, label string) int {
		n := 0
		for _, id := range g.EdgeIDs() {
			e, _ := g.Edge(id)
			if e.Labels.Has(label) {
				n++
			}
		}
		return n
	}

	// 1. Equality join: Frank (employer {CWI, MIT}) fails to match —
	//    "MIT" = {"CWI","MIT"} is FALSE — and unemployed Peter drops.
	res, err := eng.Eval(`
CONSTRUCT (c) <-[:worksAt]-(n)
MATCH (c:Company) ON company_graph,
      (n:Person) ON social_graph
WHERE c.name = n.employer
UNION social_graph`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("= join:  %d worksAt edges (Frank and Peter unmatched)\n", count(res.Graph, "worksAt"))

	// 2. IN join: Frank's multi-valued employer now matches twice.
	res, err = eng.Eval(`
CONSTRUCT (c) <-[:worksAt]-(n)
MATCH (c:Company) ON company_graph,
      (n:Person) ON social_graph
WHERE c.name IN n.employer
UNION social_graph`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IN join: %d worksAt edges (Frank → CWI and MIT)\n", count(res.Graph, "worksAt"))

	// 3. Property unrolling: {employer=e} binds one row per value.
	res, err = eng.Eval(`
SELECT n.firstName AS person, e AS employer
MATCH (n:Person {employer=e}) ON social_graph
ORDER BY person, employer`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nunrolled employer bindings:")
	fmt.Print(res.Table.String())

	// 4. Graph aggregation: no company graph needed — create one
	//    company node per distinct employer value with GROUP.
	res, err = eng.Eval(`
CONSTRUCT social_graph,
          (x GROUP e :Company {name:=e}) <-[y:worksAt]-(n)
MATCH (n:Person {employer=e}) ON social_graph`)
	if err != nil {
		log.Fatal(err)
	}
	integrated := res.Graph
	integrated.SetName("integrated")
	if err := eng.RegisterGraph(integrated); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nintegrated graph: %v\n", integrated)

	// 5. Composability: query the integrated output like any graph.
	res, err = eng.Eval(`
SELECT c.name AS company, n.firstName AS employee
MATCH (c:Company)<-[:worksAt]-(n:Person) ON integrated
ORDER BY company, employee`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("who works where (queried from the result graph):")
	fmt.Print(res.Table.String())
}
