package gcore

import (
	"context"
	"fmt"
	"sync"

	"gcore/internal/core"
	"gcore/internal/parser"
)

// Session is a per-caller view of an engine: a default graph and
// resource-limit overrides that apply to this session's statements
// only, without touching the engine-wide configuration or other
// sessions. The gcored server gives every network client one Session;
// the REPL runs in one; library users create them with NewSession. A
// Session implements Querier, so code written against the interface
// runs unchanged inside a session.
//
// A Session is safe for concurrent use and adds no locking of its
// own beyond its small configuration state: its statements go through
// the engine's read/write path split like any other, so read-only
// statements from many sessions run concurrently.
type Session struct {
	eng       *Engine
	after     func()         // statement boundary (durable checkpoints)
	metricsFn func() Metrics // engine metrics source (durable fills WAL counters)

	mu     sync.Mutex
	def    string
	limits *Limits
}

// NewSession creates a session over the engine with no overrides: the
// engine's default graph and limits apply until the session sets its
// own.
func (e *Engine) NewSession() *Session {
	return &Session{eng: e, metricsFn: e.Metrics}
}

// NewSession creates a session over the durable engine. Mutations the
// session performs are logged like any other (the write-ahead boundary
// hooks the catalog, not the entry points), and statement boundaries
// drive automatic checkpoints.
func (d *DurableEngine) NewSession() *Session {
	return &Session{eng: d.Engine, after: d.maybeCheckpoint, metricsFn: d.Metrics}
}

// SetDefaultGraph sets the graph this session's MATCH uses when ON is
// omitted; "" reverts to the engine-wide default. The name must be a
// registered graph or table (tables are matched as node graphs, §5).
// Other sessions and the engine default are unaffected.
func (s *Session) SetDefaultGraph(name string) error {
	if name != "" {
		s.eng.mu.RLock()
		_, isGraph := s.eng.cat.Graph(name)
		_, isTable := s.eng.cat.Table(name)
		s.eng.mu.RUnlock()
		if !isGraph && !isTable {
			return fmt.Errorf("gcore: unknown graph %q (known graphs: %v)", name, s.eng.GraphNames())
		}
	}
	s.mu.Lock()
	s.def = name
	s.mu.Unlock()
	return nil
}

// DefaultGraph returns this session's default-graph override ("" when
// the engine default applies).
func (s *Session) DefaultGraph() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.def
}

// SetLimits installs per-statement resource limits for this session,
// replacing the engine limits for its statements (a zero field means
// unlimited — the session override is taken whole, not merged).
func (s *Session) SetLimits(l Limits) {
	s.mu.Lock()
	s.limits = &l
	s.mu.Unlock()
}

// ClearLimits removes the session's limits override; the engine
// limits apply again.
func (s *Session) ClearLimits() {
	s.mu.Lock()
	s.limits = nil
	s.mu.Unlock()
}

// Limits returns the session's effective per-statement limits: its
// own override when set, the engine limits otherwise.
func (s *Session) Limits() Limits {
	s.mu.Lock()
	l := s.limits
	s.mu.Unlock()
	if l != nil {
		return *l
	}
	return s.eng.Limits()
}

// opts snapshots the session configuration for one execution; the
// execution is unaffected by concurrent session reconfiguration.
func (s *Session) opts() core.ExecOpts {
	s.mu.Lock()
	defer s.mu.Unlock()
	o := core.ExecOpts{DefaultGraph: s.def}
	if s.limits != nil {
		l := *s.limits
		o.Limits = &l
	}
	return o
}

func (s *Session) boundary() {
	if s.after != nil {
		s.after()
	}
}

// EvalContext parses and evaluates one statement under ctx with the
// session's default graph and limits (see Engine.EvalContext).
func (s *Session) EvalContext(ctx context.Context, src string) (*Result, error) {
	res, err := s.eng.evalSrc(ctx, src, nil, s.opts())
	s.boundary()
	return res, err
}

// EvalParamsContext is EvalContext with $name parameter bindings, the
// one-shot form of Prepare + EvalContext.
func (s *Session) EvalParamsContext(ctx context.Context, src string, params map[string]Value) (*Result, error) {
	res, err := s.eng.evalSrc(ctx, src, params, s.opts())
	s.boundary()
	return res, err
}

// EvalScriptContext evaluates a semicolon-separated script under the
// session configuration (see Engine.EvalScriptContext).
func (s *Session) EvalScriptContext(ctx context.Context, src string) ([]*Result, error) {
	res, err := s.eng.evalScript(ctx, src, s.opts())
	s.boundary()
	return res, err
}

// Prepare validates one statement for repeated execution in this
// session. Each execution applies the session's configuration as of
// that execution — changing the session default graph re-targets
// already-prepared statements.
func (s *Session) Prepare(src string) (*Prepared, error) {
	s.eng.mu.RLock()
	err := s.eng.ev.CheckSrc(src, s.opts())
	s.eng.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	return &Prepared{
		eng:    s.eng,
		src:    src,
		names:  parser.ParamNames(src),
		optsFn: s.opts,
		after:  s.after,
	}, nil
}

// ExplainContext renders the static plan against the session's
// default graph and limits (see Engine.ExplainContext).
func (s *Session) ExplainContext(ctx context.Context, src string) (string, error) {
	return s.eng.explainSrc(ctx, src, s.opts())
}

// ExplainAnalyzeContext executes the statement under the session
// configuration and renders the annotated plan (see
// Engine.ExplainAnalyzeContext).
func (s *Session) ExplainAnalyzeContext(ctx context.Context, src string) (string, error) {
	plan, err := s.eng.explainAnalyzeSrc(ctx, src, nil, s.opts())
	s.boundary()
	return plan, err
}

// Metrics snapshots the engine-lifetime metrics (sessions do not
// keep per-session metrics; the registry is engine-wide).
func (s *Session) Metrics() Metrics {
	return s.metricsFn()
}
