# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test bench repro fuzz cover fmt vet

all: build test

build:
	go build ./...

test:
	go test ./...

bench:
	go test -bench=. -benchmem ./...

repro:
	go run ./cmd/gcore-repro
	go run ./cmd/gcore-repro -complexity

fuzz:
	go test -fuzz=FuzzParse -fuzztime=60s -run '^$$' .
	go test -fuzz=FuzzEval -fuzztime=60s -run '^$$' .

cover:
	go test -coverprofile=cover.out ./...
	go tool cover -func=cover.out | tail -1

fmt:
	gofmt -l .

vet:
	go vet ./...
