# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test race bench benchjson benchbase benchcmp benchguard repro fuzz cover fmt vet

# Packages with guarded hot-path benchmarks: the root suite (MATCH,
# paths, construction), the binding-table operators, the CSR snapshot
# maintenance path, and the write-ahead log append path.
BENCH_PKGS := . ./internal/bindings ./internal/csr ./internal/obs ./internal/wal

all: build test

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...

# Machine-readable benchmark snapshot: runs the root-package and
# binding-table suites and writes BENCH_<date>.json (name, ns/op,
# B/op, allocs/op per line).
benchjson:
	go test -bench . -benchmem -run '^$$' $(BENCH_PKGS) | go run ./cmd/benchjson

# Benchmark comparison workflow: `make benchbase` on the baseline
# commit writes bench.base.txt, then `make benchcmp` on the changed
# tree benchmarks again and compares (via benchstat when installed,
# plain side-by-side otherwise). BENCH narrows the benchmark regexp,
# e.g. BENCH=BenchmarkParallelMatch.
BENCH ?= .

benchbase:
	go test -bench='$(BENCH)' -benchmem -count=5 -run '^$$' $(BENCH_PKGS) | tee bench.base.txt

benchcmp:
	go test -bench='$(BENCH)' -benchmem -count=5 -run '^$$' $(BENCH_PKGS) | tee bench.head.txt
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat bench.base.txt bench.head.txt; \
	else \
		echo '--- benchstat not installed; raw baseline vs head ---'; \
		grep '^Benchmark' bench.base.txt; echo '---'; grep '^Benchmark' bench.head.txt; \
	fi

# Regression guard over the committed baseline: allocation regressions
# beyond 20% on the guarded hot-path benchmarks fail, timing
# regressions warn (allocs/op is machine-independent, ns/op is not).
benchguard:
	go test -bench='BenchmarkJoin|BenchmarkParallelMatch|BenchmarkFilteredScan|BenchmarkMutateThenRead|BenchmarkConcurrentRead|BenchmarkSnapshotDelta|BenchmarkWALAppend|BenchmarkWALGroupCommit' -benchmem -count=3 -run '^$$' $(BENCH_PKGS) | tee bench.head.txt
	go run ./cmd/benchguard -base bench.base.txt -head bench.head.txt

repro:
	go run ./cmd/gcore-repro
	go run ./cmd/gcore-repro -complexity

fuzz:
	go test -fuzz=FuzzParse -fuzztime=60s -run '^$$' .
	go test -fuzz=FuzzSnapshot -fuzztime=60s -run '^$$' .
	go test -fuzz=FuzzEval -fuzztime=60s -run '^$$' .

cover:
	go test -coverprofile=cover.out ./...
	go tool cover -func=cover.out | tail -1

fmt:
	gofmt -l .

vet:
	go vet ./...
