package gcore

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"gcore/internal/catalog"
	"gcore/internal/faultinject"
	"gcore/internal/ppg"
	"gcore/internal/table"
	"gcore/internal/wal"
)

// Durability. A DurableEngine is an Engine whose catalog survives
// crashes: every mutation — graph registrations (including the
// materialised graphs of GRAPH VIEW), table registrations, default
// changes, and element-level graph mutations — is appended to a
// write-ahead log in the data directory before it is applied, and
// checkpoints periodically compact the log into the SaveCatalog JSON
// snapshot layout plus the log watermark the snapshot was taken at.
// Recovery (OpenDurable on an existing directory) loads the last
// committed checkpoint and replays the log tail, restoring the exact
// committed state: a torn record tail is truncated, and replay never
// runs past a bad checksum.
//
// The data directory is the wal package's log directory:
//
//	<dir>/0000000000000001.wal ...   log segments
//	<dir>/ckpt-<seq>/                checkpoints (SaveCatalog layout
//	                                 plus watermark.json)
//	<dir>/CURRENT                    pointer to the live checkpoint

// Re-exported WAL types. SyncPolicy selects when appended records are
// fsynced; see WithSyncPolicy.
type (
	// SyncPolicy selects the WAL fsync policy.
	SyncPolicy = wal.SyncPolicy
	// WALStats are the log's lifetime counters (see DurableEngine.WALStats).
	WALStats = wal.Stats
	// WALCorruptError reports unrecoverable log or checkpoint damage
	// found during recovery; the damaged file is named (and, for
	// segments, quarantined with a .corrupt suffix).
	WALCorruptError = wal.CorruptError
)

// The fsync policies.
const (
	// SyncAlways fsyncs every record: a returned mutation is committed.
	SyncAlways = wal.SyncAlways
	// SyncInterval fsyncs at most once per interval (WithSyncInterval);
	// a crash can lose the records since the previous sync.
	SyncInterval = wal.SyncInterval
	// SyncOnCheckpoint fsyncs only at checkpoints and on Close.
	SyncOnCheckpoint = wal.SyncOnCheckpoint
)

// DurOption configures OpenDurable.
type DurOption func(*durConfig)

type durConfig struct {
	walOpts         wal.Options
	checkpointEvery int64
	engineOpts      []Option
}

// WithSyncPolicy selects the WAL fsync policy (default SyncAlways).
func WithSyncPolicy(p SyncPolicy) DurOption {
	return func(c *durConfig) { c.walOpts.Policy = p }
}

// WithSyncInterval sets the SyncInterval period (default 100ms).
func WithSyncInterval(d time.Duration) DurOption {
	return func(c *durConfig) { c.walOpts.Interval = d }
}

// WithGroupCommit batches concurrent SyncAlways appends into shared
// fsyncs (see wal.Options.GroupCommit): a commit leader fsyncs for
// every append written before it, multiplying SyncAlways throughput
// under concurrent writers without weakening the durability contract.
// window is how long the leader lingers for stragglers before
// fsyncing; zero batches purely opportunistically.
func WithGroupCommit(window time.Duration) DurOption {
	return func(c *durConfig) {
		c.walOpts.GroupCommit = true
		c.walOpts.GroupWindow = window
	}
}

// WithSegmentSize sets the log segment roll threshold (default 4 MiB).
func WithSegmentSize(n int64) DurOption {
	return func(c *durConfig) { c.walOpts.SegmentSize = n }
}

// WithCheckpointEvery makes the engine take a checkpoint automatically
// once n records have been appended since the last one (checked at
// statement boundaries, so one statement's mutations are never split
// across a checkpoint). Zero (the default) disables automatic
// checkpoints; Checkpoint can always be called explicitly.
func WithCheckpointEvery(n int64) DurOption {
	return func(c *durConfig) { c.checkpointEvery = n }
}

// WithEngineOptions passes construction options to the underlying
// Engine (parallelism, limits, plan cache size, ...).
func WithEngineOptions(opts ...Option) DurOption {
	return func(c *durConfig) { c.engineOpts = append(c.engineOpts, opts...) }
}

// DurableEngine is an Engine backed by a write-ahead log. All Engine
// methods are available; mutating ones append to the log before they
// apply, so any mutation that returns nil is recoverable (under
// SyncAlways, committed to disk). Close the engine to release the log.
//
// Mutate durable graphs only through the engine (queries, Register*,
// and the graphs' own tracked mutators, which are hooked); writing to
// an element's Props map in place bypasses the log — use the SetProps
// family instead.
type DurableEngine struct {
	*Engine
	log *wal.Log
	cfg durConfig

	// sinceCkpt counts records appended since the last checkpoint. It
	// is atomic because the hooks also fire when a caller mutates a
	// registered graph directly, outside the engine mutex.
	sinceCkpt atomic.Int64

	// poisoned is set when the in-memory state may be ahead of the log
	// (an unloggable mutation slipped through), making checkpoints and
	// further mutations unsafe until reopen.
	pmu      sync.Mutex
	poisoned error
}

func (d *DurableEngine) poison(err error) error {
	d.pmu.Lock()
	defer d.pmu.Unlock()
	if d.poisoned == nil {
		d.poisoned = err
	}
	return d.poisoned
}

func (d *DurableEngine) poisonedErr() error {
	d.pmu.Lock()
	defer d.pmu.Unlock()
	return d.poisoned
}

// walRecord is the logical log record: one catalog or graph mutation,
// encoded as JSON (the payload the wal package checksums and frames).
type walRecord struct {
	// Op is the mutation kind: register_graph, register_table,
	// set_default, add_node, add_edge, add_path, set_node_labels,
	// set_edge_labels, set_node_props, set_edge_props, set_path_props,
	// or graph_snapshot (a full-graph fallback for untracked writes).
	Op string `json:"op"`
	// Name is the graph (or table, or default) the record applies to.
	Name string `json:"name,omitempty"`
	// ID is the element identifier for element-level records.
	ID uint64 `json:"id,omitempty"`
	// Labels carries the new label set for set_*_labels records.
	Labels []string `json:"labels,omitempty"`
	// Data is the element / graph / table / properties document in the
	// interchange encoding.
	Data json.RawMessage `json:"data,omitempty"`
}

// OpenDurable opens (creating if needed) a durable engine rooted at
// dir. On an existing directory it recovers: the last committed
// checkpoint is loaded and the log tail replayed. Unrecoverable
// damage — corruption of committed records or checkpoints, as opposed
// to a torn tail — fails with a *WALCorruptError naming the
// quarantined file.
func OpenDurable(dir string, opts ...DurOption) (*DurableEngine, error) {
	var cfg durConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	log, err := wal.Open(dir, cfg.walOpts)
	if err != nil {
		return nil, err
	}
	d := &DurableEngine{Engine: NewEngine(cfg.engineOpts...), log: log, cfg: cfg}
	if err := d.recover(); err != nil {
		log.Close()
		return nil, err
	}
	d.installHooks()
	return d, nil
}

// recover restores the committed state: checkpoint, then log tail. It
// runs before hooks are installed, so nothing it applies is re-logged.
func (d *DurableEngine) recover() error {
	ckpt, wm, ok, err := d.log.CurrentCheckpoint()
	if err != nil {
		return err
	}
	if ok {
		if err := d.LoadCatalog(ckpt); err != nil {
			return fmt.Errorf("gcore: loading checkpoint %s: %w", ckpt, err)
		}
	}
	var from wal.Watermark
	if ok {
		from = wm
	}
	return d.log.ReplayFrom(from, func(payload []byte) error {
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("gcore: undecodable wal record: %w", err)
		}
		return d.applyWALRecord(rec)
	})
}

// applyWALRecord applies one logged mutation during recovery.
func (d *DurableEngine) applyWALRecord(rec walRecord) error {
	e := d.Engine
	e.mu.Lock()
	defer e.mu.Unlock()
	switch rec.Op {
	case "register_graph", "graph_snapshot":
		g := ppg.New("")
		if err := g.UnmarshalJSON(rec.Data); err != nil {
			return fmt.Errorf("gcore: replaying %s %s: %w", rec.Op, rec.Name, err)
		}
		if rec.Op == "graph_snapshot" {
			old, ok := e.cat.Graph(rec.Name)
			if !ok {
				return fmt.Errorf("gcore: replaying graph_snapshot for unknown graph %q", rec.Name)
			}
			if err := old.ReplaceWith(g); err != nil {
				return err
			}
			d.reserveGraphIDs(old)
			return nil
		}
		if g.Name() != rec.Name {
			return fmt.Errorf("gcore: replaying %s: record for %q carries graph %q", rec.Op, rec.Name, g.Name())
		}
		if err := e.cat.RegisterGraph(g); err != nil {
			return err
		}
		e.applyPendingDefault(g.Name())
		return nil
	case "register_table":
		t := table.New(rec.Name)
		if err := t.UnmarshalJSON(rec.Data); err != nil {
			return fmt.Errorf("gcore: replaying register_table %s: %w", rec.Name, err)
		}
		return e.cat.RegisterTable(t)
	case "set_default":
		return e.cat.SetDefault(rec.Name)
	}
	// Element-level records target a registered graph.
	g, ok := e.cat.Graph(rec.Name)
	if !ok {
		return fmt.Errorf("gcore: replaying %s for unknown graph %q", rec.Op, rec.Name)
	}
	switch rec.Op {
	case "add_node":
		n, err := ppg.DecodeNode(rec.Data)
		if err != nil {
			return err
		}
		if err := g.AddNode(n); err != nil {
			return err
		}
		e.cat.IDs().Reserve(uint64(n.ID))
		return nil
	case "add_edge":
		ed, err := ppg.DecodeEdge(rec.Data)
		if err != nil {
			return err
		}
		if err := g.AddEdge(ed); err != nil {
			return err
		}
		e.cat.IDs().Reserve(uint64(ed.ID))
		return nil
	case "add_path":
		p, err := ppg.DecodePath(rec.Data)
		if err != nil {
			return err
		}
		if err := g.AddPath(p); err != nil {
			return err
		}
		e.cat.IDs().Reserve(uint64(p.ID))
		return nil
	case "set_node_labels":
		return g.SetNodeLabels(NodeID(rec.ID), NewLabels(rec.Labels...))
	case "set_edge_labels":
		return g.SetEdgeLabels(EdgeID(rec.ID), NewLabels(rec.Labels...))
	case "set_node_props":
		p, err := ppg.DecodeProperties(rec.Data)
		if err != nil {
			return err
		}
		return g.SetNodeProps(NodeID(rec.ID), p)
	case "set_edge_props":
		p, err := ppg.DecodeProperties(rec.Data)
		if err != nil {
			return err
		}
		return g.SetEdgeProps(EdgeID(rec.ID), p)
	case "set_path_props":
		p, err := ppg.DecodeProperties(rec.Data)
		if err != nil {
			return err
		}
		return g.SetPathProps(PathID(rec.ID), p)
	}
	return fmt.Errorf("gcore: unknown wal record op %q", rec.Op)
}

func (d *DurableEngine) reserveGraphIDs(g *Graph) {
	ids := d.Engine.cat.IDs()
	for _, id := range g.NodeIDs() {
		ids.Reserve(uint64(id))
	}
	for _, id := range g.EdgeIDs() {
		ids.Reserve(uint64(id))
	}
	for _, id := range g.PathIDs() {
		ids.Reserve(uint64(id))
	}
}

// installHooks arms the write-ahead boundary: the catalog's change
// hook (which also hooks each graph as it is registered) and the
// mutation hook of every graph already recovered.
func (d *DurableEngine) installHooks() {
	d.Engine.cat.SetChangeHook(d.catalogChange)
	for _, name := range d.Engine.cat.GraphNames() {
		g, _ := d.Engine.cat.Graph(name)
		g.SetMutationHook(d.graphMutation)
	}
}

// catalogChange logs a catalog mutation before the catalog applies it.
// Newly registered graphs get the mutation hook here, so a graph is
// hooked from the instant it is durable — including the materialised
// graphs GRAPH VIEW registers directly against the catalog.
func (d *DurableEngine) catalogChange(ch catalog.Change) error {
	rec := walRecord{}
	switch ch.Op {
	case "register_graph":
		data, err := ch.Graph.MarshalJSON()
		if err != nil {
			return fmt.Errorf("gcore: encoding graph %s for wal: %w", ch.Graph.Name(), err)
		}
		rec = walRecord{Op: "register_graph", Name: ch.Graph.Name(), Data: data}
	case "register_table":
		data, err := ch.Table.MarshalJSON()
		if err != nil {
			return fmt.Errorf("gcore: encoding table %s for wal: %w", ch.Table.Name, err)
		}
		rec = walRecord{Op: "register_table", Name: ch.Table.Name, Data: data}
	case "set_default":
		rec = walRecord{Op: "set_default", Name: ch.Name}
	default:
		return fmt.Errorf("gcore: unknown catalog change %q", ch.Op)
	}
	if err := d.appendRecord(rec); err != nil {
		return err
	}
	if ch.Op == "register_graph" {
		ch.Graph.SetMutationHook(d.graphMutation)
	}
	return nil
}

// graphMutation logs one element-level mutation of a registered graph
// before the graph applies it.
func (d *DurableEngine) graphMutation(g *ppg.Graph, m ppg.Mutation) error {
	rec := walRecord{Name: g.Name()}
	switch m.Op {
	case ppg.MutAddNode:
		data, err := ppg.EncodeNode(m.Node)
		if err != nil {
			return err
		}
		rec.Op, rec.Data = "add_node", data
	case ppg.MutAddEdge:
		data, err := ppg.EncodeEdge(m.Edge)
		if err != nil {
			return err
		}
		rec.Op, rec.Data = "add_edge", data
	case ppg.MutAddPath:
		data, err := ppg.EncodePath(m.Path)
		if err != nil {
			return err
		}
		rec.Op, rec.Data = "add_path", data
	case ppg.MutSetNodeLabels:
		rec.Op, rec.ID, rec.Labels = "set_node_labels", uint64(m.NodeID), m.Labels
	case ppg.MutSetEdgeLabels:
		rec.Op, rec.ID, rec.Labels = "set_edge_labels", uint64(m.EdgeID), m.Labels
	case ppg.MutSetNodeProps:
		data, err := ppg.EncodeProperties(m.Props)
		if err != nil {
			return err
		}
		rec.Op, rec.ID, rec.Data = "set_node_props", uint64(m.NodeID), data
	case ppg.MutSetEdgeProps:
		data, err := ppg.EncodeProperties(m.Props)
		if err != nil {
			return err
		}
		rec.Op, rec.ID, rec.Data = "set_edge_props", uint64(m.EdgeID), data
	case ppg.MutSetPathProps:
		data, err := ppg.EncodeProperties(m.Props)
		if err != nil {
			return err
		}
		rec.Op, rec.ID, rec.Data = "set_path_props", uint64(m.PathID), data
	case ppg.MutReplace:
		// The whole-graph swap (UnmarshalJSON / ReplaceWith): log the
		// new contents. The record's Name is the graph's current
		// (registered) name; replay resolves the graph by it and swaps.
		data, err := m.Snapshot.MarshalJSON()
		if err != nil {
			return err
		}
		rec.Op, rec.Data = "graph_snapshot", data
	case ppg.MutTouchProps:
		// An untracked in-place property write: the state already
		// changed, so this record cannot be rejected. Log the full
		// graph; if even that fails, the log is behind memory — poison
		// the engine so the divergence cannot be checkpointed.
		data, err := g.MarshalJSON()
		if err == nil {
			err = d.appendRecord(walRecord{Op: "graph_snapshot", Name: g.Name(), Data: data})
		}
		if err != nil {
			return d.poison(fmt.Errorf("gcore: unloggable in-place property write on %s: %w", g.Name(), err))
		}
		return nil
	default:
		return fmt.Errorf("gcore: unknown graph mutation %v on %s", m.Op, g.Name())
	}
	return d.appendRecord(rec)
}

// appendRecord encodes and appends one logical record. The caller is
// inside a mutation (holding e.mu via the mutating entry point), so
// this must not checkpoint; it only counts.
func (d *DurableEngine) appendRecord(rec walRecord) error {
	if err := d.poisonedErr(); err != nil {
		return err
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := d.log.Append(payload); err != nil {
		return err
	}
	d.sinceCkpt.Add(1)
	return nil
}

// Checkpoint compacts the log now: the catalog is materialised in the
// SaveCatalog layout into a staging directory and committed with the
// current log watermark; superseded segments and checkpoints are
// deleted. Recovery cost is proportional to the records appended
// since the last checkpoint.
func (d *DurableEngine) Checkpoint() error {
	d.Engine.mu.Lock()
	defer d.Engine.mu.Unlock()
	return d.checkpointLocked()
}

func (d *DurableEngine) checkpointLocked() error {
	if err := d.poisonedErr(); err != nil {
		return err
	}
	stage, err := d.log.BeginCheckpoint()
	if err != nil {
		return err
	}
	if err := faultinject.Check(faultinject.SiteWALCheckpointWrite); err != nil {
		os.RemoveAll(stage)
		return fmt.Errorf("gcore: staging checkpoint: %w", err)
	}
	if err := d.Engine.saveCatalogLocked(stage); err != nil {
		os.RemoveAll(stage)
		return err
	}
	wm := d.log.Watermark()
	if err := d.log.CommitCheckpoint(stage, wm); err != nil {
		os.RemoveAll(stage)
		return err
	}
	d.sinceCkpt.Store(0)
	return nil
}

// maybeCheckpoint runs at statement boundaries (never mid-mutation)
// and checkpoints when the WithCheckpointEvery budget is spent.
func (d *DurableEngine) maybeCheckpoint() {
	if d.cfg.checkpointEvery <= 0 || d.sinceCkpt.Load() < d.cfg.checkpointEvery {
		return
	}
	d.Engine.mu.Lock()
	defer d.Engine.mu.Unlock()
	// Automatic checkpoints are best-effort: a failure leaves the log
	// as the recovery source and the next boundary retries.
	_ = d.checkpointLocked()
}

// Sync forces an fsync of the log tail regardless of policy: every
// mutation appended so far is committed when it returns.
func (d *DurableEngine) Sync() error { return d.log.Sync() }

// WALStats returns the write-ahead log's lifetime counters.
func (d *DurableEngine) WALStats() WALStats { return d.log.Stats() }

// Metrics is the engine metrics snapshot with the WAL counters filled.
func (d *DurableEngine) Metrics() Metrics {
	m := d.Engine.Metrics()
	s := d.log.Stats()
	m.WALAppends = s.Appends
	m.WALAppendedBytes = s.AppendedBytes
	m.WALBatched = s.Batched
	m.WALSyncs = s.Syncs
	m.WALRolls = s.Rolls
	m.WALCheckpoints = s.Checkpoints
	m.WALReplayed = s.Replayed
	m.WALTornTruncated = s.TornTruncated
	return m
}

// Close syncs and closes the log (committing any unsynced tail) and
// detaches the durability hooks. The embedded Engine remains usable
// in memory; further mutations are no longer logged.
func (d *DurableEngine) Close() error {
	d.Engine.mu.Lock()
	d.Engine.cat.SetChangeHook(nil)
	for _, name := range d.Engine.cat.GraphNames() {
		g, _ := d.Engine.cat.Graph(name)
		g.SetMutationHook(nil)
	}
	d.Engine.mu.Unlock()
	return d.log.Close()
}

// The mutating and statement entry points, overridden to drive
// automatic checkpoints at safe boundaries. Logging itself happens in
// the hooks, not here.

// Eval parses and evaluates one statement (see Engine.Eval).
func (d *DurableEngine) Eval(src string) (*Result, error) {
	res, err := d.Engine.Eval(src)
	d.maybeCheckpoint()
	return res, err
}

// EvalContext parses and evaluates one statement under ctx (see
// Engine.EvalContext).
func (d *DurableEngine) EvalContext(ctx context.Context, src string) (*Result, error) {
	res, err := d.Engine.EvalContext(ctx, src)
	d.maybeCheckpoint()
	return res, err
}

// EvalStatementContext evaluates an already-parsed statement under
// ctx (see Engine.EvalStatementContext).
func (d *DurableEngine) EvalStatementContext(ctx context.Context, stmt *Statement) (*Result, error) {
	res, err := d.Engine.EvalStatementContext(ctx, stmt)
	d.maybeCheckpoint()
	return res, err
}

// ExplainAnalyzeContext executes the statement and renders the
// annotated plan (see Engine.ExplainAnalyzeContext); its execution
// leg is a statement like any other.
func (d *DurableEngine) ExplainAnalyzeContext(ctx context.Context, src string) (string, error) {
	plan, err := d.Engine.ExplainAnalyzeContext(ctx, src)
	d.maybeCheckpoint()
	return plan, err
}

// EvalScript evaluates a script (see Engine.EvalScript).
func (d *DurableEngine) EvalScript(src string) ([]*Result, error) {
	res, err := d.Engine.EvalScript(src)
	d.maybeCheckpoint()
	return res, err
}

// EvalScriptContext evaluates a script under ctx (see
// Engine.EvalScriptContext).
func (d *DurableEngine) EvalScriptContext(ctx context.Context, src string) ([]*Result, error) {
	res, err := d.Engine.EvalScriptContext(ctx, src)
	d.maybeCheckpoint()
	return res, err
}

// Prepare validates one statement for repeated execution (see
// Engine.Prepare); each execution drives automatic checkpoints at its
// boundary.
func (d *DurableEngine) Prepare(src string) (*Prepared, error) {
	p, err := d.Engine.Prepare(src)
	if err != nil {
		return nil, err
	}
	p.after = d.maybeCheckpoint
	return p, nil
}

// MutateGraph mutates a registered graph under the writer lock (see
// Engine.MutateGraph); every tracked mutation fn performs is logged
// before it applies.
func (d *DurableEngine) MutateGraph(name string, fn func(*Graph) error) error {
	err := d.Engine.MutateGraph(name, fn)
	d.maybeCheckpoint()
	return err
}

// RegisterGraph registers a graph durably (see Engine.RegisterGraph).
func (d *DurableEngine) RegisterGraph(g *Graph) error {
	err := d.Engine.RegisterGraph(g)
	d.maybeCheckpoint()
	return err
}

// RegisterTable registers a table durably (see Engine.RegisterTable).
func (d *DurableEngine) RegisterTable(t *Table) error {
	err := d.Engine.RegisterTable(t)
	d.maybeCheckpoint()
	return err
}

// LoadGraphJSON loads and registers a graph durably (see
// Engine.LoadGraphJSON).
func (d *DurableEngine) LoadGraphJSON(r io.Reader) (*Graph, error) {
	g, err := d.Engine.LoadGraphJSON(r)
	d.maybeCheckpoint()
	return g, err
}
