package parser

import (
	"strings"

	"gcore/internal/ast"
	"gcore/internal/lexer"
	"gcore/internal/value"
)

// Expression grammar, loosest to tightest:
//
//	expr   := or
//	or     := and (OR and)*
//	and    := not (AND not)*
//	not    := NOT not | cmp
//	cmp    := add ((= | <> | < | <= | > | >= | IN | SUBSET) add)?
//	add    := mul ((+|-) mul)*
//	mul    := unary ((*|/|%) unary)*
//	unary  := - unary | postfix
//	postfix:= primary ([expr] | .key)*
//	primary:= literal | CASE | EXISTS(q) | f(args) | var | (…)
//
// A parenthesis in primary position may open a graph pattern (the
// implicit existential predicate of §3), a label test (n:Person), or
// a grouped expression; parsePrimaryParen disambiguates with
// backtracking.

// ParseExpr parses a standalone expression (used by tests and tools).
func ParseExpr(src string) (ast.Expr, error) {
	toks, err := lexer.Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind != lexer.EOF {
		return nil, p.errf("unexpected %s after expression", p.cur())
	}
	return e, nil
}

func (p *parser) parseExpr() (ast.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (ast.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.cur().IsKeyword("OR") {
		pos := p.next().Pos
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &ast.Binary{Op: ast.OpOr, L: l, R: r, P: pos}
	}
	return l, nil
}

func (p *parser) parseAnd() (ast.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.cur().IsKeyword("AND") {
		pos := p.next().Pos
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &ast.Binary{Op: ast.OpAnd, L: l, R: r, P: pos}
	}
	return l, nil
}

func (p *parser) parseNot() (ast.Expr, error) {
	if p.cur().IsKeyword("NOT") {
		pos := p.next().Pos
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &ast.Unary{Op: ast.OpNot, X: x, P: pos}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (ast.Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	var op ast.BinaryOp
	switch {
	case p.cur().Is("="):
		op = ast.OpEq
	case p.cur().Is("<>"):
		op = ast.OpNeq
	case p.cur().Is("<"):
		op = ast.OpLt
	case p.cur().Is("<="):
		op = ast.OpLe
	case p.cur().Is(">"):
		op = ast.OpGt
	case p.cur().Is(">="):
		op = ast.OpGe
	case p.cur().IsKeyword("IN"):
		op = ast.OpIn
	case p.cur().IsKeyword("SUBSET"):
		op = ast.OpSubset
	default:
		return l, nil
	}
	pos := p.next().Pos
	if op == ast.OpSubset && p.cur().Kind == lexer.Ident && strings.EqualFold(p.cur().Text, "of") {
		p.next() // tolerate SUBSET OF
	}
	r, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return &ast.Binary{Op: op, L: l, R: r, P: pos}, nil
}

func (p *parser) parseAdditive() (ast.Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op ast.BinaryOp
		switch {
		case p.cur().Is("+"):
			op = ast.OpAdd
		case p.cur().Is("-"):
			op = ast.OpSub
		default:
			return l, nil
		}
		pos := p.next().Pos
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &ast.Binary{Op: op, L: l, R: r, P: pos}
	}
}

func (p *parser) parseMultiplicative() (ast.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op ast.BinaryOp
		switch {
		case p.cur().Is("*"):
			op = ast.OpMul
		case p.cur().Is("/"):
			op = ast.OpDiv
		case p.cur().Is("%"):
			op = ast.OpMod
		default:
			return l, nil
		}
		pos := p.next().Pos
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &ast.Binary{Op: op, L: l, R: r, P: pos}
	}
}

func (p *parser) parseUnary() (ast.Expr, error) {
	if p.cur().Is("-") {
		pos := p.next().Pos
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ast.Unary{Op: ast.OpNeg, X: x, P: pos}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (ast.Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.cur().Is("["):
			pos := p.next().Pos
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			e = &ast.Index{Base: e, Idx: idx, P: pos}
		case p.cur().Is(".") && p.peek().Kind == lexer.Ident:
			v, ok := e.(*ast.VarRef)
			if !ok {
				return nil, p.errf("property access requires a variable on the left of '.'")
			}
			pos := p.next().Pos
			key := p.next().Text
			e = &ast.PropAccess{Var: v.Name, Key: key, P: pos}
		default:
			return e, nil
		}
	}
}

func (p *parser) parsePrimary() (ast.Expr, error) {
	tok := p.cur()
	switch {
	case tok.Kind == lexer.Int || tok.Kind == lexer.Float || tok.Kind == lexer.String:
		p.next()
		v, err := literalFromToken(tok)
		if err != nil {
			return nil, &Error{Pos: tok.Pos, Msg: err.Error()}
		}
		return &ast.Literal{Val: v, P: tok.Pos}, nil
	case tok.IsKeyword("TRUE"):
		p.next()
		return &ast.Literal{Val: value.True, P: tok.Pos}, nil
	case tok.IsKeyword("FALSE"):
		p.next()
		return &ast.Literal{Val: value.False, P: tok.Pos}, nil
	case tok.IsKeyword("NULL"):
		p.next()
		return &ast.Literal{Val: value.Null, P: tok.Pos}, nil
	case tok.IsKeyword("DATE"):
		p.next()
		if p.cur().Kind != lexer.String {
			return nil, p.errf("expected date string after DATE, got %s", p.cur())
		}
		d, err := value.ParseDate(p.next().Text)
		if err != nil {
			return nil, &Error{Pos: tok.Pos, Msg: err.Error()}
		}
		return &ast.Literal{Val: d, P: tok.Pos}, nil
	case tok.IsKeyword("COST") && p.peek().Is("("):
		// cost(p) is a built-in function whose name collides with the
		// COST keyword of path patterns and PATH clauses.
		p.next()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &ast.FuncCall{Name: "cost", Args: []ast.Expr{arg}, P: tok.Pos}, nil
	case tok.IsKeyword("CASE"):
		return p.parseCase()
	case tok.IsKeyword("EXISTS"):
		p.next()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		q, err := p.parseFullQuery()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &ast.Exists{Query: q, P: tok.Pos}, nil
	case tok.Kind == lexer.Ident && p.peek().Is("("):
		return p.parseFuncCall()
	case tok.Kind == lexer.Param:
		p.next()
		return &ast.Param{Name: tok.Text, P: tok.Pos}, nil
	case tok.Kind == lexer.Ident:
		p.next()
		return &ast.VarRef{Name: tok.Text, P: tok.Pos}, nil
	case tok.Is("("):
		return p.parsePrimaryParen()
	}
	return nil, p.errf("expected expression, got %s", p.cur())
}

func (p *parser) parseFuncCall() (ast.Expr, error) {
	tok := p.next() // name
	name := tok.Text
	if !validFuncName(name) {
		return nil, &Error{Pos: tok.Pos, Msg: "unknown function " + name}
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	fc := &ast.FuncCall{Name: strings.ToLower(name), P: tok.Pos}
	if p.cur().Is("*") {
		p.next()
		fc.Star = true
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return fc, nil
	}
	if p.cur().Is(")") {
		p.next()
		return fc, nil
	}
	for {
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fc.Args = append(fc.Args, arg)
		if p.cur().Is(",") {
			p.next()
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return fc, nil
}

func (p *parser) parseCase() (ast.Expr, error) {
	c := &ast.Case{P: p.cur().Pos}
	p.next() // CASE
	if !p.cur().IsKeyword("WHEN") {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = op
	}
	for p.cur().IsKeyword("WHEN") {
		p.next()
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, ast.CaseWhen{Cond: cond, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, p.errf("CASE needs at least one WHEN arm")
	}
	if p.cur().IsKeyword("ELSE") {
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return c, nil
}

// parsePrimaryParen disambiguates '(' in expression position:
//
//  1. a graph pattern with at least one link → implicit EXISTS
//     predicate ((n)-[:isLocatedIn]->()…),
//  2. a single node pattern with labels → label test ((n:Person)),
//  3. otherwise → parenthesised sub-expression.
func (p *parser) parsePrimaryParen() (ast.Expr, error) {
	start := p.cur().Pos
	mark := p.save()
	gp, err := p.parseGraphPattern(false)
	if err == nil {
		if len(gp.Links) > 0 {
			return &ast.PatternPred{Pattern: gp, P: start}, nil
		}
		n := gp.Nodes[0]
		if n.Var != "" && len(n.Labels) > 0 && len(n.Props) == 0 && !n.Copy {
			var labels []string
			for _, disj := range n.Labels {
				labels = append(labels, disj...)
			}
			return &ast.LabelTest{Var: n.Var, Labels: labels, P: start}, nil
		}
		if n.Var != "" && len(n.Labels) == 0 && len(n.Props) == 0 && !n.Copy {
			// Plain (x): a grouped variable reference.
			return &ast.VarRef{Name: n.Var, P: start}, nil
		}
		// A lone node pattern with property filters is an existential
		// node predicate.
		return &ast.PatternPred{Pattern: gp, P: start}, nil
	}
	p.restore(mark)
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return e, nil
}
