package parser

import (
	"strings"
	"testing"

	"gcore/internal/value"
)

func TestParseParamExpr(t *testing.T) {
	stmt, err := Parse(`CONSTRUCT (n) MATCH (n:Person) WHERE n.age > $min AND n.name = $name`)
	if err != nil {
		t.Fatal(err)
	}
	text := stmt.String()
	for _, want := range []string{"$min", "$name"} {
		if !strings.Contains(text, want) {
			t.Errorf("printed statement lost %s: %s", want, text)
		}
	}
	// A reparse of the printed form round-trips.
	if _, err := Parse(text); err != nil {
		t.Fatalf("reparse: %v", err)
	}
}

func TestParamNames(t *testing.T) {
	names := ParamNames(`SELECT n.x MATCH (n) WHERE n.a = $b AND n.c = $a OR n.d = $b`)
	if len(names) != 2 || names[0] != "b" || names[1] != "a" {
		t.Fatalf("names = %v", names)
	}
	if names := ParamNames(`MATCH (n)`); names != nil {
		t.Fatalf("no-param names = %v", names)
	}
	if names := ParamNames(`MATCH (n) WHERE $`); names != nil {
		t.Fatalf("lex-error names = %v", names)
	}
}

func TestLiteralText(t *testing.T) {
	date, err := value.ParseDate("1/12/2014")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		v    value.Value
		want string
	}{
		{value.Null, "NULL"},
		{value.True, "TRUE"},
		{value.Int(-42), "-42"},
		{value.Float(1.5), "1.5"},
		{value.Float(3), "3.0"}, // must stay a float literal
		{value.Str("it's"), "'it''s'"},
		{date, "DATE '1/12/2014'"},
	}
	for _, tc := range cases {
		got, err := LiteralText(tc.v)
		if err != nil {
			t.Errorf("LiteralText(%v): %v", tc.v, err)
			continue
		}
		if got != tc.want {
			t.Errorf("LiteralText(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
	if _, err := LiteralText(value.List(value.Int(1))); err == nil {
		t.Error("list literal text succeeded")
	}
}

func TestInlineParams(t *testing.T) {
	src := `CONSTRUCT (n) MATCH (n:Person) WHERE n.age > $min AND n.name = $who`
	out, err := InlineParams(src, map[string]value.Value{
		"min": value.Int(30),
		"who": value.Str("Alice"),
	})
	if err != nil {
		t.Fatal(err)
	}
	want := `CONSTRUCT (n) MATCH (n:Person) WHERE n.age > (30) AND n.name = ('Alice')`
	if out != want {
		t.Fatalf("inlined = %q\nwant      %q", out, want)
	}
	if _, err := Parse(out); err != nil {
		t.Fatalf("inlined text does not parse: %v", err)
	}

	// Unbound parameters are named in the error with their position.
	_, err = InlineParams(src, map[string]value.Value{"min": value.Int(1)})
	if err == nil || !strings.Contains(err.Error(), "$who") {
		t.Fatalf("unbound error = %v", err)
	}

	// A statement with no parameters passes through untouched.
	out, err = InlineParams(`MATCH (n)`, nil)
	if err != nil || out != `MATCH (n)` {
		t.Fatalf("passthrough = %q, %v", out, err)
	}
}

func TestSplitStatements(t *testing.T) {
	src := "CONSTRUCT (n) MATCH (n);\nSELECT n.x MATCH (n);\n"
	pieces, err := SplitStatements(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(pieces) != 2 {
		t.Fatalf("pieces = %d: %q", len(pieces), pieces)
	}
	// Each piece parses on its own, and positions match ParseAll's.
	all, err := ParseAll(src)
	if err != nil {
		t.Fatal(err)
	}
	for i, piece := range pieces {
		stmt, err := Parse(piece)
		if err != nil {
			t.Fatalf("piece %d: %v", i, err)
		}
		if stmt.Pos() != all[i].Pos() {
			t.Errorf("piece %d position = %v, want %v", i, stmt.Pos(), all[i].Pos())
		}
	}

	// No trailing semicolon: the last piece is still returned.
	pieces, err = SplitStatements("MATCH (n)")
	if err != nil || len(pieces) != 1 {
		t.Fatalf("no-semi pieces = %v, %v", pieces, err)
	}
	// Empty and comment-only sources split to nothing.
	for _, src := range []string{"", "  \n", "# just a comment\n"} {
		pieces, err := SplitStatements(src)
		if err != nil || len(pieces) != 0 {
			t.Fatalf("SplitStatements(%q) = %v, %v", src, pieces, err)
		}
	}
}

func TestParamInSelectAndConstruct(t *testing.T) {
	// Parameters are ordinary expressions: usable in SELECT lists and
	// property assignments, not just WHERE.
	for _, src := range []string{
		`SELECT n.name AS name, $tag AS tag MATCH (n)`,
		`CONSTRUCT (n {score := $s}) MATCH (n)`,
	} {
		stmt, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		if !strings.Contains(stmt.String(), "$") {
			t.Errorf("printed form of %q lost the parameter: %s", src, stmt.String())
		}
	}
}
