package parser

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"gcore/internal/ast"
	"gcore/internal/lexer"
	"gcore/internal/value"
)

// Prepared-statement support at the source-text level: collecting the
// $param names of a statement, inlining bindings as literal text (the
// uncached evaluation fallback and the differential oracle for the
// cached path), and splitting a script into per-statement sources so
// each statement can be cached under its own key.

// ParamNames returns the distinct $param names of src in first-use
// order. A lex error yields nil: the caller's parse will report it.
func ParamNames(src string) []string {
	toks, err := lexer.Lex(src)
	if err != nil {
		return nil
	}
	var names []string
	seen := map[string]bool{}
	for _, t := range toks {
		if t.Kind == lexer.Param && !seen[t.Text] {
			seen[t.Text] = true
			names = append(names, t.Text)
		}
	}
	return names
}

// LiteralText renders a scalar value as G-CORE literal syntax that
// lexes and parses back to the same value. Collections and
// graph-object references have no literal form and are rejected.
func LiteralText(v value.Value) (string, error) {
	switch v.Kind() {
	case value.KindNull:
		return "NULL", nil
	case value.KindFloat:
		f, _ := v.AsFloat()
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return "", fmt.Errorf("float parameter %v has no literal form", f)
		}
		s := strconv.FormatFloat(f, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0" // keep the literal a float, not an integer
		}
		return s, nil
	case value.KindBool, value.KindInt, value.KindString, value.KindDate:
		return ast.ExprString(&ast.Literal{Val: v}), nil
	}
	return "", fmt.Errorf("parameter of kind %s has no literal form", v.Kind())
}

// InlineParams replaces every $name token of src with the literal text
// of its binding, preserving the surrounding source byte-for-byte.
// Unbound parameters are an error; unused bindings are ignored (the
// evaluator treats extra bindings the same way).
func InlineParams(src string, params map[string]value.Value) (string, error) {
	toks, err := lexer.Lex(src)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	last := 0
	for _, t := range toks {
		if t.Kind != lexer.Param {
			continue
		}
		v, ok := params[t.Text]
		if !ok {
			return "", fmt.Errorf("unbound parameter $%s at %s", t.Text, t.Pos)
		}
		lit, err := LiteralText(v)
		if err != nil {
			return "", fmt.Errorf("parameter $%s: %v", t.Text, err)
		}
		sb.WriteString(src[last:t.Off])
		// Parenthesise so operator precedence around the splice point
		// is unchanged (e.g. -$x with $x = -1).
		sb.WriteString("(" + lit + ")")
		last = t.End
	}
	sb.WriteString(src[last:])
	return sb.String(), nil
}

// SplitStatements splits a script on its top-level semicolons into
// per-statement source strings. Each piece keeps the source positions
// of the original script: everything before the piece is blanked to
// whitespace (newlines preserved), so a parse or evaluation error in
// piece i reports the same line:col as ParseAll over the whole script.
// A trailing semicolon yields no empty final piece.
func SplitStatements(src string) ([]string, error) {
	toks, err := lexer.Lex(src)
	if err != nil {
		return nil, err
	}
	blank := func(n int) string {
		b := []byte(src[:n])
		for i, c := range b {
			if c != '\n' {
				b[i] = ' '
			}
		}
		return string(b)
	}
	var pieces []string
	start := 0
	lastTok := start // end of the last real token seen in the current piece
	for _, t := range toks {
		switch {
		case t.Kind == lexer.EOF:
			if lastTok > start { // a final piece with content
				pieces = append(pieces, blank(start)+src[start:lastTok])
			}
			return pieces, nil
		case t.Is(";"):
			pieces = append(pieces, blank(start)+src[start:t.Off])
			start = t.End
			lastTok = start
		default:
			lastTok = t.End
		}
	}
	return pieces, nil
}
