package parser

import (
	"sort"
	"strings"
	"testing"

	"gcore/internal/ast"
)

// TestParseAllPaperQueries parses every numbered example of the paper
// and round-trips it through the canonical printer.
func TestParseAllPaperQueries(t *testing.T) {
	keys := make([]string, 0, len(PaperQueries))
	for k := range PaperQueries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		src := PaperQueries[k]
		t.Run(k, func(t *testing.T) {
			stmt, err := Parse(src)
			if err != nil {
				t.Fatalf("parse: %v\nquery:\n%s", err, src)
			}
			// Round trip: the canonical rendering must parse to the
			// same canonical rendering.
			printed := stmt.String()
			again, err := Parse(printed)
			if err != nil {
				t.Fatalf("reparse of printed form: %v\nprinted:\n%s", err, printed)
			}
			if again.String() != printed {
				t.Fatalf("round trip unstable:\nfirst:\n%s\nsecond:\n%s", printed, again.String())
			}
		})
	}
}

func mustParse(t *testing.T, src string) *ast.Statement {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return stmt
}

func TestParseSimpleConstructMatch(t *testing.T) {
	stmt := mustParse(t, PaperQueries["L01"])
	bq, ok := stmt.Query.(*ast.BasicQuery)
	if !ok {
		t.Fatalf("query type %T", stmt.Query)
	}
	if len(bq.Construct.Items) != 1 || bq.Construct.Items[0].Pattern == nil {
		t.Fatal("construct shape wrong")
	}
	m := bq.Match
	if len(m.Patterns) != 1 {
		t.Fatal("match shape wrong")
	}
	lp := m.Patterns[0]
	if lp.OnGraph != "social_graph" {
		t.Errorf("ON = %q", lp.OnGraph)
	}
	n := lp.Pattern.Nodes[0]
	if n.Var != "n" || !hasLabel(n.Labels, "Person") {
		t.Errorf("node = %+v", n)
	}
	if m.Where == nil {
		t.Error("WHERE lost")
	}
}

func hasLabel(ls ast.LabelSpec, name string) bool {
	for _, disj := range ls {
		for _, l := range disj {
			if l == name {
				return true
			}
		}
	}
	return false
}

func TestParseSetOpQuery(t *testing.T) {
	stmt := mustParse(t, PaperQueries["L05"])
	sq, ok := stmt.Query.(*ast.SetQuery)
	if !ok {
		t.Fatalf("top query is %T, want SetQuery", stmt.Query)
	}
	if sq.Op != ast.SetUnion {
		t.Errorf("op = %v", sq.Op)
	}
	right, ok := sq.Right.(*ast.BasicQuery)
	if !ok || right.Construct.Items[0].GraphName != "social_graph" {
		t.Error("UNION graph-name shorthand lost")
	}
	left := sq.Left.(*ast.BasicQuery)
	if len(left.Match.Patterns) != 2 {
		t.Error("two located patterns expected")
	}
	if left.Match.Patterns[0].OnGraph != "company_graph" {
		t.Error("per-pattern ON lost")
	}
	// The construct pattern (c)<-[:worksAt]-(n) has an inward edge.
	gp := left.Construct.Items[0].Pattern
	e := gp.Links[0].(*ast.EdgePattern)
	if e.Dir != ast.DirIn || !hasLabel(e.Labels, "worksAt") {
		t.Errorf("edge = %+v", e)
	}
}

func TestParsePropertyBinding(t *testing.T) {
	stmt := mustParse(t, PaperQueries["L15"])
	bq := stmt.Query.(*ast.SetQuery).Left.(*ast.BasicQuery)
	n := bq.Match.Patterns[1].Pattern.Nodes[0]
	if len(n.Props) != 1 {
		t.Fatalf("props = %+v", n.Props)
	}
	p := n.Props[0]
	if p.Mode != ast.PropBind || p.Key != "employer" || p.Var != "e" {
		t.Errorf("prop = %+v", p)
	}
}

func TestParseGroupConstruct(t *testing.T) {
	stmt := mustParse(t, PaperQueries["L20"])
	bq := stmt.Query.(*ast.BasicQuery)
	if bq.Construct.Items[0].GraphName != "social_graph" {
		t.Error("graph-name construct item lost")
	}
	gp := bq.Construct.Items[1].Pattern
	x := gp.Nodes[0]
	if x.Var != "x" || len(x.Group) != 1 {
		t.Fatalf("group node = %+v", x)
	}
	if v, ok := x.Group[0].(*ast.VarRef); !ok || v.Name != "e" {
		t.Errorf("group expr = %+v", x.Group[0])
	}
	if len(x.Props) != 1 || x.Props[0].Mode != ast.PropAssign {
		t.Errorf("assign prop = %+v", x.Props)
	}
}

func TestParsePathPatterns(t *testing.T) {
	stmt := mustParse(t, PaperQueries["L23"])
	bq := stmt.Query.(*ast.BasicQuery)

	// CONSTRUCT side: stored path with label and assignment.
	cp := bq.Construct.Items[0].Pattern.Links[0].(*ast.PathPattern)
	if !cp.Stored || cp.Var != "p" || !hasLabel(cp.Labels, "localPeople") {
		t.Errorf("construct path = %+v", cp)
	}
	if len(cp.Props) != 1 || cp.Props[0].Key != "distance" || cp.Props[0].Mode != ast.PropAssign {
		t.Errorf("construct path props = %+v", cp.Props)
	}

	// MATCH side: 3 SHORTEST with COST.
	mp := bq.Match.Patterns[0].Pattern.Links[0].(*ast.PathPattern)
	if mp.K != 3 || mp.Mode != ast.PathShortest || mp.Var != "p" || mp.CostVar != "c" {
		t.Errorf("match path = %+v", mp)
	}
	if mp.Regex == nil || mp.Regex.String() != "(:knows)*" {
		t.Errorf("regex = %v", mp.Regex)
	}
	// WHERE contains label tests and an existential pattern.
	found := false
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		switch x := e.(type) {
		case *ast.Binary:
			walk(x.L)
			walk(x.R)
		case *ast.PatternPred:
			found = true
		}
	}
	walk(bq.Match.Where)
	if !found {
		t.Error("implicit existential pattern not recognised in WHERE")
	}
}

func TestParseReachabilityAndAll(t *testing.T) {
	r := mustParse(t, PaperQueries["L28"]).Query.(*ast.BasicQuery)
	rp := r.Match.Patterns[0].Pattern.Links[0].(*ast.PathPattern)
	if rp.Mode != ast.PathReach || rp.Var != "" {
		t.Errorf("reach path = %+v", rp)
	}
	a := mustParse(t, PaperQueries["L32"]).Query.(*ast.BasicQuery)
	ap := a.Match.Patterns[0].Pattern.Links[0].(*ast.PathPattern)
	if ap.Mode != ast.PathAll || ap.Var != "p" {
		t.Errorf("all path = %+v", ap)
	}
	// The construct side projects p without storing: -/p/->.
	cp := a.Construct.Items[0].Pattern.Links[0].(*ast.PathPattern)
	if cp.Stored || cp.Var != "p" || cp.Regex != nil {
		t.Errorf("projection path = %+v", cp)
	}
}

func TestParseViewWithOptional(t *testing.T) {
	stmt := mustParse(t, PaperQueries["L39"])
	if len(stmt.Graphs) != 1 || !stmt.Graphs[0].View || stmt.Graphs[0].Name != "social_graph1" {
		t.Fatalf("graph clause = %+v", stmt.Graphs)
	}
	body := stmt.Graphs[0].Body
	bq := body.Query.(*ast.BasicQuery)
	if len(bq.Match.Optionals) != 1 {
		t.Fatalf("optionals = %d", len(bq.Match.Optionals))
	}
	ob := bq.Match.Optionals[0]
	if len(ob.Patterns) != 3 || ob.Where == nil {
		t.Errorf("optional block = %+v", ob)
	}
	// Disjunctive label: msg1:Post|Comment.
	msg1 := ob.Patterns[0].Pattern.Nodes[1]
	if len(msg1.Labels) != 1 || len(msg1.Labels[0]) != 2 {
		t.Errorf("disjunctive label = %+v", msg1.Labels)
	}
	// SET sub-clause with aggregate.
	sets := bq.Construct.Items[1].Sets
	if len(sets) != 1 || sets[0].Var != "e" || sets[0].Key != "nr_messages" {
		t.Fatalf("sets = %+v", sets)
	}
	if fc, ok := sets[0].Expr.(*ast.FuncCall); !ok || !fc.Star || fc.Name != "count" {
		t.Errorf("aggregate = %+v", sets[0].Expr)
	}
}

func TestParsePathClauseAndWeighted(t *testing.T) {
	stmt := mustParse(t, PaperQueries["L57"])
	if len(stmt.Graphs) != 1 {
		t.Fatal("view lost")
	}
	body := stmt.Graphs[0].Body
	if len(body.Paths) != 1 {
		t.Fatal("PATH clause lost")
	}
	pc := body.Paths[0]
	if pc.Name != "wKnows" || pc.Where == nil || pc.Cost == nil {
		t.Fatalf("path clause = %+v", pc)
	}
	bq := body.Query.(*ast.BasicQuery)
	mp := bq.Match.Patterns[0].Pattern.Links[0].(*ast.PathPattern)
	if mp.Regex == nil || mp.Regex.String() != "(~wKnows)*" {
		t.Errorf("weighted regex = %v", mp.Regex)
	}
	if len(mp.Regex.Views()) != 1 || mp.Regex.Views()[0] != "wKnows" {
		t.Errorf("views = %v", mp.Regex.Views())
	}
	if bq.Match.Patterns[0].OnGraph != "social_graph1" {
		t.Errorf("ON = %q", bq.Match.Patterns[0].OnGraph)
	}
}

func TestParseStoredPathQuery(t *testing.T) {
	stmt := mustParse(t, PaperQueries["L67"])
	bq := stmt.Query.(*ast.BasicQuery)
	item := bq.Construct.Items[0]
	if item.When == nil {
		t.Error("WHEN lost")
	}
	ep := item.Pattern.Links[0].(*ast.EdgePattern)
	if ep.Var != "e" || !hasLabel(ep.Labels, "wagnerFriend") {
		t.Errorf("edge = %+v", ep)
	}
	mp := bq.Match.Patterns[0].Pattern.Links[0].(*ast.PathPattern)
	if !mp.Stored || mp.Var != "p" || !hasLabel(mp.Labels, "toWagner") {
		t.Errorf("stored path = %+v", mp)
	}
	// WHERE n = nodes(p)[1]
	b := bq.Match.Where.(*ast.Binary)
	if b.Op != ast.OpEq {
		t.Errorf("where op = %v", b.Op)
	}
	if _, ok := b.R.(*ast.Index); !ok {
		t.Errorf("index expr = %T", b.R)
	}
}

func TestParseSelect(t *testing.T) {
	stmt := mustParse(t, PaperQueries["L72"])
	bq := stmt.Query.(*ast.BasicQuery)
	if bq.Select == nil || bq.Construct != nil {
		t.Fatal("SELECT shape wrong")
	}
	if len(bq.Select.Items) != 1 || bq.Select.Items[0].As != "friendName" {
		t.Errorf("select items = %+v", bq.Select.Items)
	}
}

func TestParseFrom(t *testing.T) {
	stmt := mustParse(t, PaperQueries["L76"])
	bq := stmt.Query.(*ast.BasicQuery)
	if bq.From != "orders" || bq.Match != nil {
		t.Errorf("FROM = %q", bq.From)
	}
	if len(bq.Construct.Items) != 3 {
		t.Errorf("items = %d", len(bq.Construct.Items))
	}
}

func TestParseTableAsGraph(t *testing.T) {
	stmt := mustParse(t, PaperQueries["L81"])
	bq := stmt.Query.(*ast.BasicQuery)
	cust := bq.Construct.Items[0].Pattern.Nodes[0]
	if len(cust.Group) != 1 {
		t.Fatalf("group = %+v", cust.Group)
	}
	if pa, ok := cust.Group[0].(*ast.PropAccess); !ok || pa.Var != "o" || pa.Key != "custName" {
		t.Errorf("group expr = %+v", cust.Group[0])
	}
}

func TestParseRegexVariants(t *testing.T) {
	cases := map[string]string{
		`CONSTRUCT (a) MATCH (a)-/<:knows->/->(b)`:           "(:knows-)",
		`CONSTRUCT (a) MATCH (a)-/<_>/->(b)`:                 "(_)",
		`CONSTRUCT (a) MATCH (a)-/<_->/->(b)`:                "(_-)",
		`CONSTRUCT (a) MATCH (a)-/<!:Person>/->(b)`:          "(!:Person)",
		`CONSTRUCT (a) MATCH (a)-/<:a :b>/->(b)`:             "(:a :b)",
		`CONSTRUCT (a) MATCH (a)-/<:a|:b>/->(b)`:             "((:a|:b))",
		`CONSTRUCT (a) MATCH (a)-/<(:a :b)+>/->(b)`:          "((:a :b)+)",
		`CONSTRUCT (a) MATCH (a)-/<:a?>/->(b)`:               "((:a)?)",
		`CONSTRUCT (a) MATCH (a)-/<(:knows|:knows-)*>/->(b)`: "(((:knows|:knows-))*)",
	}
	for src, want := range cases {
		stmt := mustParse(t, src)
		bq := stmt.Query.(*ast.BasicQuery)
		pp := bq.Match.Patterns[0].Pattern.Links[0].(*ast.PathPattern)
		got := "(" + pp.Regex.String() + ")"
		if got != want {
			t.Errorf("%s: regex = %s, want %s", src, got, want)
		}
	}
}

func TestParseEdgeDirections(t *testing.T) {
	stmt := mustParse(t, `CONSTRUCT (a) MATCH (a)-[x]->(b)<-[y]-(c)-[z]-(d)--(e)->(f)`)
	gp := stmt.Query.(*ast.BasicQuery).Match.Patterns[0].Pattern
	dirs := []ast.Direction{ast.DirOut, ast.DirIn, ast.DirBoth, ast.DirBoth, ast.DirOut}
	if len(gp.Links) != 5 {
		t.Fatalf("links = %d", len(gp.Links))
	}
	for i, want := range dirs {
		e := gp.Links[i].(*ast.EdgePattern)
		if e.Dir != want {
			t.Errorf("link %d dir = %v, want %v", i, e.Dir, want)
		}
	}
}

func TestParseCopyForms(t *testing.T) {
	stmt := mustParse(t, `CONSTRUCT (=n)-[=y]->(m) MATCH (n)-[y]->(m)`)
	gp := stmt.Query.(*ast.BasicQuery).Construct.Items[0].Pattern
	if !gp.Nodes[0].Copy || gp.Nodes[0].Var != "n" {
		t.Error("node copy form lost")
	}
	if e := gp.Links[0].(*ast.EdgePattern); !e.Copy || e.Var != "y" {
		t.Error("edge copy form lost")
	}
}

func TestParseCaseExpr(t *testing.T) {
	e, err := ParseExpr(`CASE WHEN size(n.employer) = 0 THEN 'none' ELSE n.employer END`)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := e.(*ast.Case)
	if !ok || len(c.Whens) != 1 || c.Else == nil {
		t.Fatalf("case = %+v", e)
	}
	// Operand form.
	e2, err := ParseExpr(`CASE x WHEN 1 THEN 'a' WHEN 2 THEN 'b' END`)
	if err != nil {
		t.Fatal(err)
	}
	c2 := e2.(*ast.Case)
	if c2.Operand == nil || len(c2.Whens) != 2 || c2.Else != nil {
		t.Fatalf("case2 = %+v", c2)
	}
}

func TestParseExprPrecedence(t *testing.T) {
	e, err := ParseExpr(`1 + 2 * 3 = 7 AND NOT FALSE OR x IN y`)
	if err != nil {
		t.Fatal(err)
	}
	got := ast.ExprString(e)
	want := `(((1 + (2 * 3)) = 7) AND NOT FALSE) OR (x IN y)`
	// The printer parenthesises every binary, so compare structure.
	if !strings.Contains(got, "(2 * 3)") || !strings.Contains(got, "OR") {
		t.Errorf("precedence wrong: %s (want shape %s)", got, want)
	}
	or := e.(*ast.Binary)
	if or.Op != ast.OpOr {
		t.Fatalf("top op = %v", or.Op)
	}
	and := or.L.(*ast.Binary)
	if and.Op != ast.OpAnd {
		t.Fatalf("left op = %v", and.Op)
	}
}

func TestParseDateLiteral(t *testing.T) {
	e, err := ParseExpr(`DATE '1/12/2014'`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(*ast.Literal); !ok {
		t.Fatalf("date literal = %T", e)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`MATCH (n)`,                                        // missing CONSTRUCT
		`CONSTRUCT (n MATCH (n)`,                           // unclosed node
		`CONSTRUCT (n) MATCH (n:)`,                         // missing label
		`CONSTRUCT (n) MATCH (n)-[e](m)`,                   // malformed edge
		`CONSTRUCT (n) MATCH (n)<-[e]->(m)`,                // both directions
		`CONSTRUCT (n) MATCH (n)-/<:a/->(m)`,               // unclosed regex
		`CONSTRUCT (n) MATCH (n) WHERE`,                    // missing expression
		`CONSTRUCT (n) MATCH (n) WHERE foo(1)`,             // unknown function
		`SELECT 1`,                                         // SELECT without MATCH/FROM
		`CONSTRUCT (n) MATCH (n) WHERE CASE END`,           // CASE without WHEN
		`GRAPH g AS ()`,                                    // empty view body
		`CONSTRUCT (n) MATCH (n)-/@/->(m)`,                 // @ without variable
		`CONSTRUCT (n) MATCH (n) extra`,                    // trailing tokens
		`CONSTRUCT (n) MATCH (n)-/0 SHORTEST q<:a*>/->(m)`, // k < 1
		`PATH p = (a)-[e]->(b)`,                            // path clause alone: no query — allowed? see below
	}
	for _, src := range cases[:len(cases)-1] {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
	// A statement with only a PATH clause is a definition-only
	// statement and must parse.
	if _, err := Parse(cases[len(cases)-1]); err != nil {
		t.Errorf("definition-only PATH statement should parse: %v", err)
	}
}

func TestParseAllStatements(t *testing.T) {
	stmts, err := ParseAll(`CONSTRUCT (n) MATCH (n); CONSTRUCT (m) MATCH (m:Tag);`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 2 {
		t.Fatalf("statements = %d", len(stmts))
	}
	if _, err := ParseAll(`CONSTRUCT (n) MATCH (n) CONSTRUCT (m)`); err == nil {
		t.Error("missing semicolon should fail")
	}
}

func TestParseIntersectMinus(t *testing.T) {
	stmt := mustParse(t, `CONSTRUCT (n) MATCH (n:A) INTERSECT CONSTRUCT (n) MATCH (n:B) MINUS g3`)
	sq := stmt.Query.(*ast.SetQuery)
	if sq.Op != ast.SetMinus {
		t.Fatalf("top op = %v (left-assoc expected)", sq.Op)
	}
	inner := sq.Left.(*ast.SetQuery)
	if inner.Op != ast.SetIntersect {
		t.Fatalf("inner op = %v", inner.Op)
	}
}

func TestParseOnSubquery(t *testing.T) {
	stmt := mustParse(t, `CONSTRUCT (n) MATCH (n:Person) ON (CONSTRUCT (m) MATCH (m:Person) ON g2)`)
	lp := stmt.Query.(*ast.BasicQuery).Match.Patterns[0]
	if lp.OnQuery == nil {
		t.Fatal("ON (subquery) lost")
	}
}
