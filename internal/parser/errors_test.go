package parser

import (
	"gcore/internal/ast"
	"strings"
	"testing"
)

// Systematic error-path coverage: every clause's failure modes produce
// a positioned syntax error, never a panic or silent acceptance.

func TestParseErrorPositions(t *testing.T) {
	_, err := Parse("CONSTRUCT (n)\nMATCH (n:Person\n")
	if err == nil {
		t.Fatal("expected error")
	}
	perr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if perr.Pos.Line != 3 && perr.Pos.Line != 2 {
		t.Errorf("error position = %v", perr.Pos)
	}
	if !strings.Contains(perr.Error(), "parse error at") {
		t.Errorf("error text = %q", perr.Error())
	}
}

func TestParseClauseErrors(t *testing.T) {
	cases := map[string]string{
		// Head clauses.
		`PATH = (a)-[e]->(b) CONSTRUCT (n) MATCH (n)`: "path view name",
		`PATH p (a)-[e]->(b) CONSTRUCT (n) MATCH (n)`: `"="`,
		`GRAPH AS (CONSTRUCT (n) MATCH (n))`:          "graph name",
		`GRAPH g (CONSTRUCT (n) MATCH (n))`:           "AS",
		`GRAPH g AS CONSTRUCT (n) MATCH (n)`:          `"("`,
		`GRAPH g AS (PATH p = (a)-[e]->(b))`:          "query body",
		// MATCH / ON.
		`CONSTRUCT (n) MATCH (n) ON 42`:          "graph name or (query)",
		`CONSTRUCT (n) MATCH (n) ON (MATCH (m))`: "CONSTRUCT or SELECT",
		// CONSTRUCT decorations.
		`CONSTRUCT (n) SET MATCH (n)`:       "variable in SET",
		`CONSTRUCT (n) SET n MATCH (n)`:     ".property or :label",
		`CONSTRUCT (n) SET n. MATCH (n)`:    "property name",
		`CONSTRUCT (n) SET n.k MATCH (n)`:   ":=",
		`CONSTRUCT (n) SET n: MATCH (n)`:    "label in SET",
		`CONSTRUCT (n) REMOVE MATCH (n)`:    "variable in REMOVE",
		`CONSTRUCT (n) REMOVE n MATCH (n)`:  ".property or :label",
		`CONSTRUCT (n) REMOVE n. MATCH (n)`: "property name",
		`CONSTRUCT (n) REMOVE n: MATCH (n)`: "label in REMOVE",
		// SELECT.
		`SELECT n.x AS MATCH (n)`:                 "column alias",
		`SELECT n.x AS a MATCH (n) ORDER x`:       "BY",
		`SELECT n.x AS a MATCH (n) LIMIT x`:       "integer after LIMIT",
		`SELECT n.x AS a MATCH (n) LIMIT 1 extra`: "unexpected",
		// FROM.
		`CONSTRUCT (n) FROM 42`: "binding table name",
		// Patterns.
		`CONSTRUCT (n) MATCH (n {k})`:              "= or :=",
		`CONSTRUCT (n) MATCH (n {k =})`:            "expression",
		`CONSTRUCT (n) MATCH (= )`:                 "variable after =",
		`CONSTRUCT (n) MATCH (n)-[= ]->(m)`:        "variable after =",
		`CONSTRUCT (n) MATCH (n)-[e GROUP x]->(m)`: "only allowed in CONSTRUCT",
		`CONSTRUCT (n) MATCH (n GROUP x)`:          "only allowed in CONSTRUCT",
		// Path bodies.
		`CONSTRUCT (n) MATCH (n)-/@ 5/->(m)`:          "stored-path variable",
		`CONSTRUCT (n) MATCH (n)-/p<:a> COST 5/->(m)`: "cost variable",
		`CONSTRUCT (n) MATCH (n)-/p<~>/->(m)`:         "path view name",
		`CONSTRUCT (n) MATCH (n)-/p<!>/->(m)`:         "node label",
		`CONSTRUCT (n) MATCH (n)-/p<:>/->(m)`:         "edge label",
		`CONSTRUCT (n) MATCH (n)-/p<(:a>/->(m)`:       `")"`,
		`CONSTRUCT (n) MATCH (n)-/p<*>/->(m)`:         "atom",
		// Expressions.
		`CONSTRUCT (n) MATCH (n) WHERE n.`:                             "unexpected",
		`CONSTRUCT (n) MATCH (n) WHERE 1 +`:                            "expression",
		`CONSTRUCT (n) MATCH (n) WHERE nodes(p)[`:                      "expression",
		`CONSTRUCT (n) MATCH (n) WHERE nodes(p)[1`:                     `"]"`,
		`CONSTRUCT (n) MATCH (n) WHERE CASE WHEN 1 THEN`:               "expression",
		`CONSTRUCT (n) MATCH (n) WHERE CASE WHEN 1 THEN 2`:             "END",
		`CONSTRUCT (n) MATCH (n) WHERE EXISTS CONSTRUCT (m) MATCH (m)`: `"("`,
		`CONSTRUCT (n) MATCH (n) WHERE labels(1).x = 1`:                "variable on the left",
		`CONSTRUCT (n) MATCH (n) WHERE DATE 5 = 1`:                     "date string",
		`CONSTRUCT (n) MATCH (n) WHERE DATE 'zzz' = 1`:                 "invalid date",
	}
	for src, wantFrag := range cases {
		_, err := Parse(src)
		if err == nil {
			t.Errorf("Parse(%q) should fail", src)
			continue
		}
		if !strings.Contains(err.Error(), wantFrag) {
			t.Errorf("Parse(%q) error %q, want fragment %q", src, err.Error(), wantFrag)
		}
	}
}

func TestParseExprErrors(t *testing.T) {
	bad := []string{``, `1 +`, `(1`, `CASE END`, `foo(1)`, `NOT`}
	for _, src := range bad {
		if _, err := ParseExpr(src); err == nil {
			t.Errorf("ParseExpr(%q) should fail", src)
		}
	}
	// Trailing tokens after a complete expression.
	if _, err := ParseExpr(`1 2`); err == nil {
		t.Error("trailing tokens must fail")
	}
}

func TestParseExprForms(t *testing.T) {
	good := []string{
		`-1.5e2`,
		`a <= b`,
		`a >= b`,
		`a SUBSET OF b`,
		`a SUBSET b`,
		`size(collect(a))`,
		`cost(p) < 2`,
		`tostring(1) + tostring(2.5)`,
		`(1)`,
		`((a))`,
		`NOT NOT TRUE`,
		`- - 1`,
		`a % b % c`,
	}
	for _, src := range good {
		if _, err := ParseExpr(src); err != nil {
			t.Errorf("ParseExpr(%q): %v", src, err)
		}
	}
}

func TestParseMiscForms(t *testing.T) {
	good := []string{
		// SET with '=' tolerated as ':='.
		`CONSTRUCT (n) SET n.k = 1 MATCH (n)`,
		// WHEN before SET order flexibility.
		`CONSTRUCT (n) WHEN TRUE SET n.k := 1 MATCH (n)`,
		// Bare CONSTRUCT without MATCH.
		`CONSTRUCT (x :Singleton {v := 1})`,
		// Set op with parenthesised right operand.
		`CONSTRUCT (n) MATCH (n) UNION (CONSTRUCT (m) MATCH (m))`,
		// Multiple labels (conjunctive) on a node.
		`CONSTRUCT (n) MATCH (n:Person:Manager)`,
		// Edge with property filter.
		`CONSTRUCT (n) MATCH (n)-[e:knows {since = DATE '1/12/2014'}]->(m)`,
		// Path with props on stored pattern.
		`CONSTRUCT (n) MATCH (n)-/@p:toWagner {trust = 0.95}/->(m)`,
		// Anonymous everything.
		`CONSTRUCT () MATCH ()-[]->()`,
		// Numeric property filter.
		`CONSTRUCT (n) MATCH (n {age = 30})`,
		// Semicolon-terminated statement.
		`CONSTRUCT (n) MATCH (n);`,
	}
	for _, src := range good {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
}

func TestTrailingOnDistributes(t *testing.T) {
	stmt := mustParse(t, `CONSTRUCT (n) MATCH (n)-/@p:toWagner/->(), (m:Person) ON social_graph2`)
	bq := stmt.Query.(*ast.BasicQuery)
	if len(bq.Match.Patterns) != 2 {
		t.Fatalf("patterns = %d", len(bq.Match.Patterns))
	}
	for i, lp := range bq.Match.Patterns {
		if lp.OnGraph != "social_graph2" {
			t.Errorf("pattern %d ON = %q, want social_graph2 (trailing ON distributes)", i, lp.OnGraph)
		}
	}
	// Patterns with their own ON keep it.
	stmt2 := mustParse(t, `CONSTRUCT (n) MATCH (a) ON g1, (b) ON g2`)
	bq2 := stmt2.Query.(*ast.BasicQuery)
	if bq2.Match.Patterns[0].OnGraph != "g1" || bq2.Match.Patterns[1].OnGraph != "g2" {
		t.Error("per-pattern ON must not be overridden")
	}
	// A pattern after the last ON stays on the default graph.
	stmt3 := mustParse(t, `CONSTRUCT (n) MATCH (a) ON g1, (b)`)
	bq3 := stmt3.Query.(*ast.BasicQuery)
	if bq3.Match.Patterns[1].OnGraph != "" {
		t.Error("no following ON: default graph expected")
	}
}
