// Package parser implements a recursive-descent parser for G-CORE's
// surface syntax (§3–§5 of the paper). It parses every numbered query
// of the paper's guided tour verbatim.
//
// The parser works over the full token slice and uses bounded
// backtracking in exactly one place: deciding whether a parenthesis in
// expression position opens a graph pattern (the implicit existential
// predicates of WHERE, "(n)-[:isLocatedIn]->()…"), a label test
// ("(n:Person)"), or an ordinary parenthesised expression.
package parser

import (
	"fmt"
	"strconv"
	"strings"

	"gcore/internal/ast"
	"gcore/internal/lexer"
	"gcore/internal/value"
)

// Error is a syntax error with its source position.
type Error struct {
	Pos lexer.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("parse error at %s: %s", e.Pos, e.Msg) }

// Parse parses one G-CORE statement.
func Parse(src string) (*ast.Statement, error) {
	toks, err := lexer.Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	if p.cur().Is(";") {
		p.next()
	}
	if p.cur().Kind != lexer.EOF {
		return nil, p.errf("unexpected %s after end of statement", p.cur())
	}
	return stmt, nil
}

// ParseAll parses a script of statements separated by semicolons.
func ParseAll(src string) ([]*ast.Statement, error) {
	toks, err := lexer.Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmts []*ast.Statement
	for p.cur().Kind != lexer.EOF {
		stmt, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, stmt)
		if p.cur().Is(";") {
			p.next()
			continue
		}
		if p.cur().Kind != lexer.EOF {
			return nil, p.errf("expected ';' between statements, got %s", p.cur())
		}
	}
	return stmts, nil
}

type parser struct {
	toks []lexer.Token
	pos  int
}

func (p *parser) cur() lexer.Token  { return p.toks[p.pos] }
func (p *parser) peek() lexer.Token { return p.at(1) }

func (p *parser) at(off int) lexer.Token {
	i := p.pos + off
	if i >= len(p.toks) {
		return p.toks[len(p.toks)-1] // EOF
	}
	return p.toks[i]
}

func (p *parser) next() lexer.Token {
	t := p.toks[p.pos]
	if t.Kind != lexer.EOF {
		p.pos++
	}
	return t
}

func (p *parser) save() int        { return p.pos }
func (p *parser) restore(mark int) { p.pos = mark }

func (p *parser) errf(format string, args ...any) error {
	return &Error{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expectPunct(s string) error {
	if !p.cur().Is(s) {
		return p.errf("expected %q, got %s", s, p.cur())
	}
	p.next()
	return nil
}

func (p *parser) expectKeyword(kw string) error {
	if !p.cur().IsKeyword(kw) {
		return p.errf("expected %s, got %s", kw, p.cur())
	}
	p.next()
	return nil
}

func (p *parser) expectIdent(what string) (string, error) {
	if p.cur().Kind != lexer.Ident {
		return "", p.errf("expected %s, got %s", what, p.cur())
	}
	return p.next().Text, nil
}

// ===== statements and queries =====

func (p *parser) parseStatement() (*ast.Statement, error) {
	stmt := &ast.Statement{}
	// EXPLAIN [ANALYZE] is a statement prefix, not a keyword: both words
	// stay usable as ordinary identifiers (labels, variables) elsewhere.
	// The lexer classifies them as Ident, so the check is case-insensitive
	// on the token text; a statement proper always starts with one of the
	// PATH/GRAPH/CONSTRUCT/SELECT keywords, so no ambiguity arises.
	if t := p.cur(); t.Kind == lexer.Ident && strings.EqualFold(t.Text, "EXPLAIN") {
		p.next()
		stmt.Explain = ast.ExplainPlan
		if t := p.cur(); t.Kind == lexer.Ident && strings.EqualFold(t.Text, "ANALYZE") {
			p.next()
			stmt.Explain = ast.ExplainAnalyze
		}
	}
	for {
		switch {
		case p.cur().IsKeyword("PATH"):
			pc, err := p.parsePathClause()
			if err != nil {
				return nil, err
			}
			stmt.Paths = append(stmt.Paths, pc)
		case p.cur().IsKeyword("GRAPH"):
			gc, err := p.parseGraphClause()
			if err != nil {
				return nil, err
			}
			stmt.Graphs = append(stmt.Graphs, gc)
		default:
			if p.cur().IsKeyword("CONSTRUCT") || p.cur().IsKeyword("SELECT") {
				q, err := p.parseFullQuery()
				if err != nil {
					return nil, err
				}
				stmt.Query = q
			}
			if stmt.Query == nil && len(stmt.Paths) == 0 && len(stmt.Graphs) == 0 {
				return nil, p.errf("expected CONSTRUCT, SELECT, PATH or GRAPH, got %s", p.cur())
			}
			return stmt, nil
		}
	}
}

func (p *parser) parseFullQuery() (ast.Query, error) {
	left, err := p.parseBasicQuery()
	if err != nil {
		return nil, err
	}
	var q ast.Query = left
	for {
		var op ast.SetOp
		switch {
		case p.cur().IsKeyword("UNION"):
			op = ast.SetUnion
		case p.cur().IsKeyword("INTERSECT"):
			op = ast.SetIntersect
		case p.cur().IsKeyword("MINUS"):
			op = ast.SetMinus
		default:
			return q, nil
		}
		p.next()
		// Operand: another basic query, a bare graph name (the paper's
		// "UNION social_graph" shorthand), or a parenthesised query.
		var right ast.Query
		switch {
		case p.cur().Kind == lexer.Ident:
			// A bare graph name used as a query operand is sugar for
			// CONSTRUCT gid (union with that graph's contents).
			name := p.next().Text
			right = &ast.BasicQuery{
				Construct: &ast.ConstructClause{Items: []*ast.ConstructItem{{GraphName: name}}},
			}
		case p.cur().Is("("):
			p.next()
			sub, err := p.parseFullQuery()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			right = sub
		default:
			sub, err := p.parseBasicQuery()
			if err != nil {
				return nil, err
			}
			right = sub
		}
		q = &ast.SetQuery{Op: op, Left: q, Right: right}
	}
}

func (p *parser) parseBasicQuery() (*ast.BasicQuery, error) {
	bq := &ast.BasicQuery{P: p.cur().Pos}
	switch {
	case p.cur().IsKeyword("CONSTRUCT"):
		cc, err := p.parseConstructClause()
		if err != nil {
			return nil, err
		}
		bq.Construct = cc
	case p.cur().IsKeyword("SELECT"):
		sc, err := p.parseSelectClause()
		if err != nil {
			return nil, err
		}
		bq.Select = sc
	default:
		return nil, p.errf("expected CONSTRUCT or SELECT, got %s", p.cur())
	}
	switch {
	case p.cur().IsKeyword("FROM"):
		p.next()
		name, err := p.expectIdent("binding table name after FROM")
		if err != nil {
			return nil, err
		}
		bq.From = name
	case p.cur().IsKeyword("MATCH"):
		mc, err := p.parseMatchClause()
		if err != nil {
			return nil, err
		}
		bq.Match = mc
	}
	if bq.Select != nil && bq.Match == nil && bq.From == "" {
		return nil, p.errf("SELECT requires a MATCH or FROM clause")
	}
	// ORDER BY and LIMIT may trail the MATCH clause (the natural SQL
	// position) as well as the SELECT list.
	if bq.Select != nil {
		if err := p.parseOrderLimit(bq.Select); err != nil {
			return nil, err
		}
	}
	return bq, nil
}

// ===== head clauses =====

func (p *parser) parsePathClause() (*ast.PathClause, error) {
	pc := &ast.PathClause{P: p.cur().Pos}
	p.next() // PATH
	name, err := p.expectIdent("path view name")
	if err != nil {
		return nil, err
	}
	pc.Name = name
	if err := p.expectPunct("="); err != nil {
		return nil, err
	}
	for {
		gp, err := p.parseGraphPattern(false)
		if err != nil {
			return nil, err
		}
		pc.Patterns = append(pc.Patterns, gp)
		if p.cur().Is(",") {
			p.next()
			continue
		}
		break
	}
	if p.cur().IsKeyword("WHERE") {
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		pc.Where = e
	}
	if p.cur().IsKeyword("COST") {
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		pc.Cost = e
	}
	return pc, nil
}

func (p *parser) parseGraphClause() (*ast.GraphClause, error) {
	gc := &ast.GraphClause{P: p.cur().Pos}
	p.next() // GRAPH
	if p.cur().IsKeyword("VIEW") {
		gc.View = true
		p.next()
	}
	name, err := p.expectIdent("graph name")
	if err != nil {
		return nil, err
	}
	gc.Name = name
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	body, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	if body.Query == nil {
		return nil, p.errf("GRAPH %s AS (...) needs a query body", name)
	}
	gc.Body = body
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return gc, nil
}

// ===== MATCH =====

func (p *parser) parseMatchClause() (*ast.MatchClause, error) {
	mc := &ast.MatchClause{P: p.cur().Pos}
	p.next() // MATCH
	pats, err := p.parseLocatedPatterns()
	if err != nil {
		return nil, err
	}
	mc.Patterns = pats
	if p.cur().IsKeyword("WHERE") {
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		mc.Where = e
	}
	for p.cur().IsKeyword("OPTIONAL") {
		ob := &ast.OptionalBlock{P: p.cur().Pos}
		p.next()
		pats, err := p.parseLocatedPatterns()
		if err != nil {
			return nil, err
		}
		ob.Patterns = pats
		if p.cur().IsKeyword("WHERE") {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			ob.Where = e
		}
		mc.Optionals = append(mc.Optionals, ob)
	}
	return mc, nil
}

func (p *parser) parseLocatedPatterns() ([]*ast.LocatedPattern, error) {
	var out []*ast.LocatedPattern
	for {
		gp, err := p.parseGraphPattern(false)
		if err != nil {
			return nil, err
		}
		lp := &ast.LocatedPattern{Pattern: gp}
		if p.cur().IsKeyword("ON") {
			p.next()
			switch {
			case p.cur().Kind == lexer.Ident:
				lp.OnGraph = p.next().Text
			case p.cur().Is("("):
				p.next()
				sub, err := p.parseFullQuery()
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				lp.OnQuery = sub
			default:
				return nil, p.errf("expected graph name or (query) after ON, got %s", p.cur())
			}
		}
		out = append(out, lp)
		if p.cur().Is(",") {
			p.next()
			continue
		}
		// A trailing ON distributes leftwards: in the paper's line 69,
		// "MATCH (n)-/@p:toWagner/->(), (m:Person) ON social_graph2"
		// locates both patterns on social_graph2. Patterns without
		// their own ON inherit the nearest following pattern's ON.
		for i := len(out) - 2; i >= 0; i-- {
			if out[i].OnGraph == "" && out[i].OnQuery == nil {
				out[i].OnGraph = out[i+1].OnGraph
				out[i].OnQuery = out[i+1].OnQuery
			}
		}
		return out, nil
	}
}

// ===== CONSTRUCT =====

func (p *parser) parseConstructClause() (*ast.ConstructClause, error) {
	cc := &ast.ConstructClause{P: p.cur().Pos}
	p.next() // CONSTRUCT
	for {
		item, err := p.parseConstructItem()
		if err != nil {
			return nil, err
		}
		cc.Items = append(cc.Items, item)
		if p.cur().Is(",") {
			p.next()
			continue
		}
		return cc, nil
	}
}

func (p *parser) parseConstructItem() (*ast.ConstructItem, error) {
	item := &ast.ConstructItem{P: p.cur().Pos}
	if p.cur().Kind == lexer.Ident && !p.peek().Is("(") {
		// Bare graph name (the union shorthand of line 20).
		item.GraphName = p.next().Text
		return item, nil
	}
	gp, err := p.parseGraphPattern(true)
	if err != nil {
		return nil, err
	}
	item.Pattern = gp
	for {
		switch {
		case p.cur().IsKeyword("SET"):
			p.next()
			si, err := p.parseSetItem()
			if err != nil {
				return nil, err
			}
			item.Sets = append(item.Sets, si)
		case p.cur().IsKeyword("REMOVE"):
			p.next()
			ri, err := p.parseRemoveItem()
			if err != nil {
				return nil, err
			}
			item.Removes = append(item.Removes, ri)
		case p.cur().IsKeyword("WHEN"):
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item.When = e
		default:
			return item, nil
		}
	}
}

func (p *parser) parseSetItem() (*ast.SetItem, error) {
	si := &ast.SetItem{P: p.cur().Pos}
	v, err := p.expectIdent("variable in SET")
	if err != nil {
		return nil, err
	}
	si.Var = v
	switch {
	case p.cur().Is("."):
		p.next()
		key, err := p.expectIdent("property name in SET")
		if err != nil {
			return nil, err
		}
		si.Key = key
		if !p.cur().Is(":=") && !p.cur().Is("=") {
			return nil, p.errf("expected := in SET, got %s", p.cur())
		}
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		si.Expr = e
	case p.cur().Is(":"):
		p.next()
		label, err := p.expectIdent("label in SET")
		if err != nil {
			return nil, err
		}
		si.Label = label
	default:
		return nil, p.errf("expected .property or :label in SET, got %s", p.cur())
	}
	return si, nil
}

func (p *parser) parseRemoveItem() (*ast.RemoveItem, error) {
	ri := &ast.RemoveItem{P: p.cur().Pos}
	v, err := p.expectIdent("variable in REMOVE")
	if err != nil {
		return nil, err
	}
	ri.Var = v
	switch {
	case p.cur().Is("."):
		p.next()
		key, err := p.expectIdent("property name in REMOVE")
		if err != nil {
			return nil, err
		}
		ri.Key = key
	case p.cur().Is(":"):
		p.next()
		label, err := p.expectIdent("label in REMOVE")
		if err != nil {
			return nil, err
		}
		ri.Label = label
	default:
		return nil, p.errf("expected .property or :label in REMOVE, got %s", p.cur())
	}
	return ri, nil
}

// ===== SELECT (§5 extension) =====

func (p *parser) parseSelectClause() (*ast.SelectClause, error) {
	sc := &ast.SelectClause{P: p.cur().Pos, Limit: -1}
	p.next() // SELECT
	if p.cur().IsKeyword("DISTINCT") {
		sc.Distinct = true
		p.next()
	}
	for {
		it := &ast.SelectItem{P: p.cur().Pos}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		it.Expr = e
		if p.cur().IsKeyword("AS") {
			p.next()
			name, err := p.expectIdent("column alias")
			if err != nil {
				return nil, err
			}
			it.As = name
		}
		sc.Items = append(sc.Items, it)
		if p.cur().Is(",") {
			p.next()
			continue
		}
		break
	}
	if err := p.parseOrderLimit(sc); err != nil {
		return nil, err
	}
	return sc, nil
}

// parseOrderLimit parses optional ORDER BY and LIMIT clauses into sc.
func (p *parser) parseOrderLimit(sc *ast.SelectClause) error {
	if p.cur().IsKeyword("ORDER") {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return err
		}
		for {
			oi := &ast.OrderItem{}
			e, err := p.parseExpr()
			if err != nil {
				return err
			}
			oi.Expr = e
			if p.cur().IsKeyword("DESC") {
				oi.Desc = true
				p.next()
			} else if p.cur().IsKeyword("ASC") {
				p.next()
			}
			sc.OrderBy = append(sc.OrderBy, oi)
			if p.cur().Is(",") {
				p.next()
				continue
			}
			break
		}
	}
	if p.cur().IsKeyword("LIMIT") {
		p.next()
		if p.cur().Kind != lexer.Int {
			return p.errf("expected integer after LIMIT, got %s", p.cur())
		}
		n, err := strconv.Atoi(p.next().Text)
		if err != nil || n < 0 {
			return p.errf("invalid LIMIT value")
		}
		sc.Limit = n
	}
	return nil
}

// literalFromToken converts a literal token to a value.
func literalFromToken(t lexer.Token) (value.Value, error) {
	switch t.Kind {
	case lexer.Int:
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return value.Null, err
		}
		return value.Int(i), nil
	case lexer.Float:
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return value.Null, err
		}
		return value.Float(f), nil
	case lexer.String:
		return value.Str(t.Text), nil
	}
	return value.Null, fmt.Errorf("not a literal token: %s", t)
}

// validFuncName reports whether name may be used as a function.
func validFuncName(name string) bool {
	switch strings.ToLower(name) {
	case "labels", "nodes", "edges", "size", "length", "cost", "id",
		"tostring", "tointeger", "tofloat", "count", "sum", "min", "max",
		"avg", "collect", "trim", "upper", "lower",
		"substring", "contains", "startswith", "endswith", "replace",
		"abs", "floor", "ceil", "round", "sqrt":
		return true
	}
	return false
}
