package parser

import (
	"strconv"

	"gcore/internal/ast"
	"gcore/internal/lexer"
)

// parseGraphPattern parses a chain (n0) link0 (n1) … . In construct
// position GROUP clauses and := assignments are expected; the flag is
// recorded but the grammar is shared.
func (p *parser) parseGraphPattern(construct bool) (*ast.GraphPattern, error) {
	gp := &ast.GraphPattern{P: p.cur().Pos}
	n, err := p.parseNodePattern(construct)
	if err != nil {
		return nil, err
	}
	gp.Nodes = append(gp.Nodes, n)
	for {
		link, ok, err := p.parseLink(construct)
		if err != nil {
			return nil, err
		}
		if !ok {
			return gp, nil
		}
		gp.Links = append(gp.Links, link)
		n, err := p.parseNodePattern(construct)
		if err != nil {
			return nil, err
		}
		gp.Nodes = append(gp.Nodes, n)
	}
}

// parseNodePattern parses (v GROUP … :L1|L2 {props}) and the copy
// form (=v).
func (p *parser) parseNodePattern(construct bool) (*ast.NodePattern, error) {
	np := &ast.NodePattern{P: p.cur().Pos}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	if p.cur().Is("=") {
		p.next()
		np.Copy = true
		v, err := p.expectIdent("variable after = (copy form)")
		if err != nil {
			return nil, err
		}
		np.Var = v
	} else if p.cur().Kind == lexer.Ident {
		np.Var = p.next().Text
	}
	if p.cur().IsKeyword("GROUP") {
		if !construct {
			return nil, p.errf("GROUP is only allowed in CONSTRUCT patterns")
		}
		p.next()
		group, err := p.parseGroupItems()
		if err != nil {
			return nil, err
		}
		np.Group = group
	}
	ls, err := p.parseLabelSpec()
	if err != nil {
		return nil, err
	}
	np.Labels = ls
	if p.cur().Is("{") {
		props, err := p.parsePropMap()
		if err != nil {
			return nil, err
		}
		np.Props = props
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return np, nil
}

// parseGroupItems parses the grouping set after GROUP: variables,
// property accesses, or literals (GROUP e / GROUP o.custName /
// GROUP 1 for a single global group), comma-separated.
func (p *parser) parseGroupItems() ([]ast.Expr, error) {
	var out []ast.Expr
	for {
		pos := p.cur().Pos
		if k := p.cur().Kind; k == lexer.Int || k == lexer.Float || k == lexer.String {
			v, err := literalFromToken(p.next())
			if err != nil {
				return nil, &Error{Pos: pos, Msg: err.Error()}
			}
			out = append(out, &ast.Literal{Val: v, P: pos})
			if p.cur().Is(",") && p.peek().Kind == lexer.Ident && !p.at(2).Is("(") {
				p.next()
				continue
			}
			return out, nil
		}
		name, err := p.expectIdent("grouping variable")
		if err != nil {
			return nil, err
		}
		if p.cur().Is(".") {
			p.next()
			key, err := p.expectIdent("property name")
			if err != nil {
				return nil, err
			}
			out = append(out, &ast.PropAccess{Var: name, Key: key, P: pos})
		} else {
			out = append(out, &ast.VarRef{Name: name, P: pos})
		}
		if p.cur().Is(",") && p.peek().Kind == lexer.Ident && !p.at(2).Is("(") {
			// Only continue if this comma really separates grouping
			// items (a following '(' would start the next construct
			// pattern at the clause level — impossible inside parens,
			// but edges may follow).
			p.next()
			continue
		}
		return out, nil
	}
}

// parseLabelSpec parses (':' l1 ('|' l2)*)*.
func (p *parser) parseLabelSpec() (ast.LabelSpec, error) {
	var spec ast.LabelSpec
	for p.cur().Is(":") {
		p.next()
		var disj []string
		l, err := p.expectIdent("label name")
		if err != nil {
			return nil, err
		}
		disj = append(disj, l)
		for p.cur().Is("|") {
			p.next()
			l, err := p.expectIdent("label name")
			if err != nil {
				return nil, err
			}
			disj = append(disj, l)
		}
		spec = append(spec, disj)
	}
	return spec, nil
}

// parsePropMap parses {k = v, k := expr, …}.
func (p *parser) parsePropMap() ([]*ast.PropSpec, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var out []*ast.PropSpec
	for {
		ps := &ast.PropSpec{P: p.cur().Pos}
		key, err := p.expectIdent("property name")
		if err != nil {
			return nil, err
		}
		ps.Key = key
		switch {
		case p.cur().Is(":="):
			p.next()
			ps.Mode = ast.PropAssign
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			ps.Expr = e
		case p.cur().Is("=") || p.cur().Is(":"):
			p.next()
			// A bare identifier binds a variable (unrolling
			// multi-valued properties, §3: {employer=e}); anything
			// else filters by value ({name='Wagner'}).
			if p.cur().Kind == lexer.Ident && (p.peek().Is(",") || p.peek().Is("}")) {
				ps.Mode = ast.PropBind
				ps.Var = p.next().Text
			} else {
				ps.Mode = ast.PropFilter
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				ps.Expr = e
			}
		default:
			return nil, p.errf("expected = or := after property name %q, got %s", key, p.cur())
		}
		out = append(out, ps)
		if p.cur().Is(",") {
			p.next()
			continue
		}
		break
	}
	if err := p.expectPunct("}"); err != nil {
		return nil, err
	}
	return out, nil
}

// parseLink recognises an edge or path pattern between two nodes, or
// reports ok=false if the chain ends here.
func (p *parser) parseLink(construct bool) (ast.Link, bool, error) {
	switch {
	case p.cur().Is("-") && p.peek().Is("["):
		p.next()
		return p.finishEdge(ast.DirOut, construct) // direction fixed after ]
	case p.cur().Is("-") && p.peek().Is("/"):
		p.next()
		return p.finishPath(ast.DirOut, construct)
	case p.cur().Is("<") && p.peek().Is("-") && p.at(2).Is("["):
		p.next()
		p.next()
		link, ok, err := p.finishEdge(ast.DirIn, construct)
		return link, ok, err
	case p.cur().Is("<") && p.peek().Is("-") && p.at(2).Is("/"):
		p.next()
		p.next()
		return p.finishPath(ast.DirIn, construct)
	case p.cur().Is("-") && (p.peek().Is("-") || (p.peek().Is(">") && p.at(2).Is("("))):
		// Abbreviated edges: (a)--(b) and (a)->(b) are sugar for
		// (a)-[]-(b) and (a)-[]->(b).
		p.next()
		ep := &ast.EdgePattern{P: p.cur().Pos, Dir: ast.DirBoth}
		if p.cur().Is(">") {
			ep.Dir = ast.DirOut
			p.next()
		} else {
			p.next() // second '-'
			if p.cur().Is(">") {
				ep.Dir = ast.DirOut
				p.next()
			}
		}
		return ep, true, nil
	}
	return nil, false, nil
}

// finishEdge parses [body] and the trailing arrow. dirHint is DirIn
// for a pattern that started with <-, otherwise provisional DirOut.
func (p *parser) finishEdge(dirHint ast.Direction, construct bool) (ast.Link, bool, error) {
	ep := &ast.EdgePattern{P: p.cur().Pos, Dir: dirHint}
	if err := p.expectPunct("["); err != nil {
		return nil, false, err
	}
	if p.cur().Is("=") {
		p.next()
		ep.Copy = true
		v, err := p.expectIdent("variable after = (copy form)")
		if err != nil {
			return nil, false, err
		}
		ep.Var = v
	} else if p.cur().Kind == lexer.Ident {
		ep.Var = p.next().Text
	}
	if p.cur().IsKeyword("GROUP") {
		if !construct {
			return nil, false, p.errf("GROUP is only allowed in CONSTRUCT patterns")
		}
		p.next()
		group, err := p.parseGroupItems()
		if err != nil {
			return nil, false, err
		}
		ep.Group = group
	}
	ls, err := p.parseLabelSpec()
	if err != nil {
		return nil, false, err
	}
	ep.Labels = ls
	if p.cur().Is("{") {
		props, err := p.parsePropMap()
		if err != nil {
			return nil, false, err
		}
		ep.Props = props
	}
	if err := p.expectPunct("]"); err != nil {
		return nil, false, err
	}
	if err := p.expectPunct("-"); err != nil {
		return nil, false, err
	}
	if dirHint == ast.DirIn {
		if p.cur().Is(">") {
			return nil, false, p.errf("edge pattern cannot point both ways (<-[…]->)")
		}
		return ep, true, nil
	}
	if p.cur().Is(">") {
		p.next()
		ep.Dir = ast.DirOut
	} else {
		ep.Dir = ast.DirBoth
	}
	return ep, true, nil
}

// finishPath parses /body/ and the trailing arrow for -/…/-> forms.
func (p *parser) finishPath(dirHint ast.Direction, construct bool) (ast.Link, bool, error) {
	pp := &ast.PathPattern{P: p.cur().Pos, Dir: dirHint}
	if err := p.expectPunct("/"); err != nil {
		return nil, false, err
	}
	// Mode prefix: "3 SHORTEST", "SHORTEST", "ALL".
	switch {
	case p.cur().Kind == lexer.Int && p.peek().IsKeyword("SHORTEST"):
		k, err := strconv.Atoi(p.cur().Text)
		if err != nil || k < 1 {
			return nil, false, p.errf("invalid path multiplicity %q", p.cur().Text)
		}
		pp.K = k
		p.next()
		p.next()
	case p.cur().IsKeyword("SHORTEST"):
		pp.K = 1
		p.next()
	case p.cur().IsKeyword("ALL"):
		pp.Mode = ast.PathAll
		p.next()
	}
	if p.cur().Is("@") {
		p.next()
		pp.Stored = true
		v, err := p.expectIdent("stored-path variable after @")
		if err != nil {
			return nil, false, err
		}
		pp.Var = v
	} else if p.cur().Kind == lexer.Ident {
		pp.Var = p.next().Text
	}
	ls, err := p.parseLabelSpec()
	if err != nil {
		return nil, false, err
	}
	pp.Labels = ls
	if p.cur().Is("{") {
		props, err := p.parsePropMap()
		if err != nil {
			return nil, false, err
		}
		pp.Props = props
	}
	if p.cur().Is("<") {
		p.next()
		rx, err := p.parseRegexAlt()
		if err != nil {
			return nil, false, err
		}
		if err := p.expectPunct(">"); err != nil {
			return nil, false, err
		}
		pp.Regex = rx
	}
	if p.cur().IsKeyword("COST") {
		p.next()
		v, err := p.expectIdent("cost variable after COST")
		if err != nil {
			return nil, false, err
		}
		pp.CostVar = v
	}
	if err := p.expectPunct("/"); err != nil {
		return nil, false, err
	}
	if err := p.expectPunct("-"); err != nil {
		return nil, false, err
	}
	if dirHint != ast.DirIn {
		if p.cur().Is(">") {
			p.next()
			pp.Dir = ast.DirOut
		} else {
			pp.Dir = ast.DirBoth
		}
	} else if p.cur().Is(">") {
		return nil, false, p.errf("path pattern cannot point both ways (<-/…/->)")
	}
	// A regex with no variable and no explicit mode is a pure
	// reachability test (§3, line 29).
	if pp.Var == "" && pp.Mode != ast.PathAll {
		if pp.Stored {
			return nil, false, p.errf("@ requires a stored-path variable")
		}
		pp.Mode = ast.PathReach
	}
	if pp.Mode == ast.PathShortest && pp.K == 0 {
		pp.K = 1
	}
	_ = construct
	return pp, true, nil
}

// parseRegexAlt parses r1 | r2 | … .
func (p *parser) parseRegexAlt() (*ast.Regex, error) {
	first, err := p.parseRegexSeq()
	if err != nil {
		return nil, err
	}
	if !p.cur().Is("|") {
		return first, nil
	}
	alt := &ast.Regex{Op: ast.RxAlt, Subs: []*ast.Regex{first}}
	for p.cur().Is("|") {
		p.next()
		sub, err := p.parseRegexSeq()
		if err != nil {
			return nil, err
		}
		alt.Subs = append(alt.Subs, sub)
	}
	return alt, nil
}

// parseRegexSeq parses juxtaposed factors until '>', '|' or ')'.
func (p *parser) parseRegexSeq() (*ast.Regex, error) {
	var parts []*ast.Regex
	for {
		if p.cur().Is(">") || p.cur().Is("|") || p.cur().Is(")") || p.cur().Kind == lexer.EOF {
			break
		}
		f, err := p.parseRegexPostfix()
		if err != nil {
			return nil, err
		}
		parts = append(parts, f)
	}
	switch len(parts) {
	case 0:
		return &ast.Regex{Op: ast.RxEps}, nil
	case 1:
		return parts[0], nil
	}
	return &ast.Regex{Op: ast.RxConcat, Subs: parts}, nil
}

func (p *parser) parseRegexPostfix() (*ast.Regex, error) {
	atom, err := p.parseRegexAtom()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.cur().Is("*"):
			p.next()
			atom = &ast.Regex{Op: ast.RxStar, Subs: []*ast.Regex{atom}}
		case p.cur().Is("+"):
			p.next()
			atom = &ast.Regex{Op: ast.RxPlus, Subs: []*ast.Regex{atom}}
		case p.cur().Is("?"):
			p.next()
			atom = &ast.Regex{Op: ast.RxOpt, Subs: []*ast.Regex{atom}}
		default:
			return atom, nil
		}
	}
}

func (p *parser) parseRegexAtom() (*ast.Regex, error) {
	switch {
	case p.cur().Is(":"):
		p.next()
		l, err := p.expectIdent("edge label")
		if err != nil {
			return nil, err
		}
		if p.cur().Is("-") {
			p.next()
			return &ast.Regex{Op: ast.RxInvLabel, Label: l}, nil
		}
		return &ast.Regex{Op: ast.RxLabel, Label: l}, nil
	case p.cur().Is("_"):
		p.next()
		if p.cur().Is("-") {
			p.next()
			return &ast.Regex{Op: ast.RxAnyInv}, nil
		}
		return &ast.Regex{Op: ast.RxAnyEdge}, nil
	case p.cur().Is("!"):
		p.next()
		if p.cur().Is(":") {
			p.next()
		}
		l, err := p.expectIdent("node label after !")
		if err != nil {
			return nil, err
		}
		return &ast.Regex{Op: ast.RxNodeLabel, Label: l}, nil
	case p.cur().Is("~"):
		p.next()
		l, err := p.expectIdent("path view name after ~")
		if err != nil {
			return nil, err
		}
		return &ast.Regex{Op: ast.RxView, Label: l}, nil
	case p.cur().Is("("):
		p.next()
		inner, err := p.parseRegexAlt()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return nil, p.errf("expected regular path expression atom, got %s", p.cur())
}
