package parser

// PaperQueries holds, verbatim (modulo the paper's typesetting line
// breaks), every numbered example of the guided tour (§3) and the
// extension section (§5) of the G-CORE paper, keyed by the line range
// it occupies in the paper. The repro tests parse and evaluate all of
// them; Table 1's feature inventory refers to these keys.
var PaperQueries = map[string]string{
	// Lines 1–4: the simplest query — always returning a graph.
	"L01": `CONSTRUCT (n)
MATCH (n:Person)
ON social_graph
WHERE n.employer = 'Acme'`,

	// Lines 5–9: multi-graph query with a value join.
	"L05": `CONSTRUCT (c) <-[:worksAt]-(n)
MATCH (c:Company) ON company_graph,
      (n:Person) ON social_graph
WHERE c.name = n.employer
UNION social_graph`,

	// Lines 10–14: IN instead of = for multi-valued employer.
	"L10": `CONSTRUCT (c) <-[:worksAt]-(n)
MATCH (c:Company) ON company_graph,
      (n:Person) ON social_graph
WHERE c.name IN n.employer
UNION social_graph`,

	// Lines 15–19: binding a variable to a property ({employer=e}).
	"L15": `CONSTRUCT (c) <-[:worksAt]-(n)
MATCH (c:Company) ON company_graph,
      (n:Person {employer=e}) ON social_graph
WHERE c.name = e
UNION social_graph`,

	// Lines 20–22: graph aggregation with GROUP.
	"L20": `CONSTRUCT social_graph,
          (x GROUP e :Company {name:=e}) <-[y:worksAt]-(n)
MATCH (n:Person {employer=e})`,

	// Lines 23–27: storing shortest paths with @p.
	"L23": `CONSTRUCT (n)-/@p:localPeople{distance:=c}/->(m)
MATCH (n) -/3 SHORTEST p<:knows*> COST c/->(m)
WHERE (n:Person) AND (m:Person)
AND n.firstName = 'John' AND n.lastName = 'Doe'
AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)`,

	// Lines 28–31: reachability.
	"L28": `CONSTRUCT (m)
MATCH (n:Person) -/<:knows*>/->(m:Person)
WHERE n.firstName = 'John' AND n.lastName = 'Doe'
AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)`,

	// Lines 32–35: ALL paths graph projection.
	"L32": `CONSTRUCT (n)-/p/->(m)
MATCH (n:Person)-/ALL p<:knows*>/->(m:Person)
WHERE n.firstName = 'John' AND n.lastName = 'Doe'
AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)`,

	// Lines 36–38: explicit existential subquery.
	"L36": `CONSTRUCT (x)
MATCH (n:Person), (m:Person)
WHERE EXISTS (
  CONSTRUCT ()
  MATCH (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m) )`,

	// Lines 39–47: graph view with OPTIONAL and SET.
	"L39": `GRAPH VIEW social_graph1 AS (
CONSTRUCT social_graph,
          (n)-[e]->(m) SET e.nr_messages := COUNT(*)
MATCH (n)-[e:knows]->(m)
WHERE (n:Person) AND (m:Person)
OPTIONAL (n)<-[c1]-(msg1:Post|Comment),
         (msg1)-[:reply_of]-(msg2),
         (msg2:Post|Comment)-[c2]->(m)
WHERE (c1:has_creator) AND (c2:has_creator) )`,

	// Lines 48–50: multiple OPTIONAL blocks.
	"L48": `CONSTRUCT (n)
MATCH (n:Person)
OPTIONAL (n)-[:worksAt]->(c)
OPTIONAL (n)-[:livesIn]->(a)`,

	// Lines 51–53: OPTIONAL order irrelevance.
	"L51": `CONSTRUCT (n)
MATCH (n:Person)
OPTIONAL (n)-[:livesIn]->(a)
OPTIONAL (n)-[:worksAt]->(c)`,

	// Lines 57–66: weighted shortest paths over a PATH view.
	"L57": `GRAPH VIEW social_graph2 AS (
PATH wKnows = (x)-[e:knows]->(y)
     WHERE NOT 'Acme' IN y.employer
     COST 1 / (1 + e.nr_messages)
CONSTRUCT social_graph1, (n)-/@p:toWagner/->(m)
MATCH (n:Person)-/p<~wKnows*>/->(m:Person)
ON social_graph1
WHERE (m)-[:hasInterest]->(:Tag {name='Wagner'})
AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)
AND n.firstName = 'John' AND n.lastName = 'Doe')`,

	// Lines 67–71: querying stored paths.
	"L67": `CONSTRUCT (n)-[e:wagnerFriend {score:=COUNT(*)}]->(m)
          WHEN e.score > 0
MATCH (n:Person)-/@p:toWagner/->(), (m:Person)
ON social_graph2
WHERE n = nodes(p)[1]`,

	// Lines 72–75: tabular projection (§5).
	"L72": `SELECT m.lastName + ', ' + m.firstName AS friendName
MATCH (n:Person) -/<:knows*>/->(m:Person)
WHERE n.firstName = 'John' AND n.lastName = 'Doe'
AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)`,

	// Lines 76–80: binding table input (§5).
	"L76": `CONSTRUCT
  (cust GROUP custName :Customer {name:=custName}),
  (prod GROUP prodCode :Product {code:=prodCode}),
  (cust)-[:bought]->(prod)
FROM orders`,

	// Lines 81–85: tables as graphs (§5).
	"L81": `CONSTRUCT
  (cust GROUP o.custName :Customer {name:=o.custName}),
  (prod GROUP o.prodCode :Product {code:=o.prodCode}),
  (cust)-[:bought]->(prod)
MATCH (o) ON orders`,
}
