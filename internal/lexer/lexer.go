// Package lexer tokenises G-CORE's surface syntax: the ASCII-art
// graph patterns of Cypher heritage ("(n)-[:worksAt]->(m)"), the
// path-pattern slashes "-/ ... /-", regular path expressions in angle
// brackets ("<:knows*>"), stored-path markers "@p", property maps with
// binding "{employer=e}" and construction "{name:=e}" forms, and the
// ordinary expression syntax of the WHERE clause.
//
// Keywords are case-insensitive and normalised to upper case;
// identifiers (variables, labels, property keys, graph names) are
// case-sensitive. Comments run from '#' or from '/*' to '*/'.
package lexer

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Kind classifies a token.
type Kind uint8

// Token kinds.
const (
	EOF Kind = iota
	Ident
	Keyword
	String // quoted literal, Text holds the decoded content
	Int
	Float
	Punct // one of the operator/punctuation lexemes, Text holds it
	Param // $name parameter reference, Text holds the name without '$'
)

func (k Kind) String() string {
	switch k {
	case EOF:
		return "end of input"
	case Ident:
		return "identifier"
	case Keyword:
		return "keyword"
	case String:
		return "string"
	case Int:
		return "integer"
	case Float:
		return "float"
	case Punct:
		return "punctuation"
	case Param:
		return "parameter"
	}
	return "token"
}

// Pos is a source position, 1-based.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexeme with its position. Off and End are the byte
// offsets of the lexeme in the source (End exclusive), so callers can
// splice the original text around a token — parameter inlining and
// script statement splitting both need that.
type Token struct {
	Kind     Kind
	Text     string
	Pos      Pos
	Off, End int
}

// Is reports whether the token is the given punctuation lexeme.
func (t Token) Is(punct string) bool { return t.Kind == Punct && t.Text == punct }

// IsKeyword reports whether the token is the given keyword.
func (t Token) IsKeyword(kw string) bool { return t.Kind == Keyword && t.Text == kw }

func (t Token) String() string {
	switch t.Kind {
	case EOF:
		return "end of input"
	case String:
		return fmt.Sprintf("'%s'", t.Text)
	case Param:
		return fmt.Sprintf("%q", "$"+t.Text)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

// keywords of the language (§3–§5) in canonical upper case.
var keywords = map[string]bool{
	"CONSTRUCT": true, "MATCH": true, "WHERE": true, "ON": true,
	"OPTIONAL": true, "UNION": true, "INTERSECT": true, "MINUS": true,
	"GRAPH": true, "VIEW": true, "AS": true, "PATH": true, "COST": true,
	"SHORTEST": true, "ALL": true, "EXISTS": true, "SET": true,
	"REMOVE": true, "WHEN": true, "GROUP": true, "AND": true, "OR": true,
	"NOT": true, "IN": true, "SUBSET": true, "TRUE": true, "FALSE": true,
	"NULL": true, "CASE": true, "THEN": true, "ELSE": true, "END": true,
	"SELECT": true, "FROM": true, "DISTINCT": true, "DATE": true,
	"ORDER": true, "BY": true, "LIMIT": true, "ASC": true, "DESC": true,
}

// multi-character punctuation, longest first.
var compounds = []string{":=", "<>", "<=", ">="}

const singles = "()[]{}<>,;:.|@~!*+-/%=?_&"

// Error is a lexical error with its position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("lex error at %s: %s", e.Pos, e.Msg) }

// Lex tokenises src completely. The returned slice always ends with an
// EOF token carrying the final position.
func Lex(src string) ([]Token, error) {
	l := &lexer{src: src, line: 1, col: 1}
	var toks []Token
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.Kind == EOF {
			return toks, nil
		}
	}
}

type lexer struct {
	src       string
	off       int
	line, col int
}

func (l *lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *lexer) peek() (rune, int) {
	if l.off >= len(l.src) {
		return 0, 0
	}
	return utf8.DecodeRuneInString(l.src[l.off:])
}

func (l *lexer) advance() rune {
	r, w := l.peek()
	l.off += w
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *lexer) errf(pos Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	startOff := l.off
	tok, err := l.scan()
	if err != nil {
		return Token{}, err
	}
	tok.Off, tok.End = startOff, l.off
	return tok, nil
}

func (l *lexer) scan() (Token, error) {
	start := l.pos()
	r, _ := l.peek()
	switch {
	case l.off >= len(l.src):
		return Token{Kind: EOF, Pos: start}, nil
	case r == '\'' || r == '"':
		return l.lexString(start)
	case unicode.IsDigit(r):
		return l.lexNumber(start)
	case unicode.IsLetter(r) || r == '_':
		return l.lexWord(start)
	case r == '$':
		return l.lexParam(start)
	}
	// Compound punctuation.
	for _, c := range compounds {
		if strings.HasPrefix(l.src[l.off:], c) {
			for range c {
				l.advance()
			}
			return Token{Kind: Punct, Text: c, Pos: start}, nil
		}
	}
	if strings.ContainsRune(singles, r) {
		l.advance()
		return Token{Kind: Punct, Text: string(r), Pos: start}, nil
	}
	return Token{}, l.errf(start, "unexpected character %q", r)
}

func (l *lexer) skipSpaceAndComments() error {
	for {
		r, _ := l.peek()
		switch {
		case l.off >= len(l.src):
			return nil
		case unicode.IsSpace(r):
			l.advance()
		case r == '#':
			for l.off < len(l.src) {
				if l.advance() == '\n' {
					break
				}
			}
		case r == '/' && strings.HasPrefix(l.src[l.off:], "/*"):
			pos := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if strings.HasPrefix(l.src[l.off:], "*/") {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return l.errf(pos, "unterminated block comment")
			}
		default:
			return nil
		}
	}
}

func (l *lexer) lexString(start Pos) (Token, error) {
	quote := l.advance()
	var sb strings.Builder
	for {
		if l.off >= len(l.src) {
			return Token{}, l.errf(start, "unterminated string literal")
		}
		r := l.advance()
		switch {
		case r == quote:
			// Doubled quote is an escaped quote ('Acme''s').
			if nr, _ := l.peek(); nr == quote {
				l.advance()
				sb.WriteRune(quote)
				continue
			}
			return Token{Kind: String, Text: sb.String(), Pos: start}, nil
		case r == '\\':
			if l.off >= len(l.src) {
				return Token{}, l.errf(start, "unterminated string escape")
			}
			esc := l.advance()
			switch esc {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case '\\', '\'', '"':
				sb.WriteRune(esc)
			default:
				return Token{}, l.errf(start, "unknown string escape \\%c", esc)
			}
		default:
			sb.WriteRune(r)
		}
	}
}

func (l *lexer) lexNumber(start Pos) (Token, error) {
	var sb strings.Builder
	kind := Int
	for {
		r, _ := l.peek()
		if unicode.IsDigit(r) {
			sb.WriteRune(l.advance())
			continue
		}
		break
	}
	// Fractional part: only if a digit follows the dot, so that
	// "nodes(p)[1]." style property access on numbers stays intact
	// and ranges like 1..2 would not be misread.
	if r, _ := l.peek(); r == '.' {
		rest := l.src[l.off+1:]
		if len(rest) > 0 && rest[0] >= '0' && rest[0] <= '9' {
			kind = Float
			sb.WriteRune(l.advance())
			for {
				r, _ := l.peek()
				if !unicode.IsDigit(r) {
					break
				}
				sb.WriteRune(l.advance())
			}
		}
	}
	if r, _ := l.peek(); r == 'e' || r == 'E' {
		rest := l.src[l.off+1:]
		if len(rest) > 0 && (rest[0] == '+' || rest[0] == '-' || (rest[0] >= '0' && rest[0] <= '9')) {
			kind = Float
			sb.WriteRune(l.advance()) // e
			if r, _ := l.peek(); r == '+' || r == '-' {
				sb.WriteRune(l.advance())
			}
			saw := false
			for {
				r, _ := l.peek()
				if !unicode.IsDigit(r) {
					break
				}
				saw = true
				sb.WriteRune(l.advance())
			}
			if !saw {
				return Token{}, l.errf(start, "malformed exponent in number")
			}
		}
	}
	return Token{Kind: kind, Text: sb.String(), Pos: start}, nil
}

// lexParam lexes a $name parameter reference for prepared statements.
// The name follows identifier rules; Text holds it without the '$'.
func (l *lexer) lexParam(start Pos) (Token, error) {
	l.advance() // '$'
	if r, _ := l.peek(); !unicode.IsLetter(r) && r != '_' {
		return Token{}, l.errf(start, "expected parameter name after '$'")
	}
	var sb strings.Builder
	for {
		r, _ := l.peek()
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' {
			sb.WriteRune(l.advance())
			continue
		}
		break
	}
	return Token{Kind: Param, Text: sb.String(), Pos: start}, nil
}

func (l *lexer) lexWord(start Pos) (Token, error) {
	var sb strings.Builder
	for {
		r, _ := l.peek()
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' {
			sb.WriteRune(l.advance())
			continue
		}
		break
	}
	word := sb.String()
	if word == "_" {
		// Lone underscore is the wildcard punct (regex any-label).
		return Token{Kind: Punct, Text: "_", Pos: start}, nil
	}
	if up := strings.ToUpper(word); keywords[up] {
		return Token{Kind: Keyword, Text: up, Pos: start}, nil
	}
	return Token{Kind: Ident, Text: word, Pos: start}, nil
}
