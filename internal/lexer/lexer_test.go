package lexer

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []Kind {
	ks := make([]Kind, len(toks))
	for i, t := range toks {
		ks[i] = t.Kind
	}
	return ks
}

func texts(toks []Token) string {
	parts := make([]string, 0, len(toks))
	for _, t := range toks {
		if t.Kind == EOF {
			break
		}
		parts = append(parts, t.Text)
	}
	return strings.Join(parts, " ")
}

func TestLexFirstPaperQuery(t *testing.T) {
	src := `CONSTRUCT (n)
MATCH (n:Person)
ON social_graph
WHERE n.employer = 'Acme'`
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	want := "CONSTRUCT ( n ) MATCH ( n : Person ) ON social_graph WHERE n . employer = Acme"
	if got := texts(toks); got != want {
		t.Errorf("texts = %q\nwant    %q", got, want)
	}
	// Keywords normalise; identifiers keep case.
	if toks[0].Kind != Keyword || toks[0].Text != "CONSTRUCT" {
		t.Error("CONSTRUCT must be a keyword")
	}
	if toks[8].Kind != Ident || toks[8].Text != "Person" {
		t.Errorf("label token = %v", toks[8])
	}
	last := toks[len(toks)-2]
	if last.Kind != String || last.Text != "Acme" {
		t.Errorf("string token = %v", last)
	}
}

func TestLexPatternArt(t *testing.T) {
	toks, err := Lex(`(c) <-[:worksAt]-(n) -/3 SHORTEST p<:knows*> COST c/->(m)`)
	if err != nil {
		t.Fatal(err)
	}
	got := texts(toks)
	want := "( c ) < - [ : worksAt ] - ( n ) - / 3 SHORTEST p < : knows * > COST c / - > ( m )"
	if got != want {
		t.Errorf("texts = %q\nwant    %q", got, want)
	}
}

func TestLexCompounds(t *testing.T) {
	toks, err := Lex(`{name := e} a <> b c <= d e >= f @p ~wKnows !x _`)
	if err != nil {
		t.Fatal(err)
	}
	var puncts []string
	for _, tok := range toks {
		if tok.Kind == Punct {
			puncts = append(puncts, tok.Text)
		}
	}
	want := []string{"{", ":=", "}", "<>", "<=", ">=", "@", "~", "!", "_"}
	if strings.Join(puncts, ",") != strings.Join(want, ",") {
		t.Errorf("puncts = %v, want %v", puncts, want)
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := Lex(`42 0.95 1e3 2.5E-2 7`)
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := []Kind{Int, Float, Float, Float, Int, EOF}
	got := kinds(toks)
	for i, k := range wantKinds {
		if got[i] != k {
			t.Errorf("token %d kind = %v, want %v (%q)", i, got[i], k, toks[i].Text)
		}
	}
	// A dot not followed by a digit is separate (property access).
	toks, err = Lex(`nodes(p)[1]`)
	if err != nil {
		t.Fatal(err)
	}
	if texts(toks) != "nodes ( p ) [ 1 ]" {
		t.Errorf("texts = %q", texts(toks))
	}
}

func TestLexStrings(t *testing.T) {
	toks, err := Lex(`'John' "Doe" 'it''s' 'a\'b' 'x\ny'`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"John", "Doe", "it's", "a'b", "x\ny"}
	for i, w := range want {
		if toks[i].Kind != String || toks[i].Text != w {
			t.Errorf("string %d = %v, want %q", i, toks[i], w)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("a # line comment\n b /* block\ncomment */ c")
	if err != nil {
		t.Fatal(err)
	}
	if texts(toks) != "a b c" {
		t.Errorf("texts = %q", texts(toks))
	}
}

func TestLexErrors(t *testing.T) {
	cases := []string{
		"'unterminated",
		`'bad escape \q'`,
		"/* unterminated",
		"a $ b",
		"1e+",
		`'trailing \`,
	}
	for _, src := range cases {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) should fail", src)
		}
	}
}

func TestPositions(t *testing.T) {
	toks, err := Lex("a\n  bb\n ccc")
	if err != nil {
		t.Fatal(err)
	}
	wants := []Pos{{1, 1}, {2, 3}, {3, 2}}
	for i, w := range wants {
		if toks[i].Pos != w {
			t.Errorf("token %d pos = %v, want %v", i, toks[i].Pos, w)
		}
	}
	if toks[0].Pos.String() != "1:1" {
		t.Errorf("Pos.String = %q", toks[0].Pos.String())
	}
}

func TestTokenHelpers(t *testing.T) {
	toks, err := Lex(`( MATCH`)
	if err != nil {
		t.Fatal(err)
	}
	if !toks[0].Is("(") || toks[0].Is(")") {
		t.Error("Is misbehaves")
	}
	if !toks[1].IsKeyword("MATCH") || toks[1].IsKeyword("WHERE") {
		t.Error("IsKeyword misbehaves")
	}
	if toks[0].String() == "" || toks[1].String() == "" {
		t.Error("empty token string")
	}
	for _, k := range []Kind{EOF, Ident, Keyword, String, Int, Float, Punct} {
		if k.String() == "" || k.String() == "token" {
			t.Errorf("Kind(%d) has no name", k)
		}
	}
	eof := Token{Kind: EOF}
	if eof.String() != "end of input" {
		t.Errorf("EOF string = %q", eof.String())
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	toks, err := Lex("construct Match wHeRe oPtIoNaL")
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"CONSTRUCT", "MATCH", "WHERE", "OPTIONAL"} {
		if toks[i].Kind != Keyword || toks[i].Text != want {
			t.Errorf("token %d = %v, want keyword %s", i, toks[i], want)
		}
	}
}

func TestLexParams(t *testing.T) {
	toks, err := Lex(`WHERE n.age > $min_age AND n.name = $name`)
	if err != nil {
		t.Fatal(err)
	}
	var params []string
	for _, tok := range toks {
		if tok.Kind == Param {
			params = append(params, tok.Text)
		}
	}
	if len(params) != 2 || params[0] != "min_age" || params[1] != "name" {
		t.Fatalf("params = %v", params)
	}

	// A parameter token's byte offsets span the whole $name form.
	src := `x = $p1`
	toks, err = Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	p := toks[len(toks)-2] // last real token before EOF
	if p.Kind != Param || src[p.Off:p.End] != "$p1" {
		t.Fatalf("token = %v, src[%d:%d] = %q", p, p.Off, p.End, src[p.Off:p.End])
	}

	// Bad parameter names fail with a position.
	for _, bad := range []string{`$`, `$1x`, `$ name`} {
		if _, err := Lex(bad); err == nil {
			t.Errorf("Lex(%q) succeeded", bad)
		}
	}
}

func TestTokenOffsets(t *testing.T) {
	src := "MATCH (n) WHERE n.name = 'a b'"
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range toks {
		if tok.Kind == EOF {
			if tok.Off != len(src) {
				t.Errorf("EOF Off = %d, want %d", tok.Off, len(src))
			}
			continue
		}
		if tok.Off < 0 || tok.End > len(src) || tok.Off >= tok.End {
			t.Errorf("token %v has bad offsets [%d,%d)", tok, tok.Off, tok.End)
		}
	}
	// The string literal's slice includes its quotes.
	last := toks[len(toks)-2]
	if src[last.Off:last.End] != "'a b'" {
		t.Errorf("string slice = %q", src[last.Off:last.End])
	}
}
