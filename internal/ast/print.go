package ast

import (
	"fmt"
	"strings"

	"gcore/internal/value"
)

// String renders the statement in canonical surface syntax. The
// rendering is parseable again (modulo whitespace), which the parser
// tests use as a round-trip check.
func (s *Statement) String() string {
	var sb strings.Builder
	switch s.Explain {
	case ExplainPlan:
		sb.WriteString("EXPLAIN\n")
	case ExplainAnalyze:
		sb.WriteString("EXPLAIN ANALYZE\n")
	}
	for _, p := range s.Paths {
		sb.WriteString(p.String())
		sb.WriteByte('\n')
	}
	for _, g := range s.Graphs {
		sb.WriteString(g.String())
		sb.WriteByte('\n')
	}
	if s.Query != nil {
		writeQuery(&sb, s.Query)
	}
	return strings.TrimRight(sb.String(), "\n")
}

func writeQuery(sb *strings.Builder, q Query) {
	switch x := q.(type) {
	case *SetQuery:
		writeQuery(sb, x.Left)
		sb.WriteByte('\n')
		sb.WriteString(x.Op.String())
		sb.WriteByte('\n')
		writeQuery(sb, x.Right)
	case *BasicQuery:
		sb.WriteString(x.String())
	}
}

// String renders a PATH clause.
func (p *PathClause) String() string {
	var sb strings.Builder
	sb.WriteString("PATH ")
	sb.WriteString(p.Name)
	sb.WriteString(" = ")
	for i, gp := range p.Patterns {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(gp.String())
	}
	if p.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(ExprString(p.Where))
	}
	if p.Cost != nil {
		sb.WriteString(" COST ")
		sb.WriteString(ExprString(p.Cost))
	}
	return sb.String()
}

// String renders a GRAPH / GRAPH VIEW clause.
func (g *GraphClause) String() string {
	var sb strings.Builder
	if g.View {
		sb.WriteString("GRAPH VIEW ")
	} else {
		sb.WriteString("GRAPH ")
	}
	sb.WriteString(g.Name)
	sb.WriteString(" AS (\n")
	sb.WriteString(g.Body.String())
	sb.WriteString("\n)")
	return sb.String()
}

// String renders a basic query.
func (b *BasicQuery) String() string {
	var sb strings.Builder
	if b.Select != nil {
		sb.WriteString(b.Select.String())
	}
	if b.Construct != nil {
		sb.WriteString(b.Construct.String())
	}
	if b.From != "" {
		sb.WriteString("\nFROM ")
		sb.WriteString(b.From)
	}
	if b.Match != nil {
		sb.WriteByte('\n')
		sb.WriteString(b.Match.String())
	}
	return strings.TrimLeft(sb.String(), "\n")
}

// String renders a MATCH clause.
func (m *MatchClause) String() string {
	var sb strings.Builder
	sb.WriteString("MATCH ")
	for i, lp := range m.Patterns {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(lp.String())
	}
	if m.Where != nil {
		sb.WriteString("\nWHERE ")
		sb.WriteString(ExprString(m.Where))
	}
	for _, o := range m.Optionals {
		sb.WriteByte('\n')
		sb.WriteString(o.String())
	}
	return sb.String()
}

// String renders an OPTIONAL block.
func (o *OptionalBlock) String() string {
	var sb strings.Builder
	sb.WriteString("OPTIONAL ")
	for i, lp := range o.Patterns {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(lp.String())
	}
	if o.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(ExprString(o.Where))
	}
	return sb.String()
}

// String renders a located pattern.
func (lp *LocatedPattern) String() string {
	s := lp.Pattern.String()
	if lp.OnGraph != "" {
		s += " ON " + lp.OnGraph
	}
	if lp.OnQuery != nil {
		var sb strings.Builder
		writeQuery(&sb, lp.OnQuery)
		s += " ON (" + sb.String() + ")"
	}
	return s
}

// String renders a graph pattern chain.
func (g *GraphPattern) String() string {
	var sb strings.Builder
	sb.WriteString(g.Nodes[0].String())
	for i, l := range g.Links {
		switch x := l.(type) {
		case *EdgePattern:
			sb.WriteString(x.String())
		case *PathPattern:
			sb.WriteString(x.String())
		}
		sb.WriteString(g.Nodes[i+1].String())
	}
	return sb.String()
}

func (ls LabelSpec) String() string {
	var sb strings.Builder
	for _, conj := range ls {
		sb.WriteByte(':')
		sb.WriteString(strings.Join(conj, "|"))
	}
	return sb.String()
}

func propsString(props []*PropSpec) string {
	if len(props) == 0 {
		return ""
	}
	parts := make([]string, len(props))
	for i, p := range props {
		switch p.Mode {
		case PropFilter:
			parts[i] = fmt.Sprintf("%s = %s", p.Key, ExprString(p.Expr))
		case PropBind:
			parts[i] = fmt.Sprintf("%s = %s", p.Key, p.Var)
		case PropAssign:
			parts[i] = fmt.Sprintf("%s := %s", p.Key, ExprString(p.Expr))
		}
	}
	return " {" + strings.Join(parts, ", ") + "}"
}

func groupString(group []Expr) string {
	if len(group) == 0 {
		return ""
	}
	parts := make([]string, len(group))
	for i, e := range group {
		parts[i] = ExprString(e)
	}
	return " GROUP " + strings.Join(parts, ", ")
}

// String renders a node pattern.
func (n *NodePattern) String() string {
	var sb strings.Builder
	sb.WriteByte('(')
	if n.Copy {
		sb.WriteByte('=')
	}
	sb.WriteString(n.Var)
	sb.WriteString(groupString(n.Group))
	if len(n.Labels) > 0 {
		if n.Var != "" || len(n.Group) > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(n.Labels.String())
	}
	sb.WriteString(propsString(n.Props))
	sb.WriteByte(')')
	return sb.String()
}

// String renders an edge pattern with its direction arrows.
func (e *EdgePattern) String() string {
	var sb strings.Builder
	if e.Dir == DirIn {
		sb.WriteString("<-[")
	} else {
		sb.WriteString("-[")
	}
	if e.Copy {
		sb.WriteByte('=')
	}
	sb.WriteString(e.Var)
	sb.WriteString(groupString(e.Group))
	if len(e.Labels) > 0 {
		if e.Var != "" || len(e.Group) > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(e.Labels.String())
	}
	sb.WriteString(propsString(e.Props))
	if e.Dir == DirOut {
		sb.WriteString("]->")
	} else {
		sb.WriteString("]-")
	}
	return sb.String()
}

// String renders a path pattern with its slashes.
func (p *PathPattern) String() string {
	var sb strings.Builder
	if p.Dir == DirIn {
		sb.WriteString("<-/")
	} else {
		sb.WriteString("-/")
	}
	switch {
	case p.Mode == PathAll:
		sb.WriteString("ALL ")
	case p.K > 1:
		fmt.Fprintf(&sb, "%d SHORTEST ", p.K)
	}
	if p.Stored {
		sb.WriteByte('@')
	}
	sb.WriteString(p.Var)
	if len(p.Labels) > 0 {
		sb.WriteString(p.Labels.String())
	}
	sb.WriteString(propsString(p.Props))
	if p.Regex != nil {
		if p.Var != "" {
			sb.WriteByte(' ')
		}
		sb.WriteByte('<')
		sb.WriteString(p.Regex.String())
		sb.WriteByte('>')
	}
	if p.CostVar != "" {
		sb.WriteString(" COST ")
		sb.WriteString(p.CostVar)
	}
	if p.Dir == DirOut {
		sb.WriteString("/->")
	} else {
		sb.WriteString("/-")
	}
	return sb.String()
}

// String renders a CONSTRUCT clause.
func (c *ConstructClause) String() string {
	var sb strings.Builder
	sb.WriteString("CONSTRUCT ")
	for i, item := range c.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(item.String())
	}
	return sb.String()
}

// String renders one construct item.
func (ci *ConstructItem) String() string {
	if ci.GraphName != "" {
		return ci.GraphName
	}
	var sb strings.Builder
	sb.WriteString(ci.Pattern.String())
	for _, s := range ci.Sets {
		sb.WriteString(" SET ")
		if s.Key != "" {
			fmt.Fprintf(&sb, "%s.%s := %s", s.Var, s.Key, ExprString(s.Expr))
		} else {
			fmt.Fprintf(&sb, "%s:%s", s.Var, s.Label)
		}
	}
	for _, r := range ci.Removes {
		sb.WriteString(" REMOVE ")
		if r.Key != "" {
			fmt.Fprintf(&sb, "%s.%s", r.Var, r.Key)
		} else {
			fmt.Fprintf(&sb, "%s:%s", r.Var, r.Label)
		}
	}
	if ci.When != nil {
		sb.WriteString(" WHEN ")
		sb.WriteString(ExprString(ci.When))
	}
	return sb.String()
}

// String renders a SELECT clause.
func (s *SelectClause) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if s.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(ExprString(it.Expr))
		if it.As != "" {
			sb.WriteString(" AS ")
			sb.WriteString(it.As)
		}
	}
	for i, o := range s.OrderBy {
		if i == 0 {
			sb.WriteString(" ORDER BY ")
		} else {
			sb.WriteString(", ")
		}
		sb.WriteString(ExprString(o.Expr))
		if o.Desc {
			sb.WriteString(" DESC")
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&sb, " LIMIT %d", s.Limit)
	}
	return sb.String()
}

// quoteString renders a string literal so that it re-lexes to the
// same value: backslashes and control characters use backslash
// escapes, quotes are doubled.
func quoteString(s string) string {
	var sb strings.Builder
	sb.WriteByte('\'')
	for _, r := range s {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '\'':
			sb.WriteString("''")
		case '\n':
			sb.WriteString(`\n`)
		case '\t':
			sb.WriteString(`\t`)
		default:
			sb.WriteRune(r)
		}
	}
	sb.WriteByte('\'')
	return sb.String()
}

// ExprString renders an expression in surface syntax.
func ExprString(e Expr) string {
	switch x := e.(type) {
	case nil:
		return ""
	case *Literal:
		if s, ok := x.Val.AsString(); ok {
			return quoteString(s)
		}
		if x.Val.Kind() == value.KindDate {
			return "DATE '" + x.Val.String() + "'"
		}
		return x.Val.String()
	case *Param:
		return "$" + x.Name
	case *VarRef:
		return x.Name
	case *PropAccess:
		return x.Var + "." + x.Key
	case *LabelTest:
		return "(" + x.Var + ":" + strings.Join(x.Labels, "|") + ")"
	case *Unary:
		if x.Op == OpNot {
			return "NOT " + ExprString(x.X)
		}
		return "-" + ExprString(x.X)
	case *Binary:
		return "(" + ExprString(x.L) + " " + x.Op.String() + " " + ExprString(x.R) + ")"
	case *FuncCall:
		if x.Star {
			return strings.ToUpper(x.Name) + "(*)"
		}
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = ExprString(a)
		}
		return x.Name + "(" + strings.Join(args, ", ") + ")"
	case *Index:
		return ExprString(x.Base) + "[" + ExprString(x.Idx) + "]"
	case *Case:
		var sb strings.Builder
		sb.WriteString("CASE")
		if x.Operand != nil {
			sb.WriteByte(' ')
			sb.WriteString(ExprString(x.Operand))
		}
		for _, w := range x.Whens {
			sb.WriteString(" WHEN ")
			sb.WriteString(ExprString(w.Cond))
			sb.WriteString(" THEN ")
			sb.WriteString(ExprString(w.Then))
		}
		if x.Else != nil {
			sb.WriteString(" ELSE ")
			sb.WriteString(ExprString(x.Else))
		}
		sb.WriteString(" END")
		return sb.String()
	case *Exists:
		var sb strings.Builder
		writeQuery(&sb, x.Query)
		return "EXISTS (" + sb.String() + ")"
	case *PatternPred:
		return x.Pattern.String()
	}
	return "?"
}
