// Package ast defines the abstract syntax of G-CORE following the
// top-down grammar of §4 of the paper:
//
//	query          ::= headClause fullGraphQuery
//	headClause     ::= ε | pathClause headClause | graphClause headClause
//	fullGraphQuery ::= basicGraphQuery | (fullGraphQuery setOp fullGraphQuery)
//	setOp          ::= UNION | INTERSECT | MINUS
//	basicGraphQuery::= constructClause matchClause
//
// plus the tabular extensions of §5 (SELECT projection, FROM binding
// table import). Nodes carry source positions for error reporting.
package ast

import "gcore/internal/lexer"

// Statement is one complete input: optional head clauses (PATH
// definitions, GRAPH/GRAPH VIEW definitions) followed by an optional
// full graph query. A statement consisting only of definitions (the
// paper's lines 39–47 and 57–66 wrap whole queries in GRAPH VIEW) is
// legal.
type Statement struct {
	Explain ExplainMode // EXPLAIN / EXPLAIN ANALYZE prefix, if any
	Paths   []*PathClause
	Graphs  []*GraphClause
	Query   Query // nil for definition-only statements
}

// ExplainMode marks a statement prefixed with EXPLAIN (print the plan
// without executing) or EXPLAIN ANALYZE (execute, then print the plan
// annotated with observed row counts and timings).
type ExplainMode uint8

const (
	ExplainNone ExplainMode = iota
	ExplainPlan
	ExplainAnalyze
)

// Pos returns the source position of the statement's first clause, for
// error messages that locate a failing statement inside a script. The
// zero position (line 0) is returned for a statement with no clauses.
func (s *Statement) Pos() lexer.Pos {
	if len(s.Paths) > 0 {
		return s.Paths[0].P
	}
	if len(s.Graphs) > 0 {
		return s.Graphs[0].P
	}
	q := s.Query
	for {
		switch x := q.(type) {
		case *BasicQuery:
			return x.P
		case *SetQuery:
			q = x.Left
		default:
			return lexer.Pos{}
		}
	}
}

// Query is a full graph query: a basic query or a set operation.
type Query interface{ queryNode() }

// SetOp is one of the graph set operations of §A.5.
type SetOp uint8

// The set operations.
const (
	SetUnion SetOp = iota
	SetIntersect
	SetMinus
)

func (op SetOp) String() string {
	switch op {
	case SetUnion:
		return "UNION"
	case SetIntersect:
		return "INTERSECT"
	case SetMinus:
		return "MINUS"
	}
	return "?"
}

// SetQuery combines two queries with a set operation.
type SetQuery struct {
	Op          SetOp
	Left, Right Query
}

// BasicQuery is CONSTRUCT…MATCH… (or the SELECT/FROM extensions).
// Exactly one of Construct and Select is set. Match may be nil for a
// pure construction over the unit binding table; From names a binding
// table imported instead of matching (§5).
type BasicQuery struct {
	Construct *ConstructClause
	Select    *SelectClause
	Match     *MatchClause
	From      string
	P         lexer.Pos
}

func (*SetQuery) queryNode()   {}
func (*BasicQuery) queryNode() {}

// PathClause is PATH name = pattern [WHERE cond] [COST expr] (§A.4):
// a weighted path-view definition usable in regular path expressions
// as ~name. The pattern may be non-linear: the first graph pattern
// carries the start and end node of the segment, further
// comma-separated patterns join context (footnote 3 of the paper).
type PathClause struct {
	Name     string
	Patterns []*GraphPattern
	Where    Expr
	Cost     Expr
	P        lexer.Pos
}

// GraphClause is GRAPH name AS (query) — a query-local binding — or
// GRAPH VIEW name AS (query) — a persistent view (§A.6). The body is
// a full statement: the paper's social_graph2 view (line 57) wraps a
// PATH clause together with the query.
type GraphClause struct {
	Name string
	Body *Statement
	View bool
	P    lexer.Pos
}

// MatchClause is MATCH fullGraphPattern [WHERE cond] optional* (§A.2).
type MatchClause struct {
	Patterns  []*LocatedPattern
	Where     Expr
	Optionals []*OptionalBlock
	P         lexer.Pos
}

// OptionalBlock is one OPTIONAL fullGraphPattern [WHERE cond]; blocks
// apply top-to-bottom as left-outer joins.
type OptionalBlock struct {
	Patterns []*LocatedPattern
	Where    Expr
	P        lexer.Pos
}

// LocatedPattern is a basic graph pattern with an optional ON
// location: a graph identifier or a subquery.
type LocatedPattern struct {
	Pattern *GraphPattern
	OnGraph string // graph identifier, "" if none
	OnQuery Query  // ON (subquery), nil if none
}

// GraphPattern is a chain (n0) link0 (n1) link1 … (nk): alternating
// node patterns and links, where each link is an edge or path pattern.
type GraphPattern struct {
	Nodes []*NodePattern // len = len(Links)+1
	Links []Link
	P     lexer.Pos
}

// Link is an edge or path pattern between two node patterns.
type Link interface{ linkNode() }

// Direction of an edge or path pattern relative to the chain.
type Direction uint8

// Directions: (a)-[e]->(b), (a)<-[e]-(b), (a)-[e]-(b).
const (
	DirOut Direction = iota
	DirIn
	DirBoth
)

func (d Direction) String() string {
	switch d {
	case DirOut:
		return "->"
	case DirIn:
		return "<-"
	case DirBoth:
		return "--"
	}
	return "?"
}

// LabelSpec is a label predicate: a conjunction of disjunctions, e.g.
// ":Post|Comment" is one disjunction {Post, Comment}; ":A:B" would be
// two conjuncts. In CONSTRUCT position every mentioned label is
// attached to the created object.
type LabelSpec [][]string

// PropMode distinguishes the three uses of {…} property maps.
type PropMode uint8

// Property map entry modes.
const (
	PropFilter PropMode = iota // {name = 'Wagner'}: match values
	PropBind                   // {employer = e}: bind (and unroll) values
	PropAssign                 // {name := expr}: CONSTRUCT assignment
)

// PropSpec is one entry of a property map.
type PropSpec struct {
	Key  string
	Mode PropMode
	Var  string // PropBind: variable receiving the value
	Expr Expr   // PropFilter / PropAssign: compared / assigned expression
	P    lexer.Pos
}

// NodePattern is (v :L1|L2 {props}), optionally with a GROUP clause in
// CONSTRUCT position or the copy form (=v).
type NodePattern struct {
	Var    string // "" = anonymous
	Copy   bool   // (=v): copy labels/properties into a fresh identity
	Labels LabelSpec
	Props  []*PropSpec
	Group  []Expr // CONSTRUCT: explicit grouping set (GROUP e, …)
	P      lexer.Pos
}

// EdgePattern is -[v :L {props}]-> and its direction variants.
type EdgePattern struct {
	Var    string
	Copy   bool // [=v]
	Labels LabelSpec
	Props  []*PropSpec
	Group  []Expr // CONSTRUCT: explicit grouping set
	Dir    Direction
	P      lexer.Pos
}

// PathMode selects the path-evaluation semantics of §3.
type PathMode uint8

// Path modes: k-shortest (the default, k=1), ALL-paths (legal only for
// graph projection), and plain reachability (no variable bound).
const (
	PathShortest PathMode = iota
	PathAll
	PathReach
)

// PathPattern is -/ … /-> in MATCH and CONSTRUCT position:
//
//	-/<:knows*>/->                 reachability test (PathReach)
//	-/p <:knows*>/->               shortest path bound to p
//	-/3 SHORTEST p <:knows*> COST c/->  k-shortest with cost variable
//	-/ALL p <:knows*>/->           all-paths (projection only)
//	-/@p:toWagner/->               stored-path match (members of P)
//	-/@p:label {d := c}/->         CONSTRUCT: store path p with label
//	-/p/->                         CONSTRUCT: project path p's elements
type PathPattern struct {
	Var     string
	Stored  bool // @p: stored path (match) / store the path (construct)
	Mode    PathMode
	K       int // k SHORTEST; 0 means the default of 1
	Labels  LabelSpec
	Props   []*PropSpec
	Regex   *Regex // nil for bare stored-path references
	CostVar string // COST c; "" if absent
	Dir     Direction
	P       lexer.Pos
}

func (*EdgePattern) linkNode() {}
func (*PathPattern) linkNode() {}

// ConstructClause is CONSTRUCT with a comma-separated list of basic
// constructs (§A.3). A plain graph name in the list unions gr(gid)
// into the result (the shorthand of the paper's line 20).
type ConstructClause struct {
	Items []*ConstructItem
	P     lexer.Pos
}

// ConstructItem is one basic construct: a graph name or a construct
// pattern with optional SET/REMOVE sub-clauses and a WHEN condition.
type ConstructItem struct {
	GraphName string // exclusive with Pattern
	Pattern   *GraphPattern
	Sets      []*SetItem
	Removes   []*RemoveItem
	When      Expr
	P         lexer.Pos
}

// SetItem is SET x.k := expr or SET x:Label.
type SetItem struct {
	Var   string
	Key   string // property assignment if non-empty
	Label string // label addition if non-empty
	Expr  Expr
	P     lexer.Pos
}

// RemoveItem is REMOVE x.k or REMOVE x:Label.
type RemoveItem struct {
	Var   string
	Key   string
	Label string
	P     lexer.Pos
}

// SelectClause is the §5 tabular projection extension.
type SelectClause struct {
	Distinct bool
	Items    []*SelectItem
	OrderBy  []*OrderItem
	Limit    int // -1 if absent
	P        lexer.Pos
}

// SelectItem is expr [AS name].
type SelectItem struct {
	Expr Expr
	As   string
	P    lexer.Pos
}

// OrderItem is expr [ASC|DESC].
type OrderItem struct {
	Expr Expr
	Desc bool
}
