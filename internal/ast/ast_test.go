package ast_test

import (
	"strings"
	"testing"

	"gcore/internal/ast"
	"gcore/internal/lexer"
	"gcore/internal/parser"
	"gcore/internal/value"
)

// TestPrintAllPaperQueries drives the canonical printer over every
// paper query's AST (the parser tests check re-parse stability; this
// checks printer coverage and shape).
func TestPrintAllPaperQueries(t *testing.T) {
	for key, src := range parser.PaperQueries {
		stmt, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		printed := stmt.String()
		if printed == "" {
			t.Errorf("%s: empty rendering", key)
		}
		if strings.Contains(printed, "?") && !strings.Contains(src, "?") {
			t.Errorf("%s: rendering contains placeholder '?':\n%s", key, printed)
		}
	}
}

func TestEnumStrings(t *testing.T) {
	if ast.SetUnion.String() != "UNION" || ast.SetIntersect.String() != "INTERSECT" ||
		ast.SetMinus.String() != "MINUS" || ast.SetOp(9).String() != "?" {
		t.Error("SetOp strings wrong")
	}
	if ast.DirOut.String() != "->" || ast.DirIn.String() != "<-" ||
		ast.DirBoth.String() != "--" || ast.Direction(9).String() != "?" {
		t.Error("Direction strings wrong")
	}
	if ast.OpNot.String() != "NOT" || ast.OpNeg.String() != "-" {
		t.Error("UnaryOp strings wrong")
	}
	binOps := map[ast.BinaryOp]string{
		ast.OpOr: "OR", ast.OpAnd: "AND", ast.OpEq: "=", ast.OpNeq: "<>",
		ast.OpLt: "<", ast.OpLe: "<=", ast.OpGt: ">", ast.OpGe: ">=",
		ast.OpIn: "IN", ast.OpSubset: "SUBSET", ast.OpAdd: "+",
		ast.OpSub: "-", ast.OpMul: "*", ast.OpDiv: "/", ast.OpMod: "%",
	}
	for op, want := range binOps {
		if op.String() != want {
			t.Errorf("op %d = %q, want %q", op, op.String(), want)
		}
	}
	if ast.BinaryOp(99).String() != "?" {
		t.Error("unknown binary op")
	}
}

func TestRegexStringAndViews(t *testing.T) {
	rx := &ast.Regex{Op: ast.RxConcat, Subs: []*ast.Regex{
		{Op: ast.RxLabel, Label: "a"},
		{Op: ast.RxStar, Subs: []*ast.Regex{{Op: ast.RxAlt, Subs: []*ast.Regex{
			{Op: ast.RxInvLabel, Label: "b"},
			{Op: ast.RxView, Label: "v"},
			{Op: ast.RxNodeLabel, Label: "P"},
			{Op: ast.RxAnyEdge},
			{Op: ast.RxAnyInv},
		}}}},
		{Op: ast.RxPlus, Subs: []*ast.Regex{{Op: ast.RxEps}}},
		{Op: ast.RxOpt, Subs: []*ast.Regex{{Op: ast.RxLabel, Label: "c"}}},
	}}
	s := rx.String()
	for _, frag := range []string{":a", ":b-", "~v", "!:P", "_", "_-", "()", "(:c)?"} {
		if !strings.Contains(s, frag) {
			t.Errorf("regex rendering %q missing %q", s, frag)
		}
	}
	views := rx.Views()
	if len(views) != 1 || views[0] != "v" {
		t.Errorf("Views = %v", views)
	}
	if (&ast.Regex{Op: ast.RegexOp(99)}).String() != "?" {
		t.Error("unknown regex op must render as ?")
	}
	if (&ast.Regex{Op: ast.RxEps}).Views() != nil {
		t.Error("eps has no views")
	}
}

func TestExprString(t *testing.T) {
	pos := lexer.Pos{Line: 1, Col: 1}
	cases := map[string]ast.Expr{
		"'it''s'":     &ast.Literal{Val: value.Str("it's"), P: pos},
		"42":          &ast.Literal{Val: value.Int(42), P: pos},
		"x":           &ast.VarRef{Name: "x", P: pos},
		"x.k":         &ast.PropAccess{Var: "x", Key: "k", P: pos},
		"(x:A|B)":     &ast.LabelTest{Var: "x", Labels: []string{"A", "B"}, P: pos},
		"NOT x":       &ast.Unary{Op: ast.OpNot, X: &ast.VarRef{Name: "x", P: pos}, P: pos},
		"-x":          &ast.Unary{Op: ast.OpNeg, X: &ast.VarRef{Name: "x", P: pos}, P: pos},
		"(x + 1)":     &ast.Binary{Op: ast.OpAdd, L: &ast.VarRef{Name: "x", P: pos}, R: &ast.Literal{Val: value.Int(1), P: pos}, P: pos},
		"COUNT(*)":    &ast.FuncCall{Name: "count", Star: true, P: pos},
		"nodes(p)":    &ast.FuncCall{Name: "nodes", Args: []ast.Expr{&ast.VarRef{Name: "p", P: pos}}, P: pos},
		"nodes(p)[1]": &ast.Index{Base: &ast.FuncCall{Name: "nodes", Args: []ast.Expr{&ast.VarRef{Name: "p", P: pos}}, P: pos}, Idx: &ast.Literal{Val: value.Int(1), P: pos}, P: pos},
	}
	for want, e := range cases {
		if got := ast.ExprString(e); got != want {
			t.Errorf("ExprString = %q, want %q", got, want)
		}
		if e.Pos() != pos {
			t.Errorf("%q: position lost", want)
		}
	}
	if ast.ExprString(nil) != "" {
		t.Error("nil expr renders empty")
	}
	// CASE with operand and ELSE.
	c := &ast.Case{
		Operand: &ast.VarRef{Name: "x", P: pos},
		Whens:   []ast.CaseWhen{{Cond: &ast.Literal{Val: value.Int(1), P: pos}, Then: &ast.Literal{Val: value.Str("a"), P: pos}}},
		Else:    &ast.Literal{Val: value.Str("b"), P: pos},
		P:       pos,
	}
	if got := ast.ExprString(c); got != "CASE x WHEN 1 THEN 'a' ELSE 'b' END" {
		t.Errorf("case rendering = %q", got)
	}
}

func TestStatementStringShapes(t *testing.T) {
	stmt, err := parser.Parse(`PATH w = (a)-[e:knows]->(b) WHERE e.x = 1 COST 2
GRAPH g AS (CONSTRUCT (n) MATCH (n:Person))
CONSTRUCT (n) MATCH (n) ON g
UNION
CONSTRUCT (m) MATCH (m) ON (CONSTRUCT (q) MATCH (q:Tag))`)
	if err != nil {
		t.Fatal(err)
	}
	s := stmt.String()
	for _, frag := range []string{"PATH w =", "WHERE", "COST", "GRAPH g AS", "UNION", "ON ("} {
		if !strings.Contains(s, frag) {
			t.Errorf("statement rendering missing %q:\n%s", frag, s)
		}
	}
	// SELECT with all trimmings.
	stmt2, err := parser.Parse(`SELECT DISTINCT n.a AS x MATCH (n:P) ORDER BY x DESC LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	s2 := stmt2.String()
	for _, frag := range []string{"DISTINCT", "AS x", "ORDER BY", "DESC", "LIMIT 5"} {
		if !strings.Contains(s2, frag) {
			t.Errorf("select rendering missing %q:\n%s", frag, s2)
		}
	}
	// Construct decorations.
	stmt3, err := parser.Parse(`CONSTRUCT (=n :L {a := 1}) SET n.b := 2 SET n:M REMOVE n.c REMOVE n:N WHEN n.b > 0
MATCH (n:Person)
OPTIONAL (n)-[:x]->(y) WHERE (y:Q)`)
	if err != nil {
		t.Fatal(err)
	}
	s3 := stmt3.String()
	for _, frag := range []string{"(=n", "SET n.b := 2", "SET n:M", "REMOVE n.c", "REMOVE n:N", "WHEN", "OPTIONAL"} {
		if !strings.Contains(s3, frag) {
			t.Errorf("construct rendering missing %q:\n%s", frag, s3)
		}
	}
}

func TestLabelSpecString(t *testing.T) {
	ls := ast.LabelSpec{{"Post", "Comment"}, {"Message"}}
	if got := ls.String(); got != ":Post|Comment:Message" {
		t.Errorf("LabelSpec = %q", got)
	}
}

func TestStringLiteralQuotingRoundTrip(t *testing.T) {
	// Found by FuzzParse: backslashes and control characters must
	// survive print→parse.
	for _, s := range []string{`\`, `\\`, `a\'b`, "line\nbreak", "tab\there", `it's`, `''`} {
		e := &ast.Literal{Val: value.Str(s)}
		printed := ast.ExprString(e)
		back, err := parser.ParseExpr(printed)
		if err != nil {
			t.Fatalf("reparse of %q (printed %q): %v", s, printed, err)
		}
		lit, ok := back.(*ast.Literal)
		if !ok {
			t.Fatalf("reparse of %q gave %T", s, back)
		}
		got, _ := lit.Val.AsString()
		if got != s {
			t.Errorf("round trip changed %q to %q (printed %q)", s, got, printed)
		}
	}
}
