package ast

// Regex is a regular path expression (§A.1):
//
//	r ::= _ | ℓ | ℓ⁻ | !ℓ | (r + r) | (r r) | (r)*
//
// In the surface syntax, regular expressions appear between angle
// brackets inside path patterns:
//
//	<:knows*>        Kleene star over the edge label knows
//	<:knows->        inverse edge (ℓ⁻): traversed against direction
//	<!:Person>       node label test (!ℓ)
//	<_>              any single edge (wildcard)
//	<~wKnows*>       reference to a PATH view (weighted segments)
//	<:a :b | :c+>    concatenation, alternation, plus, optional (?)
type Regex struct {
	Op    RegexOp
	Label string   // RxLabel, RxInvLabel, RxNodeLabel, RxView
	Subs  []*Regex // RxConcat, RxAlt (n-ary); RxStar/RxPlus/RxOpt (1)
}

// RegexOp discriminates regex nodes.
type RegexOp uint8

// Regex node kinds.
const (
	RxEps       RegexOp = iota // ε, the empty word
	RxAnyEdge                  // _: any edge, either label
	RxLabel                    // :ℓ  — forward edge with label ℓ
	RxInvLabel                 // :ℓ- — backward edge with label ℓ (ℓ⁻)
	RxAnyInv                   // _-  — any edge traversed backwards
	RxNodeLabel                // !:ℓ — node label test (consumes no edge)
	RxView                     // ~v  — PATH view segment
	RxConcat                   // r1 r2 …
	RxAlt                      // r1 | r2 | …
	RxStar                     // r*
	RxPlus                     // r+
	RxOpt                      // r?
)

// String renders the regex in surface syntax.
func (r *Regex) String() string {
	switch r.Op {
	case RxEps:
		return "()"
	case RxAnyEdge:
		return "_"
	case RxAnyInv:
		return "_-"
	case RxLabel:
		return ":" + r.Label
	case RxInvLabel:
		return ":" + r.Label + "-"
	case RxNodeLabel:
		return "!:" + r.Label
	case RxView:
		return "~" + r.Label
	case RxConcat:
		s := ""
		for i, sub := range r.Subs {
			if i > 0 {
				s += " "
			}
			s += sub.String()
		}
		return s
	case RxAlt:
		s := "("
		for i, sub := range r.Subs {
			if i > 0 {
				s += "|"
			}
			s += sub.String()
		}
		return s + ")"
	case RxStar:
		return "(" + r.Subs[0].String() + ")*"
	case RxPlus:
		return "(" + r.Subs[0].String() + ")+"
	case RxOpt:
		return "(" + r.Subs[0].String() + ")?"
	}
	return "?"
}

// Views returns the names of all PATH views referenced by the regex.
func (r *Regex) Views() []string {
	var out []string
	var walk func(*Regex)
	walk = func(x *Regex) {
		if x == nil {
			return
		}
		if x.Op == RxView {
			out = append(out, x.Label)
		}
		for _, s := range x.Subs {
			walk(s)
		}
	}
	walk(r)
	return out
}
