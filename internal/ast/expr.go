package ast

import (
	"gcore/internal/lexer"
	"gcore/internal/value"
)

// Expr is an expression of §A.1:
//
//	ξ ::= x | x.k | x:ℓ | ⋄ξ | ξ ⊙ ξ | f(ξ,…) | Σ(ξ) | EXISTS q
//
// extended with CASE, list indexing (nodes(p)[1]) and implicit
// existential graph patterns in WHERE position.
type Expr interface {
	exprNode()
	Pos() lexer.Pos
}

// Literal is a constant: integer, float, string, boolean, date, null.
type Literal struct {
	Val value.Value
	P   lexer.Pos
}

// Param is a $name parameter reference in a prepared statement. Its
// value is supplied per execution, so a cached AST stays shareable
// across executions with different bindings.
type Param struct {
	Name string
	P    lexer.Pos
}

// VarRef references a bound variable x.
type VarRef struct {
	Name string
	P    lexer.Pos
}

// PropAccess is x.k — σ(µ(x), k).
type PropAccess struct {
	Var string
	Key string
	P   lexer.Pos
}

// LabelTest is x:ℓ (in WHERE, written (x:Person)); Labels is a
// disjunction: (msg:Post|Comment) holds if any label matches.
type LabelTest struct {
	Var    string
	Labels []string
	P      lexer.Pos
}

// UnaryOp names a unary operator.
type UnaryOp uint8

// Unary operators.
const (
	OpNot UnaryOp = iota
	OpNeg
)

func (op UnaryOp) String() string {
	if op == OpNot {
		return "NOT"
	}
	return "-"
}

// Unary applies a unary operator.
type Unary struct {
	Op UnaryOp
	X  Expr
	P  lexer.Pos
}

// BinaryOp names a binary operator.
type BinaryOp uint8

// Binary operators.
const (
	OpOr BinaryOp = iota
	OpAnd
	OpEq
	OpNeq
	OpLt
	OpLe
	OpGt
	OpGe
	OpIn
	OpSubset
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
)

func (op BinaryOp) String() string {
	switch op {
	case OpOr:
		return "OR"
	case OpAnd:
		return "AND"
	case OpEq:
		return "="
	case OpNeq:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpIn:
		return "IN"
	case OpSubset:
		return "SUBSET"
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	}
	return "?"
}

// Binary applies a binary operator.
type Binary struct {
	Op   BinaryOp
	L, R Expr
	P    lexer.Pos
}

// FuncCall is a built-in function application f(ξ,…): labels, nodes,
// edges, size/length, cost, id, type casts — or an aggregation
// (COUNT/SUM/MIN/MAX/AVG/COLLECT) in CONSTRUCT position. Star marks
// COUNT(*).
type FuncCall struct {
	Name string // lower-cased
	Args []Expr
	Star bool
	P    lexer.Pos
}

// Index is base[i] — 0-based list indexing (nodes(p)[1] is the second
// node of p, §3).
type Index struct {
	Base Expr
	Idx  Expr
	P    lexer.Pos
}

// CaseWhen is one WHEN cond THEN result arm.
type CaseWhen struct {
	Cond Expr
	Then Expr
}

// Case is CASE [operand] WHEN … THEN … [ELSE …] END; the paper's
// CASE expressions "coalesce missing data into other values".
type Case struct {
	Operand Expr // nil for searched CASE
	Whens   []CaseWhen
	Else    Expr // nil means NULL
	P       lexer.Pos
}

// Exists is EXISTS (query): true iff the subquery evaluates to a
// non-empty graph.
type Exists struct {
	Query Query
	P     lexer.Pos
}

// PatternPred is a graph pattern used as a boolean expression in
// WHERE — the implicit existential quantification of §3.
type PatternPred struct {
	Pattern *GraphPattern
	P       lexer.Pos
}

func (*Literal) exprNode()     {}
func (*Param) exprNode()       {}
func (*VarRef) exprNode()      {}
func (*PropAccess) exprNode()  {}
func (*LabelTest) exprNode()   {}
func (*Unary) exprNode()       {}
func (*Binary) exprNode()      {}
func (*FuncCall) exprNode()    {}
func (*Index) exprNode()       {}
func (*Case) exprNode()        {}
func (*Exists) exprNode()      {}
func (*PatternPred) exprNode() {}

// Pos implementations.
func (e *Literal) Pos() lexer.Pos     { return e.P }
func (e *Param) Pos() lexer.Pos       { return e.P }
func (e *VarRef) Pos() lexer.Pos      { return e.P }
func (e *PropAccess) Pos() lexer.Pos  { return e.P }
func (e *LabelTest) Pos() lexer.Pos   { return e.P }
func (e *Unary) Pos() lexer.Pos       { return e.P }
func (e *Binary) Pos() lexer.Pos      { return e.P }
func (e *FuncCall) Pos() lexer.Pos    { return e.P }
func (e *Index) Pos() lexer.Pos       { return e.P }
func (e *Case) Pos() lexer.Pos        { return e.P }
func (e *Exists) Pos() lexer.Pos      { return e.P }
func (e *PatternPred) Pos() lexer.Pos { return e.P }
