package repro

import (
	"fmt"

	"gcore/internal/parser"
)

// Table 1 of the paper: the feature inventory with the example-line
// numbers where each feature occurs. Each row here executes the cited
// queries end-to-end; a feature PASSes when all of them evaluate.

// FeatureRow is one row of Table 1.
type FeatureRow struct {
	Section string
	Feature string
	Lines   string   // the paper's line citations
	Queries []string // PaperQueries keys (or raw queries) exercising it
}

// Table1Rows reproduces the layout of Table 1.
func Table1Rows() []FeatureRow {
	return []FeatureRow{
		{"Matching", "Matching all patterns (homomorphism)", "*", []string{"L01", "L05"}},
		{"Matching", "Matching literal values", "18, 22", []string{"L15", "L20"}},
		{"Matching", "Matching k shortest paths", "24", []string{"L23"}},
		{"Matching", "Matching all shortest paths", "29", []string{"L28"}},
		{"Matching", "Matching weighted shortest paths", "60", []string{"L39", "L57"}},
		{"Matching", "(multi-segment) optional matching", "44", []string{"L39"}},
		{"Querying", "Querying multiple graphs", "6", []string{"L05"}},
		{"Querying", "Queries on paths", "69", []string{"L39", "L57", "@L67"}},
		{"Querying", "Filtering matches", "4,8,13,18,26,30,34,59,64,71", []string{"L01", "L05", "L10", "L15", "L23", "L28", "L32"}},
		{"Querying", "Filtering path expressions", "58", []string{"L39", "L57"}},
		{"Querying", "Value joins", "8", []string{"L05"}},
		{"Querying", "Cartesian product", "11", []string{"@CART"}},
		{"Querying", "List membership", "13", []string{"L10"}},
		{"Subqueries", "Set operations on graphs", "8, 14, 19", []string{"L05", "L10", "L15"}},
		{"Subqueries", "Existential subqueries (implicit)", "27, 31, 35", []string{"L23", "L28", "L32"}},
		{"Subqueries", "Existential subqueries (explicit)", "36", []string{"@EXISTS"}},
		{"Construction", "Graph construction", "*", []string{"L01", "L05"}},
		{"Construction", "Graph aggregation", "21", []string{"L20"}},
		{"Construction", "Graph projection", "23", []string{"L23", "L32"}},
		{"Construction", "Graph views", "39, 57", []string{"L39", "L57"}},
		{"Construction", "Property addition", "41", []string{"L39"}},
	}
}

// extraQueries resolves the pseudo-keys of Table1Rows that are not
// verbatim paper lines.
var extraQueries = map[string]string{
	"@CART": `SELECT c.name AS company, n.firstName AS person
MATCH (c:Company) ON company_graph, (n:Person) ON social_graph`,
	"@EXISTS": `CONSTRUCT (n)
MATCH (n:Person), (m:Person)
WHERE m.firstName = 'Celine' AND EXISTS (
  CONSTRUCT ()
  MATCH (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m) )`,
	"@L67": TourL67,
}

// Table1 executes each feature row's queries in a fresh engine (views
// are defined in order, so weighted-path rows see social_graph1).
func Table1() []Check {
	var out []Check
	for _, row := range Table1Rows() {
		eng, err := NewEngine()
		if err != nil {
			out = append(out, failed("TAB1", row.Feature, err))
			continue
		}
		// Rows whose queries need the Figure 5 views define them on
		// demand by running L39/L57 in order (they are included in
		// Queries where needed).
		rowErr := error(nil)
		for _, key := range row.Queries {
			src, ok := parser.PaperQueries[key]
			if !ok {
				src, ok = extraQueries[key]
			}
			if !ok {
				rowErr = fmt.Errorf("unknown query key %q", key)
				break
			}
			if _, err := eng.Eval(src); err != nil {
				rowErr = fmt.Errorf("query %s: %w", key, err)
				break
			}
		}
		c := Check{
			ID:       "TAB1",
			Name:     fmt.Sprintf("%s — %s", row.Section, row.Feature),
			Paper:    "feature demonstrated at line(s) " + row.Lines,
			Measured: "all cited queries evaluate",
			Err:      rowErr,
		}
		out = append(out, c)
	}
	return out
}

// Fig1Row is one row of the paper's Figure 1: the LDBC TUC usage
// statistics. These are survey numbers, not measurements; the harness
// re-prints them together with the module of this implementation that
// serves each demanded feature.
type Fig1Row struct {
	Kind   string // "field" or "feature"
	Name   string
	Count  int
	Module string // which part of this repository serves it
}

// Fig1Rows returns the Figure 1 data verbatim.
func Fig1Rows() []Fig1Row {
	return []Fig1Row{
		{"field", "healthcare / pharma", 14, ""},
		{"field", "publishing", 10, ""},
		{"field", "finance / insurance", 6, ""},
		{"field", "cultural heritage", 6, ""},
		{"field", "e-commerce", 5, ""},
		{"field", "social media", 4, ""},
		{"field", "telecommunications", 4, ""},
		{"feature", "graph reachability", 36, "internal/rpq (Reachable), path patterns -/<r>/->"},
		{"feature", "graph construction", 34, "internal/core (CONSTRUCT, §A.3)"},
		{"feature", "pattern matching", 32, "internal/core (MATCH, §A.2)"},
		{"feature", "shortest path search", 19, "internal/rpq (k-shortest, Dijkstra over PATH views)"},
		{"feature", "graph clustering", 14, "out of language scope; expressible over SELECT exports"},
	}
}
