package repro

import (
	"fmt"

	"gcore"
	"gcore/internal/table"
)

// The three binding tables §3 prints verbatim: the equi-join table
// (3 rows), the cartesian product with c.name and n.employer columns
// (20 rows, Frank's multi-valued employer shown as a set), and the
// unrolled table with the bound e variable (5 rows). BindingTables
// recomputes them on the toy database so the harness can print the
// same rows the paper reports.

// BindingTables returns the three tables, in paper order.
func BindingTables(eng *gcore.Engine) ([]*table.Table, error) {
	queries := []struct {
		name string
		src  string
	}{
		{"equi-join (c, n) — paper page 8 top", `
SELECT c.name AS c, n.firstName AS n
MATCH (c:Company) ON company_graph, (n:Person) ON social_graph
WHERE c.name = n.employer
ORDER BY c, n`},
		{"cartesian product (c, c.name, n, n.employer) — paper page 8", `
SELECT c.name AS c_name, n.firstName AS n, n.employer AS n_employer
MATCH (c:Company) ON company_graph, (n:Person) ON social_graph
ORDER BY c_name, n`},
		{"unrolled {employer=e} join (c, n, e) — paper page 9", `
SELECT c.name AS c, n.firstName AS n, e
MATCH (c:Company) ON company_graph, (n:Person {employer=e}) ON social_graph
WHERE c.name = e
ORDER BY c, n, e`},
	}
	var out []*table.Table
	for _, q := range queries {
		res, err := eng.Eval(q.src)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", q.name, err)
		}
		res.Table.Name = q.name
		out = append(out, res.Table)
	}
	return out, nil
}
