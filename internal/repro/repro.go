// Package repro regenerates every figure and table of the G-CORE
// paper and checks the engine's output against the facts the paper
// states. It is shared by the repro test suite (repro_test.go at the
// module root) and the cmd/gcore-repro harness; EXPERIMENTS.md records
// the paper-vs-measured outcome of each check.
package repro

import (
	"fmt"
	"sort"
	"strings"

	"gcore"
	"gcore/internal/parser"
	"gcore/internal/ppg"
	"gcore/internal/snb"
	"gcore/internal/value"
)

// Check is one paper-vs-measured comparison.
type Check struct {
	ID       string // experiment id from DESIGN.md (FIG2, FIG4-L05, …)
	Name     string
	Paper    string // what the paper states
	Measured string // what the engine produced
	Err      error  // non-nil if the measurement contradicts the paper
}

func (c Check) OK() bool { return c.Err == nil }

// NewEngine builds the toy database of the guided tour: social_graph
// (default), company_graph, the Figure 2 example graph, and the
// orders table.
func NewEngine() (*gcore.Engine, error) {
	eng := gcore.NewEngine()
	for _, g := range []*gcore.Graph{
		gcore.SampleSocialGraph(), gcore.SampleCompanyGraph(), gcore.SampleExampleGraph(),
	} {
		if err := eng.RegisterGraph(g); err != nil {
			return nil, err
		}
	}
	if err := eng.RegisterTable(gcore.SampleOrdersTable()); err != nil {
		return nil, err
	}
	if err := eng.SetDefaultGraph("social_graph"); err != nil {
		return nil, err
	}
	return eng, nil
}

// RunAll executes every reproduction check in a fresh engine.
func RunAll() []Check {
	var out []Check
	out = append(out, Fig2()...)
	out = append(out, Fig3()...)
	eng, err := NewEngine()
	if err != nil {
		return append(out, Check{ID: "SETUP", Err: err})
	}
	out = append(out, GuidedTour(eng)...)
	out = append(out, Fig5(eng)...)
	out = append(out, Appendix(eng)...)
	out = append(out, Table1()...)
	return out
}

func check(id, name, paper string, measured string, ok bool) Check {
	c := Check{ID: id, Name: name, Paper: paper, Measured: measured}
	if !ok {
		c.Err = fmt.Errorf("%s: measured %q contradicts the paper (%s)", id, measured, paper)
	}
	return c
}

func failed(id, name string, err error) Check {
	return Check{ID: id, Name: name, Err: err}
}

// Fig2 verifies the Example 2.2 formalisation of the Figure 2 graph.
func Fig2() []Check {
	g := gcore.SampleExampleGraph()
	var out []Check
	out = append(out, check("FIG2", "PPG cardinalities",
		"N={101..106}, E={201..207}, P={301}",
		fmt.Sprintf("%d nodes, %d edges, %d paths", g.NumNodes(), g.NumEdges(), g.NumPaths()),
		g.NumNodes() == 6 && g.NumEdges() == 7 && g.NumPaths() == 1))

	e201, ok201 := g.Edge(201)
	out = append(out, check("FIG2", "ρ(201) = (102, 101)",
		"edge 201 runs 102→101",
		fmt.Sprintf("ρ(201) = (%d,%d)", e201.Src, e201.Dst),
		ok201 && e201.Src == 102 && e201.Dst == 101))

	p, okP := g.Path(301)
	nodesOK := okP && len(p.Nodes) == 3 && p.Nodes[0] == 105 && p.Nodes[1] == 103 && p.Nodes[2] == 102
	edgesOK := okP && len(p.Edges) == 2 && p.Edges[0] == 207 && p.Edges[1] == 202
	out = append(out, check("FIG2", "δ(301) = [105, 207, 103, 202, 102]",
		"nodes(301)=[105,103,102], edges(301)=[207,202]",
		fmt.Sprintf("nodes %v, edges %v", p.Nodes, p.Edges), nodesOK && edgesOK))

	trustOK := okP && value.Equal(p.Props.Get("trust").Scalarize(), value.Float(0.95))
	labelOK := okP && p.Labels.Has("toWagner")
	out = append(out, check("FIG2", "λ(301), σ(301,trust)",
		"label toWagner, trust 0.95",
		fmt.Sprintf("labels %v, trust %s", p.Labels, p.Props.Get("trust")), trustOK && labelOK))
	return out
}

// Fig3 verifies the SNB schema conformance of the datasets and the
// generator.
func Fig3() []Check {
	var out []Check
	if err := snb.CheckSchema(gcore.SampleSocialGraph()); err != nil {
		out = append(out, failed("FIG3", "toy social_graph conforms to the SNB schema", err))
	} else {
		out = append(out, check("FIG3", "toy social_graph conforms to the SNB schema",
			"node/edge types of Fig. 3", "conformant", true))
	}
	social, _ := gcore.GenerateSNB(gcore.SNBConfig{Persons: 200, Seed: 42})
	if err := snb.CheckSchema(social); err != nil {
		out = append(out, failed("FIG3", "generated graph conforms to the SNB schema", err))
	} else {
		out = append(out, check("FIG3", "generated graph (200 persons) conforms to the SNB schema",
			"node/edge types of Fig. 3",
			fmt.Sprintf("conformant (%d nodes, %d edges)", social.NumNodes(), social.NumEdges()), true))
	}
	return out
}

func evalGraph(eng *gcore.Engine, id, name, src string) (*gcore.Graph, *Check) {
	res, err := eng.Eval(src)
	if err != nil {
		c := failed(id, name, err)
		return nil, &c
	}
	if res.Graph == nil {
		c := failed(id, name, fmt.Errorf("expected a graph result"))
		return nil, &c
	}
	return res.Graph, nil
}

func countEdges(g *gcore.Graph, label string) int {
	n := 0
	for _, id := range g.EdgeIDs() {
		e, _ := g.Edge(id)
		if e.Labels.Has(label) {
			n++
		}
	}
	return n
}

func countNodesWithLabel(g *gcore.Graph, label string) int {
	n := 0
	for _, id := range g.NodeIDs() {
		nd, _ := g.Node(id)
		if nd.Labels.Has(label) {
			n++
		}
	}
	return n
}

// GuidedTour reruns every §3 example on the toy database and checks
// the stated outcomes (experiment FIG4).
func GuidedTour(eng *gcore.Engine) []Check {
	var out []Check

	// L01.
	if g, c := evalGraph(eng, "FIG4-L01", "always returning a graph", parser.PaperQueries["L01"]); c != nil {
		out = append(out, *c)
	} else {
		out = append(out, check("FIG4-L01", "persons working at Acme",
			"a graph with no edges and only the Acme employees (all labels/properties preserved)",
			fmt.Sprintf("%d nodes, %d edges", g.NumNodes(), g.NumEdges()),
			g.NumNodes() == 2 && g.NumEdges() == 0))
	}

	// Binding table of the L05 join (3 rows per the paper).
	if res, err := eng.Eval(`SELECT c.name AS company, n.firstName AS person
MATCH (c:Company) ON company_graph, (n:Person) ON social_graph
WHERE c.name = n.employer`); err != nil {
		out = append(out, failed("FIG4-L05", "join binding table", err))
	} else {
		out = append(out, check("FIG4-L05", "join binding table",
			"3 bindings: (Acme,Alice), (HAL,Celine), (Acme,John)",
			fmt.Sprintf("%d bindings", res.Table.Len()), res.Table.Len() == 3))
	}

	// The cartesian product without WHERE (20 rows).
	if res, err := eng.Eval(`SELECT c.name AS company, n.firstName AS person
MATCH (c:Company) ON company_graph, (n:Person) ON social_graph`); err != nil {
		out = append(out, failed("FIG4-CART", "cartesian product table", err))
	} else {
		out = append(out, check("FIG4-CART", "cartesian product table",
			"4 companies × 5 persons = 20 bindings",
			fmt.Sprintf("%d bindings", res.Table.Len()), res.Table.Len() == 20))
	}

	// L05 graph: 3 worksAt edges.
	if g, c := evalGraph(eng, "FIG4-L05", "equi-join construct", parser.PaperQueries["L05"]); c != nil {
		out = append(out, *c)
	} else {
		out = append(out, check("FIG4-L05", "equi-join construct",
			"Frank fails to match (multi-valued employer): 3 worksAt edges",
			fmt.Sprintf("%d worksAt edges", countEdges(g, "worksAt")), countEdges(g, "worksAt") == 3))
	}

	// L10: IN — five edges, Frank twice.
	if g, c := evalGraph(eng, "FIG4-L10", "IN join", parser.PaperQueries["L10"]); c != nil {
		out = append(out, *c)
	} else {
		out = append(out, check("FIG4-L10", "IN join",
			"five new edges; Frank gets two :worksAt edges (MIT and CWI)",
			fmt.Sprintf("%d worksAt edges", countEdges(g, "worksAt")), countEdges(g, "worksAt") == 5))
	}

	// L15: unrolled property binding (5 rows / 5 edges).
	if res, err := eng.Eval(`SELECT c.name AS company, n.firstName AS person, e AS employer
MATCH (c:Company) ON company_graph, (n:Person {employer=e}) ON social_graph
WHERE c.name = e`); err != nil {
		out = append(out, failed("FIG4-L15", "unrolled binding table", err))
	} else {
		out = append(out, check("FIG4-L15", "unrolled binding table",
			"5 bindings (Frank twice: MIT and CWI)",
			fmt.Sprintf("%d bindings", res.Table.Len()), res.Table.Len() == 5))
	}

	// L20: graph aggregation.
	if g, c := evalGraph(eng, "FIG4-L20", "graph aggregation with GROUP", parser.PaperQueries["L20"]); c != nil {
		out = append(out, *c)
	} else {
		companies := countNodesWithLabel(g, "Company")
		out = append(out, check("FIG4-L20", "graph aggregation with GROUP",
			"four new company nodes (CWI, MIT, Acme, HAL) and five worksAt edges",
			fmt.Sprintf("%d companies, %d edges", companies, countEdges(g, "worksAt")),
			companies == 4 && countEdges(g, "worksAt") == 5))
	}

	// L23: 3-shortest stored paths.
	if g, c := evalGraph(eng, "FIG4-L23", "storing paths with @p", parser.PaperQueries["L23"]); c != nil {
		out = append(out, *c)
	} else {
		allLabelled := g.NumPaths() > 0
		startJohn := true
		for _, pid := range g.PathIDs() {
			p, _ := g.Path(pid)
			if !p.Labels.Has("localPeople") || p.Props.Get("distance").Len() == 0 {
				allLabelled = false
			}
			if p.Nodes[0] != snb.John {
				startJohn = false
			}
		}
		out = append(out, check("FIG4-L23", "storing paths with @p",
			"a graph of stored :localPeople paths from John Doe with a distance property",
			fmt.Sprintf("%d stored paths, labelled=%v, start-at-John=%v", g.NumPaths(), allLabelled, startJohn),
			allLabelled && startJohn))
	}

	// L28: reachability.
	if g, c := evalGraph(eng, "FIG4-L28", "reachability", parser.PaperQueries["L28"]); c != nil {
		out = append(out, *c)
	} else {
		out = append(out, check("FIG4-L28", "reachability",
			"persons reachable over knows* living at John's location",
			fmt.Sprintf("%d nodes, %d edges", g.NumNodes(), g.NumEdges()),
			g.NumNodes() == 5 && g.NumEdges() == 0))
	}

	// L32: ALL paths projection.
	if g, c := evalGraph(eng, "FIG4-L32", "ALL paths graph projection", parser.PaperQueries["L32"]); c != nil {
		out = append(out, *c)
	} else {
		out = append(out, check("FIG4-L32", "ALL paths graph projection",
			"the projection of all knows-walks (tractable despite infinitely many walks)",
			fmt.Sprintf("%d nodes, %d knows edges, %d stored paths", g.NumNodes(), countEdges(g, "knows"), g.NumPaths()),
			g.NumNodes() == 5 && countEdges(g, "knows") == 8 && g.NumPaths() == 0))
	}

	// L72: tabular projection.
	if res, err := eng.Eval(parser.PaperQueries["L72"]); err != nil {
		out = append(out, failed("FIG4-L72", "tabular projection (§5)", err))
	} else {
		names := []string{}
		for _, r := range res.Table.Rows {
			s, _ := r[0].Scalarize().AsString()
			names = append(names, s)
		}
		sort.Strings(names)
		out = append(out, check("FIG4-L72", "tabular projection (§5)",
			"a table friendName of persons reachable over knows* in John's city",
			strings.Join(names, "; "), res.Table.Len() == 5))
	}

	// L76 / L81: tabular inputs.
	for _, id := range []string{"L76", "L81"} {
		if g, c := evalGraph(eng, "FIG4-"+id, "tabular input (§5)", parser.PaperQueries[id]); c != nil {
			out = append(out, *c)
		} else {
			out = append(out, check("FIG4-"+id, "tabular input (§5)",
				"per-customer and per-product nodes connected by bought edges",
				fmt.Sprintf("%d customers, %d products, %d bought edges",
					countNodesWithLabel(g, "Customer"), countNodesWithLabel(g, "Product"), countEdges(g, "bought")),
				countNodesWithLabel(g, "Customer") == 3 && countNodesWithLabel(g, "Product") == 3 && countEdges(g, "bought") == 4))
		}
	}
	return out
}

// TourL67 is the stored-path analytics query of lines 67–71 with the
// one-variable correction discussed in EXPERIMENTS.md (the paper's
// "WHERE n = nodes(p)[1]" contradicts its own stated result; with m
// the query yields exactly the single wagnerFriend edge John→Peter
// with score 2).
const TourL67 = `CONSTRUCT (n)-[e:wagnerFriend {score:=COUNT(*)}]->(m)
          WHEN e.score > 0
MATCH (n:Person)-/@p:toWagner/->(), (m:Person)
ON social_graph2
WHERE m = nodes(p)[1]`

// Fig5 defines the two views of Figure 5 and checks their contents,
// then runs the stored-path analytics query (FIG4-L67).
func Fig5(eng *gcore.Engine) []Check {
	var out []Check
	// social_graph1: nr_messages via OPTIONAL + COUNT(*).
	g1, c := evalGraph(eng, "FIG5", "view social_graph1", parser.PaperQueries["L39"])
	if c != nil {
		return append(out, *c)
	}
	want := map[[2]gcore.NodeID]int64{
		{snb.John, snb.Peter}: 2, {snb.Peter, snb.John}: 2,
		{snb.Peter, snb.Celine}: 3, {snb.Celine, snb.Peter}: 3,
		{snb.Peter, snb.Frank}: 1, {snb.Frank, snb.Peter}: 1,
		{snb.John, snb.Alice}: 0, {snb.Alice, snb.John}: 0,
	}
	okMsgs := true
	for _, id := range g1.EdgeIDs() {
		e, _ := g1.Edge(id)
		if !e.Labels.Has("knows") {
			continue
		}
		w, known := want[[2]gcore.NodeID{e.Src, e.Dst}]
		if !known || !value.Equal(e.Props.Get("nr_messages").Scalarize(), value.Int(w)) {
			okMsgs = false
		}
	}
	out = append(out, check("FIG5", "social_graph1 nr_messages",
		"every :knows edge annotated; 0 for people who never exchanged a message",
		fmt.Sprintf("message counts per edge match the toy data: %v", okMsgs), okMsgs))

	// social_graph2: weighted shortest paths stored as :toWagner.
	g2, c := evalGraph(eng, "FIG5", "view social_graph2", parser.PaperQueries["L57"])
	if c != nil {
		return append(out, *c)
	}
	viaPeter := g2.NumPaths() == 2
	ends := map[gcore.NodeID]bool{}
	for _, pid := range g2.PathIDs() {
		p, _ := g2.Path(pid)
		if len(p.Nodes) != 3 || p.Nodes[0] != snb.John || p.Nodes[1] != snb.Peter {
			viaPeter = false
		}
		ends[p.Nodes[len(p.Nodes)-1]] = true
	}
	out = append(out, check("FIG5", "social_graph2 stored paths",
		"two stored :toWagner paths (to the two Wagner lovers), both via Peter",
		fmt.Sprintf("%d paths, via-Peter=%v, endpoints Celine/Frank=%v",
			g2.NumPaths(), viaPeter, ends[snb.Celine] && ends[snb.Frank]),
		viaPeter && ends[snb.Celine] && ends[snb.Frank]))

	// L67: analytics over the stored paths.
	g3, c := evalGraph(eng, "FIG4-L67", "stored-path analytics", TourL67)
	if c != nil {
		return append(out, *c)
	}
	var wagnerEdges []*ppg.Edge
	for _, id := range g3.EdgeIDs() {
		e, _ := g3.Edge(id)
		if e.Labels.Has("wagnerFriend") {
			wagnerEdges = append(wagnerEdges, e)
		}
	}
	ok := len(wagnerEdges) == 1 &&
		wagnerEdges[0].Src == snb.John && wagnerEdges[0].Dst == snb.Peter &&
		value.Equal(wagnerEdges[0].Props.Get("score").Scalarize(), value.Int(2))
	measured := fmt.Sprintf("%d wagnerFriend edges", len(wagnerEdges))
	if len(wagnerEdges) == 1 {
		measured = fmt.Sprintf("one edge #%d→#%d score %s",
			wagnerEdges[0].Src, wagnerEdges[0].Dst, wagnerEdges[0].Props.Get("score"))
	}
	out = append(out, check("FIG4-L67", "stored-path analytics",
		"a single :wagnerFriend edge between John and Peter with score 2",
		measured, ok))
	return out
}

// Appendix reruns the §A.2 and §A.3 worked examples.
func Appendix(eng *gcore.Engine) []Check {
	var out []Check
	res, err := eng.Eval(`SELECT id(x) AS x, id(y) AS y, id(w) AS w, id(z) AS z
MATCH (x)-[:isLocatedIn]->(w), (y)-[:isLocatedIn]->(w),
      (x)-/@z<(:knows|:knows-)*>/->(y)
ON example_graph
WHERE w.name = 'Houston'`)
	if err != nil {
		out = append(out, failed("APX-A", "Match γ Where ξ worked example", err))
	} else {
		ok := res.Table.Len() == 1
		if ok {
			r := res.Table.Rows[0]
			ids := []int64{}
			for _, v := range r {
				i, _ := v.Scalarize().AsInt()
				ids = append(ids, i)
			}
			ok = len(ids) == 4 && ids[0] == 105 && ids[1] == 102 && ids[2] == 106 && ids[3] == 301
			out = append(out, check("APX-A", "Match γ Where ξ worked example",
				"exactly {x↦105, y↦102, w↦106, z↦301}",
				fmt.Sprintf("%d binding(s): x=%d y=%d w=%d z=%d", res.Table.Len(), ids[0], ids[1], ids[2], ids[3]), ok))
		} else {
			out = append(out, check("APX-A", "Match γ Where ξ worked example",
				"exactly one binding", fmt.Sprintf("%d bindings", res.Table.Len()), false))
		}
	}

	// §A.3: J{f,g,h}K — grouped company construction with 5 edges.
	if g, c := evalGraph(eng, "APX-C", "Construct {f,g,h} worked example", parser.PaperQueries["L20"]); c != nil {
		out = append(out, *c)
	} else {
		frank := 0
		for _, id := range g.EdgeIDs() {
			e, _ := g.Edge(id)
			if e.Labels.Has("worksAt") && e.Src == snb.Frank {
				frank++
			}
		}
		out = append(out, check("APX-C", "Construct {f,g,h} worked example",
			"ΩN has 5 rows; Frank connects to both #MIT and #CWI",
			fmt.Sprintf("%d worksAt edges, %d from Frank", countEdges(g, "worksAt"), frank),
			countEdges(g, "worksAt") == 5 && frank == 2))
	}
	return out
}
