package repro

import "testing"

func TestRunAllChecksPass(t *testing.T) {
	for _, c := range RunAll() {
		if !c.OK() {
			t.Errorf("%s %s: %v", c.ID, c.Name, c.Err)
		}
	}
}

func TestComplexitySweepsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	pts, err := ComplexityMatch([]int{20, 40})
	if err != nil || len(pts) != 2 {
		t.Fatalf("match sweep: %v, %v", pts, err)
	}
	if pts[1].Nodes <= pts[0].Nodes {
		t.Error("scales must grow")
	}
	sp, err := ComplexityShortest([]int{20})
	if err != nil || len(sp) != 1 {
		t.Fatalf("shortest sweep: %v", err)
	}
	cp, err := ComplexityConstruct([]int{20})
	if err != nil || len(cp) != 1 || cp[0].Result == 0 {
		t.Fatalf("construct sweep: %+v, %v", cp, err)
	}
}

func TestAblationGrid(t *testing.T) {
	pts, err := AblationSimplePath([]int{3, 4, 5}, 200000)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if !p.WalkOK {
			t.Errorf("width %d: walk search failed to find the corner path", p.Size)
		}
		if p.ProjNodes == 0 {
			t.Errorf("width %d: empty projection", p.Size)
		}
	}
	// The combinatorial explosion: simple-path visits must grow much
	// faster than grid size. Central binomial: 3x3 grid has 6 simple
	// monotone paths... all simple paths incl. non-monotone are more;
	// with only right/down edges, all paths are monotone: C(2(w-1), w-1).
	if pts[0].SimplePaths != 6 { // C(4,2)
		t.Errorf("3x3 grid simple paths = %d, want 6", pts[0].SimplePaths)
	}
	if pts[1].SimplePaths != 20 { // C(6,3)
		t.Errorf("4x4 grid simple paths = %d, want 20", pts[1].SimplePaths)
	}
	if pts[2].SimplePaths != 70 { // C(8,4)
		t.Errorf("5x5 grid simple paths = %d, want 70", pts[2].SimplePaths)
	}
	if pts[2].SimpleVisits <= pts[0].SimpleVisits*2 {
		t.Error("baseline visit counts should explode with grid width")
	}
	// Projection stays linear in the grid.
	if pts[2].ProjEdges != 2*5*4 {
		t.Errorf("5x5 projection edges = %d, want 40 (all grid edges)", pts[2].ProjEdges)
	}
}

func TestWeightedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	pts, err := WeightedShortest([]int{20})
	if err != nil || len(pts) != 1 {
		t.Fatalf("weighted sweep: %v", err)
	}
}

func TestFig1RowsMatchPaper(t *testing.T) {
	rows := Fig1Rows()
	counts := map[string]int{}
	for _, r := range rows {
		counts[r.Name] = r.Count
	}
	// Figure 1 spot checks.
	if counts["graph reachability"] != 36 || counts["graph construction"] != 34 ||
		counts["pattern matching"] != 32 || counts["shortest path search"] != 19 ||
		counts["graph clustering"] != 14 || counts["healthcare / pharma"] != 14 {
		t.Errorf("Fig. 1 numbers drifted: %v", counts)
	}
}

func TestTable1CoversPaperSections(t *testing.T) {
	rows := Table1Rows()
	if len(rows) != 21 {
		t.Errorf("Table 1 rows = %d, want 21", len(rows))
	}
	sections := map[string]bool{}
	for _, r := range rows {
		sections[r.Section] = true
	}
	for _, want := range []string{"Matching", "Querying", "Subqueries", "Construction"} {
		if !sections[want] {
			t.Errorf("section %s missing", want)
		}
	}
}

func TestGridGraphShape(t *testing.T) {
	g, src, dst := GridGraph(3)
	if g.NumNodes() != 9 || g.NumEdges() != 12 {
		t.Fatalf("grid = %v", g)
	}
	if src == dst {
		t.Error("corners must differ")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAblationHelpers(t *testing.T) {
	ok, err := AblationWalkOnly(4)
	if err != nil || !ok {
		t.Fatalf("walk helper: %v, %v", ok, err)
	}
	n, err := AblationSimpleOnly(4, 100000)
	if err != nil || n != 20 {
		t.Fatalf("simple helper: %d, %v", n, err)
	}
	tr, err := AblationTrailOnly(4, 100000)
	if err != nil || tr != 20 {
		t.Fatalf("trail helper: %d, %v", tr, err)
	}
	nodes, edges, err := AblationProjectionOnly(4)
	if err != nil || nodes != 16 || edges != 24 {
		t.Fatalf("projection helper: %d/%d, %v", nodes, edges, err)
	}
}

func TestBindingTablesMatchPaper(t *testing.T) {
	eng, err := NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	tbls, err := BindingTables(eng)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbls) != 3 {
		t.Fatalf("tables = %d", len(tbls))
	}
	if tbls[0].Len() != 3 || tbls[1].Len() != 20 || tbls[2].Len() != 5 {
		t.Fatalf("row counts = %d/%d/%d, want 3/20/5", tbls[0].Len(), tbls[1].Len(), tbls[2].Len())
	}
	// Frank's multi-valued employer shows as a set in the cartesian.
	found := false
	for _, r := range tbls[1].Rows {
		if s, _ := r[1].Scalarize().AsString(); s == "Frank" {
			if r[2].Len() == 2 {
				found = true
			}
		}
	}
	if !found {
		t.Error("Frank's {CWI, MIT} set missing from the cartesian table")
	}
}
