package repro

import (
	"fmt"
	"time"

	"gcore"
	"gcore/internal/ast"
	"gcore/internal/ppg"
	"gcore/internal/rpq"
)

// The complexity experiments of DESIGN.md (CPLX1–CPLX4): empirical
// validation of §4's claims. The paper's argument is qualitative —
// every fixed query evaluates in polynomial time because path
// semantics is walk-based and ALL is answered as a projection — so
// the experiments measure growth shapes, not absolute numbers.

// ScalePoint is one measurement of a scaling sweep.
type ScalePoint struct {
	Scale    int
	Nodes    int
	Edges    int
	Result   int // result cardinality (rows, nodes, paths — per experiment)
	Duration time.Duration
}

// engineAt builds an engine over a generated SNB graph of the given
// size.
func engineAt(persons int) (*gcore.Engine, *gcore.Graph, error) {
	eng := gcore.NewEngine()
	social, companies := eng.GenerateSNB(gcore.SNBConfig{Persons: persons, Seed: 1})
	if err := eng.RegisterGraph(social); err != nil {
		return nil, nil, err
	}
	if err := eng.RegisterGraph(companies); err != nil {
		return nil, nil, err
	}
	if err := eng.SetDefaultGraph(social.Name()); err != nil {
		return nil, nil, err
	}
	return eng, social, nil
}

// MatchQueryAt returns the fixed pattern-matching query used by CPLX1
// on a generated graph (a two-hop join with a filter).
func MatchQueryAt(g *gcore.Graph) string {
	return fmt.Sprintf(`SELECT n.firstName AS a, m.firstName AS b
MATCH (n:Person)-[:knows]->(m:Person)-[:isLocatedIn]->(c:City) ON %s
WHERE c.name = 'City0'`, g.Name())
}

// ComplexityMatch measures fixed-query MATCH evaluation across scales
// (experiment CPLX1). Data complexity must stay polynomial: doubling
// the graph must not square the runtime of this 2-hop query.
func ComplexityMatch(scales []int) ([]ScalePoint, error) {
	var out []ScalePoint
	for _, s := range scales {
		eng, g, err := engineAt(s)
		if err != nil {
			return nil, err
		}
		q := MatchQueryAt(g)
		start := time.Now()
		res, err := eng.Eval(q)
		if err != nil {
			return nil, err
		}
		out = append(out, ScalePoint{
			Scale: s, Nodes: g.NumNodes(), Edges: g.NumEdges(),
			Result: res.Table.Len(), Duration: time.Since(start),
		})
	}
	return out, nil
}

// ComplexityShortest measures single-source shortest-path pattern
// evaluation across scales (CPLX1): product-automaton search is
// O((V+E)·|Q|) per source.
func ComplexityShortest(scales []int) ([]ScalePoint, error) {
	var out []ScalePoint
	for _, s := range scales {
		eng, g, err := engineAt(s)
		if err != nil {
			return nil, err
		}
		q := fmt.Sprintf(`CONSTRUCT (n)-/@p:reach/->(m)
MATCH (n:Person)-/p<:knows*>/->(m:Person) ON %s
WHERE n.anchor = TRUE`, g.Name())
		start := time.Now()
		res, err := eng.Eval(q)
		if err != nil {
			return nil, err
		}
		out = append(out, ScalePoint{
			Scale: s, Nodes: g.NumNodes(), Edges: g.NumEdges(),
			Result: res.Graph.NumPaths(), Duration: time.Since(start),
		})
	}
	return out, nil
}

// ComplexityConstruct measures grouped construction across scales
// (CPLX1): the nr_messages view of Figure 5 on generated data.
func ComplexityConstruct(scales []int) ([]ScalePoint, error) {
	var out []ScalePoint
	for _, s := range scales {
		eng, g, err := engineAt(s)
		if err != nil {
			return nil, err
		}
		q := fmt.Sprintf(`CONSTRUCT (n)-[e]->(m) SET e.nr_messages := COUNT(*)
MATCH (n)-[e:knows]->(m) ON %s
WHERE (n:Person) AND (m:Person)
OPTIONAL (n)<-[c1]-(msg1:Post|Comment),
         (msg1)-[:reply_of]-(msg2),
         (msg2:Post|Comment)-[c2]->(m)
WHERE (c1:has_creator) AND (c2:has_creator)`, g.Name())
		start := time.Now()
		res, err := eng.Eval(q)
		if err != nil {
			return nil, err
		}
		out = append(out, ScalePoint{
			Scale: s, Nodes: g.NumNodes(), Edges: g.NumEdges(),
			Result: res.Graph.NumEdges(), Duration: time.Since(start),
		})
	}
	return out, nil
}

// GridGraph builds a w×w directed grid (edges right and down, label
// e). The number of simple paths from corner to corner is the central
// binomial coefficient — exponential in w — while walk-based shortest
// path search stays polynomial. Used by the CPLX2 ablation.
func GridGraph(w int) (*ppg.Graph, ppg.NodeID, ppg.NodeID) {
	g := ppg.New(fmt.Sprintf("grid_%d", w))
	id := func(r, c int) ppg.NodeID { return ppg.NodeID(r*w + c + 1) }
	for r := 0; r < w; r++ {
		for c := 0; c < w; c++ {
			if err := g.AddNode(&ppg.Node{ID: id(r, c)}); err != nil {
				panic(err)
			}
		}
	}
	eid := ppg.EdgeID(uint64(w*w) + 1)
	for r := 0; r < w; r++ {
		for c := 0; c < w; c++ {
			if c+1 < w {
				if err := g.AddEdge(&ppg.Edge{ID: eid, Src: id(r, c), Dst: id(r, c+1), Labels: ppg.NewLabels("e")}); err != nil {
					panic(err)
				}
				eid++
			}
			if r+1 < w {
				if err := g.AddEdge(&ppg.Edge{ID: eid, Src: id(r, c), Dst: id(r+1, c), Labels: ppg.NewLabels("e")}); err != nil {
					panic(err)
				}
				eid++
			}
		}
	}
	return g, id(0, 0), id(w-1, w-1)
}

// AblationPoint is one CPLX2/CPLX3 measurement across the three
// semantics the paper's §6 contrasts: G-CORE's walks, Cypher-9-style
// trails (no repeated edge), and simple paths.
type AblationPoint struct {
	Size         int
	WalkDuration time.Duration // arbitrary-path product search (G-CORE)
	WalkOK       bool
	SimpleVisits int // search states visited by the simple-path baseline
	SimplePaths  int // conforming simple paths counted (may hit the budget)
	SimpleBudget bool
	TrailVisits  int // search states visited by the no-repeated-edge baseline
	TrailPaths   int // conforming trails counted
	ProjNodes    int // ALL-paths projection size
	ProjEdges    int
	ProjDuration time.Duration
}

// AblationSimplePath compares G-CORE's walk semantics against the
// NP-hard simple-path semantics on grids (CPLX2) and measures the
// ALL-paths projection (CPLX3). maxVisits bounds the baseline.
func AblationSimplePath(widths []int, maxVisits int) ([]AblationPoint, error) {
	star := &ast.Regex{Op: ast.RxStar, Subs: []*ast.Regex{{Op: ast.RxLabel, Label: "e"}}}
	nfa, err := rpq.Compile(star)
	if err != nil {
		return nil, err
	}
	var out []AblationPoint
	for _, w := range widths {
		g, src, dst := GridGraph(w)
		eng := rpq.NewEngine(g, nil)
		pt := AblationPoint{Size: w}

		start := time.Now()
		res, err := eng.ShortestPaths(src, nfa, 1)
		if err != nil {
			return nil, err
		}
		pt.WalkDuration = time.Since(start)
		pt.WalkOK = len(res[dst]) == 1 && res[dst][0].Hops == 2*(w-1)

		count, visits, err := eng.CountSimplePaths(src, dst, nfa, maxVisits)
		if err != nil {
			return nil, err
		}
		pt.SimpleVisits = visits
		pt.SimplePaths = count
		pt.SimpleBudget = visits >= maxVisits

		tCount, tVisits, err := eng.CountTrails(src, dst, nfa, maxVisits)
		if err != nil {
			return nil, err
		}
		pt.TrailVisits = tVisits
		pt.TrailPaths = tCount

		start = time.Now()
		ap, err := eng.AllPaths(src, nfa)
		if err != nil {
			return nil, err
		}
		nodes, edges, ok := ap.Projection(dst)
		pt.ProjDuration = time.Since(start)
		if ok {
			pt.ProjNodes = len(nodes)
			pt.ProjEdges = len(edges)
		}
		out = append(out, pt)
	}
	return out, nil
}

// gridStarNFA compiles (:e)* once per call for the focused ablation
// helpers used by the benchmark harness.
func gridStarNFA() (*rpq.NFA, error) {
	star := &ast.Regex{Op: ast.RxStar, Subs: []*ast.Regex{{Op: ast.RxLabel, Label: "e"}}}
	return rpq.Compile(star)
}

// AblationWalkOnly runs just the walk-semantics shortest-path search
// on a w×w grid and reports whether the corner path was found.
func AblationWalkOnly(w int) (bool, error) {
	nfa, err := gridStarNFA()
	if err != nil {
		return false, err
	}
	g, src, dst := GridGraph(w)
	res, err := rpq.NewEngine(g, nil).ShortestPaths(src, nfa, 1)
	if err != nil {
		return false, err
	}
	return len(res[dst]) == 1 && res[dst][0].Hops == 2*(w-1), nil
}

// AblationSimpleOnly runs just the NP-hard simple-path baseline on a
// w×w grid, returning the number of conforming corner-to-corner paths.
func AblationSimpleOnly(w, maxVisits int) (int, error) {
	nfa, err := gridStarNFA()
	if err != nil {
		return 0, err
	}
	g, src, dst := GridGraph(w)
	count, _, err := rpq.NewEngine(g, nil).CountSimplePaths(src, dst, nfa, maxVisits)
	return count, err
}

// AblationTrailOnly runs just the no-repeated-edge (Cypher-9-style)
// baseline on a w×w grid, returning the number of conforming trails.
func AblationTrailOnly(w, maxVisits int) (int, error) {
	nfa, err := gridStarNFA()
	if err != nil {
		return 0, err
	}
	g, src, dst := GridGraph(w)
	count, _, err := rpq.NewEngine(g, nil).CountTrails(src, dst, nfa, maxVisits)
	return count, err
}

// AblationProjectionOnly computes just the ALL-paths projection on a
// w×w grid, returning its node and edge counts.
func AblationProjectionOnly(w int) (nodes, edges int, err error) {
	nfa, err := gridStarNFA()
	if err != nil {
		return 0, 0, err
	}
	g, src, dst := GridGraph(w)
	ap, err := rpq.NewEngine(g, nil).AllPaths(src, nfa)
	if err != nil {
		return 0, 0, err
	}
	ns, es, ok := ap.Projection(dst)
	if !ok {
		return 0, 0, fmt.Errorf("grid corner unreachable")
	}
	return len(ns), len(es), nil
}

// WeightedPoint is one CPLX4 measurement: Dijkstra over a PATH view
// versus the k-shortest enumeration needed to find the same cheapest
// path by hop-count search.
type WeightedPoint struct {
	Persons      int
	DijkstraCost float64
	Duration     time.Duration
	Paths        int
}

// WeightedShortest measures weighted shortest-path evaluation through
// the full engine (PATH view with COST, Kleene star, Dijkstra).
func WeightedShortest(scales []int) ([]WeightedPoint, error) {
	var out []WeightedPoint
	for _, s := range scales {
		eng, g, err := engineAt(s)
		if err != nil {
			return nil, err
		}
		// Annotate a weight first (messages exchanged), then search.
		view := fmt.Sprintf(`GRAPH VIEW weighted_%d AS (
CONSTRUCT (n)-[e]->(m) SET e.w := 1 + COUNT(*)
MATCH (n:Person)-[e:knows]->(m:Person) ON %s)`, s, g.Name())
		if _, err := eng.Eval(view); err != nil {
			return nil, err
		}
		q := fmt.Sprintf(`PATH wk = (x)-[e:knows]->(y) COST 1 / e.w
CONSTRUCT (n)-/@p:cheap/->(m)
MATCH (n:Person)-/p<~wk*> COST c/->(m:Person) ON weighted_%d
WHERE n.anchor = TRUE`, s)
		start := time.Now()
		res, err := eng.Eval(q)
		if err != nil {
			return nil, err
		}
		out = append(out, WeightedPoint{
			Persons:  s,
			Duration: time.Since(start),
			Paths:    res.Graph.NumPaths(),
		})
	}
	return out, nil
}
