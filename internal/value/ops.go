package value

import (
	"fmt"
	"math"
)

// The operator semantics below implement §3 ("Dealing with Multi-Valued
// properties") and §A.1 of the paper:
//
//   - property access yields a set; in scalar positions singleton sets
//     stand for their element ("we omit curly braces"),
//   - comparing a scalar with a non-singleton set with = is simply
//     FALSE ("MIT" = {"CWI","MIT"} evaluates to FALSE),
//   - IN tests membership of a scalar (or singleton set) in a set,
//   - SUBSET compares two sets by inclusion,
//   - an absent property (the empty set / Null) makes comparisons
//     evaluate to FALSE rather than raising an error, which is what
//     lets WHERE silently drop bindings with missing data.

// TypeError reports an operand kind an operator cannot accept.
type TypeError struct {
	Op   string
	Kind Kind
}

func (e *TypeError) Error() string {
	return fmt.Sprintf("value: operator %s cannot be applied to %s operand", e.Op, e.Kind)
}

// Eq implements the language's `=` comparison.
func Eq(a, b Value) Value {
	a, b = a.Scalarize(), b.Scalarize()
	if a.IsNull() || b.IsNull() {
		return False
	}
	// A residual non-singleton set compared with a scalar is FALSE;
	// set = set compares structurally.
	if (a.kind == KindSet) != (b.kind == KindSet) {
		return False
	}
	return Bool(Equal(a, b))
}

// Neq implements `<>`.
func Neq(a, b Value) Value {
	v := Eq(a, b)
	if a.Scalarize().IsNull() || b.Scalarize().IsNull() {
		return False
	}
	return Bool(!v.b)
}

// orderable reports whether the (scalarized) kinds can be ordered.
func orderable(a, b Value) bool {
	if a.IsNumeric() && b.IsNumeric() {
		return true
	}
	return a.kind == b.kind && (a.kind == KindString || a.kind == KindDate || a.kind == KindBool)
}

func cmpOp(op string, a, b Value, keep func(int) bool) Value {
	a, b = a.Scalarize(), b.Scalarize()
	if a.IsNull() || b.IsNull() {
		return False
	}
	if !orderable(a, b) {
		return False
	}
	return Bool(keep(Compare(a, b)))
}

// Lt implements `<`. Comparisons between unordered kinds are FALSE.
func Lt(a, b Value) Value { return cmpOp("<", a, b, func(c int) bool { return c < 0 }) }

// Le implements `<=`.
func Le(a, b Value) Value { return cmpOp("<=", a, b, func(c int) bool { return c <= 0 }) }

// Gt implements `>`.
func Gt(a, b Value) Value { return cmpOp(">", a, b, func(c int) bool { return c > 0 }) }

// Ge implements `>=`.
func Ge(a, b Value) Value { return cmpOp(">=", a, b, func(c int) bool { return c >= 0 }) }

// In implements `x IN s`: membership of a scalar (or singleton set) in
// a set or list. A Null element or an absent collection yields FALSE.
func In(x, s Value) Value {
	x = x.Scalarize()
	if x.IsNull() {
		return False
	}
	switch s.kind {
	case KindSet, KindList:
		for _, e := range s.elems {
			if Equal(e, x) {
				return True
			}
		}
		return False
	case KindNull:
		return False
	}
	// Scalar right-hand side: treat as singleton collection.
	return Bool(Equal(x, s))
}

// Subset implements `a SUBSET b`: set inclusion. Scalars are promoted
// to singleton sets; Null is the empty set (subset of everything).
func Subset(a, b Value) Value {
	as, bs := asSet(a), asSet(b)
	for _, e := range as.elems {
		if v := In(e, bs); !v.b {
			return False
		}
	}
	return True
}

func asSet(v Value) Value {
	switch v.kind {
	case KindSet:
		return v
	case KindNull:
		return EmptySet
	case KindList:
		return Set(v.elems...)
	}
	return Set(v)
}

// Not implements boolean negation. Null negates to Null.
func Not(v Value) (Value, error) {
	v = v.Scalarize()
	switch v.kind {
	case KindBool:
		return Bool(!v.b), nil
	case KindNull:
		return Null, nil
	}
	return Null, &TypeError{Op: "NOT", Kind: v.kind}
}

// And implements conjunction; an absent operand behaves as FALSE,
// matching the filter semantics of WHERE.
func And(a, b Value) (Value, error) {
	ab, err := truth("AND", a)
	if err != nil {
		return Null, err
	}
	bb, err := truth("AND", b)
	if err != nil {
		return Null, err
	}
	return Bool(ab && bb), nil
}

// Or implements disjunction; an absent operand behaves as FALSE.
func Or(a, b Value) (Value, error) {
	ab, err := truth("OR", a)
	if err != nil {
		return Null, err
	}
	bb, err := truth("OR", b)
	if err != nil {
		return Null, err
	}
	return Bool(ab || bb), nil
}

// Truth coerces a value to a filter decision: TRUE keeps a binding,
// everything else (FALSE, Null/absent) drops it. Non-boolean scalars
// are a type error.
func Truth(v Value) (bool, error) { return truth("boolean condition", v) }

func truth(op string, v Value) (bool, error) {
	v = v.Scalarize()
	switch v.kind {
	case KindBool:
		return v.b, nil
	case KindNull:
		return false, nil
	}
	return false, &TypeError{Op: op, Kind: v.kind}
}

// Neg implements arithmetic negation.
func Neg(v Value) (Value, error) {
	v = v.Scalarize()
	switch v.kind {
	case KindInt:
		return Int(-v.i), nil
	case KindFloat:
		return Float(-v.f), nil
	case KindNull:
		return Null, nil
	}
	return Null, &TypeError{Op: "-", Kind: v.kind}
}

// Add implements `+`: numeric addition or string concatenation (the
// paper's tabular example concatenates lastName + ', ' + firstName).
func Add(a, b Value) (Value, error) {
	a, b = a.Scalarize(), b.Scalarize()
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	if as, ok := a.AsString(); ok {
		if bs, ok := b.AsString(); ok {
			return Str(as + bs), nil
		}
	}
	return arith("+", a, b,
		func(x, y int64) (int64, error) { return x + y, nil },
		func(x, y float64) (float64, error) { return x + y, nil })
}

// Sub implements numeric `-`.
func Sub(a, b Value) (Value, error) {
	return arith("-", a.Scalarize(), b.Scalarize(),
		func(x, y int64) (int64, error) { return x - y, nil },
		func(x, y float64) (float64, error) { return x - y, nil })
}

// Mul implements numeric `*`.
func Mul(a, b Value) (Value, error) {
	return arith("*", a.Scalarize(), b.Scalarize(),
		func(x, y int64) (int64, error) { return x * y, nil },
		func(x, y float64) (float64, error) { return x * y, nil })
}

// Div implements `/`. Division always yields a float (the weighted
// shortest-path example writes 1 / (1 + e.nr_messages) and expects a
// fractional cost); division by zero is a runtime error.
func Div(a, b Value) (Value, error) {
	a, b = a.Scalarize(), b.Scalarize()
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	af, aok := a.AsFloat()
	bf, bok := b.AsFloat()
	if !aok {
		return Null, &TypeError{Op: "/", Kind: a.kind}
	}
	if !bok {
		return Null, &TypeError{Op: "/", Kind: b.kind}
	}
	if bf == 0 {
		return Null, fmt.Errorf("value: division by zero")
	}
	return Float(af / bf), nil
}

// Mod implements integer `%`.
func Mod(a, b Value) (Value, error) {
	return arith("%", a.Scalarize(), b.Scalarize(),
		func(x, y int64) (int64, error) {
			if y == 0 {
				return 0, fmt.Errorf("value: modulo by zero")
			}
			return x % y, nil
		},
		func(x, y float64) (float64, error) {
			if y == 0 {
				return 0, fmt.Errorf("value: modulo by zero")
			}
			return math.Mod(x, y), nil
		})
}

func arith(op string, a, b Value, fi func(int64, int64) (int64, error), ff func(float64, float64) (float64, error)) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	if ai, ok := a.AsInt(); ok {
		if bi, ok := b.AsInt(); ok {
			r, err := fi(ai, bi)
			if err != nil {
				return Null, err
			}
			return Int(r), nil
		}
	}
	af, aok := a.AsFloat()
	bf, bok := b.AsFloat()
	if !aok {
		return Null, &TypeError{Op: op, Kind: a.kind}
	}
	if !bok {
		return Null, &TypeError{Op: op, Kind: b.kind}
	}
	r, err := ff(af, bf)
	if err != nil {
		return Null, err
	}
	return Float(r), nil
}
