package value

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// JSON interchange form for values, used by the graph (de)serialiser
// and the CLI. Scalars map onto native JSON scalars; the remaining
// kinds use a one-key wrapper object so decoding is unambiguous:
//
//	42            integer
//	1.5           float (any JSON number with a fraction/exponent)
//	"x"           string
//	true          bool
//	{"date":"1/12/2014"}
//	{"list":[...]}
//	{"set":[...]}
//	{"node":7} {"edge":7} {"path":7}
//	null          absent

// MarshalJSON encodes v in the interchange form.
func (v Value) MarshalJSON() ([]byte, error) {
	switch v.kind {
	case KindNull:
		return []byte("null"), nil
	case KindBool:
		return json.Marshal(v.b)
	case KindInt:
		return json.Marshal(v.i)
	case KindFloat:
		if v.f == float64(int64(v.f)) {
			// Force a fraction so the value round-trips as a float.
			return []byte(fmt.Sprintf("%.1f", v.f)), nil
		}
		return json.Marshal(v.f)
	case KindString:
		return json.Marshal(v.s)
	case KindDate:
		return json.Marshal(map[string]string{"date": v.String()})
	case KindList:
		return json.Marshal(map[string][]Value{"list": v.elems})
	case KindSet:
		return json.Marshal(map[string][]Value{"set": v.elems})
	case KindNode:
		return json.Marshal(map[string]uint64{"node": uint64(v.i)})
	case KindEdge:
		return json.Marshal(map[string]uint64{"edge": uint64(v.i)})
	case KindPath:
		return json.Marshal(map[string]uint64{"path": uint64(v.i)})
	}
	return nil, fmt.Errorf("value: cannot marshal kind %v", v.kind)
}

// UnmarshalJSON decodes the interchange form.
func (v *Value) UnmarshalJSON(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var raw any
	if err := dec.Decode(&raw); err != nil {
		return err
	}
	got, err := fromJSON(raw)
	if err != nil {
		return err
	}
	*v = got
	return nil
}

func fromJSON(raw any) (Value, error) {
	switch x := raw.(type) {
	case nil:
		return Null, nil
	case bool:
		return Bool(x), nil
	case string:
		return Str(x), nil
	case json.Number:
		if i, err := x.Int64(); err == nil {
			return Int(i), nil
		}
		f, err := x.Float64()
		if err != nil {
			return Null, fmt.Errorf("value: bad number %q", x.String())
		}
		return Float(f), nil
	case float64: // defensive: decoder without UseNumber
		if x == float64(int64(x)) {
			return Int(int64(x)), nil
		}
		return Float(x), nil
	case map[string]any:
		if len(x) != 1 {
			return Null, fmt.Errorf("value: wrapper object must have exactly one key, got %d", len(x))
		}
		for k, inner := range x {
			switch k {
			case "date":
				s, ok := inner.(string)
				if !ok {
					return Null, fmt.Errorf("value: date wrapper needs a string")
				}
				return ParseDate(s)
			case "list", "set":
				arr, ok := inner.([]any)
				if !ok {
					return Null, fmt.Errorf("value: %s wrapper needs an array", k)
				}
				elems := make([]Value, len(arr))
				for i, e := range arr {
					v, err := fromJSON(e)
					if err != nil {
						return Null, err
					}
					elems[i] = v
				}
				if k == "list" {
					return List(elems...), nil
				}
				return Set(elems...), nil
			case "node", "edge", "path":
				id, err := jsonID(inner)
				if err != nil {
					return Null, err
				}
				switch k {
				case "node":
					return NodeRef(id), nil
				case "edge":
					return EdgeRef(id), nil
				default:
					return PathRef(id), nil
				}
			default:
				return Null, fmt.Errorf("value: unknown wrapper key %q", k)
			}
		}
	}
	return Null, fmt.Errorf("value: cannot decode %T", raw)
}

func jsonID(inner any) (uint64, error) {
	switch n := inner.(type) {
	case json.Number:
		i, err := n.Int64()
		if err != nil || i < 0 {
			return 0, fmt.Errorf("value: bad identifier %v", inner)
		}
		return uint64(i), nil
	case float64:
		if n < 0 || n != float64(uint64(n)) {
			return 0, fmt.Errorf("value: bad identifier %v", n)
		}
		return uint64(n), nil
	}
	return 0, fmt.Errorf("value: identifier must be a number, got %T", inner)
}
