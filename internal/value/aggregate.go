package value

import (
	"fmt"
	"strings"
)

// Aggregation functions of §A.1: COUNT, MIN, MAX, SUM, AVG and
// COLLECT. Each folds the values an expression takes across the
// bindings of one construct group (§A.3). Absent (Null) inputs are
// skipped, mirroring SQL's treatment of NULL in aggregates; COUNT(*)
// is handled by the evaluator, which feeds one non-null marker per
// counted binding.

// AggKind names an aggregation function.
type AggKind uint8

// The supported aggregation functions.
const (
	AggCount AggKind = iota
	AggSum
	AggMin
	AggMax
	AggAvg
	AggCollect
)

// ParseAggKind resolves an aggregation function name (case-insensitive).
func ParseAggKind(name string) (AggKind, bool) {
	switch strings.ToUpper(name) {
	case "COUNT":
		return AggCount, true
	case "SUM":
		return AggSum, true
	case "MIN":
		return AggMin, true
	case "MAX":
		return AggMax, true
	case "AVG":
		return AggAvg, true
	case "COLLECT":
		return AggCollect, true
	}
	return 0, false
}

// String returns the surface name of the aggregation function.
func (k AggKind) String() string {
	switch k {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggAvg:
		return "AVG"
	case AggCollect:
		return "COLLECT"
	}
	return fmt.Sprintf("AGG(%d)", uint8(k))
}

// Aggregate folds in over the aggregation function k. Sets in the
// input are not flattened: each binding contributes one value.
func Aggregate(k AggKind, in []Value) (Value, error) {
	switch k {
	case AggCount:
		n := int64(0)
		for _, v := range in {
			if !v.Scalarize().IsNull() { // the empty set means absent
				n++
			}
		}
		return Int(n), nil
	case AggCollect:
		out := make([]Value, 0, len(in))
		for _, v := range in {
			if !v.Scalarize().IsNull() {
				out = append(out, v)
			}
		}
		return List(out...), nil
	case AggMin, AggMax:
		best := Null
		for _, v := range in {
			v = v.Scalarize()
			if v.IsNull() {
				continue
			}
			if best.IsNull() {
				best = v
				continue
			}
			c := Compare(v, best)
			if (k == AggMin && c < 0) || (k == AggMax && c > 0) {
				best = v
			}
		}
		return best, nil
	case AggSum, AggAvg:
		var (
			fsum    float64
			isum    int64
			n       int64
			sawReal bool
		)
		for _, v := range in {
			v = v.Scalarize()
			if v.IsNull() {
				continue
			}
			switch v.Kind() {
			case KindInt:
				isum += v.i
				fsum += float64(v.i)
			case KindFloat:
				sawReal = true
				fsum += v.f
			default:
				return Null, &TypeError{Op: k.String(), Kind: v.Kind()}
			}
			n++
		}
		if k == AggAvg {
			if n == 0 {
				return Null, nil
			}
			return Float(fsum / float64(n)), nil
		}
		if sawReal {
			return Float(fsum), nil
		}
		return Int(isum), nil
	}
	return Null, fmt.Errorf("value: unknown aggregation function %v", k)
}
