package value

import (
	"encoding/json"
	"testing"
)

func roundTripJSON(t *testing.T, v Value) Value {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal %v: %v", v, err)
	}
	var back Value
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal %s: %v", data, err)
	}
	return back
}

func TestJSONRoundTripAllKinds(t *testing.T) {
	d, _ := ParseDate("1/12/2014")
	vals := []Value{
		Null, True, False, Int(42), Int(-1), Float(2.5), Float(3.0),
		Str("x"), Str(""), d,
		List(Int(1), Str("a")), Set(Str("CWI"), Str("MIT")),
		NodeRef(7), EdgeRef(8), PathRef(9),
		List(Set(Int(1)), List()),
	}
	for _, v := range vals {
		back := roundTripJSON(t, v)
		if !Equal(v, back) {
			t.Errorf("round trip changed %v (%v) to %v (%v)", v, v.Kind(), back, back.Kind())
		}
		if v.Kind() != back.Kind() {
			t.Errorf("round trip changed kind of %v: %v → %v", v, v.Kind(), back.Kind())
		}
	}
}

func TestJSONFloatStaysFloat(t *testing.T) {
	// Integral floats must keep their kind through JSON.
	back := roundTripJSON(t, Float(4.0))
	if back.Kind() != KindFloat {
		t.Errorf("4.0 decoded as %v", back.Kind())
	}
}

func TestJSONDecodeErrors(t *testing.T) {
	bad := []string{
		`{"date": 5}`,
		`{"date": "nope"}`,
		`{"list": 5}`,
		`{"set": "x"}`,
		`{"node": "x"}`,
		`{"node": -1}`,
		`{"node": 1.5}`,
		`{"bogus": 1}`,
		`{"list": [1], "set": [2]}`,
		`[{"bogus": 1}]`,
		`{`,
	}
	for _, src := range bad {
		var v Value
		if err := json.Unmarshal([]byte(src), &v); err == nil {
			t.Errorf("decoded invalid %q as %v", src, v)
		}
	}
	// Top-level arrays are not a Value form.
	var v Value
	if err := json.Unmarshal([]byte(`[1,2]`), &v); err == nil {
		t.Error("bare array must not decode")
	}
}

func TestJSONLargeNumbers(t *testing.T) {
	back := roundTripJSON(t, Int(1<<53+1))
	if i, ok := back.AsInt(); !ok || i != 1<<53+1 {
		t.Errorf("large int round trip = %v", back)
	}
}

func TestMarshalUnknownKind(t *testing.T) {
	v := Value{kind: Kind(99)}
	if _, err := json.Marshal(v); err == nil {
		t.Error("unknown kind must fail to marshal")
	}
}

func TestAsDateDays(t *testing.T) {
	d, _ := ParseDate("2/1/1970")
	days, ok := d.AsDateDays()
	if !ok || days != 1 {
		t.Errorf("2/1/1970 = %d days, ok=%v", days, ok)
	}
	if _, ok := Int(1).AsDateDays(); ok {
		t.Error("non-date must not report days")
	}
}

func TestOpsErrorMessages(t *testing.T) {
	_, err := Add(Bool(true), Int(1))
	if err == nil {
		t.Fatal("expected type error")
	}
	if te, ok := err.(*TypeError); !ok || te.Error() == "" {
		t.Errorf("error = %v", err)
	}
	if _, err := Neg(Str("x")); err == nil {
		t.Error("negating a string must fail")
	}
	if v, err := Neg(Null); err != nil || !v.IsNull() {
		t.Error("negating null is null")
	}
	if v, err := Neg(Float(1.5)); err != nil || !Equal(v, Float(-1.5)) {
		t.Error("negating float failed")
	}
	if _, err := And(Int(1), True); err == nil {
		t.Error("AND with integer must fail")
	}
	if _, err := Or(True, Int(1)); err == nil {
		t.Error("OR with integer must fail")
	}
	if _, err := Sub(Str("a"), Str("b")); err == nil {
		t.Error("string subtraction must fail")
	}
	if _, err := Mul(Str("a"), Int(2)); err == nil {
		t.Error("string multiplication must fail")
	}
	if v, err := Mod(Float(7.5), Float(2)); err != nil || !Equal(v, Float(1.5)) {
		t.Errorf("float mod = %v, %v", v, err)
	}
	if _, err := Div(Str("a"), Int(1)); err == nil {
		t.Error("dividing a string must fail")
	}
	if _, err := Div(Int(1), Str("a")); err == nil {
		t.Error("dividing by a string must fail")
	}
}

func TestSubsetWithListOperands(t *testing.T) {
	// Lists coerce to sets for SUBSET.
	if v := Subset(List(Int(1), Int(1)), Set(Int(1), Int(2))); !v.b {
		t.Error("list SUBSET set failed")
	}
	if v := Subset(Int(1), Set(Int(1))); !v.b {
		t.Error("scalar SUBSET singleton failed")
	}
}
