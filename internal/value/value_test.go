package value

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "null", KindBool: "bool", KindInt: "integer",
		KindFloat: "float", KindString: "string", KindDate: "date",
		KindList: "list", KindSet: "set", KindNode: "node",
		KindEdge: "edge", KindPath: "path",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(200).String(); got != "kind(200)" {
		t.Errorf("unknown kind string = %q", got)
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if b, ok := Bool(true).AsBool(); !ok || !b {
		t.Error("Bool(true) round-trip failed")
	}
	if i, ok := Int(-7).AsInt(); !ok || i != -7 {
		t.Error("Int round-trip failed")
	}
	if f, ok := Float(2.5).AsFloat(); !ok || f != 2.5 {
		t.Error("Float round-trip failed")
	}
	if f, ok := Int(3).AsFloat(); !ok || f != 3 {
		t.Error("Int should widen to float")
	}
	if s, ok := Str("x").AsString(); !ok || s != "x" {
		t.Error("Str round-trip failed")
	}
	if _, ok := Str("x").AsInt(); ok {
		t.Error("string should not be an int")
	}
	if !Null.IsNull() || Int(0).IsNull() {
		t.Error("IsNull misclassifies")
	}
	if !NodeRef(4).IsRef() || Int(4).IsRef() {
		t.Error("IsRef misclassifies")
	}
	if id, ok := EdgeRef(9).RefID(); !ok || id != 9 {
		t.Error("RefID round-trip failed")
	}
}

func TestParseDate(t *testing.T) {
	d, err := ParseDate("1/12/2014")
	if err != nil {
		t.Fatalf("ParseDate: %v", err)
	}
	if d.Kind() != KindDate {
		t.Fatalf("kind = %v", d.Kind())
	}
	if got := d.String(); got != "1/12/2014" {
		t.Errorf("date renders as %q", got)
	}
	if _, err := ParseDate("not-a-date"); err == nil {
		t.Error("expected error for invalid date")
	}
}

func TestSetNormalization(t *testing.T) {
	s := Set(Str("MIT"), Str("CWI"), Str("MIT"))
	if s.Len() != 2 {
		t.Fatalf("set of {MIT,CWI,MIT} has %d elements", s.Len())
	}
	if !Equal(s, Set(Str("CWI"), Str("MIT"))) {
		t.Error("sets differing only in construction order must be equal")
	}
	// Nulls are dropped: the empty set already means absence.
	if Set(Null).Len() != 0 {
		t.Error("Set(Null) should be empty")
	}
}

func TestSingletonAndScalarize(t *testing.T) {
	one := Set(Str("Acme"))
	if v, ok := one.Singleton(); !ok || !Equal(v, Str("Acme")) {
		t.Error("singleton unwrap failed")
	}
	if _, ok := Set(Str("a"), Str("b")).Singleton(); ok {
		t.Error("two-element set is not a singleton")
	}
	if !Equal(one.Scalarize(), Str("Acme")) {
		t.Error("Scalarize should unwrap singleton set")
	}
	if !EmptySet.Scalarize().IsNull() {
		t.Error("Scalarize of empty set should be Null")
	}
	if !Equal(Int(3).Scalarize(), Int(3)) {
		t.Error("Scalarize of scalar should be identity")
	}
}

func TestCompareAcrossKinds(t *testing.T) {
	if Compare(Int(2), Float(2.0)) != 0 || Compare(Float(2.0), Int(2)) != 0 {
		// Numerically equal values are the same value across kinds.
		t.Error("2 and 2.0 must compare equal")
	}
	if Compare(Int(3), Float(2.5)) <= 0 {
		t.Error("3 > 2.5 across kinds")
	}
	if Compare(Str("a"), Int(1)) <= 0 {
		t.Error("string kind sorts after int kind")
	}
	if Compare(List(Int(1), Int(2)), List(Int(1), Int(3))) >= 0 {
		t.Error("lists compare lexicographically")
	}
	if Compare(List(Int(1)), List(Int(1), Int(0))) >= 0 {
		t.Error("prefix list sorts first")
	}
}

func TestEqSemantics(t *testing.T) {
	// The paper's core example: "MIT" = {"CWI","MIT"} is FALSE.
	multi := Set(Str("CWI"), Str("MIT"))
	if v := Eq(Str("MIT"), multi); v.b {
		t.Error(`"MIT" = {"CWI","MIT"} must be FALSE`)
	}
	// Singleton sets unwrap: "Acme" = {"Acme"} is TRUE.
	if v := Eq(Str("Acme"), Set(Str("Acme"))); !v.b {
		t.Error(`"Acme" = {"Acme"} must be TRUE`)
	}
	// Absent property: comparisons are FALSE, not errors.
	if v := Eq(Str("Acme"), Null); v.b {
		t.Error("= with absent operand must be FALSE")
	}
	if v := Neq(Str("Acme"), Null); v.b {
		t.Error("<> with absent operand must be FALSE")
	}
	if v := Eq(multi, multi); !v.b {
		t.Error("set = set compares structurally")
	}
	if v := Neq(Str("a"), Str("b")); !v.b {
		t.Error("'a' <> 'b' must be TRUE")
	}
}

func TestInAndSubset(t *testing.T) {
	emp := Set(Str("CWI"), Str("MIT"))
	if v := In(Str("MIT"), emp); !v.b {
		t.Error(`"MIT" IN {"CWI","MIT"} must be TRUE`)
	}
	if v := In(Str("Acme"), emp); v.b {
		t.Error(`"Acme" IN {"CWI","MIT"} must be FALSE`)
	}
	// Singleton left side unwraps (c.name IN n.employer with c.name a set).
	if v := In(Set(Str("CWI")), emp); !v.b {
		t.Error("singleton set IN set must unwrap")
	}
	if v := In(Str("x"), Null); v.b {
		t.Error("IN absent collection must be FALSE")
	}
	// Scalar RHS behaves as singleton: 'a' IN 'a'.
	if v := In(Str("a"), Str("a")); !v.b {
		t.Error("scalar IN scalar compares equality")
	}
	if v := Subset(Set(Str("MIT")), emp); !v.b {
		t.Error("{MIT} SUBSET {CWI,MIT} must be TRUE")
	}
	if v := Subset(emp, Set(Str("MIT"))); v.b {
		t.Error("{CWI,MIT} SUBSET {MIT} must be FALSE")
	}
	if v := Subset(Null, emp); !v.b {
		t.Error("empty set is subset of everything")
	}
}

func TestOrdering(t *testing.T) {
	if !Lt(Int(1), Float(1.5)).b || !Gt(Float(1.5), Int(1)).b {
		t.Error("cross-kind numeric ordering failed")
	}
	if !Le(Str("a"), Str("a")).b || !Ge(Str("b"), Str("a")).b {
		t.Error("string ordering failed")
	}
	if Lt(Str("a"), Int(1)).b {
		t.Error("ordering between unordered kinds must be FALSE")
	}
	if Lt(Null, Int(1)).b {
		t.Error("ordering with absent operand must be FALSE")
	}
	d1, _ := ParseDate("1/12/2014")
	d2, _ := ParseDate("2/12/2014")
	if !Lt(d1, d2).b {
		t.Error("date ordering failed")
	}
}

func TestBooleanOps(t *testing.T) {
	v, err := And(True, False)
	if err != nil || v.b {
		t.Error("TRUE AND FALSE must be FALSE")
	}
	v, err = Or(False, True)
	if err != nil || !v.b {
		t.Error("FALSE OR TRUE must be TRUE")
	}
	v, err = Not(False)
	if err != nil || !v.b {
		t.Error("NOT FALSE must be TRUE")
	}
	if _, err = Not(Int(3)); err == nil {
		t.Error("NOT 3 must be a type error")
	}
	// Absent operands behave as FALSE in filters.
	v, err = And(Null, True)
	if err != nil || v.b {
		t.Error("NULL AND TRUE must be FALSE")
	}
	if b, err := Truth(Set(Bool(true))); err != nil || !b {
		t.Error("Truth should unwrap singleton boolean set")
	}
	if _, err := Truth(Str("x")); err == nil {
		t.Error("Truth of a string must be a type error")
	}
}

func TestArithmetic(t *testing.T) {
	v, err := Add(Int(2), Int(3))
	if err != nil || !Equal(v, Int(5)) {
		t.Errorf("2+3 = %v, %v", v, err)
	}
	v, err = Add(Str("Doe"), Str(", John"))
	if err != nil || !Equal(v, Str("Doe, John")) {
		t.Errorf("string concat = %v, %v", v, err)
	}
	v, err = Sub(Int(2), Float(0.5))
	if err != nil || !Equal(v, Float(1.5)) {
		t.Errorf("2-0.5 = %v, %v", v, err)
	}
	v, err = Mul(Int(4), Int(5))
	if err != nil || !Equal(v, Int(20)) {
		t.Errorf("4*5 = %v, %v", v, err)
	}
	// Division is always real: the paper's cost 1/(1+e.nr_messages).
	v, err = Div(Int(1), Int(4))
	if err != nil || !Equal(v, Float(0.25)) {
		t.Errorf("1/4 = %v, %v", v, err)
	}
	if _, err = Div(Int(1), Int(0)); err == nil {
		t.Error("division by zero must error")
	}
	v, err = Mod(Int(7), Int(3))
	if err != nil || !Equal(v, Int(1)) {
		t.Errorf("7%%3 = %v, %v", v, err)
	}
	if _, err = Mod(Int(7), Int(0)); err == nil {
		t.Error("modulo by zero must error")
	}
	if _, err = Add(Int(1), Bool(true)); err == nil {
		t.Error("1 + TRUE must be a type error")
	}
	v, err = Neg(Int(3))
	if err != nil || !Equal(v, Int(-3)) {
		t.Errorf("-3 = %v, %v", v, err)
	}
	// Singleton-set operands unwrap in arithmetic.
	v, err = Add(Set(Int(1)), Int(1))
	if err != nil || !Equal(v, Int(2)) {
		t.Errorf("{1}+1 = %v, %v", v, err)
	}
	// Absent operands propagate absence.
	v, err = Add(Null, Int(1))
	if err != nil || !v.IsNull() {
		t.Errorf("null+1 = %v, %v", v, err)
	}
}

func TestIndexAndLen(t *testing.T) {
	l := List(Int(10), Int(20), Int(30))
	if !Equal(l.Index(1), Int(20)) {
		t.Error("Index(1) failed")
	}
	if !l.Index(5).IsNull() || !l.Index(-1).IsNull() {
		t.Error("out-of-range Index must be Null")
	}
	if l.Len() != 3 || Str("abc").Len() != 3 || Null.Len() != 0 || Int(1).Len() != -1 {
		t.Error("Len misbehaves")
	}
}

func TestStringRendering(t *testing.T) {
	cases := map[string]Value{
		"null":           Null,
		"TRUE":           True,
		"42":             Int(42),
		"0.95":           Float(0.95),
		`"Wagner"`:       Str("Wagner"),
		`{"CWI", "MIT"}`: Set(Str("MIT"), Str("CWI")),
		`"MIT"`:          Set(Str("MIT")), // singleton renders without braces
		"[1, 2]":         List(Int(1), Int(2)),
		"#105":           NodeRef(105),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("%v renders as %q, want %q", v.Kind(), got, want)
		}
	}
}

func TestKeyDistinguishesValues(t *testing.T) {
	vals := []Value{
		Null, True, False, Int(1), Int(2), Float(1.5), Str("1"), Str("x"),
		Date(1), List(Int(1)), Set(Int(1)), NodeRef(1), EdgeRef(1), PathRef(1),
		List(Int(1), Int(2)), Set(Int(1), Int(2)),
	}
	seen := map[string]Value{}
	for _, v := range vals {
		k := v.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("Key collision between %v and %v: %q", prev, v, k)
		}
		seen[k] = v
	}
	// Equal values share keys even across int/float.
	if Int(2).Key() != Float(2.0).Key() {
		t.Error("2 and 2.0 must share a grouping key")
	}
}

func TestAggregates(t *testing.T) {
	in := []Value{Int(1), Null, Int(3), Int(2)}
	check := func(k AggKind, want Value) {
		t.Helper()
		got, err := Aggregate(k, in)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if !Equal(got, want) {
			t.Errorf("%v = %v, want %v", k, got, want)
		}
	}
	check(AggCount, Int(3)) // Null skipped
	check(AggSum, Int(6))
	check(AggMin, Int(1))
	check(AggMax, Int(3))
	check(AggAvg, Float(2))
	check(AggCollect, List(Int(1), Int(3), Int(2)))

	got, err := Aggregate(AggSum, []Value{Int(1), Float(0.5)})
	if err != nil || !Equal(got, Float(1.5)) {
		t.Errorf("mixed SUM = %v, %v", got, err)
	}
	if _, err := Aggregate(AggSum, []Value{Str("x")}); err == nil {
		t.Error("SUM of strings must be a type error")
	}
	if v, err := Aggregate(AggAvg, nil); err != nil || !v.IsNull() {
		t.Error("AVG of empty group must be absent")
	}
	if v, err := Aggregate(AggMin, nil); err != nil || !v.IsNull() {
		t.Error("MIN of empty group must be absent")
	}
}

func TestParseAggKind(t *testing.T) {
	for _, name := range []string{"count", "SUM", "Min", "MAX", "avg", "COLLECT"} {
		if _, ok := ParseAggKind(name); !ok {
			t.Errorf("ParseAggKind(%q) failed", name)
		}
	}
	if _, ok := ParseAggKind("median"); ok {
		t.Error("unknown aggregate should not parse")
	}
	for _, k := range []AggKind{AggCount, AggSum, AggMin, AggMax, AggAvg, AggCollect} {
		if k.String() == "" {
			t.Error("empty agg name")
		}
	}
}

// randValue generates a random scalar value for property-based tests.
func randValue(r *rand.Rand, depth int) Value {
	switch n := r.Intn(7); {
	case n == 0:
		return Int(int64(r.Intn(20) - 10))
	case n == 1:
		return Float(float64(r.Intn(40))/4 - 5)
	case n == 2:
		return Str(string(rune('a' + r.Intn(5))))
	case n == 3:
		return Bool(r.Intn(2) == 0)
	case n == 4:
		return Date(int64(r.Intn(100)))
	case n == 5 && depth > 0:
		k := r.Intn(3)
		es := make([]Value, k)
		for i := range es {
			es[i] = randValue(r, depth-1)
		}
		return Set(es...)
	case n == 6 && depth > 0:
		k := r.Intn(3)
		es := make([]Value, k)
		for i := range es {
			es[i] = randValue(r, depth-1)
		}
		return List(es...)
	}
	return Null
}

func TestCompareIsTotalOrder(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	vals := make([]Value, 60)
	for i := range vals {
		vals[i] = randValue(r, 2)
	}
	// Antisymmetry and consistency with Key equality.
	for _, a := range vals {
		for _, b := range vals {
			ab, ba := Compare(a, b), Compare(b, a)
			if (ab < 0) != (ba > 0) || (ab == 0) != (ba == 0) {
				t.Fatalf("Compare not antisymmetric on %v, %v", a, b)
			}
			if (ab == 0) != (a.Key() == b.Key()) {
				t.Fatalf("Compare/Key disagree on %v vs %v", a, b)
			}
		}
	}
	// Transitivity via sort: sorting must not panic and must be stable
	// under re-sort.
	sort.Slice(vals, func(i, j int) bool { return Compare(vals[i], vals[j]) < 0 })
	once := make([]Value, len(vals))
	copy(once, vals)
	sort.Slice(vals, func(i, j int) bool { return Compare(vals[i], vals[j]) < 0 })
	if !reflect.DeepEqual(once, vals) {
		t.Error("sort by Compare is not idempotent")
	}
}

func TestQuickSetIdempotent(t *testing.T) {
	f := func(xs []int64) bool {
		vs := make([]Value, len(xs))
		for i, x := range xs {
			vs[i] = Int(x % 10)
		}
		s := Set(vs...)
		// Building a set from a set's elements is the identity.
		return Equal(s, Set(s.Elems()...))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSubsetReflexiveAndEmpty(t *testing.T) {
	f := func(xs []int64) bool {
		vs := make([]Value, len(xs))
		for i, x := range xs {
			vs[i] = Int(x % 10)
		}
		s := Set(vs...)
		return Subset(s, s).b && Subset(EmptySet, s).b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickInConsistentWithSubset(t *testing.T) {
	f := func(x int64, xs []int64) bool {
		vs := make([]Value, len(xs))
		for i, e := range xs {
			vs[i] = Int(e % 10)
		}
		s := Set(vs...)
		v := Int(x % 10)
		return In(v, s).b == Subset(Set(v), s).b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
