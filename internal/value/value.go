// Package value implements the literal domain V of the Path Property
// Graph model (G-CORE, Definition 2.1) together with the expression
// value semantics of Appendix A.1.
//
// A Value is an immutable tagged union. Besides the scalar literals of
// the paper (integers, reals, strings, dates and the truth values ⊤
// and ⊥), the domain contains finite lists and finite sets — property
// lookups σ(x,k) yield a *set* of values (FSET(V)) — and references to
// graph objects (node, edge and path identifiers), which is how
// bindings µ : variables → N ∪ E ∪ P ∪ V are represented uniformly.
package value

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind discriminates the variants of a Value.
type Kind uint8

// The kinds of values, ordered. The order is significant: Compare sorts
// values of different kinds by kind first, which gives the fixed total
// order on the literal domain that the deterministic evaluation
// semantics relies on (paper §A.1, footnote 4).
const (
	KindNull Kind = iota // absent value; the zero Value
	KindBool
	KindInt
	KindFloat
	KindString
	KindDate
	KindList
	KindSet
	KindNode // node identifier (element of N)
	KindEdge // edge identifier (element of E)
	KindPath // path identifier (element of P)
)

// String returns the name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "integer"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindDate:
		return "date"
	case KindList:
		return "list"
	case KindSet:
		return "set"
	case KindNode:
		return "node"
	case KindEdge:
		return "edge"
	case KindPath:
		return "path"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// DateLayout is the textual form used for date literals. The guided
// tour of the paper writes dates as day/month/year (e.g. 1/12/2014).
const DateLayout = "2/1/2006"

// Value is an immutable literal, collection or graph-object reference.
// The zero Value is the null (absent) value.
type Value struct {
	kind  Kind
	b     bool
	i     int64 // integer; date as days since Unix epoch; object identifier
	f     float64
	s     string
	elems []Value // list elements, or set elements (sorted, deduplicated)
}

// Null is the absent value. It is what property access on an object
// that lacks the property evaluates to (the paper models this as the
// empty set; Null and the empty set behave identically in comparisons).
var Null = Value{}

// kindAbsent is the out-of-band kind of the Absent sentinel. It is
// deliberately not part of the Kind enumeration: Absent is not a value
// of the literal domain V, it marks an unbound slot in the columnar
// binding-table layout (a binding µ is a *partial* function, and the
// dense row representation needs an in-band encoding of "outside
// dom µ"). Absent must never reach Compare, Key or expression
// evaluation; the bindings package converts it back to "not bound"
// at its API boundary.
const kindAbsent Kind = 0xFF

// Absent is the unbound-slot sentinel for columnar binding tables.
// It is distinct from Null: a variable bound to Null is bound.
var Absent = Value{kind: kindAbsent}

// IsAbsent reports whether v is the unbound-slot sentinel.
func (v Value) IsAbsent() bool { return v.kind == kindAbsent }

// Bool returns a boolean value (⊤ or ⊥ in the paper's notation).
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// True and False are the truth values ⊤ and ⊥.
var (
	True  = Bool(true)
	False = Bool(false)
)

// Int returns an integer literal.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float returns a real-number literal.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// Str returns a string literal.
func Str(s string) Value { return Value{kind: KindString, s: s} }

// Date returns a date literal from days since the Unix epoch.
func Date(days int64) Value { return Value{kind: KindDate, i: days} }

// ParseDate parses a date literal in DateLayout form ("1/12/2014").
func ParseDate(s string) (Value, error) {
	t, err := time.Parse(DateLayout, s)
	if err != nil {
		return Null, fmt.Errorf("value: invalid date %q: %w", s, err)
	}
	return Date(t.Unix() / 86400), nil
}

// List returns a list value preserving order and duplicates.
func List(elems ...Value) Value {
	cp := make([]Value, len(elems))
	copy(cp, elems)
	return Value{kind: KindList, elems: cp}
}

// Set returns a set value: elements are deduplicated and kept in the
// canonical Compare order, so equal sets are structurally identical.
func Set(elems ...Value) Value {
	cp := make([]Value, 0, len(elems))
	for _, e := range elems {
		if e.IsNull() {
			continue // the empty set already represents absence
		}
		cp = append(cp, e)
	}
	sort.Slice(cp, func(i, j int) bool { return Compare(cp[i], cp[j]) < 0 })
	out := cp[:0]
	for i, e := range cp {
		if i == 0 || Compare(cp[i-1], e) != 0 {
			out = append(out, e)
		}
	}
	return Value{kind: KindSet, elems: out}
}

// EmptySet is the set with no elements; property lookup on an object
// without the property yields it (σ(x,k) = ∅).
var EmptySet = Set()

// NodeRef returns a reference to the node with the given identifier.
func NodeRef(id uint64) Value { return Value{kind: KindNode, i: int64(id)} }

// EdgeRef returns a reference to the edge with the given identifier.
func EdgeRef(id uint64) Value { return Value{kind: KindEdge, i: int64(id)} }

// PathRef returns a reference to the path with the given identifier.
func PathRef(id uint64) Value { return Value{kind: KindPath, i: int64(id)} }

// Kind reports the variant of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is the absent value.
func (v Value) IsNull() bool { return v.kind == KindNull }

// IsRef reports whether v references a graph object (node, edge, path).
func (v Value) IsRef() bool {
	return v.kind == KindNode || v.kind == KindEdge || v.kind == KindPath
}

// IsNumeric reports whether v is an integer or a float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// AsBool returns the boolean content; ok is false if v is not a bool.
func (v Value) AsBool() (b, ok bool) { return v.b, v.kind == KindBool }

// AsInt returns the integer content; ok is false if v is not an integer.
func (v Value) AsInt() (int64, bool) { return v.i, v.kind == KindInt }

// AsFloat returns the numeric content widened to float64; ok is false
// if v is neither an integer nor a float.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	}
	return 0, false
}

// AsString returns the string content; ok is false if v is not a string.
func (v Value) AsString() (string, bool) { return v.s, v.kind == KindString }

// AsDateDays returns the date content in days since the Unix epoch.
func (v Value) AsDateDays() (int64, bool) { return v.i, v.kind == KindDate }

// RefID returns the object identifier of a node/edge/path reference.
func (v Value) RefID() (uint64, bool) { return uint64(v.i), v.IsRef() }

// Elems returns the elements of a list or set (nil otherwise). The
// returned slice must not be modified.
func (v Value) Elems() []Value {
	if v.kind == KindList || v.kind == KindSet {
		return v.elems
	}
	return nil
}

// Len returns the number of elements of a list or set, the length of a
// string, 0 for Null, and -1 for other kinds.
func (v Value) Len() int {
	switch v.kind {
	case KindList, KindSet:
		return len(v.elems)
	case KindString:
		return len(v.s)
	case KindNull:
		return 0
	}
	return -1
}

// Index returns element i of a list or set (sets use canonical order),
// following the paper's 0-based indexing ("G-CORE starts counting at
// 0", §3). Out-of-range access yields Null.
func (v Value) Index(i int) Value {
	es := v.Elems()
	if i < 0 || i >= len(es) {
		return Null
	}
	return es[i]
}

// Singleton reports whether v is a one-element set, and unwraps it.
// The paper writes singleton property sets without braces ("we simply
// write "MIT" instead of {"MIT"}"): scalar contexts treat a singleton
// set as its sole element.
func (v Value) Singleton() (Value, bool) {
	if v.kind == KindSet && len(v.elems) == 1 {
		return v.elems[0], true
	}
	return Null, false
}

// Scalarize unwraps singleton sets; other values pass through. An
// empty set scalarizes to Null (absent).
func (v Value) Scalarize() Value {
	if v.kind == KindSet {
		switch len(v.elems) {
		case 0:
			return Null
		case 1:
			return v.elems[0]
		}
	}
	return v
}

// Compare imposes the fixed total order on the value domain used for
// deterministic evaluation: by kind, then by content. It returns a
// negative number, zero, or a positive number as a < b, a == b, a > b.
// Integers and floats compare numerically across the two kinds.
func Compare(a, b Value) int {
	// Numeric cross-kind comparison.
	if a.IsNumeric() && b.IsNumeric() && a.kind != b.kind {
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		}
		// Numerically equal integers and floats are the same value,
		// matching Eq and the grouping Key.
		return 0
	}
	if a.kind != b.kind {
		return int(a.kind) - int(b.kind)
	}
	switch a.kind {
	case KindNull:
		return 0
	case KindBool:
		switch {
		case a.b == b.b:
			return 0
		case !a.b:
			return -1
		}
		return 1
	case KindInt, KindDate, KindNode, KindEdge, KindPath:
		switch {
		case a.i < b.i:
			return -1
		case a.i > b.i:
			return 1
		}
		return 0
	case KindFloat:
		switch {
		case a.f < b.f:
			return -1
		case a.f > b.f:
			return 1
		case a.f == b.f:
			return 0
		}
		// NaNs sort before everything else, equal among themselves.
		an, bn := math.IsNaN(a.f), math.IsNaN(b.f)
		switch {
		case an && bn:
			return 0
		case an:
			return -1
		}
		return 1
	case KindString:
		return strings.Compare(a.s, b.s)
	case KindList, KindSet:
		for i := 0; i < len(a.elems) && i < len(b.elems); i++ {
			if c := Compare(a.elems[i], b.elems[i]); c != 0 {
				return c
			}
		}
		return len(a.elems) - len(b.elems)
	}
	return 0
}

// Equal reports whether a and b are the same value under Compare.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Key returns a string that is equal for equal values and distinct for
// distinct values, suitable as a map key for grouping and hashing.
func (v Value) Key() string {
	var sb strings.Builder
	v.appendKey(&sb)
	return sb.String()
}

// AppendKeyTo appends the Key encoding to sb without the intermediate
// string allocation; callers that concatenate many value keys (row
// sort keys, group keys) build one buffer instead of one string per
// value.
func (v Value) AppendKeyTo(sb *strings.Builder) { v.appendKey(sb) }

func (v Value) appendKey(sb *strings.Builder) {
	switch v.kind {
	case KindNull:
		sb.WriteByte('_')
	case KindBool:
		if v.b {
			sb.WriteString("b1")
		} else {
			sb.WriteString("b0")
		}
	case KindInt:
		sb.WriteByte('i')
		sb.WriteString(strconv.FormatInt(v.i, 10))
	case KindFloat:
		// Integral floats must hash like the equal integer.
		if v.f == math.Trunc(v.f) && !math.IsInf(v.f, 0) && math.Abs(v.f) < 1e18 {
			sb.WriteByte('i')
			sb.WriteString(strconv.FormatInt(int64(v.f), 10))
			return
		}
		sb.WriteByte('f')
		sb.WriteString(strconv.FormatFloat(v.f, 'g', -1, 64))
	case KindString:
		sb.WriteByte('s')
		sb.WriteString(strconv.Quote(v.s))
	case KindDate:
		sb.WriteByte('d')
		sb.WriteString(strconv.FormatInt(v.i, 10))
	case KindList:
		sb.WriteByte('[')
		for _, e := range v.elems {
			e.appendKey(sb)
			sb.WriteByte(',')
		}
		sb.WriteByte(']')
	case KindSet:
		sb.WriteByte('{')
		for _, e := range v.elems {
			e.appendKey(sb)
			sb.WriteByte(',')
		}
		sb.WriteByte('}')
	case KindNode:
		sb.WriteByte('N')
		sb.WriteString(strconv.FormatInt(v.i, 10))
	case KindEdge:
		sb.WriteByte('E')
		sb.WriteString(strconv.FormatInt(v.i, 10))
	case KindPath:
		sb.WriteByte('P')
		sb.WriteString(strconv.FormatInt(v.i, 10))
	}
}

// String renders the value in the paper's display notation: strings
// are quoted, sets use curly braces with singleton sets unwrapped,
// dates use the DateLayout form, references print as #<id>.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindBool:
		if v.b {
			return "TRUE"
		}
		return "FALSE"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.s)
	case KindDate:
		return time.Unix(v.i*86400, 0).UTC().Format(DateLayout)
	case KindList:
		parts := make([]string, len(v.elems))
		for i, e := range v.elems {
			parts[i] = e.String()
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case KindSet:
		if s, ok := v.Singleton(); ok {
			return s.String()
		}
		parts := make([]string, len(v.elems))
		for i, e := range v.elems {
			parts[i] = e.String()
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case KindNode, KindEdge, KindPath:
		return "#" + strconv.FormatInt(v.i, 10)
	}
	return "?"
}

// fnvOffset and fnvPrime are the FNV-1a 64-bit parameters used by Hash.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// HashSeed is the initial accumulator for Hash chains.
func HashSeed() uint64 { return fnvOffset }

func hashByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime }

func hashUint64(h, x uint64) uint64 {
	for s := 0; s < 64; s += 8 {
		h = hashByte(h, byte(x>>s))
	}
	return h
}

func hashStringInto(h uint64, s string) uint64 {
	h = hashUint64(h, uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h = hashByte(h, s[i])
	}
	return h
}

// Hash folds v into the FNV-1a accumulator h and returns the new
// accumulator. It is consistent with the Key encoding: values with
// equal Key strings produce equal hashes (in particular an integral
// float hashes like the equal integer, and all NaNs hash alike), so a
// hash bucket plus an Equal confirmation replaces a Key-string bucket
// without changing which rows meet. Absent participates with its own
// tag so whole rows of a columnar binding table can be folded directly.
func (v Value) Hash(h uint64) uint64 {
	switch v.kind {
	case KindNull:
		return hashByte(h, 1)
	case KindBool:
		if v.b {
			return hashByte(hashByte(h, 2), 1)
		}
		return hashByte(hashByte(h, 2), 0)
	case KindInt:
		return hashUint64(hashByte(h, 3), uint64(v.i))
	case KindFloat:
		// Mirror appendKey: integral floats are the same value as the
		// equal integer and must land in the same bucket.
		if v.f == math.Trunc(v.f) && !math.IsInf(v.f, 0) && math.Abs(v.f) < 1e18 {
			return hashUint64(hashByte(h, 3), uint64(int64(v.f)))
		}
		if math.IsNaN(v.f) {
			// All NaN payloads are one value under Compare.
			return hashByte(hashByte(h, 4), 0xA5)
		}
		return hashUint64(hashByte(h, 4), math.Float64bits(v.f))
	case KindString:
		return hashStringInto(hashByte(h, 5), v.s)
	case KindDate:
		return hashUint64(hashByte(h, 6), uint64(v.i))
	case KindList:
		h = hashUint64(hashByte(h, 7), uint64(len(v.elems)))
		for _, e := range v.elems {
			h = e.Hash(h)
		}
		return h
	case KindSet:
		h = hashUint64(hashByte(h, 8), uint64(len(v.elems)))
		for _, e := range v.elems {
			h = e.Hash(h)
		}
		return h
	case KindNode:
		return hashUint64(hashByte(h, 9), uint64(v.i))
	case KindEdge:
		return hashUint64(hashByte(h, 10), uint64(v.i))
	case KindPath:
		return hashUint64(hashByte(h, 11), uint64(v.i))
	case kindAbsent:
		return hashByte(h, 0xFF)
	}
	return hashByte(h, 0xFE)
}
