package table

import (
	"bytes"
	"strings"
	"testing"

	"gcore/internal/value"
)

func sample(t *testing.T) *Table {
	t.Helper()
	tb := New("orders", "custName", "prodCode")
	rows := [][]value.Value{
		{value.Str("Bob"), value.Int(1001)},
		{value.Str("Ada"), value.Int(1002)},
	}
	for _, r := range rows {
		if err := tb.AddRow(r...); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func TestBasics(t *testing.T) {
	tb := sample(t)
	if tb.Len() != 2 {
		t.Fatalf("len = %d", tb.Len())
	}
	if tb.Col("prodCode") != 1 || tb.Col("missing") != -1 {
		t.Error("Col misbehaves")
	}
	if err := tb.AddRow(value.Int(1)); err == nil {
		t.Error("arity mismatch must fail")
	}
	s := tb.Sorted()
	if v, _ := s.Rows[0][0].AsString(); v != "Ada" {
		t.Errorf("sorted first row = %v", s.Rows[0])
	}
	// Original unchanged.
	if v, _ := tb.Rows[0][0].AsString(); v != "Bob" {
		t.Error("Sorted must not mutate")
	}
}

func TestStringRendering(t *testing.T) {
	out := sample(t).String()
	if !strings.Contains(out, "custName") || !strings.Contains(out, `"Ada"`) {
		t.Errorf("render = %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, rule, 2 rows
		t.Errorf("lines = %d", len(lines))
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tb := sample(t)
	data, err := tb.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Table
	if err := back.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	if back.Name != "orders" || back.Len() != 2 || len(back.Cols) != 2 {
		t.Fatalf("round trip = %+v", back)
	}
	if !value.Equal(back.Rows[0][1], value.Int(1001)) {
		t.Error("values lost")
	}
	// Arity errors rejected on decode.
	bad := `{"name":"t","cols":["a"],"rows":[[1,2]]}`
	if err := back.UnmarshalJSON([]byte(bad)); err == nil {
		t.Error("arity mismatch must fail on decode")
	}
	if err := back.UnmarshalJSON([]byte("{")); err == nil {
		t.Error("syntax error must fail")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	src := "custName,prodCode,vip\nAda,1001,true\nBob,2.5,false\nCyd,,\n"
	tb, err := ReadCSV("orders", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 3 || len(tb.Cols) != 3 {
		t.Fatalf("table = %+v", tb)
	}
	if !value.Equal(tb.Rows[0][1], value.Int(1001)) {
		t.Error("integer cell not typed")
	}
	if !value.Equal(tb.Rows[1][1], value.Float(2.5)) {
		t.Error("float cell not typed")
	}
	if b, _ := tb.Rows[0][2].AsBool(); !b {
		t.Error("bool cell not typed")
	}
	if !tb.Rows[2][1].IsNull() {
		t.Error("empty cell must be null")
	}
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("orders", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 3 {
		t.Error("CSV round trip lost rows")
	}
	if _, err := ReadCSV("x", strings.NewReader("")); err == nil {
		t.Error("empty CSV must fail (no header)")
	}
}
