// Package table implements the tabular side of G-CORE's §5
// extensions: SELECT produces tables, FROM imports binding tables,
// and MATCH … ON can treat a table as a graph of isolated nodes.
package table

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"gcore/internal/value"
)

// Table is a named relation: column names plus rows of values.
type Table struct {
	Name string
	Cols []string
	Rows [][]value.Value
}

// New creates an empty table with the given columns.
func New(name string, cols ...string) *Table {
	return &Table{Name: name, Cols: append([]string(nil), cols...)}
}

// AddRow appends one row; its arity must match the columns.
func (t *Table) AddRow(vals ...value.Value) error {
	if len(vals) != len(t.Cols) {
		return fmt.Errorf("table %s: row has %d values for %d columns", t.Name, len(vals), len(t.Cols))
	}
	t.Rows = append(t.Rows, append([]value.Value(nil), vals...))
	return nil
}

// Col returns the index of a column, or -1.
func (t *Table) Col(name string) int {
	for i, c := range t.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.Rows) }

// Sorted returns a copy with rows in canonical order.
func (t *Table) Sorted() *Table {
	cp := &Table{Name: t.Name, Cols: t.Cols, Rows: append([][]value.Value(nil), t.Rows...)}
	sort.SliceStable(cp.Rows, func(i, j int) bool {
		for c := range cp.Cols {
			if d := value.Compare(cp.Rows[i][c], cp.Rows[j][c]); d != 0 {
				return d < 0
			}
		}
		return false
	})
	return cp
}

// String renders the table with aligned columns, as the CLI prints it.
func (t *Table) String() string {
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	cells := make([][]string, len(t.Rows))
	for r, row := range t.Rows {
		cells[r] = make([]string, len(row))
		for i, v := range row {
			s := v.String()
			cells[r][i] = s
			if len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, s := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			if i == len(cells)-1 {
				sb.WriteString(s) // no padding on the last column
			} else {
				fmt.Fprintf(&sb, "%-*s", widths[i], s)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Cols)
	rule := make([]string, len(widths))
	for i, w := range widths {
		rule[i] = strings.Repeat("-", w)
	}
	writeRow(rule)
	for _, row := range cells {
		writeRow(row)
	}
	return sb.String()
}

// MarshalJSON encodes the table as {"name","cols","rows"}.
func (t *Table) MarshalJSON() ([]byte, error) {
	return json.MarshalIndent(struct {
		Name string          `json:"name"`
		Cols []string        `json:"cols"`
		Rows [][]value.Value `json:"rows"`
	}{t.Name, t.Cols, t.Rows}, "", "  ")
}

// UnmarshalJSON decodes the JSON form.
func (t *Table) UnmarshalJSON(data []byte) error {
	var doc struct {
		Name string          `json:"name"`
		Cols []string        `json:"cols"`
		Rows [][]value.Value `json:"rows"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	for i, r := range doc.Rows {
		if len(r) != len(doc.Cols) {
			return fmt.Errorf("table %s: row %d has %d values for %d columns", doc.Name, i, len(r), len(doc.Cols))
		}
	}
	t.Name, t.Cols, t.Rows = doc.Name, doc.Cols, doc.Rows
	return nil
}

// ReadCSV loads a table from CSV with a header row. Cells are typed
// by trial: integer, then float, then the raw string.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("table %s: reading CSV header: %w", name, err)
	}
	t := New(name, header...)
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, fmt.Errorf("table %s: reading CSV: %w", name, err)
		}
		row := make([]value.Value, len(rec))
		for i, cell := range rec {
			row[i] = typeCell(cell)
		}
		if err := t.AddRow(row...); err != nil {
			return nil, err
		}
	}
}

func typeCell(cell string) value.Value {
	if cell == "" {
		return value.Null
	}
	if i, err := strconv.ParseInt(cell, 10, 64); err == nil {
		return value.Int(i)
	}
	if f, err := strconv.ParseFloat(cell, 64); err == nil {
		return value.Float(f)
	}
	switch strings.ToLower(cell) {
	case "true":
		return value.True
	case "false":
		return value.False
	}
	return value.Str(cell)
}

// WriteCSV emits the table as CSV with a header row.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Cols); err != nil {
		return err
	}
	for _, row := range t.Rows {
		rec := make([]string, len(row))
		for i, v := range row {
			if s, ok := v.AsString(); ok {
				rec[i] = s
			} else {
				rec[i] = v.String()
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
