// Package core implements the evaluator of G-CORE — the paper's
// primary contribution: a closed query language over Path Property
// Graphs in which every query returns a graph (§3), paths are
// first-class citizens, and evaluation follows the denotational
// semantics of Appendix A:
//
//	MATCH   → a binding table Ω (§A.2), via pattern matching under
//	          homomorphism semantics, joins, OPTIONAL left-outer
//	          joins and WHERE filters;
//	CONSTRUCT → a new PPG built from Ω by identity-respecting,
//	          grouped object construction (§A.3);
//	PATH    → weighted path views usable in regular path expressions
//	          (§A.4);
//	UNION / INTERSECT / MINUS → the graph set operations (§A.5);
//	GRAPH / GRAPH VIEW → named query results (§A.6);
//	SELECT / FROM / tables ON → the tabular extensions (§5).
package core

import (
	"context"
	"fmt"
	"sync"

	"gcore/internal/ast"
	"gcore/internal/bindings"
	"gcore/internal/catalog"
	"gcore/internal/faultinject"
	"gcore/internal/gov"
	"gcore/internal/obs"
	"gcore/internal/par"
	"gcore/internal/plancache"
	"gcore/internal/ppg"
	"gcore/internal/rpq"
	"gcore/internal/table"
	"gcore/internal/value"
)

// Evaluator evaluates statements against a catalog.
type Evaluator struct {
	cat     *catalog.Catalog
	limits  gov.Limits // zero fields = ungoverned
	workers int        // 0 = GOMAXPROCS, 1 = sequential

	registry *obs.Registry    // lifetime per-operator metrics
	trace    obs.TraceHandler // user span hook; nil = no tracing
	sink     *obs.Collector   // user-supplied collector; nil = pooled

	// scratchPool recycles metrics-only collectors for statements that
	// run without a user sink. A pool rather than one shared scratch
	// collector: read-only statements execute concurrently under the
	// engine's read lock, and sharing one collector across them would
	// interleave their spans.
	scratchPool sync.Pool

	// planCache holds compiled statements keyed on normalised source
	// text (see prepared.go); nil disables source-level caching.
	planCache *plancache.Cache
	// memoMu guards the two memos below. Concurrent read-only
	// statements share the evaluator, so the memos cannot rely on
	// caller serialisation (configuration setters still do: the
	// engine calls them under its exclusive lock).
	memoMu sync.Mutex
	// limitsFP memoizes the cache key's limits-and-knobs fingerprint.
	limitsFP limitsFP
	// normMemo remembers the last source→normalised-text mapping, so
	// repeated traffic of one statement skips re-normalisation.
	normMemo struct{ src, text string }
}

// New creates an evaluator over the given catalog.
func New(cat *catalog.Catalog) *Evaluator {
	ev := &Evaluator{
		cat:       cat,
		registry:  obs.NewRegistry(),
		planCache: plancache.New(0),
	}
	ev.scratchPool.New = func() any { return obs.NewCollector() }
	return ev
}

// Catalog returns the evaluator's catalog.
func (ev *Evaluator) Catalog() *catalog.Catalog { return ev.cat }

// SetParallelism sets the worker count for intra-query parallelism
// (node scans, edge expansion, per-source path searches). Zero (the
// default) means runtime.GOMAXPROCS; one forces fully sequential
// evaluation. Parallel evaluation merges partition results in input
// order, so the produced binding tables — and therefore all query
// results — are identical for every setting.
func (ev *Evaluator) SetParallelism(n int) { ev.workers = n }

// SetMaxBindings bounds the size of intermediate binding tables; a
// query whose evaluation would exceed the bound fails with a clear
// error instead of exhausting memory (resource governance for
// adversarial cartesian products). Zero means unlimited. It is a
// shorthand for setting Limits.MaxBindings.
func (ev *Evaluator) SetMaxBindings(n int) { ev.limits.MaxBindings = n }

// SetLimits installs the per-statement resource budget.
func (ev *Evaluator) SetLimits(l gov.Limits) { ev.limits = l }

// Limits returns the current per-statement resource budget.
func (ev *Evaluator) Limits() gov.Limits { return ev.limits }

// SetTraceHandler installs the span hook invoked at every operator
// start/end; nil detaches it.
func (ev *Evaluator) SetTraceHandler(h obs.TraceHandler) { ev.trace = h }

// SetCollector installs a user-held collector that accumulates spans
// across statements; nil reverts to the internal per-statement
// scratch collector.
func (ev *Evaluator) SetCollector(col *obs.Collector) { ev.sink = col }

// Registry returns the evaluator's lifetime metrics registry.
func (ev *Evaluator) Registry() *obs.Registry { return ev.registry }

// checkBudget enforces the binding-table bound.
func (c *evalCtx) checkBudget(tbl *bindings.Table) error {
	if limit := c.gov.Limits().MaxBindings; limit > 0 && tbl.Len() > limit {
		return c.gov.BindingsError(tbl.Len())
	}
	return nil
}

// joinBudget joins two tables under the binding budget, aborting the
// materialisation as soon as it overflows.
func (c *evalCtx) joinBudget(a, b *bindings.Table) (*bindings.Table, error) {
	limit := c.gov.Limits().MaxBindings
	out, over := bindings.JoinLimited(a, b, limit)
	if over {
		return nil, c.gov.BindingsError(limit + 1)
	}
	return out, nil
}

// leftJoinBudget is joinBudget for the OPTIONAL left-outer join.
func (c *evalCtx) leftJoinBudget(a, b *bindings.Table) (*bindings.Table, error) {
	limit := c.gov.Limits().MaxBindings
	out, over := bindings.LeftJoinLimited(a, b, limit)
	if over {
		return nil, c.gov.BindingsError(limit + 1)
	}
	return out, nil
}

// Result is the outcome of a statement: a graph (the normal, closed
// case), a table (the SELECT extension), or a rendered plan (EXPLAIN
// and EXPLAIN ANALYZE statements).
type Result struct {
	Graph *ppg.Graph
	Table *table.Table
	Plan  string
}

// Error is an evaluation error.
type Error struct{ Msg string }

func (e *Error) Error() string { return "eval error: " + e.Msg }

func errf(format string, args ...any) error {
	return &Error{Msg: fmt.Sprintf(format, args...)}
}

// scope resolves names visible at one point of evaluation: query-local
// GRAPH bindings and PATH views, chaining to the enclosing scope and
// finally the catalog.
type scope struct {
	parent *scope
	graphs map[string]*ppg.Graph
	paths  map[string]*ast.PathClause
}

func newScope(parent *scope) *scope {
	return &scope{parent: parent, graphs: map[string]*ppg.Graph{}, paths: map[string]*ast.PathClause{}}
}

func (s *scope) lookupGraph(name string) (*ppg.Graph, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if g, ok := cur.graphs[name]; ok {
			return g, true
		}
	}
	return nil, false
}

func (s *scope) lookupPath(name string) (*ast.PathClause, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if pc, ok := cur.paths[name]; ok {
			return pc, true
		}
	}
	return nil, false
}

// tempPath is a computed (not yet stored) path bound during MATCH: a
// fresh path identifier associated with a walk of some source graph
// (§A.2, the x –w in r→ y case), or an ALL-paths projection.
type tempPath struct {
	path       *ppg.Path
	src        *ppg.Graph
	projection bool
	cost       float64
}

// nfaKey identifies a compiled automaton: the regex node of the
// statement AST (ASTs are immutable during evaluation, so pointer
// identity suffices) plus the traversal orientation.
type nfaKey struct {
	rx       *ast.Regex
	reversed bool
}

// evalCtx carries the per-statement mutable state.
type evalCtx struct {
	ev        *Evaluator
	gov       *gov.Governor
	col       *obs.Collector // nil-safe; set by evalGoverned
	tempPaths map[ppg.PathID]*tempPath
	anonSeq   int

	// lastScanIndexed reports whether the most recent node scan used
	// the label index; the scan span reads it right after scanNodes.
	lastScanIndexed bool

	// pendingViews holds GRAPH VIEW results defined by this statement,
	// in definition order. They are visible to the rest of the
	// statement (resolveGraphName consults them before the catalog)
	// but reach the catalog only when the whole statement succeeds —
	// a failed statement therefore leaves the engine's registered
	// graphs exactly as they were (no partial mutation).
	pendingViews []*ppg.Graph

	// nfaCache holds automata compiled during this statement, so a
	// regular path expression is compiled once per statement rather
	// than once per pattern evaluation (pattern predicates in WHERE
	// re-evaluate their pattern per row, which would otherwise
	// recompile the same regex per row).
	nfaCache map[nfaKey]*rpq.NFA

	// params are this execution's $name bindings (prepared statements).
	params map[string]value.Value

	// defGraph is this execution's session default-graph override
	// ("" = catalog default); see ExecOpts.DefaultGraph.
	defGraph string

	// cached is the plan-cache entry this execution runs under, or nil:
	// compiledNFA and evalChainPlanned consult it before recomputing,
	// and publish what they compile for later executions.
	cached *CachedStatement
}

func (ev *Evaluator) newCtx(gv *gov.Governor) *evalCtx {
	return &evalCtx{
		ev:        ev,
		gov:       gv,
		tempPaths: map[ppg.PathID]*tempPath{},
		nfaCache:  map[nfaKey]*rpq.NFA{},
	}
}

// minParallelItems is the fan-out size below which chunked jobs stay
// sequential: goroutine + merge overhead only pays off past this.
const minParallelItems = 64

// mapRows runs a chunked row-production job over n items and returns
// the per-chunk row slices in input order; appending them in that
// order reproduces the sequential output exactly. The job runs
// concurrently only when it is marked safe (its predicates are free
// of subqueries, which may touch evaluator state) and large enough to
// amortise the fan-out.
func (c *evalCtx) mapRows(n int, safe bool, fn func(lo, hi int) ([]bindings.Binding, error)) ([][]bindings.Binding, error) {
	w := par.Workers(c.ev.workers)
	if !safe || n < minParallelItems {
		w = 1
	}
	return par.MapChunks(c.gov.Context(), n, w, fn)
}

// mapSlabs is mapRows for chunk jobs that produce dense row slabs
// (rows laid out back to back in slot order): the chunk outputs
// concatenate in input order via Table.AppendSlab without touching a
// map per row.
func (c *evalCtx) mapSlabs(n int, safe bool, fn func(lo, hi int) ([]value.Value, error)) ([][]value.Value, error) {
	w := par.Workers(c.ev.workers)
	if !safe || n < minParallelItems {
		w = 1
	}
	return par.MapChunks(c.gov.Context(), n, w, fn)
}

// mapIdx is mapRows for chunk jobs that select row indices (filters):
// the per-chunk index slices concatenate in input order.
func (c *evalCtx) mapIdx(n int, safe bool, fn func(lo, hi int) ([]int, error)) ([][]int, error) {
	w := par.Workers(c.ev.workers)
	if !safe || n < minParallelItems {
		w = 1
	}
	return par.MapChunks(c.gov.Context(), n, w, fn)
}

func (c *evalCtx) freshAnon() string {
	c.anonSeq++
	return fmt.Sprintf("@anon%d", c.anonSeq)
}

// defaultGraph resolves the statement's implicit target: the session
// override when set (resolved like ON <name>, so tables-as-graphs
// work), the catalog default otherwise (nil when none is registered).
func (c *evalCtx) defaultGraph() (*ppg.Graph, error) {
	if c.defGraph == "" {
		return c.ev.cat.Default(), nil
	}
	g, err := c.ev.cat.Resolve(c.defGraph)
	if err != nil {
		return nil, errf("session default graph: %v", err)
	}
	return g, nil
}

// defaultGraphOrNil is defaultGraph for contexts that fall back to no
// graph rather than failing (expression environments).
func (c *evalCtx) defaultGraphOrNil() *ppg.Graph {
	g, _ := c.defaultGraph()
	return g
}

// EvalStatement evaluates one statement: PATH and GRAPH definitions
// first, then the query. A definition-only statement returns the last
// defined graph (or an empty graph for pure PATH definitions).
func (ev *Evaluator) EvalStatement(stmt *ast.Statement) (*Result, error) {
	return ev.EvalStatementContext(context.Background(), stmt)
}

// stmtText renders a statement for error reports, bounded so a
// pathological query does not flood logs.
func stmtText(stmt *ast.Statement) string {
	s := stmt.String()
	const max = 300
	if len(s) > max {
		s = s[:max] + "…"
	}
	return s
}

// EvalStatementContext evaluates one statement under the caller's
// context and the evaluator's Limits. Cancellation, deadline expiry
// and exhausted budgets surface as *gov.QueryError with the matching
// Kind; a panic anywhere in evaluation is contained and returned as a
// KindInternal error carrying the statement text. On any failure the
// catalog and every registered graph are left exactly as they were —
// GRAPH VIEW definitions reach the catalog only after the whole
// statement has succeeded.
func (ev *Evaluator) EvalStatementContext(ctx context.Context, stmt *ast.Statement) (*Result, error) {
	return ev.EvalExec(ctx, Exec{stmt: stmt})
}

// EvalExec is EvalStatementContext with the execution extras
// (parameter bindings, session overrides, plan-cache entry and probe
// outcome) threaded through; every source-level and AST-level entry
// point lands here.
func (ev *Evaluator) EvalExec(ctx context.Context, ex Exec) (*Result, error) {
	switch ex.stmt.Explain {
	case ast.ExplainPlan:
		plan, err := ev.ExplainOptsContext(ctx, ex.stmt, ex.opts)
		if err != nil {
			return nil, err
		}
		return &Result{Plan: plan}, nil
	case ast.ExplainAnalyze:
		plan, err := ev.ExplainAnalyzeExec(ctx, ex)
		if err != nil {
			return nil, err
		}
		return &Result{Plan: plan}, nil
	}
	col := ev.sink
	var pooled *obs.Collector
	if col != nil {
		col.SetHandler(ev.trace)
	} else {
		// A pooled collector is reset per statement: metrics-only
		// (no labels) unless a trace handler wants the events.
		pooled = ev.scratchPool.Get().(*obs.Collector)
		pooled.Reset(ev.trace)
		col = pooled
	}
	res, err := ev.evalGoverned(ctx, col, ex)
	if pooled != nil {
		ev.scratchPool.Put(pooled)
	}
	return res, err
}

// evalGoverned runs one statement under governance with col
// collecting operator spans; every statement — plain, traced, or the
// execution leg of EXPLAIN ANALYZE — goes through here, so all three
// share one cancellation/budget/containment path. The statement's
// aggregate stats are folded into the evaluator's registry.
func (ev *Evaluator) evalGoverned(ctx context.Context, col *obs.Collector, ex Exec) (res *Result, err error) {
	stmt := ex.stmt
	if ex.cached == nil {
		// Cached statements were analyzed once at compile time.
		if err := analyzeStatement(stmt); err != nil {
			return nil, err
		}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	limits := ev.limits
	if ex.opts.Limits != nil {
		limits = *ex.opts.Limits
	}
	if limits.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, limits.Timeout)
		defer cancel()
	}
	c := ev.newCtx(gov.New(ctx, limits))
	c.col = col
	c.params = ex.params
	c.cached = ex.cached
	c.defGraph = ex.opts.DefaultGraph
	if ex.probe {
		col.PlanCacheEvent(ex.hit, ex.compile)
	}
	mark := col.Mark()
	sp := col.Start(obs.OpStatement)
	if sp.Verbose() {
		sp.SetLabel(stmtText(stmt))
	}
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, gov.PanicError(r, stmtText(stmt))
		}
		col.RecordBudget(c.gov.FrontierUsed(), c.gov.ResultsUsed())
		if err != nil {
			sp.Fail()
		} else {
			sp.Rows(0, resultRows(res)).End()
		}
		ev.registry.Observe(col.Since(mark), err)
	}()
	// Entry checkpoint: a statement under an already-dead context
	// fails here, before any clause runs — even one whose evaluation
	// would otherwise touch no loop (empty scans, pure definitions).
	if err := c.gov.Checkpoint(faultinject.SiteEvalStart); err != nil {
		return nil, err
	}
	out, err := c.evalStatement(newScope(nil), stmt)
	if err != nil {
		return nil, err
	}
	for _, g := range c.pendingViews {
		if err := ev.cat.RegisterGraph(g); err != nil {
			return nil, errf("registering view %s: %v", g.Name(), err)
		}
	}
	return out, nil
}

// resultRows is the statement span's output cardinality: result table
// rows, or the element count of the constructed graph.
func resultRows(res *Result) int64 {
	switch {
	case res == nil:
		return 0
	case res.Table != nil:
		return int64(res.Table.Len())
	case res.Graph != nil:
		return int64(res.Graph.NumNodes() + res.Graph.NumEdges() + res.Graph.NumPaths())
	}
	return 0
}

func (c *evalCtx) evalStatement(s *scope, stmt *ast.Statement) (*Result, error) {
	for _, pc := range stmt.Paths {
		if _, dup := s.paths[pc.Name]; dup {
			return nil, errf("duplicate PATH view %q", pc.Name)
		}
		s.paths[pc.Name] = pc
	}
	var lastGraph *ppg.Graph
	for _, gc := range stmt.Graphs {
		child := newScope(s)
		res, err := c.evalStatement(child, gc.Body)
		if err != nil {
			return nil, err
		}
		if res.Graph == nil {
			return nil, errf("GRAPH %s AS (...): body is not a graph query", gc.Name)
		}
		g := res.Graph
		g.SetName(gc.Name)
		if gc.View {
			// Stage the view: visible to the rest of this statement
			// through resolveGraphName, committed to the catalog only
			// when the whole statement succeeds.
			if g.Name() == "" {
				return nil, errf("registering view %s: view needs a name", gc.Name)
			}
			c.pendingViews = append(c.pendingViews, g)
		} else {
			s.graphs[gc.Name] = g
		}
		lastGraph = g
	}
	if stmt.Query == nil {
		if lastGraph == nil {
			lastGraph = ppg.New("")
		}
		return &Result{Graph: lastGraph}, nil
	}
	return c.evalQuery(s, stmt.Query, bindings.Unit())
}

// evalQuery evaluates a full graph query given the outer binding
// table (the Ω′ of §A.5; {µ∅} at the top level, the outer row for
// correlated EXISTS subqueries).
func (c *evalCtx) evalQuery(s *scope, q ast.Query, outer *bindings.Table) (*Result, error) {
	switch x := q.(type) {
	case *ast.SetQuery:
		left, err := c.evalQuery(s, x.Left, outer)
		if err != nil {
			return nil, err
		}
		right, err := c.evalQuery(s, x.Right, outer)
		if err != nil {
			return nil, err
		}
		if left.Graph == nil || right.Graph == nil {
			return nil, errf("set operations require graph operands (SELECT queries cannot be combined with %s)", x.Op)
		}
		var g *ppg.Graph
		switch x.Op {
		case ast.SetUnion:
			g = ppg.Union("", left.Graph, right.Graph)
		case ast.SetIntersect:
			g = ppg.Intersect("", left.Graph, right.Graph)
		case ast.SetMinus:
			g = ppg.Minus("", left.Graph, right.Graph)
		}
		return &Result{Graph: g}, nil
	case *ast.BasicQuery:
		return c.evalBasic(s, x, outer)
	}
	return nil, errf("unknown query node %T", q)
}

func (c *evalCtx) evalBasic(s *scope, bq *ast.BasicQuery, outer *bindings.Table) (*Result, error) {
	var (
		tbl    *bindings.Table
		graphs []*ppg.Graph
		err    error
	)
	switch {
	case bq.From != "":
		tbl, err = c.fromTable(bq.From)
		if err != nil {
			return nil, err
		}
		tbl = bindings.Join(tbl, outer)
	case bq.Match != nil:
		tbl, graphs, err = c.evalMatch(s, bq.Match, outer)
		if err != nil {
			return nil, err
		}
	default:
		tbl = outer
	}
	if bq.Select != nil {
		sp := c.col.Start(obs.OpSelect)
		if sp.Verbose() {
			sp.SetLabel(selectLabel(bq.Select))
		}
		t, err := c.evalSelect(s, bq.Select, tbl, graphs)
		if err != nil {
			sp.Fail()
			return nil, err
		}
		sp.Rows(int64(tbl.Len()), int64(t.Len())).End()
		return &Result{Table: t}, nil
	}
	sp := c.col.Start(obs.OpConstruct)
	if sp.Verbose() {
		sp.SetLabel(constructLabel)
	}
	g, err := c.evalConstruct(s, bq.Construct, tbl, graphs)
	if err != nil {
		sp.Fail()
		return nil, err
	}
	sp.Rows(int64(tbl.Len()), int64(g.NumNodes()+g.NumEdges()+g.NumPaths())).End()
	return &Result{Graph: g}, nil
}

// resolveLocation finds the graph a located pattern matches on.
func (c *evalCtx) resolveLocation(s *scope, lp *ast.LocatedPattern) (*ppg.Graph, error) {
	switch {
	case lp.OnQuery != nil:
		// The ON subquery's operators are recorded one level down so
		// plan annotation matches only top-level spans.
		c.col.EnterSub()
		res, err := c.evalQuery(s, lp.OnQuery, bindings.Unit())
		c.col.ExitSub()
		if err != nil {
			return nil, err
		}
		if res.Graph == nil {
			return nil, errf("ON (subquery) must yield a graph")
		}
		return res.Graph, nil
	case lp.OnGraph != "":
		return c.resolveGraphName(s, lp.OnGraph)
	default:
		g, err := c.defaultGraph()
		if err != nil {
			return nil, err
		}
		if g != nil {
			return g, nil
		}
		return nil, errf("no default graph: use ON or register a graph first")
	}
}

func (c *evalCtx) resolveGraphName(s *scope, name string) (*ppg.Graph, error) {
	if g, ok := s.lookupGraph(name); ok {
		return g, nil
	}
	// Views defined earlier in this statement but not yet committed
	// (latest definition wins, matching catalog overwrite semantics).
	for i := len(c.pendingViews) - 1; i >= 0; i-- {
		if c.pendingViews[i].Name() == name {
			return c.pendingViews[i], nil
		}
	}
	g, err := c.ev.cat.Resolve(name)
	if err != nil {
		return nil, errf("%v", err)
	}
	return g, nil
}

// fromTable imports a binding table for the FROM clause (§5).
func (c *evalCtx) fromTable(name string) (*bindings.Table, error) {
	rows, cols, err := c.ev.cat.BindingTable(name)
	if err != nil {
		return nil, errf("%v", err)
	}
	tbl := bindings.EmptyTable(cols...)
	for _, r := range rows {
		b := bindings.Binding{}
		for k, v := range r {
			b[k] = v
		}
		tbl.Add(b)
	}
	return tbl, nil
}
