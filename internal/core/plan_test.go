package core

import (
	"math"
	"strings"
	"testing"

	"gcore/internal/ast"
	"gcore/internal/catalog"
	"gcore/internal/parser"
	"gcore/internal/ppg"
	"gcore/internal/value"
)

// planGraph builds a small graph with deliberately skewed label
// cardinalities: four Person nodes chained by knows edges, one City
// every Person lives in.
func planGraph(t *testing.T) *ppg.Graph {
	t.Helper()
	g := ppg.New("plan_graph")
	addNode := func(id ppg.NodeID, labels ...string) {
		if err := g.AddNode(&ppg.Node{ID: id, Labels: ppg.NewLabels(labels...),
			Props: ppg.NewProperties(map[string]value.Value{"nr": value.Int(int64(id))})}); err != nil {
			t.Fatal(err)
		}
	}
	addNode(1, "Person")
	addNode(2, "Person")
	addNode(3, "Person")
	addNode(4, "Person", "Manager")
	addNode(5, "City")
	eid := ppg.EdgeID(100)
	addEdge := func(src, dst ppg.NodeID, label string) {
		eid++
		if err := g.AddEdge(&ppg.Edge{ID: eid, Src: src, Dst: dst, Labels: ppg.NewLabels(label)}); err != nil {
			t.Fatal(err)
		}
	}
	addEdge(1, 2, "knows")
	addEdge(2, 3, "knows")
	addEdge(3, 4, "knows")
	addEdge(4, 1, "knows")
	addEdge(1, 5, "isLocatedIn")
	addEdge(2, 5, "isLocatedIn")
	addEdge(3, 5, "isLocatedIn")
	addEdge(4, 5, "isLocatedIn")
	return g
}

func planEvaluator(t *testing.T) *Evaluator {
	t.Helper()
	cat := catalog.New()
	if err := cat.RegisterGraph(planGraph(t)); err != nil {
		t.Fatal(err)
	}
	if err := cat.SetDefault("plan_graph"); err != nil {
		t.Fatal(err)
	}
	return New(cat)
}

func nodePat(v string, labels ...string) *ast.NodePattern {
	np := &ast.NodePattern{Var: v}
	for _, l := range labels {
		np.Labels = append(np.Labels, []string{l})
	}
	return np
}

func TestEstimateNodeScan(t *testing.T) {
	g := planGraph(t)
	if got := estimateNodeScan(g, nodePat("p", "Person")); got != 4 {
		t.Errorf("Person estimate = %d, want 4", got)
	}
	if got := estimateNodeScan(g, nodePat("c", "City")); got != 1 {
		t.Errorf("City estimate = %d, want 1", got)
	}
	// Conjunctive labels take the most selective conjunct.
	if got := estimateNodeScan(g, nodePat("m", "Person", "Manager")); got != 1 {
		t.Errorf("Person∧Manager estimate = %d, want 1", got)
	}
	if got := estimateNodeScan(g, nodePat("x")); got != g.NumNodes() {
		t.Errorf("unlabelled estimate = %d, want %d", got, g.NumNodes())
	}
	if got := estimateNodeScan(nil, nodePat("x", "Person")); got != math.MaxInt {
		t.Errorf("nil graph estimate = %d, want MaxInt", got)
	}
}

func TestPlanChainReversal(t *testing.T) {
	g := planGraph(t)
	gp := &ast.GraphPattern{
		Nodes: []*ast.NodePattern{nodePat("p", "Person"), nodePat("c", "City")},
		Links: []ast.Link{&ast.EdgePattern{Var: "e", Dir: ast.DirOut, Labels: ast.LabelSpec{{"isLocatedIn"}}}},
	}
	pl := planChain(gp, g)
	if !pl.reversed || pl.estFwd != 4 || pl.estRev != 1 {
		t.Fatalf("plan = %+v, want reversed with estFwd=4 estRev=1", pl)
	}
	if pl.startEstimate() != 1 {
		t.Errorf("startEstimate = %d, want 1", pl.startEstimate())
	}
	// The reversed pattern starts at the City end with the edge
	// flipped; the original AST is untouched.
	if pl.runGp.Nodes[0].Var != "c" || pl.runGp.Nodes[1].Var != "p" {
		t.Errorf("reversed nodes = %s, %s", pl.runGp.Nodes[0].Var, pl.runGp.Nodes[1].Var)
	}
	if dir := pl.runGp.Links[0].(*ast.EdgePattern).Dir; dir != ast.DirIn {
		t.Errorf("reversed edge dir = %v, want DirIn", dir)
	}
	if gp.Links[0].(*ast.EdgePattern).Dir != ast.DirOut {
		t.Error("planChain mutated the shared AST")
	}

	// Forward start already cheapest: no reversal.
	fw := &ast.GraphPattern{
		Nodes: []*ast.NodePattern{nodePat("c", "City"), nodePat("p", "Person")},
		Links: []ast.Link{&ast.EdgePattern{Dir: ast.DirIn, Labels: ast.LabelSpec{{"isLocatedIn"}}}},
	}
	if pl := planChain(fw, g); pl.reversed {
		t.Error("chain already starting at the cheap end must not reverse")
	}

	// Path links pin the textual direction.
	withPath := &ast.GraphPattern{
		Nodes: []*ast.NodePattern{nodePat("p", "Person"), nodePat("c", "City")},
		Links: []ast.Link{&ast.PathPattern{Mode: ast.PathReach}},
	}
	if pl := planChain(withPath, g); pl.reversed || pl.estRev != math.MaxInt {
		t.Errorf("path chain plan = %+v, want unreversed", pl)
	}

	// The ablation knob forces the textual order.
	DisableReorder = true
	defer func() { DisableReorder = false }()
	if pl := planChain(gp, g); pl.reversed {
		t.Error("DisableReorder must pin the forward direction")
	}
}

func TestReverseNames(t *testing.T) {
	pn := patternNames{node: []string{"a", "b", "c"}, link: []string{"e1", "e2"}}
	rev := reverseNames(pn)
	if rev.node[0] != "c" || rev.node[2] != "a" || rev.link[0] != "e2" || rev.link[1] != "e1" {
		t.Errorf("reverseNames = %+v", rev)
	}
	// The input must stay intact (it is reused for the restore sort).
	if pn.node[0] != "a" || pn.link[0] != "e1" {
		t.Error("reverseNames mutated its input")
	}
}

func TestJoinOrder(t *testing.T) {
	ests := []int{50, 2, math.MaxInt, 2}
	got := joinOrder(ests)
	want := []int{1, 3, 0, 2} // ties keep textual order
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("joinOrder = %v, want %v", got, want)
		}
	}
	DisableReorder = true
	defer func() { DisableReorder = false }()
	got = joinOrder(ests)
	for i := range got {
		if got[i] != i {
			t.Fatalf("DisableReorder joinOrder = %v, want identity", got)
		}
	}
}

// TestPlannedEvalMatchesTextual: on the skewed graph the planner
// reverses chains and reorders conjunct joins; the produced tables
// must be identical — including row order — to the textual plan.
func TestPlannedEvalMatchesTextual(t *testing.T) {
	queries := []string{
		// Chain reversal (Person → City scans from the single City).
		`SELECT p.nr AS nr MATCH (p:Person)-[:isLocatedIn]->(c:City)`,
		// Reversal across two hops with an undirected edge.
		`SELECT p.nr AS a, q.nr AS b MATCH (p:Person)-[:knows]->(q:Person)-[:isLocatedIn]->(c:City)`,
		`SELECT p.nr AS a, q.nr AS b MATCH (p:Person)<-[:knows]-(q:Person)`,
		`SELECT p.nr AS a, q.nr AS b MATCH (p:Person)-[e]-(q)`,
		// Conjunct reordering: the City scan folds first.
		`SELECT p.nr AS a, c.nr AS b MATCH (p:Person), (c:City)`,
		`SELECT a.nr AS x MATCH (a:Person)-[:knows]->(b:Person), (c:City)<-[:isLocatedIn]-(b)`,
		// OPTIONAL block with its own multi-pattern fold.
		`SELECT p.nr AS a, c.nr AS b MATCH (p:Person) OPTIONAL (p)-[:isLocatedIn]->(c:City), (m:Manager)`,
	}
	for _, q := range queries {
		stmt, err := parser.Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		eval := func(disable bool) string {
			DisableReorder = disable
			defer func() { DisableReorder = false }()
			res, err := planEvaluator(t).EvalStatement(stmt)
			if err != nil {
				t.Fatalf("eval %q (disable=%v): %v", q, disable, err)
			}
			return res.Table.String()
		}
		want := eval(true)
		got := eval(false)
		if got != want {
			t.Errorf("planner changed results for %q\nplanned:\n%s\ntextual:\n%s", q, got, want)
		}
	}
}

// TestExplainSurfacesPlan: EXPLAIN prints the scan direction decision
// and the conjunct join order.
func TestExplainSurfacesPlan(t *testing.T) {
	ev := planEvaluator(t)
	explainQ := func(q string) string {
		stmt, err := parser.Parse(q)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		plan, err := ev.Explain(stmt)
		if err != nil {
			t.Fatalf("explain: %v", err)
		}
		return plan
	}
	plan := explainQ(`SELECT p.nr AS nr MATCH (p:Person)-[:isLocatedIn]->(c:City)`)
	if !strings.Contains(plan, "start: right end, reverse scan [est 1; forward 4]") {
		t.Errorf("reverse decision not surfaced:\n%s", plan)
	}
	// The chain is walked in the direction that will actually run.
	if !strings.Contains(plan, "node scan (c :City)") {
		t.Errorf("reversed chain not shown from its start:\n%s", plan)
	}
	plan = explainQ(`SELECT p.nr AS a, c.nr AS b MATCH (p:Person), (c:City)`)
	if !strings.Contains(plan, "join order: pattern 2 [est 1] ⋈ pattern 1 [est 4]") {
		t.Errorf("join order not surfaced:\n%s", plan)
	}
	plan = explainQ(`SELECT c.nr AS b MATCH (c:City)`)
	if !strings.Contains(plan, "start: left end, forward scan [est 1]") {
		t.Errorf("forward decision not surfaced:\n%s", plan)
	}
	// Patterns on run-time-only graphs carry no static estimate.
	plan = explainQ(`SELECT x.nr AS a, c.nr AS b
MATCH (c:City) OPTIONAL (x) ON (CONSTRUCT (m:Manager) MATCH (m:Manager))`)
	if strings.Contains(plan, "ON (subquery)\n    start:") {
		t.Errorf("subquery pattern must not print a static scan decision:\n%s", plan)
	}

	DisableReorder = true
	defer func() { DisableReorder = false }()
	plan = explainQ(`SELECT p.nr AS a, c.nr AS b MATCH (p:Person), (c:City)`)
	if !strings.Contains(plan, "join order: pattern 1 [est 4] ⋈ pattern 2 [est 1]") {
		t.Errorf("DisableReorder join order not textual:\n%s", plan)
	}
	plan = explainQ(`SELECT p.nr AS nr MATCH (p:Person)-[:isLocatedIn]->(c:City)`)
	if !strings.Contains(plan, "start: left end, forward scan [est 4]") {
		t.Errorf("DisableReorder must pin the forward scan:\n%s", plan)
	}
}
