package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"gcore/internal/ast"
	"gcore/internal/gov"
	"gcore/internal/obs"
	"gcore/internal/parser"
	"gcore/internal/plancache"
	"gcore/internal/ppg"
	"gcore/internal/rpq"
	"gcore/internal/value"
)

// Engine-level statement caching. The statement-scoped nfaCache of
// evalCtx dies with each evaluation; a CachedStatement outlives it,
// so repeated traffic of the same shape skips lex/parse/analyze, NFA
// compilation and the selectivity planner. The cache key (built in
// cacheKey) carries everything that legitimately changes the compiled
// form; per-entry chain plans additionally self-validate against the
// graph pointer and mutation generation they were computed for, so a
// stale plan is never served even for graphs reached via ON.

// DisablePlanCache is the ablation knob: when set, every evaluation
// compiles from source again, with parameters inlined textually as
// literals. Results are byte-identical either way (the differential
// tests enforce it).
var DisablePlanCache bool

// CachedStatement is one plan-cache entry: the parsed and analyzed
// statement plus the compiled artifacts accumulated by executions —
// path-expression NFAs and selectivity-planner decisions. The AST is
// immutable during evaluation, so one entry serves any number of
// executions (with different parameter bindings).
type CachedStatement struct {
	stmt *ast.Statement

	mu    sync.Mutex
	nfas  map[nfaKey]*rpq.NFA
	plans map[*ast.GraphPattern]cachedChainPlan
	conjs map[ast.Expr][]conjunctProto
}

// conjunctProto is the immutable skeleton of one WHERE conjunct: the
// AND-split and free-variable analysis are pure functions of the AST,
// so they are computed once per cached statement. Each evaluation
// clones fresh *conjunct values around the shared skeleton (the
// applied/columnar fields are per-execution state).
type conjunctProto struct {
	expr     ast.Expr
	vars     []string
	pushable bool
}

// cachedChainPlan remembers which graph state a chain plan was
// computed for: reuse requires the same graph object at the same
// mutation generation. Patterns over graphs materialised at run time
// (ON subqueries) simply miss here and re-plan.
type cachedChainPlan struct {
	plan chainPlan
	g    *ppg.Graph
	gen  uint64
}

func newCachedStatement(stmt *ast.Statement) *CachedStatement {
	return &CachedStatement{
		stmt:  stmt,
		nfas:  map[nfaKey]*rpq.NFA{},
		plans: map[*ast.GraphPattern]cachedChainPlan{},
		conjs: map[ast.Expr][]conjunctProto{},
	}
}

// Statement returns the cached parse tree.
func (cs *CachedStatement) Statement() *ast.Statement { return cs.stmt }

func (cs *CachedStatement) nfa(k nfaKey) (*rpq.NFA, bool) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	n, ok := cs.nfas[k]
	return n, ok
}

func (cs *CachedStatement) storeNFA(k nfaKey, n *rpq.NFA) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.nfas[k] = n
}

func (cs *CachedStatement) conjuncts(e ast.Expr) ([]conjunctProto, bool) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	ps, ok := cs.conjs[e]
	return ps, ok
}

func (cs *CachedStatement) storeConjuncts(e ast.Expr, ps []conjunctProto) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.conjs[e] = ps
}

func (cs *CachedStatement) chainPlanFor(gp *ast.GraphPattern, g *ppg.Graph) (chainPlan, bool) {
	if g == nil {
		return chainPlan{}, false
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cp, ok := cs.plans[gp]
	if !ok || cp.g != g || cp.gen != g.Generation() {
		return chainPlan{}, false
	}
	return cp.plan, true
}

func (cs *CachedStatement) storeChainPlan(gp *ast.GraphPattern, g *ppg.Graph, pl chainPlan) {
	if g == nil {
		return
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.plans[gp] = cachedChainPlan{plan: pl, g: g, gen: g.Generation()}
}

// ExecOpts carries per-execution overrides — the session surface: a
// session's default graph and resource limits apply to one execution
// without touching the engine-wide configuration (see gcore.Session).
// The zero value means "engine defaults".
type ExecOpts struct {
	// DefaultGraph overrides the catalog default used by MATCH
	// without ON ("" = catalog default). Resolved like ON <name>, so
	// tables-as-graphs work. It participates in the plan-cache key.
	DefaultGraph string
	// Limits overrides the evaluator's per-statement resource limits
	// for this execution (nil = evaluator limits).
	Limits *gov.Limits
}

// Exec is one compiled execution: the statement, its parameter
// bindings, the per-execution overrides and the plan-cache probe
// outcome (for the EXPLAIN ANALYZE footer and the metrics counters).
// PrepareExec builds Exec values; EvalExec and ExplainAnalyzeExec
// consume them. The split lets the engine classify the compiled
// statement (Exec.ReadOnly) before deciding which lock to evaluate
// under.
type Exec struct {
	stmt    *ast.Statement
	cached  *CachedStatement // nil on the uncached fallback path
	params  map[string]value.Value
	opts    ExecOpts
	probe   bool // a plan-cache probe happened
	hit     bool
	compile time.Duration
}

// Statement returns the compiled statement.
func (ex Exec) Statement() *ast.Statement { return ex.stmt }

// ReadOnly reports whether this execution is classified read-only
// (see the package-level ReadOnly).
func (ex Exec) ReadOnly() bool { return ReadOnly(ex.stmt) }

// SetPlanCacheCapacity resizes the evaluator's plan cache: n > 0
// bounds it to n entries, n == 0 restores the default capacity, and
// n < 0 disables caching entirely. The existing entries are dropped.
func (ev *Evaluator) SetPlanCacheCapacity(n int) {
	if n < 0 {
		ev.planCache = nil
		return
	}
	ev.planCache = plancache.New(n)
}

// PlanCacheStats returns hit/miss/eviction counters and occupancy of
// the plan cache (zero Stats when caching is disabled).
func (ev *Evaluator) PlanCacheStats() plancache.Stats {
	if ev.planCache == nil {
		return plancache.Stats{}
	}
	return ev.planCache.Stats()
}

// MetricsSnapshot is the registry snapshot with the plan cache's
// lifetime counters merged in. The cache outlives statements, so its
// numbers come from its own counters rather than per-statement
// Observe folds — occupancy and evictions would otherwise be wrong.
func (ev *Evaluator) MetricsSnapshot() obs.Metrics {
	m := ev.registry.Snapshot()
	if ev.planCache != nil {
		st := ev.planCache.Stats()
		m.PlanCacheHits = st.Hits
		m.PlanCacheMisses = st.Misses
		m.PlanCacheEvictions = st.Evictions
		m.PlanCacheEntries = int64(st.Entries)
		m.PlanCacheCompileNS = int64(st.CompileTime)
	}
	return m
}

// PlanCacheEntries lists the live cache entries, most recent first.
func (ev *Evaluator) PlanCacheEntries() []plancache.EntryInfo {
	if ev.planCache == nil {
		return nil
	}
	return ev.planCache.Entries()
}

// cacheKey builds the plan-cache key for normalised statement text:
// the catalog version covers registrations, the default graph's
// generation covers mutations of the implicit target (the session
// override when one is set), the limits fingerprint and worker count
// cover execution configuration, and the ablation knobs are folded in
// so flipping one never reuses a plan compiled under another regime.
func (ev *Evaluator) cacheKey(text string, opts ExecOpts) plancache.Key {
	var g *ppg.Graph
	if opts.DefaultGraph != "" {
		g, _ = ev.cat.Graph(opts.DefaultGraph)
	} else {
		g = ev.cat.Default()
	}
	var gen uint64
	if g != nil {
		gen = g.Generation()
	}
	limits := ev.limits
	if opts.Limits != nil {
		limits = *opts.Limits
	}
	return plancache.Key{
		Text:           text,
		CatalogVersion: ev.cat.Version(),
		Generation:     gen,
		Default:        opts.DefaultGraph,
		LimitsFP:       ev.limitsFingerprint(limits),
		Workers:        ev.workers,
	}
}

// limitsFP memoizes the rendered limits-and-knobs fingerprint: limits
// and ablation knobs change rarely, while cacheKey runs on every
// statement, so the string is rebuilt only when an input moves. The
// memo is guarded by memoMu: concurrent read-only statements share
// the evaluator under the engine's read lock.
type limitsFP struct {
	limits                          gov.Limits
	reorder, csr, propCols, incSnap bool
	havePlanFP                      bool
	fp                              string
}

func renderLimitsFP(l gov.Limits) string {
	return fmt.Sprintf("%d|%d|%d|%d|%t%t%t%t",
		l.MaxBindings, l.MaxPathFrontier,
		l.MaxResultElements, int64(l.Timeout),
		DisableReorder, DisableCSR, DisablePropColumns, DisableIncrementalSnapshot)
}

func (ev *Evaluator) limitsFingerprint(l gov.Limits) string {
	ev.memoMu.Lock()
	defer ev.memoMu.Unlock()
	m := &ev.limitsFP
	if !m.havePlanFP || m.limits != l ||
		m.reorder != DisableReorder || m.csr != DisableCSR ||
		m.propCols != DisablePropColumns || m.incSnap != DisableIncrementalSnapshot {
		m.limits, m.reorder, m.csr, m.propCols, m.incSnap =
			l, DisableReorder, DisableCSR, DisablePropColumns, DisableIncrementalSnapshot
		m.havePlanFP = true
		m.fp = renderLimitsFP(l)
	}
	return m.fp
}

// normalize canonicalises src for cache keying, remembering the last
// mapping so repeated traffic of one statement skips re-normalisation.
func (ev *Evaluator) normalize(src string) string {
	ev.memoMu.Lock()
	defer ev.memoMu.Unlock()
	if ev.normMemo.src != src {
		ev.normMemo.src, ev.normMemo.text = src, plancache.Normalize(src)
	}
	return ev.normMemo.text
}

// PrepareExec compiles src for one execution. With caching enabled it
// probes the plan cache (singleflight on miss); otherwise it inlines
// any parameters textually and parses fresh — the uncached fallback.
// It never evaluates and never mutates shared state beyond the plan
// cache (which is internally synchronised), so it is safe under the
// engine's read lock.
func (ev *Evaluator) PrepareExec(src string, params map[string]value.Value, opts ExecOpts) (Exec, error) {
	if ev.planCache == nil || DisablePlanCache {
		text := src
		if len(params) > 0 {
			var err error
			text, err = parser.InlineParams(src, params)
			if err != nil {
				return Exec{}, errf("%v", err)
			}
		}
		stmt, err := parser.Parse(text)
		if err != nil {
			return Exec{}, err
		}
		return Exec{stmt: stmt, params: params, opts: opts}, nil
	}
	key := ev.cacheKey(ev.normalize(src), opts)
	v, d, hit, err := ev.planCache.GetOrCompile(key, func() (any, error) {
		stmt, err := parser.Parse(src)
		if err != nil {
			return nil, err
		}
		if err := analyzeStatement(stmt); err != nil {
			return nil, err
		}
		return newCachedStatement(stmt), nil
	})
	if err != nil {
		return Exec{}, err
	}
	cs := v.(*CachedStatement)
	return Exec{stmt: cs.stmt, cached: cs, params: params, opts: opts, probe: true, hit: hit, compile: d}, nil
}

// CheckSrc compiles src without evaluating it: parse and semantic
// analysis, through the plan cache when enabled (so a subsequent Eval
// of the same text hits). Parameters may remain unbound.
func (ev *Evaluator) CheckSrc(src string, opts ExecOpts) error {
	if ev.planCache == nil || DisablePlanCache {
		stmt, err := parser.Parse(src)
		if err != nil {
			return err
		}
		return analyzeStatement(stmt)
	}
	_, err := ev.PrepareExec(src, nil, opts)
	return err
}

// EvalSrc evaluates one statement from source through the plan cache.
func (ev *Evaluator) EvalSrc(src string, params map[string]value.Value) (*Result, error) {
	return ev.EvalSrcContext(context.Background(), src, params)
}

// EvalSrcContext is the source-level evaluation entry point: repeated
// statements hit the plan cache and skip lex/parse/analyze, NFA
// compilation and chain planning. params supplies $name bindings
// (nil for statements without parameters); an execution that reaches
// an unbound parameter fails.
func (ev *Evaluator) EvalSrcContext(ctx context.Context, src string, params map[string]value.Value) (*Result, error) {
	ex, err := ev.PrepareExec(src, params, ExecOpts{})
	if err != nil {
		return nil, err
	}
	return ev.EvalExec(ctx, ex)
}

// ExplainAnalyzeSrcContext is ExplainAnalyzeContext from source text,
// consulting the plan cache so the rendered footer reports the probe.
func (ev *Evaluator) ExplainAnalyzeSrcContext(ctx context.Context, src string, params map[string]value.Value) (string, error) {
	ex, err := ev.PrepareExec(src, params, ExecOpts{})
	if err != nil {
		return "", err
	}
	return ev.ExplainAnalyzeExec(ctx, ex)
}
