package core

import (
	"fmt"
	"math"
	"sort"

	"gcore/internal/ast"
	"gcore/internal/bindings"
	"gcore/internal/ppg"
	"gcore/internal/value"
)

// Selectivity-driven MATCH planning. Two decisions are made from the
// label-index cardinalities of the target graph, both semantically
// invisible (the binding table is restored to the exact row order the
// textual plan would produce, because row order feeds CONSTRUCT's
// fresh-identity assignment and the deterministic output order):
//
//  1. Chain direction — a pattern chain of edge patterns can be
//     evaluated from either end; the evaluator starts at the end
//     whose node pattern has the smaller label-index estimate and
//     walks the chain with edge directions flipped, then sorts the
//     rows back into forward emission order.
//  2. Conjunct join order — the comma-separated patterns of one MATCH
//     are each evaluated (in textual order, which keeps anonymous
//     variable numbering stable), but folded into the joined table
//     smallest-estimate-first; hidden per-pattern row ordinals
//     restore the textual fold order afterwards.
//
// EXPLAIN surfaces both decisions (scan start/direction per chain,
// fold order per MATCH) through the same planChain/joinOrder calls.

// DisableReorder forces the textual evaluation order: chains start at
// their leftmost node and conjunct patterns fold left to right.
// Results are identical either way (the differential tests enforce
// it); the knob exists for debugging and ablation benchmarks.
var DisableReorder bool

// estimateNodeScan is the planner's cardinality estimate for scanning
// one node pattern: the most selective label conjunct's index bucket
// size (mirroring indexedNodeCandidates), or the node count when the
// pattern is unlabelled.
func estimateNodeScan(g *ppg.Graph, np *ast.NodePattern) int {
	if g == nil {
		return math.MaxInt
	}
	if len(np.Labels) == 0 {
		return g.NumNodes()
	}
	best := math.MaxInt
	for _, disj := range np.Labels {
		size := 0
		for _, l := range disj {
			size += g.NumNodesWithLabel(l)
		}
		if size < best {
			best = size
		}
	}
	return best
}

// chainPlan is the planner's decision for one pattern chain.
type chainPlan struct {
	reversed bool
	estFwd   int
	estRev   int               // math.MaxInt when the chain cannot be reversed
	runGp    *ast.GraphPattern // the pattern to evaluate (reversed copy when reversed)
}

// startEstimate is the estimate of the scan that will actually run.
func (pl chainPlan) startEstimate() int {
	if pl.reversed {
		return pl.estRev
	}
	return pl.estFwd
}

// planChain decides the scan start of a chain. Only chains made
// entirely of edge patterns are reversible: path patterns carry
// orientation-dependent search semantics (cost, shortest-k) that the
// emission-order restore does not model.
func planChain(gp *ast.GraphPattern, g *ppg.Graph) chainPlan {
	pl := chainPlan{estFwd: estimateNodeScan(g, gp.Nodes[0]), estRev: math.MaxInt, runGp: gp}
	if DisableReorder || g == nil || len(gp.Links) == 0 {
		return pl
	}
	for _, link := range gp.Links {
		if _, ok := link.(*ast.EdgePattern); !ok {
			return pl
		}
	}
	pl.estRev = estimateNodeScan(g, gp.Nodes[len(gp.Nodes)-1])
	if pl.estRev < pl.estFwd {
		pl.reversed = true
		pl.runGp = reverseChain(gp)
	}
	return pl
}

// reverseChain builds the mirrored pattern: nodes and links in
// reverse order, each edge's direction flipped (DirBoth stays). The
// shared AST is never mutated — edge patterns are shallow-copied.
func reverseChain(gp *ast.GraphPattern) *ast.GraphPattern {
	rev := &ast.GraphPattern{P: gp.P}
	rev.Nodes = make([]*ast.NodePattern, len(gp.Nodes))
	for i, np := range gp.Nodes {
		rev.Nodes[len(gp.Nodes)-1-i] = np
	}
	rev.Links = make([]ast.Link, len(gp.Links))
	for i, link := range gp.Links {
		ep := link.(*ast.EdgePattern)
		cp := *ep
		switch ep.Dir {
		case ast.DirOut:
			cp.Dir = ast.DirIn
		case ast.DirIn:
			cp.Dir = ast.DirOut
		}
		rev.Links[len(gp.Links)-1-i] = &cp
	}
	return rev
}

// reverseNames mirrors a patternNames assignment. Names are assigned
// on the textual pattern first (keeping anonymous numbering identical
// to the unplanned evaluation) and reversed alongside the chain.
func reverseNames(pn patternNames) patternNames {
	out := patternNames{node: make([]string, len(pn.node)), link: make([]string, len(pn.link))}
	for i, v := range pn.node {
		out.node[len(pn.node)-1-i] = v
	}
	for i, v := range pn.link {
		out.link[len(pn.link)-1-i] = v
	}
	return out
}

// restoreForwardOrder sorts the rows of a reverse-evaluated chain
// into the order the forward evaluation would have emitted them.
// Forward evaluation is a depth-first expansion over ascending
// iterators, so its emission order is the lexicographic order of,
// per row: the first node's reference, its bind-value positions, and
// per link (in forward order) the traversal pass (out before in, for
// undirected edges), the edge reference, and the bind-value positions
// of the edge and the right node. Bind values are keyed by their
// index in the property's value-set iteration order, which is exactly
// the branching order of appendCombos.
func (c *evalCtx) restoreForwardOrder(tbl *bindings.Table, gp *ast.GraphPattern, names patternNames, g *ppg.Graph) *bindings.Table {
	if tbl.Len() <= 1 {
		return tbl
	}
	nodeSlots := make([]int, len(gp.Nodes))
	for i, v := range names.node {
		nodeSlots[i] = tbl.SlotOf(v)
	}
	linkSlots := make([]int, len(gp.Links))
	for i, v := range names.link {
		linkSlots[i] = tbl.SlotOf(v)
	}
	bindSlots := func(specs []*ast.PropSpec) ([]int, []*ast.PropSpec) {
		var slots []int
		var binds []*ast.PropSpec
		for _, ps := range specs {
			if ps.Mode == ast.PropBind {
				slots = append(slots, tbl.SlotOf(ps.Var))
				binds = append(binds, ps)
			}
		}
		return slots, binds
	}
	type elemBinds struct {
		slots []int
		specs []*ast.PropSpec
	}
	nodeBinds := make([]elemBinds, len(gp.Nodes))
	for i, np := range gp.Nodes {
		nodeBinds[i].slots, nodeBinds[i].specs = bindSlots(np.Props)
	}
	edgeBinds := make([]elemBinds, len(gp.Links))
	for i, link := range gp.Links {
		ep := link.(*ast.EdgePattern)
		edgeBinds[i].slots, edgeBinds[i].specs = bindSlots(ep.Props)
	}

	valIndex := func(props ppg.Properties, key string, v value.Value) int {
		for i, el := range props.Get(key).Elems() {
			if value.Equal(el, v) {
				return i
			}
		}
		return -1
	}
	appendBinds := func(key []value.Value, row []value.Value, eb elemBinds, props ppg.Properties) []value.Value {
		for i, ps := range eb.specs {
			key = append(key, value.Int(int64(valIndex(props, ps.Key, row[eb.slots[i]]))))
		}
		return key
	}

	keys := make([][]value.Value, tbl.Len())
	for ri := 0; ri < tbl.Len(); ri++ {
		row := tbl.RowAt(ri)
		var key []value.Value
		curID, _ := nodeOf(row[nodeSlots[0]])
		key = append(key, row[nodeSlots[0]])
		if n, ok := g.Node(curID); ok {
			key = appendBinds(key, row, nodeBinds[0], n.Props)
		}
		for i := range gp.Links {
			ev := row[linkSlots[i]]
			eid, _ := ev.RefID()
			e, okE := g.Edge(ppg.EdgeID(eid))
			ep := gp.Links[i].(*ast.EdgePattern)
			if ep.Dir == ast.DirBoth && okE {
				pass := int64(1)
				if e.Src == curID {
					pass = 0 // out pass (self-loops emit there too)
				}
				key = append(key, value.Int(pass))
			}
			key = append(key, ev)
			if okE {
				key = appendBinds(key, row, edgeBinds[i], e.Props)
			}
			nextID, _ := nodeOf(row[nodeSlots[i+1]])
			if n, ok := g.Node(nextID); ok {
				key = appendBinds(key, row, nodeBinds[i+1], n.Props)
			}
			curID = nextID
		}
		keys[ri] = key
	}
	perm := make([]int, tbl.Len())
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool {
		ka, kb := keys[perm[a]], keys[perm[b]]
		for i := 0; i < len(ka) && i < len(kb); i++ {
			if cmp := value.Compare(ka[i], kb[i]); cmp != 0 {
				return cmp < 0
			}
		}
		return len(ka) < len(kb)
	})
	return tbl.Pick(perm)
}

// foldConjuncts joins the conjunct-pattern tables of one MATCH in
// estimate order (joinOrder), restoring the textual fold's row order.
// Chain tables bind every schema variable in every row, so the
// textual fold's output order is exactly the lexicographic order of
// the constituent row ordinals — tag each table with a hidden ordinal
// column, fold cheapest-first under the join budget, stable-sort by
// the ordinals in textual order, and drop them.
func (c *evalCtx) foldConjuncts(tables []*bindings.Table, ests []int) (*bindings.Table, error) {
	switch len(tables) {
	case 0:
		return bindings.Unit(), nil
	case 1:
		return tables[0], nil
	}
	order := joinOrder(ests)
	if orderIsTextual(order) {
		tbl := tables[0]
		var err error
		for _, t := range tables[1:] {
			if tbl, err = c.joinBudget(tbl, t); err != nil {
				return nil, err
			}
		}
		return tbl, nil
	}
	ordVars := make([]string, len(tables))
	for i := range tables {
		ordVars[i] = fmt.Sprintf("@jo%d", i)
	}
	tbl := tables[order[0]].WithOrdinal(ordVars[order[0]])
	var err error
	for _, i := range order[1:] {
		if tbl, err = c.joinBudget(tbl, tables[i].WithOrdinal(ordVars[i])); err != nil {
			return nil, err
		}
	}
	return tbl.SortStableByVars(ordVars).DropVars(ordVars...), nil
}

// joinOrder returns the fold order for the conjunct-pattern tables of
// one MATCH: indices sorted by estimate ascending, ties (and every
// estimate, under DisableReorder) in textual order.
func joinOrder(ests []int) []int {
	order := make([]int, len(ests))
	for i := range order {
		order[i] = i
	}
	if DisableReorder {
		return order
	}
	sort.SliceStable(order, func(a, b int) bool { return ests[order[a]] < ests[order[b]] })
	return order
}

func orderIsTextual(order []int) bool {
	for i, o := range order {
		if o != i {
			return false
		}
	}
	return true
}
