package core

import (
	"gcore/internal/ast"
)

// Static analysis of a statement before evaluation. It enforces the
// paper's well-formedness rules:
//
//   - every variable has one sort (node, edge, path or value) across
//     MATCH and CONSTRUCT — "when using bound variables in a
//     CONSTRUCT, they must be of the right sort" (§3);
//   - a path variable bound with ALL may only be used to project a
//     graph (an unstored construct path), never elsewhere — returning
//     or inspecting all paths would be intractable (§3);
//   - variables shared between different OPTIONAL blocks must appear
//     in the enclosing pattern, making block order irrelevant (§3,
//     citing [31]);
//   - copy forms (=x) and GROUP appear only in CONSTRUCT patterns.

type varSort uint8

const (
	sortUnknown varSort = iota
	sortNode
	sortEdge
	sortPath
	sortValue
)

func (v varSort) String() string {
	switch v {
	case sortNode:
		return "node"
	case sortEdge:
		return "edge"
	case sortPath:
		return "path"
	case sortValue:
		return "value"
	}
	return "unknown"
}

type analysis struct {
	sorts   map[string]varSort
	allVars map[string]bool // path variables bound with ALL
}

func analyzeStatement(stmt *ast.Statement) error {
	for _, gc := range stmt.Graphs {
		if err := analyzeStatement(gc.Body); err != nil {
			return err
		}
	}
	for _, pc := range stmt.Paths {
		a := &analysis{sorts: map[string]varSort{}, allVars: map[string]bool{}}
		for _, gp := range pc.Patterns {
			if err := a.collectPattern(gp, false); err != nil {
				return err
			}
		}
		if len(pc.Patterns) == 0 || len(pc.Patterns[0].Nodes) < 2 {
			return errf("PATH %s: the first pattern must contain a path segment (at least two nodes)", pc.Name)
		}
	}
	if stmt.Query != nil {
		return analyzeQuery(stmt.Query)
	}
	return nil
}

func analyzeQuery(q ast.Query) error {
	switch x := q.(type) {
	case *ast.SetQuery:
		if err := analyzeQuery(x.Left); err != nil {
			return err
		}
		return analyzeQuery(x.Right)
	case *ast.BasicQuery:
		return analyzeBasic(x)
	}
	return nil
}

func analyzeBasic(bq *ast.BasicQuery) error {
	a := &analysis{sorts: map[string]varSort{}, allVars: map[string]bool{}}
	if bq.Match != nil {
		mainVars := map[string]bool{}
		for _, lp := range bq.Match.Patterns {
			if err := a.collectPattern(lp.Pattern, false); err != nil {
				return err
			}
			collectVars(lp.Pattern, mainVars)
			if lp.OnQuery != nil {
				if err := analyzeQuery(lp.OnQuery); err != nil {
					return err
				}
			}
		}
		// The OPTIONAL shared-variable restriction.
		seenInBlock := map[string]int{}
		for bi, ob := range bq.Match.Optionals {
			blockVars := map[string]bool{}
			for _, lp := range ob.Patterns {
				if err := a.collectPattern(lp.Pattern, false); err != nil {
					return err
				}
				collectVars(lp.Pattern, blockVars)
			}
			for v := range blockVars {
				if mainVars[v] {
					continue
				}
				if prev, ok := seenInBlock[v]; ok && prev != bi {
					return errf("variable %q is shared by OPTIONAL blocks but missing from the enclosing pattern; this would make the result depend on block order", v)
				}
				seenInBlock[v] = bi
			}
			if ob.Where != nil {
				if err := a.checkExpr(ob.Where, false); err != nil {
					return err
				}
			}
		}
		if bq.Match.Where != nil {
			if err := a.checkExpr(bq.Match.Where, false); err != nil {
				return err
			}
		}
	}
	if bq.Construct != nil {
		for _, item := range bq.Construct.Items {
			if item.Pattern == nil {
				continue
			}
			if err := a.collectConstructPattern(item.Pattern); err != nil {
				return err
			}
			for _, si := range item.Sets {
				if si.Expr != nil {
					if err := a.checkExpr(si.Expr, true); err != nil {
						return err
					}
				}
			}
			if item.When != nil {
				if err := a.checkExpr(item.When, true); err != nil {
					return err
				}
			}
			for _, ps := range allProps(item.Pattern) {
				if ps.Expr != nil {
					if err := a.checkExpr(ps.Expr, true); err != nil {
						return err
					}
				}
			}
		}
	}
	if bq.Select != nil {
		// Aggregates are allowed in the select list (the §5 extension
		// explicitly mentions aggregation); rows then group by the
		// non-aggregate items.
		for _, it := range bq.Select.Items {
			if err := a.checkExpr(it.Expr, true); err != nil {
				return err
			}
		}
		for _, oi := range bq.Select.OrderBy {
			if err := a.checkExpr(oi.Expr, false); err != nil {
				return err
			}
		}
	}
	return nil
}

func allProps(gp *ast.GraphPattern) []*ast.PropSpec {
	var out []*ast.PropSpec
	for _, n := range gp.Nodes {
		out = append(out, n.Props...)
	}
	for _, l := range gp.Links {
		switch x := l.(type) {
		case *ast.EdgePattern:
			out = append(out, x.Props...)
		case *ast.PathPattern:
			out = append(out, x.Props...)
		}
	}
	return out
}

func collectVars(gp *ast.GraphPattern, into map[string]bool) {
	for _, n := range gp.Nodes {
		if n.Var != "" {
			into[n.Var] = true
		}
		for _, ps := range n.Props {
			if ps.Mode == ast.PropBind {
				into[ps.Var] = true
			}
		}
	}
	for _, l := range gp.Links {
		switch x := l.(type) {
		case *ast.EdgePattern:
			if x.Var != "" {
				into[x.Var] = true
			}
			for _, ps := range x.Props {
				if ps.Mode == ast.PropBind {
					into[ps.Var] = true
				}
			}
		case *ast.PathPattern:
			if x.Var != "" {
				into[x.Var] = true
			}
			if x.CostVar != "" {
				into[x.CostVar] = true
			}
		}
	}
}

func (a *analysis) assign(name string, s varSort) error {
	if name == "" {
		return nil
	}
	if prev, ok := a.sorts[name]; ok && prev != s {
		return errf("variable %q used both as %s and as %s", name, prev, s)
	}
	a.sorts[name] = s
	return nil
}

// collectPattern records variable sorts of a MATCH pattern and
// rejects construct-only syntax.
func (a *analysis) collectPattern(gp *ast.GraphPattern, construct bool) error {
	for _, n := range gp.Nodes {
		if !construct && (n.Copy || len(n.Group) > 0) {
			return errf("the copy form (=%s) and GROUP are only allowed in CONSTRUCT patterns", n.Var)
		}
		if err := a.assign(n.Var, sortNode); err != nil {
			return err
		}
		for _, ps := range n.Props {
			if ps.Mode == ast.PropBind {
				if err := a.assign(ps.Var, sortValue); err != nil {
					return err
				}
			}
			if !construct && ps.Mode == ast.PropAssign {
				return errf("property assignment := is only allowed in CONSTRUCT patterns")
			}
		}
	}
	for _, l := range gp.Links {
		switch x := l.(type) {
		case *ast.EdgePattern:
			if !construct && (x.Copy || len(x.Group) > 0) {
				return errf("the copy form [=%s] and GROUP are only allowed in CONSTRUCT patterns", x.Var)
			}
			if err := a.assign(x.Var, sortEdge); err != nil {
				return err
			}
			for _, ps := range x.Props {
				if ps.Mode == ast.PropBind {
					if err := a.assign(ps.Var, sortValue); err != nil {
						return err
					}
				}
				if !construct && ps.Mode == ast.PropAssign {
					return errf("property assignment := is only allowed in CONSTRUCT patterns")
				}
			}
		case *ast.PathPattern:
			if err := a.assign(x.Var, sortPath); err != nil {
				return err
			}
			if err := a.assign(x.CostVar, sortValue); err != nil {
				return err
			}
			if !construct && x.Mode == ast.PathAll && x.Var != "" {
				a.allVars[x.Var] = true
			}
		}
	}
	return nil
}

// collectConstructPattern checks sorts in CONSTRUCT position and the
// ALL-variable restriction. Copy forms ((=v) / [=v]) do not constrain
// the source variable's sort: the paper allows copying labels and
// properties across sorts ("copy all labels and properties of a node
// to an edge (or a path) and vice versa", §3).
func (a *analysis) collectConstructPattern(gp *ast.GraphPattern) error {
	for _, n := range gp.Nodes {
		if n.Copy {
			continue
		}
		if err := a.assign(n.Var, sortNode); err != nil {
			return err
		}
	}
	for _, l := range gp.Links {
		switch x := l.(type) {
		case *ast.EdgePattern:
			if x.Copy {
				continue
			}
			if err := a.assign(x.Var, sortEdge); err != nil {
				return err
			}
		case *ast.PathPattern:
			if err := a.assign(x.Var, sortPath); err != nil {
				return err
			}
			if x.Stored && a.allVars[x.Var] {
				return errf("path variable %q was bound with ALL and may only be used for graph projection, not stored", x.Var)
			}
		}
	}
	return nil
}

// checkExpr walks an expression, validating aggregate placement, the
// ALL-variable restriction, and nested subqueries.
func (a *analysis) checkExpr(e ast.Expr, aggOK bool) error {
	switch x := e.(type) {
	case nil:
		return nil
	case *ast.Literal:
		return nil
	case *ast.Param:
		// Bindings are supplied per execution; nothing to check here.
		return nil
	case *ast.VarRef:
		if a.allVars[x.Name] {
			return errf("path variable %q was bound with ALL and may only be used for graph projection", x.Name)
		}
		return nil
	case *ast.PropAccess:
		if a.allVars[x.Var] {
			return errf("path variable %q was bound with ALL and may only be used for graph projection", x.Var)
		}
		return nil
	case *ast.LabelTest:
		if a.allVars[x.Var] {
			return errf("path variable %q was bound with ALL and may only be used for graph projection", x.Var)
		}
		return nil
	case *ast.Unary:
		return a.checkExpr(x.X, aggOK)
	case *ast.Binary:
		if err := a.checkExpr(x.L, aggOK); err != nil {
			return err
		}
		return a.checkExpr(x.R, aggOK)
	case *ast.FuncCall:
		if _, isAgg := aggName(x.Name); isAgg && !x.Star {
			if !aggOK {
				return errf("aggregation %s(...) is only allowed in CONSTRUCT property assignments, SET and WHEN", x.Name)
			}
		}
		if x.Star && !aggOK {
			return errf("COUNT(*) is only allowed in CONSTRUCT property assignments, SET and WHEN")
		}
		for _, arg := range x.Args {
			// Aggregate arguments are evaluated per group row.
			if err := a.checkExpr(arg, false); err != nil {
				return err
			}
		}
		return nil
	case *ast.Index:
		if err := a.checkExpr(x.Base, aggOK); err != nil {
			return err
		}
		return a.checkExpr(x.Idx, aggOK)
	case *ast.Case:
		if err := a.checkExpr(x.Operand, aggOK); err != nil {
			return err
		}
		for _, w := range x.Whens {
			if err := a.checkExpr(w.Cond, aggOK); err != nil {
				return err
			}
			if err := a.checkExpr(w.Then, aggOK); err != nil {
				return err
			}
		}
		return a.checkExpr(x.Else, aggOK)
	case *ast.Exists:
		return analyzeQuery(x.Query)
	case *ast.PatternPred:
		sub := &analysis{sorts: a.sorts, allVars: a.allVars}
		return sub.collectPattern(x.Pattern, false)
	}
	return nil
}
