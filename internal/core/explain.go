package core

import (
	"context"
	"fmt"
	"math"
	"strings"

	"gcore/internal/ast"
	"gcore/internal/faultinject"
	"gcore/internal/gov"
	"gcore/internal/obs"
	"gcore/internal/ppg"
)

// Explain renders the evaluation plan of a statement: head clauses,
// the join tree of each MATCH with the points where WHERE conjuncts
// are applied (predicate pushdown), the scan direction and join order
// chosen by the selectivity planner, the path-search strategies, the
// OPTIONAL left-joins, and the CONSTRUCT phases. The plan is purely
// static — nothing is evaluated — and mirrors exactly what the
// evaluator will do, because both share the conjunct analysis and the
// planChain/joinOrder calls. The one divergence: patterns matched
// against query-local graphs (GRAPH clauses, ON subqueries) have no
// catalog graph to estimate from at plan time, so their estimates
// print as "?" here while the runtime plans against the materialised
// graph.
func (ev *Evaluator) Explain(stmt *ast.Statement) (string, error) {
	return ev.ExplainContext(context.Background(), stmt)
}

// ExplainContext is Explain under the caller's context and the
// evaluator's Limits: an EXPLAIN issued against a dead context fails
// with the same KindCanceled/KindTimeout errors evaluation would,
// keeping the governance surface uniform across entry points.
func (ev *Evaluator) ExplainContext(ctx context.Context, stmt *ast.Statement) (string, error) {
	return ev.ExplainOptsContext(ctx, stmt, ExecOpts{})
}

// ExplainOptsContext is ExplainContext with per-call overrides: the
// plan is printed against the session's default graph (estimates and
// scan directions can differ per graph) under the session's limits.
func (ev *Evaluator) ExplainOptsContext(ctx context.Context, stmt *ast.Statement, opts ExecOpts) (string, error) {
	if err := analyzeStatement(stmt); err != nil {
		return "", err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	limits := ev.limits
	if opts.Limits != nil {
		limits = *opts.Limits
	}
	if limits.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, limits.Timeout)
		defer cancel()
	}
	if err := gov.New(ctx, limits).Checkpoint(faultinject.SiteEvalStart); err != nil {
		return "", err
	}
	var sb strings.Builder
	explainStatement(ev, opts.DefaultGraph, &sb, stmt, "", nil)
	return sb.String(), nil
}

// staticGraph resolves the target graph of a located pattern from the
// catalog alone, or nil when it is only known at run time (ON
// subqueries, query-local views). def is the session's default-graph
// override ("" = catalog default).
func (ev *Evaluator) staticGraph(def string, lp *ast.LocatedPattern) *ppg.Graph {
	switch {
	case lp.OnQuery != nil:
		return nil
	case lp.OnGraph != "":
		g, err := ev.cat.Resolve(lp.OnGraph)
		if err != nil {
			return nil
		}
		return g
	default:
		if def != "" {
			g, err := ev.cat.Resolve(def)
			if err != nil {
				return nil
			}
			return g
		}
		return ev.cat.Default()
	}
}

// Shared step labels: the plan printer emits them and the evaluator
// records them on operator spans, so EXPLAIN ANALYZE can line actual
// measurements up against plan lines by exact text.

func scanStepLabel(np *ast.NodePattern) string {
	return "node scan " + np.String()
}

func expandStepLabel(x *ast.EdgePattern, next *ast.NodePattern) string {
	return "expand " + x.String() + next.String() + " (adjacency)"
}

func pathStepLabel(x *ast.PathPattern, next *ast.NodePattern) string {
	return pathStrategy(x) + " " + x.String() + next.String()
}

const constructLabel = "CONSTRUCT (identity-respecting, §A.3)"

func selectLabel(sc *ast.SelectClause) string {
	return fmt.Sprintf("SELECT %d column(s) → table", len(sc.Items))
}

func explainStatement(ev *Evaluator, def string, sb *strings.Builder, stmt *ast.Statement, indent string, ann *planAnnotator) {
	for _, pc := range stmt.Paths {
		fmt.Fprintf(sb, "%sPATH VIEW %s\n", indent, pc.Name)
		fmt.Fprintf(sb, "%s  segment: %s", indent, pc.Patterns[0].String())
		if len(pc.Patterns) > 1 {
			fmt.Fprintf(sb, "  (+%d joined context pattern(s))", len(pc.Patterns)-1)
		}
		sb.WriteByte('\n')
		if pc.Where != nil {
			fmt.Fprintf(sb, "%s  filter: %s\n", indent, ast.ExprString(pc.Where))
		}
		if pc.Cost != nil {
			fmt.Fprintf(sb, "%s  cost:   %s (must be > 0)\n", indent, ast.ExprString(pc.Cost))
		} else {
			fmt.Fprintf(sb, "%s  cost:   1 (hop count)\n", indent)
		}
	}
	for _, gc := range stmt.Graphs {
		kind := "GRAPH (query-local)"
		if gc.View {
			kind = "GRAPH VIEW (registered in the catalog)"
		}
		fmt.Fprintf(sb, "%s%s %s\n", indent, kind, gc.Name)
		explainStatement(ev, def, sb, gc.Body, indent+"  ", ann)
	}
	if stmt.Query != nil {
		explainQuery(ev, def, sb, stmt.Query, indent, ann)
	}
}

func explainQuery(ev *Evaluator, def string, sb *strings.Builder, q ast.Query, indent string, ann *planAnnotator) {
	switch x := q.(type) {
	case *ast.SetQuery:
		fmt.Fprintf(sb, "%sGRAPH %s (identity-wise, §A.5)\n", indent, x.Op)
		explainQuery(ev, def, sb, x.Left, indent+"  ", ann)
		explainQuery(ev, def, sb, x.Right, indent+"  ", ann)
	case *ast.BasicQuery:
		explainBasic(ev, def, sb, x, indent, ann)
	}
}

func explainBasic(ev *Evaluator, def string, sb *strings.Builder, bq *ast.BasicQuery, indent string, ann *planAnnotator) {
	boundVars := map[string]bool{}
	boundKnown := true
	switch {
	case bq.From != "":
		fmt.Fprintf(sb, "%sFROM %s (import binding table)\n", indent, bq.From)
		boundKnown = false // columns are only known at run time
	case bq.Match != nil:
		explainMatch(ev, def, sb, bq.Match, indent, ann)
		for _, lp := range bq.Match.Patterns {
			collectVars(lp.Pattern, boundVars)
		}
		for _, ob := range bq.Match.Optionals {
			for _, lp := range ob.Patterns {
				collectVars(lp.Pattern, boundVars)
			}
		}
	default:
		fmt.Fprintf(sb, "%sunit bindings {µ∅}\n", indent)
	}
	switch {
	case bq.Select != nil:
		fmt.Fprintf(sb, "%sSELECT %d column(s)", indent, len(bq.Select.Items))
		if bq.Select.Distinct {
			sb.WriteString(" DISTINCT")
		}
		if len(bq.Select.OrderBy) > 0 {
			fmt.Fprintf(sb, ", ORDER BY %d key(s)", len(bq.Select.OrderBy))
		}
		if bq.Select.Limit >= 0 {
			fmt.Fprintf(sb, ", LIMIT %d", bq.Select.Limit)
		}
		sb.WriteString(" → table")
		sb.WriteString(ann.suffix(obs.OpSelect, ""))
		sb.WriteByte('\n')
	case bq.Construct != nil:
		explainConstruct(sb, bq.Construct, indent, boundVars, boundKnown, ann)
	}
}

func explainMatch(ev *Evaluator, def string, sb *strings.Builder, mc *ast.MatchClause, indent string, ann *planAnnotator) {
	fmt.Fprintf(sb, "%sMATCH\n", indent)
	conjs := prepareConjuncts(mc.Where)
	// Track which conjuncts each chain will absorb, mirroring
	// applyReady's schema test as variables become bound. Each chain is
	// walked in the direction the planner picks, so the step order —
	// and therefore the pushdown points — match the evaluation.
	ests := explainPatterns(ev, def, sb, mc.Patterns, conjs, indent, ann)
	explainJoinOrder(sb, ests, indent, ann)
	var residual []string
	for _, cj := range conjs {
		if !cj.applied {
			kind := ""
			if !cj.pushable {
				kind = " [subquery]"
			}
			residual = append(residual, ast.ExprString(cj.expr)+kind)
		}
	}
	if len(residual) > 0 {
		fmt.Fprintf(sb, "%s  residual filter: %s%s\n", indent,
			strings.Join(residual, " AND "), ann.suffix(obs.OpResidual, ""))
	}
	for oi, ob := range mc.Optionals {
		fmt.Fprintf(sb, "%s  left-outer-join OPTIONAL block %d%s\n", indent, oi+1,
			ann.suffix(obs.OpLeftJoin, ""))
		bConjs := prepareConjuncts(ob.Where)
		bEsts := make([]int, len(ob.Patterns))
		for i, lp := range ob.Patterns {
			g := ev.staticGraph(def, lp)
			pl := planChain(lp.Pattern, g)
			bEsts[i] = patternEstimate(lp, pl)
			explainScanDirection(sb, pl, g, indent+"    ")
			explainChain(sb, pl.runGp, bConjs, indent+"    ", ann)
		}
		explainJoinOrder(sb, bEsts, indent+"  ", ann)
		var brest []string
		for _, cj := range bConjs {
			if !cj.applied {
				brest = append(brest, ast.ExprString(cj.expr))
			}
		}
		if len(brest) > 0 {
			fmt.Fprintf(sb, "%s    block filter: %s%s\n", indent,
				strings.Join(brest, " AND "), ann.suffix(obs.OpResidual, ""))
		}
	}
}

// explainPatterns prints each conjunct pattern of a MATCH with the
// planner's scan decision, returning the per-pattern estimates that
// drive the fold order.
func explainPatterns(ev *Evaluator, def string, sb *strings.Builder, pats []*ast.LocatedPattern, conjs []*conjunct, indent string, ann *planAnnotator) []int {
	ests := make([]int, len(pats))
	for pi, lp := range pats {
		loc := "default graph"
		if lp.OnGraph != "" {
			loc = "ON " + lp.OnGraph
		}
		if lp.OnQuery != nil {
			loc = "ON (subquery)"
		}
		joiner := "scan"
		if pi > 0 {
			joiner = "hash-join with"
		}
		fmt.Fprintf(sb, "%s  %s pattern %d (%s)\n", indent, joiner, pi+1, loc)
		g := ev.staticGraph(def, lp)
		pl := planChain(lp.Pattern, g)
		ests[pi] = patternEstimate(lp, pl)
		explainScanDirection(sb, pl, g, indent+"    ")
		explainChain(sb, pl.runGp, conjs, indent+"    ", ann)
	}
	return ests
}

// patternEstimate is the fold-order estimate of one located pattern,
// matching evalMatch: ON-subquery patterns always rank last because
// their cardinality is unknowable before the subquery runs.
func patternEstimate(lp *ast.LocatedPattern, pl chainPlan) int {
	if lp.OnQuery != nil {
		return math.MaxInt
	}
	return pl.startEstimate()
}

// explainScanDirection prints the planner's start decision for one
// chain. Chains over graphs only known at run time print no line:
// there is no estimate at plan time (the runtime re-plans against the
// materialised graph).
func explainScanDirection(sb *strings.Builder, pl chainPlan, g *ppg.Graph, indent string) {
	if g == nil {
		return
	}
	if pl.reversed {
		fmt.Fprintf(sb, "%sstart: right end, reverse scan [est %s; forward %s], emission order restored\n",
			indent, estString(pl.estRev), estString(pl.estFwd))
		return
	}
	fmt.Fprintf(sb, "%sstart: left end, forward scan [est %s]\n", indent, estString(pl.estFwd))
}

// explainJoinOrder prints the fold order of a multi-pattern MATCH (or
// OPTIONAL block), mirroring foldConjuncts.
func explainJoinOrder(sb *strings.Builder, ests []int, indent string, ann *planAnnotator) {
	if len(ests) < 2 {
		return
	}
	order := joinOrder(ests)
	parts := make([]string, len(order))
	for i, o := range order {
		parts[i] = fmt.Sprintf("pattern %d [est %s]", o+1, estString(ests[o]))
	}
	fmt.Fprintf(sb, "%s  join order: %s%s\n", indent,
		strings.Join(parts, " ⋈ "), ann.suffix(obs.OpJoin, ""))
}

func estString(est int) string {
	if est == math.MaxInt {
		return "?"
	}
	return fmt.Sprintf("%d", est)
}

// explainChain walks one pattern chain, reporting each step and the
// conjuncts that become applicable (and marks them applied, like
// applyReady does, so later chains don't re-claim them).
func explainChain(sb *strings.Builder, gp *ast.GraphPattern, conjs []*conjunct, indent string, ann *planAnnotator) {
	bound := map[string]bool{}
	claim := func() []string {
		var out []string
		for _, cj := range conjs {
			if cj.applied || !cj.pushable {
				continue
			}
			ok := len(cj.vars) > 0
			for _, v := range cj.vars {
				if !bound[v] {
					ok = false
					break
				}
			}
			if ok {
				cj.applied = true
				desc := ast.ExprString(cj.expr)
				// The index-vs-column decision: conjuncts compilable
				// against the snapshot's property columns are marked,
				// the rest evaluate row-at-a-time.
				if !DisableCSR && !DisablePropColumns && cj.colPred() != nil {
					desc += " [col]"
				}
				out = append(out, desc)
			}
		}
		return out
	}
	step := func(op obs.Op, desc string) {
		fmt.Fprintf(sb, "%s%s", indent, desc)
		if pushed := claim(); len(pushed) > 0 {
			fmt.Fprintf(sb, "  ⊳ filter: %s", strings.Join(pushed, " AND "))
		}
		if op == obs.OpScan {
			sb.WriteString(ann.scanSuffix(desc))
		} else {
			sb.WriteString(ann.suffix(op, desc))
		}
		sb.WriteByte('\n')
	}
	bindNode := func(np *ast.NodePattern) {
		if np.Var != "" {
			bound[np.Var] = true
		}
		for _, ps := range np.Props {
			if ps.Mode == ast.PropBind {
				bound[ps.Var] = true
			}
		}
	}
	bindNode(gp.Nodes[0])
	step(obs.OpScan, scanStepLabel(gp.Nodes[0]))
	for i, link := range gp.Links {
		next := gp.Nodes[i+1]
		switch x := link.(type) {
		case *ast.EdgePattern:
			if x.Var != "" {
				bound[x.Var] = true
			}
			for _, ps := range x.Props {
				if ps.Mode == ast.PropBind {
					bound[ps.Var] = true
				}
			}
			bindNode(next)
			step(obs.OpExpand, expandStepLabel(x, next))
		case *ast.PathPattern:
			if x.Var != "" {
				bound[x.Var] = true
			}
			if x.CostVar != "" {
				bound[x.CostVar] = true
			}
			bindNode(next)
			step(obs.OpPath, pathStepLabel(x, next))
		}
	}
}

func pathStrategy(pp *ast.PathPattern) string {
	switch {
	case pp.Stored:
		if pp.Regex != nil {
			return "stored-path scan + conformance check"
		}
		return "stored-path scan"
	case pp.Mode == ast.PathAll:
		return "ALL-paths projection (product-graph summarisation)"
	case pp.Mode == ast.PathReach:
		return "reachability BFS (product automaton)"
	default:
		algo := "BFS"
		if pp.Regex != nil && len(pp.Regex.Views()) > 0 {
			algo = "Dijkstra over PATH-view segments"
		}
		if pp.K > 1 {
			return fmt.Sprintf("%d-shortest search (%s)", pp.K, algo)
		}
		return "shortest-path search (" + algo + ")"
	}
}

func explainConstruct(sb *strings.Builder, cc *ast.ConstructClause, indent string, bound map[string]bool, boundKnown bool, ann *planAnnotator) {
	fmt.Fprintf(sb, "%s%s%s\n", indent, constructLabel, ann.suffix(obs.OpConstruct, ""))
	for _, item := range cc.Items {
		if item.GraphName != "" {
			fmt.Fprintf(sb, "%s  graph union with %s\n", indent, item.GraphName)
			continue
		}
		gp := item.Pattern
		for _, np := range gp.Nodes {
			grouping := "by identity"
			switch {
			case np.Copy:
				grouping = "copy (fresh identity per group)"
			case len(np.Group) > 0:
				parts := make([]string, len(np.Group))
				for i, e := range np.Group {
					parts[i] = ast.ExprString(e)
				}
				grouping = "GROUP " + strings.Join(parts, ", ")
			case np.Var == "" || (boundKnown && !bound[np.Var]):
				grouping = "per binding (skolem)"
			case !boundKnown:
				grouping = "by identity if bound, else per binding"
			}
			fmt.Fprintf(sb, "%s  node %s  [%s]\n", indent, np.String(), grouping)
		}
		for _, link := range gp.Links {
			switch x := link.(type) {
			case *ast.EdgePattern:
				fmt.Fprintf(sb, "%s  edge %s  [grouped by endpoints]\n", indent, x.String())
			case *ast.PathPattern:
				kind := "path projection (constituents only)"
				if x.Stored {
					kind = "stored path"
				}
				fmt.Fprintf(sb, "%s  %s %s\n", indent, kind, x.String())
			}
		}
		if item.When != nil {
			fmt.Fprintf(sb, "%s  WHEN %s  [per-object filter, dangling-safe rebuild]\n", indent, ast.ExprString(item.When))
		}
	}
}
