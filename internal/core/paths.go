package core

import (
	"sort"

	"gcore/internal/ast"
	"gcore/internal/bindings"
	"gcore/internal/faultinject"
	"gcore/internal/gov"
	"gcore/internal/par"
	"gcore/internal/ppg"
	"gcore/internal/rpq"
	"gcore/internal/value"
)

// rpqErr normalises an error from the path-search kernels: typed
// governance errors (cancellation, budgets, contained panics) pass
// through unchanged so callers can classify them; anything else
// becomes a plain evaluation error as before.
func rpqErr(err error) error {
	if _, ok := gov.AsQueryError(err); ok {
		return err
	}
	return errf("%v", err)
}

// Path pattern evaluation (§A.2): the four cases of a path pattern in
// MATCH position —
//
//	x  @w (in r)  y   stored paths: members of P, optionally checked
//	                  against a regular expression and label tests;
//	x   w in r    y   fresh paths: the (k-)shortest conforming paths,
//	                  bound under fresh path identifiers;
//	x     in r    y   pure reachability;
//	ALL w in r        every conforming path, summarised as a graph
//	                  projection (only usable for construction).

// viewAdapter implements rpq.ViewResolver over the PATH clauses in
// scope, materialising each view's segment relation on first use per
// graph.
type viewAdapter struct {
	c     *evalCtx
	s     *scope
	g     *ppg.Graph
	cache map[string]map[ppg.NodeID][]rpq.Segment
}

func (va *viewAdapter) Segments(name string, from ppg.NodeID) ([]rpq.Segment, error) {
	if va.cache == nil {
		va.cache = map[string]map[ppg.NodeID][]rpq.Segment{}
	}
	byFrom, ok := va.cache[name]
	if !ok {
		pc, found := va.s.lookupPath(name)
		if !found {
			return nil, errf("unknown PATH view %q", name)
		}
		var err error
		byFrom, err = va.c.materializePathView(va.s, pc, va.g)
		if err != nil {
			return nil, err
		}
		va.cache[name] = byFrom
	}
	return byFrom[from], nil
}

// materializePathView evaluates a PATH clause on g, yielding the
// weighted segment relation (§A.4). The first graph pattern's first
// and last nodes are the segment endpoints; additional comma-separated
// patterns join context usable in WHERE and COST (footnote 3: this is
// strictly more powerful than existential filters because the joined
// variables can appear in the COST expression).
func (c *evalCtx) materializePathView(s *scope, pc *ast.PathClause, g *ppg.Graph) (map[ppg.NodeID][]rpq.Segment, error) {
	// The view's own chains record one level down: their spans belong
	// to the view materialisation, not to the enclosing query's plan.
	c.col.EnterSub()
	defer c.col.ExitSub()
	walk := pc.Patterns[0]
	names := c.patternVarNames(walk)

	tbl, err := c.evalGraphPattern(s, walk, g)
	if err != nil {
		return nil, err
	}
	for _, extra := range pc.Patterns[1:] {
		t, err := c.evalGraphPattern(s, extra, g)
		if err != nil {
			return nil, err
		}
		tbl = bindings.Join(tbl, t)
	}
	env := c.newEnv(s, []*ppg.Graph{g}, g)
	if pc.Where != nil {
		tbl, err = tbl.Filter(func(b bindings.Binding) (bool, error) {
			env.row = b
			v, err := env.eval(pc.Where)
			if err != nil {
				return false, err
			}
			return value.Truth(v)
		})
		if err != nil {
			return nil, err
		}
	}
	out := map[ppg.NodeID][]rpq.Segment{}
	for _, row := range tbl.Rows() {
		from, ok := nodeOf(row[names.node[0]])
		if !ok {
			continue
		}
		to, ok := nodeOf(row[names.node[len(names.node)-1]])
		if !ok {
			continue
		}
		cost := 1.0
		if pc.Cost != nil {
			env.row = row
			v, err := env.eval(pc.Cost)
			if err != nil {
				return nil, err
			}
			f, ok := v.Scalarize().AsFloat()
			if !ok {
				return nil, errf("PATH %s: COST must be numerical, got %s", pc.Name, v.Kind())
			}
			if f <= 0 {
				return nil, errf("PATH %s: COST must be larger than zero, got %g", pc.Name, f)
			}
			cost = f
		}
		seg := rpq.Segment{From: from, To: to, Cost: cost}
		// Expansion: walk the first pattern's chain.
		seg.Nodes = append(seg.Nodes, from)
		valid := true
		for i := range walk.Links {
			switch walk.Links[i].(type) {
			case *ast.EdgePattern:
				ev, ok := row[names.link[i]]
				if !ok || ev.Kind() != value.KindEdge {
					valid = false
					break
				}
				id, _ := ev.RefID()
				seg.Edges = append(seg.Edges, ppg.EdgeID(id))
			case *ast.PathPattern:
				pv, ok := row[names.link[i]]
				if !ok || pv.Kind() != value.KindPath {
					valid = false
					break
				}
				nodes, edges, ok := c.pathElements(g, pv)
				if !ok {
					valid = false
					break
				}
				seg.Edges = append(seg.Edges, edges...)
				// Interior nodes of the sub-path.
				for _, n := range nodes[1 : len(nodes)-1] {
					seg.Nodes = append(seg.Nodes, n)
				}
			}
			nid, ok := nodeOf(row[names.node[i+1]])
			if !ok {
				valid = false
				break
			}
			seg.Nodes = append(seg.Nodes, nid)
		}
		if !valid {
			return nil, errf("PATH %s: could not reconstruct the walk expansion", pc.Name)
		}
		out[from] = append(out[from], seg)
	}
	for from := range out {
		segs := out[from]
		sort.SliceStable(segs, func(i, j int) bool {
			if segs[i].To != segs[j].To {
				return segs[i].To < segs[j].To
			}
			return segs[i].Cost < segs[j].Cost
		})
	}
	return out, nil
}

// pathElements resolves a path reference to its node and edge lists,
// looking at stored paths of g and at computed temp paths.
func (c *evalCtx) pathElements(g *ppg.Graph, ref value.Value) ([]ppg.NodeID, []ppg.EdgeID, bool) {
	id, ok := ref.RefID()
	if !ok {
		return nil, nil, false
	}
	if p, ok := g.Path(ppg.PathID(id)); ok {
		return p.Nodes, p.Edges, true
	}
	if tp, ok := c.tempPaths[ppg.PathID(id)]; ok {
		return tp.path.Nodes, tp.path.Edges, true
	}
	return nil, nil, false
}

// reverseRegex mirrors a regular path expression so that a pattern
// read right-to-left ((a)<-/r/-(b)) can be evaluated left-to-right:
// concatenations flip and edge atoms invert. View references cannot
// be reversed (their cost relation is directional).
func reverseRegex(rx *ast.Regex) (*ast.Regex, error) {
	switch rx.Op {
	case ast.RxEps, ast.RxNodeLabel:
		return rx, nil
	case ast.RxAnyEdge:
		return &ast.Regex{Op: ast.RxAnyInv}, nil
	case ast.RxAnyInv:
		return &ast.Regex{Op: ast.RxAnyEdge}, nil
	case ast.RxLabel:
		return &ast.Regex{Op: ast.RxInvLabel, Label: rx.Label}, nil
	case ast.RxInvLabel:
		return &ast.Regex{Op: ast.RxLabel, Label: rx.Label}, nil
	case ast.RxView:
		return nil, errf("path view ~%s cannot be traversed right-to-left; write the pattern in the view's direction", rx.Label)
	case ast.RxConcat:
		subs := make([]*ast.Regex, len(rx.Subs))
		for i, sub := range rx.Subs {
			r, err := reverseRegex(sub)
			if err != nil {
				return nil, err
			}
			subs[len(rx.Subs)-1-i] = r
		}
		return &ast.Regex{Op: ast.RxConcat, Subs: subs}, nil
	case ast.RxAlt, ast.RxStar, ast.RxPlus, ast.RxOpt:
		subs := make([]*ast.Regex, len(rx.Subs))
		for i, sub := range rx.Subs {
			r, err := reverseRegex(sub)
			if err != nil {
				return nil, err
			}
			subs[i] = r
		}
		return &ast.Regex{Op: rx.Op, Subs: subs}, nil
	}
	return nil, errf("cannot reverse regex op %d", rx.Op)
}

// anyStarRegex is the expression used when a path pattern omits the
// angle brackets: any-edge Kleene star. It is a shared immutable
// singleton so the per-statement NFA cache (keyed by regex pointer)
// hits for every bare path pattern.
var anyStarRegex = &ast.Regex{Op: ast.RxStar, Subs: []*ast.Regex{{Op: ast.RxAnyEdge}}}

func defaultRegex() *ast.Regex { return anyStarRegex }

// compiledNFA compiles a regular path expression — reversed first when
// the pattern is traversed against the arrow — memoising per statement
// in the evalCtx cache.
func (c *evalCtx) compiledNFA(rx *ast.Regex, reversed bool) (*rpq.NFA, error) {
	key := nfaKey{rx: rx, reversed: reversed}
	if n, ok := c.nfaCache[key]; ok {
		c.col.NFAEvent(true)
		return n, nil
	}
	// Automata compiled by earlier executions of a cached statement
	// survive in its plan-cache entry; NFAs are read-only after
	// compilation and independent of graph state, so cross-statement
	// reuse is always sound.
	if c.cached != nil {
		if n, ok := c.cached.nfa(key); ok {
			c.col.NFAEvent(true)
			c.nfaCache[key] = n
			return n, nil
		}
	}
	c.col.NFAEvent(false)
	use := rx
	if reversed {
		var err error
		use, err = reverseRegex(rx)
		if err != nil {
			return nil, err
		}
	}
	n, err := rpq.Compile(use)
	if err != nil {
		return nil, errf("%v", err)
	}
	c.nfaCache[key] = n
	if c.cached != nil {
		c.cached.storeNFA(key, n)
	}
	return n, nil
}

// searchKey identifies one product search: a source node and the
// automaton index (orientation) it ran under.
type searchKey struct {
	src ppg.NodeID
	ni  int
}

// prefillSearches runs the path searches needed by extendPath's row
// loop concurrently, filling the given caches. Jobs are the distinct
// (source, automaton) pairs in the order the sequential loop first
// meets them; errors surface for the lowest-ordered failing job, so
// the reported error matches sequential evaluation.
func (c *evalCtx) prefillSearches(eng *rpq.Engine, tbl *bindings.Table, leftVar string, pp *ast.PathPattern, nfas []*rpq.NFA,
	shortCache map[searchKey]map[ppg.NodeID][]rpq.PathResult, reachCache map[searchKey][]ppg.NodeID, allCache map[searchKey]*rpq.AllPaths) error {
	var srcs []ppg.NodeID
	seen := map[ppg.NodeID]bool{}
	for _, row := range tbl.Rows() {
		if s, ok := nodeOf(row[leftVar]); ok && !seen[s] {
			seen[s] = true
			srcs = append(srcs, s)
		}
	}
	jobs := make([]searchKey, 0, len(srcs)*len(nfas))
	for _, src := range srcs {
		for ni := range nfas {
			jobs = append(jobs, searchKey{src, ni})
		}
	}
	workers := par.Workers(c.ev.workers)
	if workers <= 1 || len(jobs) < 2 {
		return nil // the row loop searches lazily, as before
	}
	switch pp.Mode {
	case ast.PathReach:
		results := make([][]ppg.NodeID, len(jobs))
		err := par.ForEachIdx(c.gov.Context(), len(jobs), workers, func(i int) error {
			r, err := eng.Reachable(jobs[i].src, nfas[jobs[i].ni])
			results[i] = r
			return err
		})
		if err != nil {
			return rpqErr(err)
		}
		for i, job := range jobs {
			reachCache[job] = results[i]
		}
	case ast.PathShortest:
		results := make([]map[ppg.NodeID][]rpq.PathResult, len(jobs))
		err := par.ForEachIdx(c.gov.Context(), len(jobs), workers, func(i int) error {
			r, err := eng.ShortestPaths(jobs[i].src, nfas[jobs[i].ni], pp.K)
			results[i] = r
			return err
		})
		if err != nil {
			return rpqErr(err)
		}
		for i, job := range jobs {
			shortCache[job] = results[i]
		}
	case ast.PathAll:
		results := make([]*rpq.AllPaths, len(jobs))
		err := par.ForEachIdx(c.gov.Context(), len(jobs), workers, func(i int) error {
			r, err := eng.AllPaths(jobs[i].src, nfas[jobs[i].ni])
			results[i] = r
			return err
		})
		if err != nil {
			return rpqErr(err)
		}
		for i, job := range jobs {
			allCache[job] = results[i]
		}
	}
	return nil
}

// extendPath extends every row of tbl over one path pattern.
func (c *evalCtx) extendPath(s *scope, g *ppg.Graph, tbl *bindings.Table, leftVar string, pp *ast.PathPattern, pathVar string, rightNp *ast.NodePattern, rightVar string) (*bindings.Table, error) {
	if pp.Stored {
		return c.extendStoredPath(g, tbl, leftVar, pp, pathVar, rightNp, rightVar)
	}
	// Computed path: build the (direction-adjusted) automata.
	rx := pp.Regex
	if rx == nil {
		rx = defaultRegex()
	}
	var nfas []*rpq.NFA
	switch pp.Dir {
	case ast.DirOut:
		n, err := c.compiledNFA(rx, false)
		if err != nil {
			return nil, err
		}
		nfas = []*rpq.NFA{n}
	case ast.DirIn:
		n, err := c.compiledNFA(rx, true)
		if err != nil {
			return nil, err
		}
		nfas = []*rpq.NFA{n}
	case ast.DirBoth:
		fwd, err := c.compiledNFA(rx, false)
		if err != nil {
			return nil, err
		}
		bwd, err := c.compiledNFA(rx, true)
		if err != nil {
			return nil, err
		}
		nfas = []*rpq.NFA{fwd, bwd}
	}
	views := &viewAdapter{c: c, s: s, g: g}
	var eng *rpq.Engine
	if DisableCSR {
		eng = rpq.NewLegacyEngine(g, views)
	} else {
		eng = rpq.NewEngine(g, views)
	}
	eng.SetGovernor(c.gov)
	eng.SetCollector(c.col)

	vars := append(tbl.Vars(), rightVar)
	if pp.Mode != ast.PathReach {
		vars = append(vars, pathVar)
	}
	if pp.CostVar != "" {
		vars = append(vars, pp.CostVar)
	}
	out := bindings.EmptyTable(vars...)

	// Cache searches per source node: many rows share a source.
	shortCache := map[searchKey]map[ppg.NodeID][]rpq.PathResult{}
	reachCache := map[searchKey][]ppg.NodeID{}
	allCache := map[searchKey]*rpq.AllPaths{}

	hasViews := false
	for _, n := range nfas {
		if n.HasViews() {
			hasViews = true
		}
	}

	// Parallel prefill: the per-source product searches dominate path
	// pattern cost and are pure graph reads, so they run concurrently
	// — one job per (distinct source, automaton), ordered exactly as
	// the sequential row loop would first encounter them — and land in
	// the caches before the (sequential, deterministic) emit loop
	// below. View-backed automata materialise PATH views through the
	// evaluator context and stay sequential.
	if !hasViews {
		if err := c.prefillSearches(eng, tbl, leftVar, pp, nfas, shortCache, reachCache, allCache); err != nil {
			return nil, err
		}
	}

	for _, row := range tbl.Rows() {
		if err := c.gov.Checkpoint(faultinject.SiteCorePath); err != nil {
			return nil, err
		}
		if err := c.checkBudget(out); err != nil {
			return nil, err
		}
		src, ok := nodeOf(row[leftVar])
		if !ok {
			continue
		}
		if pp.Mode == ast.PathReach {
			// Reachability: union the destinations over all automata
			// (both orientations for an undirected pattern) before
			// emitting, so each (row, dst) appears once — Ω is a set.
			dstSet := map[ppg.NodeID]bool{}
			for ni, nfa := range nfas {
				key := searchKey{src, ni}
				dsts, ok := reachCache[key]
				if !ok {
					var err error
					dsts, err = eng.Reachable(src, nfa)
					if err != nil {
						return nil, rpqErr(err)
					}
					reachCache[key] = dsts
				}
				for _, d := range dsts {
					dstSet[d] = true
				}
			}
			ordered := make([]ppg.NodeID, 0, len(dstSet))
			for d := range dstSet {
				ordered = append(ordered, d)
			}
			sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
			for _, dst := range ordered {
				if err := c.emitPathRow(g, out, row, rightNp, rightVar, dst, nil); err != nil {
					return nil, err
				}
			}
			continue
		}
		if pp.Mode == ast.PathShortest {
			// Gather candidates from every automaton (one per
			// orientation for undirected patterns), keep the k
			// cheapest distinct walks per destination.
			type cand struct {
				pr  rpq.PathResult
				rev bool
			}
			byDst := map[ppg.NodeID][]cand{}
			for ni, nfa := range nfas {
				key := searchKey{src, ni}
				res, ok := shortCache[key]
				if !ok {
					var err error
					res, err = eng.ShortestPaths(src, nfa, pp.K)
					if err != nil {
						return nil, rpqErr(err)
					}
					shortCache[key] = res
				}
				rev := pp.Dir == ast.DirIn || (pp.Dir == ast.DirBoth && ni == 1)
				for d, prs := range res {
					for _, pr := range prs {
						byDst[d] = append(byDst[d], cand{pr: pr, rev: rev})
					}
				}
			}
			dsts := make([]ppg.NodeID, 0, len(byDst))
			for d := range byDst {
				dsts = append(dsts, d)
			}
			sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
			for _, dst := range dsts {
				cands := byDst[dst]
				sort.SliceStable(cands, func(i, j int) bool {
					if cands[i].pr.Cost != cands[j].pr.Cost {
						return cands[i].pr.Cost < cands[j].pr.Cost
					}
					return cands[i].pr.Hops < cands[j].pr.Hops
				})
				taken := 0
				seenWalks := map[rpq.WalkSig]bool{}
				for _, cd := range cands {
					if taken >= pp.K {
						break
					}
					pid := c.ev.cat.IDs().NextPath()
					path := &ppg.Path{ID: pid, Nodes: cd.pr.Nodes, Edges: cd.pr.Edges}
					if cd.rev {
						// The search ran against the arrow (from the
						// pattern's left node with a reversed regex);
						// store δ(w) in the arrow's direction, from
						// µ(x) to µ(y).
						path = reversePath(path)
					}
					sig := walkSignature(path)
					if seenWalks[sig] {
						continue
					}
					seenWalks[sig] = true
					taken++
					c.tempPaths[pid] = &tempPath{path: path, src: g, cost: cd.pr.Cost}
					extra := bindings.Binding{pathVar: value.PathRef(uint64(pid))}
					if pp.CostVar != "" {
						if hasViews {
							extra[pp.CostVar] = value.Float(cd.pr.Cost)
						} else {
							extra[pp.CostVar] = value.Int(int64(cd.pr.Hops))
						}
					}
					if err := c.emitPathRow(g, out, row, rightNp, rightVar, dst, extra); err != nil {
						return nil, err
					}
				}
			}
			continue
		}
		for ni, nfa := range nfas {
			key := searchKey{src, ni}
			switch pp.Mode {
			case ast.PathAll:
				ap, ok := allCache[key]
				if !ok {
					var err error
					ap, err = eng.AllPaths(src, nfa)
					if err != nil {
						return nil, rpqErr(err)
					}
					allCache[key] = ap
				}
				for _, dst := range ap.Destinations() {
					nodes, edges, ok := ap.Projection(dst)
					if !ok {
						continue
					}
					pid := c.ev.cat.IDs().NextPath()
					c.tempPaths[pid] = &tempPath{
						path:       &ppg.Path{ID: pid, Nodes: nodes, Edges: edges},
						src:        g,
						projection: true,
					}
					extra := bindings.Binding{pathVar: value.PathRef(uint64(pid))}
					if err := c.emitPathRow(g, out, row, rightNp, rightVar, dst, extra); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return out, nil
}

// walkSignature identifies a walk by its oriented node/edge sequence
// so that equal walks found via different orientations collapse.
func walkSignature(p *ppg.Path) rpq.WalkSig {
	return rpq.SignatureOf(p.Nodes, p.Edges)
}

func reversePath(p *ppg.Path) *ppg.Path {
	rn := make([]ppg.NodeID, len(p.Nodes))
	for i, n := range p.Nodes {
		rn[len(p.Nodes)-1-i] = n
	}
	re := make([]ppg.EdgeID, len(p.Edges))
	for i, e := range p.Edges {
		re[len(p.Edges)-1-i] = e
	}
	return &ppg.Path{ID: p.ID, Nodes: rn, Edges: re}
}

// emitPathRow finishes one path-pattern match: checks and binds the
// right endpoint, merges extra bindings, and adds the row.
func (c *evalCtx) emitPathRow(g *ppg.Graph, out *bindings.Table, row bindings.Binding, rightNp *ast.NodePattern, rightVar string, dst ppg.NodeID, extra bindings.Binding) error {
	if prev, bound := row[rightVar]; bound {
		if pid, isNode := nodeOf(prev); !isNode || pid != dst {
			return nil
		}
	}
	dn, ok := g.Node(dst)
	if !ok {
		return nil
	}
	if ok, err := c.nodeMatches(g, dn, rightNp); err != nil || !ok {
		return err
	}
	base := row.Clone()
	base[rightVar] = value.NodeRef(uint64(dst))
	for k, v := range extra {
		base[k] = v
	}
	for _, r := range bindProps(dn.Props, rightNp.Props, base) {
		out.Add(r)
	}
	return nil
}

// extendStoredPath matches the stored paths of g (the @p case).
func (c *evalCtx) extendStoredPath(g *ppg.Graph, tbl *bindings.Table, leftVar string, pp *ast.PathPattern, pathVar string, rightNp *ast.NodePattern, rightVar string) (*bindings.Table, error) {
	vars := append(tbl.Vars(), pathVar, rightVar)
	if pp.CostVar != "" {
		vars = append(vars, pp.CostVar)
	}
	for _, ps := range pp.Props {
		if ps.Mode == ast.PropBind {
			vars = append(vars, ps.Var)
		}
	}
	out := bindings.EmptyTable(vars...)

	var nfa *rpq.NFA
	if pp.Regex != nil {
		n, err := c.compiledNFA(pp.Regex, false)
		if err != nil {
			return nil, err
		}
		nfa = n
	}
	for _, row := range tbl.Rows() {
		if err := c.gov.Checkpoint(faultinject.SiteCorePath); err != nil {
			return nil, err
		}
		if err := c.checkBudget(out); err != nil {
			return nil, err
		}
		src, ok := nodeOf(row[leftVar])
		if !ok {
			continue
		}
		for _, pid := range g.PathIDs() {
			p, _ := g.Path(pid)
			if !labelSpecMatches(pp.Labels, p.Labels) {
				continue
			}
			if ok, err := c.propsMatch(g, p.Props, pp.Props); err != nil {
				return nil, err
			} else if !ok {
				continue
			}
			if prev, bound := row[pathVar]; bound && !value.Equal(prev, value.PathRef(uint64(pid))) {
				continue
			}
			if len(p.Nodes) == 0 {
				continue
			}
			// Orientation: the pattern's left node must be one end.
			type orient struct {
				start, end ppg.NodeID
				rev        bool
			}
			var tries []orient
			first, last := p.Nodes[0], p.Nodes[len(p.Nodes)-1]
			switch pp.Dir {
			case ast.DirOut:
				tries = []orient{{first, last, false}}
			case ast.DirIn:
				tries = []orient{{last, first, true}}
			case ast.DirBoth:
				tries = []orient{{first, last, false}}
				if first != last {
					tries = append(tries, orient{last, first, true})
				}
			}
			for _, o := range tries {
				if o.start != src {
					continue
				}
				if nfa != nil && !storedPathConforms(g, p, nfa, o.rev) {
					continue
				}
				extra := bindings.Binding{pathVar: value.PathRef(uint64(pid))}
				if pp.CostVar != "" {
					extra[pp.CostVar] = value.Int(int64(p.Length()))
				}
				base := row.Clone()
				for _, r := range bindProps(p.Props, pp.Props, base) {
					merged := r.Clone()
					for k, v := range extra {
						merged[k] = v
					}
					if err := c.emitPathRow(g, out, merged, rightNp, rightVar, o.end, nil); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return out, nil
}

// storedPathConforms checks δ(p) against a regular expression by
// simulating the automaton over the path's symbol word.
func storedPathConforms(g *ppg.Graph, p *ppg.Path, nfa *rpq.NFA, reversed bool) bool {
	nodes := p.Nodes
	edges := p.Edges
	if reversed {
		rp := reversePath(p)
		nodes, edges = rp.Nodes, rp.Edges
	}
	var word []rpq.Sym
	for i, nid := range nodes {
		n, ok := g.Node(nid)
		if !ok {
			return false
		}
		word = append(word, rpq.Sym{IsNode: true, Labels: n.Labels})
		if i < len(edges) {
			e, ok := g.Edge(edges[i])
			if !ok {
				return false
			}
			inv := !(e.Src == nid && e.Dst == nodes[i+1])
			word = append(word, rpq.Sym{Labels: e.Labels, Inverse: inv})
		}
	}
	return nfa.MatchesWord(word)
}
