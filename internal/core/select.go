package core

import (
	"sort"

	"gcore/internal/ast"
	"gcore/internal/bindings"
	"gcore/internal/ppg"
	"gcore/internal/table"
	"gcore/internal/value"
)

// evalSelect implements the §5 tabular-projection extension: the
// binding table of MATCH/FROM is projected through the select
// expressions into a table. This makes the language multi-sorted (the
// paper flags it as an extension precisely because of that); the
// engine reports the result as a Table instead of a Graph.
//
// When the select list contains aggregates, rows group by the values
// of the non-aggregate items and the aggregates fold per group — the
// "aggregation" half of the extension the paper sketches.
func (c *evalCtx) evalSelect(s *scope, sc *ast.SelectClause, tbl *bindings.Table, graphs []*ppg.Graph) (*table.Table, error) {
	cols := make([]string, len(sc.Items))
	for i, it := range sc.Items {
		if it.As != "" {
			cols[i] = it.As
		} else {
			cols[i] = ast.ExprString(it.Expr)
		}
	}
	out := table.New("", cols...)
	env := c.newEnv(s, graphs, firstGraph(graphs, c.defaultGraphOrNil()))
	env.groupSchema = tbl.Vars()

	// ORDER BY may reference select-list aliases (ORDER BY ln DESC).
	alias := map[string]int{}
	for i, it := range sc.Items {
		if it.As != "" {
			alias[it.As] = i
		}
	}

	aggItem := make([]bool, len(sc.Items))
	hasAgg := false
	for i, it := range sc.Items {
		aggItem[i] = exprHasAggregate(it.Expr)
		hasAgg = hasAgg || aggItem[i]
	}

	// evalRow projects one µ (the current environment row) through the
	// select items and ORDER BY keys.
	evalRow := func() (projRow, error) {
		vals := make([]value.Value, len(sc.Items))
		for i, it := range sc.Items {
			v, err := env.eval(it.Expr)
			if err != nil {
				return projRow{}, err
			}
			vals[i] = v
		}
		keys := make([]value.Value, len(sc.OrderBy))
		for i, oi := range sc.OrderBy {
			if vr, ok := oi.Expr.(*ast.VarRef); ok {
				if col, isAlias := alias[vr.Name]; isAlias {
					keys[i] = vals[col]
					continue
				}
			}
			v, err := env.eval(oi.Expr)
			if err != nil {
				return projRow{}, err
			}
			keys[i] = v
		}
		return projRow{vals, keys}, nil
	}

	sorted := tbl.Sorted()
	var rows []projRow
	if !hasAgg && !DisablePropColumns {
		// No aggregates: one output row per binding. Rows dispatch
		// through the slot table (and property reads through the
		// snapshot columns) instead of materialising a map per row.
		env.rowTab = sorted
		for ri := 0; ri < sorted.Len(); ri++ {
			env.rowIdx = ri
			r, err := evalRow()
			if err != nil {
				env.rowTab = nil
				return nil, err
			}
			rows = append(rows, r)
		}
		env.rowTab = nil
		return finishSelect(out, sc, rows)
	}

	// groups: one entry per output row — a representative binding and
	// (when aggregating) the rows of its group.
	type outGroup struct {
		rep  bindings.Binding
		rows []bindings.Binding
	}
	var groups []outGroup
	sortedRows := sorted.Rows()
	if !hasAgg {
		for _, b := range sortedRows {
			groups = append(groups, outGroup{rep: b})
		}
	} else {
		// Group rows by the evaluated values of the non-aggregate
		// items (the implicit GROUP BY of SQL-style aggregation).
		idx := map[string]int{}
		for _, b := range sortedRows {
			env.row = b
			key := ""
			for i, it := range sc.Items {
				if aggItem[i] {
					continue
				}
				v, err := env.eval(it.Expr)
				if err != nil {
					return nil, err
				}
				key += v.Key() + "|"
			}
			gi, ok := idx[key]
			if !ok {
				gi = len(groups)
				idx[key] = gi
				groups = append(groups, outGroup{rep: b})
			}
			groups[gi].rows = append(groups[gi].rows, b)
		}
		if len(sortedRows) == 0 && allAggregates(aggItem) {
			// SELECT COUNT(*) over an empty match still yields one row
			// (the aggregate of the empty group).
			groups = append(groups, outGroup{rep: bindings.Empty(), rows: []bindings.Binding{}})
		}
	}

	for _, g := range groups {
		env.row = g.rep
		env.groupRows = g.rows
		r, err := evalRow()
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	env.groupRows = nil
	return finishSelect(out, sc, rows)
}

// projRow is one projected output row with its ORDER BY sort keys.
type projRow struct {
	vals []value.Value
	keys []value.Value
}

// finishSelect applies ORDER BY, DISTINCT and LIMIT to the projected
// rows and fills the output table.
func finishSelect(out *table.Table, sc *ast.SelectClause, rows []projRow) (*table.Table, error) {
	if len(sc.OrderBy) > 0 {
		sort.SliceStable(rows, func(i, j int) bool {
			for k, oi := range sc.OrderBy {
				d := value.Compare(rows[i].keys[k], rows[j].keys[k])
				if oi.Desc {
					d = -d
				}
				if d != 0 {
					return d < 0
				}
			}
			return false
		})
	}
	seen := map[string]bool{}
	for _, r := range rows {
		if sc.Distinct {
			k := ""
			for _, v := range r.vals {
				k += v.Key() + "|"
			}
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		if sc.Limit >= 0 && out.Len() >= sc.Limit {
			break
		}
		if err := out.AddRow(r.vals...); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func allAggregates(aggItem []bool) bool {
	for _, a := range aggItem {
		if !a {
			return false
		}
	}
	return true
}

// exprHasAggregate reports whether an expression contains an
// aggregation function call.
func exprHasAggregate(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Unary:
		return exprHasAggregate(x.X)
	case *ast.Binary:
		return exprHasAggregate(x.L) || exprHasAggregate(x.R)
	case *ast.FuncCall:
		if x.Star {
			return true
		}
		if _, ok := aggName(x.Name); ok {
			return true
		}
		for _, a := range x.Args {
			if exprHasAggregate(a) {
				return true
			}
		}
		return false
	case *ast.Index:
		return exprHasAggregate(x.Base) || exprHasAggregate(x.Idx)
	case *ast.Case:
		if exprHasAggregate(x.Operand) || exprHasAggregate(x.Else) {
			return true
		}
		for _, w := range x.Whens {
			if exprHasAggregate(w.Cond) || exprHasAggregate(w.Then) {
				return true
			}
		}
		return false
	}
	return false
}

func firstGraph(graphs []*ppg.Graph, fallback *ppg.Graph) *ppg.Graph {
	if len(graphs) > 0 {
		return graphs[0]
	}
	return fallback
}
