package core

import "gcore/internal/ast"

// ReadOnly reports whether evaluating stmt can change engine state —
// the sole statement-level mutation in G-CORE is GRAPH VIEW, which
// commits a materialised graph into the catalog. Everything else
// (queries, query-local GRAPH clauses, plain EXPLAIN) only reads:
// CONSTRUCT builds a fresh result graph from cloned elements, and
// SET/REMOVE rewrite that copy, never the source.
//
// The classification is purely syntactic and errs on the side of
// "write" only where execution really can mutate:
//
//   - EXPLAIN (plan-only) never executes, so it is read-only even
//     over a GRAPH VIEW statement.
//   - EXPLAIN ANALYZE executes for real — a view definition under it
//     commits on success — so it classifies by its body.
//   - Views nest: a GRAPH VIEW anywhere in the statement tree (for
//     example inside another view's body) makes the whole statement a
//     write.
func ReadOnly(stmt *ast.Statement) bool {
	if stmt == nil {
		return true
	}
	if stmt.Explain == ast.ExplainPlan {
		return true
	}
	return !definesView(stmt)
}

// definesView reports whether stmt registers a GRAPH VIEW at any
// nesting depth. Query bodies need no recursion: a Query cannot
// contain a GraphClause (ON subqueries are queries themselves).
func definesView(stmt *ast.Statement) bool {
	for _, gc := range stmt.Graphs {
		if gc.View {
			return true
		}
		if gc.Body != nil && definesView(gc.Body) {
			return true
		}
	}
	return false
}
