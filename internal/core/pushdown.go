package core

import (
	"sort"

	"gcore/internal/ast"
	"gcore/internal/bindings"
	"gcore/internal/faultinject"
	"gcore/internal/obs"
	"gcore/internal/ppg"
	"gcore/internal/value"
)

// Predicate pushdown. The WHERE condition of a MATCH clause is a
// filter over the binding table (§A.2) — its value on a row depends
// only on the variables it mentions. The evaluator therefore splits
// the condition into AND-conjuncts and applies each *pure* conjunct
// as soon as every variable it mentions is bound, typically right
// after a node scan and before expensive path searches. Conjuncts
// containing subqueries (EXISTS, pattern predicates) or whose
// variables never become bound are applied at the original point, so
// results are identical to the naïve evaluation.

// conjunct is one AND-factor of a WHERE condition.
type conjunct struct {
	expr     ast.Expr
	vars     []string // sorted free variables
	pushable bool     // no subqueries: safe to evaluate early
	applied  bool

	// Compiled columnar form (propcols.go), cached on first attempt.
	col      *colPred
	colTried bool
}

// prepareConjuncts splits a WHERE expression.
func prepareConjuncts(e ast.Expr) []*conjunct {
	var parts []ast.Expr
	var split func(x ast.Expr)
	split = func(x ast.Expr) {
		if b, ok := x.(*ast.Binary); ok && b.Op == ast.OpAnd {
			split(b.L)
			split(b.R)
			return
		}
		parts = append(parts, x)
	}
	if e != nil {
		split(e)
	}
	out := make([]*conjunct, len(parts))
	for i, p := range parts {
		vars := map[string]bool{}
		pushable := collectExprVars(p, vars)
		vs := make([]string, 0, len(vars))
		for v := range vars {
			vs = append(vs, v)
		}
		sort.Strings(vs)
		out[i] = &conjunct{expr: p, vars: vs, pushable: pushable}
	}
	return out
}

// prepareConjunctsCached is prepareConjuncts through the statement
// cache: the AND-split and free-variable analysis depend only on the
// AST, so a cached statement computes them once and every execution
// just clones fresh conjuncts around the shared skeleton (their
// applied/columnar fields are per-execution state).
func (c *evalCtx) prepareConjunctsCached(e ast.Expr) []*conjunct {
	if c.cached == nil || e == nil {
		return prepareConjuncts(e)
	}
	protos, ok := c.cached.conjuncts(e)
	if !ok {
		conjs := prepareConjuncts(e)
		protos = make([]conjunctProto, len(conjs))
		for i, cj := range conjs {
			protos[i] = conjunctProto{expr: cj.expr, vars: cj.vars, pushable: cj.pushable}
		}
		c.cached.storeConjuncts(e, protos)
		return conjs
	}
	out := make([]*conjunct, len(protos))
	for i := range protos {
		p := &protos[i]
		out[i] = &conjunct{expr: p.expr, vars: p.vars, pushable: p.pushable}
	}
	return out
}

// collectExprVars gathers the free variables of an expression and
// reports whether it is pushable (free of subqueries).
func collectExprVars(e ast.Expr, into map[string]bool) bool {
	switch x := e.(type) {
	case nil, *ast.Literal:
		return true
	case *ast.Param:
		// A parameter is a per-execution constant: no free variables,
		// and safe to push down (resolved from the context's bindings).
		return true
	case *ast.VarRef:
		into[x.Name] = true
		return true
	case *ast.PropAccess:
		into[x.Var] = true
		return true
	case *ast.LabelTest:
		into[x.Var] = true
		return true
	case *ast.Unary:
		return collectExprVars(x.X, into)
	case *ast.Binary:
		l := collectExprVars(x.L, into)
		r := collectExprVars(x.R, into)
		return l && r
	case *ast.FuncCall:
		ok := true
		for _, a := range x.Args {
			if !collectExprVars(a, into) {
				ok = false
			}
		}
		if _, isAgg := aggName(x.Name); isAgg || x.Star {
			ok = false // aggregates need the group context
		}
		return ok
	case *ast.Index:
		b := collectExprVars(x.Base, into)
		i := collectExprVars(x.Idx, into)
		return b && i
	case *ast.Case:
		ok := collectExprVars(x.Operand, into)
		for _, w := range x.Whens {
			if !collectExprVars(w.Cond, into) {
				ok = false
			}
			if !collectExprVars(w.Then, into) {
				ok = false
			}
		}
		if !collectExprVars(x.Else, into) {
			ok = false
		}
		return ok
	case *ast.Exists:
		// Correlated variables are not statically known; never push.
		return false
	case *ast.PatternPred:
		return false
	}
	return false
}

// DisablePushdown turns eager conjunct application off, leaving every
// conjunct to the residual filter. Results are identical either way
// (the equivalence is tested); the knob exists only so the ablation
// benchmarks can measure what the optimisation buys.
var DisablePushdown bool

// applyReady filters tbl by every pushable, not-yet-applied conjunct
// whose variables are all in the table schema.
func (c *evalCtx) applyReady(conjs []*conjunct, tbl *bindings.Table, g *ppg.Graph) (*bindings.Table, error) {
	if len(conjs) == 0 || DisablePushdown {
		return tbl, nil
	}
	var ready []*conjunct
	for _, cj := range conjs {
		if cj.applied || !cj.pushable {
			continue
		}
		ok := true
		for _, v := range cj.vars {
			if !tbl.HasVar(v) {
				ok = false
				break
			}
		}
		if ok {
			ready = append(ready, cj)
		}
	}
	if len(ready) == 0 {
		return tbl, nil
	}
	// The filter span nests inside the enclosing scan/expand span (the
	// plan prints pushed conjuncts as a suffix of the step line); it
	// exists so the metrics registry can price pushdown separately.
	sp := c.col.Start(obs.OpFilter)
	if sp.Verbose() {
		sp.SetLabel("pushdown filter")
	}
	rowsIn := int64(tbl.Len())
	// Label tests (x:A|B) over the pattern graph short-circuit to an
	// interned-label probe on the CSR snapshot, and compilable
	// property comparisons (propcols.go) to a columnar test; every
	// other conjunct — and any ref the snapshot does not know — goes
	// through the interpreter as before.
	snap := c.snapOf(g)
	type labelFast struct {
		v    string
		lids []int32
	}
	type accel struct {
		label *labelFast
		pred  *boundPred
		slot  int
	}
	accels := make([]accel, len(ready))
	if snap != nil {
		for i, cj := range ready {
			if lt, ok := cj.expr.(*ast.LabelTest); ok {
				lids := make([]int32, len(lt.Labels))
				for j, l := range lt.Labels {
					lids[j] = snap.LabelID(l)
				}
				accels[i] = accel{label: &labelFast{v: lt.Var, lids: lids}, slot: tbl.SlotOf(lt.Var)}
				continue
			}
			if !DisablePropColumns {
				if p := cj.colPred(); p != nil {
					accels[i] = accel{pred: bindColPred(snap, p), slot: tbl.SlotOf(p.v)}
				}
			}
		}
	}
	// Pushable conjuncts are subquery-free, so rows can be filtered
	// concurrently; each chunk gets its own environment (the current
	// row index is mutated per row) and the kept row indices merge in
	// input order.
	slotVal := func(ri, slot int) (value.Value, bool) {
		if slot < 0 {
			return value.Null, false
		}
		v := tbl.RowAt(ri)[slot]
		if v.IsAbsent() {
			return value.Null, false
		}
		return v, true
	}
	parts, err := c.mapIdx(tbl.Len(), true, func(lo, hi int) ([]int, error) {
		env := c.newEnv(nil, []*ppg.Graph{g}, g)
		env.rowTab = tbl
		var keep []int
		var colHits, colFalls int64
		defer func() { c.col.PropColEvent(colHits, colFalls) }()
	next:
		for ri := lo; ri < hi; ri++ {
			if (ri-lo)&(checkStride-1) == 0 {
				if err := c.gov.Checkpoint(faultinject.SiteCoreFilter); err != nil {
					return nil, err
				}
			}
			env.rowIdx = ri
			for i, cj := range ready {
				if f := accels[i].label; f != nil {
					v, bound := slotVal(ri, accels[i].slot)
					if pass, handled := labelTestFast(snap, f.lids, v, bound); handled {
						if !pass {
							continue next
						}
						continue
					}
				} else if bp := accels[i].pred; bp != nil {
					v, bound := slotVal(ri, accels[i].slot)
					if pass, handled := bp.evalRef(v, bound); handled {
						colHits++
						if !pass {
							continue next
						}
						continue
					}
					colFalls++
				}
				v, err := env.eval(cj.expr)
				if err != nil {
					return nil, err
				}
				ok, err := value.Truth(v)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue next
				}
			}
			keep = append(keep, ri)
		}
		return keep, nil
	})
	if err != nil {
		sp.Fail()
		return nil, err
	}
	var idx []int
	for _, part := range parts {
		idx = append(idx, part...)
	}
	out := tbl.Pick(idx)
	for _, cj := range ready {
		cj.applied = true
	}
	sp.Rows(rowsIn, int64(out.Len())).End()
	return out, nil
}

// residualFilter applies the remaining conjuncts with the full
// environment (subqueries, cross-graph lookups).
func (c *evalCtx) residualFilter(conjs []*conjunct, tbl *bindings.Table, env *env) (*bindings.Table, error) {
	var rest []*conjunct
	for _, cj := range conjs {
		if !cj.applied {
			rest = append(rest, cj)
		}
	}
	if len(rest) == 0 {
		return tbl, nil
	}
	// Compilable conjuncts land here when pushdown is disabled or
	// their variables never became bound mid-chain; they still answer
	// from the columns of the first match graph when the ref is there
	// (constructed graphs and scope graphs are consulted by the
	// interpreter first and later respectively, so a column hit on
	// graphs[0] resolves exactly like the interpreter's walk).
	preds := make([]*boundPred, len(rest))
	slots := make([]int, len(rest))
	if !DisablePropColumns && env.constructed == nil && len(env.graphs) > 0 {
		if snap := c.snapOf(env.graphs[0]); snap != nil {
			for i, cj := range rest {
				if p := cj.colPred(); p != nil {
					preds[i] = bindColPred(snap, p)
					slots[i] = tbl.SlotOf(p.v)
				}
			}
		}
	}
	env.rowTab = tbl
	defer func() { env.rowTab = nil }()
	var keep []int
	var colHits, colFalls int64
	defer func() { c.col.PropColEvent(colHits, colFalls) }()
rows:
	for i := 0; i < tbl.Len(); i++ {
		if i&(checkStride-1) == 0 {
			if err := c.gov.Checkpoint(faultinject.SiteCoreFilter); err != nil {
				return nil, err
			}
		}
		env.rowIdx = i
		for j, cj := range rest {
			if bp := preds[j]; bp != nil {
				var v value.Value
				bound := false
				if s := slots[j]; s >= 0 {
					v = tbl.RowAt(i)[s]
					if bound = !v.IsAbsent(); !bound {
						v = value.Null
					}
				}
				if pass, handled := bp.evalRef(v, bound); handled {
					colHits++
					if !pass {
						continue rows
					}
					continue
				}
				colFalls++
			}
			v, err := env.eval(cj.expr)
			if err != nil {
				return nil, err
			}
			ok, err := value.Truth(v)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue rows
			}
		}
		keep = append(keep, i)
	}
	return tbl.Pick(keep), nil
}
