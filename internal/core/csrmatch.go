package core

import (
	"sort"

	"gcore/internal/ast"
	"gcore/internal/bindings"
	"gcore/internal/csr"
	"gcore/internal/faultinject"
	"gcore/internal/ppg"
	"gcore/internal/value"
)

// CSR pattern kernels. scanNodes, extendEdge and the pushdown label
// fast path run over the graph's CSR snapshot: dense node/edge
// ordinals, flat adjacency arrays and interned integer labels replace
// the map probes and string comparisons of the ppg layout. Candidate
// order, edge iteration order and every accept/reject decision mirror
// the legacy code exactly, so the binding tables are identical row
// for row; the differential tests at the repository root enforce
// this against the DisableCSR ablation.

// DisableCSR turns the CSR kernels off, evaluating patterns and path
// searches over the mutable ppg maps directly. Results are identical
// either way (tested); the knob exists for differential tests and
// ablation benchmarks.
var DisableCSR bool

// DisableIncrementalSnapshot turns delta-applied snapshot maintenance
// off: every generation mismatch runs the full csr.Build, as before
// the incremental path existed. Results are identical either way
// (tested); the knob exists for differential tests and ablation
// benchmarks. It gates inside the csr package so snapshots taken
// outside snapOf (rpq kernels, expression contexts) honour it too.
var DisableIncrementalSnapshot bool

func init() { csr.BindDisableIncremental(&DisableIncrementalSnapshot) }

// snapOf returns the graph's snapshot, or nil when CSR evaluation is
// disabled. The snapshot is cached per generation inside the graph,
// so repeated calls during one evaluation are cheap.
func (c *evalCtx) snapOf(g *ppg.Graph) *csr.Snapshot {
	if DisableCSR {
		return nil
	}
	snap, info := csr.OfCounted(g)
	c.col.CSREvent(info.Kind == csr.BuildReused)
	if info.Kind != csr.BuildReused {
		c.col.SnapshotBuild(info.Kind == csr.BuildDelta, info.Kind == csr.BuildFallback,
			info.DeltaOps, info.BytesShared, info.BytesCopied)
	}
	return snap
}

// resolvedSpec is a label spec with every name interned against one
// snapshot. Labels absent from the snapshot resolve to csr.NoLabel,
// which no element can carry — exactly the legacy "no node has this
// label" outcome.
type resolvedSpec [][]int32

func resolveSpec(snap *csr.Snapshot, spec ast.LabelSpec) resolvedSpec {
	rs := make(resolvedSpec, len(spec))
	for i, disj := range spec {
		lids := make([]int32, len(disj))
		for j, l := range disj {
			lids[j] = snap.LabelID(l)
		}
		rs[i] = lids
	}
	return rs
}

func (rs resolvedSpec) matchesNode(snap *csr.Snapshot, u int32) bool {
	for _, disj := range rs {
		found := false
		for _, lid := range disj {
			if snap.NodeHasLabel(u, lid) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func (rs resolvedSpec) matchesEdge(snap *csr.Snapshot, e int32) bool {
	for _, disj := range rs {
		found := false
		for _, lid := range disj {
			if snap.EdgeHasLabel(e, lid) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// indexedNodeOrdinals is indexedNodeCandidates over the snapshot's
// per-label partitions: the most selective conjunct yields the sorted
// candidate ordinals.
func indexedNodeOrdinals(snap *csr.Snapshot, rs resolvedSpec) ([]int32, bool) {
	if len(rs) == 0 {
		return nil, false
	}
	best := -1
	bestSize := 0
	for i, disj := range rs {
		size := 0
		for _, lid := range disj {
			size += len(snap.NodesWithLabel(lid))
		}
		if best == -1 || size < bestSize {
			best, bestSize = i, size
		}
	}
	disj := rs[best]
	if len(disj) == 1 {
		return snap.NodesWithLabel(disj[0]), true
	}
	set := map[int32]bool{}
	for _, lid := range disj {
		for _, u := range snap.NodesWithLabel(lid) {
			set[u] = true
		}
	}
	out := make([]int32, 0, len(set))
	for u := range set {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, true
}

// scanNodesCSR is the snapshot form of scanNodes: candidates come
// from the ordinal partitions (or the full ordinal range), label
// conjuncts are integer tests, compilable WHERE conjuncts run as
// columnar predicates on the candidate ordinals before any row
// exists, and only the remaining property checks touch the live ppg
// structs.
func (c *evalCtx) scanNodesCSR(snap *csr.Snapshot, g *ppg.Graph, np *ast.NodePattern, varName string, conjs []*conjunct) (*bindings.Table, error) {
	vars := []string{varName}
	for _, ps := range np.Props {
		if ps.Mode == ast.PropBind {
			vars = append(vars, ps.Var)
		}
	}
	tbl := bindings.EmptyTable(vars...)
	varSlot := tbl.SlotOf(varName)
	bp := newBindPlan(tbl, np.Props)
	w := tbl.Width()
	rs := resolveSpec(snap, np.Labels)
	ords, indexed := indexedNodeOrdinals(snap, rs)
	c.lastScanIndexed = indexed
	if !indexed {
		ords = make([]int32, snap.NumNodes())
		for i := range ords {
			ords[i] = int32(i)
		}
	}
	preds := c.scanPrefilter(snap, np, varName, conjs)
	parts, err := c.mapSlabs(len(ords), specsParallelSafe(np.Props), func(lo, hi int) ([]value.Value, error) {
		var slab []value.Value
		scratch := make([]value.Value, w)
		var combos []propCombo
		var colHits int64
		defer func() { c.col.PropColEvent(colHits, 0) }()
	cands:
		for i, u := range ords[lo:hi] {
			if i&(checkStride-1) == 0 {
				if err := c.gov.Checkpoint(faultinject.SiteCoreScan); err != nil {
					return nil, err
				}
			}
			if !rs.matchesNode(snap, u) {
				continue
			}
			for _, pr := range preds {
				colHits++
				if !pr.node.test(u, pr.p) {
					continue cands
				}
			}
			n := snap.Node(u)
			ok, err := c.propsMatch(g, n.Props, np.Props)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			for s := range scratch {
				scratch[s] = value.Absent
			}
			scratch[varSlot] = value.NodeRef(uint64(snap.NodeID(u)))
			combos = bp.addCombos(combos[:0], n.Props)
			slab = appendCombos(slab, scratch, combos)
		}
		return slab, nil
	})
	if err != nil {
		return nil, err
	}
	return c.mergeSlabs(tbl, parts)
}

// extendEdgeCSR is the snapshot form of extendEdge: adjacency walks
// the flat CSR arrays and the label tests are integer comparisons, in
// the same deterministic order (out ascending, then in ascending,
// self-loops emitted once under DirBoth).
func (c *evalCtx) extendEdgeCSR(snap *csr.Snapshot, g *ppg.Graph, tbl *bindings.Table, leftVar string, ep *ast.EdgePattern, edgeVar string, rightNp *ast.NodePattern, rightVar string) (*bindings.Table, error) {
	vars := append(tbl.Vars(), edgeVar, rightVar)
	for _, ps := range ep.Props {
		if ps.Mode == ast.PropBind {
			vars = append(vars, ps.Var)
		}
	}
	for _, ps := range rightNp.Props {
		if ps.Mode == ast.PropBind {
			vars = append(vars, ps.Var)
		}
	}
	out := bindings.EmptyTable(vars...)
	eSpec := resolveSpec(snap, ep.Labels)
	nSpec := resolveSpec(snap, rightNp.Labels)
	ex := newExtendPlan(tbl, out, leftVar, edgeVar, rightVar, ep, rightNp)

	safe := specsParallelSafe(ep.Props) && specsParallelSafe(rightNp.Props)
	parts, err := c.mapSlabs(tbl.Len(), safe, func(lo, hi int) ([]value.Value, error) {
		var slab []value.Value
		scratch := make([]value.Value, out.Width())
		var combos []propCombo
		for ri := lo; ri < hi; ri++ {
			if err := c.gov.Checkpoint(faultinject.SiteCoreExtend); err != nil {
				return nil, err
			}
			row := tbl.RowAt(ri)
			uid, ok := nodeOf(ex.left(row))
			if !ok {
				continue
			}
			u, ok := snap.Ord(uid)
			if !ok {
				continue
			}
			emit := func(eo, otherOrd int32) error {
				if !eSpec.matchesEdge(snap, eo) {
					return nil
				}
				e := snap.Edge(eo)
				if ok, err := c.propsMatch(g, e.Props, ep.Props); err != nil || !ok {
					return err
				}
				other := snap.NodeID(otherOrd)
				if !ex.agrees(row, uint64(e.ID), other) {
					return nil
				}
				if !nSpec.matchesNode(snap, otherOrd) {
					return nil
				}
				on := snap.Node(otherOrd)
				if ok, err := c.propsMatch(g, on.Props, rightNp.Props); err != nil || !ok {
					return err
				}
				combos = ex.fill(scratch, row, uint64(e.ID), uint64(other), e.Props, on.Props, combos)
				slab = appendCombos(slab, scratch, combos)
				return nil
			}
			var err error
			if ep.Dir == ast.DirOut || ep.Dir == ast.DirBoth {
				for _, eo := range snap.Out(u) {
					if err = emit(eo, snap.Dst(eo)); err != nil {
						return nil, err
					}
				}
			}
			if ep.Dir == ast.DirIn || ep.Dir == ast.DirBoth {
				for _, eo := range snap.In(u) {
					if ep.Dir == ast.DirBoth && snap.Src(eo) == snap.Dst(eo) {
						continue // self-loop already emitted by the out pass
					}
					if err = emit(eo, snap.Src(eo)); err != nil {
						return nil, err
					}
				}
			}
		}
		return slab, nil
	})
	if err != nil {
		return nil, err
	}
	return c.mergeSlabs(out, parts)
}

// labelTestFast answers a pushed-down label test (x:A|B) on one row
// through the snapshot when the referenced element belongs to the
// pattern graph: an interned-label membership probe instead of a full
// expression evaluation. handled is false when the row's value is a
// ref the snapshot does not know (another graph's element, a path) —
// the caller falls back to the interpreter, which searches all graphs
// in scope.
func labelTestFast(snap *csr.Snapshot, lids []int32, v value.Value, bound bool) (pass, handled bool) {
	if !bound || !v.IsRef() {
		return false, true // unbound or non-ref: the interpreter yields FALSE
	}
	id, _ := v.RefID()
	switch v.Kind() {
	case value.KindNode:
		if u, ok := snap.Ord(ppg.NodeID(id)); ok {
			for _, lid := range lids {
				if snap.NodeHasLabel(u, lid) {
					return true, true
				}
			}
			return false, true
		}
	case value.KindEdge:
		if e, ok := snap.EdgeOrd(ppg.EdgeID(id)); ok {
			for _, lid := range lids {
				if snap.EdgeHasLabel(e, lid) {
					return true, true
				}
			}
			return false, true
		}
	}
	return false, false
}
