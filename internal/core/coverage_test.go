package core_test

import (
	"strings"
	"testing"

	"gcore/internal/snb"
	"gcore/internal/value"
)

// Targeted tests for evaluator paths not reached by the guided tour.

func TestLabelTestOnStoredPath(t *testing.T) {
	ev := newToy(t)
	// Paths are first-class: label tests and property access work on
	// path variables in WHERE.
	res := run(t, ev, `SELECT p.trust AS trust
MATCH (a)-/@p/->(b) ON example_graph
WHERE (p:toWagner) AND p.trust > 0.9`)
	if res.Table.Len() != 1 {
		t.Fatalf("rows = %d", res.Table.Len())
	}
	if !value.Equal(res.Table.Rows[0][0].Scalarize(), value.Float(0.95)) {
		t.Errorf("trust = %v", res.Table.Rows[0][0])
	}
	// A failing path label test.
	res = run(t, ev, `SELECT id(p) AS v
MATCH (a)-/@p/->(b) ON example_graph
WHERE (p:nosuch)`)
	if res.Table.Len() != 0 {
		t.Error("label test on path must filter")
	}
}

func TestLabelsOfComputedPath(t *testing.T) {
	ev := newToy(t)
	// A freshly computed path has no labels or properties yet;
	// labels(p) is the empty set, property access the empty set.
	res := run(t, ev, `SELECT size(labels(p)) AS nl, size(p.trust) AS np
MATCH (n:Person)-/SHORTEST p<:knows*>/->(m:Person)
WHERE n.firstName = 'John' AND m.firstName = 'Peter'`)
	row := res.Table.Rows[0]
	if !value.Equal(row[0], value.Int(0)) || !value.Equal(row[1], value.Int(0)) {
		t.Errorf("computed path metadata = %v", row)
	}
}

func TestReversedComplexRegexes(t *testing.T) {
	ev := newToy(t)
	// Reversal distributes over alternation, closures, optionals and
	// node tests; wildcards invert. hasInterest runs Person→Tag, so
	// from the Tag side the reversed pattern needs the inverse.
	queries := []string{
		// (w)<-/:hasInterest/-(m): edge m→w matched right-to-left.
		`SELECT id(m) AS v MATCH (w:Tag)<-/<:hasInterest>/-(m:Person) ON social_graph`,
		// Alternation under reversal.
		`SELECT id(m) AS v MATCH (w:Tag)<-/<:hasInterest|:nosuch>/-(m:Person) ON social_graph`,
		// Plus and optional.
		`SELECT id(m) AS v MATCH (m:Person)<-/<:knows+ :knows?>/-(o:Person) ON social_graph WHERE m.firstName = 'John'`,
		// Node test and wildcards survive reversal.
		`SELECT id(m) AS v MATCH (w:Tag)<-/<_ !:Person _->/-(m) ON social_graph WHERE (m:Tag)`,
	}
	for _, q := range queries {
		res := run(t, ev, q)
		_ = res // shape-only: must evaluate without error
	}
	// Views cannot be reversed.
	err := runErr(t, ev, `PATH w = (x)-[e:knows]->(y)
CONSTRUCT (n) MATCH (a)<-/p<~w*>/-(b)`)
	if !strings.Contains(err.Error(), "right-to-left") {
		t.Errorf("err = %v", err)
	}
}

func TestSameEdgeConstructedTwice(t *testing.T) {
	ev := newToy(t)
	// The same bound edge in two construct items merges (identity).
	g := run(t, ev, `CONSTRUCT (n)-[e]->(m) SET e.a := 1, (n)-[e]->(m) SET e.b := 2
MATCH (n:Person)-[e:knows]->(m:Person)
WHERE n.firstName = 'John' AND m.firstName = 'Peter'`).Graph
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1 (merged identity)", g.NumEdges())
	}
	e, _ := g.Edge(snb.KnowsJohnPeter)
	if !value.Equal(e.Props.Get("a").Scalarize(), value.Int(1)) ||
		!value.Equal(e.Props.Get("b").Scalarize(), value.Int(2)) {
		t.Errorf("merged props = %v", e.Props)
	}
}

func TestWhenOnStoredPathConstruct(t *testing.T) {
	ev := newToy(t)
	// WHEN can filter stored-path constructs by their fresh
	// properties.
	g := run(t, ev, `CONSTRUCT (n)-/@p:near {d := c}/->(m) WHEN p.d <= 1
MATCH (n:Person)-/SHORTEST p<:knows*> COST c/->(m:Person)
WHERE n.firstName = 'John'`).Graph
	if g.NumPaths() != 3 { // John(0), Peter(1), Alice(1)
		t.Fatalf("paths = %d, want 3\n", g.NumPaths())
	}
	for _, pid := range g.PathIDs() {
		p, _ := g.Path(pid)
		if p.Length() > 1 {
			t.Errorf("path %v survived WHEN d<=1", p.Nodes)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectAndMinusViews(t *testing.T) {
	ev := newToy(t)
	// Set operations over view-defined graphs.
	run(t, ev, `GRAPH VIEW acme AS (CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme')`)
	run(t, ev, `GRAPH VIEW johns AS (CONSTRUCT (n) MATCH (n:Person) WHERE n.firstName = 'John')`)
	g := run(t, ev, `CONSTRUCT (n) MATCH (n) ON acme
INTERSECT
CONSTRUCT (n) MATCH (n) ON johns`).Graph
	if g.NumNodes() != 1 {
		t.Fatalf("acme ∩ johns = %d nodes", g.NumNodes())
	}
	if _, ok := g.Node(snb.John); !ok {
		t.Error("John missing from intersection")
	}
}

func TestExistsWithOnClause(t *testing.T) {
	ev := newToy(t)
	// Correlated EXISTS whose inner MATCH runs on a different graph.
	g := run(t, ev, `CONSTRUCT (n)
MATCH (n:Person)
WHERE EXISTS (
  CONSTRUCT ()
  MATCH (c:Company) ON company_graph
  WHERE c.name IN n.employer )`).Graph
	// Persons whose employer names a known company: John, Alice,
	// Celine, Frank (Peter has none).
	if g.NumNodes() != 4 {
		t.Fatalf("nodes = %d, want 4", g.NumNodes())
	}
	if _, ok := g.Node(snb.Peter); ok {
		t.Error("Peter must be excluded")
	}
}

func TestNestedLocalGraphScoping(t *testing.T) {
	ev := newToy(t)
	// A GRAPH binding is visible to later head clauses of the same
	// statement, including view bodies.
	g := run(t, ev, `GRAPH base AS (CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme')
GRAPH derived AS (CONSTRUCT (n) MATCH (n) ON base WHERE n.firstName = 'Alice')
CONSTRUCT (n) MATCH (n) ON derived`).Graph
	if g.NumNodes() != 1 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if _, ok := g.Node(snb.Alice); !ok {
		t.Error("Alice missing")
	}
}

func TestDuplicatePathViewRejected(t *testing.T) {
	ev := newToy(t)
	err := runErr(t, ev, `PATH w = (x)-[e:knows]->(y)
PATH w = (x)-[e:knows]->(y)
CONSTRUCT (n) MATCH (n:Person)`)
	if !strings.Contains(err.Error(), "duplicate PATH") {
		t.Errorf("err = %v", err)
	}
}

func TestAnalysisSortErrors(t *testing.T) {
	ev := newToy(t)
	cases := map[string]string{
		// Path var reused as node var.
		`CONSTRUCT (n) MATCH (n:Person)-/p<:knows*>/->(m), (p)`: "used both as",
		// Cost var reused as edge var.
		`CONSTRUCT (n) MATCH (n)-/q<:knows*> COST c/->(m)-[c]->(o)`: "used both as",
		// Copy form in MATCH.
		`CONSTRUCT (n) MATCH (=n)`: "only allowed in CONSTRUCT",
		// := in MATCH property map.
		`CONSTRUCT (n) MATCH (n {k := 1})`: "only allowed in CONSTRUCT",
		// PATH clause without a segment.
		`PATH w = (x) CONSTRUCT (n) MATCH (n)`: "path segment",
	}
	for src, frag := range cases {
		err := runErr(t, ev, src)
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("%s:\n  err = %v, want fragment %q", src, err, frag)
		}
	}
}

func TestSelectOverFrom(t *testing.T) {
	ev := newToy(t)
	// SELECT directly over an imported binding table.
	res := run(t, ev, `SELECT custName AS c, prodCode AS p FROM orders ORDER BY c, p`)
	if res.Table.Len() != 5 {
		t.Fatalf("rows = %d", res.Table.Len())
	}
	first, _ := res.Table.Rows[0][0].AsString()
	if first != "Ada" {
		t.Errorf("first = %q", first)
	}
}

func TestMatchOnTableWithFilter(t *testing.T) {
	ev := newToy(t)
	res := run(t, ev, `SELECT o.custName AS c
MATCH (o) ON orders
WHERE o.prodCode = 1001
ORDER BY c`)
	if res.Table.Len() != 3 {
		t.Fatalf("rows = %d (Bob twice + Ada)", res.Table.Len())
	}
}

func TestUnionShorthandPreservesStoredPaths(t *testing.T) {
	ev := newToy(t)
	// UNION with a graph containing stored paths keeps them.
	g := run(t, ev, `CONSTRUCT example_graph, (x :Extra)
MATCH (n:Person) WHERE n.firstName = 'John'`).Graph
	if g.NumPaths() != 1 {
		t.Fatalf("paths = %d", g.NumPaths())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSelectAggregates(t *testing.T) {
	ev := newToy(t)
	// Ungrouped: one row over all bindings.
	res := run(t, ev, `SELECT COUNT(*) AS n MATCH (p:Person)`)
	if res.Table.Len() != 1 || !value.Equal(res.Table.Rows[0][0], value.Int(5)) {
		t.Fatalf("COUNT(*) = %v", res.Table)
	}
	// Grouped by the non-aggregate item: out-degree per person.
	res = run(t, ev, `SELECT n.firstName AS name, COUNT(*) AS deg
MATCH (n:Person)-[:knows]->(m)
ORDER BY deg DESC, name`)
	if res.Table.Len() != 5 {
		t.Fatalf("groups = %d\n%s", res.Table.Len(), res.Table)
	}
	top, _ := res.Table.Rows[0][0].Scalarize().AsString()
	if top != "Peter" || !value.Equal(res.Table.Rows[0][1], value.Int(3)) {
		t.Errorf("top = %v", res.Table.Rows[0])
	}
	// Mixed aggregates with expressions.
	res = run(t, ev, `SELECT MIN(c) AS near, MAX(c) AS far, AVG(c) AS avg_
MATCH (n:Person)-/SHORTEST p<:knows*> COST c/->(m:Person)
WHERE n.firstName = 'John'`)
	row := res.Table.Rows[0]
	if !value.Equal(row[0], value.Int(0)) || !value.Equal(row[1], value.Int(2)) {
		t.Errorf("min/max = %v", row)
	}
	// Empty match with only aggregates: one row, COUNT 0.
	res = run(t, ev, `SELECT COUNT(*) AS n MATCH (x:NoSuchLabel)`)
	if res.Table.Len() != 1 || !value.Equal(res.Table.Rows[0][0], value.Int(0)) {
		t.Fatalf("empty COUNT(*) = %v", res.Table)
	}
	// Empty match with a grouping column: no rows.
	res = run(t, ev, `SELECT x.a AS a, COUNT(*) AS n MATCH (x:NoSuchLabel)`)
	if res.Table.Len() != 0 {
		t.Fatalf("grouped empty = %d rows", res.Table.Len())
	}
}

func TestOptionalWithOn(t *testing.T) {
	ev := newToy(t)
	// The OPTIONAL block matches on a different graph than the main
	// pattern: employer data joins against the company graph.
	res := run(t, ev, `SELECT n.firstName AS name, c.name AS company
MATCH (n:Person)
OPTIONAL (c:Company) ON company_graph WHERE 'HAL' IN c.name
ORDER BY name`)
	if res.Table.Len() != 5 {
		t.Fatalf("rows = %d", res.Table.Len())
	}
	// Every person gets the HAL row (cartesian with the 1-row block).
	for _, r := range res.Table.Rows {
		if s, _ := r[1].Scalarize().AsString(); s != "HAL" {
			t.Errorf("company = %q", s)
		}
	}
}

func TestSetOpRequiresGraphOperands(t *testing.T) {
	ev := newToy(t)
	err := runErr(t, ev, `SELECT n.a AS x MATCH (n)
UNION
CONSTRUCT (n) MATCH (n)`)
	if !strings.Contains(err.Error(), "graph operands") {
		t.Errorf("err = %v", err)
	}
}

func TestConstructUnionWithTableAsGraph(t *testing.T) {
	ev := newToy(t)
	// A table name as a construct item unions its node-graph form.
	g := run(t, ev, `CONSTRUCT orders, (x :Marker)
MATCH (n:Person) WHERE n.firstName = 'John'`).Graph
	// 5 order rows + 1 marker node.
	if g.NumNodes() != 6 {
		t.Fatalf("nodes = %d, want 6", g.NumNodes())
	}
}
