package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"gcore/internal/ast"
	"gcore/internal/obs"
)

// EXPLAIN ANALYZE: run the statement through the ordinary governed
// evaluation path with a verbose collector attached, then re-render
// the static plan with each plan line annotated by the span the
// evaluator recorded for that operator.
//
// Matching is FIFO per (operator, label) over the top-level spans
// (Depth 0): chain steps match by their exact step label (the printer
// and the evaluator share the label constructors), operators with one
// plan line per occurrence (join order, residual filter, OPTIONAL
// left-join, SELECT, CONSTRUCT) match by operator alone. A plan line
// whose operator ran under a different plan — chains over graphs only
// materialised at run time may re-plan — simply prints without an
// annotation; nothing is guessed.

// ExplainAnalyze runs stmt and renders its plan annotated with actual
// rows, timings, and cache/budget totals. Like the EXPLAIN ANALYZE of
// SQL engines the statement really executes: GRAPH VIEW definitions
// it contains are committed on success.
func (ev *Evaluator) ExplainAnalyze(stmt *ast.Statement) (string, error) {
	return ev.ExplainAnalyzeContext(context.Background(), stmt)
}

// ExplainAnalyzeContext is ExplainAnalyze under the caller's context:
// the execution leg runs through the exact cancellation/budget/panic
// containment path of EvalStatementContext.
func (ev *Evaluator) ExplainAnalyzeContext(ctx context.Context, stmt *ast.Statement) (string, error) {
	return ev.ExplainAnalyzeExec(ctx, Exec{stmt: stmt})
}

// ExplainAnalyzeExec is the execution leg shared by the AST-level and
// source-level (plan-cached) EXPLAIN ANALYZE entry points. The
// collector is fresh per call, so concurrent EXPLAIN ANALYZE runs
// never share span state.
func (ev *Evaluator) ExplainAnalyzeExec(ctx context.Context, ex Exec) (string, error) {
	col := obs.NewCollector()
	col.SetHandler(ev.trace)
	if _, err := ev.evalGoverned(ctx, col, ex); err != nil {
		return "", err
	}
	var sb strings.Builder
	explainStatement(ev, ex.opts.DefaultGraph, &sb, ex.stmt, "", newPlanAnnotator(col.SpansSince(obs.Mark{})))
	writeAnalyzeFooter(&sb, col.Stats())
	return sb.String(), nil
}

// planAnnotator matches recorded spans to plan lines.
type planAnnotator struct {
	spans []obs.Span
	used  []bool
}

func newPlanAnnotator(spans []obs.Span) *planAnnotator {
	top := spans[:0]
	for _, sp := range spans {
		if sp.Depth == 0 {
			top = append(top, sp)
		}
	}
	return &planAnnotator{spans: top, used: make([]bool, len(top))}
}

// take claims the first unused span of the given operator; a
// non-empty label additionally requires an exact label match.
func (a *planAnnotator) take(op obs.Op, label string) (obs.Span, bool) {
	if a == nil {
		return obs.Span{}, false
	}
	for i := range a.spans {
		if a.used[i] || a.spans[i].Op != op {
			continue
		}
		if label != "" && a.spans[i].Label != label {
			continue
		}
		a.used[i] = true
		return a.spans[i], true
	}
	return obs.Span{}, false
}

// suffix renders the annotation for one plan line, or "" when no span
// matches (static EXPLAIN, or a re-planned chain).
func (a *planAnnotator) suffix(op obs.Op, label string) string {
	sp, ok := a.take(op, label)
	if !ok {
		return ""
	}
	return fmt.Sprintf("  [actual rows=%d→%d, time=%s]", sp.RowsIn, sp.RowsOut, fmtElapsed(sp.Elapsed))
}

// scanSuffix is suffix for node scans: no meaningful input side, plus
// the index-vs-scan decision the evaluator actually took.
func (a *planAnnotator) scanSuffix(label string) string {
	sp, ok := a.take(obs.OpScan, label)
	if !ok {
		return ""
	}
	how := "full scan"
	if sp.Indexed {
		how = "label index"
	}
	return fmt.Sprintf("  [actual rows=%d, time=%s, %s]", sp.RowsOut, fmtElapsed(sp.Elapsed), how)
}

// writeAnalyzeFooter appends the statement-wide totals: wall time and
// result size, path-kernel frontier work, cache effectiveness, and
// consumed budget (when limits were set — the governor only meters
// what it bounds).
func writeAnalyzeFooter(sb *strings.Builder, st obs.Stats) {
	total := st.Op(obs.OpStatement)
	fmt.Fprintf(sb, "executed: total time %s, result rows %d\n", fmtElapsed(total.Elapsed), total.RowsOut)
	kernels := []struct {
		name string
		op   obs.Op
	}{
		{"k-shortest", obs.OpShortest},
		{"reachability", obs.OpReach},
		{"ALL-paths", obs.OpAllPaths},
	}
	var parts []string
	for _, k := range kernels {
		os := st.Op(k.op)
		if os.Count == 0 {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s ×%d (pops %d, arrivals %d, time %s)",
			k.name, os.Count, os.Pops, os.Arrivals, fmtElapsed(os.Elapsed)))
	}
	if len(parts) > 0 {
		fmt.Fprintf(sb, "path kernels: %s\n", strings.Join(parts, "; "))
	}
	if st.NFAHits+st.NFAMisses+st.CSRReuses+st.CSRBuilds > 0 {
		fmt.Fprintf(sb, "caches: NFA %d hit/%d compiled, CSR %d reused/%d built\n",
			st.NFAHits, st.NFAMisses, st.CSRReuses, st.CSRBuilds)
	}
	if st.SnapshotFullBuilds+st.SnapshotDeltaApplies+st.SnapshotFallbacks > 0 {
		fmt.Fprintf(sb, "snapshots: %d full, %d delta-applied (%d ops, %s shared/%s copied), %d fallback\n",
			st.SnapshotFullBuilds, st.SnapshotDeltaApplies, st.SnapshotDeltaOps,
			fmtBytes(st.SnapshotBytesShared), fmtBytes(st.SnapshotBytesCopied), st.SnapshotFallbacks)
	}
	if st.PropColHits+st.PropColFallbacks > 0 {
		fmt.Fprintf(sb, "prop columns: %d predicate rows columnar, %d interpreted\n",
			st.PropColHits, st.PropColFallbacks)
	}
	if st.FrontierUsed > 0 || st.ResultsUsed > 0 {
		fmt.Fprintf(sb, "budget: frontier %d, result elements %d\n", st.FrontierUsed, st.ResultsUsed)
	}
	if st.PlanCacheHits+st.PlanCacheMisses > 0 {
		if st.PlanCacheHits > 0 {
			fmt.Fprintf(sb, "plan cache: hit (compile %s saved)\n", fmtElapsed(st.PlanCacheCompile))
		} else {
			fmt.Fprintf(sb, "plan cache: miss (compile %s)\n", fmtElapsed(st.PlanCacheCompile))
		}
	}
}

// fmtBytes renders a byte count with a binary-unit suffix for the
// snapshots footer line.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// fmtElapsed rounds a duration for plan annotations: enough digits to
// compare operators, not enough to drown the plan.
func fmtElapsed(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	case d >= time.Microsecond:
		return d.Round(100 * time.Nanosecond).String()
	default:
		return d.String()
	}
}
