package core

import (
	"math"

	"gcore/internal/ast"
	"gcore/internal/csr"
	"gcore/internal/ppg"
	"gcore/internal/value"
)

// Columnar predicate compilation. A WHERE conjunct of the shape
//
//	x.key OP literal        or        literal OP x.key
//
// with OP one of = <> < <= > >= IN SUBSET depends on nothing but one
// property of one bound element, so it can be answered straight from
// the snapshot's property columns (csr/props.go): presence bit, typed
// payload array, interned-string bound — no environment, no map
// probes, no per-row evaluation tree walk. The compiled form is
// error-free by construction (the comparison operators of value/ops.go
// return FALSE for nulls and unordered kinds instead of raising), so
// replacing the interpreter evaluation of such a conjunct can never
// change error behaviour, and pre-filtering scan candidates with a
// prefix of error-free conjuncts can never suppress an error another
// conjunct would have raised.
//
// Every answer the compiled form produces is defined to be what the
// interpreter produces: typed fast paths exist only where the Go
// comparison provably agrees with value.Compare (same-kind payloads,
// non-NaN float literals), and everything else falls back first to the
// mirrored FSET(V) sets and ultimately to the interpreter itself (refs
// the snapshot does not know). The differential suites and
// FuzzPropColumns enforce the equivalence against DisablePropColumns.

// DisablePropColumns is the ablation knob for the columnar property
// fast paths: when set, pushdown filters, residual filters, property
// lookups and SELECT projection fall back to the row-at-a-time
// ppg.Properties map reads, exactly as before the columns existed.
// Snapshots still build their columns either way (the knob gates use,
// not construction), mirroring DisableCSR / DisablePushdown.
var DisablePropColumns bool

// colPred is the compiled, snapshot-independent form of one conjunct.
type colPred struct {
	v        string       // the single free variable
	key      string       // the property key
	op       ast.BinaryOp // Eq..Ge, In, Subset
	propLeft bool         // the property is the left operand
	lit      value.Value  // the literal operand
	// absentKeep is the conjunct's value when the property resolves to
	// the empty set (absent property, unbound or non-ref variable):
	// FALSE for every comparison and IN, but TRUE for `x.k SUBSET s`
	// (the empty set is a subset of everything) — absent rows are KEPT
	// by such a filter, which is why this is precomputed rather than
	// assumed false.
	absentKeep bool
}

// compileColPred recognises the compilable conjunct shape, or nil.
func compileColPred(e ast.Expr) *colPred {
	b, ok := e.(*ast.Binary)
	if !ok {
		return nil
	}
	switch b.Op {
	case ast.OpEq, ast.OpNeq, ast.OpLt, ast.OpLe, ast.OpGt, ast.OpGe, ast.OpIn, ast.OpSubset:
	default:
		return nil
	}
	if pa, ok := b.L.(*ast.PropAccess); ok {
		if lit, ok := b.R.(*ast.Literal); ok {
			return newColPred(pa, b.Op, lit.Val, true)
		}
		return nil
	}
	if pa, ok := b.R.(*ast.PropAccess); ok {
		if lit, ok := b.L.(*ast.Literal); ok {
			return newColPred(pa, b.Op, lit.Val, false)
		}
	}
	return nil
}

func newColPred(pa *ast.PropAccess, op ast.BinaryOp, lit value.Value, propLeft bool) *colPred {
	p := &colPred{v: pa.Var, key: pa.Key, op: op, propLeft: propLeft, lit: lit}
	p.absentKeep = p.apply(value.EmptySet)
	return p
}

// apply evaluates the conjunct on a property value through the exact
// value/ops.go operators — the generic, always-correct path. The
// comparison operators, IN and SUBSET never return an error and always
// yield a boolean.
func (p *colPred) apply(prop value.Value) bool {
	a, b := prop, p.lit
	if !p.propLeft {
		a, b = p.lit, prop
	}
	var res value.Value
	switch p.op {
	case ast.OpEq:
		res = value.Eq(a, b)
	case ast.OpNeq:
		res = value.Neq(a, b)
	case ast.OpLt:
		res = value.Lt(a, b)
	case ast.OpLe:
		res = value.Le(a, b)
	case ast.OpGt:
		res = value.Gt(a, b)
	case ast.OpGe:
		res = value.Ge(a, b)
	case ast.OpIn:
		res = value.In(a, b)
	case ast.OpSubset:
		res = value.Subset(a, b)
	}
	ok, _ := res.AsBool()
	return ok
}

// colPred returns the conjunct's compiled form, caching the (possibly
// nil) result after the first attempt.
func (cj *conjunct) colPred() *colPred {
	if !cj.colTried {
		cj.colTried = true
		cj.col = compileColPred(cj.expr)
	}
	return cj.col
}

// colEval is one side (node or edge) of a predicate bound to a
// snapshot: the key's column and, when the column's typed array and
// the literal's kind line up, a specialised test over the payloads.
type colEval struct {
	col  *csr.PropCol
	fast func(ord int32) bool
}

func (ce *colEval) test(ord int32, p *colPred) bool {
	if ce.col == nil || !ce.col.Present(ord) {
		return p.absentKeep
	}
	if ce.fast != nil {
		return ce.fast(ord)
	}
	return p.apply(ce.col.SetAt(ord))
}

// boundPred is a colPred bound to one snapshot.
type boundPred struct {
	p    *colPred
	snap *csr.Snapshot
	node colEval
	edge colEval
}

func bindColPred(snap *csr.Snapshot, p *colPred) *boundPred {
	bp := &boundPred{p: p, snap: snap}
	bp.node.col = snap.NodeCol(p.key)
	bp.edge.col = snap.EdgeCol(p.key)
	bp.node.fast = typedEval(snap, bp.node.col, p)
	bp.edge.fast = typedEval(snap, bp.edge.col, p)
	return bp
}

// evalRef answers the conjunct for one row value of the variable.
// handled is false when the value is a ref the snapshot does not know
// (another graph's element, a path): the caller falls back to the
// interpreter, which searches all graphs in scope. Unbound and
// non-ref values resolve the property access to Null, which for every
// compilable operator behaves exactly like the empty set.
func (bp *boundPred) evalRef(v value.Value, bound bool) (pass, handled bool) {
	if !bound || !v.IsRef() {
		return bp.p.absentKeep, true
	}
	id, _ := v.RefID()
	switch v.Kind() {
	case value.KindNode:
		if u, ok := bp.snap.Ord(ppg.NodeID(id)); ok {
			return bp.node.test(u, bp.p), true
		}
	case value.KindEdge:
		if e, ok := bp.snap.EdgeOrd(ppg.EdgeID(id)); ok {
			return bp.edge.test(e, bp.p), true
		}
	}
	return false, false
}

// typedEval compiles the predicate against a column's typed payload
// array, or nil when only the generic set path is safe. The rules are
// deliberately narrow — the typed comparison must agree with
// value.Compare on every input:
//
//   - the literal's (scalarized) kind must equal the column kind
//     exactly; cross-kind numeric comparisons go through value ops,
//   - a NaN float literal goes through value ops (value.Compare sorts
//     NaNs before everything and equal to each other, which `<` on
//     float64 does not),
//   - IN and SUBSET always use the set mirrors.
func typedEval(snap *csr.Snapshot, col *csr.PropCol, p *colPred) func(int32) bool {
	if col == nil || col.Kind() == csr.ColOverflow {
		return nil
	}
	// Normalise to "prop OP lit" by flipping the comparison when the
	// property is the right operand; IN and SUBSET are not symmetric.
	op := p.op
	if op == ast.OpIn || op == ast.OpSubset {
		return nil
	}
	if !p.propLeft {
		switch op {
		case ast.OpLt:
			op = ast.OpGt
		case ast.OpLe:
			op = ast.OpGe
		case ast.OpGt:
			op = ast.OpLt
		case ast.OpGe:
			op = ast.OpLe
		}
	}
	lit := p.lit.Scalarize()
	switch col.Kind() {
	case csr.ColInt:
		l, ok := lit.AsInt()
		if !ok {
			return nil
		}
		return intEval(col.Ints(), op, l)
	case csr.ColDate:
		l, ok := lit.AsDateDays()
		if !ok {
			return nil
		}
		return intEval(col.Ints(), op, l)
	case csr.ColFloat:
		if lit.Kind() != value.KindFloat {
			return nil
		}
		l, _ := lit.AsFloat()
		if math.IsNaN(l) {
			return nil
		}
		return floatEval(col.Floats(), op, l)
	case csr.ColString:
		l, ok := lit.AsString()
		if !ok {
			return nil
		}
		return stringEval(col.StrIDs(), snap.Strings(), op, l)
	case csr.ColBool:
		l, ok := lit.AsBool()
		if !ok {
			return nil
		}
		return boolEval(col, op, l)
	}
	return nil
}

func intEval(vals []int64, op ast.BinaryOp, l int64) func(int32) bool {
	switch op {
	case ast.OpEq:
		return func(o int32) bool { return vals[o] == l }
	case ast.OpNeq:
		return func(o int32) bool { return vals[o] != l }
	case ast.OpLt:
		return func(o int32) bool { return vals[o] < l }
	case ast.OpLe:
		return func(o int32) bool { return vals[o] <= l }
	case ast.OpGt:
		return func(o int32) bool { return vals[o] > l }
	case ast.OpGe:
		return func(o int32) bool { return vals[o] >= l }
	}
	return nil
}

// floatEval mirrors value.Compare's NaN ordering: a NaN payload sorts
// before every non-NaN literal, so it satisfies < and <= but never >,
// >= or =.
func floatEval(vals []float64, op ast.BinaryOp, l float64) func(int32) bool {
	switch op {
	case ast.OpEq:
		return func(o int32) bool { return vals[o] == l }
	case ast.OpNeq:
		return func(o int32) bool { return vals[o] != l }
	case ast.OpLt:
		return func(o int32) bool { return vals[o] < l || math.IsNaN(vals[o]) }
	case ast.OpLe:
		return func(o int32) bool { return vals[o] <= l || math.IsNaN(vals[o]) }
	case ast.OpGt:
		return func(o int32) bool { return vals[o] > l }
	case ast.OpGe:
		return func(o int32) bool { return vals[o] >= l }
	}
	return nil
}

// stringEval compares interned identifiers against the literal's
// position in the sorted string table: identifier order is
// lexicographic order, so every comparison is one or two integer
// tests. Identifiers at or past SortedCount — strings appended by
// incremental snapshot applies, outside the order invariant — fall
// back to direct string comparison; a snapshot from a full build has
// no such region and keeps the pure integer closures.
func stringEval(ids []int32, in *csr.Interner, op ast.BinaryOp, l string) func(int32) bool {
	sorted := in.SortedCount()
	allSorted := int(sorted) == in.Count()
	// Equality resolves through Lookup, which covers the extension
	// region too: string identity is interning identity everywhere.
	switch op {
	case ast.OpEq:
		id, ok := in.Lookup(l)
		if !ok {
			return func(int32) bool { return false }
		}
		return func(o int32) bool { return ids[o] == id }
	case ast.OpNeq:
		id, ok := in.Lookup(l)
		if !ok {
			return func(int32) bool { return true }
		}
		return func(o int32) bool { return ids[o] != id }
	}
	pos, exact := in.Bound(l)
	switch op {
	case ast.OpLt:
		if allSorted {
			return func(o int32) bool { return ids[o] < pos }
		}
		return func(o int32) bool {
			if ids[o] < sorted {
				return ids[o] < pos
			}
			return in.Name(ids[o]) < l
		}
	case ast.OpLe:
		// ids[o] <= pos when the literal itself is interned, else the
		// string at pos already exceeds the literal.
		hi := pos
		if !exact {
			hi = pos - 1
		}
		if allSorted {
			return func(o int32) bool { return ids[o] <= hi }
		}
		return func(o int32) bool {
			if ids[o] < sorted {
				return ids[o] <= hi
			}
			return in.Name(ids[o]) <= l
		}
	case ast.OpGt:
		lo := pos
		if exact {
			lo = pos + 1
		}
		if allSorted {
			return func(o int32) bool { return ids[o] >= lo }
		}
		return func(o int32) bool {
			if ids[o] < sorted {
				return ids[o] >= lo
			}
			return in.Name(ids[o]) > l
		}
	case ast.OpGe:
		if allSorted {
			return func(o int32) bool { return ids[o] >= pos }
		}
		return func(o int32) bool {
			if ids[o] < sorted {
				return ids[o] >= pos
			}
			return in.Name(ids[o]) >= l
		}
	}
	return nil
}

func boolEval(col *csr.PropCol, op ast.BinaryOp, l bool) func(int32) bool {
	// FALSE < TRUE, per value.Compare.
	switch op {
	case ast.OpEq:
		return func(o int32) bool { return col.BoolAt(o) == l }
	case ast.OpNeq:
		return func(o int32) bool { return col.BoolAt(o) != l }
	case ast.OpLt:
		return func(o int32) bool { return !col.BoolAt(o) && l }
	case ast.OpLe:
		return func(o int32) bool { return !col.BoolAt(o) || l }
	case ast.OpGt:
		return func(o int32) bool { return col.BoolAt(o) && !l }
	case ast.OpGe:
		return func(o int32) bool { return col.BoolAt(o) || !l }
	}
	return nil
}

// scanPrefilter selects the WHERE conjuncts a node scan may evaluate
// directly on candidate ordinals, before any row is materialised, and
// marks them applied. Consuming a conjunct here is safe only when no
// evaluation the interpreter would have run EARLIER on a dropped row
// can raise an error; the gates are therefore:
//
//   - the pattern has no {key = expr} filter specs (their expressions
//     are evaluated per candidate and may error),
//   - walking the conjuncts that the post-scan applyReady would find
//     ready, in order: compiled conjuncts on the scan variable are
//     consumed, compiled conjuncts on bind variables and label tests
//     (both error-free) are left to applyReady, and the first conjunct
//     that may error stops the walk — nothing after it pre-filters.
func (c *evalCtx) scanPrefilter(snap *csr.Snapshot, np *ast.NodePattern, varName string, conjs []*conjunct) []*boundPred {
	if DisablePropColumns || DisablePushdown || len(conjs) == 0 {
		return nil
	}
	for _, ps := range np.Props {
		if ps.Mode == ast.PropFilter {
			return nil
		}
	}
	schema := map[string]bool{varName: true}
	for _, ps := range np.Props {
		if ps.Mode == ast.PropBind {
			schema[ps.Var] = true
		}
	}
	var preds []*boundPred
	for _, cj := range conjs {
		if cj.applied || !cj.pushable {
			continue
		}
		ready := true
		for _, v := range cj.vars {
			if !schema[v] {
				ready = false
				break
			}
		}
		if !ready {
			// Not evaluated at this step at all — irrelevant to the
			// per-row evaluation order here.
			continue
		}
		if _, isLabel := cj.expr.(*ast.LabelTest); isLabel {
			continue // error-free; commutes with the prefilter
		}
		p := cj.colPred()
		if p == nil {
			break // may error: nothing after it may filter earlier
		}
		if p.v == varName && len(cj.vars) == 1 {
			preds = append(preds, bindColPred(snap, p))
			cj.applied = true
		}
		// Compiled conjuncts on bind variables are error-free too;
		// leave them to applyReady and keep walking.
	}
	return preds
}
