package core

import (
	"math"
	"sort"
	"strings"

	"gcore/internal/ast"
	"gcore/internal/bindings"
	"gcore/internal/csr"
	"gcore/internal/ppg"
	"gcore/internal/value"
)

// env is the evaluation environment of an expression (§A.1): the
// current binding µ, the graphs whose σ and λ resolve element
// references, the computed temp paths, and — inside CONSTRUCT — the
// group rows for aggregation and the under-construction graph for
// WHEN conditions that inspect just-assigned properties.
type env struct {
	c            *evalCtx
	s            *scope
	graphs       []*ppg.Graph
	patternGraph *ppg.Graph
	row          bindings.Binding

	// Columnar row dispatch: when rowTab is non-nil the current µ is
	// row rowIdx of rowTab and variable reads go through the slot
	// table instead of materialising a map per row (the hot filter
	// paths). Code that installs a map row into row must leave rowTab
	// nil (or clear it) so lookup sees the right µ.
	rowTab *bindings.Table
	rowIdx int

	// Aggregation context (CONSTRUCT property assignments, SET, WHEN).
	groupRows   []bindings.Binding
	groupSchema []string

	// The graph being constructed, consulted first for property and
	// label lookups so WHEN can see fresh assignments.
	constructed *ppg.Graph

	// Cached CSR snapshot of graphs[0] for columnar property reads
	// (lookupProp); resolved lazily on the first property access.
	colSnap    *csr.Snapshot
	colSnapSet bool
}

func (c *evalCtx) newEnv(s *scope, graphs []*ppg.Graph, patternGraph *ppg.Graph) *env {
	return &env{c: c, s: s, graphs: graphs, patternGraph: patternGraph}
}

// lookup resolves a variable in the current binding µ.
func (e *env) lookup(name string) (value.Value, bool) {
	if e.rowTab != nil {
		return e.rowTab.Value(e.rowIdx, name)
	}
	v, ok := e.row[name]
	return v, ok
}

// outerRowTable materialises the current µ as a one-row table — the
// outer table Ω′ of a correlated subquery.
func (e *env) outerRowTable() *bindings.Table {
	if e.rowTab != nil {
		return e.rowTab.RowTable(e.rowIdx)
	}
	return bindings.NewTable(e.row.Vars(), e.row)
}

// allGraphs yields the graphs to consult for element lookups, nearest
// first: the graph under construction, the graphs of the current
// match, query-local GRAPH bindings, and finally every catalog graph.
// Identifiers are engine-unique, so the first hit is the only one —
// the fallback matters for correlated subqueries whose outer bindings
// reference elements of other graphs.
func (e *env) allGraphs(yield func(*ppg.Graph) bool) {
	if e.constructed != nil && !yield(e.constructed) {
		return
	}
	for _, g := range e.graphs {
		if !yield(g) {
			return
		}
	}
	for s := e.s; s != nil; s = s.parent {
		names := make([]string, 0, len(s.graphs))
		for name := range s.graphs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if !yield(s.graphs[name]) {
				return
			}
		}
	}
	for _, name := range e.c.ev.cat.GraphNames() {
		if g, ok := e.c.ev.cat.Graph(name); ok {
			if !yield(g) {
				return
			}
		}
	}
}

// lookupLabels resolves λ(x) across the graphs in scope.
func (e *env) lookupLabels(ref value.Value) (ppg.Labels, bool) {
	var out ppg.Labels
	found := false
	e.allGraphs(func(g *ppg.Graph) bool {
		if ls, ok := g.LabelsOf(ref); ok {
			out, found = ls, true
			return false
		}
		return true
	})
	if found {
		return out, true
	}
	if ref.Kind() == value.KindPath {
		if id, ok := ref.RefID(); ok {
			if tp, ok := e.c.tempPaths[ppg.PathID(id)]; ok {
				return tp.path.Labels, true
			}
		}
	}
	return nil, false
}

// lookupProp resolves σ(x, k) across the graphs in scope. When the
// ref belongs to the first graph consulted — no graph is under
// construction and the element is in graphs[0]'s snapshot — the read
// comes from the frozen property columns, which resolve identically
// to the interpreter walk (the first LabelsOf hit wins, and the
// columns mirror Properties.Get exactly); any other ref falls through
// to the walk.
func (e *env) lookupProp(ref value.Value, key string) value.Value {
	if !DisablePropColumns && !DisableCSR && e.constructed == nil && len(e.graphs) > 0 {
		if !e.colSnapSet {
			e.colSnapSet = true
			// csr.Of, not snapOf: the cache counters must stay
			// parallelism-invariant, and environments are per-chunk.
			e.colSnap = csr.Of(e.graphs[0])
		}
		if snap := e.colSnap; snap != nil {
			if id, ok := ref.RefID(); ok {
				switch ref.Kind() {
				case value.KindNode:
					if u, ok := snap.Ord(ppg.NodeID(id)); ok {
						return snap.NodeProp(u, key)
					}
				case value.KindEdge:
					if ed, ok := snap.EdgeOrd(ppg.EdgeID(id)); ok {
						return snap.EdgeProp(ed, key)
					}
				}
			}
		}
	}
	var out value.Value
	found := false
	e.allGraphs(func(g *ppg.Graph) bool {
		if _, ok := g.LabelsOf(ref); ok {
			out, _ = g.PropOf(ref, key)
			found = true
			return false
		}
		return true
	})
	if found {
		return out
	}
	if ref.Kind() == value.KindPath {
		if id, ok := ref.RefID(); ok {
			if tp, ok := e.c.tempPaths[ppg.PathID(id)]; ok {
				return tp.path.Props.Get(key)
			}
		}
	}
	return value.EmptySet
}

// lookupPathElements resolves nodes()/edges() for stored and temp
// paths.
func (e *env) lookupPathElements(ref value.Value) (*ppg.Path, bool) {
	id, ok := ref.RefID()
	if !ok || ref.Kind() != value.KindPath {
		return nil, false
	}
	var out *ppg.Path
	e.allGraphs(func(g *ppg.Graph) bool {
		if p, ok := g.Path(ppg.PathID(id)); ok {
			out = p
			return false
		}
		return true
	})
	if out != nil {
		return out, true
	}
	if tp, ok := e.c.tempPaths[ppg.PathID(id)]; ok {
		return tp.path, true
	}
	return nil, false
}

// eval evaluates an expression under the environment. Unbound
// variables and missing properties evaluate to the absent value, so
// WHERE silently filters incomplete bindings (§3).
func (e *env) eval(x ast.Expr) (value.Value, error) {
	switch n := x.(type) {
	case nil:
		return value.Null, nil
	case *ast.Literal:
		return n.Val, nil
	case *ast.Param:
		if v, ok := e.c.params[n.Name]; ok {
			return v, nil
		}
		return value.Null, errf("unbound parameter $%s", n.Name)
	case *ast.VarRef:
		if v, ok := e.lookup(n.Name); ok {
			return v, nil
		}
		return value.Null, nil
	case *ast.PropAccess:
		ref, ok := e.lookup(n.Var)
		if !ok {
			return value.Null, nil
		}
		if !ref.IsRef() {
			return value.Null, nil
		}
		return e.lookupProp(ref, n.Key), nil
	case *ast.LabelTest:
		ref, ok := e.lookup(n.Var)
		if !ok || !ref.IsRef() {
			return value.False, nil
		}
		ls, ok := e.lookupLabels(ref)
		if !ok {
			return value.False, nil
		}
		for _, l := range n.Labels {
			if ls.Has(l) {
				return value.True, nil
			}
		}
		return value.False, nil
	case *ast.Unary:
		v, err := e.eval(n.X)
		if err != nil {
			return value.Null, err
		}
		if n.Op == ast.OpNot {
			return value.Not(v)
		}
		return value.Neg(v)
	case *ast.Binary:
		return e.evalBinary(n)
	case *ast.FuncCall:
		return e.evalFunc(n)
	case *ast.Index:
		base, err := e.eval(n.Base)
		if err != nil {
			return value.Null, err
		}
		idx, err := e.eval(n.Idx)
		if err != nil {
			return value.Null, err
		}
		i, ok := idx.Scalarize().AsInt()
		if !ok {
			return value.Null, errf("index must be an integer, got %s", idx.Kind())
		}
		return base.Index(int(i)), nil
	case *ast.Case:
		return e.evalCase(n)
	case *ast.Exists:
		return e.evalExists(n.Query)
	case *ast.PatternPred:
		return e.evalPatternPred(n.Pattern)
	}
	return value.Null, errf("unknown expression node %T", x)
}

func (e *env) evalBinary(n *ast.Binary) (value.Value, error) {
	l, err := e.eval(n.L)
	if err != nil {
		return value.Null, err
	}
	// AND/OR evaluate both sides (no short-circuit needed: the
	// language is side-effect free), but keep errors precise.
	r, err := e.eval(n.R)
	if err != nil {
		return value.Null, err
	}
	switch n.Op {
	case ast.OpOr:
		return value.Or(l, r)
	case ast.OpAnd:
		return value.And(l, r)
	case ast.OpEq:
		return value.Eq(l, r), nil
	case ast.OpNeq:
		return value.Neq(l, r), nil
	case ast.OpLt:
		return value.Lt(l, r), nil
	case ast.OpLe:
		return value.Le(l, r), nil
	case ast.OpGt:
		return value.Gt(l, r), nil
	case ast.OpGe:
		return value.Ge(l, r), nil
	case ast.OpIn:
		return value.In(l, r), nil
	case ast.OpSubset:
		return value.Subset(l, r), nil
	case ast.OpAdd:
		return value.Add(l, r)
	case ast.OpSub:
		return value.Sub(l, r)
	case ast.OpMul:
		return value.Mul(l, r)
	case ast.OpDiv:
		return value.Div(l, r)
	case ast.OpMod:
		return value.Mod(l, r)
	}
	return value.Null, errf("unknown binary operator %v", n.Op)
}

func (e *env) evalCase(n *ast.Case) (value.Value, error) {
	var operand value.Value
	if n.Operand != nil {
		v, err := e.eval(n.Operand)
		if err != nil {
			return value.Null, err
		}
		operand = v
	}
	for _, w := range n.Whens {
		cond, err := e.eval(w.Cond)
		if err != nil {
			return value.Null, err
		}
		var hit bool
		if n.Operand != nil {
			hit, _ = value.Eq(operand, cond).AsBool()
		} else {
			hit, err = value.Truth(cond)
			if err != nil {
				return value.Null, err
			}
		}
		if hit {
			return e.eval(w.Then)
		}
	}
	if n.Else != nil {
		return e.eval(n.Else)
	}
	return value.Null, nil
}

// aggName resolves an aggregation function name.
func aggName(name string) (value.AggKind, bool) {
	return value.ParseAggKind(name)
}

func (e *env) evalFunc(n *ast.FuncCall) (value.Value, error) {
	if kind, isAgg := aggName(n.Name); isAgg {
		return e.evalAggregate(n, kind)
	}
	args := make([]value.Value, len(n.Args))
	for i, a := range n.Args {
		v, err := e.eval(a)
		if err != nil {
			return value.Null, err
		}
		args[i] = v
	}
	need := func(k int) error {
		if len(args) != k {
			return errf("%s expects %d argument(s), got %d", n.Name, k, len(args))
		}
		return nil
	}
	switch n.Name {
	case "labels":
		if err := need(1); err != nil {
			return value.Null, err
		}
		ls, ok := e.lookupLabels(args[0])
		if !ok {
			return value.Null, nil
		}
		vals := make([]value.Value, len(ls))
		for i, l := range ls {
			vals[i] = value.Str(l)
		}
		return value.Set(vals...), nil
	case "nodes", "edges":
		if err := need(1); err != nil {
			return value.Null, err
		}
		p, ok := e.lookupPathElements(args[0])
		if !ok {
			return value.Null, nil
		}
		var vals []value.Value
		if n.Name == "nodes" {
			for _, id := range p.Nodes {
				vals = append(vals, value.NodeRef(uint64(id)))
			}
		} else {
			for _, id := range p.Edges {
				vals = append(vals, value.EdgeRef(uint64(id)))
			}
		}
		return value.List(vals...), nil
	case "size", "length":
		if err := need(1); err != nil {
			return value.Null, err
		}
		if args[0].Kind() == value.KindPath {
			if p, ok := e.lookupPathElements(args[0]); ok {
				return value.Int(int64(p.Length())), nil
			}
		}
		if l := args[0].Len(); l >= 0 {
			return value.Int(int64(l)), nil
		}
		return value.Null, errf("%s is not defined for %s", n.Name, args[0].Kind())
	case "cost":
		if err := need(1); err != nil {
			return value.Null, err
		}
		id, ok := args[0].RefID()
		if !ok || args[0].Kind() != value.KindPath {
			return value.Null, errf("cost expects a path")
		}
		if tp, ok := e.c.tempPaths[ppg.PathID(id)]; ok {
			return value.Float(tp.cost), nil
		}
		if p, ok := e.lookupPathElements(args[0]); ok {
			return value.Int(int64(p.Length())), nil
		}
		return value.Null, nil
	case "id":
		if err := need(1); err != nil {
			return value.Null, err
		}
		id, ok := args[0].RefID()
		if !ok {
			return value.Null, errf("id expects a graph element")
		}
		return value.Int(int64(id)), nil
	case "tostring":
		if err := need(1); err != nil {
			return value.Null, err
		}
		v := args[0].Scalarize()
		if s, ok := v.AsString(); ok {
			return value.Str(s), nil
		}
		return value.Str(v.String()), nil
	case "tointeger":
		if err := need(1); err != nil {
			return value.Null, err
		}
		v := args[0].Scalarize()
		if i, ok := v.AsInt(); ok {
			return value.Int(i), nil
		}
		if f, ok := v.AsFloat(); ok {
			return value.Int(int64(f)), nil
		}
		return value.Null, nil
	case "tofloat":
		if err := need(1); err != nil {
			return value.Null, err
		}
		if f, ok := args[0].Scalarize().AsFloat(); ok {
			return value.Float(f), nil
		}
		return value.Null, nil
	case "upper", "lower", "trim":
		if err := need(1); err != nil {
			return value.Null, err
		}
		s, ok := args[0].Scalarize().AsString()
		if !ok {
			return value.Null, nil
		}
		switch n.Name {
		case "upper":
			return value.Str(strings.ToUpper(s)), nil
		case "lower":
			return value.Str(strings.ToLower(s)), nil
		default:
			return value.Str(strings.TrimSpace(s)), nil
		}
	case "contains", "startswith", "endswith":
		if err := need(2); err != nil {
			return value.Null, err
		}
		s, ok1 := args[0].Scalarize().AsString()
		sub, ok2 := args[1].Scalarize().AsString()
		if !ok1 || !ok2 {
			return value.Null, nil
		}
		switch n.Name {
		case "contains":
			return value.Bool(strings.Contains(s, sub)), nil
		case "startswith":
			return value.Bool(strings.HasPrefix(s, sub)), nil
		default:
			return value.Bool(strings.HasSuffix(s, sub)), nil
		}
	case "replace":
		if err := need(3); err != nil {
			return value.Null, err
		}
		s, ok1 := args[0].Scalarize().AsString()
		old, ok2 := args[1].Scalarize().AsString()
		nw, ok3 := args[2].Scalarize().AsString()
		if !ok1 || !ok2 || !ok3 {
			return value.Null, nil
		}
		return value.Str(strings.ReplaceAll(s, old, nw)), nil
	case "substring":
		// substring(s, start [, length]) with 0-based start.
		if len(args) != 2 && len(args) != 3 {
			return value.Null, errf("substring expects 2 or 3 arguments, got %d", len(args))
		}
		s, ok := args[0].Scalarize().AsString()
		if !ok {
			return value.Null, nil
		}
		start, ok := args[1].Scalarize().AsInt()
		if !ok || start < 0 {
			return value.Null, errf("substring start must be a non-negative integer")
		}
		if start > int64(len(s)) {
			return value.Str(""), nil
		}
		rest := s[start:]
		if len(args) == 3 {
			ln, ok := args[2].Scalarize().AsInt()
			if !ok || ln < 0 {
				return value.Null, errf("substring length must be a non-negative integer")
			}
			if ln < int64(len(rest)) {
				rest = rest[:ln]
			}
		}
		return value.Str(rest), nil
	case "abs", "floor", "ceil", "round", "sqrt":
		if err := need(1); err != nil {
			return value.Null, err
		}
		v := args[0].Scalarize()
		if v.IsNull() {
			return value.Null, nil
		}
		if i, ok := v.AsInt(); ok && n.Name == "abs" {
			if i < 0 {
				return value.Int(-i), nil
			}
			return value.Int(i), nil
		}
		f, ok := v.AsFloat()
		if !ok {
			return value.Null, errf("%s expects a number, got %s", n.Name, v.Kind())
		}
		switch n.Name {
		case "abs":
			return value.Float(math.Abs(f)), nil
		case "floor":
			return value.Int(int64(math.Floor(f))), nil
		case "ceil":
			return value.Int(int64(math.Ceil(f))), nil
		case "round":
			return value.Int(int64(math.Round(f))), nil
		default:
			if f < 0 {
				return value.Null, errf("sqrt of a negative number")
			}
			return value.Float(math.Sqrt(f)), nil
		}
	}
	return value.Null, errf("unknown function %s", n.Name)
}

// evalAggregate folds over the group rows (§A.3). COUNT(*) counts the
// bindings of the group that bind every variable of the match schema:
// a row produced by an unmatched OPTIONAL block leaves the optional
// variables unbound and therefore does not count — which is how the
// paper's nr_messages comes out 0 for people who never exchanged a
// message (§3, Fig. 5).
func (e *env) evalAggregate(n *ast.FuncCall, kind value.AggKind) (value.Value, error) {
	if e.groupRows == nil {
		return value.Null, errf("aggregation %s used outside a grouped CONSTRUCT context", strings.ToUpper(n.Name))
	}
	if n.Star {
		if kind != value.AggCount {
			return value.Null, errf("only COUNT accepts *")
		}
		count := int64(0)
		for _, r := range e.groupRows {
			full := true
			for _, v := range e.groupSchema {
				if _, ok := r[v]; !ok {
					full = false
					break
				}
			}
			if full {
				count++
			}
		}
		return value.Int(count), nil
	}
	if len(n.Args) != 1 {
		return value.Null, errf("%s expects exactly one argument", strings.ToUpper(n.Name))
	}
	saved, savedTab := e.row, e.rowTab
	e.rowTab = nil // group rows are map bindings; lookup must read them
	defer func() { e.row, e.rowTab = saved, savedTab }()
	var vals []value.Value
	for _, r := range e.groupRows {
		e.row = r
		v, err := e.eval(n.Args[0])
		if err != nil {
			return value.Null, err
		}
		vals = append(vals, v)
	}
	return value.Aggregate(kind, vals)
}

// evalExists evaluates EXISTS (query): true iff the subquery's graph
// is non-empty, with the current row as correlated outer bindings.
func (e *env) evalExists(q ast.Query) (value.Value, error) {
	s := e.s
	if s == nil {
		s = newScope(nil)
	}
	outer := e.outerRowTable()
	// Subquery operators record one level down (they run per row and
	// would otherwise swamp the top-level plan annotation).
	e.c.col.EnterSub()
	res, err := e.c.evalQuery(s, q, outer)
	e.c.col.ExitSub()
	if err != nil {
		return value.Null, err
	}
	if res.Graph == nil {
		return value.Null, errf("EXISTS subquery must be a graph query")
	}
	return value.Bool(!res.Graph.IsEmpty()), nil
}

// evalPatternPred evaluates an implicit existential pattern in WHERE
// (§3): the pattern is matched on the enclosing pattern's graph,
// correlated with the current row.
func (e *env) evalPatternPred(gp *ast.GraphPattern) (value.Value, error) {
	if e.patternGraph == nil {
		return value.Null, errf("no graph in scope for pattern predicate")
	}
	s := e.s
	if s == nil {
		s = newScope(nil)
	}
	e.c.col.EnterSub()
	tbl, err := e.c.evalGraphPattern(s, gp, e.patternGraph)
	e.c.col.ExitSub()
	if err != nil {
		return value.Null, err
	}
	outer := e.outerRowTable()
	joined := bindings.Join(tbl, outer)
	return value.Bool(joined.Len() > 0), nil
}
