package core

import (
	"fmt"
	"sort"
	"strings"

	"gcore/internal/ast"
	"gcore/internal/bindings"
	"gcore/internal/faultinject"
	"gcore/internal/ppg"
	"gcore/internal/value"
)

// CONSTRUCT evaluation (§A.3). Each basic construct runs in phases:
//
//  1. node constructs, grouped — by identity for bound variables, by
//     the explicit GROUP set, or per binding for unbound variables
//     (skolem identifiers new(x, Ω′(Γ)));
//  2. relationship constructs (edges, then stored/projected paths) on
//     the node-extended bindings, so new edges connect new nodes and
//     no dangling edges can arise;
//  3. the WHEN condition, evaluated per constructed object over its
//     group (with access to freshly assigned properties), dropping
//     failing objects and anything that would dangle.
//
// Item graphs and named graphs in the construct list are combined
// with the identity-respecting graph union of §A.5.

func (c *evalCtx) evalConstruct(s *scope, cc *ast.ConstructClause, tbl *bindings.Table, graphs []*ppg.Graph) (*ppg.Graph, error) {
	result := ppg.New("")
	// Named graphs union in directly; all pattern items evaluate
	// together so that construct variables occurring in several
	// patterns denote the same identities ("Unbound variables in a
	// CONSTRUCT are useful if they occur multiple times in the
	// construct patterns, in order to ensure that the same identities
	// will be used", §3).
	var patterns []*ast.ConstructItem
	for _, item := range cc.Items {
		if item.GraphName != "" {
			g, err := c.resolveGraphName(s, item.GraphName)
			if err != nil {
				return nil, err
			}
			result = ppg.Union("", result, g)
			continue
		}
		patterns = append(patterns, item)
	}
	if len(patterns) > 0 {
		g, err := c.evalConstructItems(s, patterns, tbl, graphs)
		if err != nil {
			return nil, err
		}
		result = ppg.Union("", result, g)
	}
	return result, nil
}

// builtObj records one constructed object for the WHEN phase.
type builtObj struct {
	sort    varSort
	id      uint64
	varName string
	rows    []int // indexes into the binding rows of the group
}

// assignments collected for one construct variable.
type assignSet struct {
	addLabels []string
	setItems  []*ast.SetItem
	removes   []*ast.RemoveItem
}

// itemCtx is the per-item evaluation state of one construct pattern.
type itemCtx struct {
	item    *ast.ConstructItem
	names   patternNames
	extra   map[string]*assignSet
	objects []*builtObj
}

func (c *evalCtx) evalConstructItems(s *scope, items []*ast.ConstructItem, tbl *bindings.Table, graphs []*ppg.Graph) (*ppg.Graph, error) {
	rows := tbl.Rows()
	schema := tbl.Vars()
	out := ppg.New("")
	env := c.newEnv(s, graphs, nil)
	env.constructed = out
	env.groupSchema = schema

	// rowBind maps each row index to the construct-variable bindings
	// produced for it (node, edge and path identities); it is shared
	// by all pattern items so repeated construct variables denote the
	// same identities.
	rowBind := make([]bindings.Binding, len(rows))
	for i := range rowBind {
		rowBind[i] = bindings.Binding{}
	}

	ics := make([]*itemCtx, len(items))
	for i, item := range items {
		ic := &itemCtx{item: item, names: c.patternVarNames(item.Pattern), extra: map[string]*assignSet{}}
		getAssign := func(v string) *assignSet {
			a, ok := ic.extra[v]
			if !ok {
				a = &assignSet{}
				ic.extra[v] = a
			}
			return a
		}
		for _, si := range item.Sets {
			a := getAssign(si.Var)
			if si.Label != "" {
				a.addLabels = append(a.addLabels, si.Label)
			} else {
				a.setItems = append(a.setItems, si)
			}
		}
		for _, ri := range item.Removes {
			getAssign(ri.Var).removes = append(getAssign(ri.Var).removes, ri)
		}
		ics[i] = ic
	}

	// ---- phase 1: node constructs across all items ----
	for _, ic := range ics {
		gp := ic.item.Pattern
		for ni, np := range gp.Nodes {
			varName := ic.names.node[ni]
			if rowBindHasVar(rowBind, varName) {
				continue // defined by an earlier occurrence: reference
			}
			groups, err := c.groupFor(env, rows, np.Var, np.Group, schema, tbl)
			if err != nil {
				return nil, err
			}
			for _, grp := range groups {
				if err := c.gov.Checkpoint(faultinject.SiteCoreConstruct); err != nil {
					return nil, err
				}
				rep := rows[grp.rows[0]]
				var (
					id     ppg.NodeID
					labels ppg.Labels
					props  ppg.Properties
				)
				bound := np.Var != "" && tbl.HasVar(np.Var)
				switch {
				case bound && !np.Copy:
					ref, ok := rep[np.Var]
					if !ok {
						continue // Ω′(x) undefined → G∅ for this group
					}
					if ref.Kind() != value.KindNode {
						return nil, errf("construct variable %q must be a node, got %s", np.Var, ref.Kind())
					}
					nid, _ := ref.RefID()
					id = ppg.NodeID(nid)
					src, _ := findNode(graphs, id)
					if src != nil {
						labels, props = src.Labels.Clone(), src.Props.Clone()
					} else {
						labels, props = ppg.Labels{}, ppg.Properties{}
					}
				case np.Copy:
					ref, ok := rep[np.Var]
					if !ok {
						continue
					}
					// The copy form mints a fresh node copying λ and σ
					// from any element sort (§3: "copy all labels and
					// properties of a node to an edge (or a path) and
					// vice versa").
					srcLabels, srcProps, found := c.findElementData(graphs, ref)
					if !found {
						return nil, errf("copy form (=%s) needs a bound graph element", np.Var)
					}
					id = c.ev.cat.IDs().NextNode()
					labels, props = srcLabels.Clone(), srcProps.Clone()
				default:
					id = c.ev.cat.IDs().NextNode()
					labels, props = ppg.Labels{}, ppg.Properties{}
				}
				labels = addPatternLabels(labels, np.Labels)
				if err := c.applyAssignments(env, rows, grp.rows, varName, &labels, props, np.Props, ic.extra[varName]); err != nil {
					return nil, err
				}
				if err := c.gov.AddResults(1); err != nil {
					return nil, err
				}
				ensureNode(out, &ppg.Node{ID: id, Labels: labels, Props: props})
				ic.objects = append(ic.objects, &builtObj{sort: sortNode, id: uint64(id), varName: varName, rows: grp.rows})
				for _, ri := range grp.rows {
					rowBind[ri][varName] = value.NodeRef(uint64(id))
				}
			}
		}
	}

	// ---- phase 2: relationship constructs across all items ----
	for _, ic := range ics {
		for li, link := range ic.item.Pattern.Links {
			switch ep := link.(type) {
			case *ast.EdgePattern:
				if err := c.constructEdge(env, out, ep, ic.names, li, rows, rowBind, tbl, graphs, ic.extra, &ic.objects); err != nil {
					return nil, err
				}
			case *ast.PathPattern:
				if err := c.constructPath(env, out, ep, ic.names, li, rows, rowBind, graphs, ic.extra, &ic.objects); err != nil {
					return nil, err
				}
			}
		}
	}

	// ---- phase 3: WHEN, per item, then one rebuild ----
	dropped := map[string]bool{}
	anyWhen := false
	for _, ic := range ics {
		if ic.item.When == nil {
			continue
		}
		anyWhen = true
		if err := c.whenDrops(env, ic.item.When, ic.objects, rows, rowBind, schema, dropped); err != nil {
			return nil, err
		}
	}
	if anyWhen {
		return rebuildWithoutDropped(out, dropped)
	}
	return out, nil
}

func rowBindHasVar(rowBind []bindings.Binding, v string) bool {
	for _, b := range rowBind {
		if _, ok := b[v]; ok {
			return true
		}
	}
	return false
}

// objGroup is one grouped equivalence class (indexes into rows).
type objGroup struct {
	key  string
	rows []int
}

// groupFor computes grp(Ω, g) for a construct element: identity
// grouping for bound variables, explicit GROUP expressions, or
// per-binding grouping for unbound variables.
func (c *evalCtx) groupFor(env *env, rows []bindings.Binding, varName string, groupExprs []ast.Expr, schema []string, tbl *bindings.Table) ([]objGroup, error) {
	keyFn := func(b bindings.Binding) (string, bool, error) {
		switch {
		case len(groupExprs) > 0:
			var sb strings.Builder
			saved := env.row
			env.row = b
			for _, ge := range groupExprs {
				v, err := env.eval(ge)
				if err != nil {
					env.row = saved
					return "", false, err
				}
				sb.WriteString(v.Key())
				sb.WriteByte('|')
			}
			env.row = saved
			return sb.String(), true, nil
		case varName != "" && tbl.HasVar(varName):
			v, ok := b[varName]
			if !ok {
				return "", false, nil // undefined identity: skip row
			}
			return v.Key(), true, nil
		default:
			return b.Key(schema), true, nil
		}
	}
	return groupIndexes(rows, keyFn)
}

func groupIndexes(rows []bindings.Binding, keyFn func(bindings.Binding) (string, bool, error)) ([]objGroup, error) {
	idx := map[string]int{}
	var groups []objGroup
	for i, r := range rows {
		k, ok, err := keyFn(r)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		gi, seen := idx[k]
		if !seen {
			gi = len(groups)
			idx[k] = gi
			groups = append(groups, objGroup{key: k})
		}
		groups[gi].rows = append(groups[gi].rows, i)
	}
	sort.SliceStable(groups, func(i, j int) bool { return groups[i].key < groups[j].key })
	return groups, nil
}

func addPatternLabels(ls ppg.Labels, spec ast.LabelSpec) ppg.Labels {
	for _, disj := range spec {
		for _, l := range disj {
			ls = ls.Add(l)
		}
	}
	return ls
}

// applyAssignments evaluates {k := e}, SET and REMOVE for one
// constructed object over its group.
func (c *evalCtx) applyAssignments(env *env, rows []bindings.Binding, grpRows []int, varName string, labels *ppg.Labels, props ppg.Properties, inline []*ast.PropSpec, a *assignSet) error {
	groupRows := make([]bindings.Binding, len(grpRows))
	for i, ri := range grpRows {
		groupRows[i] = rows[ri]
	}
	savedRows, savedRow := env.groupRows, env.row
	env.groupRows = groupRows
	if len(groupRows) > 0 {
		env.row = groupRows[0]
	} else {
		env.row = bindings.Empty()
	}
	defer func() { env.groupRows, env.row = savedRows, savedRow }()

	evalTo := func(key string, e ast.Expr) error {
		v, err := env.eval(e)
		if err != nil {
			return err
		}
		props.Set(key, v)
		return nil
	}
	for _, ps := range inline {
		switch ps.Mode {
		case ast.PropAssign:
			if err := evalTo(ps.Key, ps.Expr); err != nil {
				return err
			}
		case ast.PropFilter:
			// {k = literal} in CONSTRUCT assigns the literal, matching
			// the paper's permissive use of = in construct maps.
			if err := evalTo(ps.Key, ps.Expr); err != nil {
				return err
			}
		case ast.PropBind:
			// {k = v} with a variable: assign the variable's value.
			if v, ok := env.row[ps.Var]; ok {
				props.Set(ps.Key, v)
			}
		}
	}
	if a != nil {
		for _, l := range a.addLabels {
			*labels = labels.Add(l)
		}
		for _, si := range a.setItems {
			if err := evalTo(si.Key, si.Expr); err != nil {
				return err
			}
		}
		for _, ri := range a.removes {
			if ri.Key != "" {
				delete(props, ri.Key)
			}
			if ri.Label != "" {
				*labels = labels.Remove(ri.Label)
			}
		}
	}
	_ = varName
	return nil
}

// findElementData fetches λ and σ of any element reference — node,
// edge or (stored/computed) path — enabling the cross-sort copy forms
// of §3.
func (c *evalCtx) findElementData(graphs []*ppg.Graph, ref value.Value) (ppg.Labels, ppg.Properties, bool) {
	id, ok := ref.RefID()
	if !ok {
		return nil, nil, false
	}
	switch ref.Kind() {
	case value.KindNode:
		if n, _ := findNode(graphs, ppg.NodeID(id)); n != nil {
			return n.Labels, n.Props, true
		}
	case value.KindEdge:
		if e, _ := findEdge(graphs, ppg.EdgeID(id)); e != nil {
			return e.Labels, e.Props, true
		}
	case value.KindPath:
		for _, g := range graphs {
			if p, ok := g.Path(ppg.PathID(id)); ok {
				return p.Labels, p.Props, true
			}
		}
		if tp, ok := c.tempPaths[ppg.PathID(id)]; ok {
			return tp.path.Labels, tp.path.Props, true
		}
	}
	return nil, nil, false
}

func findNode(graphs []*ppg.Graph, id ppg.NodeID) (*ppg.Node, *ppg.Graph) {
	for _, g := range graphs {
		if n, ok := g.Node(id); ok {
			return n, g
		}
	}
	return nil, nil
}

func findEdge(graphs []*ppg.Graph, id ppg.EdgeID) (*ppg.Edge, *ppg.Graph) {
	for _, g := range graphs {
		if e, ok := g.Edge(id); ok {
			return e, g
		}
	}
	return nil, nil
}

// ensureNode adds or merges a node in the item graph. Label merges go
// through SetNodeLabels so the graph's label index stays consistent.
func ensureNode(g *ppg.Graph, n *ppg.Node) {
	if existing, ok := g.Node(n.ID); ok {
		if err := g.SetNodeLabels(n.ID, existing.Labels.Union(n.Labels)); err != nil {
			panic("core: ensureNode: " + err.Error())
		}
		for k, v := range n.Props {
			existing.Props[k] = v
		}
		if len(n.Props) > 0 {
			g.TouchProps()
		}
		return
	}
	if err := g.AddNode(n); err != nil {
		panic("core: ensureNode: " + err.Error())
	}
}

func ensureEdge(g *ppg.Graph, e *ppg.Edge) error {
	if existing, ok := g.Edge(e.ID); ok {
		if existing.Src != e.Src || existing.Dst != e.Dst {
			return errf("edge #%d constructed with conflicting endpoints", e.ID)
		}
		if err := g.SetEdgeLabels(e.ID, existing.Labels.Union(e.Labels)); err != nil {
			return errf("%v", err)
		}
		for k, v := range e.Props {
			existing.Props[k] = v
		}
		if len(e.Props) > 0 {
			g.TouchProps()
		}
		return nil
	}
	return g.AddEdge(e)
}

func ensurePath(g *ppg.Graph, p *ppg.Path) error {
	if _, ok := g.Path(p.ID); ok {
		return nil
	}
	return g.AddPath(p)
}

// constructEdge builds the edges of one edge pattern.
func (c *evalCtx) constructEdge(env *env, out *ppg.Graph, ep *ast.EdgePattern, names patternNames, li int, rows []bindings.Binding, rowBind []bindings.Binding, tbl *bindings.Table, graphs []*ppg.Graph, extra map[string]*assignSet, objects *[]*builtObj) error {
	if ep.Dir == ast.DirBoth {
		return errf("constructed edges need a direction: use -[...]-> or <-[...]-")
	}
	leftVar, rightVar := names.node[li], names.node[li+1]
	edgeVar := names.link[li]
	bound := ep.Var != "" && tbl.HasVar(ep.Var) && !ep.Copy

	// Group: bound edges by identity; otherwise by the constructed
	// endpoint pair (which subsumes Γx ∪ Γy ∪ {x,y}) plus explicit
	// GROUP expressions.
	keyFn := func(ri int) (string, bool, error) {
		b := rows[ri]
		if bound {
			v, ok := b[ep.Var]
			if !ok {
				return "", false, nil
			}
			return v.Key(), true, nil
		}
		sv, ok1 := rowBind[ri][leftVar]
		dv, ok2 := rowBind[ri][rightVar]
		if !ok1 || !ok2 {
			return "", false, nil // dangling prevention
		}
		key := sv.Key() + ">" + dv.Key()
		if len(ep.Group) > 0 {
			saved := env.row
			env.row = b
			for _, ge := range ep.Group {
				v, err := env.eval(ge)
				if err != nil {
					env.row = saved
					return "", false, err
				}
				key += "|" + v.Key()
			}
			env.row = saved
		}
		return key, true, nil
	}
	idx := map[string]int{}
	var groups []objGroup
	for ri := range rows {
		k, ok, err := keyFn(ri)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		gi, seen := idx[k]
		if !seen {
			gi = len(groups)
			idx[k] = gi
			groups = append(groups, objGroup{key: k})
		}
		groups[gi].rows = append(groups[gi].rows, ri)
	}
	sort.SliceStable(groups, func(i, j int) bool { return groups[i].key < groups[j].key })

	for _, grp := range groups {
		if err := c.gov.Checkpoint(faultinject.SiteCoreConstruct); err != nil {
			return err
		}
		rep := grp.rows[0]
		sv, ok1 := rowBind[rep][leftVar]
		dv, ok2 := rowBind[rep][rightVar]
		if !ok1 || !ok2 {
			continue
		}
		sid, _ := sv.RefID()
		did, _ := dv.RefID()
		src, dst := ppg.NodeID(sid), ppg.NodeID(did)
		if ep.Dir == ast.DirIn {
			src, dst = dst, src
		}
		var (
			id     ppg.EdgeID
			labels ppg.Labels
			props  ppg.Properties
		)
		switch {
		case bound:
			ref := rows[rep][ep.Var]
			if ref.Kind() != value.KindEdge {
				return errf("construct variable %q must be an edge, got %s", ep.Var, ref.Kind())
			}
			eid, _ := ref.RefID()
			id = ppg.EdgeID(eid)
			srcEdge, _ := findEdge(graphs, id)
			if srcEdge == nil {
				return errf("bound edge #%d not found in the matched graphs", eid)
			}
			// Identity restriction (§3): the endpoints of a bound edge
			// cannot be changed.
			if srcEdge.Src != src || srcEdge.Dst != dst {
				return errf("edge %s is bound to #%d with endpoints (#%d,#%d); constructing it between #%d and #%d would violate its identity (use [=%s] to copy instead)",
					ep.Var, eid, srcEdge.Src, srcEdge.Dst, src, dst, ep.Var)
			}
			labels, props = srcEdge.Labels.Clone(), srcEdge.Props.Clone()
		case ep.Copy:
			ref, ok := rows[rep][ep.Var]
			if !ok {
				continue
			}
			srcLabels, srcProps, found := c.findElementData(graphs, ref)
			if !found {
				return errf("copy form [=%s] needs a bound graph element", ep.Var)
			}
			id = c.ev.cat.IDs().NextEdge()
			labels, props = srcLabels.Clone(), srcProps.Clone()
		default:
			id = c.ev.cat.IDs().NextEdge()
			labels, props = ppg.Labels{}, ppg.Properties{}
		}
		labels = addPatternLabels(labels, ep.Labels)
		if err := c.applyAssignments(env, rows, grp.rows, edgeVar, &labels, props, ep.Props, extra[edgeVar]); err != nil {
			return err
		}
		// Endpoint nodes must exist in the item graph: bound-identity
		// nodes were added in phase 1 for exactly the surviving rows.
		if _, ok := out.Node(src); !ok {
			continue
		}
		if _, ok := out.Node(dst); !ok {
			continue
		}
		if err := c.gov.AddResults(1); err != nil {
			return err
		}
		if err := ensureEdge(out, &ppg.Edge{ID: id, Src: src, Dst: dst, Labels: labels, Props: props}); err != nil {
			return err
		}
		*objects = append(*objects, &builtObj{sort: sortEdge, id: uint64(id), varName: edgeVar, rows: grp.rows})
		for _, ri := range grp.rows {
			rowBind[ri][edgeVar] = value.EdgeRef(uint64(id))
		}
	}
	return nil
}

// constructPath builds stored paths (-/@p:label{...}/->) and graph
// projections (-/p/->) in CONSTRUCT position.
func (c *evalCtx) constructPath(env *env, out *ppg.Graph, pp *ast.PathPattern, names patternNames, li int, rows []bindings.Binding, rowBind []bindings.Binding, graphs []*ppg.Graph, extra map[string]*assignSet, objects *[]*builtObj) error {
	pathVar := names.link[li]
	if pp.Var == "" {
		return errf("a path in CONSTRUCT position needs a bound path variable")
	}
	if pp.Regex != nil {
		return errf("regular expressions are not allowed in CONSTRUCT path patterns")
	}
	// Group by path identity.
	groups, err := groupIndexes(rows, func(b bindings.Binding) (string, bool, error) {
		v, ok := b[pp.Var]
		if !ok {
			return "", false, nil
		}
		return v.Key(), true, nil
	})
	if err != nil {
		return err
	}
	for _, grp := range groups {
		if err := c.gov.Checkpoint(faultinject.SiteCoreConstruct); err != nil {
			return err
		}
		rep := rows[grp.rows[0]]
		ref := rep[pp.Var]
		if ref.Kind() != value.KindPath {
			return errf("construct variable %q must be a path, got %s", pp.Var, ref.Kind())
		}
		pid, _ := ref.RefID()

		// Resolve the path object and its source graph.
		var (
			pobj       *ppg.Path
			srcGraph   *ppg.Graph
			projection bool
			cost       float64
			isTemp     bool
		)
		if tp, ok := c.tempPaths[ppg.PathID(pid)]; ok {
			pobj, srcGraph, projection, cost, isTemp = tp.path, tp.src, tp.projection, tp.cost, true
		} else {
			for _, g := range graphs {
				if p, ok := g.Path(ppg.PathID(pid)); ok {
					pobj, srcGraph = p, g
					break
				}
			}
		}
		if pobj == nil {
			return errf("path #%d is not visible in the matched graphs", pid)
		}
		_ = cost

		// Copy constituents into the item graph.
		for _, nid := range pobj.Nodes {
			if _, ok := out.Node(nid); ok {
				continue
			}
			n, _ := srcGraph.Node(nid)
			if n == nil {
				return errf("path #%d references node #%d outside its source graph", pid, nid)
			}
			if err := c.gov.AddResults(1); err != nil {
				return err
			}
			ensureNode(out, n.Clone())
		}
		for _, eid := range pobj.Edges {
			if _, ok := out.Edge(eid); ok {
				continue
			}
			e, _ := srcGraph.Edge(eid)
			if e == nil {
				return errf("path #%d references edge #%d outside its source graph", pid, eid)
			}
			if err := c.gov.AddResults(1); err != nil {
				return err
			}
			if err := ensureEdge(out, e.Clone()); err != nil {
				return err
			}
		}
		if !pp.Stored {
			continue // pure projection: no path object in the result
		}
		if projection {
			return errf("path variable %q holds an ALL-paths projection and cannot be stored", pp.Var)
		}
		labels := ppg.Labels{}
		props := ppg.Properties{}
		if !isTemp {
			labels, props = pobj.Labels.Clone(), pobj.Props.Clone()
		}
		labels = addPatternLabels(labels, pp.Labels)
		if err := c.applyAssignments(env, rows, grp.rows, pathVar, &labels, props, pp.Props, extra[pathVar]); err != nil {
			return err
		}
		stored := &ppg.Path{
			ID:     ppg.PathID(pid),
			Nodes:  append([]ppg.NodeID(nil), pobj.Nodes...),
			Edges:  append([]ppg.EdgeID(nil), pobj.Edges...),
			Labels: labels,
			Props:  props,
		}
		if err := c.gov.AddResults(1); err != nil {
			return err
		}
		if err := ensurePath(out, stored); err != nil {
			return err
		}
		*objects = append(*objects, &builtObj{sort: sortPath, id: pid, varName: pathVar, rows: grp.rows})
		for _, ri := range grp.rows {
			rowBind[ri][pathVar] = value.PathRef(pid)
		}
	}
	return nil
}

func dropKey(s varSort, id uint64) string {
	return fmt.Sprintf("%d:%d", s, id)
}

// whenDrops evaluates a WHEN condition per constructed object of one
// item, over the object's group extended with all construct bindings,
// and records failing objects.
func (c *evalCtx) whenDrops(env *env, when ast.Expr, objects []*builtObj, rows []bindings.Binding, rowBind []bindings.Binding, schema []string, dropped map[string]bool) error {
	savedRows, savedRow, savedSchema := env.groupRows, env.row, env.groupSchema
	defer func() { env.groupRows, env.row, env.groupSchema = savedRows, savedRow, savedSchema }()

	for _, obj := range objects {
		groupRows := make([]bindings.Binding, len(obj.rows))
		for i, ri := range obj.rows {
			groupRows[i] = bindings.Merge(rows[ri], rowBind[ri])
		}
		env.groupRows = groupRows
		env.groupSchema = schema
		if len(groupRows) > 0 {
			env.row = groupRows[0]
		} else {
			env.row = bindings.Empty()
		}
		v, err := env.eval(when)
		if err != nil {
			return err
		}
		keep, err := value.Truth(v)
		if err != nil {
			return err
		}
		if !keep {
			dropped[dropKey(obj.sort, obj.id)] = true
		}
	}
	return nil
}

// rebuildWithoutDropped rebuilds the constructed graph without the
// dropped objects; edges whose endpoints vanished and paths whose
// constituents vanished go too (no dangling elements, ever).
func rebuildWithoutDropped(built *ppg.Graph, dropped map[string]bool) (*ppg.Graph, error) {
	out := ppg.New(built.Name())
	for _, id := range built.NodeIDs() {
		if dropped[dropKey(sortNode, uint64(id))] {
			continue
		}
		n, _ := built.Node(id)
		ensureNode(out, n.Clone())
	}
	for _, id := range built.EdgeIDs() {
		if dropped[dropKey(sortEdge, uint64(id))] {
			continue
		}
		e, _ := built.Edge(id)
		if _, ok := out.Node(e.Src); !ok {
			continue
		}
		if _, ok := out.Node(e.Dst); !ok {
			continue
		}
		if err := ensureEdge(out, e.Clone()); err != nil {
			return nil, err
		}
	}
	for _, id := range built.PathIDs() {
		if dropped[dropKey(sortPath, uint64(id))] {
			continue
		}
		p, _ := built.Path(id)
		if err := ensurePath(out, p.Clone()); err != nil {
			continue // constituents dropped: the path goes too
		}
	}
	return out, nil
}
