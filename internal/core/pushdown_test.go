package core_test

import (
	"testing"

	"gcore/internal/catalog"
	"gcore/internal/core"
	"gcore/internal/parser"
	"gcore/internal/snb"
)

// TestPushdownEquivalence runs a battery of queries with predicate
// pushdown enabled and disabled; the results must be byte-identical.
// This is the correctness argument for the optimisation, executed.
func TestPushdownEquivalence(t *testing.T) {
	queries := []string{
		parser.PaperQueries["L01"],
		parser.PaperQueries["L05"],
		parser.PaperQueries["L10"],
		parser.PaperQueries["L15"],
		parser.PaperQueries["L20"],
		parser.PaperQueries["L23"],
		parser.PaperQueries["L28"],
		parser.PaperQueries["L32"],
		parser.PaperQueries["L72"],
		// Conjuncts across chains, optional blocks, subqueries.
		`SELECT n.firstName AS a, m.firstName AS b
MATCH (n:Person), (m:Person)
WHERE n.employer = 'Acme' AND m.employer = 'HAL' AND NOT n = m
ORDER BY a, b`,
		`SELECT n.firstName AS a, COUNT(*) AS c
MATCH (n:Person)-[:knows]->(m:Person)
WHERE (m)-[:isLocatedIn]->() AND size(n.employer) > 0
ORDER BY a`,
		`CONSTRUCT (n)
MATCH (n:Person)
WHERE EXISTS (CONSTRUCT () MATCH (n)-[:hasInterest]->(:Tag {name='Wagner'}))
OPTIONAL (n)-[:knows]->(f) WHERE (f:Person)`,
	}
	render := func(disable bool, src string) string {
		core.DisablePushdown = disable
		defer func() { core.DisablePushdown = false }()
		ev := newToy(t)
		stmt, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		res, err := ev.EvalStatement(stmt)
		if err != nil {
			t.Fatalf("eval (pushdown disabled=%v): %v\n%s", disable, err, src)
		}
		if res.Table != nil {
			return res.Table.Sorted().String()
		}
		data, err := res.Graph.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	for _, src := range queries {
		on := render(false, src)
		off := render(true, src)
		if on != off {
			t.Errorf("pushdown changed the result of:\n%s\nwith:\n%s\nwithout:\n%s", src, on, off)
		}
	}
}

// TestPushdownEquivalenceGenerated repeats the check on generated
// graphs of a few seeds.
func TestPushdownEquivalenceGenerated(t *testing.T) {
	query := `SELECT n.firstName AS a, m.firstName AS b
MATCH (n:Person)-/SHORTEST q<:knows*> COST c/->(m:Person)
WHERE n.anchor = TRUE AND c < 3
ORDER BY a, b`
	for seed := int64(1); seed <= 3; seed++ {
		render := func(disable bool) string {
			core.DisablePushdown = disable
			defer func() { core.DisablePushdown = false }()
			cat := catalog.New()
			ds := snb.Generate(snb.Config{Persons: 25, Seed: seed}, cat.IDs())
			if err := cat.RegisterGraph(ds.Social); err != nil {
				t.Fatal(err)
			}
			ev := core.New(cat)
			stmt, err := parser.Parse(query)
			if err != nil {
				t.Fatal(err)
			}
			res, err := ev.EvalStatement(stmt)
			if err != nil {
				t.Fatal(err)
			}
			return res.Table.Sorted().String()
		}
		if on, off := render(false), render(true); on != off {
			t.Errorf("seed %d: pushdown changed results\nwith:\n%s\nwithout:\n%s", seed, on, off)
		}
	}
}
