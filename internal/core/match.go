package core

import (
	"math"
	"sort"

	"gcore/internal/ast"
	"gcore/internal/bindings"
	"gcore/internal/faultinject"
	"gcore/internal/obs"
	"gcore/internal/ppg"
	"gcore/internal/value"
)

// checkStride is how many trivial per-element iterations a hot loop
// runs between governor checkpoints: small enough that cancellation
// lands within one checkpoint interval, large enough that the
// non-blocking context poll stays invisible in profiles.
const checkStride = 256

// mergeBudget folds chunk outputs into a table in input order,
// enforcing the bindings budget after each chunk so an overflowing
// materialisation aborts early — at the same logical point on the
// legacy and CSR paths (the chunks are identical row for row).
func (c *evalCtx) mergeBudget(tbl *bindings.Table, parts [][]bindings.Binding) (*bindings.Table, error) {
	for _, part := range parts {
		for _, row := range part {
			tbl.Add(row)
		}
		if err := c.checkBudget(tbl); err != nil {
			return nil, err
		}
	}
	return tbl, nil
}

// mergeSlabs is mergeBudget for dense row slabs: each chunk's slab is
// a block copy into the table, with the budget enforced at the same
// per-chunk boundary.
func (c *evalCtx) mergeSlabs(tbl *bindings.Table, parts [][]value.Value) (*bindings.Table, error) {
	for _, part := range parts {
		tbl.AppendSlab(part)
		if err := c.checkBudget(tbl); err != nil {
			return nil, err
		}
	}
	return tbl, nil
}

// evalMatch computes the binding table of a MATCH clause (§A.2):
// located patterns are evaluated on their graphs and joined; the
// result is correlated with the outer bindings, filtered by WHERE,
// and extended by the OPTIONAL blocks as ordered left-outer joins.
// It returns the table together with the graphs involved (used to
// resolve element labels and properties in later expressions).
func (c *evalCtx) evalMatch(s *scope, mc *ast.MatchClause, outer *bindings.Table) (*bindings.Table, []*ppg.Graph, error) {
	var (
		tbl    *bindings.Table
		graphs []*ppg.Graph
	)
	// Pure conjuncts of WHERE are pushed into the pattern chains and
	// applied as soon as their variables are bound — before expensive
	// path searches — which is semantically transparent (§A.2: the
	// filter is a per-row predicate over its own variables).
	conjs := c.prepareConjunctsCached(mc.Where)
	// Evaluate every conjunct pattern in textual order (stable
	// anonymous numbering), then fold the joins smallest estimate
	// first — hidden row ordinals restore the textual fold order so
	// downstream row-order-sensitive stages (CONSTRUCT identity
	// assignment, canonical output order) see identical tables.
	var (
		tables []*bindings.Table
		ests   []int
	)
	for _, lp := range mc.Patterns {
		g, err := c.resolveLocation(s, lp)
		if err != nil {
			return nil, nil, err
		}
		graphs = append(graphs, g)
		t, est, err := c.evalChainPlanned(s, lp.Pattern, g, conjs)
		if err != nil {
			return nil, nil, err
		}
		if lp.OnQuery != nil {
			// EXPLAIN cannot see into ON (subquery) graphs; keep the
			// runtime decision aligned with the surfaced plan.
			est = math.MaxInt
		}
		tables = append(tables, t)
		ests = append(ests, est)
	}
	var err error
	if len(tables) > 1 {
		// The join span covers only multi-pattern folds, matching the
		// one "join order" line EXPLAIN prints in that case.
		jsp := c.col.Start(obs.OpJoin)
		if jsp.Verbose() {
			jsp.SetLabel("conjunct join fold")
		}
		var rowsIn int64
		for _, t := range tables {
			rowsIn += int64(t.Len())
		}
		tbl, err = c.foldConjuncts(tables, ests)
		if err != nil {
			jsp.Fail()
			return nil, nil, err
		}
		jsp.Rows(rowsIn, int64(tbl.Len())).End()
	} else {
		tbl, err = c.foldConjuncts(tables, ests)
		if err != nil {
			return nil, nil, err
		}
	}
	// Correlate with the outer query's bindings (Jγ0KΩ,G semantics).
	tbl, err = c.joinBudget(tbl, outer)
	if err != nil {
		return nil, nil, err
	}

	patternGraph := c.defaultGraphOrNil()
	if len(graphs) > 0 {
		patternGraph = graphs[0]
	}
	if mc.Where != nil {
		env := c.newEnv(s, graphs, patternGraph)
		// Span only when conjuncts remain, matching the one "residual
		// filter" line EXPLAIN prints in that case.
		var rsp *obs.ActiveSpan
		if anyUnapplied(conjs) {
			rsp = c.col.Start(obs.OpResidual)
			if rsp.Verbose() {
				rsp.SetLabel("residual filter")
			}
		}
		rowsIn := int64(tbl.Len())
		filtered, err := c.residualFilter(conjs, tbl, env)
		if err != nil {
			rsp.Fail()
			return nil, nil, err
		}
		rsp.Rows(rowsIn, int64(filtered.Len())).End()
		tbl = filtered
	}
	for _, ob := range mc.Optionals {
		// The left-join span brackets the whole block: its chains,
		// fold, block filter and the outer join itself.
		osp := c.col.Start(obs.OpLeftJoin)
		if osp.Verbose() {
			osp.SetLabel("OPTIONAL left join")
		}
		rowsIn := int64(tbl.Len())
		bGraphs := []*ppg.Graph{}
		bConjs := c.prepareConjunctsCached(ob.Where)
		var (
			bTables []*bindings.Table
			bEsts   []int
		)
		for _, lp := range ob.Patterns {
			g, err := c.resolveLocation(s, lp)
			if err != nil {
				osp.Fail()
				return nil, nil, err
			}
			bGraphs = append(bGraphs, g)
			t, est, err := c.evalChainPlanned(s, lp.Pattern, g, bConjs)
			if err != nil {
				osp.Fail()
				return nil, nil, err
			}
			if lp.OnQuery != nil {
				est = math.MaxInt
			}
			bTables = append(bTables, t)
			bEsts = append(bEsts, est)
		}
		var bt *bindings.Table
		var err error
		if len(bTables) > 1 {
			jsp := c.col.Start(obs.OpJoin)
			if jsp.Verbose() {
				jsp.SetLabel("conjunct join fold")
			}
			var jIn int64
			for _, t := range bTables {
				jIn += int64(t.Len())
			}
			bt, err = c.foldConjuncts(bTables, bEsts)
			if err != nil {
				jsp.Fail()
				osp.Fail()
				return nil, nil, err
			}
			jsp.Rows(jIn, int64(bt.Len())).End()
		} else {
			bt, err = c.foldConjuncts(bTables, bEsts)
			if err != nil {
				osp.Fail()
				return nil, nil, err
			}
		}
		if ob.Where != nil {
			bg := patternGraph
			if len(bGraphs) > 0 {
				bg = bGraphs[0]
			}
			env := c.newEnv(s, append(append([]*ppg.Graph{}, graphs...), bGraphs...), bg)
			var rsp *obs.ActiveSpan
			if anyUnapplied(bConjs) {
				rsp = c.col.Start(obs.OpResidual)
				if rsp.Verbose() {
					rsp.SetLabel("block filter")
				}
			}
			fIn := int64(bt.Len())
			filtered, err := c.residualFilter(bConjs, bt, env)
			if err != nil {
				rsp.Fail()
				osp.Fail()
				return nil, nil, err
			}
			rsp.Rows(fIn, int64(filtered.Len())).End()
			bt = filtered
		}
		graphs = append(graphs, bGraphs...)
		tbl, err = c.leftJoinBudget(tbl, bt)
		if err != nil {
			osp.Fail()
			return nil, nil, err
		}
		osp.Rows(rowsIn, int64(tbl.Len())).End()
	}
	return tbl, graphs, nil
}

// anyUnapplied reports whether a WHERE conjunct is still pending at
// the residual-filter point; it gates the residual span so spans line
// up one-to-one with the residual lines EXPLAIN prints.
func anyUnapplied(conjs []*conjunct) bool {
	for _, cj := range conjs {
		if !cj.applied {
			return true
		}
	}
	return false
}

// evalGraphPattern evaluates one basic graph pattern chain on g,
// producing the table of all homomorphic matches.
func (c *evalCtx) evalGraphPattern(s *scope, gp *ast.GraphPattern, g *ppg.Graph) (*bindings.Table, error) {
	return c.evalGraphPatternWith(s, gp, g, nil)
}

// evalGraphPatternWith additionally applies pushed-down WHERE
// conjuncts as soon as their variables are bound along the chain.
func (c *evalCtx) evalGraphPatternWith(s *scope, gp *ast.GraphPattern, g *ppg.Graph, conjs []*conjunct) (*bindings.Table, error) {
	tbl, _, err := c.evalChainPlanned(s, gp, g, conjs)
	return tbl, err
}

// evalChainPlanned evaluates one chain under the selectivity planner:
// the scan may start from the chain's cheaper end (planChain), with
// the rows sorted back into forward emission order afterwards. It
// also returns the planner's estimate for the chain's start scan,
// which evalMatch uses to order conjunct joins.
func (c *evalCtx) evalChainPlanned(s *scope, gp *ast.GraphPattern, g *ppg.Graph, conjs []*conjunct) (*bindings.Table, int, error) {
	// Give anonymous elements fresh internal names so positions stay
	// independent (homomorphism semantics: no implicit sharing). Names
	// are assigned on the textual pattern — independent of planning —
	// so anonymous numbering matches the unplanned evaluation.
	names := c.patternVarNames(gp)
	pl, planned := chainPlan{}, false
	if c.cached != nil {
		pl, planned = c.cached.chainPlanFor(gp, g)
	}
	if !planned {
		pl = planChain(gp, g)
		if c.cached != nil {
			c.cached.storeChainPlan(gp, g, pl)
		}
	}
	run, runNames := gp, names
	if pl.reversed {
		run, runNames = pl.runGp, reverseNames(names)
	}

	// Each step span covers the operator plus the eager conjunct
	// application riding on it, mirroring the "⊳ filter" suffix of the
	// plan line; its label is the exact plan-line text so EXPLAIN
	// ANALYZE can match measurements to lines.
	sp := c.col.Start(obs.OpScan)
	if sp.Verbose() {
		sp.SetLabel(scanStepLabel(run.Nodes[0]))
	}
	tbl, err := c.scanNodes(g, run.Nodes[0], runNames.node[0], conjs)
	if err != nil {
		sp.Fail()
		return nil, 0, err
	}
	if tbl, err = c.applyReady(conjs, tbl, g); err != nil {
		sp.Fail()
		return nil, 0, err
	}
	sp.Indexed(c.lastScanIndexed).Rows(0, int64(tbl.Len())).End()
	for i, link := range run.Links {
		rowsIn := int64(tbl.Len())
		var sp *obs.ActiveSpan
		switch x := link.(type) {
		case *ast.EdgePattern:
			sp = c.col.Start(obs.OpExpand)
			if sp.Verbose() {
				sp.SetLabel(expandStepLabel(x, run.Nodes[i+1]))
			}
			tbl, err = c.extendEdge(g, tbl, runNames.node[i], x, runNames.link[i], run.Nodes[i+1], runNames.node[i+1])
		case *ast.PathPattern:
			sp = c.col.Start(obs.OpPath)
			if sp.Verbose() {
				sp.SetLabel(pathStepLabel(x, run.Nodes[i+1]))
			}
			tbl, err = c.extendPath(s, g, tbl, runNames.node[i], x, runNames.link[i], run.Nodes[i+1], runNames.node[i+1])
		}
		if err != nil {
			sp.Fail()
			return nil, 0, err
		}
		if tbl, err = c.applyReady(conjs, tbl, g); err != nil {
			sp.Fail()
			return nil, 0, err
		}
		if err := c.checkBudget(tbl); err != nil {
			sp.Fail()
			return nil, 0, err
		}
		sp.Rows(rowsIn, int64(tbl.Len())).End()
	}
	if pl.reversed {
		tbl = c.restoreForwardOrder(tbl, gp, names, g)
	}
	return tbl, pl.startEstimate(), nil
}

// patternNames assigns a variable name to every element of a chain.
type patternNames struct {
	node []string
	link []string
}

func (c *evalCtx) patternVarNames(gp *ast.GraphPattern) patternNames {
	pn := patternNames{node: make([]string, len(gp.Nodes)), link: make([]string, len(gp.Links))}
	for i, n := range gp.Nodes {
		if n.Var != "" {
			pn.node[i] = n.Var
		} else {
			pn.node[i] = c.freshAnon()
		}
	}
	for i, l := range gp.Links {
		var v string
		switch x := l.(type) {
		case *ast.EdgePattern:
			v = x.Var
		case *ast.PathPattern:
			v = x.Var
		}
		if v == "" {
			v = c.freshAnon()
		}
		pn.link[i] = v
	}
	return pn
}

// nodeMatches checks labels and filter properties of a node pattern.
func (c *evalCtx) nodeMatches(g *ppg.Graph, n *ppg.Node, np *ast.NodePattern) (bool, error) {
	if !labelSpecMatches(np.Labels, n.Labels) {
		return false, nil
	}
	return c.propsMatch(g, n.Props, np.Props)
}

// labelSpecMatches: every conjunct needs at least one matching
// disjunct (":Post|Comment" matches either label).
func labelSpecMatches(spec ast.LabelSpec, ls ppg.Labels) bool {
	for _, disj := range spec {
		found := false
		for _, l := range disj {
			if ls.Has(l) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// propsMatch checks filter entries ({name='Wagner'}): the value must
// be a member of the property's value set.
func (c *evalCtx) propsMatch(g *ppg.Graph, props ppg.Properties, specs []*ast.PropSpec) (bool, error) {
	for _, ps := range specs {
		if ps.Mode != ast.PropFilter {
			continue
		}
		env := c.newEnv(nil, []*ppg.Graph{g}, g)
		env.row = bindings.Empty()
		v, err := env.eval(ps.Expr)
		if err != nil {
			return false, err
		}
		got := props.Get(ps.Key)
		if ok, _ := value.In(v, got).AsBool(); !ok {
			return false, nil
		}
	}
	return true, nil
}

// bindProps unrolls binding entries ({employer=e}): one output row
// per element of the property's value set; an absent property yields
// no rows (§3: Peter, without employer, simply drops out).
func bindProps(props ppg.Properties, specs []*ast.PropSpec, base bindings.Binding) []bindings.Binding {
	rows := []bindings.Binding{base}
	for _, ps := range specs {
		if ps.Mode != ast.PropBind {
			continue
		}
		vals := props.Get(ps.Key).Elems()
		var next []bindings.Binding
		for _, row := range rows {
			for _, v := range vals {
				if prev, bound := row[ps.Var]; bound {
					if !value.Equal(prev, v) {
						continue
					}
					next = append(next, row)
					continue
				}
				nr := row.Clone()
				nr[ps.Var] = v
				next = append(next, nr)
			}
		}
		rows = next
	}
	return rows
}

// propCombo is the columnar form of one PropBind spec: the output
// slot to bind and the property's value set.
type propCombo struct {
	slot int
	vals []value.Value
}

// appendCombos appends one dense row per combination of combo values
// to dst, expanding depth-first in spec order (later specs vary
// fastest) — the same emission order as the legacy bindProps breadth
// expansion. A pre-bound slot survives only when its value is a
// member of the spec's (deduplicated) value set; an empty value set
// drops the row (§3: an element without the property drops out).
// scratch is restored on return.
func appendCombos(dst []value.Value, scratch []value.Value, combos []propCombo) []value.Value {
	if len(combos) == 0 {
		return append(dst, scratch...)
	}
	cb := combos[0]
	if prev := scratch[cb.slot]; !prev.IsAbsent() {
		for _, v := range cb.vals {
			if value.Equal(prev, v) {
				return appendCombos(dst, scratch, combos[1:])
			}
		}
		return dst
	}
	for _, v := range cb.vals {
		scratch[cb.slot] = v
		dst = appendCombos(dst, scratch, combos[1:])
	}
	scratch[cb.slot] = value.Absent
	return dst
}

// bindPlan precomputes the PropBind slots of a pattern element
// against an output schema.
type bindPlan struct {
	specs []*ast.PropSpec
	slots []int
}

func newBindPlan(tbl *bindings.Table, specs []*ast.PropSpec) bindPlan {
	var bp bindPlan
	for _, ps := range specs {
		if ps.Mode == ast.PropBind {
			bp.specs = append(bp.specs, ps)
			bp.slots = append(bp.slots, tbl.SlotOf(ps.Var))
		}
	}
	return bp
}

// addCombos appends the plan's combos for one element's properties.
func (bp bindPlan) addCombos(combos []propCombo, props ppg.Properties) []propCombo {
	for i, ps := range bp.specs {
		combos = append(combos, propCombo{slot: bp.slots[i], vals: props.Get(ps.Key).Elems()})
	}
	return combos
}

// exprParallelSafe reports whether an expression can be evaluated
// concurrently with other rows: it must be free of subqueries (EXISTS,
// pattern predicates) and aggregates, which touch shared evaluator
// state. collectExprVars already classifies exactly this ("pushable").
func exprParallelSafe(e ast.Expr) bool {
	return collectExprVars(e, map[string]bool{})
}

// specsParallelSafe reports whether every filter entry of a pattern's
// property specs is parallel-safe. Bind entries never evaluate
// expressions, so only filters matter.
func specsParallelSafe(specs []*ast.PropSpec) bool {
	for _, ps := range specs {
		if ps.Mode == ast.PropFilter && !exprParallelSafe(ps.Expr) {
			return false
		}
	}
	return true
}

// indexedNodeCandidates consults the graph's label index for a node
// pattern: the most selective conjunct of the label spec yields the
// candidate set (the sorted union of its disjuncts' buckets), which
// is exactly the set of nodes satisfying that conjunct. The remaining
// conjuncts and property filters are checked per candidate. ok is
// false when the spec has no conjunct to index on.
func indexedNodeCandidates(g *ppg.Graph, spec ast.LabelSpec) ([]ppg.NodeID, bool) {
	if len(spec) == 0 {
		return nil, false
	}
	best := -1
	bestSize := 0
	for i, disj := range spec {
		size := 0
		for _, l := range disj {
			size += len(g.NodesWithLabel(l))
		}
		if best == -1 || size < bestSize {
			best, bestSize = i, size
		}
	}
	disj := spec[best]
	if len(disj) == 1 {
		return g.NodesWithLabel(disj[0]), true
	}
	// Union of the disjuncts' sorted buckets, ascending, deduplicated.
	set := map[ppg.NodeID]bool{}
	for _, l := range disj {
		for _, id := range g.NodesWithLabel(l) {
			set[id] = true
		}
	}
	out := make([]ppg.NodeID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, true
}

// scanNodes produces the binding table of a single node pattern,
// consulting the graph's label index instead of scanning all nodes
// whenever the pattern names a label. Candidate chunks are matched
// concurrently and merged in input order. On the CSR path, WHERE
// conjuncts compilable against the property columns are applied to
// candidate ordinals before any row is materialised (scanPrefilter);
// the legacy path ignores conjs and leaves every conjunct to
// applyReady, producing the identical table.
func (c *evalCtx) scanNodes(g *ppg.Graph, np *ast.NodePattern, varName string, conjs []*conjunct) (*bindings.Table, error) {
	if np.Copy {
		return nil, errf("the copy form (=%s) is only allowed in CONSTRUCT", np.Var)
	}
	if snap := c.snapOf(g); snap != nil {
		return c.scanNodesCSR(snap, g, np, varName, conjs)
	}
	vars := []string{varName}
	for _, ps := range np.Props {
		if ps.Mode == ast.PropBind {
			vars = append(vars, ps.Var)
		}
	}
	tbl := bindings.EmptyTable(vars...)
	varSlot := tbl.SlotOf(varName)
	bp := newBindPlan(tbl, np.Props)
	w := tbl.Width()
	ids, indexed := indexedNodeCandidates(g, np.Labels)
	c.lastScanIndexed = indexed
	if !indexed {
		ids = g.NodeIDs()
	}
	parts, err := c.mapSlabs(len(ids), specsParallelSafe(np.Props), func(lo, hi int) ([]value.Value, error) {
		var slab []value.Value
		scratch := make([]value.Value, w)
		var combos []propCombo
		for i, id := range ids[lo:hi] {
			if i&(checkStride-1) == 0 {
				if err := c.gov.Checkpoint(faultinject.SiteCoreScan); err != nil {
					return nil, err
				}
			}
			n, _ := g.Node(id)
			ok, err := c.nodeMatches(g, n, np)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			for s := range scratch {
				scratch[s] = value.Absent
			}
			scratch[varSlot] = value.NodeRef(uint64(id))
			combos = bp.addCombos(combos[:0], n.Props)
			slab = appendCombos(slab, scratch, combos)
		}
		return slab, nil
	})
	if err != nil {
		return nil, err
	}
	return c.mergeSlabs(tbl, parts)
}

// extendEdge extends every row of tbl over one edge pattern to the
// next node pattern.
func (c *evalCtx) extendEdge(g *ppg.Graph, tbl *bindings.Table, leftVar string, ep *ast.EdgePattern, edgeVar string, rightNp *ast.NodePattern, rightVar string) (*bindings.Table, error) {
	if ep.Copy {
		return nil, errf("the copy form [=%s] is only allowed in CONSTRUCT", ep.Var)
	}
	if snap := c.snapOf(g); snap != nil {
		return c.extendEdgeCSR(snap, g, tbl, leftVar, ep, edgeVar, rightNp, rightVar)
	}
	vars := append(tbl.Vars(), edgeVar, rightVar)
	for _, ps := range ep.Props {
		if ps.Mode == ast.PropBind {
			vars = append(vars, ps.Var)
		}
	}
	for _, ps := range rightNp.Props {
		if ps.Mode == ast.PropBind {
			vars = append(vars, ps.Var)
		}
	}
	out := bindings.EmptyTable(vars...)
	ex := newExtendPlan(tbl, out, leftVar, edgeVar, rightVar, ep, rightNp)

	safe := specsParallelSafe(ep.Props) && specsParallelSafe(rightNp.Props)
	parts, err := c.mapSlabs(tbl.Len(), safe, func(lo, hi int) ([]value.Value, error) {
		var slab []value.Value
		scratch := make([]value.Value, out.Width())
		var combos []propCombo
		for ri := lo; ri < hi; ri++ {
			if err := c.gov.Checkpoint(faultinject.SiteCoreExtend); err != nil {
				return nil, err
			}
			row := tbl.RowAt(ri)
			uid, ok := nodeOf(ex.left(row))
			if !ok {
				continue
			}
			// emit extends the row over one edge in deterministic
			// order (out-edges ascending, then in-edges ascending).
			emit := func(e *ppg.Edge, other ppg.NodeID) error {
				// Edge label/property tests.
				if !labelSpecMatches(ep.Labels, e.Labels) {
					return nil
				}
				if ok, err := c.propsMatch(g, e.Props, ep.Props); err != nil || !ok {
					return err
				}
				// Pre-bound edge/node variables must agree.
				if !ex.agrees(row, uint64(e.ID), other) {
					return nil
				}
				// Right node tests.
				on, ok2 := g.Node(other)
				if !ok2 {
					return nil
				}
				if ok3, err := c.nodeMatches(g, on, rightNp); err != nil || !ok3 {
					return err
				}
				combos = ex.fill(scratch, row, uint64(e.ID), uint64(other), e.Props, on.Props, combos)
				slab = appendCombos(slab, scratch, combos)
				return nil
			}
			var err error
			if ep.Dir == ast.DirOut || ep.Dir == ast.DirBoth {
				for _, eid := range g.OutEdges(uid) {
					e, _ := g.Edge(eid)
					if err = emit(e, e.Dst); err != nil {
						return nil, err
					}
				}
			}
			if ep.Dir == ast.DirIn || ep.Dir == ast.DirBoth {
				for _, eid := range g.InEdges(uid) {
					e, _ := g.Edge(eid)
					if ep.Dir == ast.DirBoth && e.Src == e.Dst {
						continue // self-loop already emitted by the out pass
					}
					if err = emit(e, e.Src); err != nil {
						return nil, err
					}
				}
			}
		}
		return slab, nil
	})
	if err != nil {
		return nil, err
	}
	return c.mergeSlabs(out, parts)
}

// extendPlan precomputes the slot arithmetic of one edge extension:
// where the left/edge/right variables live in the input schema (for
// pre-bound agreement checks), how input slots map into the output
// schema, and the PropBind plans of the edge and right node.
type extendPlan struct {
	leftIn, edgeIn, rightIn int // input slots; -1 when not in the schema
	edgeOut, rightOut       int
	inToOut                 []int
	edgeBind, rightBind     bindPlan
}

func newExtendPlan(in, out *bindings.Table, leftVar, edgeVar, rightVar string, ep *ast.EdgePattern, rightNp *ast.NodePattern) extendPlan {
	x := extendPlan{
		leftIn:    in.SlotOf(leftVar),
		edgeIn:    in.SlotOf(edgeVar),
		rightIn:   in.SlotOf(rightVar),
		edgeOut:   out.SlotOf(edgeVar),
		rightOut:  out.SlotOf(rightVar),
		inToOut:   make([]int, in.Width()),
		edgeBind:  newBindPlan(out, ep.Props),
		rightBind: newBindPlan(out, rightNp.Props),
	}
	for s, v := range in.Vars() {
		x.inToOut[s] = out.SlotOf(v)
	}
	return x
}

// left reads the left-node value of an input row.
func (x extendPlan) left(row []value.Value) value.Value {
	if x.leftIn < 0 {
		return value.Absent
	}
	return row[x.leftIn]
}

// agrees checks pre-bound edge/right-node variables against the
// candidate edge.
func (x extendPlan) agrees(row []value.Value, edgeID uint64, other ppg.NodeID) bool {
	if x.edgeIn >= 0 {
		if prev := row[x.edgeIn]; !prev.IsAbsent() && !value.Equal(prev, value.EdgeRef(edgeID)) {
			return false
		}
	}
	if x.rightIn >= 0 {
		if prev := row[x.rightIn]; !prev.IsAbsent() {
			if pid, isNode := nodeOf(prev); !isNode || pid != other {
				return false
			}
		}
	}
	return true
}

// fill prepares the output scratch row (input columns copied, edge and
// right refs bound) and the bind combos for one accepted edge.
func (x extendPlan) fill(scratch, row []value.Value, edgeID, otherID uint64, eProps, nProps ppg.Properties, combos []propCombo) []propCombo {
	for s := range scratch {
		scratch[s] = value.Absent
	}
	for s, v := range row {
		scratch[x.inToOut[s]] = v
	}
	scratch[x.edgeOut] = value.EdgeRef(edgeID)
	scratch[x.rightOut] = value.NodeRef(otherID)
	combos = x.edgeBind.addCombos(combos[:0], eProps)
	return x.rightBind.addCombos(combos, nProps)
}

func nodeOf(v value.Value) (ppg.NodeID, bool) {
	if v.Kind() != value.KindNode {
		return 0, false
	}
	id, _ := v.RefID()
	return ppg.NodeID(id), true
}
