package core_test

import (
	"testing"

	"gcore/internal/ppg"
	"gcore/internal/snb"
	"gcore/internal/value"
)

// Path-pattern corner cases: directions, stored-path regex
// conformance, non-linear PATH views, k-shortest semantics.

func TestPathPatternBackward(t *testing.T) {
	ev := newToy(t)
	// (m)<-/p<:knows*>/-(n): paths INTO m — evaluated by reversing
	// the regex. Celine reached from John via Peter.
	g := run(t, ev, `CONSTRUCT (m)-/@p:rev/->(n)
MATCH (m:Person)<-/p<:knows*>/-(n:Person)
WHERE m.firstName = 'Celine' AND n.firstName = 'John'`).Graph
	if g.NumPaths() != 1 {
		t.Fatalf("paths = %d", g.NumPaths())
	}
	p, _ := g.Path(g.PathIDs()[0])
	// The stored walk runs in the arrow's direction: from n (John)
	// to m (Celine), per the formal x –w in r→ y semantics.
	if p.Nodes[0] != snb.John || p.Nodes[len(p.Nodes)-1] != snb.Celine {
		t.Errorf("walk = %v, want John…Celine", p.Nodes)
	}
	if len(p.Nodes) != 3 || p.Nodes[1] != snb.Peter {
		t.Errorf("walk = %v, want via Peter", p.Nodes)
	}
}

func TestPathPatternUndirected(t *testing.T) {
	ev := newToy(t)
	// An undirected path pattern matches both orientations; on the
	// bidirectional knows edges the same persons are reached.
	res := run(t, ev, `SELECT DISTINCT m.firstName AS name
MATCH (n:Person)-/<:knows+>/-(m:Person)
WHERE n.firstName = 'Celine'
ORDER BY name`)
	if res.Table.Len() != 5 {
		t.Fatalf("reached = %d, want 5\n%s", res.Table.Len(), res.Table)
	}
}

func TestInverseLabelRegex(t *testing.T) {
	ev := newToy(t)
	// hasInterest edges point Person→Tag; from the Tag side the
	// inverse atom walks them backwards.
	res := run(t, ev, `SELECT m.firstName AS fan
MATCH (w:Tag)-/<:hasInterest->/->(m:Person)
WHERE w.name = 'Wagner'
ORDER BY fan`)
	if res.Table.Len() != 2 {
		t.Fatalf("fans = %d\n%s", res.Table.Len(), res.Table)
	}
	first, _ := res.Table.Rows[0][0].Scalarize().AsString()
	if first != "Celine" {
		t.Errorf("first fan = %q", first)
	}
}

func TestNodeLabelTestInRegex(t *testing.T) {
	ev := newToy(t)
	// knows-walks whose intermediate node is a Person who likes
	// Wagner: John → (Peter fails !:… test)… use the Tag test:
	// a two-hop walk whose midpoint carries the Person label always
	// holds; whose midpoint carries the Tag label never does.
	resOK := run(t, ev, `SELECT DISTINCT m.firstName AS name
MATCH (n:Person)-/<:knows !:Person :knows>/->(m:Person)
WHERE n.firstName = 'John'
ORDER BY name`)
	if resOK.Table.Len() == 0 {
		t.Fatal("two-hop walks through a Person must exist")
	}
	resBad := run(t, ev, `SELECT DISTINCT m.firstName AS name
MATCH (n:Person)-/<:knows !:Tag :knows>/->(m:Person)
WHERE n.firstName = 'John'`)
	if resBad.Table.Len() != 0 {
		t.Fatalf("no knows-midpoint is a Tag; got %d rows", resBad.Table.Len())
	}
}

func TestStoredPathRegexConformance(t *testing.T) {
	ev := newToy(t)
	// The example graph's stored path 301 uses knows edges with mixed
	// directions: it conforms to (knows|knows⁻)* but not to knows*
	// read forward.
	res := run(t, ev, `SELECT id(p) AS pid
MATCH (a)-/@p<(:knows|:knows-)*>/->(b) ON example_graph`)
	if res.Table.Len() != 1 {
		t.Fatalf("conforming stored paths = %d, want 1", res.Table.Len())
	}
	res = run(t, ev, `SELECT id(p) AS pid
MATCH (a)-/@p<:hasInterest*>/->(b) ON example_graph`)
	if res.Table.Len() != 0 {
		t.Fatalf("path 301 must not conform to hasInterest*")
	}
}

func TestStoredPathBackwardMatch(t *testing.T) {
	ev := newToy(t)
	// Path 301 runs 105→103→102. Matching <-/@p/-(…) binds the left
	// node to the path's END.
	res := run(t, ev, `SELECT id(a) AS endpoint
MATCH (a)<-/@p:toWagner/-(b) ON example_graph`)
	if res.Table.Len() != 1 {
		t.Fatalf("rows = %d", res.Table.Len())
	}
	got, _ := res.Table.Rows[0][0].Scalarize().AsInt()
	if got != 102 {
		t.Errorf("left endpoint = %d, want 102 (path end)", got)
	}
}

func TestStoredPathCostVar(t *testing.T) {
	ev := newToy(t)
	res := run(t, ev, `SELECT c AS hops
MATCH (a)-/@p:toWagner COST c/->(b) ON example_graph`)
	if res.Table.Len() != 1 {
		t.Fatalf("rows = %d", res.Table.Len())
	}
	if !value.Equal(res.Table.Rows[0][0], value.Int(2)) {
		t.Errorf("stored path cost = %v, want 2 (hop count)", res.Table.Rows[0][0])
	}
}

func TestKShortestWalkSemantics(t *testing.T) {
	ev := newToy(t)
	// Walks may revisit nodes: 3 SHORTEST John→Peter over knows*
	// yields the 1-hop path and two 3-hop walks.
	res := run(t, ev, `SELECT c AS hops
MATCH (n:Person)-/3 SHORTEST p<:knows*> COST c/->(m:Person)
WHERE n.firstName = 'John' AND m.firstName = 'Peter'
ORDER BY hops`)
	if res.Table.Len() != 3 {
		t.Fatalf("paths = %d, want 3\n%s", res.Table.Len(), res.Table)
	}
	want := []int64{1, 3, 3}
	for i, w := range want {
		got, _ := res.Table.Rows[i][0].Scalarize().AsInt()
		if got != w {
			t.Errorf("cost[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestPathViewNonLinearPattern(t *testing.T) {
	ev := newToy(t)
	// Footnote 3: a PATH clause may take several comma-separated
	// patterns; joined variables are usable in COST. Here the cost of
	// a knows segment depends on the destination's interest count —
	// a variable (w) bound outside the walk pattern.
	g := run(t, ev, `PATH fanKnows = (x)-[e:knows]->(y), (y)-[:hasInterest]->(w)
     COST 1 / (1 + size(labels(w)))
CONSTRUCT (n)-/@p:viaFans/->(m)
MATCH (n:Person)-/p<~fanKnows*> COST c/->(m:Person)
WHERE n.firstName = 'Peter'`).Graph
	// Segments exist only into persons WITH interests: Celine, Frank.
	if g.NumPaths() != 3 {
		t.Fatalf("paths = %d, want 3 (empty path to Peter, Celine, Frank)", g.NumPaths())
	}
	ends := map[ppg.NodeID]bool{}
	for _, pid := range g.PathIDs() {
		p, _ := g.Path(pid)
		ends[p.Nodes[len(p.Nodes)-1]] = true
	}
	if !ends[snb.Celine] || !ends[snb.Frank] || !ends[snb.Peter] {
		t.Errorf("endpoints = %v", ends)
	}
}

func TestPathViewScopedToStatement(t *testing.T) {
	ev := newToy(t)
	// PATH views are head clauses: visible in the statement, gone
	// afterwards.
	run(t, ev, `PATH w = (x)-[e:knows]->(y)
CONSTRUCT (n) MATCH (n:Person)-/p<~w*>/->(m:Person) WHERE n.firstName = 'John'`)
	runErr(t, ev, `CONSTRUCT (n) MATCH (n:Person)-/p<~w*>/->(m:Person)`)
}

func TestPathViewReferencingEarlierView(t *testing.T) {
	ev := newToy(t)
	// A PATH clause may use views defined before it (§A.4: "can refer
	// to path views defined by other Path clauses appearing before").
	g := run(t, ev, `PATH hop = (x)-[e:knows]->(y) COST 1
PATH twohop = (x)-/q<~hop ~hop>/->(y) COST 2
CONSTRUCT (n)-/@p:pairs/->(m)
MATCH (n:Person)-/p<~twohop>/->(m:Person)
WHERE n.firstName = 'John'`).Graph
	// Two knows hops from John: back to John, or to Celine/Frank.
	if g.NumPaths() == 0 {
		t.Fatal("no two-hop paths found")
	}
	for _, pid := range g.PathIDs() {
		p, _ := g.Path(pid)
		if p.Length() != 2 {
			t.Errorf("path %v has %d hops, want 2", p.Nodes, p.Length())
		}
	}
}

func TestReachabilityWithBoundEndpoints(t *testing.T) {
	ev := newToy(t)
	// Both endpoints bound: the path pattern acts as a filter.
	res := run(t, ev, `SELECT n.firstName AS a, m.firstName AS b
MATCH (n:Person)-[:hasInterest]->(w:Tag), (m:Person)-[:hasInterest]->(w),
      (n)-/<:knows+>/->(m)
WHERE n.firstName = 'Celine'`)
	// Celine and Frank share the Wagner tag; Frank reachable via
	// Peter; also Celine reaches herself via knows+ (cycle).
	if res.Table.Len() != 2 {
		t.Fatalf("rows = %d\n%s", res.Table.Len(), res.Table)
	}
}

func TestEmptyPathToSelf(t *testing.T) {
	ev := newToy(t)
	// Kleene star admits the empty path: every node reaches itself.
	res := run(t, ev, `SELECT m.firstName AS name
MATCH (n:Person)-/<:nosuchlabel*>/->(m:Person)
WHERE n.firstName = 'John'`)
	if res.Table.Len() != 1 {
		t.Fatalf("rows = %d, want 1 (John himself)", res.Table.Len())
	}
	// Plus (one or more) does not.
	res = run(t, ev, `SELECT m.firstName AS name
MATCH (n:Person)-/<:nosuchlabel+>/->(m:Person)
WHERE n.firstName = 'John'`)
	if res.Table.Len() != 0 {
		t.Fatalf("rows = %d, want 0", res.Table.Len())
	}
}

func TestDefaultRegexIsAnyEdgeStar(t *testing.T) {
	ev := newToy(t)
	// A path pattern without <…> defaults to _* (any edges).
	res := run(t, ev, `SELECT DISTINCT m.name AS name
MATCH (n:Person)-/SHORTEST p/->(m:Tag)
WHERE n.firstName = 'John'`)
	if res.Table.Len() != 1 {
		t.Fatalf("rows = %d, want 1 (the Wagner tag)\n%s", res.Table.Len(), res.Table)
	}
}

func TestPathsAreFirstClassInResults(t *testing.T) {
	ev := newToy(t)
	// Store paths, register the result, then query the stored paths
	// of the *result* — closure over the path part of the model.
	res := run(t, ev, `CONSTRUCT (n)-/@p:hop{len := c}/->(m)
MATCH (n:Person)-/SHORTEST p<:knows*> COST c/->(m:Person)
WHERE n.firstName = 'John'`)
	g := res.Graph
	g.SetName("hops")
	if err := ev.Catalog().RegisterGraph(g); err != nil {
		t.Fatal(err)
	}
	res2 := run(t, ev, `SELECT p.len AS len
MATCH ()-/@p:hop/->() ON hops
ORDER BY len DESC LIMIT 1`)
	if res2.Table.Len() != 1 {
		t.Fatalf("rows = %d", res2.Table.Len())
	}
	if v, _ := res2.Table.Rows[0][0].Scalarize().AsInt(); v != 2 {
		t.Errorf("max hop length = %d, want 2", v)
	}
}

func TestUndirectedReachabilityNoDuplicateRows(t *testing.T) {
	ev := newToy(t)
	// An undirected reachability pattern must not emit a (row, dst)
	// binding once per orientation — Ω is a set.
	res := run(t, ev, `SELECT m.firstName AS name
MATCH (n:Person)-/<:knows*>/-(m:Person)
WHERE n.firstName = 'John'`)
	seen := map[string]int{}
	for _, r := range res.Table.Rows {
		s, _ := r[0].Scalarize().AsString()
		seen[s]++
	}
	for name, cnt := range seen {
		if cnt != 1 {
			t.Errorf("%s appears %d times (duplicate bindings)", name, cnt)
		}
	}
	if len(seen) != 5 {
		t.Errorf("reached %d persons, want 5", len(seen))
	}
	// And COUNT(*) built on such a pattern stays correct.
	res = run(t, ev, `SELECT COUNT(*) AS n
MATCH (a:Person)-/<:knows*>/-(b:Person)
WHERE a.firstName = 'John'`)
	if v, _ := res.Table.Rows[0][0].AsInt(); v != 5 {
		t.Errorf("COUNT over undirected reach = %d, want 5", v)
	}
}

func TestUndirectedKShortestTakesGlobalK(t *testing.T) {
	ev := newToy(t)
	// An undirected 1-SHORTEST must yield ONE path per endpoint pair,
	// the cheapest across both orientations — not one per orientation.
	res := run(t, ev, `SELECT id(p) AS pid, c AS hops
MATCH (n:Person)-/SHORTEST p<:knows*> COST c/-(m:Person)
WHERE n.firstName = 'John' AND m.firstName = 'Peter'`)
	if res.Table.Len() != 1 {
		t.Fatalf("rows = %d, want 1\n%s", res.Table.Len(), res.Table)
	}
	if v, _ := res.Table.Rows[0][1].Scalarize().AsInt(); v != 1 {
		t.Errorf("hops = %d, want 1", v)
	}
}
