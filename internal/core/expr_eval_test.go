package core_test

import (
	"strings"
	"testing"

	"gcore/internal/snb"
	"gcore/internal/value"
)

// Expression evaluation through the engine: each test projects an
// expression with SELECT over a one-row binding and checks the value.

// sel evaluates one expression over the binding (n = John, m = Peter,
// p = the example graph's stored path where noted).
func sel(t *testing.T, expr string) value.Value {
	t.Helper()
	ev := newToy(t)
	res := run(t, ev, `SELECT `+expr+` AS v
MATCH (n:Person), (m:Person)
WHERE n.firstName = 'John' AND m.firstName = 'Peter'`)
	if res.Table.Len() != 1 {
		t.Fatalf("expected one row, got %d", res.Table.Len())
	}
	return res.Table.Rows[0][0]
}

func TestExprArithmeticAndComparison(t *testing.T) {
	cases := map[string]value.Value{
		`1 + 2 * 3`:                           value.Int(7),
		`(1 + 2) * 3`:                         value.Int(9),
		`7 % 3`:                               value.Int(1),
		`-(2 - 5)`:                            value.Int(3),
		`1 / 4`:                               value.Float(0.25),
		`2 < 3`:                               value.True,
		`2 >= 3`:                              value.False,
		`'a' + 'b'`:                           value.Str("ab"),
		`'a' <> 'b'`:                          value.True,
		`NOT TRUE`:                            value.False,
		`TRUE AND FALSE`:                      value.False,
		`TRUE OR FALSE`:                       value.True,
		`NULL`:                                value.Null,
		`2.5 + 1`:                             value.Float(3.5),
		`DATE '1/12/2014' < DATE '2/12/2014'`: value.True,
	}
	for expr, want := range cases {
		got := sel(t, expr)
		if !value.Equal(got, want) {
			t.Errorf("%s = %v, want %v", expr, got, want)
		}
	}
}

func TestExprPropertyAndLabels(t *testing.T) {
	if got := sel(t, `n.firstName`); !value.Equal(got.Scalarize(), value.Str("John")) {
		t.Errorf("n.firstName = %v", got)
	}
	// Absent property: empty set.
	if got := sel(t, `size(m.employer)`); !value.Equal(got, value.Int(0)) {
		t.Errorf("size of absent property = %v", got)
	}
	// labels(n) is a set of strings.
	if got := sel(t, `labels(n)`); !value.Equal(got, value.Set(value.Str("Person"))) {
		t.Errorf("labels(n) = %v", got)
	}
	// Label test in value position.
	if got := sel(t, `(n:Person)`); !value.Equal(got, value.True) {
		t.Errorf("(n:Person) = %v", got)
	}
	if got := sel(t, `(n:Tag)`); !value.Equal(got, value.False) {
		t.Errorf("(n:Tag) = %v", got)
	}
	// id() of an element.
	if got := sel(t, `id(n)`); !value.Equal(got, value.Int(int64(snb.John))) {
		t.Errorf("id(n) = %v", got)
	}
}

func TestExprSetOperations(t *testing.T) {
	ev := newToy(t)
	// Frank's employer is {CWI, MIT}.
	res := run(t, ev, `SELECT size(f.employer) AS n,
  'CWI' IN f.employer AS has_cwi,
  'Acme' IN f.employer AS has_acme,
  f.employer SUBSET f.employer AS refl
MATCH (f:Person) WHERE f.firstName = 'Frank'`)
	row := res.Table.Rows[0]
	if !value.Equal(row[0], value.Int(2)) || !value.Equal(row[1], value.True) ||
		!value.Equal(row[2], value.False) || !value.Equal(row[3], value.True) {
		t.Errorf("set ops row = %v", row)
	}
	// Scalar = non-singleton set is FALSE (§3).
	res = run(t, ev, `SELECT f.employer = 'CWI' AS eq
MATCH (f:Person) WHERE f.firstName = 'Frank'`)
	if !value.Equal(res.Table.Rows[0][0], value.False) {
		t.Error(`{"CWI","MIT"} = 'CWI' must be FALSE`)
	}
}

func TestExprStringFunctions(t *testing.T) {
	cases := map[string]value.Value{
		`upper('ab')`:        value.Str("AB"),
		`lower('AB')`:        value.Str("ab"),
		`trim('  x ')`:       value.Str("x"),
		`tostring(42)`:       value.Str("42"),
		`tointeger('x')`:     value.Null,
		`tointeger(3.9)`:     value.Int(3),
		`tofloat(2)`:         value.Float(2),
		`size('abcd')`:       value.Int(4),
		`upper(n.firstName)`: value.Str("JOHN"),
	}
	for expr, want := range cases {
		got := sel(t, expr)
		if !value.Equal(got, want) {
			t.Errorf("%s = %v, want %v", expr, got, want)
		}
	}
}

func TestExprPathFunctions(t *testing.T) {
	ev := newToy(t)
	res := run(t, ev, `SELECT size(nodes(p)) AS n, size(edges(p)) AS e,
  length(p) AS hops, cost(p) AS c, id(nodes(p)[1]) AS mid
MATCH ()-/@p:toWagner/->() ON example_graph`)
	if res.Table.Len() != 1 {
		t.Fatalf("rows = %d", res.Table.Len())
	}
	row := res.Table.Rows[0]
	wants := []value.Value{value.Int(3), value.Int(2), value.Int(2), value.Int(2), value.Int(103)}
	for i, w := range wants {
		if !value.Equal(row[i].Scalarize(), w) {
			t.Errorf("col %s = %v, want %v", res.Table.Cols[i], row[i], w)
		}
	}
	// Out-of-range path indexing yields null.
	res = run(t, ev, `SELECT nodes(p)[99] AS v
MATCH ()-/@p:toWagner/->() ON example_graph`)
	if !res.Table.Rows[0][0].IsNull() {
		t.Error("out-of-range index must be null")
	}
}

func TestExprCaseForms(t *testing.T) {
	if got := sel(t, `CASE WHEN 1 < 2 THEN 'yes' ELSE 'no' END`); !value.Equal(got, value.Str("yes")) {
		t.Errorf("searched case = %v", got)
	}
	if got := sel(t, `CASE 2 WHEN 1 THEN 'one' WHEN 2 THEN 'two' END`); !value.Equal(got, value.Str("two")) {
		t.Errorf("operand case = %v", got)
	}
	// No matching arm and no ELSE: null.
	if got := sel(t, `CASE 9 WHEN 1 THEN 'one' END`); !got.IsNull() {
		t.Errorf("case without match = %v", got)
	}
	// CASE coalescing the empty set, as §3 suggests.
	if got := sel(t, `CASE WHEN size(m.employer) = 0 THEN 'none' ELSE m.employer END`); !value.Equal(got, value.Str("none")) {
		t.Errorf("coalesce = %v", got)
	}
}

func TestExprErrors(t *testing.T) {
	ev := newToy(t)
	bad := []string{
		`SELECT 1 / 0 AS v MATCH (n:Tag)`,
		`SELECT 1 % 0 AS v MATCH (n:Tag)`,
		`SELECT 1 + 'x' AS v MATCH (n:Tag)`,
		`SELECT NOT 3 AS v MATCH (n:Tag)`,
		`SELECT size(3) AS v MATCH (n:Tag)`,
		`SELECT id(3) AS v MATCH (n:Tag)`,
		`SELECT labels() AS v MATCH (n:Tag)`,
		`SELECT nodes(n, n) AS v MATCH (n:Tag)`,
		`SELECT nodes(p)['x'] AS v MATCH ()-/@p:toWagner/->() ON example_graph`,
		`SELECT cost(n) AS v MATCH (n:Tag)`,
	}
	for _, src := range bad {
		if err := runErr(t, ev, src); err == nil {
			t.Errorf("no error for %s", src)
		} else if strings.Contains(err.Error(), "panic") {
			t.Errorf("panic-ish error for %s: %v", src, err)
		}
	}
}

func TestExprUnboundVariableIsAbsent(t *testing.T) {
	// Unknown variables evaluate to the absent value: conditions drop,
	// projections emit null.
	ev := newToy(t)
	res := run(t, ev, `SELECT ghost AS v MATCH (n:Tag)`)
	if !res.Table.Rows[0][0].IsNull() {
		t.Error("unbound variable must project null")
	}
	res = run(t, ev, `CONSTRUCT (n) MATCH (n:Person) WHERE ghost = 1`)
	if res.Graph.NumNodes() != 0 {
		t.Error("condition on unbound variable must drop all rows")
	}
}

func TestAggregatesInConstruct(t *testing.T) {
	ev := newToy(t)
	g := run(t, ev, `CONSTRUCT (x GROUP 1 :Stats {
    cnt := COUNT(*), mn := MIN(c), mx := MAX(c), sm := SUM(c),
    av := AVG(c), all_ := COLLECT(n.firstName), nonnull := COUNT(n.employer)})
MATCH (n:Person)-/SHORTEST q<:knows*> COST c/->(m:Person)
WHERE m.firstName = 'Peter'`).Graph
	if g.NumNodes() != 1 {
		t.Fatalf("stats nodes = %d", g.NumNodes())
	}
	n, _ := g.Node(g.NodeIDs()[0])
	// Hop counts to Peter: John 1, Peter 0, Celine 1, Alice 2, Frank 1.
	checks := map[string]value.Value{
		"cnt": value.Int(5),
		"mn":  value.Int(0),
		"mx":  value.Int(2),
		"sm":  value.Int(5),
		"av":  value.Float(1),
	}
	for k, want := range checks {
		if got := n.Props.Get(k).Scalarize(); !value.Equal(got, want) {
			t.Errorf("%s = %v, want %v", k, got, want)
		}
	}
	if got := n.Props.Get("all_").Scalarize(); got.Len() != 5 {
		t.Errorf("COLLECT = %v", got)
	}
	// COUNT(expr) skips absent values: Peter has no employer.
	if got := n.Props.Get("nonnull").Scalarize(); !value.Equal(got, value.Int(4)) {
		t.Errorf("COUNT(n.employer) = %v, want 4", got)
	}
}

func TestGroupLiteralExpression(t *testing.T) {
	ev := newToy(t)
	// GROUP by a constant collapses everything into one group.
	g := run(t, ev, `CONSTRUCT (x GROUP 1 :Totals {total := COUNT(*)})
MATCH (n:Person)`).Graph
	if g.NumNodes() != 1 {
		t.Fatalf("groups = %d", g.NumNodes())
	}
	n, _ := g.Node(g.NodeIDs()[0])
	if !value.Equal(n.Props.Get("total").Scalarize(), value.Int(5)) {
		t.Errorf("total = %v", n.Props.Get("total"))
	}
}

func TestExprExtendedBuiltins(t *testing.T) {
	cases := map[string]value.Value{
		`substring('abcdef', 1, 3)`:    value.Str("bcd"),
		`substring('abcdef', 2)`:       value.Str("cdef"),
		`substring('ab', 9)`:           value.Str(""),
		`substring('abcdef', 4, 99)`:   value.Str("ef"),
		`contains('abcdef', 'cde')`:    value.True,
		`contains('abcdef', 'xyz')`:    value.False,
		`startswith('abcdef', 'abc')`:  value.True,
		`endswith('abcdef', 'def')`:    value.True,
		`replace('a-b-c', '-', '+')`:   value.Str("a+b+c"),
		`abs(0 - 5)`:                   value.Int(5),
		`abs(0.0 - 2.5)`:               value.Float(2.5),
		`floor(2.7)`:                   value.Int(2),
		`ceil(2.1)`:                    value.Int(3),
		`round(2.5)`:                   value.Int(3),
		`sqrt(9)`:                      value.Float(3),
		`contains(n.firstName, 'oh')`:  value.True,
		`substring(n.firstName, 0, 2)`: value.Str("Jo"),
	}
	for expr, want := range cases {
		got := sel(t, expr)
		if !value.Equal(got, want) {
			t.Errorf("%s = %v, want %v", expr, got, want)
		}
	}
	// Errors.
	ev := newToy(t)
	for _, src := range []string{
		`SELECT sqrt(0 - 1) AS v MATCH (n:Tag)`,
		`SELECT substring('a', 0 - 1) AS v MATCH (n:Tag)`,
		`SELECT substring('a', 0, 0 - 1) AS v MATCH (n:Tag)`,
		`SELECT substring('a') AS v MATCH (n:Tag)`,
		`SELECT floor('x') AS v MATCH (n:Tag)`,
	} {
		runErr(t, ev, src)
	}
	// Non-string inputs yield absence, not errors.
	if got := sel(t, `contains(1, 'x')`); !got.IsNull() {
		t.Errorf("contains on non-string = %v", got)
	}
}
