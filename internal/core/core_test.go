package core_test

import (
	"testing"

	"gcore/internal/catalog"
	"gcore/internal/core"
	"gcore/internal/parser"
	"gcore/internal/ppg"
	"gcore/internal/snb"
	"gcore/internal/table"
	"gcore/internal/value"
)

// newToy builds an evaluator over the Figure 4 toy database:
// social_graph (default), company_graph, the example_graph of
// Figure 2, and the orders binding table of §5.
func newToy(t *testing.T) *core.Evaluator {
	t.Helper()
	cat := catalog.New()
	if err := cat.RegisterGraph(snb.SocialGraph()); err != nil {
		t.Fatal(err)
	}
	if err := cat.RegisterGraph(snb.CompanyGraph()); err != nil {
		t.Fatal(err)
	}
	if err := cat.RegisterGraph(snb.Fig2Graph()); err != nil {
		t.Fatal(err)
	}
	if err := cat.SetDefault("social_graph"); err != nil {
		t.Fatal(err)
	}
	cols, rows := snb.OrdersRows()
	orders := table.New("orders", cols...)
	for _, r := range rows {
		if err := orders.AddRow(r...); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.RegisterTable(orders); err != nil {
		t.Fatal(err)
	}
	return core.New(cat)
}

func run(t *testing.T, ev *core.Evaluator, src string) *core.Result {
	t.Helper()
	stmt, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\nquery:\n%s", err, src)
	}
	res, err := ev.EvalStatement(stmt)
	if err != nil {
		t.Fatalf("eval: %v\nquery:\n%s", err, src)
	}
	return res
}

func runErr(t *testing.T, ev *core.Evaluator, src string) error {
	t.Helper()
	stmt, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\nquery:\n%s", err, src)
	}
	_, err = ev.EvalStatement(stmt)
	if err == nil {
		t.Fatalf("expected evaluation error for:\n%s", src)
	}
	return err
}

func nodeNames(t *testing.T, g *ppg.Graph, key string) map[string]bool {
	t.Helper()
	out := map[string]bool{}
	for _, id := range g.NodeIDs() {
		n, _ := g.Node(id)
		if s, ok := n.Props.Get(key).Scalarize().AsString(); ok {
			out[s] = true
		}
	}
	return out
}

func edgesWithLabel(g *ppg.Graph, label string) []*ppg.Edge {
	var out []*ppg.Edge
	for _, id := range g.EdgeIDs() {
		e, _ := g.Edge(id)
		if e.Labels.Has(label) {
			out = append(out, e)
		}
	}
	return out
}

// ---- Guided tour, lines 1–4 ----

func TestTourL01AlwaysReturningAGraph(t *testing.T) {
	ev := newToy(t)
	res := run(t, ev, parser.PaperQueries["L01"])
	g := res.Graph
	if g == nil {
		t.Fatal("query must return a graph")
	}
	// Persons who work at Acme: John and Alice, with identity,
	// labels and properties preserved; no edges.
	if g.NumNodes() != 2 || g.NumEdges() != 0 {
		t.Fatalf("graph = %v", g)
	}
	for _, id := range []ppg.NodeID{snb.John, snb.Alice} {
		n, ok := g.Node(id)
		if !ok {
			t.Fatalf("node #%d missing (identity must be preserved)", id)
		}
		if !n.Labels.Has("Person") {
			t.Error("labels must be preserved")
		}
		if n.Props.Get("firstName").Len() == 0 {
			t.Error("properties must be preserved")
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// ---- Lines 5–9: multi-graph join ----

func TestTourL05MultiGraphJoin(t *testing.T) {
	ev := newToy(t)
	g := run(t, ev, parser.PaperQueries["L05"]).Graph
	// The = join drops Frank (multi-valued) and Peter (absent):
	// worksAt edges for (Acme,Alice), (HAL,Celine), (Acme,John).
	works := edgesWithLabel(g, "worksAt")
	if len(works) != 3 {
		t.Fatalf("worksAt edges = %d, want 3", len(works))
	}
	pairs := map[[2]ppg.NodeID]bool{}
	for _, e := range works {
		pairs[[2]ppg.NodeID{e.Src, e.Dst}] = true
	}
	for _, want := range [][2]ppg.NodeID{{snb.Alice, snb.Acme}, {snb.Celine, snb.HAL}, {snb.John, snb.Acme}} {
		if !pairs[want] {
			t.Errorf("missing worksAt %v", want)
		}
	}
	// UNION social_graph: the original graph is included.
	if _, ok := g.Node(snb.Peter); !ok {
		t.Error("union with social_graph lost Peter")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// ---- Lines 10–19: IN and property unrolling ----

func TestTourL10InOperator(t *testing.T) {
	ev := newToy(t)
	g := run(t, ev, parser.PaperQueries["L10"]).Graph
	works := edgesWithLabel(g, "worksAt")
	// IN also matches Frank with CWI and MIT: five edges.
	if len(works) != 5 {
		t.Fatalf("worksAt edges = %d, want 5", len(works))
	}
	frankCount := 0
	for _, e := range works {
		if e.Src == snb.Frank {
			frankCount++
		}
	}
	if frankCount != 2 {
		t.Errorf("Frank gets %d worksAt edges, want 2 (CWI and MIT)", frankCount)
	}
}

func TestTourL15PropertyUnrolling(t *testing.T) {
	ev := newToy(t)
	g := run(t, ev, parser.PaperQueries["L15"]).Graph
	works := edgesWithLabel(g, "worksAt")
	if len(works) != 5 {
		t.Fatalf("worksAt edges = %d, want 5 (the unrolled binding set has 5 rows)", len(works))
	}
}

// ---- Lines 20–22: graph aggregation ----

func TestTourL20GraphAggregation(t *testing.T) {
	ev := newToy(t)
	g := run(t, ev, parser.PaperQueries["L20"]).Graph
	// One new Company node per distinct employer value.
	var companies []*ppg.Node
	for _, id := range g.NodeIDs() {
		n, _ := g.Node(id)
		if n.Labels.Has("Company") {
			companies = append(companies, n)
		}
	}
	if len(companies) != 4 {
		t.Fatalf("companies = %d, want 4 (CWI, MIT, Acme, HAL)", len(companies))
	}
	names := map[string]bool{}
	for _, n := range companies {
		s, _ := n.Props.Get("name").Scalarize().AsString()
		names[s] = true
	}
	for _, want := range []string{"CWI", "MIT", "Acme", "HAL"} {
		if !names[want] {
			t.Errorf("company %q missing", want)
		}
	}
	if works := edgesWithLabel(g, "worksAt"); len(works) != 5 {
		t.Errorf("worksAt edges = %d, want 5", len(works))
	}
	// Original graph is unioned in.
	if _, ok := g.Node(snb.Houston); !ok {
		t.Error("union with social_graph lost Houston")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// ---- Lines 23–27: storing paths ----

func TestTourL23StoredShortestPaths(t *testing.T) {
	ev := newToy(t)
	g := run(t, ev, parser.PaperQueries["L23"]).Graph
	if g.NumPaths() == 0 {
		t.Fatal("no stored paths")
	}
	sawPeter := false
	for _, pid := range g.PathIDs() {
		p, _ := g.Path(pid)
		if !p.Labels.Has("localPeople") {
			t.Errorf("stored path %d lacks the localPeople label", pid)
		}
		d := p.Props.Get("distance")
		if d.Len() != 1 {
			t.Errorf("stored path %d lacks a distance", pid)
		}
		if p.Nodes[0] != snb.John {
			t.Errorf("path %d does not start at John", pid)
		}
		if p.Nodes[len(p.Nodes)-1] == snb.Peter && p.Length() == 1 {
			sawPeter = true
			if !value.Equal(d.Scalarize(), value.Int(1)) {
				t.Errorf("distance John→Peter = %v, want 1", d)
			}
		}
	}
	if !sawPeter {
		t.Error("no one-hop stored path John→Peter")
	}
	// The result graph is the projection of nodes and edges involved
	// in the stored paths; every path is valid in it.
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// ---- Lines 28–31: reachability ----

func TestTourL28Reachability(t *testing.T) {
	ev := newToy(t)
	g := run(t, ev, parser.PaperQueries["L28"]).Graph
	// Persons co-located with John and reachable over knows*: all
	// five (including John via the empty path).
	if g.NumNodes() != 5 || g.NumEdges() != 0 || g.NumPaths() != 0 {
		t.Fatalf("graph = %v", g)
	}
	for _, id := range []ppg.NodeID{snb.John, snb.Peter, snb.Celine, snb.Alice, snb.Frank} {
		if _, ok := g.Node(id); !ok {
			t.Errorf("person #%d missing", id)
		}
	}
}

// ---- Lines 32–35: ALL paths projection ----

func TestTourL32AllPathsProjection(t *testing.T) {
	ev := newToy(t)
	g := run(t, ev, parser.PaperQueries["L32"]).Graph
	// The projection of all knows-walks from John to co-located
	// persons covers all five persons and all eight knows edges.
	if g.NumNodes() != 5 {
		t.Fatalf("nodes = %d, want 5", g.NumNodes())
	}
	if got := len(edgesWithLabel(g, "knows")); got != 8 {
		t.Fatalf("knows edges in projection = %d, want 8", got)
	}
	if g.NumPaths() != 0 {
		t.Error("ALL projection must not store path objects")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAllPathVarMisuseRejected(t *testing.T) {
	ev := newToy(t)
	err := runErr(t, ev, `CONSTRUCT (n)-/@p:bad/->(m)
MATCH (n:Person)-/ALL p<:knows*>/->(m:Person)`)
	if err == nil {
		t.Fatal("storing an ALL projection must fail")
	}
	runErr(t, ev, `CONSTRUCT (n)
MATCH (n:Person)-/ALL p<:knows*>/->(m:Person)
WHERE size(nodes(p)) > 2`)
}

// ---- Lines 36–38: existential subqueries ----

func TestTourL36ExplicitExists(t *testing.T) {
	ev := newToy(t)
	g := run(t, ev, `CONSTRUCT (n)
MATCH (n:Person), (m:Person)
WHERE m.firstName = 'Celine' AND EXISTS (
  CONSTRUCT ()
  MATCH (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m) )`).Graph
	// Everybody is co-located with Celine.
	if g.NumNodes() != 5 {
		t.Fatalf("nodes = %d, want 5", g.NumNodes())
	}
}

func TestImplicitExistsNegation(t *testing.T) {
	ev := newToy(t)
	// WHERE NOT (pattern): persons without a hasInterest edge.
	g := run(t, ev, `CONSTRUCT (n)
MATCH (n:Person)
WHERE NOT (n)-[:hasInterest]->()`).Graph
	if g.NumNodes() != 3 {
		t.Fatalf("nodes = %d, want 3 (John, Peter, Alice)", g.NumNodes())
	}
	if _, ok := g.Node(snb.Celine); ok {
		t.Error("Celine likes Wagner and must be excluded")
	}
}

// ---- Lines 39–47: views, OPTIONAL, SET, aggregation ----

func defineSocialGraph1(t *testing.T, ev *core.Evaluator) {
	t.Helper()
	run(t, ev, parser.PaperQueries["L39"])
}

func TestTourL39ViewWithOptional(t *testing.T) {
	ev := newToy(t)
	res := run(t, ev, parser.PaperQueries["L39"])
	g := res.Graph
	if g.Name() != "social_graph1" {
		t.Fatalf("view name = %q", g.Name())
	}
	// Every knows edge gets nr_messages; values follow the message
	// pairs of the toy data (Fig. 5).
	want := map[[2]ppg.NodeID]int64{
		{snb.John, snb.Peter}: 2, {snb.Peter, snb.John}: 2,
		{snb.Peter, snb.Celine}: 3, {snb.Celine, snb.Peter}: 3,
		{snb.Peter, snb.Frank}: 1, {snb.Frank, snb.Peter}: 1,
		{snb.John, snb.Alice}: 0, {snb.Alice, snb.John}: 0,
	}
	knows := edgesWithLabel(g, "knows")
	if len(knows) != 8 {
		t.Fatalf("knows edges = %d", len(knows))
	}
	for _, e := range knows {
		wantN, ok := want[[2]ppg.NodeID{e.Src, e.Dst}]
		if !ok {
			t.Fatalf("unexpected knows edge %d→%d", e.Src, e.Dst)
		}
		got := e.Props.Get("nr_messages")
		if !value.Equal(got.Scalarize(), value.Int(wantN)) {
			t.Errorf("nr_messages(%d→%d) = %v, want %d", e.Src, e.Dst, got, wantN)
		}
		if !e.Labels.Has("knows") {
			t.Error("bound edge must keep its labels")
		}
	}
	// The union with social_graph keeps everything else.
	if _, ok := g.Node(snb.Wagner); !ok {
		t.Error("union lost the Wagner tag")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// ---- Lines 48–56: multiple OPTIONAL blocks ----

func TestMultipleOptionalBlocks(t *testing.T) {
	ev := newToy(t)
	// Order of independent OPTIONAL blocks is irrelevant.
	q1 := `CONSTRUCT (n) SET n.tag := COLLECT(m.name) SET n.city := COLLECT(c.name)
MATCH (n:Person)
OPTIONAL (n)-[:hasInterest]->(m)
OPTIONAL (n)-[:isLocatedIn]->(c)`
	q2 := `CONSTRUCT (n) SET n.tag := COLLECT(m.name) SET n.city := COLLECT(c.name)
MATCH (n:Person)
OPTIONAL (n)-[:isLocatedIn]->(c)
OPTIONAL (n)-[:hasInterest]->(m)`
	g1 := run(t, ev, q1).Graph
	g2 := run(t, ev, q2).Graph
	for _, id := range []ppg.NodeID{snb.John, snb.Celine} {
		n1, _ := g1.Node(id)
		n2, _ := g2.Node(id)
		if !value.Equal(n1.Props.Get("tag"), n2.Props.Get("tag")) ||
			!value.Equal(n1.Props.Get("city"), n2.Props.Get("city")) {
			t.Errorf("optional order changed the result for #%d", id)
		}
	}
	celine, _ := g1.Node(snb.Celine)
	tag := celine.Props.Get("tag").Scalarize()
	if tag.Len() != 1 {
		t.Errorf("Celine's collected tags = %v", tag)
	}
	// The shared-variable restriction.
	err := runErr(t, ev, `CONSTRUCT (n)
MATCH (n:Person)
OPTIONAL (n)-[:hasInterest]->(a)
OPTIONAL (n)-[:isLocatedIn]->(a)`)
	if err == nil {
		t.Error("shared optional variable must be rejected")
	}
}

// ---- Lines 57–66: weighted shortest paths over a PATH view ----

func defineSocialGraph2(t *testing.T, ev *core.Evaluator) {
	t.Helper()
	defineSocialGraph1(t, ev)
	run(t, ev, parser.PaperQueries["L57"])
}

func TestTourL57WeightedPaths(t *testing.T) {
	ev := newToy(t)
	defineSocialGraph1(t, ev)
	g := run(t, ev, parser.PaperQueries["L57"]).Graph
	if g.Name() != "social_graph2" {
		t.Fatalf("view name = %q", g.Name())
	}
	// Exactly two stored toWagner paths (to the two Wagner lovers),
	// both via Peter (Alice's segment is excluded: she works at Acme).
	if g.NumPaths() != 2 {
		t.Fatalf("stored paths = %d, want 2", g.NumPaths())
	}
	ends := map[ppg.NodeID]bool{}
	for _, pid := range g.PathIDs() {
		p, _ := g.Path(pid)
		if !p.Labels.Has("toWagner") {
			t.Error("stored path lacks toWagner label")
		}
		if p.Nodes[0] != snb.John {
			t.Errorf("path starts at #%d, want John", p.Nodes[0])
		}
		if len(p.Nodes) != 3 || p.Nodes[1] != snb.Peter {
			t.Errorf("path %v does not go via Peter", p.Nodes)
		}
		ends[p.Nodes[len(p.Nodes)-1]] = true
	}
	if !ends[snb.Celine] || !ends[snb.Frank] {
		t.Errorf("path endpoints = %v, want Celine and Frank", ends)
	}
	// social_graph1 is unioned in: nr_messages present.
	found := false
	for _, e := range edgesWithLabel(g, "knows") {
		if e.Props.Get("nr_messages").Len() > 0 {
			found = true
		}
	}
	if !found {
		t.Error("union with social_graph1 lost nr_messages")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPathViewCostMustBePositive(t *testing.T) {
	ev := newToy(t)
	runErr(t, ev, `PATH bad = (x)-[e:knows]->(y) COST 0 - 1
CONSTRUCT (n)
MATCH (n:Person)-/p<~bad*>/->(m:Person)`)
}

// ---- Lines 67–71: querying stored paths ----

// The paper's line 71 reads "WHERE n = nodes(p)[1]", which contradicts
// the pattern (n is the start of every toWagner path) and the stated
// result; with m = nodes(p)[1] the query produces exactly the paper's
// answer: a single wagnerFriend edge between John and Peter with
// score 2. See EXPERIMENTS.md.
const tourL67 = `CONSTRUCT (n)-[e:wagnerFriend {score:=COUNT(*)}]->(m)
          WHEN e.score > 0
MATCH (n:Person)-/@p:toWagner/->(), (m:Person)
ON social_graph2
WHERE m = nodes(p)[1]`

func TestTourL67StoredPathAnalytics(t *testing.T) {
	ev := newToy(t)
	defineSocialGraph2(t, ev)
	g := run(t, ev, tourL67).Graph
	edges := edgesWithLabel(g, "wagnerFriend")
	if len(edges) != 1 {
		t.Fatalf("wagnerFriend edges = %d, want exactly 1", len(edges))
	}
	e := edges[0]
	if e.Src != snb.John || e.Dst != snb.Peter {
		t.Errorf("edge = %d→%d, want John→Peter", e.Src, e.Dst)
	}
	if !value.Equal(e.Props.Get("score").Scalarize(), value.Int(2)) {
		t.Errorf("score = %v, want 2", e.Props.Get("score"))
	}
	// Only John and Peter survive (WHEN drops nothing here, but no
	// other persons were matched by m = nodes(p)[1]).
	if g.NumNodes() != 2 {
		t.Errorf("nodes = %d, want 2", g.NumNodes())
	}
}

// ---- Lines 72–75: SELECT ----

func TestTourL72Select(t *testing.T) {
	ev := newToy(t)
	res := run(t, ev, parser.PaperQueries["L72"])
	if res.Table == nil {
		t.Fatal("SELECT must return a table")
	}
	tbl := res.Table
	if len(tbl.Cols) != 1 || tbl.Cols[0] != "friendName" {
		t.Fatalf("cols = %v", tbl.Cols)
	}
	got := map[string]bool{}
	for _, r := range tbl.Rows {
		s, _ := r[0].AsString()
		got[s] = true
	}
	for _, want := range []string{"Doe, John", "Smith, Peter", "Mayer, Celine", "Hacker, Alice", "Gold, Frank"} {
		if !got[want] {
			t.Errorf("friend %q missing from %v", want, got)
		}
	}
}

func TestSelectDistinctOrderLimit(t *testing.T) {
	ev := newToy(t)
	res := run(t, ev, `SELECT DISTINCT n.lastName AS ln
MATCH (n:Person)
ORDER BY ln DESC LIMIT 3`)
	tbl := res.Table
	if tbl.Len() != 3 {
		t.Fatalf("rows = %d, want 3", tbl.Len())
	}
	first, _ := tbl.Rows[0][0].Scalarize().AsString()
	if first != "Smith" {
		t.Errorf("first row = %q, want Smith (descending)", first)
	}
}

// ---- Lines 76–85: tabular inputs ----

func TestTourL76FromBindingTable(t *testing.T) {
	ev := newToy(t)
	g := run(t, ev, parser.PaperQueries["L76"]).Graph
	customers, products := 0, 0
	for _, id := range g.NodeIDs() {
		n, _ := g.Node(id)
		if n.Labels.Has("Customer") {
			customers++
		}
		if n.Labels.Has("Product") {
			products++
		}
	}
	if customers != 3 || products != 3 {
		t.Fatalf("customers/products = %d/%d, want 3/3", customers, products)
	}
	bought := edgesWithLabel(g, "bought")
	// Distinct (customer, product) pairs: Ada-1001, Ada-1002,
	// Bob-1001 (bought twice, one edge), Cyd-1003.
	if len(bought) != 4 {
		t.Errorf("bought edges = %d, want 4", len(bought))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTourL81TableAsGraph(t *testing.T) {
	ev := newToy(t)
	g := run(t, ev, parser.PaperQueries["L81"]).Graph
	if len(edgesWithLabel(g, "bought")) != 4 {
		t.Errorf("bought edges = %d, want 4", len(edgesWithLabel(g, "bought")))
	}
	names := nodeNames(t, g, "name")
	for _, want := range []string{"Ada", "Bob", "Cyd"} {
		if !names[want] {
			t.Errorf("customer %q missing", want)
		}
	}
}

// ---- Set operations at the query level ----

func TestSetOperations(t *testing.T) {
	ev := newToy(t)
	inter := run(t, ev, `CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme'
INTERSECT
CONSTRUCT (n) MATCH (n:Person) WHERE n.firstName = 'John'`).Graph
	if inter.NumNodes() != 1 {
		t.Fatalf("intersect = %d nodes, want 1 (John)", inter.NumNodes())
	}
	minus := run(t, ev, `CONSTRUCT (n) MATCH (n:Person)
MINUS
CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme'`).Graph
	if minus.NumNodes() != 3 {
		t.Fatalf("minus = %d nodes, want 3", minus.NumNodes())
	}
	union := run(t, ev, `CONSTRUCT (n) MATCH (n:Person) WHERE n.firstName = 'John'
UNION
CONSTRUCT (n) MATCH (n:Person) WHERE n.firstName = 'Peter'`).Graph
	if union.NumNodes() != 2 {
		t.Fatalf("union = %d nodes, want 2", union.NumNodes())
	}
}

// ---- GRAPH (query-local) and ON (subquery) ----

func TestLocalGraphBinding(t *testing.T) {
	ev := newToy(t)
	g := run(t, ev, `GRAPH acme AS (
  CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme'
)
CONSTRUCT (n)
MATCH (n) ON acme
WHERE n.firstName = 'Alice'`).Graph
	if g.NumNodes() != 1 {
		t.Fatalf("nodes = %d, want 1", g.NumNodes())
	}
	if _, ok := g.Node(snb.Alice); !ok {
		t.Error("Alice missing")
	}
	// The local name does not leak into the catalog.
	runErr(t, ev, `CONSTRUCT (n) MATCH (n) ON acme`)
}

func TestOnSubquery(t *testing.T) {
	ev := newToy(t)
	g := run(t, ev, `CONSTRUCT (n)
MATCH (n) ON (CONSTRUCT (m) MATCH (m:Person) WHERE m.employer = 'HAL')`).Graph
	if g.NumNodes() != 1 {
		t.Fatalf("nodes = %d, want 1 (Celine)", g.NumNodes())
	}
}

// ---- Copy forms and REMOVE ----

func TestCopyFormsAndRemove(t *testing.T) {
	ev := newToy(t)
	g := run(t, ev, `CONSTRUCT (=n :Clone) REMOVE n.employer
MATCH (n:Person) WHERE n.firstName = 'John'`).Graph
	if g.NumNodes() != 1 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	id := g.NodeIDs()[0]
	if id == snb.John {
		t.Error("copy form must mint a fresh identity")
	}
	n, _ := g.Node(id)
	if !n.Labels.Has("Person") || !n.Labels.Has("Clone") {
		t.Errorf("labels = %v", n.Labels)
	}
	if !value.Equal(n.Props.Get("firstName").Scalarize(), value.Str("John")) {
		t.Error("copied properties lost")
	}
	if n.Props.Get("employer").Len() != 0 {
		t.Error("REMOVE n.employer failed")
	}

	// Edge copy: fresh identity, copied labels.
	g2 := run(t, ev, `CONSTRUCT (n)-[=e]->(m)
MATCH (n:Person)-[e:knows]->(m:Person)
WHERE n.firstName = 'John' AND m.firstName = 'Peter'`).Graph
	es := edgesWithLabel(g2, "knows")
	if len(es) != 1 {
		t.Fatalf("copied edges = %d", len(es))
	}
	if es[0].ID == snb.KnowsJohnPeter {
		t.Error("edge copy must mint a fresh identity")
	}
}

func TestBoundEdgeEndpointViolation(t *testing.T) {
	ev := newToy(t)
	// Constructing a bound edge between the wrong endpoints violates
	// its identity (§3).
	runErr(t, ev, `CONSTRUCT (m)-[e]->(n)
MATCH (n:Person)-[e:knows]->(m:Person)`)
}

// ---- WHEN ----

func TestWhenFiltersConstruction(t *testing.T) {
	ev := newToy(t)
	g := run(t, ev, `CONSTRUCT (n :Busy {deg := COUNT(*)}) WHEN n.deg >= 3
MATCH (n:Person)-[:knows]->(m)`).Graph
	// knows out-degrees: John 2, Peter 3, Celine 1, Alice 1, Frank 1.
	if g.NumNodes() != 1 {
		t.Fatalf("nodes = %d, want 1 (Peter)", g.NumNodes())
	}
	if _, ok := g.Node(snb.Peter); !ok {
		t.Error("Peter missing")
	}
}

// ---- CASE ----

func TestCaseCoalescesMissingData(t *testing.T) {
	ev := newToy(t)
	res := run(t, ev, `SELECT n.firstName AS name,
  CASE WHEN size(n.employer) = 0 THEN 'unemployed' ELSE n.employer END AS job
MATCH (n:Person)
ORDER BY name`)
	tbl := res.Table
	if tbl.Len() != 5 {
		t.Fatalf("rows = %d", tbl.Len())
	}
	// Peter (row ordered by name: Alice, Celine, Frank, John, Peter).
	job, _ := tbl.Rows[4][1].Scalarize().AsString()
	if job != "unemployed" {
		t.Errorf("Peter's job = %q", job)
	}
}

// ---- Appendix A.2 worked example on the Figure 2 graph ----

func TestAppendixMatchExample(t *testing.T) {
	ev := newToy(t)
	// Match γ Where ξ of §A.2 rewritten in surface syntax: x and y in
	// Houston, a stored path from x to y over (knows|knows⁻)*.
	res := run(t, ev, `SELECT id(x) AS x, id(y) AS y, id(w) AS w, id(z) AS z
MATCH (x)-[:isLocatedIn]->(w), (y)-[:isLocatedIn]->(w),
      (x)-/@z<(:knows|:knows-)*>/->(y)
ON example_graph
WHERE w.name = 'Houston'`)
	tbl := res.Table
	if tbl.Len() != 1 {
		t.Fatalf("bindings = %d, want exactly 1\n%s", tbl.Len(), tbl)
	}
	row := tbl.Rows[0]
	want := []int64{105, 102, 106, 301}
	for i, w := range want {
		got, _ := row[i].Scalarize().AsInt()
		if got != w {
			t.Errorf("column %s = %d, want %d", tbl.Cols[i], got, w)
		}
	}
}

// ---- Appendix A.3 worked example ----

func TestAppendixConstructExample(t *testing.T) {
	ev := newToy(t)
	g := run(t, ev, parser.PaperQueries["L20"]).Graph
	// Five worksAt edges between four persons and four companies,
	// with Frank connected to both MIT and CWI (the J{f,g,h}K example).
	works := edgesWithLabel(g, "worksAt")
	if len(works) != 5 {
		t.Fatalf("worksAt = %d", len(works))
	}
	frankTargets := map[ppg.NodeID]bool{}
	for _, e := range works {
		if e.Src == snb.Frank {
			frankTargets[e.Dst] = true
		}
	}
	if len(frankTargets) != 2 {
		t.Errorf("Frank connects to %d companies, want 2", len(frankTargets))
	}
}

// ---- Error paths ----

func TestEvalErrors(t *testing.T) {
	ev := newToy(t)
	cases := []string{
		`CONSTRUCT (n) MATCH (n) ON nowhere`,                          // unknown graph
		`CONSTRUCT (n) MATCH (n)-[n]->(m)`,                            // sort conflict
		`CONSTRUCT (n)-[e]-(m) MATCH (n:Person)-[e:knows]->(m)`,       // undirected construct edge
		`CONSTRUCT (n) MATCH (n:Person) WHERE COUNT(*) > 1`,           // aggregate in WHERE
		`SELECT n.a AS x MATCH (n) ORDER BY COUNT(*)`,                 // aggregate in ORDER BY
		`CONSTRUCT (n) MATCH (n:Person)-/p<~nosuch*>/->(m)`,           // unknown path view
		`CONSTRUCT (x GROUP e) MATCH (n:Person {employer=e}) WHERE 1`, // WHERE not boolean
		`CONSTRUCT (n) FROM nosuchtable`,                              // unknown table
	}
	for _, src := range cases {
		stmt, err := parser.Parse(src)
		if err != nil {
			continue // some are parse-time errors, equally fine
		}
		if _, err := ev.EvalStatement(stmt); err == nil {
			t.Errorf("no error for: %s", src)
		}
	}
}

// ---- Closure: query the output of a query ----

func TestComposability(t *testing.T) {
	ev := newToy(t)
	// Feed the worksAt graph of L10 into a second query via ON.
	g := run(t, ev, `CONSTRUCT (c)
MATCH (c:Company)<-[:worksAt]-(n) ON (
  CONSTRUCT (c) <-[:worksAt]-(n)
  MATCH (c:Company) ON company_graph,
        (n:Person) ON social_graph
  WHERE c.name IN n.employer
)
WHERE n.firstName = 'Frank'`).Graph
	if g.NumNodes() != 2 {
		t.Fatalf("nodes = %d, want 2 (CWI and MIT)", g.NumNodes())
	}
}
