package core_test

import (
	"bytes"
	"testing"

	"gcore/internal/catalog"
	"gcore/internal/core"
	"gcore/internal/parser"
	"gcore/internal/snb"
)

// The determinism contract of parallel evaluation: for every worker
// count, chunked partitions merge in input order, so binding tables —
// and every result derived from them, including fresh identifier
// allocation order — are identical to sequential evaluation.

// determinismQueries exercise each parallelised code path: indexed
// node scans, chunked edge expansion, pushdown filtering, and the
// per-source reachability / shortest / ALL path searches.
var determinismQueries = []string{
	`SELECT n.firstName AS a, m.firstName AS b
MATCH (n:Person)-[:knows]->(m:Person)-[:isLocatedIn]->(c:City)
WHERE c.name = 'City0'`,
	`CONSTRUCT (n)-[e]->(m) MATCH (n:Person)-[e:knows]->(m:Person) WHERE m.lastName = 'Doe'`,
	`CONSTRUCT (m) MATCH (n:Person)-/<:knows*>/->(m:Person) WHERE n.anchor = TRUE`,
	`CONSTRUCT (n)-/@p:sp/->(m) MATCH (n:Person)-/p<:knows*>/->(m:Person) WHERE n.anchor = TRUE`,
	`CONSTRUCT (n)-/@p/->(m) MATCH (n:Person)-/3 SHORTEST p<:knows*>/->(m:Person) WHERE n.anchor = TRUE`,
	`CONSTRUCT (n)-/q/->(m) MATCH (n:Person)-/ALL q<:knows*>/->(m:Person) WHERE n.anchor = TRUE`,
}

// genEvaluator builds an evaluator over a generated SNB graph large
// enough that chunked jobs actually fan out (above minParallelItems).
func genEvaluator(t *testing.T, workers int) *core.Evaluator {
	t.Helper()
	cat := catalog.New()
	ds := snb.Generate(snb.Config{Persons: 300, Seed: 11}, cat.IDs())
	if err := cat.RegisterGraph(ds.Social); err != nil {
		t.Fatal(err)
	}
	ev := core.New(cat)
	ev.SetParallelism(workers)
	return ev
}

// render serialises a result so outputs can be compared byte for byte.
func render(t *testing.T, ev *core.Evaluator, src string) string {
	t.Helper()
	stmt, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\nquery:\n%s", err, src)
	}
	res, err := ev.EvalStatement(stmt)
	if err != nil {
		t.Fatalf("eval: %v\nquery:\n%s", err, src)
	}
	if res.Table != nil {
		return res.Table.String()
	}
	var buf bytes.Buffer
	if err := res.Graph.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestParallelMatchesSequential(t *testing.T) {
	// One evaluator per parallelism setting; the same statements run
	// in the same order on each, so the identifier generators advance
	// in lockstep iff results are identical.
	seq := genEvaluator(t, 1)
	for _, workers := range []int{0, 2, 8} {
		par := genEvaluator(t, workers)
		for _, q := range determinismQueries {
			want := render(t, seq, q)
			got := render(t, par, q)
			if got != want {
				t.Errorf("workers=%d diverges from sequential on:\n%s\ngot:\n%s\nwant:\n%s", workers, q, got, want)
			}
		}
		// Re-seed the sequential reference for the next setting so
		// both sides keep identical identifier-generator state.
		seq = genEvaluator(t, 1)
	}
}
