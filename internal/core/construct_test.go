package core_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"gcore/internal/catalog"
	"gcore/internal/core"
	"gcore/internal/parser"
	"gcore/internal/ppg"
	"gcore/internal/snb"
	"gcore/internal/value"
)

// CONSTRUCT corner cases beyond the guided tour.

func TestConstructSharedVariablesAcrossItems(t *testing.T) {
	ev := newToy(t)
	// The same unbound variable in several comma-separated patterns
	// denotes the same identities (§3: "to connect newly created
	// graph elements").
	g := run(t, ev, `CONSTRUCT (hub GROUP 1 :Hub), (hub)-[:links]->(n)
MATCH (n:Person)`).Graph
	hubs := 0
	for _, id := range g.NodeIDs() {
		n, _ := g.Node(id)
		if n.Labels.Has("Hub") {
			hubs++
		}
	}
	if hubs != 1 {
		t.Fatalf("hubs = %d, want exactly 1 (shared identity)", hubs)
	}
	if got := len(edgesWithLabel(g, "links")); got != 5 {
		t.Errorf("links = %d, want 5", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConstructUnboundWithoutGroupIsPerBinding(t *testing.T) {
	ev := newToy(t)
	// Without GROUP, an unbound node is created per binding (§3: the
	// "company node for each binding" caveat).
	g := run(t, ev, `CONSTRUCT (x :Thing)
MATCH (n:Person)`).Graph
	if g.NumNodes() != 5 {
		t.Fatalf("nodes = %d, want 5 (one per binding)", g.NumNodes())
	}
}

func TestConstructAnonymousNodes(t *testing.T) {
	ev := newToy(t)
	// Each anonymous () is independent: two anonymous constructs per
	// binding give two nodes per binding.
	g := run(t, ev, `CONSTRUCT ()-[:pair]->()
MATCH (n:Person) WHERE n.firstName = 'John'`).Graph
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("graph = %v", g)
	}
}

func TestConstructEdgePropertiesAndSetRemove(t *testing.T) {
	ev := newToy(t)
	g := run(t, ev, `CONSTRUCT (n)-[e:tagged {w := 2}]->(m)
  SET e.k := n.firstName SET e:extra REMOVE n.employer
MATCH (n:Person)-[:knows]->(m:Person)
WHERE n.firstName = 'John' AND m.firstName = 'Peter'`).Graph
	es := edgesWithLabel(g, "tagged")
	if len(es) != 1 {
		t.Fatalf("edges = %d", len(es))
	}
	e := es[0]
	if !e.Labels.Has("extra") {
		t.Error("SET e:extra lost")
	}
	if !value.Equal(e.Props.Get("w").Scalarize(), value.Int(2)) {
		t.Errorf("w = %v", e.Props.Get("w"))
	}
	if !value.Equal(e.Props.Get("k").Scalarize(), value.Str("John")) {
		t.Errorf("k = %v", e.Props.Get("k"))
	}
	// REMOVE applies to the constructed copy of n, not the source.
	n, _ := g.Node(snb.John)
	if n.Props.Get("employer").Len() != 0 {
		t.Error("REMOVE n.employer failed on the result")
	}
	src, _ := gcoreSocial(t).Node(snb.John)
	if src.Props.Get("employer").Len() == 0 {
		t.Error("REMOVE must not mutate the source graph")
	}
}

func gcoreSocial(t *testing.T) *ppg.Graph {
	t.Helper()
	return snb.SocialGraph()
}

func TestConstructDoesNotMutateSource(t *testing.T) {
	cat := catalog.New()
	social := snb.SocialGraph()
	if err := cat.RegisterGraph(social); err != nil {
		t.Fatal(err)
	}
	ev := core.New(cat)
	stmt, err := parser.Parse(`CONSTRUCT (n :Mutant) SET n.firstName := 'X'
MATCH (n:Person)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.EvalStatement(stmt); err != nil {
		t.Fatal(err)
	}
	// G-CORE is a query language, not an update language (§3).
	n, _ := social.Node(snb.John)
	if n.Labels.Has("Mutant") {
		t.Error("construct mutated source labels")
	}
	if !value.Equal(n.Props.Get("firstName").Scalarize(), value.Str("John")) {
		t.Error("construct mutated source properties")
	}
}

func TestConstructStoredPathIdentityPreserved(t *testing.T) {
	ev := newToy(t)
	// Re-storing a matched stored path preserves its identity and
	// merges labels.
	g := run(t, ev, `CONSTRUCT (a)-/@p:verified/->(b)
MATCH (a)-/@p:toWagner/->(b) ON example_graph`).Graph
	if g.NumPaths() != 1 {
		t.Fatalf("paths = %d", g.NumPaths())
	}
	p, ok := g.Path(snb.Fig2ToWagner)
	if !ok {
		t.Fatal("stored path identity lost")
	}
	if !p.Labels.Has("toWagner") || !p.Labels.Has("verified") {
		t.Errorf("labels = %v", p.Labels)
	}
	// Properties survive too.
	if !value.Equal(p.Props.Get("trust").Scalarize(), value.Float(0.95)) {
		t.Errorf("trust = %v", p.Props.Get("trust"))
	}
}

func TestConstructProjectionOfStoredPath(t *testing.T) {
	ev := newToy(t)
	// -/p/-> without @ projects constituents only: no path object.
	g := run(t, ev, `CONSTRUCT (a)-/p/->(b)
MATCH (a)-/@p:toWagner/->(b) ON example_graph`).Graph
	if g.NumPaths() != 0 {
		t.Error("projection must not store paths")
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("projection = %v", g)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConstructWhenDropsNodesAndDependents(t *testing.T) {
	ev := newToy(t)
	// Drop all persons whose group is smaller than 2; edges between
	// dropped nodes vanish too — never dangling.
	g := run(t, ev, `CONSTRUCT (n {deg := COUNT(*)})-[:peer]->(m) WHEN n.deg >= 2
MATCH (n:Person)-[:knows]->(m:Person)`).Graph
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Out-degrees: John 2, Peter 3, others 1. Only John and Peter
	// survive as sources; m nodes group per binding... m is bound so
	// groups by identity with deg = in-degree.
	for _, id := range g.EdgeIDs() {
		e, _ := g.Edge(id)
		if _, ok := g.Node(e.Src); !ok {
			t.Fatal("dangling edge after WHEN")
		}
		if _, ok := g.Node(e.Dst); !ok {
			t.Fatal("dangling edge after WHEN")
		}
	}
}

func TestConstructMultiValuedAssignment(t *testing.T) {
	ev := newToy(t)
	// Assigning a set value keeps it multi-valued.
	g := run(t, ev, `CONSTRUCT (=n :Copy {jobs := n.employer})
MATCH (n:Person) WHERE n.firstName = 'Frank'`).Graph
	n, _ := g.Node(g.NodeIDs()[0])
	if n.Props.Get("jobs").Len() != 2 {
		t.Errorf("jobs = %v, want the two-element set", n.Props.Get("jobs"))
	}
}

func TestConstructFromIntersectAndMinusResults(t *testing.T) {
	ev := newToy(t)
	// Set-operation results are ordinary graphs: re-query them by
	// nesting in ON.
	g := run(t, ev, `CONSTRUCT (n)
MATCH (n) ON (
  CONSTRUCT (n) MATCH (n:Person)
  MINUS
  CONSTRUCT (n) MATCH (n:Person) WHERE n.firstName = 'John'
)`).Graph
	if g.NumNodes() != 4 {
		t.Fatalf("nodes = %d, want 4", g.NumNodes())
	}
}

func TestConstructEdgeBetweenGroupedNodes(t *testing.T) {
	ev := newToy(t)
	// Edges between two GROUP-ed unbound nodes: one edge per pair of
	// group keys.
	g := run(t, ev, `CONSTRUCT (a GROUP e1 :L {v:=e1})-[:rel]->(b GROUP e2 :R {v:=e2})
MATCH (n:Person {employer=e1}), (m:Person {employer=e2})
WHERE n.firstName = 'Frank'`).Graph
	// e1 ∈ {CWI, MIT}; e2 ∈ {Acme(×2), HAL, CWI, MIT} → 2 × 4 pairs.
	if got := len(edgesWithLabel(g, "rel")); got != 8 {
		t.Fatalf("rel edges = %d, want 8", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestQuickConstructAlwaysValid: any construct over random generated
// graphs yields a valid PPG (no dangling edges, well-formed paths).
func TestQuickConstructAlwaysValid(t *testing.T) {
	queries := []string{
		`CONSTRUCT (n)-[e]->(m) MATCH (n:Person)-[e:knows]->(m:Person)`,
		`CONSTRUCT (x GROUP e :C {name:=e})<-[:w]-(n) MATCH (n:Person {employer=e})`,
		`CONSTRUCT (n)-/@p:sp/->(m) MATCH (n:Person)-/p<:knows*>/->(m:Person) WHERE n.anchor = TRUE`,
		`CONSTRUCT (n)-/q/->(m) MATCH (n:Person)-/ALL q<:knows*>/->(m:Person) WHERE n.anchor = TRUE`,
		`CONSTRUCT (n {deg := COUNT(*)}) WHEN n.deg > 1 MATCH (n:Person)-[:knows]->()`,
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cat := catalog.New()
		social := snb.Generate(snb.Config{Persons: 10 + r.Intn(20), Seed: seed}, cat.IDs())
		if err := cat.RegisterGraph(social.Social); err != nil {
			return false
		}
		ev := core.New(cat)
		for _, q := range queries {
			stmt, err := parser.Parse(q)
			if err != nil {
				t.Logf("parse %s: %v", q, err)
				return false
			}
			res, err := ev.EvalStatement(stmt)
			if err != nil {
				t.Logf("eval %s: %v", q, err)
				return false
			}
			if err := res.Graph.Validate(); err != nil {
				t.Logf("invariant violated by %s: %v", q, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestQuickWherePermutationEquivalence: predicate pushdown must be
// order-insensitive — permuting the conjuncts of WHERE (which changes
// what gets pushed where) cannot change the result.
func TestQuickWherePermutationEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		cat := catalog.New()
		social := snb.Generate(snb.Config{Persons: 15, Seed: seed}, cat.IDs())
		if err := cat.RegisterGraph(social.Social); err != nil {
			return false
		}
		ev := core.New(cat)
		q1 := `SELECT n.firstName AS a, m.firstName AS b
MATCH (n:Person)-[:knows]->(m:Person)
WHERE n.anchor = TRUE AND size(m.employer) > 0 ORDER BY a, b`
		q2 := `SELECT n.firstName AS a, m.firstName AS b
MATCH (n:Person)-[:knows]->(m:Person)
WHERE size(m.employer) > 0 AND n.anchor = TRUE ORDER BY a, b`
		run := func(src string) string {
			stmt, err := parser.Parse(src)
			if err != nil {
				return "parse error"
			}
			res, err := ev.EvalStatement(stmt)
			if err != nil {
				return "eval error"
			}
			return res.Table.String()
		}
		return run(q1) == run(q2) && run(q1) != "eval error"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestMatchEquivalentToBruteForce cross-checks the pattern matcher
// against a brute-force enumerator for a 2-node pattern on random
// graphs.
func TestMatchEquivalentToBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		cat := catalog.New()
		ds := snb.Generate(snb.Config{Persons: 12, Seed: seed}, cat.IDs())
		g := ds.Social
		if err := cat.RegisterGraph(g); err != nil {
			return false
		}
		ev := core.New(cat)
		stmt, err := parser.Parse(fmt.Sprintf(
			`SELECT id(n) AS a, id(m) AS b MATCH (n:Person)-[:knows]->(m:Person) ON %s ORDER BY a, b`, g.Name()))
		if err != nil {
			return false
		}
		res, err := ev.EvalStatement(stmt)
		if err != nil {
			return false
		}
		// Brute force over all edges.
		want := 0
		for _, eid := range g.EdgeIDs() {
			e, _ := g.Edge(eid)
			src, _ := g.Node(e.Src)
			dst, _ := g.Node(e.Dst)
			if e.Labels.Has("knows") && src.Labels.Has("Person") && dst.Labels.Has("Person") {
				want++
			}
		}
		return res.Table.Len() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestCrossSortCopyForms(t *testing.T) {
	ev := newToy(t)
	// §3: the copy syntax can copy all labels and properties of a
	// node onto an edge and vice versa.
	g := run(t, ev, `CONSTRUCT (n)-[=m]->(m)
MATCH (n:Person)-[:knows]->(m:Person)
WHERE n.firstName = 'John' AND m.firstName = 'Peter'`).Graph
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	e, _ := g.Edge(g.EdgeIDs()[0])
	if !e.Labels.Has("Person") {
		t.Errorf("edge labels = %v, want the node's Person label copied", e.Labels)
	}
	if !value.Equal(e.Props.Get("firstName").Scalarize(), value.Str("Peter")) {
		t.Errorf("edge firstName = %v", e.Props.Get("firstName"))
	}

	// Edge → node copy.
	g2 := run(t, ev, `CONSTRUCT (=e :FromEdge)
MATCH (n:Person)-[e:knows]->(m:Person)
WHERE n.firstName = 'John' AND m.firstName = 'Peter'`).Graph
	n2, _ := g2.Node(g2.NodeIDs()[0])
	if !n2.Labels.Has("knows") || !n2.Labels.Has("FromEdge") {
		t.Errorf("node labels = %v, want the edge's knows label copied", n2.Labels)
	}

	// Path → node copy.
	g3 := run(t, ev, `CONSTRUCT (=p :FromPath)
MATCH ()-/@p:toWagner/->() ON example_graph`).Graph
	n3, _ := g3.Node(g3.NodeIDs()[0])
	if !n3.Labels.Has("toWagner") {
		t.Errorf("node labels = %v, want the path's toWagner label copied", n3.Labels)
	}
	if !value.Equal(n3.Props.Get("trust").Scalarize(), value.Float(0.95)) {
		t.Errorf("trust = %v", n3.Props.Get("trust"))
	}
}
