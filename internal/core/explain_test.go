package core_test

import (
	"strings"
	"testing"

	"gcore/internal/core"
	"gcore/internal/parser"
)

func explain(t *testing.T, ev *core.Evaluator, src string) string {
	t.Helper()
	stmt, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	plan, err := ev.Explain(stmt)
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	return plan
}

func TestExplainShowsPushdown(t *testing.T) {
	ev := newToy(t)
	plan := explain(t, ev, `CONSTRUCT (n)-/@p:sp/->(m)
MATCH (n:Person)-/p<:knows*>/->(m:Person)
WHERE n.firstName = 'John' AND m.employer = 'HAL' AND EXISTS (CONSTRUCT () MATCH (n)-[:knows]->(m))`)
	// The n-filter lands on the scan, before the path search.
	scanIdx := strings.Index(plan, "node scan (n")
	filterIdx := strings.Index(plan, "n.firstName = 'John'")
	searchIdx := strings.Index(plan, "shortest-path search")
	if scanIdx < 0 || filterIdx < 0 || searchIdx < 0 {
		t.Fatalf("plan missing steps:\n%s", plan)
	}
	if !(scanIdx < filterIdx && filterIdx < searchIdx) {
		t.Errorf("n-filter not pushed before the path search:\n%s", plan)
	}
	// The EXISTS conjunct stays in the residual filter.
	if !strings.Contains(plan, "residual filter") || !strings.Contains(plan, "[subquery]") {
		t.Errorf("subquery conjunct not residual:\n%s", plan)
	}
}

func TestExplainStrategies(t *testing.T) {
	ev := newToy(t)
	cases := map[string]string{
		`CONSTRUCT (m) MATCH (n)-/<:knows*>/->(m)`:                         "reachability BFS",
		`CONSTRUCT (n)-/@p:x/->(m) MATCH (n)-/3 SHORTEST p<:knows*>/->(m)`: "3-shortest search",
		`CONSTRUCT (n)-/p/->(m) MATCH (n)-/ALL p<:knows*>/->(m)`:           "ALL-paths projection",
		`CONSTRUCT (n) MATCH (n)-/@p:toWagner/->(m)`:                       "stored-path scan",
		`CONSTRUCT (n) MATCH (n)-/@p<:knows*>/->(m)`:                       "conformance check",
		`PATH w = (x)-[e:knows]->(y) COST 1 / (1 + e.k)
CONSTRUCT (n)-/@p:x/->(m) MATCH (n)-/p<~w*>/->(m)`: "Dijkstra over PATH-view segments",
	}
	for src, want := range cases {
		plan := explain(t, ev, src)
		if !strings.Contains(plan, want) {
			t.Errorf("plan for %q missing %q:\n%s", src, want, plan)
		}
	}
}

func TestExplainConstructAndHeads(t *testing.T) {
	ev := newToy(t)
	plan := explain(t, ev, `GRAPH VIEW v AS (
CONSTRUCT social_graph, (x GROUP e :Company {name:=e})<-[y:worksAt]-(n)
MATCH (n:Person {employer=e})
OPTIONAL (n)-[:knows]->(f) WHERE (f:Person))
SELECT n.firstName AS a MATCH (n) ON v ORDER BY a LIMIT 2`)
	for _, want := range []string{
		"GRAPH VIEW (registered in the catalog) v",
		"graph union with social_graph",
		"[GROUP e]",
		"[grouped by endpoints]",
		"left-outer-join OPTIONAL block 1",
		"SELECT 1 column(s), ORDER BY 1 key(s), LIMIT 2",
	} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
}

func TestExplainSetOpsAndFrom(t *testing.T) {
	ev := newToy(t)
	plan := explain(t, ev, `CONSTRUCT (n) MATCH (n:A) UNION CONSTRUCT (m) FROM orders`)
	for _, want := range []string{"GRAPH UNION", "FROM orders", "by identity if bound, else per binding"} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
	// A construct variable missing from the match schema is a skolem.
	plan = explain(t, ev, `CONSTRUCT (x :T) MATCH (n:Person)`)
	if !strings.Contains(plan, "per binding (skolem)") {
		t.Errorf("plan missing skolem label:\n%s", plan)
	}
	plan = explain(t, ev, `CONSTRUCT (x :T {v := COUNT(*)}) WHEN x.v > 1 MATCH (n:Person)`)
	if !strings.Contains(plan, "WHEN") {
		t.Errorf("plan missing WHEN:\n%s", plan)
	}
	// Pure construction over unit bindings.
	plan = explain(t, ev, `CONSTRUCT (x :Singleton)`)
	if !strings.Contains(plan, "unit bindings") {
		t.Errorf("plan missing unit bindings:\n%s", plan)
	}
	// Invalid statements fail analysis.
	stmt, err := parser.Parse(`CONSTRUCT (n) MATCH (n)-[n]->(m)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Explain(stmt); err == nil {
		t.Error("explain must reject invalid statements")
	}
}
