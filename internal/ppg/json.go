package ppg

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"gcore/internal/value"
)

// JSON interchange format for Path Property Graphs, used by the CLI
// and the examples. The document mirrors Definition 2.1 directly:
//
//	{
//	  "name": "social_graph",
//	  "nodes": [{"id": 101, "labels": ["Tag"], "properties": {"name": "Wagner"}}],
//	  "edges": [{"id": 201, "src": 102, "dst": 101, "labels": ["hasInterest"]}],
//	  "paths": [{"id": 301, "nodes": [105,103,102], "edges": [207,202],
//	             "labels": ["toWagner"], "properties": {"trust": 0.95}}]
//	}
//
// Property values use the value package's interchange encoding;
// multi-valued properties are written with the {"set": [...]} wrapper
// and singletons as bare scalars.

type jsonGraph struct {
	Name  string     `json:"name"`
	Nodes []jsonNode `json:"nodes"`
	Edges []jsonEdge `json:"edges"`
	Paths []jsonPath `json:"paths,omitempty"`
}

type jsonNode struct {
	ID     uint64                 `json:"id"`
	Labels []string               `json:"labels,omitempty"`
	Props  map[string]value.Value `json:"properties,omitempty"`
}

type jsonEdge struct {
	ID     uint64                 `json:"id"`
	Src    uint64                 `json:"src"`
	Dst    uint64                 `json:"dst"`
	Labels []string               `json:"labels,omitempty"`
	Props  map[string]value.Value `json:"properties,omitempty"`
}

type jsonPath struct {
	ID     uint64                 `json:"id"`
	Nodes  []uint64               `json:"nodes"`
	Edges  []uint64               `json:"edges"`
	Labels []string               `json:"labels,omitempty"`
	Props  map[string]value.Value `json:"properties,omitempty"`
}

func propsOut(p Properties) map[string]value.Value {
	if len(p) == 0 {
		return nil
	}
	out := make(map[string]value.Value, len(p))
	for _, k := range p.Keys() {
		v := p.Get(k)
		if s, ok := v.Singleton(); ok {
			out[k] = s // render singletons as bare scalars
			continue
		}
		out[k] = v
	}
	return out
}

// MarshalJSON encodes the graph in the interchange format with
// elements sorted by identifier.
func (g *Graph) MarshalJSON() ([]byte, error) {
	doc := jsonGraph{Name: g.name}
	for _, id := range g.NodeIDs() {
		n := g.nodes[id]
		doc.Nodes = append(doc.Nodes, jsonNode{ID: uint64(id), Labels: n.Labels, Props: propsOut(n.Props)})
	}
	for _, id := range g.EdgeIDs() {
		e := g.edges[id]
		doc.Edges = append(doc.Edges, jsonEdge{
			ID: uint64(id), Src: uint64(e.Src), Dst: uint64(e.Dst),
			Labels: e.Labels, Props: propsOut(e.Props),
		})
	}
	for _, id := range g.PathIDs() {
		p := g.paths[id]
		jp := jsonPath{ID: uint64(id), Labels: p.Labels, Props: propsOut(p.Props)}
		for _, n := range p.Nodes {
			jp.Nodes = append(jp.Nodes, uint64(n))
		}
		for _, e := range p.Edges {
			jp.Edges = append(jp.Edges, uint64(e))
		}
		doc.Paths = append(doc.Paths, jp)
	}
	return json.MarshalIndent(doc, "", "  ")
}

// UnmarshalJSON decodes the interchange format, validating every
// model invariant on the way in.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var doc jsonGraph
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("ppg: decoding graph: %w", err)
	}
	out := New(doc.Name)
	for _, jn := range doc.Nodes {
		if err := out.AddNode(&Node{ID: NodeID(jn.ID), Labels: NewLabels(jn.Labels...), Props: NewProperties(jn.Props)}); err != nil {
			return err
		}
	}
	for _, je := range doc.Edges {
		if err := out.AddEdge(&Edge{
			ID: EdgeID(je.ID), Src: NodeID(je.Src), Dst: NodeID(je.Dst),
			Labels: NewLabels(je.Labels...), Props: NewProperties(je.Props),
		}); err != nil {
			return err
		}
	}
	for _, jp := range doc.Paths {
		p := &Path{ID: PathID(jp.ID), Labels: NewLabels(jp.Labels...), Props: NewProperties(jp.Props)}
		for _, n := range jp.Nodes {
			p.Nodes = append(p.Nodes, NodeID(n))
		}
		for _, e := range jp.Edges {
			p.Edges = append(p.Edges, EdgeID(e))
		}
		if err := out.AddPath(p); err != nil {
			return err
		}
	}
	return g.replace(out)
}

// Element codecs. The durability layer logs individual mutations as
// JSON records; these encode one element in exactly the interchange
// shape the graph documents use, so a WAL record and a snapshot agree
// on representation.

// EncodeNode encodes one node as an interchange JSON object.
func EncodeNode(n *Node) ([]byte, error) {
	return json.Marshal(jsonNode{ID: uint64(n.ID), Labels: n.Labels, Props: propsOut(n.Props)})
}

// DecodeNode decodes an EncodeNode document.
func DecodeNode(data []byte) (*Node, error) {
	var jn jsonNode
	if err := json.Unmarshal(data, &jn); err != nil {
		return nil, fmt.Errorf("ppg: decoding node: %w", err)
	}
	return &Node{ID: NodeID(jn.ID), Labels: NewLabels(jn.Labels...), Props: NewProperties(jn.Props)}, nil
}

// EncodeEdge encodes one edge as an interchange JSON object.
func EncodeEdge(e *Edge) ([]byte, error) {
	return json.Marshal(jsonEdge{
		ID: uint64(e.ID), Src: uint64(e.Src), Dst: uint64(e.Dst),
		Labels: e.Labels, Props: propsOut(e.Props),
	})
}

// DecodeEdge decodes an EncodeEdge document.
func DecodeEdge(data []byte) (*Edge, error) {
	var je jsonEdge
	if err := json.Unmarshal(data, &je); err != nil {
		return nil, fmt.Errorf("ppg: decoding edge: %w", err)
	}
	return &Edge{
		ID: EdgeID(je.ID), Src: NodeID(je.Src), Dst: NodeID(je.Dst),
		Labels: NewLabels(je.Labels...), Props: NewProperties(je.Props),
	}, nil
}

// EncodePath encodes one stored path as an interchange JSON object.
func EncodePath(p *Path) ([]byte, error) {
	jp := jsonPath{ID: uint64(p.ID), Labels: p.Labels, Props: propsOut(p.Props)}
	for _, n := range p.Nodes {
		jp.Nodes = append(jp.Nodes, uint64(n))
	}
	for _, e := range p.Edges {
		jp.Edges = append(jp.Edges, uint64(e))
	}
	return json.Marshal(jp)
}

// DecodePath decodes an EncodePath document.
func DecodePath(data []byte) (*Path, error) {
	var jp jsonPath
	if err := json.Unmarshal(data, &jp); err != nil {
		return nil, fmt.Errorf("ppg: decoding path: %w", err)
	}
	p := &Path{ID: PathID(jp.ID), Labels: NewLabels(jp.Labels...), Props: NewProperties(jp.Props)}
	for _, n := range jp.Nodes {
		p.Nodes = append(p.Nodes, NodeID(n))
	}
	for _, e := range jp.Edges {
		p.Edges = append(p.Edges, EdgeID(e))
	}
	return p, nil
}

// EncodeProperties encodes a property map in the interchange value
// encoding (singletons as bare scalars, sets wrapped).
func EncodeProperties(p Properties) ([]byte, error) {
	out := propsOut(p)
	if out == nil {
		out = map[string]value.Value{}
	}
	return json.Marshal(out)
}

// DecodeProperties decodes an EncodeProperties document.
func DecodeProperties(data []byte) (Properties, error) {
	var m map[string]value.Value
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("ppg: decoding properties: %w", err)
	}
	return NewProperties(m), nil
}

// WriteJSON writes the graph's interchange document to w.
func (g *Graph) WriteJSON(w io.Writer) error {
	data, err := g.MarshalJSON()
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// ReadJSON parses one interchange document and registers every
// identifier with gen (if non-nil) so later generated identifiers
// cannot collide.
func ReadJSON(r io.Reader, gen *IDGen) (*Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	g := New("")
	if err := g.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	if gen != nil {
		ids := []uint64{}
		for _, id := range g.NodeIDs() {
			ids = append(ids, uint64(id))
		}
		for _, id := range g.EdgeIDs() {
			ids = append(ids, uint64(id))
		}
		for _, id := range g.PathIDs() {
			ids = append(ids, uint64(id))
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		if len(ids) > 0 {
			gen.Reserve(ids[len(ids)-1])
		}
	}
	return g, nil
}
