package ppg

import "sync/atomic"

// IDGen hands out engine-unique identifiers for nodes, edges and
// stored paths. N, E and P must be pairwise disjoint (Definition 2.1),
// which a single shared counter guarantees trivially; it also makes
// the skolem function new(x, Ω′(Γ)) of §A.3 injective across sorts.
//
// IDGen is safe for concurrent use.
type IDGen struct {
	next atomic.Uint64
}

// NewIDGen creates a generator whose first identifier is start.
func NewIDGen(start uint64) *IDGen {
	g := &IDGen{}
	g.next.Store(start)
	return g
}

// Reserve advances the generator past id if needed, so externally
// assigned identifiers (e.g. loaded from JSON) never collide with
// generated ones.
func (g *IDGen) Reserve(id uint64) {
	for {
		cur := g.next.Load()
		if cur > id {
			return
		}
		if g.next.CompareAndSwap(cur, id+1) {
			return
		}
	}
}

// NextNode returns a fresh node identifier.
func (g *IDGen) NextNode() NodeID { return NodeID(g.next.Add(1) - 1) }

// NextEdge returns a fresh edge identifier.
func (g *IDGen) NextEdge() EdgeID { return EdgeID(g.next.Add(1) - 1) }

// NextPath returns a fresh path identifier.
func (g *IDGen) NextPath() PathID { return PathID(g.next.Add(1) - 1) }
