package ppg

import (
	"fmt"
	"testing"

	"gcore/internal/value"
)

func benchGraph(n int) *Graph {
	g := New("bench")
	for i := 1; i <= n; i++ {
		if err := g.AddNode(&Node{ID: NodeID(i), Labels: NewLabels("N"),
			Props: NewProperties(map[string]value.Value{"v": value.Int(int64(i))})}); err != nil {
			panic(err)
		}
	}
	eid := EdgeID(uint64(n) + 1)
	for i := 1; i < n; i++ {
		if err := g.AddEdge(&Edge{ID: eid, Src: NodeID(i), Dst: NodeID(i + 1), Labels: NewLabels("e")}); err != nil {
			panic(err)
		}
		eid++
	}
	return g
}

func BenchmarkGraphBuild(b *testing.B) {
	for _, n := range []int{100, 1000} {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if benchGraph(n).NumNodes() != n {
					b.Fatal("bad graph")
				}
			}
		})
	}
}

func BenchmarkGraphUnion(b *testing.B) {
	g1 := benchGraph(1000)
	g2 := benchGraph(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Union("u", g1, g2).NumNodes() != 1000 {
			b.Fatal("bad union")
		}
	}
}

func BenchmarkGraphMinus(b *testing.B) {
	g1 := benchGraph(1000)
	g2 := benchGraph(500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Minus("d", g1, g2).NumNodes() != 500 {
			b.Fatal("bad difference")
		}
	}
}

func BenchmarkJSONRoundTrip(b *testing.B) {
	g := benchGraph(500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := g.MarshalJSON()
		if err != nil {
			b.Fatal(err)
		}
		back := New("")
		if err := back.UnmarshalJSON(data); err != nil {
			b.Fatal(err)
		}
	}
}
