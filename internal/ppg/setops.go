package ppg

import "gcore/internal/value"

// The "full graph" operations of §A.5. They are defined in terms of
// node, edge and path *identities*. Two graphs are consistent if every
// shared edge identifier has the same endpoints (ρ1(e) = ρ2(e)) and
// every shared path identifier has the same expansion (δ1(p) = δ2(p));
// union and intersection of inconsistent graphs are the empty PPG.

// Consistent reports whether g1 and g2 agree on all shared edge and
// path identifiers.
func Consistent(g1, g2 *Graph) bool {
	for id, e1 := range g1.edges {
		if e2, ok := g2.edges[id]; ok {
			if e1.Src != e2.Src || e1.Dst != e2.Dst {
				return false
			}
		}
	}
	for id, p1 := range g1.paths {
		if p2, ok := g2.paths[id]; ok {
			if !sameExpansion(p1, p2) {
				return false
			}
		}
	}
	return true
}

func sameExpansion(p1, p2 *Path) bool {
	if len(p1.Nodes) != len(p2.Nodes) || len(p1.Edges) != len(p2.Edges) {
		return false
	}
	for i := range p1.Nodes {
		if p1.Nodes[i] != p2.Nodes[i] {
			return false
		}
	}
	for i := range p1.Edges {
		if p1.Edges[i] != p2.Edges[i] {
			return false
		}
	}
	return true
}

// Union returns G1 ∪ G2: the identity-wise union; labels are united
// and property value sets are united pointwise. Inconsistent inputs
// yield the empty graph.
func Union(name string, g1, g2 *Graph) *Graph {
	out := New(name)
	if !Consistent(g1, g2) {
		return out
	}
	for _, id := range g1.NodeIDs() {
		n := g1.nodes[id].Clone()
		if n2, ok := g2.nodes[id]; ok {
			mergeInto(n.Labels.Union(n2.Labels), &n.Labels, n.Props, n2.Props)
		}
		mustAdd(out.AddNode(n))
	}
	for _, id := range g2.NodeIDs() {
		if _, ok := g1.nodes[id]; !ok {
			mustAdd(out.AddNode(g2.nodes[id].Clone()))
		}
	}
	for _, id := range g1.EdgeIDs() {
		e := g1.edges[id].Clone()
		if e2, ok := g2.edges[id]; ok {
			mergeInto(e.Labels.Union(e2.Labels), &e.Labels, e.Props, e2.Props)
		}
		mustAdd(out.AddEdge(e))
	}
	for _, id := range g2.EdgeIDs() {
		if _, ok := g1.edges[id]; !ok {
			mustAdd(out.AddEdge(g2.edges[id].Clone()))
		}
	}
	for _, id := range g1.PathIDs() {
		p := g1.paths[id].Clone()
		if p2, ok := g2.paths[id]; ok {
			mergeInto(p.Labels.Union(p2.Labels), &p.Labels, p.Props, p2.Props)
		}
		mustAdd(out.AddPath(p))
	}
	for _, id := range g2.PathIDs() {
		if _, ok := g1.paths[id]; !ok {
			mustAdd(out.AddPath(g2.paths[id].Clone()))
		}
	}
	return out
}

// mergeInto sets *labels and unions other's property value sets into
// props pointwise (σ(x,k) = σ1(x,k) ∪ σ2(x,k)).
func mergeInto(merged Labels, labels *Labels, props, other Properties) {
	*labels = merged
	for k, v2 := range other {
		if v1, ok := props[k]; ok {
			props[k] = value.Set(append(append([]value.Value(nil), v1.Elems()...), v2.Elems()...)...)
		} else {
			props[k] = v2
		}
	}
}

// Intersect returns G1 ∩ G2: shared identities only; labels and
// property value sets are intersected pointwise. Inconsistent inputs
// yield the empty graph.
func Intersect(name string, g1, g2 *Graph) *Graph {
	out := New(name)
	if !Consistent(g1, g2) {
		return out
	}
	for _, id := range g1.NodeIDs() {
		n2, ok := g2.nodes[id]
		if !ok {
			continue
		}
		n := g1.nodes[id].Clone()
		n.Labels = n.Labels.Intersect(n2.Labels)
		n.Props = intersectProps(n.Props, n2.Props)
		mustAdd(out.AddNode(n))
	}
	for _, id := range g1.EdgeIDs() {
		e2, ok := g2.edges[id]
		if !ok {
			continue
		}
		e := g1.edges[id].Clone()
		// Shared edges have shared endpoints by consistency; the
		// endpoints are in N1 ∩ N2 because each graph contains them.
		e.Labels = e.Labels.Intersect(e2.Labels)
		e.Props = intersectProps(e.Props, e2.Props)
		mustAdd(out.AddEdge(e))
	}
	for _, id := range g1.PathIDs() {
		p2, ok := g2.paths[id]
		if !ok {
			continue
		}
		p := g1.paths[id].Clone()
		p.Labels = p.Labels.Intersect(p2.Labels)
		p.Props = intersectProps(p.Props, p2.Props)
		mustAdd(out.AddPath(p))
	}
	return out
}

func intersectProps(a, b Properties) Properties {
	out := Properties{}
	for k, va := range a {
		vb, ok := b[k]
		if !ok {
			continue
		}
		keep := []value.Value{}
		for _, e := range va.Elems() {
			if v := value.In(e, vb); eqTrue(v) {
				keep = append(keep, e)
			}
		}
		if len(keep) > 0 {
			out[k] = value.Set(keep...)
		}
	}
	return out
}

func eqTrue(v value.Value) bool { b, _ := v.AsBool(); return b }

// Minus returns G1 ∖ G2 per §A.5: nodes N1∖N2; edges of E1∖E2 whose
// endpoints survive; paths of P1∖P2 whose nodes and edges all survive.
// Labels and properties come from G1 unchanged. The result never has
// dangling edges or broken paths.
func Minus(name string, g1, g2 *Graph) *Graph {
	out := New(name)
	for _, id := range g1.NodeIDs() {
		if _, shared := g2.nodes[id]; !shared {
			mustAdd(out.AddNode(g1.nodes[id].Clone()))
		}
	}
	for _, id := range g1.EdgeIDs() {
		if _, shared := g2.edges[id]; shared {
			continue
		}
		e := g1.edges[id]
		if _, ok := out.nodes[e.Src]; !ok {
			continue
		}
		if _, ok := out.nodes[e.Dst]; !ok {
			continue
		}
		mustAdd(out.AddEdge(e.Clone()))
	}
	for _, id := range g1.PathIDs() {
		if _, shared := g2.paths[id]; shared {
			continue
		}
		p := g1.paths[id]
		if out.checkPathShape(p) == nil {
			mustAdd(out.AddPath(p.Clone()))
		}
	}
	return out
}

// mustAdd panics on insertion errors that the set-op algorithms make
// impossible by construction; a panic here is a bug in this package.
func mustAdd(err error) {
	if err != nil {
		panic("ppg: internal set-op invariant violated: " + err.Error())
	}
}
