package ppg

import (
	"strings"
	"testing"

	"gcore/internal/value"
)

// buildExampleGraph constructs the PPG of the paper's Figure 2 /
// Example 2.2: six nodes, seven edges and one stored path.
func buildExampleGraph(t *testing.T) *Graph {
	t.Helper()
	g := New("example")
	add := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	add(g.AddNode(&Node{ID: 101, Labels: NewLabels("Tag"), Props: NewProperties(map[string]value.Value{"name": value.Str("Wagner")})}))
	add(g.AddNode(&Node{ID: 102, Labels: NewLabels("Person", "Manager")}))
	add(g.AddNode(&Node{ID: 103, Labels: NewLabels("Person")}))
	add(g.AddNode(&Node{ID: 104, Labels: NewLabels("Person")}))
	add(g.AddNode(&Node{ID: 105, Labels: NewLabels("Person")}))
	add(g.AddNode(&Node{ID: 106, Labels: NewLabels("City"), Props: NewProperties(map[string]value.Value{"name": value.Str("Houston")})}))

	since, err := value.ParseDate("1/12/2014")
	if err != nil {
		t.Fatal(err)
	}
	add(g.AddEdge(&Edge{ID: 201, Src: 102, Dst: 101, Labels: NewLabels("hasInterest")}))
	add(g.AddEdge(&Edge{ID: 202, Src: 103, Dst: 102, Labels: NewLabels("knows")}))
	add(g.AddEdge(&Edge{ID: 203, Src: 102, Dst: 103, Labels: NewLabels("knows")}))
	add(g.AddEdge(&Edge{ID: 204, Src: 102, Dst: 106, Labels: NewLabels("isLocatedIn")}))
	add(g.AddEdge(&Edge{ID: 205, Src: 103, Dst: 105, Labels: NewLabels("knows"), Props: NewProperties(map[string]value.Value{"since": since})}))
	add(g.AddEdge(&Edge{ID: 206, Src: 105, Dst: 106, Labels: NewLabels("isLocatedIn")}))
	add(g.AddEdge(&Edge{ID: 207, Src: 105, Dst: 103, Labels: NewLabels("knows")}))

	add(g.AddPath(&Path{
		ID:     301,
		Nodes:  []NodeID{105, 103, 102},
		Edges:  []EdgeID{207, 202},
		Labels: NewLabels("toWagner"),
		Props:  NewProperties(map[string]value.Value{"trust": value.Float(0.95)}),
	}))
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestLabels(t *testing.T) {
	ls := NewLabels("Person", "Manager", "Person")
	if len(ls) != 2 {
		t.Fatalf("NewLabels dedup failed: %v", ls)
	}
	if !ls.Has("Person") || ls.Has("Tag") {
		t.Error("Has misbehaves")
	}
	if !ls.Add("Tag").Has("Tag") {
		t.Error("Add failed")
	}
	if got := ls.Add("Person"); len(got) != 2 {
		t.Error("Add of existing label should not grow the set")
	}
	if ls.Remove("Manager").Has("Manager") {
		t.Error("Remove failed")
	}
	if got := ls.Remove("Absent"); !got.Equal(ls) {
		t.Error("Remove of absent label should be identity")
	}
	if got := NewLabels("a", "b").Union(NewLabels("b", "c")); len(got) != 3 {
		t.Errorf("Union = %v", got)
	}
	if got := NewLabels("a", "b").Intersect(NewLabels("b", "c")); len(got) != 1 || got[0] != "b" {
		t.Errorf("Intersect = %v", got)
	}
	if !NewLabels("x").Equal(NewLabels("x")) || NewLabels("x").Equal(NewLabels("y")) {
		t.Error("Equal misbehaves")
	}
}

func TestProperties(t *testing.T) {
	p := Properties{}
	p.Set("employer", value.Str("Acme"))
	got := p.Get("employer")
	if got.Kind() != value.KindSet || got.Len() != 1 {
		t.Fatalf("scalar property must normalise to singleton set, got %v", got)
	}
	p.Set("employer", value.Set(value.Str("CWI"), value.Str("MIT")))
	if p.Get("employer").Len() != 2 {
		t.Error("multi-valued set lost")
	}
	if !p.Get("missing").IsNull() && p.Get("missing").Len() != 0 {
		t.Error("absent property must be the empty set")
	}
	// Setting to empty set removes the property (σ(x,k) = ∅).
	p.Set("employer", value.EmptySet)
	if _, ok := p["employer"]; ok {
		t.Error("setting ∅ should remove the property")
	}
	p.Set("a", value.Int(1))
	p.Set("b", value.Int(2))
	keys := p.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Errorf("Keys = %v", keys)
	}
	cl := p.Clone()
	cl.Set("a", value.Int(9))
	if value.Equal(p.Get("a"), cl.Get("a")) {
		t.Error("Clone must be independent")
	}
	if !p.Equal(NewProperties(map[string]value.Value{"a": value.Int(1), "b": value.Int(2)})) {
		t.Error("Equal failed")
	}
}

func TestExampleGraphShape(t *testing.T) {
	g := buildExampleGraph(t)
	if g.NumNodes() != 6 || g.NumEdges() != 7 || g.NumPaths() != 1 {
		t.Fatalf("example graph has %d/%d/%d elements", g.NumNodes(), g.NumEdges(), g.NumPaths())
	}
	p, ok := g.Path(301)
	if !ok {
		t.Fatal("path 301 missing")
	}
	// nodes(301) = [105, 103, 102] and edges(301) = [207, 202] — the
	// paper writes the node *set* {102,103,105} sorted; the list order
	// is traversal order.
	if p.Length() != 2 {
		t.Errorf("length(301) = %d", p.Length())
	}
	if p.Nodes[0] != 105 || p.Nodes[1] != 103 || p.Nodes[2] != 102 {
		t.Errorf("nodes(301) = %v", p.Nodes)
	}
	if p.Edges[0] != 207 || p.Edges[1] != 202 {
		t.Errorf("edges(301) = %v", p.Edges)
	}
	if e, _ := g.Edge(201); e.Src != 102 || e.Dst != 101 {
		t.Error("ρ(201) ≠ (102,101)")
	}
	ls, ok := g.LabelsOf(value.PathRef(301))
	if !ok || !ls.Has("toWagner") {
		t.Error("λ(301) must contain toWagner")
	}
	v, ok := g.PropOf(value.PathRef(301), "trust")
	if !ok || !value.Equal(v.Scalarize(), value.Float(0.95)) {
		t.Errorf("σ(301, trust) = %v", v)
	}
	if _, ok := g.LabelsOf(value.Int(3)); ok {
		t.Error("LabelsOf non-ref must fail")
	}
	if _, ok := g.PropOf(value.NodeRef(999), "x"); ok {
		t.Error("PropOf missing node must fail")
	}
}

func TestAdjacency(t *testing.T) {
	g := buildExampleGraph(t)
	out := g.OutEdges(102)
	if len(out) != 3 || out[0] != 201 || out[1] != 203 || out[2] != 204 {
		t.Errorf("out(102) = %v", out)
	}
	in := g.InEdges(106)
	if len(in) != 2 || in[0] != 204 || in[1] != 206 {
		t.Errorf("in(106) = %v", in)
	}
	if len(g.OutEdges(101)) != 0 {
		t.Error("Tag node has no out-edges")
	}
}

func TestInsertionErrors(t *testing.T) {
	g := New("g")
	if err := g.AddNode(&Node{ID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(&Node{ID: 1}); err == nil {
		t.Error("duplicate node must fail")
	}
	if err := g.AddEdge(&Edge{ID: 2, Src: 1, Dst: 99}); err == nil {
		t.Error("dangling edge must fail")
	}
	if err := g.AddEdge(&Edge{ID: 2, Src: 99, Dst: 1}); err == nil {
		t.Error("dangling edge must fail")
	}
	if err := g.AddNode(&Node{ID: 3}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(&Edge{ID: 4, Src: 1, Dst: 3}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(&Edge{ID: 4, Src: 1, Dst: 3}); err == nil {
		t.Error("duplicate edge must fail")
	}
	// Path validity: wrong arity, missing elements, non-adjacent edge.
	if err := g.AddPath(&Path{ID: 5, Nodes: []NodeID{1}, Edges: []EdgeID{4}}); err == nil {
		t.Error("path with wrong arity must fail")
	}
	if err := g.AddPath(&Path{ID: 5, Nodes: []NodeID{1, 99}, Edges: []EdgeID{4}}); err == nil {
		t.Error("path with missing node must fail")
	}
	if err := g.AddPath(&Path{ID: 5, Nodes: []NodeID{1, 3}, Edges: []EdgeID{99}}); err == nil {
		t.Error("path with missing edge must fail")
	}
	if err := g.AddNode(&Node{ID: 6}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddPath(&Path{ID: 5, Nodes: []NodeID{1, 6}, Edges: []EdgeID{4}}); err == nil {
		t.Error("path with non-adjacent edge must fail")
	}
	// Edges may be traversed backwards inside a path (Definition 2.1,
	// condition 3: ρ(ej) = (aj,aj+1) or (aj+1,aj)).
	if err := g.AddPath(&Path{ID: 5, Nodes: []NodeID{3, 1}, Edges: []EdgeID{4}}); err != nil {
		t.Errorf("backward edge traversal must be legal: %v", err)
	}
	if err := g.AddPath(&Path{ID: 5, Nodes: []NodeID{3, 1}, Edges: []EdgeID{4}}); err == nil {
		t.Error("duplicate path must fail")
	}
	// Zero-length paths (n = 0) are legal.
	if err := g.AddPath(&Path{ID: 7, Nodes: []NodeID{1}}); err != nil {
		t.Errorf("zero-length path must be legal: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := buildExampleGraph(t)
	cp := g.Clone()
	n, _ := cp.Node(101)
	n.Props.Set("name", value.Str("Verdi"))
	orig, _ := g.Node(101)
	if value.Equal(orig.Props.Get("name"), n.Props.Get("name")) {
		t.Error("Clone must deep-copy properties")
	}
	if err := cp.Validate(); err != nil {
		t.Fatal(err)
	}
	if cp.NumNodes() != g.NumNodes() || cp.NumEdges() != g.NumEdges() || cp.NumPaths() != g.NumPaths() {
		t.Error("Clone changed cardinalities")
	}
}

func TestStringAndEmpty(t *testing.T) {
	g := New("g")
	if !g.IsEmpty() {
		t.Error("new graph is empty")
	}
	if err := g.AddNode(&Node{ID: 1}); err != nil {
		t.Fatal(err)
	}
	if g.IsEmpty() {
		t.Error("graph with a node is not empty")
	}
	if !strings.Contains(g.String(), "1 nodes") {
		t.Errorf("String() = %q", g.String())
	}
}

func TestIDGen(t *testing.T) {
	gen := NewIDGen(1000)
	a := gen.NextNode()
	b := gen.NextEdge()
	c := gen.NextPath()
	if uint64(a) != 1000 || uint64(b) != 1001 || uint64(c) != 1002 {
		t.Errorf("ids = %d, %d, %d", a, b, c)
	}
	gen.Reserve(5000)
	if d := gen.NextNode(); uint64(d) != 5001 {
		t.Errorf("after Reserve(5000), next = %d", d)
	}
	gen.Reserve(10) // no-op: already past
	if d := gen.NextNode(); uint64(d) != 5002 {
		t.Errorf("Reserve must never move backwards, next = %d", d)
	}
}
