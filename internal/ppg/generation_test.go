package ppg

import (
	"reflect"
	"testing"
)

// genGraph builds a base graph for the mutator table: two labelled
// nodes, one edge, one stored path.
func genGraph(t *testing.T) *Graph {
	t.Helper()
	g := New("gen")
	if err := g.AddNode(&Node{ID: 1, Labels: NewLabels("A")}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(&Node{ID: 2, Labels: NewLabels("B")}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(&Edge{ID: 10, Src: 1, Dst: 2, Labels: NewLabels("e")}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddPath(&Path{ID: 20, Nodes: []NodeID{1, 2}, Edges: []EdgeID{10}}); err != nil {
		t.Fatal(err)
	}
	return g
}

// TestEveryMutatorBumpsGeneration walks every structural mutator and
// checks that each successful call advances the generation — the
// invariant the snapshot cache invalidation rests on.
func TestEveryMutatorBumpsGeneration(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(g *Graph) error
	}{
		{"AddNode", func(g *Graph) error { return g.AddNode(&Node{ID: 3, Labels: NewLabels("C")}) }},
		{"AddEdge", func(g *Graph) error { return g.AddEdge(&Edge{ID: 11, Src: 2, Dst: 1}) }},
		{"SetNodeLabels", func(g *Graph) error { return g.SetNodeLabels(1, NewLabels("A", "X")) }},
		{"SetEdgeLabels", func(g *Graph) error { return g.SetEdgeLabels(10, NewLabels("f")) }},
		{"AddPath", func(g *Graph) error { return g.AddPath(&Path{ID: 21, Nodes: []NodeID{2, 1}, Edges: []EdgeID{10}}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := genGraph(t)
			before := g.Generation()
			if err := tc.mutate(g); err != nil {
				t.Fatal(err)
			}
			if g.Generation() == before {
				t.Fatalf("%s did not bump the generation (still %d)", tc.name, before)
			}
		})
	}
}

// TestFailedMutationKeepsGeneration: rejected mutations change nothing
// and must not invalidate a valid snapshot.
func TestFailedMutationKeepsGeneration(t *testing.T) {
	g := genGraph(t)
	before := g.Generation()
	if err := g.AddNode(&Node{ID: 1}); err == nil {
		t.Fatal("duplicate AddNode accepted")
	}
	if err := g.AddEdge(&Edge{ID: 99, Src: 1, Dst: 404}); err == nil {
		t.Fatal("dangling AddEdge accepted")
	}
	if err := g.SetNodeLabels(404, nil); err == nil {
		t.Fatal("SetNodeLabels on a missing node accepted")
	}
	if g.Generation() != before {
		t.Fatalf("failed mutations moved the generation from %d to %d", before, g.Generation())
	}
}

// TestSnapshotCacheNeverServesStale drives the cache through the full
// mutate/rebuild cycle for every mutator.
func TestSnapshotCacheNeverServesStale(t *testing.T) {
	builds := 0
	build := func() any { builds++; return builds }

	g := genGraph(t)
	v1 := g.Snapshot(build)
	if v2 := g.Snapshot(build); v2 != v1 {
		t.Fatal("cache rebuilt without a mutation")
	}
	mutators := []func() error{
		func() error { return g.AddNode(&Node{ID: 5}) },
		func() error { return g.AddEdge(&Edge{ID: 12, Src: 5, Dst: 1}) },
		func() error { return g.SetNodeLabels(5, NewLabels("Z")) },
		func() error { return g.SetEdgeLabels(12, NewLabels("z")) },
		func() error { return g.AddPath(&Path{ID: 22, Nodes: []NodeID{5, 1}, Edges: []EdgeID{12}}) },
	}
	prev := v1
	for i, m := range mutators {
		if err := m(); err != nil {
			t.Fatalf("mutator %d: %v", i, err)
		}
		next := g.Snapshot(build)
		if next == prev {
			t.Fatalf("mutator %d: stale snapshot served after mutation", i)
		}
		if again := g.Snapshot(build); again != next {
			t.Fatalf("mutator %d: cache did not stabilise", i)
		}
		prev = next
	}
}

// TestCloneSnapshotIndependence: a clone has its own generation and
// snapshot cache; mutating either side never invalidates (or corrupts)
// the other's snapshot.
func TestCloneSnapshotIndependence(t *testing.T) {
	g := genGraph(t)
	gSnap := g.Snapshot(func() any { return "g1" })

	cp := g.Clone()
	cpSnap := cp.Snapshot(func() any { return "cp1" })
	if cpSnap == gSnap {
		t.Fatal("clone shares the snapshot cache with the original")
	}

	if err := cp.AddNode(&Node{ID: 30}); err != nil {
		t.Fatal(err)
	}
	if got := g.Snapshot(func() any { return "g2" }); got != gSnap {
		t.Fatal("mutating the clone invalidated the original's snapshot")
	}
	if got := cp.Snapshot(func() any { return "cp2" }); got != "cp2" {
		t.Fatal("mutating the clone did not invalidate the clone's snapshot")
	}

	if err := g.AddNode(&Node{ID: 31}); err != nil {
		t.Fatal(err)
	}
	if got := cp.Snapshot(func() any { return "cp3" }); got != "cp2" {
		t.Fatal("mutating the original invalidated the clone's snapshot")
	}
}

// TestIndexAccessorsReturnCopies is the slice-aliasing regression
// test: mutating a returned slice must not corrupt the graph's
// adjacency or label indexes.
func TestIndexAccessorsReturnCopies(t *testing.T) {
	g := genGraph(t)

	out := g.OutEdges(1)
	in := g.InEdges(2)
	byNodeLabel := g.NodesWithLabel("A")
	byEdgeLabel := g.EdgesWithLabel("e")
	for _, s := range [][]EdgeID{out, in, byEdgeLabel} {
		for i := range s {
			s[i] = 0xDEAD
		}
	}
	for i := range byNodeLabel {
		byNodeLabel[i] = 0xDEAD
	}

	if err := g.Validate(); err != nil {
		t.Fatalf("caller mutation corrupted the indexes: %v", err)
	}
	if got := g.OutEdges(1); !reflect.DeepEqual(got, []EdgeID{10}) {
		t.Fatalf("OutEdges(1) = %v after caller mutation", got)
	}
	if got := g.InEdges(2); !reflect.DeepEqual(got, []EdgeID{10}) {
		t.Fatalf("InEdges(2) = %v after caller mutation", got)
	}
	if got := g.NodesWithLabel("A"); !reflect.DeepEqual(got, []NodeID{1}) {
		t.Fatalf("NodesWithLabel(A) = %v after caller mutation", got)
	}
	if got := g.EdgesWithLabel("e"); !reflect.DeepEqual(got, []EdgeID{10}) {
		t.Fatalf("EdgesWithLabel(e) = %v after caller mutation", got)
	}
	// Absent labels still read as nil (no empty-slice allocation).
	if got := g.NodesWithLabel("Absent"); got != nil {
		t.Fatalf("NodesWithLabel(Absent) = %v, want nil", got)
	}
	// Size probes agree with the copies.
	if g.NumNodesWithLabel("A") != 1 || g.NumEdgesWithLabel("e") != 1 || g.NumNodesWithLabel("Absent") != 0 {
		t.Fatal("NumNodesWithLabel/NumEdgesWithLabel disagree with the index")
	}
}
