package ppg

import (
	"bytes"
	"strings"
	"testing"

	"gcore/internal/value"
)

func TestJSONRoundTrip(t *testing.T) {
	g := buildExampleGraph(t)
	data, err := g.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back := New("")
	if err := back.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	if !sameGraph(g, back) {
		t.Fatal("JSON round-trip changed the graph")
	}
	p, ok := back.Path(301)
	if !ok {
		t.Fatal("stored path lost in round-trip")
	}
	if !value.Equal(p.Props.Get("trust").Scalarize(), value.Float(0.95)) {
		t.Errorf("trust = %v", p.Props.Get("trust"))
	}
	if back.Name() != "example" {
		t.Errorf("name = %q", back.Name())
	}
}

func TestJSONMultiValuedProperty(t *testing.T) {
	g := New("g")
	if err := g.AddNode(&Node{ID: 1, Props: NewProperties(map[string]value.Value{
		"employer": value.Set(value.Str("CWI"), value.Str("MIT")),
	})}); err != nil {
		t.Fatal(err)
	}
	data, err := g.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"set"`) {
		t.Errorf("multi-valued property must use the set wrapper: %s", data)
	}
	back := New("")
	if err := back.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	n, _ := back.Node(1)
	if n.Props.Get("employer").Len() != 2 {
		t.Error("multi-valued property lost")
	}
}

func TestReadJSONReservesIDs(t *testing.T) {
	g := buildExampleGraph(t)
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	gen := NewIDGen(1)
	back, err := ReadJSON(&buf, gen)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != 6 {
		t.Fatalf("reload lost nodes")
	}
	if id := gen.NextNode(); uint64(id) <= 301 {
		t.Errorf("generator must be reserved past loaded ids, got %d", id)
	}
}

func TestUnmarshalRejectsInvalid(t *testing.T) {
	cases := []string{
		`{`, // syntax
		`{"name":"g","nodes":[{"id":1},{"id":1}]}`,                                    // dup node
		`{"name":"g","nodes":[{"id":1}],"edges":[{"id":2,"src":1,"dst":9}]}`,          // dangling
		`{"name":"g","nodes":[{"id":1}],"paths":[{"id":3,"nodes":[1],"edges":[99]}]}`, // bad path
		`{"name":"g","nodes":[{"id":1,"properties":{"k":{"bogus":1}}}]}`,              // bad value
	}
	for _, c := range cases {
		g := New("")
		if err := g.UnmarshalJSON([]byte(c)); err == nil {
			t.Errorf("UnmarshalJSON accepted invalid document %q", c)
		}
	}
}
