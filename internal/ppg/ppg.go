// Package ppg implements the Path Property Graph data model of G-CORE
// (Definition 2.1): a property graph G = (N, E, P, ρ, δ, λ, σ) whose
// third component is a finite set of *stored paths* — first-class
// citizens with identity, labels and ⟨property,value⟩ pairs, exactly
// like nodes and edges.
//
// Identifiers are engine-unique unsigned integers so that the "full
// graph" operations of §A.5 (union, intersection, difference), which
// are defined in terms of node, edge and path identity, work across
// the graphs of one engine. Iteration order is always ascending by
// identifier, giving the deterministic evaluation the paper's
// fixed-order tie-breaking requires (§A.1, footnote 4).
package ppg

import (
	"fmt"
	"sort"
	"sync"

	"gcore/internal/value"
)

// NodeID identifies a node (an element of N).
type NodeID uint64

// EdgeID identifies an edge (an element of E).
type EdgeID uint64

// PathID identifies a stored path (an element of P).
type PathID uint64

// Labels is a sorted, duplicate-free set of label names (λ values).
type Labels []string

// NewLabels builds a normalised label set.
func NewLabels(names ...string) Labels {
	ls := append(Labels(nil), names...)
	sort.Strings(ls)
	out := ls[:0]
	for i, l := range ls {
		if i == 0 || ls[i-1] != l {
			out = append(out, l)
		}
	}
	return out
}

// Has reports whether the label set contains name.
func (ls Labels) Has(name string) bool {
	i := sort.SearchStrings(ls, name)
	return i < len(ls) && ls[i] == name
}

// Add returns a label set extended with name.
func (ls Labels) Add(name string) Labels {
	if ls.Has(name) {
		return ls
	}
	return NewLabels(append(append(Labels(nil), ls...), name)...)
}

// Remove returns a label set without name.
func (ls Labels) Remove(name string) Labels {
	if !ls.Has(name) {
		return ls
	}
	out := make(Labels, 0, len(ls)-1)
	for _, l := range ls {
		if l != name {
			out = append(out, l)
		}
	}
	return out
}

// Union returns the union of two label sets.
func (ls Labels) Union(other Labels) Labels {
	return NewLabels(append(append([]string(nil), ls...), other...)...)
}

// Intersect returns the intersection of two label sets.
func (ls Labels) Intersect(other Labels) Labels {
	out := Labels{}
	for _, l := range ls {
		if other.Has(l) {
			out = append(out, l)
		}
	}
	return out
}

// Equal reports whether two label sets contain the same labels.
func (ls Labels) Equal(other Labels) bool {
	if len(ls) != len(other) {
		return false
	}
	for i := range ls {
		if ls[i] != other[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (ls Labels) Clone() Labels { return append(Labels(nil), ls...) }

// Properties maps property names to their (finite set of) values:
// σ(x, k) ∈ FSET(V). Every stored value has kind set; absent keys
// denote σ(x,k) = ∅.
type Properties map[string]value.Value

// NewProperties builds a property map, normalising every value to a
// set (scalars become singleton sets, per the data model).
func NewProperties(kv map[string]value.Value) Properties {
	p := make(Properties, len(kv))
	for k, v := range kv {
		p.Set(k, v)
	}
	return p
}

// Set stores v under k, normalising to a set. Setting an empty set or
// Null removes the property (σ(x,k) = ∅ means "not defined").
func (p Properties) Set(k string, v value.Value) {
	var sv value.Value
	switch v.Kind() {
	case value.KindSet:
		sv = v
	case value.KindNull:
		sv = value.EmptySet
	default:
		sv = value.Set(v)
	}
	if sv.Len() == 0 {
		delete(p, k)
		return
	}
	p[k] = sv
}

// Get returns σ(x,k): the value set, or the empty set if undefined.
func (p Properties) Get(k string) value.Value {
	if v, ok := p[k]; ok {
		return v
	}
	return value.EmptySet
}

// Keys returns the defined property names in sorted order.
func (p Properties) Keys() []string {
	ks := make([]string, 0, len(p))
	for k := range p {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Clone returns an independent copy (values are immutable, so a
// shallow copy of the map suffices).
func (p Properties) Clone() Properties {
	cp := make(Properties, len(p))
	for k, v := range p {
		cp[k] = v
	}
	return cp
}

// Equal reports whether two property maps are extensionally equal.
func (p Properties) Equal(other Properties) bool {
	if len(p) != len(other) {
		return false
	}
	for k, v := range p {
		ov, ok := other[k]
		if !ok || !value.Equal(v, ov) {
			return false
		}
	}
	return true
}

// Node is an element of N with its λ and σ assignments.
type Node struct {
	ID     NodeID
	Labels Labels
	Props  Properties
}

// Clone returns an independent copy of the node.
func (n *Node) Clone() *Node {
	return &Node{ID: n.ID, Labels: n.Labels.Clone(), Props: n.Props.Clone()}
}

// Edge is an element of E; ρ(e) = (Src, Dst).
type Edge struct {
	ID       EdgeID
	Src, Dst NodeID
	Labels   Labels
	Props    Properties
}

// Clone returns an independent copy of the edge.
func (e *Edge) Clone() *Edge {
	return &Edge{ID: e.ID, Src: e.Src, Dst: e.Dst, Labels: e.Labels.Clone(), Props: e.Props.Clone()}
}

// Path is an element of P. δ(p) = [Nodes[0], Edges[0], Nodes[1], ...,
// Edges[n-1], Nodes[n]]: len(Nodes) == len(Edges)+1, and each Edges[i]
// connects Nodes[i] and Nodes[i+1] in either direction (Definition
// 2.1, condition 3).
type Path struct {
	ID     PathID
	Nodes  []NodeID
	Edges  []EdgeID
	Labels Labels
	Props  Properties
}

// Clone returns an independent copy of the path.
func (p *Path) Clone() *Path {
	return &Path{
		ID:     p.ID,
		Nodes:  append([]NodeID(nil), p.Nodes...),
		Edges:  append([]EdgeID(nil), p.Edges...),
		Labels: p.Labels.Clone(),
		Props:  p.Props.Clone(),
	}
}

// Length returns the hop count n of the path (its number of edges),
// the default path cost of the language.
func (p *Path) Length() int { return len(p.Edges) }

// Graph is a Path Property Graph.
type Graph struct {
	name  string
	nodes map[NodeID]*Node
	edges map[EdgeID]*Edge
	paths map[PathID]*Path

	// Adjacency indexes: per node the identifiers of outgoing and
	// incoming edges, kept sorted for deterministic traversal.
	out map[NodeID][]EdgeID
	in  map[NodeID][]EdgeID

	// Secondary label indexes: per label the identifiers of the nodes
	// and edges carrying it, kept sorted so indexed scans visit
	// elements in the same ascending order as full scans.
	nodesByLabel map[string][]NodeID
	edgesByLabel map[string][]EdgeID

	// gen counts structural mutations (nodes, edges, paths, labels).
	// Derived read-only structures — the CSR snapshot of internal/csr
	// — are tagged with the generation they were built at, so a stale
	// one is never served after a mutation.
	gen uint64

	// Generation-tagged snapshot cache. The cached value is opaque to
	// ppg (internal/csr stores its Snapshot here; keeping the type
	// abstract avoids an import cycle between the data model and its
	// derived layouts).
	snapMu  sync.Mutex
	snapGen uint64
	snapVal any

	// Delta recording for incremental snapshot maintenance (delta.go):
	// while deltaOK, every tracked mutation appends the touched
	// identifier to delta, letting SnapshotWith extend the cached
	// snapshot instead of rebuilding. Guarded by the same discipline as
	// gen: mutation is never concurrent with snapshot access.
	deltaOK bool
	delta   Delta

	// hook, when set, observes every mutation before it is applied
	// (the write-ahead boundary of the durability layer). A hook error
	// rejects the mutation and leaves the graph untouched.
	hook MutationHook
}

// MutOp enumerates the mutations a MutationHook observes — exactly
// the generation-bumping mutator surface of Graph.
type MutOp uint8

// The mutation kinds.
const (
	// MutAddNode carries the node about to be inserted in Node.
	MutAddNode MutOp = iota + 1
	// MutAddEdge carries the edge about to be inserted in Edge.
	MutAddEdge
	// MutAddPath carries the stored path about to be inserted in Path.
	MutAddPath
	// MutSetNodeLabels carries NodeID and the replacement Labels.
	MutSetNodeLabels
	// MutSetEdgeLabels carries EdgeID and the replacement Labels.
	MutSetEdgeLabels
	// MutSetNodeProps carries NodeID and the replacement Props.
	MutSetNodeProps
	// MutSetEdgeProps carries EdgeID and the replacement Props.
	MutSetEdgeProps
	// MutSetPathProps carries PathID and the replacement Props.
	MutSetPathProps
	// MutTouchProps reports an untracked in-place property write
	// (Graph.TouchProps): the graph's current state already includes
	// the change, but the hook cannot know which element it was.
	// Durability layers respond by snapshotting the whole graph.
	MutTouchProps
	// MutReplace reports wholesale replacement of the graph's contents
	// (UnmarshalJSON on a live graph); Snapshot holds the new content.
	MutReplace
)

func (op MutOp) String() string {
	switch op {
	case MutAddNode:
		return "add-node"
	case MutAddEdge:
		return "add-edge"
	case MutAddPath:
		return "add-path"
	case MutSetNodeLabels:
		return "set-node-labels"
	case MutSetEdgeLabels:
		return "set-edge-labels"
	case MutSetNodeProps:
		return "set-node-props"
	case MutSetEdgeProps:
		return "set-edge-props"
	case MutSetPathProps:
		return "set-path-props"
	case MutTouchProps:
		return "touch-props"
	case MutReplace:
		return "replace"
	}
	return fmt.Sprintf("MutOp(%d)", uint8(op))
}

// Mutation describes one mutation about to be applied to a graph.
// Only the fields relevant to Op are set; the referenced objects are
// the live ones — hooks must not retain or modify them.
type Mutation struct {
	Op       MutOp
	Node     *Node      // MutAddNode
	Edge     *Edge      // MutAddEdge
	Path     *Path      // MutAddPath
	NodeID   NodeID     // MutSetNodeLabels, MutSetNodeProps
	EdgeID   EdgeID     // MutSetEdgeLabels, MutSetEdgeProps
	PathID   PathID     // MutSetPathProps
	Labels   Labels     // MutSetNodeLabels, MutSetEdgeLabels
	Props    Properties // MutSet*Props
	Snapshot *Graph     // MutReplace: the replacement contents
}

// MutationHook observes mutations of one graph before they apply; see
// SetMutationHook.
type MutationHook func(g *Graph, m Mutation) error

// SetMutationHook installs (or with nil removes) the graph's mutation
// hook. The hook runs after a mutation is validated and before it is
// applied; returning an error rejects the mutation, leaving the graph
// exactly as it was. This is the write-ahead boundary the durability
// layer logs at. Clones do not inherit the hook.
func (g *Graph) SetMutationHook(h MutationHook) { g.hook = h }

// fireHook runs the mutation hook, if any.
func (g *Graph) fireHook(m Mutation) error {
	if g.hook == nil {
		return nil
	}
	return g.hook(g, m)
}

// New creates an empty graph with the given name.
func New(name string) *Graph {
	return &Graph{
		name:         name,
		nodes:        map[NodeID]*Node{},
		edges:        map[EdgeID]*Edge{},
		paths:        map[PathID]*Path{},
		out:          map[NodeID][]EdgeID{},
		in:           map[NodeID][]EdgeID{},
		nodesByLabel: map[string][]NodeID{},
		edgesByLabel: map[string][]EdgeID{},
	}
}

// Name returns the graph's name (the gid it is registered under).
func (g *Graph) Name() string { return g.name }

// Generation returns the structural mutation counter. It increases on
// every successful AddNode/AddEdge/AddPath/SetNodeLabels/SetEdgeLabels
// (and therefore on the graphs the set operations build, which insert
// element by element), and on TouchProps. Derived structures built at
// generation G are valid exactly while Generation() == G.
func (g *Graph) Generation() uint64 { return g.gen }

// bump invalidates derived structures after a structural mutation.
func (g *Graph) bump() { g.gen++ }

// TouchProps records an in-place property write on an existing
// element. Property writes do not change structure, but derived
// structures now freeze property values too (the CSR snapshot's
// columns), so code that mutates a Props map it did not just create
// must invalidate them like any other mutation. Unlike the tracked
// mutators, TouchProps fires after the write has already happened and
// cannot identify the element, so the hook sees MutTouchProps with no
// payload and cannot reject it — a durability hook that fails here
// must poison its log rather than roll back. Prefer SetNodeProps /
// SetEdgeProps / SetPathProps, which are loggable and rejectable.
func (g *Graph) TouchProps() {
	_ = g.fireHook(Mutation{Op: MutTouchProps})
	g.dropDelta()
	g.bump()
}

// Snapshot returns the value cached for the current generation,
// building and caching it via build on a miss. It is safe for
// concurrent readers; the build function runs under the cache lock, so
// concurrent first readers share one build. Mutating the graph bumps
// the generation and makes the cached value unreachable — a stale
// snapshot is never served.
func (g *Graph) Snapshot(build func() any) any {
	return g.SnapshotWith(build, nil)
}

// replace moves out's contents into g field by field, leaving g's
// snapshot-cache lock in place (a whole-struct copy would copy the
// mutex). Any snapshot cached for g's previous contents is dropped.
// The hook sees the wholesale swap as MutReplace carrying the new
// contents and may reject it.
func (g *Graph) replace(out *Graph) error {
	if err := g.fireHook(Mutation{Op: MutReplace, Snapshot: out}); err != nil {
		return err
	}
	g.name = out.name
	g.nodes = out.nodes
	g.edges = out.edges
	g.paths = out.paths
	g.out = out.out
	g.in = out.in
	g.nodesByLabel = out.nodesByLabel
	g.edgesByLabel = out.edgesByLabel
	g.gen = out.gen
	g.snapGen = 0
	g.snapVal = nil
	g.dropDelta()
	return nil
}

// ReplaceWith replaces g's entire contents (name included) with those
// of out, as UnmarshalJSON does. The mutation hook sees it as
// MutReplace and may reject it; the hook installation itself is kept.
// The durability layer uses it to apply logged whole-graph snapshots.
func (g *Graph) ReplaceWith(out *Graph) error { return g.replace(out) }

// SetName renames the graph.
func (g *Graph) SetName(name string) { g.name = name }

// NumNodes, NumEdges and NumPaths report |N|, |E| and |P|.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges reports |E|.
func (g *Graph) NumEdges() int { return len(g.edges) }

// NumPaths reports |P|.
func (g *Graph) NumPaths() int { return len(g.paths) }

// IsEmpty reports whether the graph has no nodes (the paper's G∅ test,
// used by EXISTS: "N ≠ ∅").
func (g *Graph) IsEmpty() bool { return len(g.nodes) == 0 }

// AddNode inserts a node. Inserting an existing identifier is an
// error: identities are engine-unique.
func (g *Graph) AddNode(n *Node) error {
	if _, dup := g.nodes[n.ID]; dup {
		return fmt.Errorf("ppg: graph %q already contains node #%d", g.name, n.ID)
	}
	if n.Props == nil {
		n.Props = Properties{}
	}
	if err := g.fireHook(Mutation{Op: MutAddNode, Node: n}); err != nil {
		return err
	}
	g.nodes[n.ID] = n
	for _, l := range n.Labels {
		g.nodesByLabel[l] = insertSorted(g.nodesByLabel[l], n.ID)
	}
	g.noteAddNode(n.ID)
	g.bump()
	return nil
}

// AddEdge inserts an edge; both endpoints must already be present
// (no dangling edges, ever).
func (g *Graph) AddEdge(e *Edge) error {
	if _, dup := g.edges[e.ID]; dup {
		return fmt.Errorf("ppg: graph %q already contains edge #%d", g.name, e.ID)
	}
	if _, ok := g.nodes[e.Src]; !ok {
		return fmt.Errorf("ppg: edge #%d starts at missing node #%d", e.ID, e.Src)
	}
	if _, ok := g.nodes[e.Dst]; !ok {
		return fmt.Errorf("ppg: edge #%d ends at missing node #%d", e.ID, e.Dst)
	}
	if e.Props == nil {
		e.Props = Properties{}
	}
	if err := g.fireHook(Mutation{Op: MutAddEdge, Edge: e}); err != nil {
		return err
	}
	g.edges[e.ID] = e
	g.out[e.Src] = insertSorted(g.out[e.Src], e.ID)
	g.in[e.Dst] = insertSorted(g.in[e.Dst], e.ID)
	for _, l := range e.Labels {
		g.edgesByLabel[l] = insertSorted(g.edgesByLabel[l], e.ID)
	}
	g.noteAddEdge(e.ID)
	g.bump()
	return nil
}

// SetNodeLabels replaces λ(n) for an already-inserted node, keeping
// the label index consistent. Mutating a node's Labels field directly
// after insertion leaves the index stale; all engine code goes
// through this method instead.
func (g *Graph) SetNodeLabels(id NodeID, ls Labels) error {
	n, ok := g.nodes[id]
	if !ok {
		return fmt.Errorf("ppg: graph %q has no node #%d", g.name, id)
	}
	if err := g.fireHook(Mutation{Op: MutSetNodeLabels, NodeID: id, Labels: ls}); err != nil {
		return err
	}
	for _, l := range n.Labels {
		g.nodesByLabel[l] = removeSorted(g.nodesByLabel[l], id)
		if len(g.nodesByLabel[l]) == 0 {
			delete(g.nodesByLabel, l)
		}
	}
	n.Labels = ls
	for _, l := range n.Labels {
		g.nodesByLabel[l] = insertSorted(g.nodesByLabel[l], id)
	}
	g.noteNodeLabels(id)
	g.bump()
	return nil
}

// SetEdgeLabels replaces λ(e) for an already-inserted edge, keeping
// the label index consistent.
func (g *Graph) SetEdgeLabels(id EdgeID, ls Labels) error {
	e, ok := g.edges[id]
	if !ok {
		return fmt.Errorf("ppg: graph %q has no edge #%d", g.name, id)
	}
	if err := g.fireHook(Mutation{Op: MutSetEdgeLabels, EdgeID: id, Labels: ls}); err != nil {
		return err
	}
	for _, l := range e.Labels {
		g.edgesByLabel[l] = removeSorted(g.edgesByLabel[l], id)
		if len(g.edgesByLabel[l]) == 0 {
			delete(g.edgesByLabel, l)
		}
	}
	e.Labels = ls
	for _, l := range e.Labels {
		g.edgesByLabel[l] = insertSorted(g.edgesByLabel[l], id)
	}
	g.noteEdgeLabels(id)
	g.bump()
	return nil
}

// SetNodeProps replaces σ(n) for an already-inserted node. Unlike
// mutating the Props map in place and calling TouchProps, this is a
// tracked mutation: the hook sees the element and the new map and may
// reject the write before it lands.
func (g *Graph) SetNodeProps(id NodeID, p Properties) error {
	n, ok := g.nodes[id]
	if !ok {
		return fmt.Errorf("ppg: graph %q has no node #%d", g.name, id)
	}
	if p == nil {
		p = Properties{}
	}
	if err := g.fireHook(Mutation{Op: MutSetNodeProps, NodeID: id, Props: p}); err != nil {
		return err
	}
	n.Props = p
	g.noteNodeProps(id)
	g.bump()
	return nil
}

// SetEdgeProps replaces σ(e) for an already-inserted edge.
func (g *Graph) SetEdgeProps(id EdgeID, p Properties) error {
	e, ok := g.edges[id]
	if !ok {
		return fmt.Errorf("ppg: graph %q has no edge #%d", g.name, id)
	}
	if p == nil {
		p = Properties{}
	}
	if err := g.fireHook(Mutation{Op: MutSetEdgeProps, EdgeID: id, Props: p}); err != nil {
		return err
	}
	e.Props = p
	g.noteEdgeProps(id)
	g.bump()
	return nil
}

// SetPathProps replaces σ(p) for an already-inserted stored path.
func (g *Graph) SetPathProps(id PathID, p Properties) error {
	sp, ok := g.paths[id]
	if !ok {
		return fmt.Errorf("ppg: graph %q has no path #%d", g.name, id)
	}
	if p == nil {
		p = Properties{}
	}
	if err := g.fireHook(Mutation{Op: MutSetPathProps, PathID: id, Props: p}); err != nil {
		return err
	}
	sp.Props = p
	g.bump()
	return nil
}

// AddPath inserts a stored path after checking condition (3) of
// Definition 2.1: the sequence alternates existing nodes and edges,
// and each edge connects the surrounding nodes in either direction.
func (g *Graph) AddPath(p *Path) error {
	if _, dup := g.paths[p.ID]; dup {
		return fmt.Errorf("ppg: graph %q already contains path #%d", g.name, p.ID)
	}
	if err := g.checkPathShape(p); err != nil {
		return err
	}
	if p.Props == nil {
		p.Props = Properties{}
	}
	if err := g.fireHook(Mutation{Op: MutAddPath, Path: p}); err != nil {
		return err
	}
	g.paths[p.ID] = p
	g.bump()
	return nil
}

func (g *Graph) checkPathShape(p *Path) error {
	if len(p.Nodes) != len(p.Edges)+1 {
		return fmt.Errorf("ppg: path #%d has %d nodes and %d edges; need n+1 nodes for n edges",
			p.ID, len(p.Nodes), len(p.Edges))
	}
	for _, nid := range p.Nodes {
		if _, ok := g.nodes[nid]; !ok {
			return fmt.Errorf("ppg: path #%d references missing node #%d", p.ID, nid)
		}
	}
	for i, eid := range p.Edges {
		e, ok := g.edges[eid]
		if !ok {
			return fmt.Errorf("ppg: path #%d references missing edge #%d", p.ID, eid)
		}
		a, b := p.Nodes[i], p.Nodes[i+1]
		if !(e.Src == a && e.Dst == b) && !(e.Src == b && e.Dst == a) {
			return fmt.Errorf("ppg: path #%d: edge #%d does not connect #%d and #%d", p.ID, eid, a, b)
		}
	}
	return nil
}

// Node returns the node with the given identifier.
func (g *Graph) Node(id NodeID) (*Node, bool) { n, ok := g.nodes[id]; return n, ok }

// Edge returns the edge with the given identifier.
func (g *Graph) Edge(id EdgeID) (*Edge, bool) { e, ok := g.edges[id]; return e, ok }

// Path returns the stored path with the given identifier.
func (g *Graph) Path(id PathID) (*Path, bool) { p, ok := g.paths[id]; return p, ok }

// NodeIDs returns all node identifiers in ascending order.
func (g *Graph) NodeIDs() []NodeID {
	ids := make([]NodeID, 0, len(g.nodes))
	for id := range g.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// EdgeIDs returns all edge identifiers in ascending order.
func (g *Graph) EdgeIDs() []EdgeID {
	ids := make([]EdgeID, 0, len(g.edges))
	for id := range g.edges {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// PathIDs returns all stored-path identifiers in ascending order.
func (g *Graph) PathIDs() []PathID {
	ids := make([]PathID, 0, len(g.paths))
	for id := range g.paths {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// OutEdges returns the identifiers of edges leaving n, ascending. The
// slice is the caller's to keep: it is a copy, detached from the
// adjacency index. Hot loops use the CSR snapshot (internal/csr)
// instead, which exposes zero-copy ranges.
func (g *Graph) OutEdges(n NodeID) []EdgeID { return append([]EdgeID(nil), g.out[n]...) }

// InEdges returns the identifiers of edges entering n, ascending, as a
// copy detached from the adjacency index.
func (g *Graph) InEdges(n NodeID) []EdgeID { return append([]EdgeID(nil), g.in[n]...) }

// NodesWithLabel returns, ascending, the identifiers of the nodes
// carrying the label, as a copy detached from the label index.
func (g *Graph) NodesWithLabel(label string) []NodeID {
	return append([]NodeID(nil), g.nodesByLabel[label]...)
}

// EdgesWithLabel returns, ascending, the identifiers of the edges
// carrying the label, as a copy detached from the label index.
func (g *Graph) EdgesWithLabel(label string) []EdgeID {
	return append([]EdgeID(nil), g.edgesByLabel[label]...)
}

// NumNodesWithLabel reports the size of a label's node bucket without
// copying it (selectivity estimation).
func (g *Graph) NumNodesWithLabel(label string) int { return len(g.nodesByLabel[label]) }

// NumEdgesWithLabel reports the size of a label's edge bucket without
// copying it.
func (g *Graph) NumEdgesWithLabel(label string) int { return len(g.edgesByLabel[label]) }

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	cp := New(g.name)
	for id, n := range g.nodes {
		cp.nodes[id] = n.Clone()
		for _, l := range n.Labels {
			cp.nodesByLabel[l] = insertSorted(cp.nodesByLabel[l], id)
		}
	}
	for id, e := range g.edges {
		cp.edges[id] = e.Clone()
		cp.out[e.Src] = insertSorted(cp.out[e.Src], e.ID)
		cp.in[e.Dst] = insertSorted(cp.in[e.Dst], e.ID)
		for _, l := range e.Labels {
			cp.edgesByLabel[l] = insertSorted(cp.edgesByLabel[l], id)
		}
	}
	for id, p := range g.paths {
		cp.paths[id] = p.Clone()
	}
	return cp
}

// LabelsOf returns λ(x) for a node/edge/path reference value.
func (g *Graph) LabelsOf(ref value.Value) (Labels, bool) {
	id, ok := ref.RefID()
	if !ok {
		return nil, false
	}
	switch ref.Kind() {
	case value.KindNode:
		if n, ok := g.nodes[NodeID(id)]; ok {
			return n.Labels, true
		}
	case value.KindEdge:
		if e, ok := g.edges[EdgeID(id)]; ok {
			return e.Labels, true
		}
	case value.KindPath:
		if p, ok := g.paths[PathID(id)]; ok {
			return p.Labels, true
		}
	}
	return nil, false
}

// PropOf returns σ(x, k) for a node/edge/path reference value.
func (g *Graph) PropOf(ref value.Value, k string) (value.Value, bool) {
	id, ok := ref.RefID()
	if !ok {
		return value.Null, false
	}
	switch ref.Kind() {
	case value.KindNode:
		if n, ok := g.nodes[NodeID(id)]; ok {
			return n.Props.Get(k), true
		}
	case value.KindEdge:
		if e, ok := g.edges[EdgeID(id)]; ok {
			return e.Props.Get(k), true
		}
	case value.KindPath:
		if p, ok := g.paths[PathID(id)]; ok {
			return p.Props.Get(k), true
		}
	}
	return value.Null, false
}

// Validate checks every invariant of Definition 2.1: endpoint
// existence (ρ total into N×N), path well-formedness (δ), and index
// consistency. It is used by tests and by failure-injection checks.
func (g *Graph) Validate() error {
	for id, e := range g.edges {
		if id != e.ID {
			return fmt.Errorf("ppg: edge indexed under #%d has ID #%d", id, e.ID)
		}
		if _, ok := g.nodes[e.Src]; !ok {
			return fmt.Errorf("ppg: dangling edge #%d (missing source #%d)", e.ID, e.Src)
		}
		if _, ok := g.nodes[e.Dst]; !ok {
			return fmt.Errorf("ppg: dangling edge #%d (missing destination #%d)", e.ID, e.Dst)
		}
		if !containsSorted(g.out[e.Src], e.ID) || !containsSorted(g.in[e.Dst], e.ID) {
			return fmt.Errorf("ppg: adjacency index missing edge #%d", e.ID)
		}
	}
	for id, n := range g.nodes {
		if id != n.ID {
			return fmt.Errorf("ppg: node indexed under #%d has ID #%d", id, n.ID)
		}
	}
	for id, p := range g.paths {
		if id != p.ID {
			return fmt.Errorf("ppg: path indexed under #%d has ID #%d", id, p.ID)
		}
		if err := g.checkPathShape(p); err != nil {
			return err
		}
	}
	for nid, es := range g.out {
		for _, eid := range es {
			e, ok := g.edges[eid]
			if !ok || e.Src != nid {
				return fmt.Errorf("ppg: stale out-index entry #%d at node #%d", eid, nid)
			}
		}
	}
	for nid, es := range g.in {
		for _, eid := range es {
			e, ok := g.edges[eid]
			if !ok || e.Dst != nid {
				return fmt.Errorf("ppg: stale in-index entry #%d at node #%d", eid, nid)
			}
		}
	}
	for _, n := range g.nodes {
		for _, l := range n.Labels {
			if !containsSorted(g.nodesByLabel[l], n.ID) {
				return fmt.Errorf("ppg: label index missing node #%d under %q", n.ID, l)
			}
		}
	}
	for l, ids := range g.nodesByLabel {
		for _, id := range ids {
			n, ok := g.nodes[id]
			if !ok || !n.Labels.Has(l) {
				return fmt.Errorf("ppg: stale label-index entry: node #%d under %q", id, l)
			}
		}
	}
	for _, e := range g.edges {
		for _, l := range e.Labels {
			if !containsSorted(g.edgesByLabel[l], e.ID) {
				return fmt.Errorf("ppg: label index missing edge #%d under %q", e.ID, l)
			}
		}
	}
	for l, ids := range g.edgesByLabel {
		for _, id := range ids {
			e, ok := g.edges[id]
			if !ok || !e.Labels.Has(l) {
				return fmt.Errorf("ppg: stale label-index entry: edge #%d under %q", id, l)
			}
		}
	}
	return nil
}

// String summarises the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("graph %q (%d nodes, %d edges, %d paths)", g.name, len(g.nodes), len(g.edges), len(g.paths))
}

func insertSorted[T ~uint64](s []T, id T) []T {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	if i < len(s) && s[i] == id {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = id
	return s
}

func removeSorted[T ~uint64](s []T, id T) []T {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	if i < len(s) && s[i] == id {
		return append(s[:i], s[i+1:]...)
	}
	return s
}

func containsSorted[T ~uint64](s []T, id T) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	return i < len(s) && s[i] == id
}
