package ppg

import (
	"reflect"
	"strings"
	"testing"
)

// checkIndexes validates the label indexes of g against a from-scratch
// rebuild, independently of Validate's own consistency checks.
func checkIndexes(t *testing.T, g *Graph) {
	t.Helper()
	wantNodes := map[string][]NodeID{}
	for _, id := range g.NodeIDs() {
		n, _ := g.Node(id)
		for _, l := range n.Labels {
			wantNodes[l] = append(wantNodes[l], id)
		}
	}
	for l, want := range wantNodes {
		if got := g.NodesWithLabel(l); !reflect.DeepEqual(got, want) {
			t.Errorf("NodesWithLabel(%q) = %v, want %v", l, got, want)
		}
	}
	for l := range g.nodesByLabel {
		if wantNodes[l] == nil {
			t.Errorf("stale node-label bucket %q: %v", l, g.nodesByLabel[l])
		}
	}
	wantEdges := map[string][]EdgeID{}
	for _, id := range g.EdgeIDs() {
		e, _ := g.Edge(id)
		for _, l := range e.Labels {
			wantEdges[l] = append(wantEdges[l], id)
		}
	}
	for l, want := range wantEdges {
		if got := g.EdgesWithLabel(l); !reflect.DeepEqual(got, want) {
			t.Errorf("EdgesWithLabel(%q) = %v, want %v", l, got, want)
		}
	}
	for l := range g.edgesByLabel {
		if wantEdges[l] == nil {
			t.Errorf("stale edge-label bucket %q: %v", l, g.edgesByLabel[l])
		}
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestLabelIndexMaintained(t *testing.T) {
	g := buildExampleGraph(t)
	checkIndexes(t, g)

	if got := g.NodesWithLabel("Person"); !reflect.DeepEqual(got, []NodeID{102, 103, 104, 105}) {
		t.Errorf("NodesWithLabel(Person) = %v", got)
	}
	if got := g.EdgesWithLabel("knows"); !reflect.DeepEqual(got, []EdgeID{202, 203, 205, 207}) {
		t.Errorf("EdgesWithLabel(knows) = %v", got)
	}
	if got := g.NodesWithLabel("Absent"); got != nil {
		t.Errorf("NodesWithLabel(Absent) = %v, want nil", got)
	}

	// Out-of-order inserts must keep buckets sorted.
	if err := g.AddNode(&Node{ID: 90, Labels: NewLabels("Person")}); err != nil {
		t.Fatal(err)
	}
	if got := g.NodesWithLabel("Person"); !reflect.DeepEqual(got, []NodeID{90, 102, 103, 104, 105}) {
		t.Errorf("after low-ID insert: %v", got)
	}
	checkIndexes(t, g)
}

func TestLabelIndexSetLabels(t *testing.T) {
	g := buildExampleGraph(t)
	if err := g.SetNodeLabels(104, NewLabels("Person", "Manager")); err != nil {
		t.Fatal(err)
	}
	if got := g.NodesWithLabel("Manager"); !reflect.DeepEqual(got, []NodeID{102, 104}) {
		t.Errorf("NodesWithLabel(Manager) = %v", got)
	}
	// Dropping the only Tag node must delete the bucket entirely.
	if err := g.SetNodeLabels(101, NewLabels("Topic")); err != nil {
		t.Fatal(err)
	}
	if got := g.NodesWithLabel("Tag"); got != nil {
		t.Errorf("NodesWithLabel(Tag) after relabel = %v, want nil", got)
	}
	if got := g.NodesWithLabel("Topic"); !reflect.DeepEqual(got, []NodeID{101}) {
		t.Errorf("NodesWithLabel(Topic) = %v", got)
	}
	if err := g.SetEdgeLabels(203, NewLabels("follows")); err != nil {
		t.Fatal(err)
	}
	if got := g.EdgesWithLabel("knows"); !reflect.DeepEqual(got, []EdgeID{202, 205, 207}) {
		t.Errorf("EdgesWithLabel(knows) = %v", got)
	}
	checkIndexes(t, g)

	if err := g.SetNodeLabels(999, NewLabels("X")); err == nil {
		t.Error("SetNodeLabels on absent node should fail")
	}
	if err := g.SetEdgeLabels(999, NewLabels("X")); err == nil {
		t.Error("SetEdgeLabels on absent edge should fail")
	}
}

func TestLabelIndexCloneAndSetOps(t *testing.T) {
	g := buildExampleGraph(t)
	c := g.Clone()
	checkIndexes(t, c)
	// The clone's index must be independent of the original's.
	if err := c.SetNodeLabels(104, NewLabels("Robot")); err != nil {
		t.Fatal(err)
	}
	if got := g.NodesWithLabel("Person"); !reflect.DeepEqual(got, []NodeID{102, 103, 104, 105}) {
		t.Errorf("original index changed by clone mutation: %v", got)
	}
	checkIndexes(t, g)

	h := New("other")
	if err := h.AddNode(&Node{ID: 104, Labels: NewLabels("Person", "Admin")}); err != nil {
		t.Fatal(err)
	}
	if err := h.AddNode(&Node{ID: 500, Labels: NewLabels("City")}); err != nil {
		t.Fatal(err)
	}
	if err := h.AddEdge(&Edge{ID: 600, Src: 104, Dst: 500, Labels: NewLabels("isLocatedIn")}); err != nil {
		t.Fatal(err)
	}

	u := Union("u", g, h)
	checkIndexes(t, u)
	if got := u.NodesWithLabel("Admin"); !reflect.DeepEqual(got, []NodeID{104}) {
		t.Errorf("union NodesWithLabel(Admin) = %v", got)
	}
	checkIndexes(t, Intersect("i", g, h))
	m := Minus("m", g, h)
	checkIndexes(t, m)
	if got := m.NodesWithLabel("Person"); !reflect.DeepEqual(got, []NodeID{102, 103, 105}) {
		t.Errorf("minus NodesWithLabel(Person) = %v", got)
	}
}

func TestValidateDetectsIndexCorruption(t *testing.T) {
	g := buildExampleGraph(t)

	// A stale entry: index points at a node that lost the label.
	g.nodesByLabel["Ghost"] = []NodeID{102}
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "Ghost") {
		t.Errorf("Validate missed stale node-label entry, err = %v", err)
	}
	delete(g.nodesByLabel, "Ghost")

	// A missing entry: node has the label but the bucket lacks it.
	g.nodesByLabel["Person"] = []NodeID{102, 103, 104}
	if err := g.Validate(); err == nil {
		t.Error("Validate missed missing node-label entry")
	}
	g.nodesByLabel["Person"] = []NodeID{102, 103, 104, 105}

	g.edgesByLabel["knows"] = append(g.edgesByLabel["knows"], 204)
	if err := g.Validate(); err == nil {
		t.Error("Validate missed stale edge-label entry")
	}
}
