package ppg

// Delta capture for incremental snapshot maintenance. Between two
// Snapshot builds the graph accumulates the identifiers of everything
// that changed; a snapshot builder can then extend the previous build
// by exactly those elements instead of rebuilding from scratch. The
// delta records identifiers only — never values — because it is
// applied at Snapshot() time, when the graph already holds the final
// state of every touched element: intermediate states collapse for
// free, and the recorder costs a few appends per mutation.
//
// The delta is best-effort. Mutations that cannot be attributed to an
// element (TouchProps) or that replace the graph wholesale
// (ReplaceWith/UnmarshalJSON) drop it, as does exceeding MaxDeltaOps;
// SnapshotWith then falls back to the full build. Paths are not part
// of the CSR snapshot, so path mutations bump the generation without
// entering the delta — an all-path delta is valid and empty.

// Delta lists what changed since the previous snapshot build. The
// slices hold identifiers in mutation order and may repeat (an element
// whose labels were set twice appears twice); appliers deduplicate.
type Delta struct {
	// Ops counts recorded mutations (not path or dropped ones).
	Ops int
	// AddedNodes and AddedEdges are newly inserted identifiers.
	AddedNodes []NodeID
	AddedEdges []EdgeID
	// NodeLabels / EdgeLabels are elements whose label set was
	// replaced. They may also appear in the Added lists (insert then
	// relabel); appliers treat those as plain insertions, since the
	// graph already holds the final labels.
	NodeLabels []NodeID
	EdgeLabels []EdgeID
	// NodeProps / EdgeProps are elements whose property map was
	// replaced, with the same overlap rule.
	NodeProps []NodeID
	EdgeProps []EdgeID
}

// MaxDeltaOps bounds the per-graph delta buffer. A burst of mutations
// past this size is no longer "a delta" in any useful sense — the
// full rebuild is both simpler and cheaper — so recording stops and
// the next snapshot rebuilds. Variable for tests.
var MaxDeltaOps = 1 << 16

// startDelta begins a fresh recording epoch: the graph state the
// current snapshot cache reflects is the delta's base. Called under
// snapMu whenever the cache is (re)filled.
func (g *Graph) startDelta() {
	g.deltaOK = true
	g.delta = Delta{}
}

// dropDelta abandons recording until the next snapshot build; the
// next Snapshot call takes the full-build path.
func (g *Graph) dropDelta() {
	g.deltaOK = false
	g.delta = Delta{}
}

// noteOp admits one mutation into the delta, dropping the delta
// instead when the buffer is full. Callers record only on true.
func (g *Graph) noteOp() bool {
	if !g.deltaOK {
		return false
	}
	if g.delta.Ops >= MaxDeltaOps {
		g.dropDelta()
		return false
	}
	g.delta.Ops++
	return true
}

func (g *Graph) noteAddNode(id NodeID) {
	if g.noteOp() {
		g.delta.AddedNodes = append(g.delta.AddedNodes, id)
	}
}

func (g *Graph) noteAddEdge(id EdgeID) {
	if g.noteOp() {
		g.delta.AddedEdges = append(g.delta.AddedEdges, id)
	}
}

func (g *Graph) noteNodeLabels(id NodeID) {
	if g.noteOp() {
		g.delta.NodeLabels = append(g.delta.NodeLabels, id)
	}
}

func (g *Graph) noteEdgeLabels(id EdgeID) {
	if g.noteOp() {
		g.delta.EdgeLabels = append(g.delta.EdgeLabels, id)
	}
}

func (g *Graph) noteNodeProps(id NodeID) {
	if g.noteOp() {
		g.delta.NodeProps = append(g.delta.NodeProps, id)
	}
}

func (g *Graph) noteEdgeProps(id EdgeID) {
	if g.noteOp() {
		g.delta.EdgeProps = append(g.delta.EdgeProps, id)
	}
}

// SnapshotWith is Snapshot with an incremental path: on a cache miss
// where the previous snapshot is still held and every mutation since
// it was recorded, inc (when non-nil) is offered the previous value
// and the delta. A non-nil result is cached as the new snapshot; nil
// declines (the delta is not worth applying or cannot be), and the
// full build runs as usual. Either way a fresh recording epoch starts,
// so the next miss again sees exactly the mutations since this one.
//
// The contract of Snapshot is unchanged: a value cached at generation
// G is served only while Generation() == G, so a stale snapshot is
// never returned. inc runs under the cache lock, like build.
func (g *Graph) SnapshotWith(build func() any, inc func(prev any, d *Delta) any) any {
	g.snapMu.Lock()
	defer g.snapMu.Unlock()
	if g.snapVal != nil && g.snapGen == g.gen {
		return g.snapVal
	}
	if g.snapVal != nil && g.deltaOK && inc != nil {
		if v := inc(g.snapVal, &g.delta); v != nil {
			g.snapVal = v
			g.snapGen = g.gen
			g.startDelta()
			return v
		}
	}
	g.snapVal = build()
	g.snapGen = g.gen
	g.startDelta()
	return g.snapVal
}
