package ppg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gcore/internal/value"
)

// twoOverlappingGraphs builds graphs sharing node 1 and edge 10.
func twoOverlappingGraphs(t *testing.T) (*Graph, *Graph) {
	t.Helper()
	g1 := New("g1")
	if err := g1.AddNode(&Node{ID: 1, Labels: NewLabels("A"), Props: NewProperties(map[string]value.Value{"k": value.Int(1)})}); err != nil {
		t.Fatal(err)
	}
	if err := g1.AddNode(&Node{ID: 2, Labels: NewLabels("B")}); err != nil {
		t.Fatal(err)
	}
	if err := g1.AddEdge(&Edge{ID: 10, Src: 1, Dst: 2, Labels: NewLabels("e")}); err != nil {
		t.Fatal(err)
	}
	if err := g1.AddPath(&Path{ID: 20, Nodes: []NodeID{1, 2}, Edges: []EdgeID{10}, Labels: NewLabels("p")}); err != nil {
		t.Fatal(err)
	}

	g2 := New("g2")
	if err := g2.AddNode(&Node{ID: 1, Labels: NewLabels("A", "C"), Props: NewProperties(map[string]value.Value{"k": value.Set(value.Int(1), value.Int(2))})}); err != nil {
		t.Fatal(err)
	}
	if err := g2.AddNode(&Node{ID: 2}); err != nil {
		t.Fatal(err)
	}
	if err := g2.AddNode(&Node{ID: 3, Labels: NewLabels("D")}); err != nil {
		t.Fatal(err)
	}
	if err := g2.AddEdge(&Edge{ID: 10, Src: 1, Dst: 2, Labels: NewLabels("e", "f")}); err != nil {
		t.Fatal(err)
	}
	if err := g2.AddEdge(&Edge{ID: 11, Src: 2, Dst: 3}); err != nil {
		t.Fatal(err)
	}
	return g1, g2
}

func TestUnion(t *testing.T) {
	g1, g2 := twoOverlappingGraphs(t)
	u := Union("u", g1, g2)
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	if u.NumNodes() != 3 || u.NumEdges() != 2 || u.NumPaths() != 1 {
		t.Fatalf("union cardinalities %d/%d/%d", u.NumNodes(), u.NumEdges(), u.NumPaths())
	}
	n, _ := u.Node(1)
	if !n.Labels.Has("A") || !n.Labels.Has("C") {
		t.Errorf("union labels = %v", n.Labels)
	}
	// σ union: {1} ∪ {1,2} = {1,2}.
	if n.Props.Get("k").Len() != 2 {
		t.Errorf("union property = %v", n.Props.Get("k"))
	}
	e, _ := u.Edge(10)
	if !e.Labels.Has("e") || !e.Labels.Has("f") {
		t.Errorf("union edge labels = %v", e.Labels)
	}
}

func TestIntersect(t *testing.T) {
	g1, g2 := twoOverlappingGraphs(t)
	i := Intersect("i", g1, g2)
	if err := i.Validate(); err != nil {
		t.Fatal(err)
	}
	if i.NumNodes() != 2 || i.NumEdges() != 1 || i.NumPaths() != 0 {
		t.Fatalf("intersection cardinalities %d/%d/%d", i.NumNodes(), i.NumEdges(), i.NumPaths())
	}
	n, _ := i.Node(1)
	if !n.Labels.Equal(NewLabels("A")) {
		t.Errorf("intersect labels = %v", n.Labels)
	}
	// σ intersect: {1} ∩ {1,2} = {1}.
	if !value.Equal(n.Props.Get("k"), value.Set(value.Int(1))) {
		t.Errorf("intersect property = %v", n.Props.Get("k"))
	}
	e, _ := i.Edge(10)
	if !e.Labels.Equal(NewLabels("e")) {
		t.Errorf("intersect edge labels = %v", e.Labels)
	}
}

func TestMinus(t *testing.T) {
	g1, g2 := twoOverlappingGraphs(t)
	// g2 ∖ g1 removes node 1, node 2 and edge 10; edge 11 survives
	// because both its endpoints (2 is removed!) — check precisely:
	// N = {3}; edge 11 = (2,3) loses endpoint 2, so it is pruned.
	d := Minus("d", g2, g1)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.NumNodes() != 1 || d.NumEdges() != 0 {
		t.Fatalf("difference cardinalities %d/%d", d.NumNodes(), d.NumEdges())
	}
	if _, ok := d.Node(3); !ok {
		t.Error("node 3 must survive g2 ∖ g1")
	}
	// g1 ∖ g2: all of g1's identities are shared except path 20, whose
	// constituents are gone, so the result is empty.
	d2 := Minus("d2", g1, g2)
	if !d2.IsEmpty() || d2.NumPaths() != 0 {
		t.Errorf("g1 ∖ g2 should be empty, got %v", d2)
	}
}

func TestMinusKeepsValidPaths(t *testing.T) {
	g1, _ := twoOverlappingGraphs(t)
	empty := New("e")
	d := Minus("d", g1, empty)
	if d.NumPaths() != 1 {
		t.Error("difference with empty graph must keep paths")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInconsistentGraphs(t *testing.T) {
	g1 := New("g1")
	if err := g1.AddNode(&Node{ID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := g1.AddNode(&Node{ID: 2}); err != nil {
		t.Fatal(err)
	}
	if err := g1.AddEdge(&Edge{ID: 10, Src: 1, Dst: 2}); err != nil {
		t.Fatal(err)
	}
	g2 := New("g2")
	if err := g2.AddNode(&Node{ID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := g2.AddNode(&Node{ID: 2}); err != nil {
		t.Fatal(err)
	}
	if err := g2.AddEdge(&Edge{ID: 10, Src: 2, Dst: 1}); err != nil { // ρ disagrees
		t.Fatal(err)
	}
	if Consistent(g1, g2) {
		t.Fatal("graphs disagreeing on ρ(10) are inconsistent")
	}
	if u := Union("u", g1, g2); !u.IsEmpty() {
		t.Error("union of inconsistent graphs must be the empty PPG")
	}
	if i := Intersect("i", g1, g2); !i.IsEmpty() {
		t.Error("intersection of inconsistent graphs must be the empty PPG")
	}

	// Path inconsistency: same id, different δ.
	g3 := New("g3")
	for _, n := range []NodeID{1, 2} {
		if err := g3.AddNode(&Node{ID: n}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g3.AddEdge(&Edge{ID: 10, Src: 1, Dst: 2}); err != nil {
		t.Fatal(err)
	}
	if err := g3.AddPath(&Path{ID: 30, Nodes: []NodeID{1, 2}, Edges: []EdgeID{10}}); err != nil {
		t.Fatal(err)
	}
	g4 := g3.Clone()
	p, _ := g4.Path(30)
	p.Nodes = []NodeID{2, 1} // same edge walked backwards: different δ
	if Consistent(g3, g4) {
		t.Error("graphs disagreeing on δ(30) are inconsistent")
	}
}

// randomGraph builds a small random graph over a shared identifier
// space so that set-op laws can be property-tested.
func randomGraph(r *rand.Rand, name string) *Graph {
	g := New(name)
	labels := []string{"A", "B", "C"}
	for id := NodeID(1); id <= 8; id++ {
		if r.Intn(2) == 0 {
			n := &Node{ID: id, Labels: NewLabels(labels[r.Intn(3)])}
			n.Props = NewProperties(map[string]value.Value{"v": value.Int(int64(r.Intn(3)))})
			if err := g.AddNode(n); err != nil {
				panic(err)
			}
		}
	}
	// Edge identity determines endpoints globally: derive src/dst from
	// the edge id so any two random graphs are consistent by design.
	for id := EdgeID(100); id < 130; id++ {
		src := NodeID(uint64(id)%8 + 1)
		dst := NodeID((uint64(id)/8)%8 + 1)
		if _, ok := g.Node(src); !ok {
			continue
		}
		if _, ok := g.Node(dst); !ok {
			continue
		}
		if r.Intn(2) == 0 {
			if err := g.AddEdge(&Edge{ID: id, Src: src, Dst: dst, Labels: NewLabels(labels[r.Intn(3)])}); err != nil {
				panic(err)
			}
		}
	}
	return g
}

func sameGraph(a, b *Graph) bool {
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() || a.NumPaths() != b.NumPaths() {
		return false
	}
	for _, id := range a.NodeIDs() {
		na, _ := a.Node(id)
		nb, ok := b.Node(id)
		if !ok || !na.Labels.Equal(nb.Labels) || !na.Props.Equal(nb.Props) {
			return false
		}
	}
	for _, id := range a.EdgeIDs() {
		ea, _ := a.Edge(id)
		eb, ok := b.Edge(id)
		if !ok || ea.Src != eb.Src || ea.Dst != eb.Dst || !ea.Labels.Equal(eb.Labels) || !ea.Props.Equal(eb.Props) {
			return false
		}
	}
	return true
}

func TestQuickSetOpLaws(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g1 := randomGraph(r, "g1")
		g2 := randomGraph(r, "g2")

		u12 := Union("u", g1, g2)
		u21 := Union("u", g2, g1)
		if !sameGraph(u12, u21) { // commutativity
			return false
		}
		if !sameGraph(Union("u", g1, g1), g1) { // idempotence
			return false
		}
		i12 := Intersect("i", g1, g2)
		if !sameGraph(i12, Intersect("i", g2, g1)) {
			return false
		}
		if !sameGraph(Intersect("i", g1, g1), g1) {
			return false
		}
		// Difference never leaves dangling edges, and G ∖ G = ∅.
		d := Minus("d", g1, g2)
		if d.Validate() != nil || u12.Validate() != nil || i12.Validate() != nil {
			return false
		}
		if dd := Minus("dd", g1, g1); !dd.IsEmpty() || dd.NumEdges() != 0 {
			return false
		}
		// Intersection is contained in union.
		for _, id := range i12.NodeIDs() {
			if _, ok := u12.Node(id); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickUnionAssociative(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g1 := randomGraph(r, "g1")
		g2 := randomGraph(r, "g2")
		g3 := randomGraph(r, "g3")
		l := Union("x", Union("x", g1, g2), g3)
		rr := Union("x", g1, Union("x", g2, g3))
		return sameGraph(l, rr)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
