package rpq

import (
	"container/heap"
	"fmt"
	"sort"
	"sync"

	"gcore/internal/csr"
	"gcore/internal/faultinject"
	"gcore/internal/gov"
	"gcore/internal/obs"
	"gcore/internal/ppg"
)

// checkStride is the number of frontier iterations a search loop runs
// between governor checkpoints: cancellation lands within one stride
// while the non-blocking poll stays invisible in profiles. The first
// iteration is always checked so injected faults fire deterministically.
const checkStride = 256

// Segment is one weighted step contributed by a PATH view (§A.4): a
// pair of endpoint nodes, the evaluated COST (strictly positive), and
// the expansion — the underlying walk — used to materialise stored
// paths. Nodes includes both endpoints; Edges the traversed edges.
type Segment struct {
	From, To ppg.NodeID
	Cost     float64
	Nodes    []ppg.NodeID
	Edges    []ppg.EdgeID
}

// ViewResolver supplies the segments of a PATH view leaving a node,
// in deterministic order.
type ViewResolver interface {
	Segments(name string, from ppg.NodeID) ([]Segment, error)
}

// Engine evaluates regular path queries over one graph.
type Engine struct {
	g     *ppg.Graph
	views ViewResolver

	// gov governs the search loops: cancellation checkpoints and the
	// product-frontier budget. A nil governor (engines built directly,
	// e.g. in tests) runs ungoverned — every method on it is nil-safe.
	gov *gov.Governor

	// col receives one span per kernel run, carrying the frontier
	// counters the kernel already maintains (pops, arrivals) — zero
	// per-step recording cost. Nil runs unobserved.
	col *obs.Collector

	// snap is the graph's CSR snapshot; non-nil engines run the CSR
	// kernels (csr_search.go), nil ones the legacy map-based kernels
	// below. The resolved-transition cache is shared by concurrent
	// searches on the same engine, hence the mutex.
	snap     *csr.Snapshot
	mu       sync.Mutex
	resCache map[*NFA][][]rtrans
}

// SetGovernor attaches a query governor to the engine's search loops.
// Searches already running are unaffected; nil detaches.
func (e *Engine) SetGovernor(g *gov.Governor) { e.gov = g }

// SetCollector attaches an observability collector: each kernel run
// (k-shortest, reachability, ALL-paths) records one span with its
// frontier totals. Nil detaches. The collector is internally
// synchronised, so concurrent searches on one engine may share it.
func (e *Engine) SetCollector(col *obs.Collector) { e.col = col }

// UseLegacy forces NewEngine to return legacy (map-based) engines.
// Exported for differential tests and ablation benchmarks only.
var UseLegacy = false

// NewEngine creates an engine; views may be nil if the regexes used
// contain no ~view references. Searches run over the graph's CSR
// snapshot (built or reused via the generation-tagged cache) unless
// UseLegacy is set.
func NewEngine(g *ppg.Graph, views ViewResolver) *Engine {
	if UseLegacy {
		return NewLegacyEngine(g, views)
	}
	return &Engine{g: g, views: views, snap: csr.Of(g)}
}

// NewLegacyEngine creates an engine that evaluates over the mutable
// ppg maps directly, bypassing the CSR snapshot. It exists so
// differential tests can compare the two evaluation paths.
func NewLegacyEngine(g *ppg.Graph, views ViewResolver) *Engine {
	return &Engine{g: g, views: views}
}

// PathResult is one path found by the search, with its cost (hop
// count for plain edges, summed segment costs for views) and its
// expansion in graph terms.
type PathResult struct {
	Src, Dst ppg.NodeID
	Cost     float64
	Hops     int
	Nodes    []ppg.NodeID
	Edges    []ppg.EdgeID
}

// cfg is a product-automaton configuration.
type cfg struct {
	n ppg.NodeID
	q int
}

// arrival is one discovered way of reaching a configuration.
type arrival struct {
	c        cfg
	cost     float64
	hops     int
	parent   int // arrival index, -1 at the source
	viaNodes []ppg.NodeID
	viaEdges []ppg.EdgeID
}

// pqItem orders arrivals by (cost, hops, insertion sequence); the
// sequence makes ties deterministic, implementing the fixed-order
// tie-breaking that §A.1 (footnote 4) allows an implementation to
// choose.
type pqItem struct {
	cost float64
	hops int
	seq  int
	idx  int
}

type pq []pqItem

func (p pq) Len() int { return len(p) }
func (p pq) Less(i, j int) bool {
	if p[i].cost != p[j].cost {
		return p[i].cost < p[j].cost
	}
	if p[i].hops != p[j].hops {
		return p[i].hops < p[j].hops
	}
	return p[i].seq < p[j].seq
}
func (p pq) Swap(i, j int) { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x any)   { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() any     { old := *p; x := old[len(old)-1]; *p = old[:len(old)-1]; return x }

// ShortestPaths runs the deterministic k-shortest search from src and
// returns up to k cheapest conforming paths per destination, cheapest
// first. k must be ≥ 1. Paths are walks (arbitrary-path semantics,
// §A.1): nodes and edges may repeat, which is what keeps the search
// polynomial per destination.
func (e *Engine) ShortestPaths(src ppg.NodeID, nfa *NFA, k int) (map[ppg.NodeID][]PathResult, error) {
	if k < 1 {
		return nil, fmt.Errorf("rpq: k must be at least 1, got %d", k)
	}
	if e.snap != nil {
		return e.shortestCSR(src, nfa, k)
	}
	if _, ok := e.g.Node(src); !ok {
		return map[ppg.NodeID][]PathResult{}, nil
	}
	arrivals := []arrival{{c: cfg{src, nfa.start}, parent: -1}}
	h := &pq{{idx: 0}}
	seq := 1
	pops := map[cfg]int{}
	results := map[ppg.NodeID][]PathResult{}
	sigs := map[ppg.NodeID]map[WalkSig]bool{}

	steps, pushed, found := 0, 0, 0
	if sp := e.col.Start(obs.OpShortest); sp != nil {
		if sp.Verbose() {
			sp.SetLabel("k-shortest product search (legacy)")
		}
		defer func() { sp.Frontier(int64(steps), int64(pushed)).Rows(0, int64(found)).End() }()
	}
	for h.Len() > 0 {
		if steps&(checkStride-1) == 0 {
			if err := e.gov.Checkpoint(faultinject.SiteRPQShortest); err != nil {
				return nil, err
			}
		}
		steps++
		it := heap.Pop(h).(pqItem)
		a := arrivals[it.idx]
		if pops[a.c] >= k {
			continue
		}
		pops[a.c]++
		if a.c.q == nfa.accept && len(results[a.c.n]) < k {
			res := e.reconstruct(src, arrivals, it.idx)
			sig := res.Signature()
			if sigs[a.c.n] == nil {
				sigs[a.c.n] = map[WalkSig]bool{}
			}
			if !sigs[a.c.n][sig] {
				sigs[a.c.n][sig] = true
				results[a.c.n] = append(results[a.c.n], res)
			}
		}
		emit := func(next cfg, cost float64, hops int, viaNodes []ppg.NodeID, viaEdges []ppg.EdgeID) {
			if pops[next] >= k {
				return
			}
			arrivals = append(arrivals, arrival{
				c: next, cost: a.cost + cost, hops: a.hops + hops,
				parent: it.idx, viaNodes: viaNodes, viaEdges: viaEdges,
			})
			heap.Push(h, pqItem{cost: a.cost + cost, hops: a.hops + hops, seq: seq, idx: len(arrivals) - 1})
			seq++
		}
		before := len(arrivals)
		if err := e.expand(nfa, a.c, emit); err != nil {
			return nil, err
		}
		pushed += len(arrivals) - before
		if err := e.gov.GrowFrontier(len(arrivals) - before); err != nil {
			return nil, err
		}
	}
	for _, prs := range results {
		found += len(prs)
	}
	return results, nil
}

// reconstruct rebuilds the graph-level path of an arrival chain.
func (e *Engine) reconstruct(src ppg.NodeID, arrivals []arrival, idx int) PathResult {
	var chain []int
	for i := idx; i >= 0; i = arrivals[i].parent {
		chain = append(chain, i)
	}
	res := PathResult{Src: src, Nodes: []ppg.NodeID{src}}
	for i := len(chain) - 1; i >= 0; i-- {
		a := arrivals[chain[i]]
		res.Nodes = append(res.Nodes, a.viaNodes...)
		res.Edges = append(res.Edges, a.viaEdges...)
	}
	last := arrivals[idx]
	res.Dst = last.c.n
	res.Cost = last.cost
	res.Hops = last.hops
	return res
}

// expand enumerates the product transitions leaving c in
// deterministic order: ε and node tests stay on the same graph node
// at zero cost; edge transitions follow the sorted adjacency lists;
// view transitions follow the resolver's segments.
func (e *Engine) expand(nfa *NFA, c cfg, emit func(next cfg, cost float64, hops int, viaNodes []ppg.NodeID, viaEdges []ppg.EdgeID)) error {
	node, ok := e.g.Node(c.n)
	if !ok {
		return nil
	}
	for _, t := range nfa.trans[c.q] {
		switch t.kind {
		case tEps:
			emit(cfg{c.n, t.to}, 0, 0, nil, nil)
		case tNode:
			if node.Labels.Has(t.label) {
				emit(cfg{c.n, t.to}, 0, 0, nil, nil)
			}
		case tEdge:
			if t.inverse {
				for _, eid := range e.g.InEdges(c.n) {
					ed, _ := e.g.Edge(eid)
					if t.label == "" || ed.Labels.Has(t.label) {
						emit(cfg{ed.Src, t.to}, 1, 1, []ppg.NodeID{ed.Src}, []ppg.EdgeID{eid})
					}
				}
			} else {
				for _, eid := range e.g.OutEdges(c.n) {
					ed, _ := e.g.Edge(eid)
					if t.label == "" || ed.Labels.Has(t.label) {
						emit(cfg{ed.Dst, t.to}, 1, 1, []ppg.NodeID{ed.Dst}, []ppg.EdgeID{eid})
					}
				}
			}
		case tView:
			if e.views == nil {
				return fmt.Errorf("rpq: regex references path view %q but no views are in scope", t.label)
			}
			segs, err := e.views.Segments(t.label, c.n)
			if err != nil {
				return err
			}
			for _, s := range segs {
				if s.Cost <= 0 {
					return fmt.Errorf("rpq: path view %q produced non-positive cost %g (COST must be larger than zero)", t.label, s.Cost)
				}
				via := s.Nodes
				if len(via) > 0 && via[0] == c.n {
					via = via[1:]
				}
				emit(cfg{s.To, t.to}, s.Cost, len(s.Edges), via, s.Edges)
			}
		}
	}
	return nil
}

// Reachable returns, sorted, the nodes m such that some path from src
// to m conforms to the regex — the reachability-test semantics that a
// path pattern without a variable gets (§3, line 29).
func (e *Engine) Reachable(src ppg.NodeID, nfa *NFA) ([]ppg.NodeID, error) {
	if e.snap != nil {
		return e.reachableCSR(src, nfa)
	}
	if _, ok := e.g.Node(src); !ok {
		return nil, nil
	}
	start := cfg{src, nfa.start}
	seen := map[cfg]bool{start: true}
	queue := []cfg{start}
	hit := map[ppg.NodeID]bool{}
	steps, pushed, found := 0, 0, 0
	if sp := e.col.Start(obs.OpReach); sp != nil {
		if sp.Verbose() {
			sp.SetLabel("reachability sweep (legacy)")
		}
		defer func() { sp.Frontier(int64(steps), int64(pushed)).Rows(0, int64(found)).End() }()
	}
	for len(queue) > 0 {
		if steps&(checkStride-1) == 0 {
			if err := e.gov.Checkpoint(faultinject.SiteRPQReach); err != nil {
				return nil, err
			}
		}
		steps++
		c := queue[0]
		queue = queue[1:]
		if c.q == nfa.accept {
			hit[c.n] = true
		}
		before := len(queue)
		err := e.expand(nfa, c, func(next cfg, _ float64, _ int, _ []ppg.NodeID, _ []ppg.EdgeID) {
			if !seen[next] {
				seen[next] = true
				queue = append(queue, next)
			}
		})
		if err != nil {
			return nil, err
		}
		pushed += len(queue) - before
		if err := e.gov.GrowFrontier(len(queue) - before); err != nil {
			return nil, err
		}
	}
	out := make([]ppg.NodeID, 0, len(hit))
	for n := range hit {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	found = len(out)
	return out, nil
}

// prodEdge records one product transition taken during the forward
// sweep of the ALL-paths summarisation.
type prodEdge struct {
	from, to cfg
	viaNodes []ppg.NodeID
	viaEdges []ppg.EdgeID
}

// AllPaths computes the forward product reachability from src once,
// recording every product transition; per-destination projections are
// then extracted with Projection. This is the graph-projection
// summarisation ([10]) that makes ALL-paths queries tractable even
// when the number of conforming paths is infinite.
type AllPaths struct {
	src     ppg.NodeID
	nfa     *NFA
	reached map[cfg]bool
	rev     map[cfg][]int // incoming product-edge indexes per config
	edges   []prodEdge

	// CSR form (snap non-nil): the same sweep over ordinals.
	snap     *csr.Snapshot
	cReached map[ccfg]bool
	cRev     map[ccfg][]int32
	cEdges   []cprodEdge
}

// AllPaths performs the forward sweep from src.
func (e *Engine) AllPaths(src ppg.NodeID, nfa *NFA) (*AllPaths, error) {
	if e.snap != nil {
		return e.allPathsCSR(src, nfa)
	}
	ap := &AllPaths{src: src, nfa: nfa, reached: map[cfg]bool{}, rev: map[cfg][]int{}}
	if _, ok := e.g.Node(src); !ok {
		return ap, nil
	}
	start := cfg{src, nfa.start}
	ap.reached[start] = true
	queue := []cfg{start}
	steps, pushed := 0, 0
	if sp := e.col.Start(obs.OpAllPaths); sp != nil {
		if sp.Verbose() {
			sp.SetLabel("ALL-paths sweep (legacy)")
		}
		defer func() { sp.Frontier(int64(steps), int64(pushed)).End() }()
	}
	for len(queue) > 0 {
		if steps&(checkStride-1) == 0 {
			if err := e.gov.Checkpoint(faultinject.SiteRPQAll); err != nil {
				return nil, err
			}
		}
		steps++
		c := queue[0]
		queue = queue[1:]
		before := len(ap.edges)
		err := e.expand(nfa, c, func(next cfg, _ float64, _ int, viaNodes []ppg.NodeID, viaEdges []ppg.EdgeID) {
			ap.edges = append(ap.edges, prodEdge{from: c, to: next, viaNodes: viaNodes, viaEdges: viaEdges})
			ap.rev[next] = append(ap.rev[next], len(ap.edges)-1)
			if !ap.reached[next] {
				ap.reached[next] = true
				queue = append(queue, next)
			}
		})
		if err != nil {
			return nil, err
		}
		pushed += len(ap.edges) - before
		if err := e.gov.GrowFrontier(len(ap.edges) - before); err != nil {
			return nil, err
		}
	}
	return ap, nil
}

// Destinations returns, sorted, the nodes for which some conforming
// path from the sweep's source exists.
func (a *AllPaths) Destinations() []ppg.NodeID {
	if a.snap != nil {
		return a.destinationsCSR()
	}
	set := map[ppg.NodeID]bool{}
	for c := range a.reached {
		if c.q == a.nfa.accept {
			set[c.n] = true
		}
	}
	out := make([]ppg.NodeID, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Projection summarises all conforming paths from the sweep's source
// to dst as the sets of nodes and edges lying on at least one such
// path. ok is false if no conforming path exists.
func (a *AllPaths) Projection(dst ppg.NodeID) (nodes []ppg.NodeID, edges []ppg.EdgeID, ok bool) {
	if a.snap != nil {
		return a.projectionCSR(dst)
	}
	target := cfg{dst, a.nfa.accept}
	if !a.reached[target] {
		return nil, nil, false
	}
	// Backward sweep over recorded product edges: configurations that
	// can reach the accepting target.
	co := map[cfg]bool{target: true}
	queue := []cfg{target}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		for _, ei := range a.rev[c] {
			f := a.edges[ei].from
			if !co[f] {
				co[f] = true
				queue = append(queue, f)
			}
		}
	}
	nodeSet := map[ppg.NodeID]bool{a.src: true, dst: true}
	edgeSet := map[ppg.EdgeID]bool{}
	for _, pe := range a.edges {
		if co[pe.to] && co[pe.from] {
			nodeSet[pe.from.n] = true
			for _, n := range pe.viaNodes {
				nodeSet[n] = true
			}
			for _, e := range pe.viaEdges {
				edgeSet[e] = true
			}
		}
	}
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	for e := range edgeSet {
		edges = append(edges, e)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	sort.Slice(edges, func(i, j int) bool { return edges[i] < edges[j] })
	return nodes, edges, true
}
