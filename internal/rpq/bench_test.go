package rpq

import (
	"fmt"
	"math/rand"
	"testing"

	"gcore/internal/ppg"
)

// benchGraph builds a random sparse labelled graph.
func benchGraph(n, deg int) *ppg.Graph {
	r := rand.New(rand.NewSource(7))
	g := ppg.New("bench")
	for i := 1; i <= n; i++ {
		if err := g.AddNode(&ppg.Node{ID: ppg.NodeID(i), Labels: ppg.NewLabels("N")}); err != nil {
			panic(err)
		}
	}
	eid := ppg.EdgeID(uint64(n) + 1)
	labels := []string{"a", "b"}
	for i := 1; i <= n; i++ {
		for d := 0; d < deg; d++ {
			dst := ppg.NodeID(r.Intn(n) + 1)
			if err := g.AddEdge(&ppg.Edge{ID: eid, Src: ppg.NodeID(i), Dst: dst,
				Labels: ppg.NewLabels(labels[r.Intn(2)])}); err != nil {
				panic(err)
			}
			eid++
		}
	}
	return g
}

func BenchmarkShortestPaths(b *testing.B) {
	rx := rxStar(rxAlt(rxLabel("a"), rxLabel("b")))
	nfa, err := Compile(rx)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{200, 800} {
		g := benchGraph(n, 4)
		eng := NewEngine(g, nil)
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.ShortestPaths(1, nfa, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkKShortest(b *testing.B) {
	rx := rxStar(rxLabel("a"))
	nfa, err := Compile(rx)
	if err != nil {
		b.Fatal(err)
	}
	g := benchGraph(400, 4)
	eng := NewEngine(g, nil)
	for _, k := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.ShortestPaths(1, nfa, k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkReachable(b *testing.B) {
	nfa, err := Compile(rxStar(rxAlt(rxLabel("a"), rxLabel("b"))))
	if err != nil {
		b.Fatal(err)
	}
	g := benchGraph(800, 4)
	eng := NewEngine(g, nil)
	for i := 0; i < b.N; i++ {
		if _, err := eng.Reachable(1, nfa); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompile(b *testing.B) {
	rx := rxCat(rxStar(rxAlt(rxLabel("a"), rxInv("b"))), rxPlus(rxNode("N")), rxOpt(rxLabel("c")))
	for i := 0; i < b.N; i++ {
		if _, err := Compile(rx); err != nil {
			b.Fatal(err)
		}
	}
}
