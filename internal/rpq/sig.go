package rpq

import "gcore/internal/ppg"

// WalkSig is a comparable fingerprint of a walk: the lengths of its
// node and edge sequences plus an FNV-1a hash of each. It replaces
// the earlier string-building signature as a map key for k-shortest
// dedup — no per-walk allocation, and comparison is word-sized
// instead of byte-wise. Walks with equal signatures are treated as
// equal; the combined 128 hash bits over length-checked sequences
// make an accidental collision within one search negligible.
type WalkSig struct {
	NodeLen  int
	EdgeLen  int
	NodeHash uint64
	EdgeHash uint64
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvAdd folds one 64-bit value into an FNV-1a state byte by byte.
func fnvAdd(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// SignatureOf computes the signature of the oriented walk given by
// its node and edge sequences.
func SignatureOf(nodes []ppg.NodeID, edges []ppg.EdgeID) WalkSig {
	sig := WalkSig{
		NodeLen:  len(nodes),
		EdgeLen:  len(edges),
		NodeHash: fnvOffset64,
		EdgeHash: fnvOffset64,
	}
	for _, n := range nodes {
		sig.NodeHash = fnvAdd(sig.NodeHash, uint64(n))
	}
	for _, e := range edges {
		sig.EdgeHash = fnvAdd(sig.EdgeHash, uint64(e))
	}
	return sig
}

// Signature returns the walk signature of a search result.
func (r PathResult) Signature() WalkSig {
	return SignatureOf(r.Nodes, r.Edges)
}
