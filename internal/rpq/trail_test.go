package rpq

import (
	"testing"

	"gcore/internal/ast"
	"gcore/internal/ppg"
)

func TestTrailSearchDiamond(t *testing.T) {
	g := diamondGraph(t)
	e := NewEngine(g, nil)
	nfa := mustCompile(t, rxStar(rxLabel("e")))
	best, visits, err := e.TrailSearch(1, nfa, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if visits == 0 {
		t.Fatal("no visits")
	}
	if best[4].Hops != 2 {
		t.Errorf("shortest trail to 4 = %+v", best[4])
	}
	count, _, err := e.CountTrails(1, 4, nfa, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Errorf("trails 1→4 = %d, want 2", count)
	}
}

// Trails may revisit nodes but not edges: on two parallel 2-cycles,
// trails through the shared node exist that simple paths miss.
func TestTrailsVsSimplePaths(t *testing.T) {
	g := ppg.New("eight")
	// A figure-eight: 1↔2 and 1↔3 plus 2→4.
	for i := 1; i <= 4; i++ {
		if err := g.AddNode(&ppg.Node{ID: ppg.NodeID(i)}); err != nil {
			t.Fatal(err)
		}
	}
	pairs := [][2]ppg.NodeID{{1, 2}, {2, 1}, {1, 3}, {3, 1}, {2, 4}}
	for i, p := range pairs {
		if err := g.AddEdge(&ppg.Edge{ID: ppg.EdgeID(10 + i), Src: p[0], Dst: p[1], Labels: ppg.NewLabels("e")}); err != nil {
			t.Fatal(err)
		}
	}
	e := NewEngine(g, nil)
	nfa := mustCompile(t, rxStar(rxLabel("e")))
	// 1→4 trails: [1,2,4] and [1,3,1,2,4] (revisits node 1 but no
	// edge) and [1,2,1,3,1,2,4]? — no: edge 1→2 reused. So 2 trails.
	trails, _, err := e.CountTrails(1, 4, nfa, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if trails != 2 {
		t.Errorf("trails = %d, want 2", trails)
	}
	// Simple paths cannot revisit node 1: only [1,2,4].
	simple, _, err := e.CountSimplePaths(1, 4, nfa, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if simple != 1 {
		t.Errorf("simple paths = %d, want 1", simple)
	}
	// Walks are unbounded; the k-shortest search still terminates and
	// finds the 2-hop walk first.
	res, err := e.ShortestPaths(1, nfa, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res[4][0].Hops != 2 {
		t.Errorf("shortest walk = %+v", res[4][0])
	}
	if len(res[4]) != 3 {
		t.Errorf("3-shortest walks to 4 = %d", len(res[4]))
	}
}

func TestTrailBudgetAndViews(t *testing.T) {
	g := diamondGraph(t)
	e := NewEngine(g, nil)
	nfa := mustCompile(t, rxStar(rxLabel("e")))
	_, visits, err := e.TrailSearch(1, nfa, 3)
	if err != nil || visits > 3 {
		t.Errorf("budget: visits=%d err=%v", visits, err)
	}
	vnfa := mustCompile(t, &ast.Regex{Op: ast.RxView, Label: "v"})
	if _, _, err := e.TrailSearch(1, vnfa, 10); err == nil {
		t.Error("views must be rejected")
	}
	if _, _, err := e.CountTrails(1, 4, vnfa, 10); err == nil {
		t.Error("views must be rejected")
	}
	// Missing source: empty results.
	if r, _, err := e.TrailSearch(99, nfa, 10); err != nil || len(r) != 0 {
		t.Error("missing source must be empty")
	}
	if c, _, err := e.CountTrails(99, 4, nfa, 10); err != nil || c != 0 {
		t.Error("missing source must count zero")
	}
}

func TestDestinations(t *testing.T) {
	g := lineGraph(t, 4)
	e := NewEngine(g, nil)
	nfa := mustCompile(t, rxPlus(rxLabel("a")))
	ap, err := e.AllPaths(1, nfa)
	if err != nil {
		t.Fatal(err)
	}
	dsts := ap.Destinations()
	if len(dsts) != 3 || dsts[0] != 2 || dsts[2] != 4 {
		t.Errorf("destinations = %v", dsts)
	}
}
