package rpq

import (
	"fmt"
	"sort"

	"gcore/internal/csr"
	"gcore/internal/faultinject"
	"gcore/internal/obs"
	"gcore/internal/ppg"
)

// CSR product search. These are the default kernels behind
// ShortestPaths, Reachable and AllPaths: the same product-automaton
// algorithms as the legacy (map-based) implementations in engine.go,
// but run over the graph's CSR snapshot — node ordinals instead of
// identifiers, flat offset arrays instead of adjacency maps, interned
// integer labels instead of string-slice scans, and dense visit
// tables instead of map[cfg] probes. Expansion order is identical to
// the legacy kernels by construction (CSR ranges ascend by edge
// identifier, exactly like ppg adjacency), so results — including the
// deterministic tie-breaking — are byte-identical; the differential
// tests enforce this.

// Interned-label sentinels for resolved transitions. csr.NoLabel
// (absent from the snapshot) is remapped to deadLabel so it cannot
// collide with the wildcard.
const (
	wildcardLabel int32 = -1 // any-edge transition: matches every edge
	deadLabel     int32 = -2 // label absent from the snapshot: matches nothing
)

// rtrans is an NFA transition with its label resolved against one
// snapshot's interning.
type rtrans struct {
	kind    transKind
	to      int32
	inverse bool
	lid     int32
	view    string
}

// resolve maps an automaton's transition labels to interned ids,
// memoised per engine (one resolution per (engine, automaton) pair —
// concurrent searches share it).
func (e *Engine) resolve(nfa *NFA) [][]rtrans {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.resCache == nil {
		e.resCache = map[*NFA][][]rtrans{}
	}
	if r, ok := e.resCache[nfa]; ok {
		return r
	}
	out := make([][]rtrans, len(nfa.trans))
	for q, ts := range nfa.trans {
		rts := make([]rtrans, len(ts))
		for i, t := range ts {
			rt := rtrans{kind: t.kind, to: int32(t.to), inverse: t.inverse, view: t.label}
			switch t.kind {
			case tEdge:
				if t.label == "" {
					rt.lid = wildcardLabel
				} else if lid := e.snap.LabelID(t.label); lid != csr.NoLabel {
					rt.lid = lid
				} else {
					rt.lid = deadLabel
				}
			case tNode:
				if lid := e.snap.LabelID(t.label); lid != csr.NoLabel {
					rt.lid = lid
				} else {
					rt.lid = deadLabel
				}
			}
			rts[i] = rt
		}
		out[q] = rts
	}
	e.resCache[nfa] = out
	return out
}

// ccfg is a product configuration over ordinals.
type ccfg struct{ u, q int32 }

// stateTab counts visits per product configuration: a flat dense
// array when |V|·|Q| is small enough, a map otherwise — the frontier
// loop never probes a Go map on graphs of ordinary size.
type stateTab struct {
	states int32
	dense  []int32
	sparse map[int64]int32
}

// denseLimit bounds the dense table at 4M entries (16 MB): beyond it
// the sparse fallback trades speed for memory.
const denseLimit = 1 << 22

func newStateTab(nodes, states int) *stateTab {
	t := &stateTab{states: int32(states)}
	if int64(nodes)*int64(states) <= denseLimit {
		t.dense = make([]int32, nodes*states)
	} else {
		t.sparse = make(map[int64]int32, 1024)
	}
	return t
}

func (t *stateTab) get(u, q int32) int32 {
	if t.dense != nil {
		return t.dense[int(u)*int(t.states)+int(q)]
	}
	return t.sparse[int64(u)*int64(t.states)+int64(q)]
}

func (t *stateTab) inc(u, q int32) {
	if t.dense != nil {
		t.dense[int(u)*int(t.states)+int(q)]++
		return
	}
	t.sparse[int64(u)*int64(t.states)+int64(q)]++
}

// expandOrdinal enumerates the product transitions leaving (u, q) in
// the same deterministic order as the legacy expand: ε and node tests
// first as listed, edge transitions along ascending edge ordinals,
// view transitions along the resolver's segment order. Regular edge
// steps emit (viaEdge ≥ 0, nil slices) — the step's node is the
// emitted ordinal itself, so nothing is allocated per step. View
// steps pass their expansion through in graph terms.
func (e *Engine) expandOrdinal(rts []rtrans, u int32,
	emit func(v, q int32, cost float64, hops int32, viaEdge int32, viaNodes []ppg.NodeID, viaEdges []ppg.EdgeID)) error {
	snap := e.snap
	for _, rt := range rts {
		switch rt.kind {
		case tEps:
			emit(u, rt.to, 0, 0, -1, nil, nil)
		case tNode:
			if rt.lid >= 0 && snap.NodeHasLabel(u, rt.lid) {
				emit(u, rt.to, 0, 0, -1, nil, nil)
			}
		case tEdge:
			if rt.lid == deadLabel {
				continue
			}
			if rt.inverse {
				for _, eo := range snap.In(u) {
					if rt.lid == wildcardLabel || snap.EdgeHasLabel(eo, rt.lid) {
						emit(snap.Src(eo), rt.to, 1, 1, eo, nil, nil)
					}
				}
			} else {
				for _, eo := range snap.Out(u) {
					if rt.lid == wildcardLabel || snap.EdgeHasLabel(eo, rt.lid) {
						emit(snap.Dst(eo), rt.to, 1, 1, eo, nil, nil)
					}
				}
			}
		case tView:
			if e.views == nil {
				return fmt.Errorf("rpq: regex references path view %q but no views are in scope", rt.view)
			}
			segs, err := e.views.Segments(rt.view, snap.NodeID(u))
			if err != nil {
				return err
			}
			for _, s := range segs {
				if s.Cost <= 0 {
					return fmt.Errorf("rpq: path view %q produced non-positive cost %g (COST must be larger than zero)", rt.view, s.Cost)
				}
				to, ok := snap.Ord(s.To)
				if !ok {
					continue
				}
				via := s.Nodes
				if len(via) > 0 && via[0] == snap.NodeID(u) {
					via = via[1:]
				}
				emit(to, rt.to, s.Cost, int32(len(s.Edges)), -1, via, s.Edges)
			}
		}
	}
	return nil
}

// carrival is one discovered way of reaching a configuration, in
// ordinal terms. A regular edge step is encoded in-place (viaEdge ≥ 0,
// the step's node being u); only view steps carry slices.
type carrival struct {
	u, q     int32
	hops     int32
	viaEdge  int32
	parent   int32
	cost     float64
	viaNodes []ppg.NodeID
	viaEdges []ppg.EdgeID
}

// cheap is a typed binary min-heap of pqItems with the same
// (cost, hops, seq) order as pq. container/heap boxes every Push and
// Pop through an interface — one allocation per product arrival each
// way — which this avoids; the frontier loop does not allocate.
type cheap []pqItem

func pqLess(a, b pqItem) bool {
	if a.cost != b.cost {
		return a.cost < b.cost
	}
	if a.hops != b.hops {
		return a.hops < b.hops
	}
	return a.seq < b.seq
}

func (h *cheap) push(it pqItem) {
	*h = append(*h, it)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !pqLess(s[i], s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

func (h *cheap) pop() pqItem {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && pqLess(s[l], s[m]) {
			m = l
		}
		if r < n && pqLess(s[r], s[m]) {
			m = r
		}
		if m == i {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}

// shortestState carries the k-shortest frontier so relaxation is a
// method call, not a closure allocated per heap pop.
type shortestState struct {
	k        int32
	seq      int
	pops     *stateTab
	arrivals []carrival
	h        cheap
}

// relax records one new arrival unless its configuration is already
// settled k times.
func (st *shortestState) relax(parent int, base *carrival, u, q int32, cost float64, hops int32, viaEdge int32, viaNodes []ppg.NodeID, viaEdges []ppg.EdgeID) {
	if st.pops.get(u, q) >= st.k {
		return
	}
	c := base.cost + cost
	hp := base.hops + hops
	st.arrivals = append(st.arrivals, carrival{
		u: u, q: q, cost: c, hops: hp,
		parent: int32(parent), viaEdge: viaEdge, viaNodes: viaNodes, viaEdges: viaEdges,
	})
	st.h.push(pqItem{cost: c, hops: int(hp), seq: st.seq, idx: len(st.arrivals) - 1})
	st.seq++
}

// shortestCSR is the CSR k-shortest search: deterministic Dijkstra
// over the product with a dense pop table, a typed heap and
// allocation-free edge relaxation.
func (e *Engine) shortestCSR(src ppg.NodeID, nfa *NFA, k int) (map[ppg.NodeID][]PathResult, error) {
	srcOrd, ok := e.snap.Ord(src)
	if !ok {
		return map[ppg.NodeID][]PathResult{}, nil
	}
	snap := e.snap
	trans := e.resolve(nfa)
	st := &shortestState{
		k:        int32(k),
		seq:      1,
		pops:     newStateTab(snap.NumNodes(), nfa.NumStates()),
		arrivals: []carrival{{u: srcOrd, q: int32(nfa.start), parent: -1, viaEdge: -1}},
		h:        cheap{{idx: 0}},
	}
	accept := int32(nfa.accept)
	results := map[ppg.NodeID][]PathResult{}
	sigs := map[ppg.NodeID]map[WalkSig]bool{}

	steps, pushed, found := 0, 0, 0
	if sp := e.col.Start(obs.OpShortest); sp != nil {
		if sp.Verbose() {
			sp.SetLabel("k-shortest product search (csr)")
		}
		defer func() {
			sp.Frontier(int64(steps), int64(pushed)).Rows(0, int64(found)).End()
		}()
	}
	for len(st.h) > 0 {
		if steps&(checkStride-1) == 0 {
			if err := e.gov.Checkpoint(faultinject.SiteRPQCSRShortest); err != nil {
				return nil, err
			}
		}
		steps++
		it := st.h.pop()
		a := st.arrivals[it.idx]
		if st.pops.get(a.u, a.q) >= st.k {
			continue
		}
		st.pops.inc(a.u, a.q)
		if a.q == accept {
			dst := snap.NodeID(a.u)
			if len(results[dst]) < k {
				res := e.reconstructCSR(src, st.arrivals, int32(it.idx))
				sig := res.Signature()
				if sigs[dst] == nil {
					sigs[dst] = map[WalkSig]bool{}
				}
				if !sigs[dst][sig] {
					sigs[dst][sig] = true
					results[dst] = append(results[dst], res)
				}
			}
		}
		// Expansion inlined (same transition order as expandOrdinal):
		// relaxation must not allocate, and a capture-free loop keeps
		// it that way.
		before := len(st.arrivals)
		base := a // copy: st.arrivals may grow during relaxation
		for _, rt := range trans[a.q] {
			switch rt.kind {
			case tEps:
				st.relax(it.idx, &base, a.u, rt.to, 0, 0, -1, nil, nil)
			case tNode:
				if rt.lid >= 0 && snap.NodeHasLabel(a.u, rt.lid) {
					st.relax(it.idx, &base, a.u, rt.to, 0, 0, -1, nil, nil)
				}
			case tEdge:
				if rt.lid == deadLabel {
					continue
				}
				if rt.inverse {
					for _, eo := range snap.In(a.u) {
						if rt.lid == wildcardLabel || snap.EdgeHasLabel(eo, rt.lid) {
							st.relax(it.idx, &base, snap.Src(eo), rt.to, 1, 1, eo, nil, nil)
						}
					}
				} else {
					for _, eo := range snap.Out(a.u) {
						if rt.lid == wildcardLabel || snap.EdgeHasLabel(eo, rt.lid) {
							st.relax(it.idx, &base, snap.Dst(eo), rt.to, 1, 1, eo, nil, nil)
						}
					}
				}
			case tView:
				if e.views == nil {
					return nil, fmt.Errorf("rpq: regex references path view %q but no views are in scope", rt.view)
				}
				segs, err := e.views.Segments(rt.view, snap.NodeID(a.u))
				if err != nil {
					return nil, err
				}
				for _, s := range segs {
					if s.Cost <= 0 {
						return nil, fmt.Errorf("rpq: path view %q produced non-positive cost %g (COST must be larger than zero)", rt.view, s.Cost)
					}
					to, ok := snap.Ord(s.To)
					if !ok {
						continue
					}
					via := s.Nodes
					if len(via) > 0 && via[0] == snap.NodeID(a.u) {
						via = via[1:]
					}
					st.relax(it.idx, &base, to, rt.to, s.Cost, int32(len(s.Edges)), -1, via, s.Edges)
				}
			}
		}
		pushed += len(st.arrivals) - before
		if err := e.gov.GrowFrontier(len(st.arrivals) - before); err != nil {
			return nil, err
		}
	}
	for _, prs := range results {
		found += len(prs)
	}
	return results, nil
}

// reconstructCSR rebuilds the graph-level path of an arrival chain,
// translating ordinals back to identifiers — the only point of the
// search where graph identifiers appear.
func (e *Engine) reconstructCSR(src ppg.NodeID, arrivals []carrival, idx int32) PathResult {
	var chain []int32
	for i := idx; i >= 0; i = arrivals[i].parent {
		chain = append(chain, i)
	}
	res := PathResult{Src: src, Nodes: []ppg.NodeID{src}}
	for i := len(chain) - 1; i >= 0; i-- {
		a := arrivals[chain[i]]
		switch {
		case a.viaNodes != nil || a.viaEdges != nil: // view step
			res.Nodes = append(res.Nodes, a.viaNodes...)
			res.Edges = append(res.Edges, a.viaEdges...)
		case a.viaEdge >= 0: // edge step: the step's node is the arrival's own
			res.Nodes = append(res.Nodes, e.snap.NodeID(a.u))
			res.Edges = append(res.Edges, e.snap.EdgeID(a.viaEdge))
		}
	}
	last := arrivals[idx]
	res.Dst = e.snap.NodeID(last.u)
	res.Cost = last.cost
	res.Hops = int(last.hops)
	return res
}

// reachableCSR is the CSR reachability sweep: BFS over the product
// with a dense seen table; destinations are collected per ordinal, so
// the ascending-identifier output order falls out without sorting.
func (e *Engine) reachableCSR(src ppg.NodeID, nfa *NFA) ([]ppg.NodeID, error) {
	srcOrd, ok := e.snap.Ord(src)
	if !ok {
		return nil, nil
	}
	trans := e.resolve(nfa)
	seen := newStateTab(e.snap.NumNodes(), nfa.NumStates())
	seen.inc(srcOrd, int32(nfa.start))
	queue := []ccfg{{srcOrd, int32(nfa.start)}}
	accept := int32(nfa.accept)
	hit := make([]bool, e.snap.NumNodes())
	steps, pushed, found := 0, 0, 0
	if sp := e.col.Start(obs.OpReach); sp != nil {
		if sp.Verbose() {
			sp.SetLabel("reachability sweep (csr)")
		}
		defer func() {
			sp.Frontier(int64(steps), int64(pushed)).Rows(0, int64(found)).End()
		}()
	}
	for len(queue) > 0 {
		if steps&(checkStride-1) == 0 {
			if err := e.gov.Checkpoint(faultinject.SiteRPQCSRReach); err != nil {
				return nil, err
			}
		}
		steps++
		c := queue[0]
		queue = queue[1:]
		if c.q == accept {
			hit[c.u] = true
		}
		before := len(queue)
		err := e.expandOrdinal(trans[c.q], c.u, func(v, q int32, _ float64, _ int32, _ int32, _ []ppg.NodeID, _ []ppg.EdgeID) {
			if seen.get(v, q) == 0 {
				seen.inc(v, q)
				queue = append(queue, ccfg{v, q})
			}
		})
		if err != nil {
			return nil, err
		}
		pushed += len(queue) - before
		if err := e.gov.GrowFrontier(len(queue) - before); err != nil {
			return nil, err
		}
	}
	out := make([]ppg.NodeID, 0)
	for u, h := range hit {
		if h {
			out = append(out, e.snap.NodeID(int32(u)))
		}
	}
	found = len(out)
	return out, nil
}

// cprodEdge records one product transition of the CSR ALL-paths sweep.
type cprodEdge struct {
	from, to ccfg
	viaEdge  int32
	viaNodes []ppg.NodeID // view steps only
	viaEdges []ppg.EdgeID
}

// allPathsCSR performs the forward product sweep over the snapshot.
func (e *Engine) allPathsCSR(src ppg.NodeID, nfa *NFA) (*AllPaths, error) {
	ap := &AllPaths{src: src, nfa: nfa, snap: e.snap,
		cReached: map[ccfg]bool{}, cRev: map[ccfg][]int32{}}
	srcOrd, ok := e.snap.Ord(src)
	if !ok {
		return ap, nil
	}
	trans := e.resolve(nfa)
	start := ccfg{srcOrd, int32(nfa.start)}
	ap.cReached[start] = true
	queue := []ccfg{start}
	steps, pushed := 0, 0
	if sp := e.col.Start(obs.OpAllPaths); sp != nil {
		if sp.Verbose() {
			sp.SetLabel("ALL-paths sweep (csr)")
		}
		defer func() {
			sp.Frontier(int64(steps), int64(pushed)).End()
		}()
	}
	for len(queue) > 0 {
		if steps&(checkStride-1) == 0 {
			if err := e.gov.Checkpoint(faultinject.SiteRPQCSRAll); err != nil {
				return nil, err
			}
		}
		steps++
		c := queue[0]
		queue = queue[1:]
		before := len(ap.cEdges)
		err := e.expandOrdinal(trans[c.q], c.u, func(v, q int32, _ float64, _ int32, viaEdge int32, viaNodes []ppg.NodeID, viaEdges []ppg.EdgeID) {
			next := ccfg{v, q}
			ap.cEdges = append(ap.cEdges, cprodEdge{from: c, to: next, viaEdge: viaEdge, viaNodes: viaNodes, viaEdges: viaEdges})
			ap.cRev[next] = append(ap.cRev[next], int32(len(ap.cEdges)-1))
			if !ap.cReached[next] {
				ap.cReached[next] = true
				queue = append(queue, next)
			}
		})
		if err != nil {
			return nil, err
		}
		pushed += len(ap.cEdges) - before
		if err := e.gov.GrowFrontier(len(ap.cEdges) - before); err != nil {
			return nil, err
		}
	}
	return ap, nil
}

// destinationsCSR extracts the accepting nodes of a CSR sweep.
func (a *AllPaths) destinationsCSR() []ppg.NodeID {
	accept := int32(a.nfa.accept)
	var ords []int32
	for c := range a.cReached {
		if c.q == accept {
			ords = append(ords, c.u)
		}
	}
	sort.Slice(ords, func(i, j int) bool { return ords[i] < ords[j] })
	out := make([]ppg.NodeID, len(ords))
	for i, u := range ords {
		out[i] = a.snap.NodeID(u)
	}
	return out
}

// projectionCSR summarises the conforming paths to dst from a CSR
// sweep, mirroring the legacy backward co-reachability pass.
func (a *AllPaths) projectionCSR(dst ppg.NodeID) (nodes []ppg.NodeID, edges []ppg.EdgeID, ok bool) {
	dstOrd, ok := a.snap.Ord(dst)
	if !ok {
		return nil, nil, false
	}
	target := ccfg{dstOrd, int32(a.nfa.accept)}
	if !a.cReached[target] {
		return nil, nil, false
	}
	co := map[ccfg]bool{target: true}
	queue := []ccfg{target}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		for _, ei := range a.cRev[c] {
			f := a.cEdges[ei].from
			if !co[f] {
				co[f] = true
				queue = append(queue, f)
			}
		}
	}
	nodeSet := map[ppg.NodeID]bool{a.src: true, dst: true}
	edgeSet := map[ppg.EdgeID]bool{}
	for _, pe := range a.cEdges {
		if co[pe.to] && co[pe.from] {
			nodeSet[a.snap.NodeID(pe.from.u)] = true
			switch {
			case pe.viaNodes != nil || pe.viaEdges != nil:
				for _, n := range pe.viaNodes {
					nodeSet[n] = true
				}
				for _, eid := range pe.viaEdges {
					edgeSet[eid] = true
				}
			case pe.viaEdge >= 0:
				nodeSet[a.snap.NodeID(pe.to.u)] = true
				edgeSet[a.snap.EdgeID(pe.viaEdge)] = true
			}
		}
	}
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	for eid := range edgeSet {
		edges = append(edges, eid)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	sort.Slice(edges, func(i, j int) bool { return edges[i] < edges[j] })
	return nodes, edges, true
}

// eachEdgeStep visits, in ascending edge-identifier order, the steps
// over one edge transition leaving n: every conforming edge and the
// node it leads to. The ablation baselines (simple paths, trails) go
// through it so they read the CSR snapshot when the engine has one
// and fall back to the ppg maps in legacy mode.
func (e *Engine) eachEdgeStep(n ppg.NodeID, inverse bool, label string, f func(eid ppg.EdgeID, next ppg.NodeID) error) error {
	if e.snap != nil {
		u, ok := e.snap.Ord(n)
		if !ok {
			return nil
		}
		lid := wildcardLabel
		if label != "" {
			if lid = e.snap.LabelID(label); lid == csr.NoLabel {
				return nil
			}
		}
		list := e.snap.Out(u)
		if inverse {
			list = e.snap.In(u)
		}
		for _, eo := range list {
			if lid != wildcardLabel && !e.snap.EdgeHasLabel(eo, lid) {
				continue
			}
			next := e.snap.Dst(eo)
			if inverse {
				next = e.snap.Src(eo)
			}
			if err := f(e.snap.EdgeID(eo), e.snap.NodeID(next)); err != nil {
				return err
			}
		}
		return nil
	}
	var list []ppg.EdgeID
	if inverse {
		list = e.g.InEdges(n)
	} else {
		list = e.g.OutEdges(n)
	}
	for _, eid := range list {
		ed, _ := e.g.Edge(eid)
		if label != "" && !ed.Labels.Has(label) {
			continue
		}
		next := ed.Dst
		if inverse {
			next = ed.Src
		}
		if err := f(eid, next); err != nil {
			return err
		}
	}
	return nil
}
