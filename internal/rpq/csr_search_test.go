package rpq

import (
	"math/rand"
	"reflect"
	"testing"

	"gcore/internal/ast"
	"gcore/internal/ppg"
)

// Differential tests: the CSR kernels must produce byte-identical
// results to the legacy map-based kernels — same paths, same order,
// same tie-breaking — on every regex shape and graph.

// diffGraph builds a random labelled graph.
func diffGraph(t *testing.T, r *rand.Rand) (*ppg.Graph, []ppg.NodeID) {
	t.Helper()
	g := ppg.New("diff")
	nodeLabels := [][]string{{"A"}, {"B"}, {"A", "B"}, nil}
	n := 5 + r.Intn(30)
	var ids []ppg.NodeID
	for i := 0; i < n; i++ {
		id := ppg.NodeID(r.Intn(500))
		if _, ok := g.Node(id); ok {
			continue
		}
		if err := g.AddNode(&ppg.Node{ID: id, Labels: ppg.NewLabels(nodeLabels[r.Intn(len(nodeLabels))]...)}); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	edgeLabels := []string{"a", "b", "c"}
	for e := 0; e < n*3; e++ {
		eid := ppg.EdgeID(1000 + r.Intn(5000))
		if _, ok := g.Edge(eid); ok {
			continue
		}
		if err := g.AddEdge(&ppg.Edge{
			ID: eid, Src: ids[r.Intn(len(ids))], Dst: ids[r.Intn(len(ids))],
			Labels: ppg.NewLabels(edgeLabels[r.Intn(len(edgeLabels))]),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return g, ids
}

// diffRegexes covers labels, inverses, node tests, wildcards, unknown
// labels, alternation, closure and concatenation.
func diffRegexes(t *testing.T) []*NFA {
	t.Helper()
	exprs := []*ast.Regex{
		rxLabel("a"),
		rxStar(rxLabel("a")),
		rxPlus(rxAlt(rxLabel("a"), rxLabel("b"))),
		rxCat(rxLabel("a"), rxNode("B"), rxLabel("b")),
		rxStar(rxInv("a")),
		rxCat(rxStar(rxLabel("a")), rxOpt(rxLabel("c"))),
		rxLabel("zzz-not-present"), // dead label
		rxCat(rxNode("A"), rxStar(rxAlt(rxLabel("a"), rxInv("b")))),
		{Op: ast.RxLabel, Label: ""}, // wildcard edge
	}
	nfas := make([]*NFA, len(exprs))
	for i, rx := range exprs {
		n, err := Compile(rx)
		if err != nil {
			t.Fatalf("compile regex %d: %v", i, err)
		}
		nfas[i] = n
	}
	return nfas
}

func TestCSRMatchesLegacy(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 12; trial++ {
		g, ids := diffGraph(t, r)
		csrEng := NewEngine(g, nil)
		if csrEng.snap == nil {
			t.Fatal("NewEngine did not attach a snapshot")
		}
		legEng := NewLegacyEngine(g, nil)
		if legEng.snap != nil {
			t.Fatal("NewLegacyEngine attached a snapshot")
		}
		for ni, nfa := range diffRegexes(t) {
			for _, src := range ids[:3] {
				for _, k := range []int{1, 3} {
					got, err := csrEng.ShortestPaths(src, nfa, k)
					if err != nil {
						t.Fatalf("trial %d regex %d: csr shortest: %v", trial, ni, err)
					}
					want, err := legEng.ShortestPaths(src, nfa, k)
					if err != nil {
						t.Fatalf("trial %d regex %d: legacy shortest: %v", trial, ni, err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("trial %d regex %d src %d k=%d: ShortestPaths diverged\ncsr:    %v\nlegacy: %v",
							trial, ni, src, k, got, want)
					}
				}

				gotR, err := csrEng.Reachable(src, nfa)
				if err != nil {
					t.Fatal(err)
				}
				wantR, err := legEng.Reachable(src, nfa)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(gotR, wantR) {
					t.Fatalf("trial %d regex %d src %d: Reachable diverged\ncsr:    %v\nlegacy: %v",
						trial, ni, src, gotR, wantR)
				}

				gotAP, err := csrEng.AllPaths(src, nfa)
				if err != nil {
					t.Fatal(err)
				}
				wantAP, err := legEng.AllPaths(src, nfa)
				if err != nil {
					t.Fatal(err)
				}
				gotDst, wantDst := gotAP.Destinations(), wantAP.Destinations()
				if !reflect.DeepEqual(gotDst, wantDst) {
					t.Fatalf("trial %d regex %d src %d: Destinations diverged\ncsr:    %v\nlegacy: %v",
						trial, ni, src, gotDst, wantDst)
				}
				for _, dst := range wantDst {
					gn, ge, gok := gotAP.Projection(dst)
					wn, we, wok := wantAP.Projection(dst)
					if gok != wok || !reflect.DeepEqual(gn, wn) || !reflect.DeepEqual(ge, we) {
						t.Fatalf("trial %d regex %d src %d dst %d: Projection diverged\ncsr:    %v %v %v\nlegacy: %v %v %v",
							trial, ni, src, dst, gn, ge, gok, wn, we, wok)
					}
				}
				// A destination absent from the sweep must answer !ok on
				// both paths.
				if _, _, ok := gotAP.Projection(ppg.NodeID(99_999)); ok {
					t.Fatal("Projection accepted a node outside the graph")
				}
			}
		}
	}
}

// TestCSRBaselinesMatchLegacy checks the simple-path and trail
// baselines agree between the snapshot-backed and legacy adjacency.
func TestCSRBaselinesMatchLegacy(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	nfa := mustCompile(t, rxPlus(rxAlt(rxLabel("a"), rxLabel("b"))))
	for trial := 0; trial < 6; trial++ {
		g, ids := diffGraph(t, r)
		csrEng := NewEngine(g, nil)
		legEng := NewLegacyEngine(g, nil)
		src, dst := ids[0], ids[1]

		gotB, gotV, err := csrEng.SimplePathSearch(src, nfa, 50_000)
		if err != nil {
			t.Fatal(err)
		}
		wantB, wantV, err := legEng.SimplePathSearch(src, nfa, 50_000)
		if err != nil {
			t.Fatal(err)
		}
		if gotV != wantV || !reflect.DeepEqual(gotB, wantB) {
			t.Fatalf("trial %d: SimplePathSearch diverged (visits %d vs %d)", trial, gotV, wantV)
		}

		gc, gv, _ := csrEng.CountSimplePaths(src, dst, nfa, 50_000)
		wc, wv, _ := legEng.CountSimplePaths(src, dst, nfa, 50_000)
		if gc != wc || gv != wv {
			t.Fatalf("trial %d: CountSimplePaths diverged (%d/%d vs %d/%d)", trial, gc, gv, wc, wv)
		}

		gotT, gotTV, err := csrEng.TrailSearch(src, nfa, 20_000)
		if err != nil {
			t.Fatal(err)
		}
		wantT, wantTV, err := legEng.TrailSearch(src, nfa, 20_000)
		if err != nil {
			t.Fatal(err)
		}
		if gotTV != wantTV || !reflect.DeepEqual(gotT, wantT) {
			t.Fatalf("trial %d: TrailSearch diverged (visits %d vs %d)", trial, gotTV, wantTV)
		}

		gtc, gtv, _ := csrEng.CountTrails(src, dst, nfa, 20_000)
		wtc, wtv, _ := legEng.CountTrails(src, dst, nfa, 20_000)
		if gtc != wtc || gtv != wtv {
			t.Fatalf("trial %d: CountTrails diverged (%d/%d vs %d/%d)", trial, gtc, gtv, wtc, wtv)
		}
	}
}

// TestUseLegacyKnob: the package knob flips NewEngine to the legacy
// path and back.
func TestUseLegacyKnob(t *testing.T) {
	g := ppg.New("knob")
	if err := g.AddNode(&ppg.Node{ID: 1}); err != nil {
		t.Fatal(err)
	}
	UseLegacy = true
	leg := NewEngine(g, nil)
	UseLegacy = false
	cs := NewEngine(g, nil)
	if leg.snap != nil {
		t.Fatal("UseLegacy=true still attached a snapshot")
	}
	if cs.snap == nil {
		t.Fatal("UseLegacy=false did not attach a snapshot")
	}
}

// TestStateTabSparseFallback forces the sparse branch and checks the
// counting semantics match the dense branch.
func TestStateTabSparseFallback(t *testing.T) {
	dense := newStateTab(8, 3)
	sparse := &stateTab{states: 3, sparse: map[int64]int32{}}
	for i := 0; i < 10; i++ {
		u, q := int32(i%8), int32(i%3)
		dense.inc(u, q)
		sparse.inc(u, q)
	}
	for u := int32(0); u < 8; u++ {
		for q := int32(0); q < 3; q++ {
			if dense.get(u, q) != sparse.get(u, q) {
				t.Fatalf("dense/sparse disagree at (%d,%d): %d vs %d", u, q, dense.get(u, q), sparse.get(u, q))
			}
		}
	}
	// Above the dense limit the constructor must pick the sparse form.
	big := newStateTab(denseLimit, 2)
	if big.dense != nil {
		t.Fatal("stateTab over the dense limit still allocated a dense table")
	}
}
