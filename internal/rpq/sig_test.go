package rpq

import (
	"testing"

	"gcore/internal/ppg"
)

func TestWalkSig(t *testing.T) {
	a := SignatureOf([]ppg.NodeID{1, 2, 3}, []ppg.EdgeID{10, 11})
	if b := SignatureOf([]ppg.NodeID{1, 2, 3}, []ppg.EdgeID{10, 11}); a != b {
		t.Error("equal walks must have equal signatures")
	}
	if b := SignatureOf([]ppg.NodeID{3, 2, 1}, []ppg.EdgeID{10, 11}); a == b {
		t.Error("node order must matter")
	}
	if b := SignatureOf([]ppg.NodeID{1, 2, 3}, []ppg.EdgeID{11, 10}); a == b {
		t.Error("edge order must matter")
	}
	if b := SignatureOf([]ppg.NodeID{1, 2}, []ppg.EdgeID{10, 11}); a == b {
		t.Error("length must matter")
	}
	// A node sequence must not collide with the same IDs read as edges
	// (the node and edge hashes accumulate separately).
	if b := SignatureOf([]ppg.NodeID{1, 2, 3, 10, 11}, nil); a == b {
		t.Error("node/edge split must matter")
	}
	empty := SignatureOf(nil, nil)
	if empty.NodeLen != 0 || empty.EdgeLen != 0 {
		t.Error("empty walk lengths")
	}
	if r := (PathResult{Nodes: []ppg.NodeID{1, 2, 3}, Edges: []ppg.EdgeID{10, 11}}); r.Signature() != a {
		t.Error("PathResult.Signature must agree with SignatureOf")
	}
}
