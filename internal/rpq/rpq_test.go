package rpq

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"gcore/internal/ast"
	"gcore/internal/ppg"
)

// rx helpers for building regexes in tests.
func rxLabel(l string) *ast.Regex { return &ast.Regex{Op: ast.RxLabel, Label: l} }
func rxInv(l string) *ast.Regex   { return &ast.Regex{Op: ast.RxInvLabel, Label: l} }
func rxNode(l string) *ast.Regex  { return &ast.Regex{Op: ast.RxNodeLabel, Label: l} }
func rxStar(r *ast.Regex) *ast.Regex {
	return &ast.Regex{Op: ast.RxStar, Subs: []*ast.Regex{r}}
}
func rxPlus(r *ast.Regex) *ast.Regex {
	return &ast.Regex{Op: ast.RxPlus, Subs: []*ast.Regex{r}}
}
func rxOpt(r *ast.Regex) *ast.Regex {
	return &ast.Regex{Op: ast.RxOpt, Subs: []*ast.Regex{r}}
}
func rxCat(rs ...*ast.Regex) *ast.Regex {
	return &ast.Regex{Op: ast.RxConcat, Subs: rs}
}
func rxAlt(rs ...*ast.Regex) *ast.Regex {
	return &ast.Regex{Op: ast.RxAlt, Subs: rs}
}

func mustCompile(t *testing.T, rx *ast.Regex) *NFA {
	t.Helper()
	n, err := Compile(rx)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// lineGraph builds 1 -a-> 2 -a-> 3 … with label a, plus a b-labelled
// shortcut 1 -b-> n.
func lineGraph(t *testing.T, n int) *ppg.Graph {
	t.Helper()
	g := ppg.New("line")
	for i := 1; i <= n; i++ {
		if err := g.AddNode(&ppg.Node{ID: ppg.NodeID(i), Labels: ppg.NewLabels("N")}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < n; i++ {
		if err := g.AddEdge(&ppg.Edge{ID: ppg.EdgeID(100 + i), Src: ppg.NodeID(i), Dst: ppg.NodeID(i + 1), Labels: ppg.NewLabels("a")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge(&ppg.Edge{ID: 999, Src: 1, Dst: ppg.NodeID(n), Labels: ppg.NewLabels("b")}); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestShortestPathsLine(t *testing.T) {
	g := lineGraph(t, 5)
	e := NewEngine(g, nil)
	nfa := mustCompile(t, rxStar(rxLabel("a")))
	res, err := e.ShortestPaths(1, nfa, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Every node reachable, including node 1 itself via the empty path.
	if len(res) != 5 {
		t.Fatalf("destinations = %d, want 5", len(res))
	}
	self := res[1][0]
	if self.Hops != 0 || len(self.Edges) != 0 || len(self.Nodes) != 1 {
		t.Errorf("empty path = %+v", self)
	}
	p5 := res[5][0]
	if p5.Hops != 4 || p5.Cost != 4 {
		t.Errorf("path to 5 = %+v", p5)
	}
	wantNodes := []ppg.NodeID{1, 2, 3, 4, 5}
	for i, n := range wantNodes {
		if p5.Nodes[i] != n {
			t.Fatalf("nodes = %v", p5.Nodes)
		}
	}
}

func TestShortestPrefersFewerHops(t *testing.T) {
	g := lineGraph(t, 5)
	e := NewEngine(g, nil)
	// (a|b)*: the b shortcut reaches node 5 in one hop.
	nfa := mustCompile(t, rxStar(rxAlt(rxLabel("a"), rxLabel("b"))))
	res, err := e.ShortestPaths(1, nfa, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res[5][0].Hops != 1 || res[5][0].Edges[0] != 999 {
		t.Errorf("shortcut not taken: %+v", res[5][0])
	}
}

func TestKShortest(t *testing.T) {
	g := lineGraph(t, 5)
	e := NewEngine(g, nil)
	nfa := mustCompile(t, rxStar(rxAlt(rxLabel("a"), rxLabel("b"))))
	res, err := e.ShortestPaths(1, nfa, 3)
	if err != nil {
		t.Fatal(err)
	}
	got := res[5]
	if len(got) != 2 {
		t.Fatalf("paths to 5 = %d, want exactly 2 (shortcut and line)", len(got))
	}
	if got[0].Hops != 1 || got[1].Hops != 4 {
		t.Errorf("k-shortest order wrong: %+v", got)
	}
	if _, err := e.ShortestPaths(1, nfa, 0); err == nil {
		t.Error("k=0 must error")
	}
}

func TestInverseEdges(t *testing.T) {
	g := lineGraph(t, 3)
	e := NewEngine(g, nil)
	// From node 3 backwards over a⁻.
	nfa := mustCompile(t, rxStar(rxInv("a")))
	res, err := e.ShortestPaths(3, nfa, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("reachable = %d", len(res))
	}
	p1 := res[1][0]
	if p1.Hops != 2 || p1.Nodes[0] != 3 || p1.Nodes[2] != 1 {
		t.Errorf("backward path = %+v", p1)
	}
}

func TestNodeLabelTest(t *testing.T) {
	g := ppg.New("g")
	for i, ls := range []ppg.Labels{ppg.NewLabels("A"), ppg.NewLabels("B"), ppg.NewLabels("A")} {
		if err := g.AddNode(&ppg.Node{ID: ppg.NodeID(i + 1), Labels: ls}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 2; i++ {
		if err := g.AddEdge(&ppg.Edge{ID: ppg.EdgeID(10 + i), Src: ppg.NodeID(i), Dst: ppg.NodeID(i + 1), Labels: ppg.NewLabels("e")}); err != nil {
			t.Fatal(err)
		}
	}
	e := NewEngine(g, nil)
	// e !B e: middle node must carry label B.
	ok := mustCompile(t, rxCat(rxLabel("e"), rxNode("B"), rxLabel("e")))
	res, err := e.ShortestPaths(1, ok, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res[3]) != 1 {
		t.Error("path through B-labelled node not found")
	}
	// e !A e: middle node lacks label A → no path.
	bad := mustCompile(t, rxCat(rxLabel("e"), rxNode("A"), rxLabel("e")))
	res, err = e.ShortestPaths(1, bad, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res[3]) != 0 {
		t.Error("node test should have blocked the path")
	}
}

func TestReachable(t *testing.T) {
	g := lineGraph(t, 4)
	e := NewEngine(g, nil)
	nfa := mustCompile(t, rxPlus(rxLabel("a")))
	got, err := e.Reachable(2, nfa)
	if err != nil {
		t.Fatal(err)
	}
	// a+ from node 2: nodes 3 and 4 (not 2: plus needs ≥1 edge).
	if len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Errorf("reachable = %v", got)
	}
	// From a missing node: nothing.
	got, err = e.Reachable(99, nfa)
	if err != nil || len(got) != 0 {
		t.Errorf("reachable from missing = %v, %v", got, err)
	}
}

// diamondGraph: 1→2→4 and 1→3→4, all label e.
func diamondGraph(t *testing.T) *ppg.Graph {
	t.Helper()
	g := ppg.New("diamond")
	for i := 1; i <= 4; i++ {
		if err := g.AddNode(&ppg.Node{ID: ppg.NodeID(i)}); err != nil {
			t.Fatal(err)
		}
	}
	edges := [][2]ppg.NodeID{{1, 2}, {1, 3}, {2, 4}, {3, 4}}
	for i, e := range edges {
		if err := g.AddEdge(&ppg.Edge{ID: ppg.EdgeID(10 + i), Src: e[0], Dst: e[1], Labels: ppg.NewLabels("e")}); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestAllPathsProjection(t *testing.T) {
	g := diamondGraph(t)
	e := NewEngine(g, nil)
	nfa := mustCompile(t, rxStar(rxLabel("e")))
	ap, err := e.AllPaths(1, nfa)
	if err != nil {
		t.Fatal(err)
	}
	nodes, edges, ok := ap.Projection(4)
	if !ok {
		t.Fatal("4 must be reachable")
	}
	if len(nodes) != 4 || len(edges) != 4 {
		t.Errorf("projection = %v nodes %v edges; want all 4 and 4", nodes, edges)
	}
	// Projection to 2 must contain only the 1→2 edge.
	nodes, edges, ok = ap.Projection(2)
	if !ok || len(nodes) != 2 || len(edges) != 1 || edges[0] != 10 {
		t.Errorf("projection to 2 = %v, %v", nodes, edges)
	}
	if _, _, ok := ap.Projection(99); ok {
		t.Error("missing node cannot be projected")
	}
}

func TestAllPathsProjectionWithCycle(t *testing.T) {
	// 1→2, 2→1 cycle plus 2→3: infinitely many conforming walks, but
	// the projection stays finite and polynomial — the tractability
	// argument of §3 for ALL.
	g := ppg.New("cycle")
	for i := 1; i <= 3; i++ {
		if err := g.AddNode(&ppg.Node{ID: ppg.NodeID(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i, pair := range [][2]ppg.NodeID{{1, 2}, {2, 1}, {2, 3}} {
		if err := g.AddEdge(&ppg.Edge{ID: ppg.EdgeID(10 + i), Src: pair[0], Dst: pair[1], Labels: ppg.NewLabels("e")}); err != nil {
			t.Fatal(err)
		}
	}
	e := NewEngine(g, nil)
	nfa := mustCompile(t, rxStar(rxLabel("e")))
	ap, err := e.AllPaths(1, nfa)
	if err != nil {
		t.Fatal(err)
	}
	nodes, edges, ok := ap.Projection(3)
	if !ok || len(nodes) != 3 || len(edges) != 3 {
		t.Errorf("cycle projection = %v, %v", nodes, edges)
	}
}

// viewResolverFunc adapts a function to the ViewResolver interface.
type viewResolverFunc func(name string, from ppg.NodeID) ([]Segment, error)

func (f viewResolverFunc) Segments(name string, from ppg.NodeID) ([]Segment, error) {
	return f(name, from)
}

func TestWeightedViewSearch(t *testing.T) {
	g := lineGraph(t, 4)
	// View w: segments along the line with costs 0.5, 0.25, 4.
	costs := map[ppg.NodeID]float64{1: 0.5, 2: 0.25, 3: 4}
	views := viewResolverFunc(func(name string, from ppg.NodeID) ([]Segment, error) {
		if name != "w" {
			return nil, fmt.Errorf("unknown view %q", name)
		}
		c, ok := costs[from]
		if !ok {
			return nil, nil
		}
		to := from + 1
		return []Segment{{From: from, To: to, Cost: c,
			Nodes: []ppg.NodeID{from, to}, Edges: []ppg.EdgeID{ppg.EdgeID(100 + uint64(from))}}}, nil
	})
	e := NewEngine(g, views)
	nfa := mustCompile(t, rxStar(&ast.Regex{Op: ast.RxView, Label: "w"}))
	res, err := e.ShortestPaths(1, nfa, 1)
	if err != nil {
		t.Fatal(err)
	}
	p4 := res[4][0]
	if p4.Cost != 4.75 || p4.Hops != 3 {
		t.Errorf("weighted path = %+v", p4)
	}
	if len(p4.Edges) != 3 || p4.Edges[0] != 101 {
		t.Errorf("expansion = %v", p4.Edges)
	}
}

func TestViewErrors(t *testing.T) {
	g := lineGraph(t, 3)
	nfa := mustCompile(t, &ast.Regex{Op: ast.RxView, Label: "w"})
	// No resolver in scope.
	if _, err := NewEngine(g, nil).ShortestPaths(1, nfa, 1); err == nil {
		t.Error("view without resolver must error")
	}
	// Non-positive cost is the runtime error mandated by §3.
	bad := viewResolverFunc(func(string, ppg.NodeID) ([]Segment, error) {
		return []Segment{{From: 1, To: 2, Cost: 0}}, nil
	})
	if _, err := NewEngine(g, bad).ShortestPaths(1, nfa, 1); err == nil {
		t.Error("non-positive cost must raise a runtime error")
	}
}

func TestSimplePathBaseline(t *testing.T) {
	g := diamondGraph(t)
	e := NewEngine(g, nil)
	nfa := mustCompile(t, rxStar(rxLabel("e")))
	best, visits, err := e.SimplePathSearch(1, nfa, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if visits == 0 {
		t.Fatal("no visits recorded")
	}
	if best[4].Hops != 2 {
		t.Errorf("shortest simple path to 4 = %+v", best[4])
	}
	count, _, err := e.CountSimplePaths(1, 4, nfa, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Errorf("simple paths 1→4 = %d, want 2", count)
	}
	// Views unsupported in the baseline.
	vnfa := mustCompile(t, &ast.Regex{Op: ast.RxView, Label: "w"})
	if _, _, err := e.SimplePathSearch(1, vnfa, 10); err == nil {
		t.Error("baseline must reject views")
	}
	if _, _, err := e.CountSimplePaths(1, 4, vnfa, 10); err == nil {
		t.Error("baseline must reject views")
	}
}

func TestSimplePathBudget(t *testing.T) {
	g := diamondGraph(t)
	e := NewEngine(g, nil)
	nfa := mustCompile(t, rxStar(rxLabel("e")))
	_, visits, err := e.SimplePathSearch(1, nfa, 3)
	if err != nil {
		t.Fatal(err)
	}
	if visits > 3 {
		t.Errorf("budget exceeded: %d", visits)
	}
}

// ===== property tests =====

// randRegex builds a random regex over edge labels {a, b}.
func randRegex(r *rand.Rand, depth int) *ast.Regex {
	if depth == 0 {
		switch r.Intn(3) {
		case 0:
			return rxLabel("a")
		case 1:
			return rxLabel("b")
		default:
			return &ast.Regex{Op: ast.RxAnyEdge}
		}
	}
	switch r.Intn(6) {
	case 0:
		return rxCat(randRegex(r, depth-1), randRegex(r, depth-1))
	case 1:
		return rxAlt(randRegex(r, depth-1), randRegex(r, depth-1))
	case 2:
		return rxStar(randRegex(r, depth-1))
	case 3:
		return rxPlus(randRegex(r, depth-1))
	case 4:
		return rxOpt(randRegex(r, depth-1))
	default:
		return randRegex(r, 0)
	}
}

// refMatch is the obviously correct recursive matcher for edge-only
// words (no node symbols), used to validate the NFA construction.
func refMatch(rx *ast.Regex, word []string) bool {
	switch rx.Op {
	case ast.RxEps:
		return len(word) == 0
	case ast.RxAnyEdge:
		return len(word) == 1
	case ast.RxLabel:
		return len(word) == 1 && word[0] == rx.Label
	case ast.RxConcat:
		if len(rx.Subs) == 0 {
			return len(word) == 0
		}
		head, rest := rx.Subs[0], &ast.Regex{Op: ast.RxConcat, Subs: rx.Subs[1:]}
		for cut := 0; cut <= len(word); cut++ {
			if refMatch(head, word[:cut]) && refMatch(rest, word[cut:]) {
				return true
			}
		}
		return false
	case ast.RxAlt:
		for _, s := range rx.Subs {
			if refMatch(s, word) {
				return true
			}
		}
		return false
	case ast.RxStar:
		if len(word) == 0 {
			return true
		}
		for cut := 1; cut <= len(word); cut++ {
			if refMatch(rx.Subs[0], word[:cut]) && refMatch(rx, word[cut:]) {
				return true
			}
		}
		return false
	case ast.RxPlus:
		return refMatch(rxCat(rx.Subs[0], rxStar(rx.Subs[0])), word)
	case ast.RxOpt:
		return len(word) == 0 || refMatch(rx.Subs[0], word)
	}
	return false
}

func TestQuickNFAMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rx := randRegex(r, 3)
		nfa, err := Compile(rx)
		if err != nil {
			return false
		}
		for trial := 0; trial < 20; trial++ {
			n := r.Intn(5)
			word := make([]string, n)
			syms := make([]Sym, n)
			for i := range word {
				if r.Intn(2) == 0 {
					word[i] = "a"
				} else {
					word[i] = "b"
				}
				syms[i] = Sym{Labels: []string{word[i]}}
			}
			if nfa.MatchesWord(syms) != refMatch(rx, word) {
				t.Logf("regex %s word %v: nfa=%v ref=%v", rx, word, nfa.MatchesWord(syms), refMatch(rx, word))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// randWeightedGraph builds a random graph with one label and a random
// view with positive costs for the Dijkstra cross-check.
func randWeightedGraph(r *rand.Rand, n int) (*ppg.Graph, map[ppg.NodeID][]Segment) {
	g := ppg.New("rand")
	for i := 1; i <= n; i++ {
		if err := g.AddNode(&ppg.Node{ID: ppg.NodeID(i)}); err != nil {
			panic(err)
		}
	}
	segs := map[ppg.NodeID][]Segment{}
	eid := ppg.EdgeID(100)
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			if i == j || r.Intn(3) != 0 {
				continue
			}
			if err := g.AddEdge(&ppg.Edge{ID: eid, Src: ppg.NodeID(i), Dst: ppg.NodeID(j), Labels: ppg.NewLabels("e")}); err != nil {
				panic(err)
			}
			cost := float64(r.Intn(9)+1) / 2
			segs[ppg.NodeID(i)] = append(segs[ppg.NodeID(i)], Segment{
				From: ppg.NodeID(i), To: ppg.NodeID(j), Cost: cost,
				Nodes: []ppg.NodeID{ppg.NodeID(i), ppg.NodeID(j)}, Edges: []ppg.EdgeID{eid},
			})
			eid++
		}
	}
	return g, segs
}

// TestQuickDijkstraMatchesBellmanFord cross-checks the product search
// (over a trivial one-state view regex) against Bellman-Ford.
func TestQuickDijkstraMatchesBellmanFord(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 6
		g, segs := randWeightedGraph(r, n)
		views := viewResolverFunc(func(name string, from ppg.NodeID) ([]Segment, error) {
			return segs[from], nil
		})
		e := NewEngine(g, views)
		nfa, err := Compile(rxStar(&ast.Regex{Op: ast.RxView, Label: "w"}))
		if err != nil {
			return false
		}
		res, err := e.ShortestPaths(1, nfa, 1)
		if err != nil {
			return false
		}
		// Bellman-Ford reference.
		const inf = 1e18
		dist := map[ppg.NodeID]float64{}
		for i := 1; i <= n; i++ {
			dist[ppg.NodeID(i)] = inf
		}
		dist[1] = 0
		for iter := 0; iter < n; iter++ {
			for from, ss := range segs {
				for _, s := range ss {
					if dist[from]+s.Cost < dist[s.To] {
						dist[s.To] = dist[from] + s.Cost
					}
				}
			}
		}
		for i := 1; i <= n; i++ {
			id := ppg.NodeID(i)
			got, ok := res[id]
			if dist[id] >= inf {
				if ok {
					return false
				}
				continue
			}
			if !ok || got[0].Cost != dist[id] {
				t.Logf("seed %d node %d: dijkstra %v bellman %v", seed, i, got, dist[id])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickPathsAreValid checks that every returned path is a valid
// walk in the graph conforming to adjacency.
func TestQuickPathsAreValid(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g, _ := randWeightedGraph(r, 6)
		e := NewEngine(g, nil)
		nfa, err := Compile(rxStar(rxAlt(rxLabel("e"), rxInv("e"))))
		if err != nil {
			return false
		}
		res, err := e.ShortestPaths(1, nfa, 2)
		if err != nil {
			return false
		}
		for _, paths := range res {
			for _, p := range paths {
				if len(p.Nodes) != len(p.Edges)+1 {
					return false
				}
				for i, eid := range p.Edges {
					ed, ok := g.Edge(eid)
					if !ok {
						return false
					}
					a, b := p.Nodes[i], p.Nodes[i+1]
					if !(ed.Src == a && ed.Dst == b) && !(ed.Src == b && ed.Dst == a) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile(&ast.Regex{Op: ast.RxConcat}); err == nil {
		t.Error("empty concat must fail")
	}
	if _, err := Compile(&ast.Regex{Op: ast.RegexOp(99)}); err == nil {
		t.Error("unknown op must fail")
	}
}

func TestNFAHasViews(t *testing.T) {
	withView, _ := Compile(rxCat(rxLabel("a"), &ast.Regex{Op: ast.RxView, Label: "v"}))
	if !withView.HasViews() {
		t.Error("HasViews false negative")
	}
	without, _ := Compile(rxLabel("a"))
	if without.HasViews() {
		t.Error("HasViews false positive")
	}
	if without.NumStates() == 0 {
		t.Error("no states")
	}
}
