package rpq

import (
	"fmt"

	"gcore/internal/ppg"
)

// Simple-path semantics baseline.
//
// G-CORE deliberately evaluates path expressions under arbitrary-path
// (walk) semantics: checking whether a *simple* path (no repeated
// node) from u to v conforms to a fixed regular expression is
// NP-complete (Mendelzon & Wood [23], cited in §4 and §A.1), and
// Cypher 9's no-repeated-edge semantics inherits related blow-ups.
// This file implements the avoided alternative — exhaustive
// backtracking over simple paths — purely as a comparison baseline
// for the complexity ablation benchmarks (DESIGN.md experiment CPLX2).

// SimplePathSearch enumerates simple paths (no repeated nodes) from
// src that conform to the automaton, in DFS order. It stops after
// visiting at most maxVisits search states and reports whether the
// budget was exhausted. The shortest conforming simple path per
// destination is returned.
//
// The worst case is exponential in the size of the graph — that is
// the point of the baseline.
func (e *Engine) SimplePathSearch(src ppg.NodeID, nfa *NFA, maxVisits int) (map[ppg.NodeID]PathResult, int, error) {
	if nfa.HasViews() {
		return nil, 0, fmt.Errorf("rpq: simple-path baseline does not support path views")
	}
	if _, ok := e.g.Node(src); !ok {
		return map[ppg.NodeID]PathResult{}, 0, nil
	}
	best := map[ppg.NodeID]PathResult{}
	visits := 0
	onPath := map[ppg.NodeID]bool{src: true}

	var nodes []ppg.NodeID
	var edges []ppg.EdgeID
	nodes = append(nodes, src)

	// epsSeen guards against ε-cycles of the Thompson construction:
	// between two edge consumptions, every automaton state is entered
	// at most once (safe: repeating a state without consuming an edge
	// cannot enable new graph paths).
	var dfs func(c cfg, epsSeen map[int]bool) error
	dfs = func(c cfg, epsSeen map[int]bool) error {
		if visits >= maxVisits {
			return nil
		}
		visits++
		if c.q == nfa.accept {
			if prev, ok := best[c.n]; !ok || len(edges) < prev.Hops {
				best[c.n] = PathResult{
					Src: src, Dst: c.n,
					Cost: float64(len(edges)), Hops: len(edges),
					Nodes: append([]ppg.NodeID(nil), nodes...),
					Edges: append([]ppg.EdgeID(nil), edges...),
				}
			}
		}
		node, _ := e.g.Node(c.n)
		for _, t := range nfa.trans[c.q] {
			switch t.kind {
			case tEps, tNode:
				if t.kind == tNode && !node.Labels.Has(t.label) {
					continue
				}
				if epsSeen[t.to] {
					continue
				}
				epsSeen[t.to] = true
				if err := dfs(cfg{c.n, t.to}, epsSeen); err != nil {
					return err
				}
				delete(epsSeen, t.to)
			case tEdge:
				err := e.eachEdgeStep(c.n, t.inverse, t.label, func(eid ppg.EdgeID, next ppg.NodeID) error {
					if onPath[next] {
						return nil // simple: never revisit a node
					}
					onPath[next] = true
					nodes = append(nodes, next)
					edges = append(edges, eid)
					err := dfs(cfg{next, t.to}, map[int]bool{t.to: true})
					onPath[next] = false
					nodes = nodes[:len(nodes)-1]
					edges = edges[:len(edges)-1]
					return err
				})
				if err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := dfs(cfg{src, nfa.start}, map[int]bool{nfa.start: true}); err != nil {
		return nil, visits, err
	}
	return best, visits, nil
}

// CountSimplePaths counts the simple paths from src to dst conforming
// to the automaton, up to the visit budget. Used by the ablation to
// show the combinatorial explosion that enumeration-based semantics
// face on dense graphs.
func (e *Engine) CountSimplePaths(src, dst ppg.NodeID, nfa *NFA, maxVisits int) (count, visits int, err error) {
	if nfa.HasViews() {
		return 0, 0, fmt.Errorf("rpq: simple-path baseline does not support path views")
	}
	if _, ok := e.g.Node(src); !ok {
		return 0, 0, nil
	}
	onPath := map[ppg.NodeID]bool{src: true}
	var dfs func(c cfg, epsSeen map[int]bool)
	dfs = func(c cfg, epsSeen map[int]bool) {
		if visits >= maxVisits {
			return
		}
		visits++
		if c.q == nfa.accept && c.n == dst {
			count++
		}
		node, _ := e.g.Node(c.n)
		for _, t := range nfa.trans[c.q] {
			switch t.kind {
			case tEps, tNode:
				if t.kind == tNode && !node.Labels.Has(t.label) {
					continue
				}
				if epsSeen[t.to] {
					continue
				}
				epsSeen[t.to] = true
				dfs(cfg{c.n, t.to}, epsSeen)
				delete(epsSeen, t.to)
			case tEdge:
				_ = e.eachEdgeStep(c.n, t.inverse, t.label, func(_ ppg.EdgeID, next ppg.NodeID) error {
					if onPath[next] {
						return nil
					}
					onPath[next] = true
					dfs(cfg{next, t.to}, map[int]bool{t.to: true})
					onPath[next] = false
					return nil
				})
			}
		}
	}
	dfs(cfg{src, nfa.start}, map[int]bool{nfa.start: true})
	return count, visits, nil
}
