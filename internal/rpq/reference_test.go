package rpq

import (
	"container/heap"
	"math/rand"
	"testing"
	"testing/quick"

	"gcore/internal/ppg"
)

// Reference implementation for cross-checking: build the product of
// graph and automaton *explicitly* as a plain weighted digraph and run
// textbook Dijkstra on it. The engine must report exactly the same
// optimal cost for every destination.

type refEdge struct {
	to   int
	cost float64
}

// buildProduct expands every (node, state) configuration eagerly.
func buildProduct(g *ppg.Graph, nfa *NFA) (adj map[int][]refEdge, cfgID func(ppg.NodeID, int) int) {
	nodeIDs := g.NodeIDs()
	index := map[ppg.NodeID]int{}
	for i, n := range nodeIDs {
		index[n] = i
	}
	q := nfa.NumStates()
	cfgID = func(n ppg.NodeID, s int) int { return index[n]*q + s }
	adj = map[int][]refEdge{}
	for _, n := range nodeIDs {
		node, _ := g.Node(n)
		for s := 0; s < q; s++ {
			from := cfgID(n, s)
			for _, t := range nfa.trans[s] {
				switch t.kind {
				case tEps:
					adj[from] = append(adj[from], refEdge{cfgID(n, t.to), 0})
				case tNode:
					if node.Labels.Has(t.label) {
						adj[from] = append(adj[from], refEdge{cfgID(n, t.to), 0})
					}
				case tEdge:
					if t.inverse {
						for _, eid := range g.InEdges(n) {
							e, _ := g.Edge(eid)
							if t.label == "" || e.Labels.Has(t.label) {
								adj[from] = append(adj[from], refEdge{cfgID(e.Src, t.to), 1})
							}
						}
					} else {
						for _, eid := range g.OutEdges(n) {
							e, _ := g.Edge(eid)
							if t.label == "" || e.Labels.Has(t.label) {
								adj[from] = append(adj[from], refEdge{cfgID(e.Dst, t.to), 1})
							}
						}
					}
				}
			}
		}
	}
	return adj, cfgID
}

type refItem struct {
	cfg  int
	dist float64
}
type refPQ []refItem

func (p refPQ) Len() int           { return len(p) }
func (p refPQ) Less(i, j int) bool { return p[i].dist < p[j].dist }
func (p refPQ) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }
func (p *refPQ) Push(x any)        { *p = append(*p, x.(refItem)) }
func (p *refPQ) Pop() any          { o := *p; x := o[len(o)-1]; *p = o[:len(o)-1]; return x }

func refDijkstra(adj map[int][]refEdge, start int) map[int]float64 {
	dist := map[int]float64{start: 0}
	h := &refPQ{{start, 0}}
	done := map[int]bool{}
	for h.Len() > 0 {
		it := heap.Pop(h).(refItem)
		if done[it.cfg] {
			continue
		}
		done[it.cfg] = true
		for _, e := range adj[it.cfg] {
			nd := it.dist + e.cost
			if d, ok := dist[e.to]; !ok || nd < d {
				dist[e.to] = nd
				heap.Push(h, refItem{e.to, nd})
			}
		}
	}
	return dist
}

// TestQuickEngineMatchesExplicitProduct cross-checks ShortestPaths and
// Reachable against the explicit product construction on random
// graphs and random regexes.
func TestQuickEngineMatchesExplicitProduct(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randLabelledGraph(r, 7)
		rx := randRegex(r, 3)
		nfa, err := Compile(rx)
		if err != nil {
			return false
		}
		eng := NewEngine(g, nil)
		got, err := eng.ShortestPaths(1, nfa, 1)
		if err != nil {
			return false
		}
		reach, err := eng.Reachable(1, nfa)
		if err != nil {
			return false
		}
		reachSet := map[ppg.NodeID]bool{}
		for _, n := range reach {
			reachSet[n] = true
		}

		adj, cfgID := buildProduct(g, nfa)
		dist := refDijkstra(adj, cfgID(1, nfa.start))
		for _, n := range g.NodeIDs() {
			want, ok := dist[cfgID(n, nfa.accept)]
			gotPaths, gotOK := got[n]
			if ok != gotOK || ok != reachSet[n] {
				t.Logf("seed %d node %d: ref reachable=%v engine=%v reach=%v (regex %s)",
					seed, n, ok, gotOK, reachSet[n], rx)
				return false
			}
			if ok && gotPaths[0].Cost != want {
				t.Logf("seed %d node %d: ref cost %v engine %v (regex %s)",
					seed, n, want, gotPaths[0].Cost, rx)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// randLabelledGraph builds a random graph with labels drawn from the
// randRegex alphabet {a, b} plus node labels.
func randLabelledGraph(r *rand.Rand, n int) *ppg.Graph {
	g := ppg.New("ref")
	nodeLabels := []string{"N", "M"}
	for i := 1; i <= n; i++ {
		if err := g.AddNode(&ppg.Node{ID: ppg.NodeID(i), Labels: ppg.NewLabels(nodeLabels[r.Intn(2)])}); err != nil {
			panic(err)
		}
	}
	eid := ppg.EdgeID(100)
	labels := []string{"a", "b"}
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			if r.Intn(3) != 0 {
				continue
			}
			if err := g.AddEdge(&ppg.Edge{ID: eid, Src: ppg.NodeID(i), Dst: ppg.NodeID(j),
				Labels: ppg.NewLabels(labels[r.Intn(2)])}); err != nil {
				panic(err)
			}
			eid++
		}
	}
	return g
}

// TestQuickKShortestMonotone: the k results per destination are in
// non-decreasing cost order and pairwise distinct.
func TestQuickKShortestMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randLabelledGraph(r, 6)
		nfa, err := Compile(rxStar(rxAlt(rxLabel("a"), rxLabel("b"))))
		if err != nil {
			return false
		}
		res, err := NewEngine(g, nil).ShortestPaths(1, nfa, 4)
		if err != nil {
			return false
		}
		for _, paths := range res {
			seen := map[WalkSig]bool{}
			for i, p := range paths {
				if i > 0 && p.Cost < paths[i-1].Cost {
					return false
				}
				if seen[p.Signature()] {
					return false
				}
				seen[p.Signature()] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickNodeTestRegexProduct cross-checks regexes containing node
// label tests against the explicit product too.
func TestQuickNodeTestRegexProduct(t *testing.T) {
	rx := rxCat(rxStar(rxLabel("a")), rxNode("M"), rxStar(rxLabel("b")))
	nfa, err := Compile(rx)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randLabelledGraph(r, 6)
		eng := NewEngine(g, nil)
		got, err := eng.ShortestPaths(1, nfa, 1)
		if err != nil {
			return false
		}
		adj, cfgID := buildProduct(g, nfa)
		dist := refDijkstra(adj, cfgID(1, nfa.start))
		for _, n := range g.NodeIDs() {
			want, ok := dist[cfgID(n, nfa.accept)]
			paths, gotOK := got[n]
			if ok != gotOK {
				return false
			}
			if ok && paths[0].Cost != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
