// Package rpq evaluates regular path queries over Path Property
// Graphs: the core machinery behind G-CORE's path patterns (§4 and
// §A.1 of the paper). Regular expressions over edge labels (ℓ),
// inverse edge labels (ℓ⁻), node label tests (!ℓ) and PATH-view
// references (~v) compile into a Thompson NFA; paths are found by
// searching the product of the graph and the automaton:
//
//   - shortest and k-shortest paths by a deterministic Dijkstra
//     (unit hop costs for edges, view-provided costs for segments),
//   - reachability by plain BFS over the product,
//   - ALL-paths results as a graph projection (the summarisation of
//     Barceló et al. [10] the paper cites to keep ALL tractable),
//   - and, for the complexity ablation only, the NP-hard simple-path
//     semantics that the language deliberately avoids.
package rpq

import (
	"fmt"

	"gcore/internal/ast"
)

// transKind classifies an NFA transition.
type transKind uint8

const (
	tEps  transKind = iota // consumes nothing
	tNode                  // node label test: consumes no edge
	tEdge                  // graph edge traversal
	tView                  // PATH-view segment traversal
)

// transition is one NFA arc.
type transition struct {
	kind    transKind
	label   string // edge/node label; "" = wildcard (edges); view name
	inverse bool   // edge traversed against its direction (ℓ⁻)
	to      int
}

// NFA is a Thompson automaton with a single start and a single
// accepting state.
type NFA struct {
	trans         [][]transition
	start, accept int
}

// NumStates returns the number of automaton states.
func (n *NFA) NumStates() int { return len(n.trans) }

// HasViews reports whether any transition references a PATH view.
func (n *NFA) HasViews() bool {
	for _, ts := range n.trans {
		for _, t := range ts {
			if t.kind == tView {
				return true
			}
		}
	}
	return false
}

// builder assembles states during compilation.
type builder struct {
	trans [][]transition
}

func (b *builder) state() int {
	b.trans = append(b.trans, nil)
	return len(b.trans) - 1
}

func (b *builder) arc(from int, t transition) {
	b.trans[from] = append(b.trans[from], t)
}

type frag struct{ in, out int }

// Compile translates a parsed regular path expression into an NFA.
func Compile(rx *ast.Regex) (*NFA, error) {
	b := &builder{}
	f, err := b.compile(rx)
	if err != nil {
		return nil, err
	}
	return &NFA{trans: b.trans, start: f.in, accept: f.out}, nil
}

func (b *builder) compile(rx *ast.Regex) (frag, error) {
	switch rx.Op {
	case ast.RxEps:
		s, t := b.state(), b.state()
		b.arc(s, transition{kind: tEps, to: t})
		return frag{s, t}, nil
	case ast.RxAnyEdge:
		return b.leaf(transition{kind: tEdge}), nil
	case ast.RxAnyInv:
		return b.leaf(transition{kind: tEdge, inverse: true}), nil
	case ast.RxLabel:
		return b.leaf(transition{kind: tEdge, label: rx.Label}), nil
	case ast.RxInvLabel:
		return b.leaf(transition{kind: tEdge, label: rx.Label, inverse: true}), nil
	case ast.RxNodeLabel:
		return b.leaf(transition{kind: tNode, label: rx.Label}), nil
	case ast.RxView:
		return b.leaf(transition{kind: tView, label: rx.Label}), nil
	case ast.RxConcat:
		if len(rx.Subs) == 0 {
			return frag{}, fmt.Errorf("rpq: empty concatenation")
		}
		cur, err := b.compile(rx.Subs[0])
		if err != nil {
			return frag{}, err
		}
		for _, sub := range rx.Subs[1:] {
			next, err := b.compile(sub)
			if err != nil {
				return frag{}, err
			}
			b.arc(cur.out, transition{kind: tEps, to: next.in})
			cur = frag{cur.in, next.out}
		}
		return cur, nil
	case ast.RxAlt:
		s, t := b.state(), b.state()
		for _, sub := range rx.Subs {
			f, err := b.compile(sub)
			if err != nil {
				return frag{}, err
			}
			b.arc(s, transition{kind: tEps, to: f.in})
			b.arc(f.out, transition{kind: tEps, to: t})
		}
		return frag{s, t}, nil
	case ast.RxStar:
		inner, err := b.compile(rx.Subs[0])
		if err != nil {
			return frag{}, err
		}
		s, t := b.state(), b.state()
		b.arc(s, transition{kind: tEps, to: inner.in})
		b.arc(s, transition{kind: tEps, to: t})
		b.arc(inner.out, transition{kind: tEps, to: inner.in})
		b.arc(inner.out, transition{kind: tEps, to: t})
		return frag{s, t}, nil
	case ast.RxPlus:
		inner, err := b.compile(rx.Subs[0])
		if err != nil {
			return frag{}, err
		}
		s, t := b.state(), b.state()
		b.arc(s, transition{kind: tEps, to: inner.in})
		b.arc(inner.out, transition{kind: tEps, to: inner.in})
		b.arc(inner.out, transition{kind: tEps, to: t})
		return frag{s, t}, nil
	case ast.RxOpt:
		inner, err := b.compile(rx.Subs[0])
		if err != nil {
			return frag{}, err
		}
		s, t := b.state(), b.state()
		b.arc(s, transition{kind: tEps, to: inner.in})
		b.arc(s, transition{kind: tEps, to: t})
		b.arc(inner.out, transition{kind: tEps, to: t})
		return frag{s, t}, nil
	}
	return frag{}, fmt.Errorf("rpq: unknown regex op %d", rx.Op)
}

func (b *builder) leaf(t transition) frag {
	s, e := b.state(), b.state()
	t.to = e
	b.arc(s, t)
	return frag{s, e}
}

// Sym is one abstract input symbol for word-level simulation: a node
// test or an edge occurrence. It exists for property-testing the NFA
// construction against a reference matcher.
type Sym struct {
	IsNode  bool
	Labels  []string // labels of the node / the edge
	Inverse bool     // the edge is traversed against its direction
}

func symMatches(t transition, s Sym) bool {
	switch t.kind {
	case tNode:
		if !s.IsNode {
			return false
		}
		for _, l := range s.Labels {
			if l == t.label {
				return true
			}
		}
		return false
	case tEdge:
		if s.IsNode || s.Inverse != t.inverse {
			return false
		}
		if t.label == "" {
			return true
		}
		for _, l := range s.Labels {
			if l == t.label {
				return true
			}
		}
		return false
	}
	return false
}

// MatchesWord simulates the NFA on a symbol word (subset
// construction); node symbols may also be skipped freely, mirroring
// the implicit node wildcards of the path semantics: a node symbol in
// the input that no node-test transition consumes is passed over.
func (n *NFA) MatchesWord(word []Sym) bool {
	cur := n.closure(map[int]bool{n.start: true})
	for _, s := range word {
		next := map[int]bool{}
		for q := range cur {
			for _, t := range n.trans[q] {
				if (t.kind == tNode || t.kind == tEdge) && symMatches(t, s) {
					next[t.to] = true
				}
			}
		}
		if s.IsNode {
			// Node symbols are optional to consume.
			for q := range cur {
				next[q] = true
			}
		}
		if len(next) == 0 {
			return false
		}
		cur = n.closure(next)
	}
	return cur[n.accept]
}

// closure extends a state set with everything reachable over ε arcs.
func (n *NFA) closure(set map[int]bool) map[int]bool {
	stack := make([]int, 0, len(set))
	for q := range set {
		stack = append(stack, q)
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range n.trans[q] {
			if t.kind == tEps && !set[t.to] {
				set[t.to] = true
				stack = append(stack, t.to)
			}
		}
	}
	return set
}
