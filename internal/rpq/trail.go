package rpq

import (
	"fmt"

	"gcore/internal/ppg"
)

// Trail (no-repeated-edge) semantics baseline.
//
// §6 of the paper contrasts three path-evaluation semantics:
// G-CORE's arbitrary-path (walk) semantics, Cypher 9's
// no-repeated-edge semantics ("each edge occurs at most once in the
// path") and simple-path semantics. Like simple paths, trails require
// enumeration in the worst case; this file implements them as a
// second comparison baseline for the CPLX2 ablation. The production
// search (ShortestPaths) never uses it.

// TrailSearch enumerates trails (walks without repeated edges) from
// src conforming to the automaton, keeping the shortest per
// destination. It stops after maxVisits search states and reports the
// visit count.
func (e *Engine) TrailSearch(src ppg.NodeID, nfa *NFA, maxVisits int) (map[ppg.NodeID]PathResult, int, error) {
	if nfa.HasViews() {
		return nil, 0, fmt.Errorf("rpq: trail baseline does not support path views")
	}
	if _, ok := e.g.Node(src); !ok {
		return map[ppg.NodeID]PathResult{}, 0, nil
	}
	best := map[ppg.NodeID]PathResult{}
	visits := 0
	onTrail := map[ppg.EdgeID]bool{}
	var nodes []ppg.NodeID
	var edges []ppg.EdgeID
	nodes = append(nodes, src)

	var dfs func(c cfg, epsSeen map[int]bool)
	dfs = func(c cfg, epsSeen map[int]bool) {
		if visits >= maxVisits {
			return
		}
		visits++
		if c.q == nfa.accept {
			if prev, ok := best[c.n]; !ok || len(edges) < prev.Hops {
				best[c.n] = PathResult{
					Src: src, Dst: c.n,
					Cost: float64(len(edges)), Hops: len(edges),
					Nodes: append([]ppg.NodeID(nil), nodes...),
					Edges: append([]ppg.EdgeID(nil), edges...),
				}
			}
		}
		node, _ := e.g.Node(c.n)
		for _, t := range nfa.trans[c.q] {
			switch t.kind {
			case tEps, tNode:
				if t.kind == tNode && !node.Labels.Has(t.label) {
					continue
				}
				if epsSeen[t.to] {
					continue
				}
				epsSeen[t.to] = true
				dfs(cfg{c.n, t.to}, epsSeen)
				delete(epsSeen, t.to)
			case tEdge:
				_ = e.eachEdgeStep(c.n, t.inverse, t.label, func(eid ppg.EdgeID, next ppg.NodeID) error {
					if onTrail[eid] {
						return nil // trails: never reuse an edge
					}
					onTrail[eid] = true
					nodes = append(nodes, next)
					edges = append(edges, eid)
					dfs(cfg{next, t.to}, map[int]bool{t.to: true})
					onTrail[eid] = false
					nodes = nodes[:len(nodes)-1]
					edges = edges[:len(edges)-1]
					return nil
				})
			}
		}
	}
	dfs(cfg{src, nfa.start}, map[int]bool{nfa.start: true})
	return best, visits, nil
}

// CountTrails counts the conforming trails from src to dst, up to the
// visit budget — the enumeration cost Cypher-9-style semantics pays
// when all matches are requested.
func (e *Engine) CountTrails(src, dst ppg.NodeID, nfa *NFA, maxVisits int) (count, visits int, err error) {
	if nfa.HasViews() {
		return 0, 0, fmt.Errorf("rpq: trail baseline does not support path views")
	}
	if _, ok := e.g.Node(src); !ok {
		return 0, 0, nil
	}
	onTrail := map[ppg.EdgeID]bool{}
	var dfs func(c cfg, epsSeen map[int]bool)
	dfs = func(c cfg, epsSeen map[int]bool) {
		if visits >= maxVisits {
			return
		}
		visits++
		if c.q == nfa.accept && c.n == dst {
			count++
		}
		node, _ := e.g.Node(c.n)
		for _, t := range nfa.trans[c.q] {
			switch t.kind {
			case tEps, tNode:
				if t.kind == tNode && !node.Labels.Has(t.label) {
					continue
				}
				if epsSeen[t.to] {
					continue
				}
				epsSeen[t.to] = true
				dfs(cfg{c.n, t.to}, epsSeen)
				delete(epsSeen, t.to)
			case tEdge:
				_ = e.eachEdgeStep(c.n, t.inverse, t.label, func(eid ppg.EdgeID, next ppg.NodeID) error {
					if onTrail[eid] {
						return nil
					}
					onTrail[eid] = true
					dfs(cfg{next, t.to}, map[int]bool{t.to: true})
					onTrail[eid] = false
					return nil
				})
			}
		}
	}
	dfs(cfg{src, nfa.start}, map[int]bool{nfa.start: true})
	return count, visits, nil
}
