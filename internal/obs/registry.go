package obs

import (
	"sync/atomic"
	"time"
)

// Registry accumulates per-operator statistics across the lifetime of
// an engine. All counters are atomic: statements observe their stats
// concurrently with snapshot readers (expvar, \metrics).
type Registry struct {
	queries atomic.Int64
	errors  atomic.Int64

	ops [numOps]opCounters

	nfaHits      atomic.Int64
	nfaMisses    atomic.Int64
	csrReuses    atomic.Int64
	csrBuilds    atomic.Int64
	snapFull     atomic.Int64
	snapDeltas   atomic.Int64
	snapFalls    atomic.Int64
	snapDeltaOps atomic.Int64
	snapShared   atomic.Int64
	snapCopied   atomic.Int64
	frontierUsed atomic.Int64
	resultsUsed  atomic.Int64
}

type opCounters struct {
	count    atomic.Int64
	rowsIn   atomic.Int64
	rowsOut  atomic.Int64
	pops     atomic.Int64
	arrivals atomic.Int64
	elapsed  atomic.Int64 // nanoseconds
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Observe folds one statement's stats into the registry.
func (r *Registry) Observe(st Stats, err error) {
	if r == nil {
		return
	}
	r.queries.Add(1)
	if err != nil {
		r.errors.Add(1)
	}
	for i := range st.Ops {
		os := &st.Ops[i]
		if os.Count == 0 {
			continue
		}
		oc := &r.ops[i]
		oc.count.Add(os.Count)
		oc.rowsIn.Add(os.RowsIn)
		oc.rowsOut.Add(os.RowsOut)
		oc.pops.Add(os.Pops)
		oc.arrivals.Add(os.Arrivals)
		oc.elapsed.Add(int64(os.Elapsed))
	}
	r.nfaHits.Add(st.NFAHits)
	r.nfaMisses.Add(st.NFAMisses)
	r.csrReuses.Add(st.CSRReuses)
	r.csrBuilds.Add(st.CSRBuilds)
	r.snapFull.Add(st.SnapshotFullBuilds)
	r.snapDeltas.Add(st.SnapshotDeltaApplies)
	r.snapFalls.Add(st.SnapshotFallbacks)
	r.snapDeltaOps.Add(st.SnapshotDeltaOps)
	r.snapShared.Add(st.SnapshotBytesShared)
	r.snapCopied.Add(st.SnapshotBytesCopied)
	r.frontierUsed.Add(st.FrontierUsed)
	r.resultsUsed.Add(st.ResultsUsed)
}

// OpMetrics is the exported aggregate for one operator class.
type OpMetrics struct {
	Count     int64         `json:"count"`
	RowsIn    int64         `json:"rows_in"`
	RowsOut   int64         `json:"rows_out"`
	Pops      int64         `json:"pops,omitempty"`
	Arrivals  int64         `json:"arrivals,omitempty"`
	ElapsedNS int64         `json:"elapsed_ns"`
	Elapsed   time.Duration `json:"-"`
}

// Metrics is a point-in-time snapshot of a Registry, shaped for JSON
// export (expvar, -metrics, \metrics).
type Metrics struct {
	Queries int64 `json:"queries"`
	Errors  int64 `json:"errors"`

	// Read/write path split: statements executed under the shared read
	// lock vs. the exclusive writer lock. Not fed through Observe — the
	// engine counts them at dispatch and fills them when it snapshots.
	ReadStatements  int64 `json:"read_statements"`
	WriteStatements int64 `json:"write_statements"`

	Operators map[string]OpMetrics `json:"operators"`

	NFACacheHits   int64 `json:"nfa_cache_hits"`
	NFACacheMisses int64 `json:"nfa_cache_misses"`
	CSRReuses      int64 `json:"csr_reuses"`
	CSRBuilds      int64 `json:"csr_builds"`
	FrontierUsed   int64 `json:"frontier_used"`
	ResultsUsed    int64 `json:"results_used"`

	// Incremental snapshot maintenance: of the csr_builds above, how
	// many were full rebuilds vs. delta applies vs. declined-delta
	// fallbacks, plus the applied deltas' op count and shared/copied
	// byte split.
	SnapshotFullBuilds   int64 `json:"snapshot_full_builds,omitempty"`
	SnapshotDeltaApplies int64 `json:"snapshot_delta_applies,omitempty"`
	SnapshotFallbacks    int64 `json:"snapshot_fallbacks,omitempty"`
	SnapshotDeltaOps     int64 `json:"snapshot_delta_ops,omitempty"`
	SnapshotBytesShared  int64 `json:"snapshot_bytes_shared,omitempty"`
	SnapshotBytesCopied  int64 `json:"snapshot_bytes_copied,omitempty"`

	// Plan-cache lifetime counters. These are not fed through Observe:
	// the cache outlives statements, so the engine fills them from the
	// cache's own counters when it snapshots.
	PlanCacheHits      int64 `json:"plan_cache_hits"`
	PlanCacheMisses    int64 `json:"plan_cache_misses"`
	PlanCacheEvictions int64 `json:"plan_cache_evictions"`
	PlanCacheEntries   int64 `json:"plan_cache_entries"`
	PlanCacheCompileNS int64 `json:"plan_cache_compile_ns"`

	// Write-ahead-log lifetime counters, filled by the durable engine
	// from its log when it snapshots (zero on a non-durable engine).
	WALAppends       int64 `json:"wal_appends,omitempty"`
	WALAppendedBytes int64 `json:"wal_appended_bytes,omitempty"`
	WALBatched       int64 `json:"wal_batched,omitempty"`
	WALSyncs         int64 `json:"wal_syncs,omitempty"`
	WALRolls         int64 `json:"wal_rolls,omitempty"`
	WALCheckpoints   int64 `json:"wal_checkpoints,omitempty"`
	WALReplayed      int64 `json:"wal_replayed,omitempty"`
	WALTornTruncated int64 `json:"wal_torn_truncated,omitempty"`
}

// Snapshot returns a consistent-enough copy of the registry: each
// counter is read atomically; cross-counter skew is bounded by
// in-flight statements.
func (r *Registry) Snapshot() Metrics {
	m := Metrics{Operators: map[string]OpMetrics{}}
	if r == nil {
		return m
	}
	m.Queries = r.queries.Load()
	m.Errors = r.errors.Load()
	for i := range r.ops {
		oc := &r.ops[i]
		n := oc.count.Load()
		if n == 0 {
			continue
		}
		ns := oc.elapsed.Load()
		m.Operators[Op(i).String()] = OpMetrics{
			Count:     n,
			RowsIn:    oc.rowsIn.Load(),
			RowsOut:   oc.rowsOut.Load(),
			Pops:      oc.pops.Load(),
			Arrivals:  oc.arrivals.Load(),
			ElapsedNS: ns,
			Elapsed:   time.Duration(ns),
		}
	}
	m.NFACacheHits = r.nfaHits.Load()
	m.NFACacheMisses = r.nfaMisses.Load()
	m.CSRReuses = r.csrReuses.Load()
	m.CSRBuilds = r.csrBuilds.Load()
	m.SnapshotFullBuilds = r.snapFull.Load()
	m.SnapshotDeltaApplies = r.snapDeltas.Load()
	m.SnapshotFallbacks = r.snapFalls.Load()
	m.SnapshotDeltaOps = r.snapDeltaOps.Load()
	m.SnapshotBytesShared = r.snapShared.Load()
	m.SnapshotBytesCopied = r.snapCopied.Load()
	m.FrontierUsed = r.frontierUsed.Load()
	m.ResultsUsed = r.resultsUsed.Load()
	return m
}
